package tiger

import (
	"testing"
	"time"
)

// quickOptions is the paper configuration with client drops disabled for
// deterministic assertions.
func quickOptions() Options {
	o := DefaultOptions()
	o.ClientDropProb = 0
	return o
}

func TestRunFigure8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := RunFigure8(quickOptions(), QuickRamp())
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 602 {
		t.Fatalf("capacity %d", res.Capacity)
	}
	if res.Violations != 0 || res.CubStats.Conflicts != 0 {
		t.Fatalf("protocol anomalies: %d violations, %+v", res.Violations, res.CubStats)
	}
	last := res.Samples[len(res.Samples)-1]
	first := res.Samples[0]
	t.Logf("first: %d streams cpu=%.2f disk=%.2f ctl=%.1fKB/s", first.Streams, first.CubCPU, first.DiskLoad, first.CtlTrafficBps/1e3)
	t.Logf("last:  %d streams cpu=%.2f disk=%.2f ctl=%.1fKB/s ctrl=%.3f", last.Streams, last.CubCPU, last.DiskLoad, last.CtlTrafficBps/1e3, last.CtrlCPU)

	// Figure 8's shape: cub CPU grows roughly linearly with streams...
	if last.CubCPU < 0.55 || last.CubCPU > 0.90 {
		t.Errorf("full-load cub CPU %.2f outside the paper's ballpark", last.CubCPU)
	}
	ratio := (last.CubCPU / float64(last.Streams)) / (first.CubCPU / float64(first.Streams))
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("cub CPU not linear in streams: per-stream ratio %.2f", ratio)
	}
	// ...while the controller's load does not depend on system load.
	if last.CtrlCPU > 0.05 {
		t.Errorf("controller CPU %.3f grew with load", last.CtrlCPU)
	}
	// Control traffic stays in the paper's KB/s regime.
	if last.CtlTrafficBps > 21_000 {
		t.Errorf("control traffic %.0f B/s exceeds the paper's 21 KB/s max", last.CtlTrafficBps)
	}
}

func TestRunFigure9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := RunFigure9(quickOptions(), QuickRamp())
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	t.Logf("failed-mode last: %d streams cpu=%.2f mirrorDisk=%.2f ctl=%.1fKB/s data=%.1fMB/s",
		last.Streams, last.CubCPU, last.MirrorDiskLoad, last.CtlTrafficBps/1e3, last.DataRateBps/1e6)
	// The paper's headline failed-mode numbers: mirroring disks >90%
	// duty, mirroring cub sending >13.4 MB/s, control <= 21 KB/s.
	if last.MirrorDiskLoad < 0.88 {
		t.Errorf("mirror disk duty %.2f, paper saw >0.95", last.MirrorDiskLoad)
	}
	if last.DataRateBps < 12.5e6 {
		t.Errorf("mirroring cub sends %.1f MB/s, paper saw 13.4", last.DataRateBps/1e6)
	}
	if last.CtlTrafficBps > 21_000 {
		t.Errorf("control traffic %.0f B/s exceeds 21 KB/s", last.CtlTrafficBps)
	}
	if res.MirrorBlocks == 0 {
		t.Error("no mirror-served blocks in failed mode")
	}
	if res.Violations != 0 {
		t.Errorf("slot conflicts: %d", res.Violations)
	}
}

func TestRunFigure10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	o := quickOptions()
	ramp := QuickRamp()
	ramp.Step = 60 // finer steps give more high-load start samples
	res, err := RunFigure10(o, ramp)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("starts=%d floor=%v meanAt90-97=%v over20s=%d",
		len(res.Points), res.Floor, res.MeanAt95, res.Over20s)
	// The paper: ~1.8 s floor below 50% load; mean under 5 s at 95%.
	if res.Floor < 1500*time.Millisecond || res.Floor > 2300*time.Millisecond {
		t.Errorf("startup floor %v, paper saw ~1.8 s", res.Floor)
	}
	if res.MeanAt95 > 12*time.Second {
		t.Errorf("mean startup at high load %v, paper saw <5 s", res.MeanAt95)
	}
	if res.MeanAt95 < res.Floor {
		t.Errorf("high-load startup %v below the floor %v", res.MeanAt95, res.Floor)
	}
}

func TestRunReconfigQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := RunReconfig(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("streams=%d lost=%d span=%v mirrors=%d", res.Streams, res.LostBlocks, res.LossSpan, res.MirrorCatch)
	// The paper measured ~8 s between earliest and latest lost block.
	if res.LostBlocks == 0 {
		t.Error("power cut lost nothing; detection latency should cost some blocks")
	}
	if res.LossSpan > 15*time.Second {
		t.Errorf("loss span %v, paper saw ~8 s", res.LossSpan)
	}
	if res.MirrorCatch == 0 {
		t.Error("no mirror catches after reconfiguration")
	}
}

func TestRunScalabilityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	o := quickOptions()
	pts, err := RunScalability(o, []int{7, 14, 28}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("cubs=%d streams=%d perCub=%.1fKB/s central=%.1fKB/s view=%d ctrl=%.4f",
			p.Cubs, p.Streams, p.PerCubCtlBps/1e3, p.CentralizedBps/1e3, p.MaxViewEntries, p.ControllerLoad)
	}
	// §3.3's argument: centralized traffic grows with system size while
	// per-cub distributed traffic stays flat.
	if pts[2].CentralizedBps < 3.5*pts[0].CentralizedBps {
		t.Errorf("centralized traffic did not scale with size")
	}
	if pts[2].PerCubCtlBps > 2*pts[0].PerCubCtlBps {
		t.Errorf("per-cub control traffic grew with system size: %.0f -> %.0f",
			pts[0].PerCubCtlBps, pts[2].PerCubCtlBps)
	}
	// Views stay bounded regardless of size.
	if pts[2].MaxViewEntries > 3*pts[0].MaxViewEntries {
		t.Errorf("view size grew with system size")
	}
}

func TestRunAblationForwardingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := RunAblationForwarding(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lost: double=%d single=%d; ctl B/s: double=%.0f single=%.0f",
		res.DoubleLost, res.SingleLost, res.DoubleCtl, res.SingleCtl)
	if res.SingleLost <= res.DoubleLost {
		t.Errorf("single forwarding should lose more blocks on failure")
	}
	if res.SingleCtl >= res.DoubleCtl {
		t.Errorf("single forwarding should send less control traffic")
	}
}

func TestRunAblationDeclusterQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	pts, err := RunAblationDecluster(quickOptions(), []int{2, 4, 8}, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("dc=%d capacity=%d reserve=%.2f span=%d mirrorDuty=%.2f lost=%d",
			p.Decluster, p.Capacity, p.ReservedFraction, p.VulnerableSpan, p.MirrorDiskLoad, p.BlocksLost)
	}
	// §2.3's trade-off: capacity rises and reserve falls with the
	// decluster factor, at the cost of a wider vulnerability span.
	if !(pts[0].Capacity < pts[1].Capacity && pts[1].Capacity < pts[2].Capacity) {
		t.Error("capacity not increasing with decluster factor")
	}
	if !(pts[0].ReservedFraction > pts[1].ReservedFraction) {
		t.Error("reserve not decreasing")
	}
	if !(pts[0].VulnerableSpan < pts[2].VulnerableSpan) {
		t.Error("vulnerability span not widening")
	}
}

func TestRunAblationLeadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	pairs := [][2]time.Duration{
		{1 * time.Second, 2 * time.Second},
		{4 * time.Second, 9 * time.Second},
		{8 * time.Second, 18 * time.Second},
	}
	pts, err := RunAblationLead(quickOptions(), pairs, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("lead %v..%v: %.0f msgs/s %.1f KB/s view=%d lost=%d",
			p.MinLead, p.MaxLead, p.CtlMsgsPerSec, p.CtlBps/1e3, p.MaxViewEntries, p.BlocksLost)
	}
	// A wider lead gap lets cubs batch more states per message.
	if pts[2].CtlMsgsPerSec > pts[0].CtlMsgsPerSec {
		t.Error("wider lead gap should not need more messages")
	}
	// A longer max lead holds more entries per view.
	if pts[2].MaxViewEntries <= pts[0].MaxViewEntries {
		t.Error("view size should grow with the max lead")
	}
}

func TestRunAblationFragmentationQuick(t *testing.T) {
	pts, err := RunAblationFragmentation(14, 100_000_000,
		[]time.Duration{0, 250 * time.Millisecond}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("quantum=%v admitted=%d util=%.2f frag=%.2f",
			p.Quantum, p.Admitted, p.Utilization, p.Fragmentation)
	}
	if pts[1].Admitted < pts[0].Admitted {
		t.Errorf("quantized starts admitted fewer streams: %d vs %d",
			pts[1].Admitted, pts[0].Admitted)
	}
}

func TestRunFlashCrowdQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	o := quickOptions()
	res, err := RunFlashCrowd(o, 150, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("admitted %d/%d over %v..%v (%.1f starts/s); disks mean=%.2f max=%.2f; lost=%d",
		res.Admitted, res.Viewers, res.FirstStart.Round(time.Millisecond),
		res.LastStart.Round(time.Millisecond), res.AdmitRate,
		res.MeanDiskDuty, res.MaxDiskDuty, res.BlocksLost)
	if res.Admitted != res.Viewers {
		t.Errorf("only %d of %d admitted", res.Admitted, res.Viewers)
	}
	// Equitemporal spacing: starts trickle out at roughly the rate one
	// disk's slot windows pass (~10.75/s), because every request funnels
	// through the disk holding the file's first block (§2.2: "Tiger will
	// delay starting streams in order to enforce equitemporal spacing").
	if res.AdmitRate > 12 {
		t.Errorf("admit rate %.1f/s exceeds one disk's slot-window rate (~10.75/s)", res.AdmitRate)
	}
	if res.LastStart < 10*time.Second {
		t.Errorf("spacing delay only %v for 150 viewers on one title", res.LastStart)
	}
	// No overload: the crowd travels the ring as a wave, but no disk is
	// ever asked for more than its per-slot capacity.
	if res.MaxDiskDuty > 0.75 {
		t.Errorf("disk overload: max duty %.2f", res.MaxDiskDuty)
	}
	if res.BlocksLost > 0 {
		t.Errorf("flash crowd lost %d blocks", res.BlocksLost)
	}
}

func TestRunRecoveryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	res, err := RunRecovery(quickOptions(), 120, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery: mirrorLoad=%d drain=%v rejoin=%v transferred=%d retired=%d",
		res.MirrorLoadAtRestart, res.DrainTime, res.RejoinTime,
		res.ViewTransferred, res.MirrorsRetired)
	if res.MirrorLoadAtRestart == 0 {
		t.Error("no covering load accumulated during the crash")
	}
	if !res.Drained {
		t.Errorf("mirror load never drained (%v cap)", res.DrainTime)
	}
	if res.ViewTransferred == 0 || res.MirrorsRetired == 0 {
		t.Error("reintegration did not transfer or retire anything")
	}
	if res.RejoinTime <= 0 || res.RejoinTime > 5*time.Second {
		t.Errorf("implausible rejoin time %v", res.RejoinTime)
	}
	if res.Violations != 0 {
		t.Errorf("slot conflicts: %d", res.Violations)
	}
}
