package tiger

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The multi-point experiment sweeps (RunScalability, RunLossRates, the
// ablations) are embarrassingly parallel: every point builds its own
// cluster around its own sim.Engine seeded from its own options, shares
// nothing, and writes only its own result slot. Fanning the points out
// over a bounded worker pool therefore cannot change any result byte —
// each point's simulation is a pure function of its options — it only
// changes how many run at once.

// sweepParallelism is the worker-pool width for sweep fan-out; 1 means
// fully sequential (the default, and the most debuggable).
var sweepParallelism int32 = 1

// SetSweepParallelism sets how many sweep points may run concurrently.
// n <= 0 selects GOMAXPROCS. Results are byte-identical to a sequential
// run regardless of the setting; tigerbench surfaces this as -parallel.
func SetSweepParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	atomic.StoreInt32(&sweepParallelism, int32(n))
}

// SweepParallelism reports the current sweep fan-out width.
func SweepParallelism() int { return int(atomic.LoadInt32(&sweepParallelism)) }

// forEachPoint runs fn(0..n-1), fanning out over at most
// SweepParallelism workers. Each fn must write its result into its own
// pre-sized output slot, which keeps result order — and therefore output
// bytes — identical to the sequential loop. The returned error is the
// lowest-indexed one, again matching what sequential execution would
// have reported first.
func forEachPoint(n int, fn func(i int) error) error {
	par := SweepParallelism()
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
