package tiger

import (
	"encoding/json"
	"testing"
	"time"

	"tiger/internal/chaos"
)

// Controller-failover acceptance tests (DESIGN §17): the controller
// crashes and restarts while streams play, while streams sit parked,
// and while an elastic restripe is mid-copy. In every arm the admitted
// streams play through the outage with zero loss, the takeover rebuilds
// the controller's state by scavenging the cubs, and no stream is
// double-admitted.

// TestControllerFailoverSmoke is the short-mode gate: crash the
// controller under load, restart it, and verify the takeover end to end
// through the chaos runner — zero loss for crash-time streams, a
// scavenge served by every cub, no invariant violations.
func TestControllerFailoverSmoke(t *testing.T) {
	c := rampedCluster(t, chaosTestOptions(9), 24)
	_, lost0, _ := c.ViewerTotals()
	active0 := c.Active()
	inserts0 := c.TotalCubStats().Inserts

	sc := chaos.Scenario{
		Name:     "controller-failover-smoke",
		Seed:     21,
		Duration: 30 * time.Second,
		Steps: []chaos.Step{
			{At: 2 * time.Second, Kind: chaos.CrashController},
			{At: 10 * time.Second, Kind: chaos.RestartController},
		},
	}
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations: %v", err)
	}
	if !res.Report.QuietAtEnd {
		t.Errorf("faults still outstanding: %v", res.Report.Outstanding)
	}
	_, lost1, _ := c.ViewerTotals()
	if lost := lost1 - lost0; lost != 0 {
		t.Errorf("%d blocks lost across the controller outage (must be 0)", lost)
	}
	cs := c.TotalCubStats()
	if cs.ScavengesServed != int64(len(c.Cubs)) {
		t.Errorf("scavenges served = %d, want %d (one per cub)", cs.ScavengesServed, len(c.Cubs))
	}
	if cs.CtlTakeovers == 0 {
		t.Error("no cub observed the epoch bump")
	}
	if got := c.Controller.Epoch(); got != 2 {
		t.Errorf("controller epoch = %d, want 2", got)
	}
	if got := c.Controller.Stats().Takeovers; got != 1 {
		t.Errorf("takeovers = %d, want 1", got)
	}
	// Every crash-time stream survived, none was double-admitted: the
	// active count matches and the takeover itself inserted nothing (any
	// new insertions belong to EOF replays, which the oracle checks).
	if got := c.Active(); got != active0 {
		t.Errorf("active = %d after failover, want %d", got, active0)
	}
	if c.Controller.Scavenging() {
		t.Error("scavenge still open at end of run")
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	_ = inserts0 // EOF replay churn may insert; the oracle above guards double occupancy
}

// TestControllerFailoverRetries drives the client retry path: a start
// issued during the outage is refused, retried with backoff, and admits
// once the takeover completes — no retry storm, no abandonment.
func TestControllerFailoverRetries(t *testing.T) {
	c := rampedCluster(t, chaosTestOptions(11), 12)
	c.CrashController()
	c.RunFor(time.Second)

	if _, err := c.Play(0, 0); err == nil {
		t.Fatal("plain Play admitted during the outage")
	}
	var started *Stream
	if err := c.PlayRetrying(1, 0, func(s *Stream) { started = s }); err != nil {
		t.Fatalf("PlayRetrying returned a hard error for a transient outage: %v", err)
	}
	c.RunFor(2 * time.Second)
	if started != nil {
		t.Fatal("a retrying start admitted while the controller was down")
	}
	c.RestartController()
	c.RunFor(10 * time.Second)
	if started == nil {
		t.Fatal("the retrying start never admitted after the takeover")
	}
	retries, abandoned := c.StartRetryStats()
	if retries == 0 {
		t.Error("no retries recorded")
	}
	if abandoned != 0 {
		t.Errorf("%d starts abandoned during a short outage", abandoned)
	}

	// An outage longer than the whole backoff schedule abandons.
	c.CrashController()
	if err := c.PlayRetrying(2, 0, nil); err != nil {
		t.Fatalf("PlayRetrying: %v", err)
	}
	c.RunFor(60 * time.Second)
	if _, abandoned = c.StartRetryStats(); abandoned != 1 {
		t.Errorf("abandoned = %d after exhausting the backoff schedule, want 1", abandoned)
	}
	c.RestartController()
}

// TestControllerFailoverWhileParked crashes the controller while the
// governor holds parked streams. The takeover must rebuild the parked
// set from the tickets the cubs retain and, once the crashed cubs
// rejoin, resume every stream exactly once.
func TestControllerFailoverWhileParked(t *testing.T) {
	if testing.Short() {
		t.Skip("failover acceptance run")
	}
	o := governorTestOptions(13)
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(24); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	// Adjacent cubs 3,4 exhaust disk 3's mirror coverage: the governor
	// parks the endangered streams.
	c.CrashCub(3)
	c.CrashCub(4)
	c.RunFor(3 * time.Second)
	parked0 := c.ParkedStreams()
	if parked0 == 0 {
		t.Fatal("no streams parked before the controller crash; the scenario is vacuous")
	}

	c.CrashController()
	c.RunFor(5 * time.Second)
	c.RestartController()
	c.RunFor(3 * time.Second)

	st := c.Controller.Stats()
	if int(st.ScavengedParks) != parked0 {
		t.Errorf("scavenged %d park tickets, want %d", st.ScavengedParks, parked0)
	}
	if got := c.ParkedStreams(); got != parked0 {
		t.Errorf("rebuilt parked set has %d streams, want %d", got, parked0)
	}
	// The replayed down set re-armed the governor: the tickets must NOT
	// drain while disk 3 is still uncovered.
	gs := c.Controller.GovernorStats()
	if gs.Unservable == 0 {
		t.Error("takeover lost the unservable set; tickets would drain into dead disks")
	}

	c.RestartCub(3)
	c.RunFor(5 * time.Second)
	c.RestartCub(4)
	c.RunFor(60 * time.Second)

	gs = c.Controller.GovernorStats()
	if gs.Parked != 0 || gs.QueueLen != 0 {
		t.Errorf("governor did not drain after rejoin: %d parked, %d queued", gs.Parked, gs.QueueLen)
	}
	if gs.Resumes != gs.Parks {
		t.Errorf("%d resumes for %d parks: each scavenged ticket must resume exactly once",
			gs.Resumes, gs.Parks)
	}
	for i, cub := range c.Cubs {
		if n := cub.ParkedTickets(); n != 0 {
			t.Errorf("cub %d still retains %d park tickets after the resumes", i, n)
		}
	}
	if c.Active() != 24 {
		t.Errorf("active streams = %d after drain, want 24", c.Active())
	}
	_, lost1, _ := c.ViewerTotals()
	if lost := lost1 - lost0; lost != 0 {
		t.Errorf("%d blocks lost across park + controller failover (must be 0)", lost)
	}
	if d := h.DoubleServes(); d != 0 {
		t.Errorf("%d double services", d)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
}

// TestControllerFailoverDuringRestripe crashes the controller while an
// elastic restripe is mid-copy. The takeover re-arms the coordinator
// from the harness-held plan; committed moves re-ack as duplicates and
// the restripe completes, serving every stream throughout.
func TestControllerFailoverDuringRestripe(t *testing.T) {
	if testing.Short() {
		t.Skip("failover acceptance run")
	}
	o := elasticTestOptions()
	o.Seed = 15
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(16); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	if err := c.StartRestripe(8); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if p := c.RestripePhase(); p != RestripeCopy {
		t.Fatalf("restripe already past copy (%q); crash window missed", p)
	}
	c.CrashController()
	committedAtCrash := c.Controller.RestripeStats().Committed
	c.RunFor(5 * time.Second)
	if got := c.Controller.RestripeStats().Committed; got != committedAtCrash {
		t.Errorf("dead incarnation kept folding commits (%d -> %d)", committedAtCrash, got)
	}
	c.RestartController()
	c.RunFor(2 * time.Second)
	if !c.Controller.RestripeStats().Active {
		t.Fatal("takeover did not re-arm the interrupted restripe")
	}

	if !waitPhase(c, RestripeDone, 10*time.Minute) {
		t.Fatalf("restripe never completed after the takeover (phase %q)", c.RestripePhase())
	}
	assertElasticClean(t, c, h, lost0, 8)
	if got := c.Controller.Epoch(); got != 2 {
		t.Errorf("controller epoch = %d, want 2", got)
	}
}

// TestControllerFailoverDeterminism: the same seeds replay the whole
// crash–scavenge–recover cycle byte for byte.
func TestControllerFailoverDeterminism(t *testing.T) {
	run := func() []byte {
		c := rampedCluster(t, chaosTestOptions(9), 24)
		sc := chaos.Scenario{
			Name:     "controller-failover-smoke",
			Seed:     21,
			Duration: 30 * time.Second,
			Steps: []chaos.Step{
				{At: 2 * time.Second, Kind: chaos.CrashController},
				{At: 10 * time.Second, Kind: chaos.RestartController},
			},
		}
		res, err := c.RunChaos(sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("same seeds produced different failover runs:\n%s\n%s", a, b)
	}
}
