// Command tigerbench regenerates the paper's evaluation: every figure
// and table of "Distributed Schedule Management in the Tiger Video
// Fileserver" (SOSP '97), plus the ablations described in DESIGN.md.
//
// Usage:
//
//	tigerbench -exp all            # quick versions of everything
//	tigerbench -exp fig8 -paper    # the full §5 procedure (50 s steps)
//	tigerbench -exp loss -hold 1h  # the paper's hour at full load
//
// All runs are deterministic in virtual time; -seed varies the workload.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tiger"
	"tiger/internal/sim"
)

var (
	expFlag  = flag.String("exp", "all", "experiment to run, \"all\", or \"list\" to print every name with a description")
	parallel = flag.Int("parallel", 1, "worker-pool width for multi-point sweeps (0 = GOMAXPROCS); results are identical at any width")
	paper    = flag.Bool("paper", false, "use the paper's full-scale procedure (30-stream steps, 50 s settles)")
	hold     = flag.Duration("hold", 0, "steady-state hold for the loss experiment (paper: 1h; default scales with -paper)")
	seed     = flag.Int64("seed", 1, "workload seed")
	clients  = flag.Bool("client-drops", false, "model overloaded client machines (the paper's 8 client-side losses)")
	failedAt = flag.Int("fail-cub", 5, "cub to fail in failed-mode runs")
	csvDir   = flag.String("csv", "", "also write plot-ready CSV files for fig8/fig9/fig10/scale into this directory")
	outDir   = flag.String("out", "", "also write machine-readable BENCH_*.json result artifacts into this directory")

	grayFactorsFlag = flag.String("grayfactors", "1.5,2,3", "comma-separated disk slowdown factors for the grayfail sweep")
	grayHold        = flag.Duration("grayhold", 45*time.Second, "post-injection hold per grayfail point")
	attrFlag        = flag.Bool("attr", false, "enable causal tracing and print per-component deadline-slack attribution (grayfail, loss, elastic)")

	scaleCubsFlag = flag.String("scalecubs", "14,28,56,112,250,500,1000",
		"comma-separated cub counts for the scalability sweep")
	scaleSettle = flag.Duration("scalesettle", 30*time.Second, "post-ramp settle per scalability point")
	scaleHold   = flag.Duration("scalehold", 60*time.Second, "measured hold per scalability point")
	nsEvBudget  = flag.Float64("nsevent-budget", 0,
		"fail if any scalability point exceeds this many wall ns per simulation event (0 = report only)")
	allocsBudget = flag.Float64("allocs-budget", 0,
		"fail if any scalability point exceeds this many heap allocations per simulation event (0 = report only)")

	elasticArmsFlag = flag.String("elasticarms", strings.Join(tiger.ElasticArms, ","),
		"comma-separated chaos arms for the elastic sweep (clean|crash|partition|disk-slow)")

	corrArmsFlag = flag.String("corrarms", strings.Join(tiger.CorrelatedArms, ","),
		"comma-separated arms for the correlated-failure sweep")

	failoverArmsFlag = flag.String("failoverarms", strings.Join(tiger.FailoverArms, ","),
		"comma-separated arms for the controller-failover sweep")
)

// experiment is one entry of the -exp registry: a name, a one-line
// description for -exp list (and the unknown-name error), and whether
// the experiment runs as part of -exp all or only when named (the slow
// multi-minute sweeps).
type experiment struct {
	name  string
	desc  string
	inAll bool
	fn    func() error
}

// listExperiments prints the registry, one line per experiment.
func listExperiments(w io.Writer, exps []experiment) {
	fmt.Fprintln(w, "experiments:")
	for _, e := range exps {
		extra := ""
		if !e.inAll {
			extra = " [slow: runs only when named, not under -exp all]"
		}
		fmt.Fprintf(w, "  %-12s %s%s\n", e.name, e.desc, extra)
	}
}

// writeCSV emits rows into <csvDir>/<name>.csv when -csv is set.
func writeCSV(name string, header []string, rows [][]string) error {
	if *csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// writeJSON writes one experiment's full result object to
// <outDir>/BENCH_<name>.json when -out is set.
func writeJSON(name string, v any) error {
	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*outDir, "BENCH_"+name+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeArtifact streams into <outDir>/BENCH_<name> when -out is set
// (JSONL exports too big to hold as one object).
func writeArtifact(name string, fill func(io.Writer) error) error {
	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(*outDir, "BENCH_"+name))
	if err != nil {
		return err
	}
	defer f.Close()
	return fill(f)
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func main() {
	flag.Parse()
	tiger.SetSweepParallelism(*parallel)
	o := tiger.DefaultOptions()
	o.Seed = *seed
	if !*clients {
		o.ClientDropProb = 0
	}

	ramp := tiger.QuickRamp()
	lossHold := 3 * time.Minute
	if *paper {
		ramp = tiger.PaperRamp()
		lossHold = time.Hour
	}
	if *hold > 0 {
		lossHold = *hold
	}

	// The registry: run order is "-exp all" order. The slow multi-minute
	// sweeps (baseline re-runs fig8 + loss; scalability reaches 1000
	// cubs; correlated and failover hold full-capacity clusters through
	// whole fault cycles) run only when named.
	exps := []experiment{
		{"capacity", "§5 capacity plan: block service time, streams per disk, rated streams", true, func() error { return capacity(o) }},
		{"fig8", "load curve with no cubs failed (Figure 8)", true, func() error { return loadCurve(o, -1, ramp) }},
		{"fig9", "load curve with one cub failed, mirrors serving (Figure 9)", true, func() error { return loadCurve(o, *failedAt, ramp) }},
		{"fig10", "stream startup latency vs schedule load (Figure 10)", true, func() error { return fig10(o, ramp) }},
		{"loss", "block loss rates at full load, unfailed and failed-mode (§5)", true, func() error { return loss(o, lossHold) }},
		{"reconfig", "schedule reconfiguration after a power cut at 50% load", true, func() error { return reconfig(o) }},
		{"scale", "distributed vs centralized control traffic (§3.3)", true, func() error { return scale(o) }},
		{"ablate-fwd", "ablation A1: double vs single viewer-state forwarding", true, func() error { return ablateFwd(o) }},
		{"ablate-dc", "ablation A2: decluster-factor trade-off", true, func() error { return ablateDc(o) }},
		{"ablate-lead", "ablation A3: viewer-state lead sweep", true, func() error { return ablateLead(o) }},
		{"flash", "flash crowd: every viewer requests the same title at once", true, func() error { return flash(o) }},
		{"chaos", "partition-duration sweep: split-brain healing, death refutation", true, func() error { return chaosSweep(o) }},
		{"grayfail", "fail-slow disk sweep: detect, hedge, quarantine", true, func() error { return grayfail(o) }},
		{"elastic", "online restripe sweep: grow and shrink the array while serving", true, func() error { return elastic(o) }},
		{"failover", "controller crash + epoch-fenced takeover: scavenged state rebuild", false, func() error { return failover(o) }},
		{"score", "deadline-slack score across the standard scenarios", true, func() error { return score(o) }},
		{"observe", "observability capture: metrics snapshot + protocol event trace", true, func() error { return observe(o) }},
		{"ablate-frag", "ablation A4: network-schedule start quantization", true, func() error { return ablateFrag() }},
		{"baseline", "committed performance envelope: fig8 headline + loss + engine cost", false, func() error { return baseline(o, ramp, lossHold) }},
		{"scalability", "warehouse scale: rated capacity vs resource bounds, 14 to 1000 cubs", false, func() error { return scalability(o) }},
		{"correlated", "correlated failures: domains, mirror exhaustion, degradation governor", false, func() error { return correlated(o) }},
	}

	if *expFlag == "list" {
		listExperiments(os.Stdout, exps)
		return
	}
	if *expFlag != "all" {
		known := false
		for _, e := range exps {
			if e.name == *expFlag {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "tigerbench: unknown experiment %q\n\n", *expFlag)
			listExperiments(os.Stderr, exps)
			os.Exit(1)
		}
	}

	for _, e := range exps {
		if *expFlag == "all" && !e.inAll {
			continue
		}
		if *expFlag != "all" && e.name != *expFlag {
			continue
		}
		start := time.Now()
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %v wall time]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}

// failover prints and gates the controller-failover sweep: the
// controller dies and a new incarnation takes over by scavenging the
// cubs' distributed schedule state, in three regimes (idle serving,
// mid-restripe, streams parked by the governor).
func failover(o tiger.Options) error {
	header("Controller failover: epoch-fenced takeover, scavenged rebuild",
		"the cubs are the schedule; admitted streams play through the outage untouched")
	pts, err := tiger.RunFailover(o, splitArms(*failoverArmsFlag))
	fmt.Printf("%15s %5s %8s %8s %9s %6s %6s %6s %8s %5s %8s %5s %7s %6s\n",
		"arm", "load", "streams", "outage", "takeover", "scav", "plays", "parks",
		"retries", "lost", "doubles", "viol", "active", "conv")
	for _, p := range pts {
		if p.Cubs == 0 {
			continue // arm aborted before setup (its error is reported below)
		}
		fmt.Printf("%15s %5.2f %8d %7.0fs %8.2fs %6d %6d %6d %8d %5d %8d %5d %7d %6v\n",
			p.Arm, p.LoadFrac, p.Streams, p.OutageSec, p.TakeoverSec,
			p.ScavengesServed, p.ScavengedPlays, p.ScavengedParks,
			p.StartRetries, p.BlocksLost, p.DoubleServes, p.Violations,
			p.ActiveAfter, p.Converged)
	}
	if err != nil {
		return err
	}
	return writeJSON("failover", pts)
}

// observe runs a modest load and exports the observability artifacts: a
// full metrics snapshot (JSONL, one series per line) and the protocol
// event trace. It also prints the block-lifecycle deadline-slack
// distribution, the tentpole series of the unified metrics layer.
func observe(o tiger.Options) error {
	header("Observability capture: metrics registry + protocol trace",
		"every stage of a block's lifecycle measured against its deadline")
	c, err := tiger.New(o)
	if err != nil {
		return err
	}
	ring := c.EnableTrace(1 << 16)
	if err := c.RampTo(100); err != nil {
		return err
	}
	c.RunFor(30 * time.Second)

	// Fold the per-cub deadline-slack histograms into one line per stage.
	type agg struct {
		count, neg uint64
		sum        float64
	}
	stages := map[string]*agg{}
	for _, p := range c.Registry().Snapshot() {
		if p.Name != "tiger_block_deadline_slack_seconds" {
			continue
		}
		st := p.Labels["stage"]
		a := stages[st]
		if a == nil {
			a = &agg{}
			stages[st] = a
		}
		a.count += p.Count
		a.sum += p.Sum
		// Strictly negative buckets only: a send at exactly its due time
		// has slack 0 and is on time.
		for i, b := range p.Bounds {
			if b < 0 {
				a.neg += p.Counts[i]
			}
		}
	}
	fmt.Printf("%10s %12s %14s %12s\n", "stage", "events", "mean slack", "slack<0")
	for _, st := range []string{"insert", "state", "read", "send", "receipt"} {
		a := stages[st]
		if a == nil || a.count == 0 {
			continue
		}
		fmt.Printf("%10s %12d %13.3fs %12d\n", st, a.count, a.sum/float64(a.count), a.neg)
	}
	fmt.Printf("trace: %d events recorded, %d evicted (ring %d)\n",
		ring.Total(), ring.Dropped(), ring.Len())

	if err := writeArtifact("observe_metrics.jsonl", c.ExportMetrics); err != nil {
		return err
	}
	return writeArtifact("observe_events.jsonl", c.ExportEvents)
}

// chaosSweep is the partition-duration sweep: cut a cub off from both
// of its ring successors (the cubs that monitor it and hold its mirror
// pieces) for increasing durations, heal, and measure how long the
// split-brain takes to clear. The paper's only recovery from false
// death is a machine restart; the refutation path makes recovery a
// heartbeat interval regardless of how long the partition lasted.
func chaosSweep(o tiger.Options) error {
	header("Chaos: partition-duration sweep (split-brain healing)",
		"false deaths are refuted on proof of life -- no restart, zero conflicts, bounded loss")
	cuts := []time.Duration{
		5 * time.Second, 10 * time.Second, 20 * time.Second,
		30 * time.Second, 60 * time.Second,
	}
	pts, err := tiger.RunChaosSweep(o, 0, cuts)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %10s %9s %8s %8s %9s %8s %10s\n",
		"cut", "streams", "recovery", "refuted", "retired", "rejoins", "lost", "mirror", "violations")
	for _, p := range pts {
		rec := "never"
		if p.Converged {
			rec = fmt.Sprintf("%.1fs", p.RecoverySec)
		}
		fmt.Printf("%9.0fs %8d %10s %9d %8d %8d %9d %8d %10d\n",
			p.PartitionSec, p.Streams, rec, p.DeathsRefuted, p.MirrorsRetired,
			p.Rejoins, p.BlocksLost, p.MirrorBlocks, p.Violations)
	}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			f1(p.PartitionSec), strconv.Itoa(p.Streams), f1(p.RecoverySec),
			strconv.FormatInt(p.BlocksLost, 10), strconv.FormatInt(p.DeathsRefuted, 10),
			strconv.FormatInt(p.Rejoins, 10), strconv.Itoa(p.Violations),
		})
	}
	if err := writeCSV("chaos",
		[]string{"partition_s", "streams", "recovery_s", "blocks_lost", "deaths_refuted", "rejoins", "violations"},
		rows); err != nil {
		return err
	}
	return writeJSON("chaos", pts)
}

// grayfail is the fail-slow sweep: slowdown factor × mitigation arm.
// The fail-stop detectors never fire — the cub heartbeats, the disk
// answers — so without the health monitor every stream touching the
// slow drive silently loses blocks; the sweep shows detection time,
// hedge activity, quarantine, and the resulting loss for both arms.
func grayfail(o tiger.Options) error {
	header("Gray failure: fail-slow disk sweep (detect, hedge, quarantine)",
		"a slow disk defeats fail-stop detection; loss is driven entirely by late reads")
	var factors []float64
	for _, s := range strings.Split(*grayFactorsFlag, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("grayfail: bad factor %q: %v", s, err)
		}
		factors = append(factors, f)
	}
	pts, err := tiger.RunGrayFailSweepAttr(o, 0, factors, *grayHold, *attrFlag)
	if err != nil {
		return err
	}
	fmt.Printf("%7s %8s %8s %7s %9s %8s %8s %10s %10s %8s\n",
		"factor", "monitor", "lost", "loss%", "hedges", "mirror", "misses", "suspect", "quarant", "doubles")
	for _, p := range pts {
		arm := "off"
		if p.Hedge {
			arm = "on"
		}
		sus, quar := "never", "never"
		if p.Suspected {
			sus = fmt.Sprintf("%.1fs", p.TimeToSuspectSec)
		}
		if p.Quarantined {
			quar = fmt.Sprintf("%.1fs", p.TimeToQuarantineSec)
		}
		fmt.Printf("%7.2f %8s %8d %6.3f%% %9d %8d %8d %10s %10s %8d\n",
			p.Factor, arm, p.BlocksLost, p.LossPct, p.HedgesIssued,
			p.MirrorBlocks, p.ServerMisses, sus, quar, p.DoubleServes)
	}
	if *attrFlag {
		for _, p := range pts {
			if p.Attribution == nil {
				continue
			}
			arm := "monitor off"
			if p.Hedge {
				arm = "monitor on"
			}
			fmt.Printf("\nfactor %.2f, %s — where the slack went:\n", p.Factor, arm)
			p.Attribution.Render(os.Stdout)
			if n := len(p.Flight); n > 0 {
				fmt.Printf("flight recorder: %d failure dumps captured (see BENCH_grayfail.json)\n", n)
			}
		}
	}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			f1(p.Factor), strconv.FormatBool(p.Hedge), strconv.FormatInt(p.BlocksLost, 10),
			f1(p.LossPct), strconv.FormatInt(p.HedgesIssued, 10),
			f1(p.TimeToSuspectSec), f1(p.TimeToQuarantineSec), strconv.Itoa(p.DoubleServes),
		})
	}
	if err := writeCSV("grayfail",
		[]string{"factor", "monitor", "blocks_lost", "loss_pct", "hedges", "suspect_s", "quarantine_s", "double_serves"},
		rows); err != nil {
		return err
	}
	return writeJSON("grayfail", pts)
}

// elastic is the online-restripe sweep: grow and shrink the array under
// full load, with chaos arms striking mid-restripe. The headline
// numbers are the zero columns: no stream loses a block and no block is
// double-served in any arm, including a crash of the newest cub
// mid-copy and a partition of a retiring cub during its linger window.
func elastic(o tiger.Options) error {
	header("Elastic: online restripe sweep (grow and shrink while serving)",
		"every admitted stream keeps playing through the copy, cutover and drain")
	var arms []string
	for _, s := range strings.Split(*elasticArmsFlag, ",") {
		if a := strings.TrimSpace(s); a != "" {
			arms = append(arms, a)
		}
	}
	pts, err := tiger.RunElasticSweepAttr(o, arms, *attrFlag)
	if err != nil {
		return err
	}
	fmt.Printf("%7s %10s %6s %6s %7s %8s %7s %7s %8s %8s %7s %8s %8s %6s\n",
		"dir", "arm", "cubs", "moves", "reroute", "copy", "drain", "total", "MB/s", "lost", "doubles", "viol", "active", "cap")
	for _, p := range pts {
		fmt.Printf("%7s %10s %2d->%-3d %6d %7d %7.1fs %6.0fs %6.0fs %8.1f %8d %7d %8d %8d %6d\n",
			p.Dir, p.Arm, p.FromCubs, p.TargetCubs, p.Moves, p.Rerouted,
			p.CopySec, p.DrainSec, p.TotalSec, p.MoveMBps,
			p.BlocksLost, p.DoubleServes, p.Violations, p.ActiveAfter, p.CapacityAfter)
	}
	if *attrFlag {
		for _, p := range pts {
			if p.Attribution == nil {
				continue
			}
			fmt.Printf("\n%s %s — where the slack went:\n", p.Dir, p.Arm)
			p.Attribution.Render(os.Stdout)
			if n := len(p.Flight); n > 0 {
				fmt.Printf("flight recorder: %d failure dumps captured (see BENCH_elastic.json)\n", n)
			}
		}
	}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			p.Dir, p.Arm, strconv.Itoa(p.FromCubs), strconv.Itoa(p.TargetCubs),
			strconv.Itoa(p.Moves), strconv.FormatInt(p.Rerouted, 10),
			f1(p.CopySec), f1(p.DrainSec), f1(p.TotalSec), f1(p.MoveMBps),
			strconv.FormatInt(p.BlocksLost, 10), strconv.Itoa(p.DoubleServes),
			strconv.Itoa(p.Violations), strconv.Itoa(p.ActiveAfter), strconv.Itoa(p.CapacityAfter),
		})
	}
	if err := writeCSV("elastic",
		[]string{"dir", "arm", "from_cubs", "target_cubs", "moves", "rerouted",
			"copy_s", "drain_s", "total_s", "move_mbps", "blocks_lost",
			"double_serves", "violations", "active_after", "capacity_after"},
		rows); err != nil {
		return err
	}
	return writeJSON("elastic", pts)
}

func flash(o tiger.Options) error {
	header("Flash crowd: every viewer requests the same title (§2.2)",
		"striping prevents hotspots; Tiger delays starts to enforce equitemporal spacing")
	res, err := tiger.RunFlashCrowd(o, 300, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("  viewers          : %d requested at t=0, %d admitted\n", res.Viewers, res.Admitted)
	fmt.Printf("  start spread     : %v .. %v (%.1f starts/s ~ one disk's slot rate)\n",
		res.FirstStart.Round(time.Millisecond), res.LastStart.Round(time.Millisecond), res.AdmitRate)
	fmt.Printf("  disk duty        : mean %.0f%%, max %.0f%% (no hotspot)\n",
		res.MeanDiskDuty*100, res.MaxDiskDuty*100)
	fmt.Printf("  blocks           : %d delivered, %d lost\n", res.BlocksOK, res.BlocksLost)
	return writeJSON("flash", res)
}

// BaselineResult is the committed performance envelope of a revision:
// the Figure 8 full-load headline factors, both §5 loss-rate scenarios,
// and the raw event-engine cost. Regenerate with
// `tigerbench -exp baseline -out .` and diff against BENCH_seed.json.
type BaselineResult struct {
	Seed           int64
	Capacity       int
	FullLoadCubCPU float64
	FullLoadCtrl   float64
	FullLoadCtlBps float64
	BlocksOK       int64
	BlocksLost     int64
	Violations     int
	Loss           []tiger.LossRateResult
	EngineEvents   int
	EngineNsPerEv  float64
}

// engineNsPerEvent measures the raw sim-engine overhead with a
// self-perpetuating cascade (the shape of BenchmarkEventCascade), in
// wall-clock nanoseconds per event.
func engineNsPerEvent(events int) float64 {
	e := sim.New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < events {
			e.After(time.Microsecond, step)
		}
	}
	start := time.Now()
	e.After(0, step)
	e.Run()
	return float64(time.Since(start).Nanoseconds()) / float64(events)
}

// baseline captures the headline metrics committed as BENCH_seed.json.
func baseline(o tiger.Options, ramp tiger.RampSpec, hold time.Duration) error {
	header("Baseline capture: Figure 8 headline + loss rates + engine cost",
		"the numbers future revisions are diffed against")
	fig8, err := tiger.RunFigure8(o, ramp)
	if err != nil {
		return err
	}
	loss, err := tiger.RunLossRates(o, hold)
	if err != nil {
		return err
	}
	res := BaselineResult{
		Seed:         o.Seed,
		Capacity:     fig8.Capacity,
		BlocksOK:     fig8.BlocksOK,
		BlocksLost:   fig8.BlocksLost,
		Violations:   fig8.Violations,
		Loss:         loss,
		EngineEvents: 2_000_000,
	}
	last := fig8.Samples[len(fig8.Samples)-1]
	res.FullLoadCubCPU = last.CubCPU
	res.FullLoadCtrl = last.CtrlCPU
	res.FullLoadCtlBps = last.CtlTrafficBps
	engineNsPerEvent(res.EngineEvents / 10) // warm up
	res.EngineNsPerEv = engineNsPerEvent(res.EngineEvents)
	fmt.Printf("  capacity       : %d streams\n", res.Capacity)
	fmt.Printf("  full load      : cub CPU %.1f%%, ctrl %.2f%%, ctl %.1f KB/s\n",
		res.FullLoadCubCPU*100, res.FullLoadCtrl*100, res.FullLoadCtlBps/1e3)
	fmt.Printf("  blocks         : %d ok, %d lost, %d conflicts\n",
		res.BlocksOK, res.BlocksLost, res.Violations)
	for _, r := range res.Loss {
		rate := "lossless"
		if r.LossRate > 0 {
			rate = fmt.Sprintf("1 in %.0f", r.LossRate)
		}
		fmt.Printf("  loss           : %-28s %s\n", r.Name, rate)
	}
	fmt.Printf("  engine         : %.1f ns/event over %d events\n",
		res.EngineNsPerEv, res.EngineEvents)
	return writeJSON("seed", res)
}

func header(title, paperSays string) {
	fmt.Println(strings.Repeat("=", 78))
	fmt.Println(title)
	if paperSays != "" {
		fmt.Printf("paper: %s\n", paperSays)
	}
	fmt.Println(strings.Repeat("-", 78))
}

func capacity(o tiger.Options) error {
	header("Capacity plan (§5 configuration)",
		"56 disks, 0.25 MB blocks, decluster 4 -> ~10.75 streams/disk, 602 streams")
	c := tiger.CapacityTable(o)
	fmt.Printf("  block service time : %v\n", c.BlockService)
	fmt.Printf("  streams per disk   : %.3f\n", c.StreamsPerDisk)
	fmt.Printf("  system capacity    : %d streams\n", c.Streams)
	fmt.Printf("  schedule length    : %v (%d slots)\n",
		time.Duration(o.Cubs*o.DisksPerCub)*o.BlockPlay, c.Streams)
	return writeJSON("capacity", c)
}

func loadCurve(o tiger.Options, failCub int, ramp tiger.RampSpec) error {
	if failCub >= 0 {
		header("Figure 9: Tiger loads with one cub failed",
			"mirror disks >95% duty; control ~2x unfailed, <=21 KB/s; cub CPU <=85%; 13.4 MB/s sends")
	} else {
		header("Figure 8: Tiger loads with no cubs failed",
			"cub CPU linear in streams; controller flat; control traffic in the KB/s range")
	}
	res, err := tiger.RunLoadCurve(o, failCub, ramp)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %8s %9s %9s %11s %11s %10s\n",
		"streams", "cubCPU%", "ctrlCPU%", "disk%", "mirror%", "ctl KB/s", "send MB/s")
	for _, s := range res.Samples {
		fmt.Printf("%8d %8.1f %9.2f %9.1f %11.1f %11.2f %10.2f\n",
			s.Streams, s.CubCPU*100, s.CtrlCPU*100, s.DiskLoad*100,
			s.MirrorDiskLoad*100, s.CtlTrafficBps/1e3, s.DataRateBps/1e6)
	}
	fmt.Printf("blocks ok=%d lost=%d (server misses %d, mirror-served %d); conflicts=%d\n",
		res.BlocksOK, res.BlocksLost, res.ServerMisses, res.MirrorBlocks, res.Violations)
	if res.LossRate > 0 {
		fmt.Printf("loss rate: 1 in %.0f\n", res.LossRate)
	}
	name := "fig8"
	if failCub >= 0 {
		name = "fig9"
	}
	var rows [][]string
	for _, smp := range res.Samples {
		rows = append(rows, []string{
			strconv.Itoa(smp.Streams), f1(smp.CubCPU), f1(smp.CtrlCPU), f1(smp.DiskLoad),
			f1(smp.MirrorDiskLoad), f1(smp.CtlTrafficBps), f1(smp.DataRateBps),
		})
	}
	if err := writeCSV(name,
		[]string{"streams", "cub_cpu", "ctrl_cpu", "disk_load", "mirror_disk_load", "ctl_bps", "data_bps"},
		rows); err != nil {
		return err
	}
	return writeJSON(name, res)
}

func fig10(o tiger.Options, ramp tiger.RampSpec) error {
	header("Figure 10: stream startup latency vs schedule load",
		"~1.8 s floor below 50% load; mean <5 s at 95%; outliers >20 s near 100%")
	res, err := tiger.RunFigure10(o, ramp)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s\n", "load", "mean start")
	for i := range res.BucketLoad {
		fmt.Printf("%9.0f%% %12v\n", res.BucketLoad[i]*100, res.BucketMean[i].Round(time.Millisecond))
	}
	fmt.Printf("starts=%d  floor=%v  mean@90-97%%=%v  >20s outliers=%d\n",
		len(res.Points), res.Floor.Round(time.Millisecond),
		res.MeanAt95.Round(time.Millisecond), res.Over20s)
	var rows [][]string
	for _, pt := range res.Points {
		rows = append(rows, []string{f1(pt.Load), f1(pt.Latency.Seconds())})
	}
	if err := writeCSV("fig10", []string{"load", "latency_s"}, rows); err != nil {
		return err
	}
	return writeJSON("fig10", res)
}

func loss(o tiger.Options, hold time.Duration) error {
	header(fmt.Sprintf("Loss rates at full load (%v steady state)", hold),
		"unfailed ~1 in 180,000; failed-mode hour ~1 in 40,000")
	rs, err := tiger.RunLossRatesAttr(o, hold, *attrFlag)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8s %10s %7s %10s %12s\n",
		"scenario", "streams", "blocks", "lost", "srv-miss", "rate")
	for _, r := range rs {
		rate := "lossless"
		if r.LossRate > 0 {
			rate = fmt.Sprintf("1 in %.0f", r.LossRate)
		}
		fmt.Printf("%-28s %8d %10d %7d %10d %12s\n",
			r.Name, r.Streams, r.BlocksOK+r.BlocksLost, r.BlocksLost, r.ServerMisses, rate)
	}
	if *attrFlag {
		for _, r := range rs {
			if r.Attribution == nil {
				continue
			}
			fmt.Printf("\n%s — where the slack went:\n", r.Name)
			r.Attribution.Render(os.Stdout)
			if n := len(r.Flight); n > 0 {
				fmt.Printf("flight recorder: %d failure dumps captured (see BENCH_loss.json)\n", n)
			}
		}
	}
	return writeJSON("loss", rs)
}

func reconfig(o tiger.Options) error {
	header("Reconfiguration after a power cut at 50% load",
		"about 8 seconds between the earliest and latest lost block")
	res, err := tiger.RunReconfig(o)
	if err != nil {
		return err
	}
	fmt.Printf("  streams          : %d\n", res.Streams)
	fmt.Printf("  blocks lost      : %d\n", res.LostBlocks)
	fmt.Printf("  loss window      : %v\n", res.LossSpan.Round(time.Millisecond))
	fmt.Printf("  deadman timeout  : %v\n", res.DetectedIn)
	fmt.Printf("  mirror catches   : %d blocks\n", res.MirrorCatch)
	return writeJSON("reconfig", res)
}

func scale(o tiger.Options) error {
	header("Scalability: distributed vs centralized control (§3.3)",
		"central controller needs MB/s at tens of thousands of streams; per-cub traffic stays flat")
	pts, err := tiger.RunScalability(o, []int{7, 14, 28, 56}, 15*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %9s %14s %15s %12s %9s\n",
		"cubs", "streams", "per-cub KB/s", "central KB/s", "view size", "ctrlCPU%")
	for _, p := range pts {
		fmt.Printf("%6d %9d %14.2f %15.2f %12d %9.3f\n",
			p.Cubs, p.Streams, p.PerCubCtlBps/1e3, p.CentralizedBps/1e3,
			p.MaxViewEntries, p.ControllerLoad*100)
	}
	// The paper's 1000-cub extrapolation.
	fmt.Printf("extrapolation: 40,000 streams -> central controller sends %.1f MB/s of viewer states\n",
		40000*97/1e6)
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.Cubs), strconv.Itoa(p.Streams),
			f1(p.PerCubCtlBps), f1(p.CentralizedBps), strconv.Itoa(p.MaxViewEntries),
		})
	}
	if err := writeCSV("scale_ctl",
		[]string{"cubs", "streams", "per_cub_ctl_bps", "centralized_bps", "view_entries"}, rows); err != nil {
		return err
	}
	return writeJSON("scale_ctl", pts)
}

// scalability is the warehouse-scale sweep: each cluster size runs at
// its full rated capacity on a sharded simulation, and the table
// compares that rated capacity against the resource bounds (Viennot et
// al.: no scheme can beat raw disk or NIC bandwidth) while pinning the
// simulator's per-event cost and per-cub memory footprint.
func scalability(o tiger.Options) error {
	header("Warehouse scale: rated capacity vs resource bounds (Viennot et al.)",
		"capacity tracks d/(d+1) of the disk bound; ns/event and heap/cub stay flat to 1000 cubs")
	var cubCounts []int
	for _, s := range strings.Split(*scaleCubsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -scalecubs entry %q", s)
		}
		cubCounts = append(cubCounts, n)
	}
	pts, err := tiger.RunScaleCapacity(o, cubCounts, *scaleSettle, *scaleHold)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %6s %7s %8s %9s %6s %9s %6s %7s %9s %9s %6s\n",
		"cubs", "disks", "shards", "rated", "bound", "frac", "streams", "lost", "misses",
		"ns/event", "allocs/ev", "KiB/cub")
	for _, p := range pts {
		fmt.Printf("%6d %6d %7d %8d %9d %6.3f %9d %6d %7d %9.1f %9.3f %6d\n",
			p.Cubs, p.Disks, p.Shards, p.Rated, p.Bound, p.CapacityFrac,
			p.Achieved, p.BlocksLost, p.ServerMisses,
			p.NsPerEvent, p.AllocsPerEvent, p.HeapBytesPerCub/1024)
	}
	last := pts[len(pts)-1]
	fmt.Printf("memory footprint at %d cubs: %d KiB live heap per cub, max view %d entries (O(window), not O(slots)=%d)\n",
		last.Cubs, last.HeapBytesPerCub/1024, last.MaxViewEntries, last.Rated)

	// The sweep is also the acceptance gate: rated load must be lossless,
	// and the per-event budgets (when set) must hold at every size.
	for _, p := range pts {
		if p.BlocksLost != 0 || p.ServerMisses != 0 {
			return fmt.Errorf("%d cubs: %d blocks lost, %d server misses at rated load",
				p.Cubs, p.BlocksLost, p.ServerMisses)
		}
		if *nsEvBudget > 0 && p.NsPerEvent > *nsEvBudget {
			return fmt.Errorf("%d cubs: %.1f ns/event exceeds budget %.1f", p.Cubs, p.NsPerEvent, *nsEvBudget)
		}
		if *allocsBudget > 0 && p.AllocsPerEvent > *allocsBudget {
			return fmt.Errorf("%d cubs: %.3f allocs/event exceeds budget %.3f", p.Cubs, p.AllocsPerEvent, *allocsBudget)
		}
	}

	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.Cubs), strconv.Itoa(p.Disks), strconv.Itoa(p.Shards),
			strconv.Itoa(p.Rated), strconv.Itoa(p.Bound), f1(p.CapacityFrac),
			strconv.Itoa(p.Achieved), strconv.FormatInt(p.BlocksLost, 10),
			f1(p.NsPerEvent), f1(p.AllocsPerEvent),
			strconv.FormatUint(p.HeapBytesPerCub, 10), strconv.Itoa(p.MaxViewEntries),
		})
	}
	if err := writeCSV("scalability",
		[]string{"cubs", "disks", "shards", "rated", "bound", "capacity_frac",
			"streams", "blocks_lost", "ns_per_event", "allocs_per_event",
			"heap_bytes_per_cub", "view_entries"}, rows); err != nil {
		return err
	}
	return writeJSON("scale", pts)
}

func ablateFwd(o tiger.Options) error {
	header("Ablation A1: double vs single forwarding (§4.1.1)",
		"single forwarding halves control traffic but loses queued schedule info on failure")
	res, err := tiger.RunAblationForwarding(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %14s %16s\n", "variant", "blocks lost", "ctl bytes/s")
	fmt.Printf("%-10s %14d %16.0f\n", "double", res.DoubleLost, res.DoubleCtl)
	fmt.Printf("%-10s %14d %16.0f\n", "single", res.SingleLost, res.SingleCtl)
	fmt.Printf("(%d streams, %v after the failure)\n", res.Streams, res.RunDuration)
	return nil
}

func ablateDc(o tiger.Options) error {
	header("Ablation A2: decluster factor trade-off (§2.3)",
		"decluster 4: 1/5 bandwidth reserved, 8 vulnerable disks; decluster 2: 1/3 reserved, span 4")
	pts, err := tiger.RunAblationDecluster(o, []int{2, 4, 8}, 20*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %10s %10s %7s %13s %7s\n",
		"dc", "capacity", "reserved", "span", "mirror duty%", "lost")
	for _, p := range pts {
		fmt.Printf("%4d %10d %9.1f%% %7d %13.1f %7d\n",
			p.Decluster, p.Capacity, p.ReservedFraction*100, p.VulnerableSpan,
			p.MirrorDiskLoad*100, p.BlocksLost)
	}
	return nil
}

func ablateLead(o tiger.Options) error {
	header("Ablation A3: viewer-state lead sweep (§4.1.1)",
		"typical minVStateLead=4s, maxVStateLead=9s; views bounded by the max lead")
	pairs := [][2]time.Duration{
		{time.Second, 2 * time.Second},
		{2 * time.Second, 5 * time.Second},
		{4 * time.Second, 9 * time.Second},
		{8 * time.Second, 18 * time.Second},
	}
	pts, err := tiger.RunAblationLead(o, pairs, 20*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %8s %10s %12s %11s %6s\n",
		"min", "max", "msgs/s", "ctl KB/s", "view size", "lost")
	for _, p := range pts {
		fmt.Printf("%8v %8v %10.1f %12.2f %11d %6d\n",
			p.MinLead, p.MaxLead, p.CtlMsgsPerSec, p.CtlBps/1e3, p.MaxViewEntries, p.BlocksLost)
	}
	return nil
}

func ablateFrag() error {
	header("Ablation A4: network-schedule start quantization (§3.2)",
		"fragmentation acceptable when starts are multiples of blockPlay/decluster")
	quanta := []time.Duration{0, 125 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond}
	pts, err := tiger.RunAblationFragmentation(14, 100_000_000, quanta, 7)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %10s %13s %15s\n", "quantum", "admitted", "utilization", "frag loss")
	for _, p := range pts {
		q := "arbitrary"
		if p.Quantum > 0 {
			q = p.Quantum.String()
		}
		fmt.Printf("%12s %10d %12.1f%% %14.1f%%\n",
			q, p.Admitted, p.Utilization*100, p.Fragmentation*100)
	}
	return nil
}

// splitArms parses a comma-separated arm-selection flag.
func splitArms(s string) []string {
	var arms []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			arms = append(arms, a)
		}
	}
	return arms
}

func correlated(o tiger.Options) error {
	header("Correlated failures: domains, mirror exhaustion, graceful degradation",
		"beyond single-failure coverage: survivors lose nothing, endangered streams park and resume")
	pts, err := tiger.RunCorrelated(o, splitArms(*corrArmsFlag))
	fmt.Printf("%18s %5s %7s %8s %7s %6s %6s %7s %5s %7s %8s %6s\n",
		"arm", "cubs", "shards", "streams", "unserv", "parks", "bound", "resumes", "lost",
		"doubles", "drain_s", "conv")
	for _, p := range pts {
		if p.Cubs == 0 {
			continue // arm aborted before setup (its error is reported below)
		}
		fmt.Printf("%18s %5d %7d %8d %7d %6d %6d %7d %5d %7d %8.1f %6v\n",
			p.Arm, p.Cubs, p.Shards, p.Streams, p.Unservable, p.Parks, p.ParkBound,
			p.Resumes, p.BlocksLost, p.DoubleServes, p.DrainSec, p.Converged)
	}
	if err != nil {
		return err
	}
	return writeJSON("correlated", pts)
}
