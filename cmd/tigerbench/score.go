package main

import (
	"fmt"
	"time"

	"tiger"
)

// score runs quick versions of every experiment and grades the measured
// values against the paper's claims — a one-command verification that
// the reproduction still holds.
func score(o tiger.Options) error {
	header("Scorecard: paper claims vs this reproduction",
		"PASS = the claim's shape holds; values are this run's measurements")

	type check struct {
		claim    string
		paper    string
		measured string
		pass     bool
	}
	var checks []check
	add := func(claim, paper, measured string, pass bool) {
		checks = append(checks, check{claim, paper, measured, pass})
	}

	// Capacity plan.
	capa := tiger.CapacityTable(o)
	add("system capacity", "602 streams, ~10.75/disk",
		fmt.Sprintf("%d streams, %.3f/disk", capa.Streams, capa.StreamsPerDisk),
		capa.Streams == 602)

	// Figures 8 and 9.
	ramp := tiger.QuickRamp()
	f8, err := tiger.RunFigure8(o, ramp)
	if err != nil {
		return err
	}
	l8 := f8.Samples[len(f8.Samples)-1]
	mid := f8.Samples[len(f8.Samples)/2]
	linear := false
	if mid.Streams > 0 && l8.Streams > 0 {
		r := (l8.CubCPU / float64(l8.Streams)) / (mid.CubCPU / float64(mid.Streams))
		linear = r > 0.8 && r < 1.25
	}
	add("cub CPU linear in streams", "linear to <=85%",
		fmt.Sprintf("%.0f%% at %d streams", l8.CubCPU*100, l8.Streams),
		linear && l8.CubCPU < 0.85)
	add("controller load flat", "independent of streams",
		fmt.Sprintf("%.2f%%", l8.CtrlCPU*100), l8.CtrlCPU < 0.05)
	add("unfailed control traffic", "KB/s regime",
		fmt.Sprintf("%.1f KB/s", l8.CtlTrafficBps/1e3), l8.CtlTrafficBps < 21_000)

	o9 := o
	o9.Seed = o.Seed + 99
	f9, err := tiger.RunFigure9(o9, ramp)
	if err != nil {
		return err
	}
	l9 := f9.Samples[len(f9.Samples)-1]
	add("mirror disks near saturation", ">95% duty",
		fmt.Sprintf("%.0f%%", l9.MirrorDiskLoad*100), l9.MirrorDiskLoad > 0.88)
	add("mirroring cub send rate", ">13.4 MB/s",
		fmt.Sprintf("%.1f MB/s", l9.DataRateBps/1e6), l9.DataRateBps > 12.5e6)
	add("failed-mode control traffic", "~2x unfailed, <21 KB/s",
		fmt.Sprintf("%.1f vs %.1f KB/s", l9.CtlTrafficBps/1e3, l8.CtlTrafficBps/1e3),
		l9.CtlTrafficBps < 21_000 && l9.CtlTrafficBps > 1.4*l8.CtlTrafficBps)
	add("failed-mode survives full load", "all streams served",
		fmt.Sprintf("%d mirror-served blocks, %d lost", f9.MirrorBlocks, f9.BlocksLost),
		f9.MirrorBlocks > 0 && f9.BlocksLost*5000 < f9.BlocksOK)

	// Figure 10.
	f10, err := tiger.RunFigure10(o, ramp)
	if err != nil {
		return err
	}
	add("startup floor", "~1.8 s below 50% load",
		f10.Floor.Round(time.Millisecond).String(),
		f10.Floor > 1500*time.Millisecond && f10.Floor < 2300*time.Millisecond)
	add("startup grows with load", "outliers >20 s near 100%",
		fmt.Sprintf("mean@hi %v, %d outliers", f10.MeanAt95.Round(time.Millisecond), f10.Over20s),
		f10.MeanAt95 > f10.Floor)

	// Reconfiguration.
	rc, err := tiger.RunReconfig(o)
	if err != nil {
		return err
	}
	add("power-cut loss window bounded", "~8 s",
		rc.LossSpan.Round(time.Millisecond).String(),
		rc.LostBlocks > 0 && rc.LossSpan < 15*time.Second && rc.MirrorCatch > 0)

	// Scalability.
	sc, err := tiger.RunScalability(o, []int{7, 28}, 10*time.Second)
	if err != nil {
		return err
	}
	add("per-cub control flat in size", "constant; central grows",
		fmt.Sprintf("%.1f -> %.1f KB/s across 4x size", sc[0].PerCubCtlBps/1e3, sc[1].PerCubCtlBps/1e3),
		sc[1].PerCubCtlBps < 2*sc[0].PerCubCtlBps && sc[1].CentralizedBps > 3*sc[0].CentralizedBps)
	add("views bounded in size", "O(maxLead) entries",
		fmt.Sprintf("%d -> %d entries", sc[0].MaxViewEntries, sc[1].MaxViewEntries),
		sc[1].MaxViewEntries < 3*sc[0].MaxViewEntries)

	// Flash crowd.
	fc, err := tiger.RunFlashCrowd(o, 150, time.Minute)
	if err != nil {
		return err
	}
	add("flash crowd spaced, no hotspot", "delays enforce spacing; no overload",
		fmt.Sprintf("%.1f starts/s, max disk %.0f%%", fc.AdmitRate, fc.MaxDiskDuty*100),
		fc.Admitted == fc.Viewers && fc.AdmitRate < 12 && fc.MaxDiskDuty < 0.8 && fc.BlocksLost == 0)

	// Forwarding ablation.
	fw, err := tiger.RunAblationForwarding(o)
	if err != nil {
		return err
	}
	add("double forwarding earns its cost", "single loses queued info",
		fmt.Sprintf("lost %d vs %d", fw.DoubleLost, fw.SingleLost),
		fw.SingleLost > 2*fw.DoubleLost)

	passed := 0
	for _, c := range checks {
		verdict := "FAIL"
		if c.pass {
			verdict = "PASS"
			passed++
		}
		fmt.Printf("%-4s %-34s paper: %-28s measured: %s\n", verdict, c.claim, c.paper, c.measured)
	}
	fmt.Printf("\n%d of %d claims reproduced\n", passed, len(checks))
	if passed != len(checks) {
		return fmt.Errorf("scorecard: %d claims failed", len(checks)-passed)
	}
	return nil
}
