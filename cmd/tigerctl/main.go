// Command tigerctl is the client for a running tigerd system: it starts
// streams, receives and verifies the blocks (like the paper's
// measurement client, which rendered nothing and checked timeliness),
// and stops streams.
//
//	tigerctl -controller 127.0.0.1:7000 -play 0 -duration 10s
//	tigerctl -controller 127.0.0.1:7000 -play 2 -viewers 5 -duration 30s
//
// The stats subcommand scrapes a tigerd debug endpoint and summarises
// its metrics:
//
//	tigerctl stats -debug 127.0.0.1:9000
//
// The restripe subcommand summarises elastic-restripe progress from the
// same endpoint: phase, committed/rerouted moves, and mover totals:
//
//	tigerctl restripe -debug 127.0.0.1:9000
//
// The why subcommand answers "why was this block late": it fetches the
// causal hop chain of a traced block from the debug endpoint and prints
// where the deadline slack went, hop by hop:
//
//	tigerctl why -debug 127.0.0.1:9000 12          # all chains of instance 12
//	tigerctl why -debug 127.0.0.1:9000 12 340      # just block 340
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tiger/internal/msg"
	"tiger/internal/rt"
)

var (
	controller = flag.String("controller", "127.0.0.1:7000", "controller control address")
	play       = flag.Int("play", -1, "file ID to play")
	startBlock = flag.Int("start", 0, "first block wanted")
	bitrate    = flag.Int64("bitrate", 2_000_000, "stream bitrate (bits/s)")
	viewers    = flag.Int("viewers", 1, "number of simultaneous viewers")
	duration   = flag.Duration("duration", 10*time.Second, "how long to play before stopping")
	blockPlay  = flag.Duration("blockplay", 250*time.Millisecond, "expected block play time (for timeliness checks)")
	jsonOut    = flag.Bool("json", false, "emit the final timeliness summary as JSON on stdout")
)

// jsonViewer and jsonSummary are the -json output shape.
type jsonViewer struct {
	Viewer      int64 `json:"viewer"`
	Instance    int64 `json:"instance"`
	Blocks      int64 `json:"blocks"`
	Late        int64 `json:"late"`
	LastPlaySeq int32 `json:"last_playseq"`
	FirstMs     int64 `json:"first_block_ms"` // request to first block
}

type jsonSummary struct {
	Viewers  []jsonViewer `json:"viewers"`
	Total    int64        `json:"total_blocks"`
	Expected int64        `json:"expected_blocks"`
	Late     int64        `json:"late_blocks"`
	OK       bool         `json:"ok"`
}

type viewerState struct {
	id       msg.ViewerID
	inst     atomic.Int64
	blocks   atomic.Int64
	late     atomic.Int64
	lastSeq  atomic.Int32
	firstAt  atomic.Int64 // unix nanos of the first block
	reqAt    time.Time
	received sync.Map // playseq -> arrival time
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "restripe" {
		runRestripe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "why" {
		runWhy(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "parked" {
		runParked(os.Args[2:])
		return
	}
	flag.Parse()
	if *play < 0 {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -play <fileID>")
		flag.Usage()
		os.Exit(2)
	}
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	vc, err := rt.NewViewerClient("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer vc.Close()

	states := make(map[msg.ViewerID]*viewerState)
	var mu sync.Mutex
	acks := make(chan *msg.StartAck, 16)
	vc.SetHandlers(
		func(b *msg.BlockData) {
			mu.Lock()
			vs := states[b.Viewer]
			mu.Unlock()
			if vs == nil || msg.InstanceID(vs.inst.Load()) != b.Instance {
				return
			}
			now := time.Now()
			n := vs.blocks.Add(1)
			vs.lastSeq.Store(b.PlaySeq)
			if n == 1 {
				vs.firstAt.Store(now.UnixNano())
				log.Printf("viewer %d: first block after %v (file %d block %d, %d bytes)",
					b.Viewer, now.Sub(vs.reqAt).Round(time.Millisecond), b.File, b.Block, b.Bytes)
				return
			}
			// Timeliness: block k should arrive ~k block-play-times after
			// the first.
			expected := time.Unix(0, vs.firstAt.Load()).
				Add(time.Duration(b.PlaySeq) * *blockPlay)
			if now.After(expected.Add(*blockPlay / 2)) {
				vs.late.Add(1)
			}
		},
		func(a *msg.StartAck) { acks <- a },
	)

	cc, err := rt.DialController(*controller)
	if err != nil {
		log.Fatal(err)
	}
	defer cc.Close()

	for i := 0; i < *viewers; i++ {
		vid := msg.ViewerID(os.Getpid()*1000 + i)
		vs := &viewerState{id: vid, reqAt: time.Now()}
		mu.Lock()
		states[vid] = vs
		mu.Unlock()
		if err := cc.Start(vid, vc.Addr(), msg.FileID(*play), int32(*startBlock), int32(*bitrate)); err != nil {
			log.Fatal(err)
		}
	}

	// Collect acks (they carry the instance IDs needed to stop).
	pending := *viewers
	timeout := time.After(10 * time.Second)
	var instances []msg.InstanceID
	for pending > 0 {
		select {
		case a := <-acks:
			mu.Lock()
			if vs := states[a.Viewer]; vs != nil {
				vs.inst.Store(int64(a.Instance))
			}
			mu.Unlock()
			instances = append(instances, a.Instance)
			log.Printf("start acked: viewer %d instance %d slot %d", a.Viewer, a.Instance, a.Slot)
			pending--
		case <-timeout:
			log.Fatalf("timed out waiting for %d start acks", pending)
		}
	}

	time.Sleep(*duration)

	for _, inst := range instances {
		if err := cc.Stop(inst); err != nil {
			log.Printf("stop %d: %v", inst, err)
		}
	}
	time.Sleep(500 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	var total, late int64
	var sum jsonSummary
	for _, vs := range states {
		b, l := vs.blocks.Load(), vs.late.Load()
		total += b
		late += l
		log.Printf("viewer %d: %d blocks (last playseq %d), %d late", vs.id, b, vs.lastSeq.Load(), l)
		firstMs := int64(-1)
		if at := vs.firstAt.Load(); at != 0 {
			firstMs = time.Unix(0, at).Sub(vs.reqAt).Milliseconds()
		}
		sum.Viewers = append(sum.Viewers, jsonViewer{
			Viewer: int64(vs.id), Instance: vs.inst.Load(),
			Blocks: b, Late: l, LastPlaySeq: vs.lastSeq.Load(), FirstMs: firstMs,
		})
	}
	expected := int64(float64(*viewers) * duration.Seconds() / blockPlay.Seconds())
	log.Printf("total: %d blocks received (~%d expected), %d late", total, expected, late)
	sum.Total, sum.Expected, sum.Late = total, expected, late
	sum.OK = total >= expected*8/10
	if *jsonOut {
		sort.Slice(sum.Viewers, func(i, j int) bool { return sum.Viewers[i].Viewer < sum.Viewers[j].Viewer })
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	}
	if !sum.OK {
		os.Exit(1)
	}
}

// runRestripe scrapes a tigerd debug endpoint's /metrics and prints the
// elastic-restripe status: the phase gauge, coordinator progress, and
// the mover counters summed over every cub.
func runRestripe(args []string) {
	fs := flag.NewFlagSet("restripe", flag.ExitOnError)
	addr := fs.String("debug", "127.0.0.1:9000", "tigerd debug address (control port + 2000 by default)")
	fs.Parse(args)

	resp, err := http.Get("http://" + *addr + "/metrics")
	if err != nil {
		log.Fatalf("scrape %s: %v", *addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("scrape %s: %s", *addr, resp.Status)
	}

	// Sum each restripe-relevant series over its labels (the per-cub
	// mover counters carry a cub label; the controller's do not).
	sums := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]
		name := series
		if b := strings.IndexByte(name, '{'); b >= 0 {
			name = name[:b]
		}
		if !strings.HasPrefix(name, "tiger_restripe_") && !strings.HasPrefix(name, "tiger_cub_move") {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		sums[name] += v
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading scrape: %v", err)
	}

	phases := []string{"idle", "copy", "cutover", "drain", "linger", "done"}
	phase := "idle"
	if p := int(sums["tiger_restripe_phase"]); p >= 0 && p < len(phases) {
		phase = phases[p]
	}
	fmt.Printf("phase      : %s\n", phase)
	fmt.Printf("committed  : %.0f moves\n", sums["tiger_restripe_commits_total"])
	fmt.Printf("rerouted   : %.0f moves\n", sums["tiger_restripe_reroutes_total"])
	fmt.Printf("pending    : %.0f copy jobs queued at cubs\n", sums["tiger_cub_moves_pending"])
	fmt.Printf("moved out  : %.0f blocks (%.1f MB)\n",
		sums["tiger_cub_moves_out_total"], sums["tiger_cub_move_bytes_out_total"]/1e6)
	fmt.Printf("moved in   : %.0f blocks (%.1f MB)\n",
		sums["tiger_cub_moves_in_total"], sums["tiger_cub_move_bytes_in_total"]/1e6)
	fmt.Printf("nacked     : %.0f move orders\n", sums["tiger_cub_moves_nacked_total"])
}

// whyChain is one line of the /debug/trace/{instance} ndjson body.
type whyChain struct {
	Instance uint64 `json:"instance"`
	Block    int32  `json:"block"`
	Hops     []struct {
		AtNs    int64  `json:"at_ns"`
		Node    int32  `json:"node"`
		Kind    string `json:"kind"`
		SlackNs int64  `json:"slack_ns"`
		Slot    int32  `json:"slot"`
		Disk    int32  `json:"disk"`
		Mirror  bool   `json:"mirror"`
	} `json:"hops"`
}

// runWhy fetches a traced block's causal hop chain from a tigerd debug
// endpoint and prints it with per-hop slack deltas, so a late or missed
// block can be attributed to the component that consumed its deadline.
func runWhy(args []string) {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	addr := fs.String("debug", "127.0.0.1:9000", "tigerd debug address (control port + 2000 by default)")
	jsonRaw := fs.Bool("json", false, "dump the raw chain JSONL instead of the table")
	fs.Parse(args)
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tigerctl why [-debug addr] <instance> [block]")
		os.Exit(2)
	}
	url := "http://" + *addr + "/debug/trace/" + fs.Arg(0)
	if fs.NArg() > 1 {
		url += "/" + fs.Arg(1)
	}

	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("fetch %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("fetch %s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if *jsonRaw {
		io.Copy(os.Stdout, resp.Body)
		return
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ch whyChain
		if err := json.Unmarshal([]byte(line), &ch); err != nil {
			log.Fatalf("bad chain line: %v (%q)", err, line)
		}
		if n > 0 {
			fmt.Println()
		}
		n++
		printWhyChain(ch)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading chains: %v", err)
	}
	if n == 0 {
		log.Fatalf("no chains returned for %s", url)
	}
}

func printWhyChain(ch whyChain) {
	fmt.Printf("instance %d block %d — %d hops\n", ch.Instance, ch.Block, len(ch.Hops))
	fmt.Printf("  %-12s %-6s %-12s %12s %12s  %s\n",
		"t", "node", "hop", "slack", "delta", "detail")
	var prevAt, prevSlack int64
	for i, h := range ch.Hops {
		delta := "-"
		if i > 0 {
			// Slack bases differ across admit/receipt boundaries; fall
			// back to elapsed time there (mirrors internal/obs/attr).
			d := prevSlack - h.SlackNs
			if ch.Hops[i-1].Kind == "admit" || h.Kind == "receipt" {
				d = h.AtNs - prevAt
			}
			delta = time.Duration(d).String()
		}
		detail := ""
		if h.Disk >= 0 && h.Kind != "admit" {
			detail = fmt.Sprintf("disk %d", h.Disk)
		}
		if h.Mirror {
			detail += " mirror"
		}
		if h.Slot >= 0 {
			detail += fmt.Sprintf(" slot %d", h.Slot)
		}
		fmt.Printf("  %-12s %-6d %-12s %12s %12s  %s\n",
			time.Duration(h.AtNs).String(), h.Node, h.Kind,
			time.Duration(h.SlackNs).String(), delta, strings.TrimSpace(detail))
		prevAt, prevSlack = h.AtNs, h.SlackNs
	}
}

// runStats scrapes a tigerd debug endpoint's /metrics and prints a
// readable summary (or the raw exposition text with -raw). Histogram
// series are folded to their _count and _sum lines.
// runParked summarises the degradation governor's state from a tigerd
// debug endpoint: how many streams are parked, how many disks the
// governor computes mirror-exhausted, lifetime park/resume totals, and
// the per-cub view of park orders and local exhaustion beliefs.
func runParked(args []string) {
	fs := flag.NewFlagSet("parked", flag.ExitOnError)
	addr := fs.String("debug", "127.0.0.1:9000", "tigerd debug address (control port + 2000 by default)")
	fs.Parse(args)

	resp, err := http.Get("http://" + *addr + "/metrics")
	if err != nil {
		log.Fatalf("scrape %s: %v", *addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("scrape %s: %s", *addr, resp.Status)
	}

	sums := map[string]float64{}
	type cubRow struct{ parks, resumes, unservable float64 }
	perCub := map[int]*cubRow{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]
		name, cub := series, -1
		if b := strings.IndexByte(name, '{'); b >= 0 {
			if i := strings.Index(name[b:], `cub="`); i >= 0 {
				if e := strings.IndexByte(name[b+i+5:], '"'); e >= 0 {
					cub, _ = strconv.Atoi(name[b+i+5 : b+i+5+e])
				}
			}
			name = name[:b]
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		switch name {
		case "tiger_governor_parked_streams", "tiger_governor_unservable_disks",
			"tiger_governor_parks_total", "tiger_governor_resumes_total":
			sums[name] += v
			continue
		}
		if cub < 0 {
			continue
		}
		r := perCub[cub]
		if r == nil {
			r = &cubRow{}
			perCub[cub] = r
		}
		switch name {
		case "tiger_cub_parks_total":
			r.parks = v
		case "tiger_cub_resumes_total":
			r.resumes = v
		case "tiger_cub_unservable_disks":
			r.unservable = v
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading scrape: %v", err)
	}

	fmt.Printf("parked      : %.0f streams awaiting re-admission\n", sums["tiger_governor_parked_streams"])
	fmt.Printf("unservable  : %.0f disks with no live copy\n", sums["tiger_governor_unservable_disks"])
	fmt.Printf("parks       : %.0f streams shed (lifetime)\n", sums["tiger_governor_parks_total"])
	fmt.Printf("resumes     : %.0f streams re-admitted (lifetime)\n", sums["tiger_governor_resumes_total"])

	var cubs []int
	for i, r := range perCub {
		if r.parks != 0 || r.resumes != 0 || r.unservable != 0 {
			cubs = append(cubs, i)
		}
	}
	if len(cubs) == 0 {
		return
	}
	sort.Ints(cubs)
	fmt.Printf("%5s %7s %8s %11s\n", "cub", "parks", "resumes", "unservable")
	for _, i := range cubs {
		r := perCub[i]
		fmt.Printf("%5d %7.0f %8.0f %11.0f\n", i, r.parks, r.resumes, r.unservable)
	}
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("debug", "127.0.0.1:9000", "tigerd debug address (control port + 2000 by default)")
	raw := fs.Bool("raw", false, "dump the raw Prometheus exposition text")
	prefix := fs.String("prefix", "", "only print series whose name has this prefix")
	fs.Parse(args)

	resp, err := http.Get("http://" + *addr + "/metrics")
	if err != nil {
		log.Fatalf("scrape %s: %v", *addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("scrape %s: %s", *addr, resp.Status)
	}
	if *raw {
		io.Copy(os.Stdout, resp.Body)
		return
	}

	type row struct{ series, value string }
	var rows []row
	width := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, value := line[:sp], line[sp+1:]
		name := series
		if b := strings.IndexByte(name, '{'); b >= 0 {
			name = name[:b]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue // keep the summary readable; -raw has the buckets
		}
		if *prefix != "" && !strings.HasPrefix(name, *prefix) {
			continue
		}
		if v, err := strconv.ParseFloat(value, 64); err == nil {
			value = strconv.FormatFloat(v, 'g', 6, 64)
		}
		rows = append(rows, row{series, value})
		if len(series) > width {
			width = len(series)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading scrape: %v", err)
	}
	for _, r := range rows {
		fmt.Printf("%-*s %s\n", width, r.series, r.value)
	}
}
