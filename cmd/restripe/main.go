// Command restripe plans a Tiger configuration change (§2.2): adding or
// removing cubs or disks requires re-laying-out every file, and this
// tool computes the move plan and estimates its duration. It
// demonstrates the paper's claim that restripe time depends on the size
// and speed of individual cubs and disks, not on system size, because
// all moves proceed in parallel through the switched network.
//
//	restripe -from 14x4 -to 16x4 -files 64 -blocks 3600
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"tiger/internal/clock"
	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/msg"
	"tiger/internal/restripe"
	"tiger/internal/sim"
)

var (
	fromFlag  = flag.String("from", "14x4", "current shape, cubs x disksPerCub")
	toFlag    = flag.String("to", "16x4", "target shape, cubs x disksPerCub")
	decl      = flag.Int("decluster", 4, "decluster factor (both configurations)")
	declTo    = flag.Int("decluster-to", 0, "target decluster factor (default: same)")
	nfiles    = flag.Int("files", 64, "number of files")
	fblocks   = flag.Int("blocks", 3600, "blocks per file")
	blockSize = flag.Int64("blocksize", 262144, "bytes per block")
	rate      = flag.Float64("diskrate", 5.08e6, "per-disk copy rate, bytes/s")
	simulate  = flag.Bool("simulate", false, "execute the plan on the disk models instead of only estimating")
	throttle  = flag.Float64("throttle", 1.0, "fraction of disk bandwidth the restripe may use (rest reserved for service)")
	live      = flag.Bool("live", false, "project the ONLINE restripe: copies trickled through idle schedule slots while serving")
	liveLoad  = flag.Float64("load", 1.0, "stream load fraction for -live (1.0 = full planned capacity)")
	budget    = flag.Float64("budget", 0.5, "fraction of idle disk time the live mover may consume")
)

func parseShape(s string) (cubs, disks int, err error) {
	a, b, found := strings.Cut(strings.ToLower(s), "x")
	if !found {
		return 0, 0, fmt.Errorf("shape %q: want CUBSxDISKS", s)
	}
	if cubs, err = strconv.Atoi(a); err != nil {
		return
	}
	disks, err = strconv.Atoi(b)
	return
}

func main() {
	flag.Parse()
	fc, fd, err := parseShape(*fromFlag)
	if err != nil {
		log.Fatal(err)
	}
	tc, td, err := parseShape(*toFlag)
	if err != nil {
		log.Fatal(err)
	}
	toDecl := *declTo
	if toDecl == 0 {
		toDecl = *decl
	}
	old := layout.Config{Cubs: fc, DisksPerCub: fd, Decluster: *decl}
	new := layout.Config{Cubs: tc, DisksPerCub: td, Decluster: toDecl}

	files := make([]layout.File, *nfiles)
	for i := range files {
		files[i] = layout.File{
			ID:        msg.FileID(i),
			StartDisk: (i * 7) % old.NumDisks(),
			Blocks:    *fblocks,
			BlockSize: *blockSize,
		}
	}

	plan, err := layout.PlanRestripe(old, new, files)
	if err != nil {
		log.Fatal(err)
	}

	var maxOut, maxIn int64
	for _, b := range plan.BytesOut {
		if b > maxOut {
			maxOut = b
		}
	}
	for _, b := range plan.BytesIn {
		if b > maxIn {
			maxIn = b
		}
	}
	totalContent := int64(*nfiles) * int64(*fblocks) * *blockSize

	fmt.Printf("restripe %s (dc %d) -> %s (dc %d)\n", *fromFlag, *decl, *toFlag, toDecl)
	fmt.Printf("  content          : %d files, %.1f GB primary\n", *nfiles, float64(totalContent)/1e9)
	fmt.Printf("  moves            : %d (%.1f GB including mirror pieces)\n",
		len(plan.Moves), float64(plan.TotalBytes())/1e9)
	fmt.Printf("  busiest disk out : %.2f GB\n", float64(maxOut)/1e9)
	fmt.Printf("  busiest disk in  : %.2f GB\n", float64(maxIn)/1e9)
	fmt.Printf("  estimated time   : %v at %.1f MB/s per disk\n",
		plan.EstimateDuration(*rate).Round(time.Second), *rate/1e6)

	if *simulate {
		eng := sim.New(1)
		o := restripe.DefaultOptions()
		o.DiskRate = *rate
		o.Throttle = *throttle
		res, err := restripe.Execute(clock.Sim{Eng: eng}, plan, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  simulated run    : %v at %.0f%% bandwidth (busiest out disk %d, in disk %d)\n",
			res.Duration.Round(time.Second), *throttle*100, res.BusiestOut, res.BusiestIn)
	}

	// The paper's point: the estimate is governed by per-disk volume.
	capOld := disk.PlanCapacity(disk.DefaultParams(), old.NumDisks(), *blockSize, time.Second, *decl)
	capNew := disk.PlanCapacity(disk.DefaultParams(), new.NumDisks(), *blockSize, time.Second, toDecl)
	fmt.Printf("  capacity change  : %d -> %d streams\n", capOld.Streams, capNew.Streams)

	if *live {
		// The online restripe never takes the system down: the core
		// mover trickles copies through idle slots of the disk schedule,
		// so throughput is governed by how much of each drive the
		// streams leave unused. Source drives bound the copy: every old
		// drive ships moves, and the busiest one finishes last.
		cps, bps := core.ProjectedMoveRate(disk.DefaultParams(), *blockSize, time.Second, *decl, *liveLoad, *budget)
		duty := core.PlanMoveCapacity(disk.DefaultParams(), *blockSize, time.Second, *decl) * *liveLoad
		if duty > 1 {
			duty = 1
		}
		perDisk := float64(len(plan.Moves)) / float64(old.NumDisks())
		fmt.Printf("  live restripe    : at %.0f%% load (disk duty %.0f%%), %.1f copies/s per drive (%.2f MB/s)\n",
			*liveLoad*100, duty*100, cps, bps/1e6)
		fmt.Printf("  live copy time   : ~%v for ~%.0f moves per source drive\n",
			(time.Duration(perDisk / cps * float64(time.Second))).Round(time.Second), perDisk)
	}
}
