// Command tigerd runs Tiger nodes — the controller and cubs — as real
// network processes speaking the wire protocol over TCP. It exists to
// demonstrate that the protocol implementation in internal/core is not
// simulator-bound: the same code that reproduces the paper's figures
// under virtual time serves real streams under wall-clock time.
//
// Single-process demo (controller + all cubs on loopback):
//
//	tigerd -cubs 4 -listen 127.0.0.1:7000
//
// Multi-process deployment (one node per process):
//
//	tigerd -node controller -addrs ctl=127.0.0.1:7000,0=...,1=...
//	tigerd -node 0 -addrs ...   # fetches the epoch from the controller
//
// Use tigerctl to start and stop streams.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/obs"
	"tiger/internal/rt"
	"tiger/internal/spec"
	"tiger/internal/trace"
)

var (
	nodeFlag  = flag.String("node", "all", `node to run: "controller", a cub number, or "all" (single-process demo)`)
	listen    = flag.String("listen", "127.0.0.1:7000", "base listen address (all mode: controller here, cubs on successive ports)")
	addrsFlag = flag.String("addrs", "", "node address map for multi-process mode: ctl=host:port,0=host:port,1=...")

	cubs      = flag.Int("cubs", 4, "number of cubs")
	disks     = flag.Int("disks", 1, "disks per cub")
	decluster = flag.Int("decluster", 2, "decluster factor")
	blockPlay = flag.Duration("blockplay", 250*time.Millisecond, "block play time (demo scale)")
	blockSize = flag.Int64("blocksize", 65536, "bytes per block")
	files     = flag.Int("files", 4, "number of striped content files")
	blocks    = flag.Int("blocks", 2400, "blocks per file")

	epochFlag = flag.String("epoch", "", "shared epoch (unix nanos); cubs default to fetching it from the controller's epoch port")
	epochPort = flag.String("epoch-listen", "", "controller epoch service address (default: control port + 1000)")

	configFlag  = flag.String("config", "", "cluster spec JSON; overrides the shape flags and -addrs")
	writeConfig = flag.String("write-config", "", "write a template cluster spec for -cubs nodes to this path and exit")

	debugFlag = flag.String("debug", "", `debug HTTP address serving /metrics, /healthz, /debug/vars, /debug/trace, /debug/pprof (default: control port + 2000; "off" disables)`)
	traceCap  = flag.Int("trace", 65536, "protocol trace ring capacity (events kept for /debug/trace)")
	chainCap  = flag.Int("chains", 4096, "causal block chains retained for /debug/trace/{stream} (0 disables causal tracing)")
)

// newChainLog builds the process's causal chain store, or nil when
// causal tracing is disabled.
func newChainLog() *trace.ChainLog {
	if *chainCap <= 0 {
		return nil
	}
	return trace.NewChainLog(*chainCap, 64)
}

// chainEndpoints adapts a process-wide chain log to the debug server's
// chain lookups. All of this process's nodes share one log, so a lookup
// is a read plus a deterministic time sort.
func chainEndpoints(l *trace.ChainLog) (func(msg.InstanceID, int32) []trace.Hop, func() []trace.ChainKey) {
	if l == nil {
		return nil, nil
	}
	chains := func(inst msg.InstanceID, block int32) []trace.Hop {
		hops := l.Chain(inst, block)
		trace.SortHops(hops)
		return hops
	}
	return chains, l.Keys
}

func main() {
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *writeConfig != "" {
		if err := spec.Default(*cubs).Save(*writeConfig); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote cluster spec for %d cubs to %s", *cubs, *writeConfig)
		return
	}

	var cfg *core.Config
	var err error
	if *configFlag != "" {
		sp, lerr := spec.Load(*configFlag)
		if lerr != nil {
			log.Fatal(lerr)
		}
		if missing := sp.MissingAddrs(); len(missing) > 0 && *nodeFlag != "all" {
			log.Fatalf("spec %s lacks addresses for %v", *configFlag, missing)
		}
		cfg, err = sp.Config()
		if err != nil {
			log.Fatal(err)
		}
		*cubs = sp.Cubs
		if len(sp.Addrs) > 0 {
			addrs, aerr := sp.NodeAddrs()
			if aerr != nil {
				log.Fatal(aerr)
			}
			specAddrs = addrs
			if a, ok := addrs[msg.Controller]; ok {
				*listen = a
			}
		}
	} else {
		cfg, err = buildConfig()
		if err != nil {
			log.Fatal(err)
		}
	}

	switch *nodeFlag {
	case "all":
		runAll(cfg)
	case "controller", "ctl":
		runController(cfg, *listen, parseAddrs())
	default:
		id, err := strconv.Atoi(*nodeFlag)
		if err != nil || id < 0 || id >= *cubs {
			log.Fatalf("bad -node %q: want controller, all, or 0..%d", *nodeFlag, *cubs-1)
		}
		runCub(cfg, msg.NodeID(id), parseAddrs())
	}
}

func buildConfig() (*core.Config, error) {
	cfg, err := core.BuildConfig(core.SystemSpec{
		Cubs:        *cubs,
		DisksPerCub: *disks,
		Decluster:   *decluster,
		BlockPlay:   *blockPlay,
		BlockSize:   *blockSize,
		NumFiles:    *files,
		FileBlocks:  *blocks,
	})
	if err != nil {
		return nil, err
	}
	// Scale protocol timings with the demo block play time.
	bp := *blockPlay
	cfg.MinVStateLead = 4 * bp
	cfg.MaxVStateLead = 9 * bp
	cfg.ForwardInterval = bp / 2
	cfg.DescheduleHold = 3 * bp
	cfg.ReadAhead = bp
	cfg.HeartbeatInterval = bp / 2
	cfg.DeadmanTimeout = 5 * bp / 2
	return cfg, cfg.Validate()
}

// specAddrs holds addresses loaded from -config; -addrs supplements it.
var specAddrs map[msg.NodeID]string

func parseAddrs() map[msg.NodeID]string {
	addrs := make(map[msg.NodeID]string)
	for k, v := range specAddrs {
		addrs[k] = v
	}
	if *addrsFlag == "" {
		return addrs
	}
	for _, kv := range strings.Split(*addrsFlag, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -addrs entry %q", kv)
		}
		if parts[0] == "ctl" || parts[0] == "controller" {
			addrs[msg.Controller] = parts[1]
			continue
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			log.Fatalf("bad -addrs node %q", parts[0])
		}
		addrs[msg.NodeID(id)] = parts[1]
	}
	return addrs
}

func epoch() time.Time {
	if *epochFlag == "" {
		return time.Now()
	}
	ns, err := strconv.ParseInt(*epochFlag, 10, 64)
	if err != nil {
		log.Fatalf("bad -epoch %q", *epochFlag)
	}
	return time.Unix(0, ns)
}

func portShift(addr string, delta int) string {
	host, portStr, found := strings.Cut(addr, ":")
	if !found {
		log.Fatalf("address %q has no port", addr)
	}
	p, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("address %q has a bad port", addr)
	}
	return fmt.Sprintf("%s:%d", host, p+delta)
}

// debugAddr resolves the -debug flag against a node's control address.
func debugAddr(controlAddr string) string {
	switch *debugFlag {
	case "off":
		return ""
	case "":
		return portShift(controlAddr, 2000)
	default:
		return *debugFlag
	}
}

// newObs builds the process's registry and trace ring and cross-registers
// the ring's counters so a /metrics scrape shows trace volume and loss.
func newObs() (*obs.Registry, *trace.Ring) {
	reg := obs.NewRegistry()
	ring := trace.NewRing(*traceCap)
	reg.CounterFunc("tiger_trace_events_total",
		"Protocol trace events recorded into the debug ring.",
		nil, func() float64 { return float64(ring.Total()) })
	reg.CounterFunc("tiger_trace_dropped_total",
		"Protocol trace events evicted from the bounded debug ring.",
		nil, func() float64 { return float64(ring.Dropped()) })
	return reg, ring
}

func startDebug(addr string, cfg rt.DebugConfig) *rt.DebugServer {
	if addr == "" {
		return nil
	}
	d, err := rt.StartDebug(addr, cfg)
	if err != nil {
		log.Fatalf("debug listener: %v", err)
	}
	log.Printf("debug http on %s (/metrics /healthz /debug/vars /debug/trace /debug/pprof)", d.Addr())
	return d
}

// runAll hosts the whole system in one process: the zero-to-streams demo.
func runAll(cfg *core.Config) {
	ep := epoch()
	addrs := map[msg.NodeID]string{msg.Controller: *listen}
	for i := 0; i < *cubs; i++ {
		addrs[msg.NodeID(i)] = portShift(*listen, i+1)
	}
	ctl, err := rt.StartControllerHost(cfg, addrs[msg.Controller], addrs, ep)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	epAddr := *epochPort
	if epAddr == "" {
		epAddr = portShift(*listen, 1000)
	}
	if _, err := ctl.ServeEpoch(epAddr); err != nil {
		log.Fatal(err)
	}
	var hosts []*rt.CubHost
	for i := 0; i < *cubs; i++ {
		h, err := rt.StartCubHost(msg.NodeID(i), cfg, addrs[msg.NodeID(i)], addrs, ep, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		defer h.Close()
		hosts = append(hosts, h)
	}
	reg, ring := newObs()
	ctl.AttachObs(reg)
	chain := newChainLog()
	ctl.AttachChainLog(chain)
	views := make(map[string]func(time.Duration) (string, error), len(hosts))
	events := make(map[string]func() uint64, len(hosts))
	for _, h := range hosts {
		h.AttachObs(reg)
		h.AttachTrace(ring)
		h.AttachChainLog(chain)
		views[h.Cub.ID().String()] = h.DumpView
		events[h.Cub.ID().String()] = h.Node.Processed
	}
	chains, chainKeys := chainEndpoints(chain)
	if d := startDebug(debugAddr(*listen), rt.DebugConfig{
		Registry:  reg,
		Trace:     ring,
		Chains:    chains,
		ChainKeys: chainKeys,
		Views:     views,
		Events:    events,
		Info:      map[string]string{"node": "all", "controller": addrs[msg.Controller]},
	}); d != nil {
		defer d.Close()
	}
	cap := cfg.Capacity()
	log.Printf("tiger system up: %d cubs x %d disks, %d files, capacity %d streams (%.2f/disk)",
		*cubs, *disks, *files, cap.Streams, cap.StreamsPerDisk)
	log.Printf("controller at %s (epoch service %s); cubs at %s..%s",
		addrs[msg.Controller], epAddr, addrs[0], addrs[msg.NodeID(*cubs-1)])
	log.Printf("start a stream: tigerctl -controller %s -play 0", addrs[msg.Controller])

	waitForSignal()
	log.Printf("shutting down")
	for _, h := range hosts {
		st := h.Cub.Stats()
		log.Printf("cub %v: sent %d blocks, %d pieces, %d inserts, %d misses",
			h.Cub.ID(), st.BlocksSent, st.PiecesSent, st.Inserts, st.ServerMisses)
	}
}

func runController(cfg *core.Config, listenAddr string, addrs map[msg.NodeID]string) {
	ep := epoch()
	if addrs[msg.Controller] == "" {
		addrs[msg.Controller] = listenAddr
	}
	ctl, err := rt.StartControllerHost(cfg, listenAddr, addrs, ep)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	epAddr := *epochPort
	if epAddr == "" {
		epAddr = portShift(listenAddr, 1000)
	}
	if _, err := ctl.ServeEpoch(epAddr); err != nil {
		log.Fatal(err)
	}
	reg, ring := newObs()
	ctl.AttachObs(reg)
	chain := newChainLog()
	ctl.AttachChainLog(chain)
	chains, chainKeys := chainEndpoints(chain)
	if d := startDebug(debugAddr(listenAddr), rt.DebugConfig{
		Registry:  reg,
		Trace:     ring,
		Chains:    chains,
		ChainKeys: chainKeys,
		Info:      map[string]string{"node": "controller", "listen": listenAddr},
	}); d != nil {
		defer d.Close()
	}
	log.Printf("controller on %s (epoch %d, epoch service %s)", listenAddr, ep.UnixNano(), epAddr)
	waitForSignal()
}

func runCub(cfg *core.Config, id msg.NodeID, addrs map[msg.NodeID]string) {
	ep := epoch()
	if *epochFlag == "" {
		// The controller is the clock master (§2.1): fetch the epoch.
		ctlAddr, ok := addrs[msg.Controller]
		if !ok {
			log.Fatal("cub mode needs the controller in -addrs to fetch the epoch")
		}
		fetched, err := rt.FetchEpoch(portShift(ctlAddr, 1000))
		if err != nil {
			log.Fatalf("epoch fetch: %v", err)
		}
		ep = fetched
	}
	listenAddr, ok := addrs[id]
	if !ok {
		log.Fatalf("no address for %v in -addrs", id)
	}
	h, err := rt.StartCubHost(id, cfg, listenAddr, addrs, ep, int64(id)+1)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()
	reg, ring := newObs()
	h.AttachObs(reg)
	h.AttachTrace(ring)
	chain := newChainLog()
	h.AttachChainLog(chain)
	chains, chainKeys := chainEndpoints(chain)
	if d := startDebug(debugAddr(listenAddr), rt.DebugConfig{
		Registry:  reg,
		Trace:     ring,
		Chains:    chains,
		ChainKeys: chainKeys,
		Views:     map[string]func(time.Duration) (string, error){id.String(): h.DumpView},
		Events:    map[string]func() uint64{id.String(): h.Node.Processed},
		Info:      map[string]string{"node": id.String(), "listen": listenAddr},
	}); d != nil {
		defer d.Close()
	}
	log.Printf("%v on %s", id, listenAddr)
	waitForSignal()
	st := h.Cub.Stats()
	log.Printf("%v: sent %d blocks, %d pieces, %d inserts", id, st.BlocksSent, st.PiecesSent, st.Inserts)
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
