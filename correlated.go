package tiger

import (
	"fmt"
	"time"

	"tiger/internal/msg"
)

// Correlated-failure survival experiment (`tigerbench -exp correlated`).
// Declustered mirroring survives any single cub loss; this sweep measures
// what happens beyond that guarantee. Each arm loads a fresh cluster to
// 100% of rated capacity with the degradation governor enabled, kills a
// chosen cub set simultaneously, holds the outage, restarts, and gates:
//
//   - zero client-visible block loss — survivors are mirror-served and
//     endangered streams are parked before any deadline passes;
//   - park count bounded by the layout-derived exposure (streams whose
//     play trajectory crosses the unservable disks during the outage);
//   - every parked stream resumes exactly once after the rejoin, and the
//     cluster converges (no death beliefs, mirror load drained).
//
// The arms walk the failure geometry: one cub (mirrors cover
// everything), a scattered pair (outside each other's decluster span —
// still fully covered), an adjacent pair (the victim's decluster span is
// breached: its four strided disks are unservable), a whole failure
// domain (rack loss: three interior cubs exhausted, twelve disks), and
// the adjacent pair again on a 200-cub sharded cluster.

// CorrelatedPoint is one arm's outcome.
type CorrelatedPoint struct {
	Arm        string
	Cubs       int
	Shards     int
	DomainSize int
	Streams    int   // active streams at crash time
	Down       []int // cubs killed
	Unservable int   // disks with no live copy during the full outage
	OutageSec  float64

	ParkBound int   // layout-derived cap on justified parks
	Parks     int64 // governor park decisions
	Resumes   int64 // re-admissions (plus parks resolved at EOF)
	ParkAcks  int64 // distinct instances acked by cubs
	ParkedEnd int   // parked streams left at end (must be 0)
	QueueEnd  int   // re-admission queue left at end (must be 0)

	BlocksOK     int64
	BlocksLost   int64 // must be 0
	MirrorBlocks int64
	ServerMisses int64
	DoubleServes int
	Violations   int
	Converged    bool
	DrainSec     float64 // restart to converged-and-drained
}

type corrArm struct {
	name   string
	cubs   int
	domain int // >= 0: crash this whole failure domain
	down   []int
	outage time.Duration
}

func correlatedArms() []corrArm {
	return []corrArm{
		{name: "single", cubs: 14, domain: -1, down: []int{5}, outage: 6 * time.Second},
		{name: "scattered-pair", cubs: 14, domain: -1, down: []int{2, 9}, outage: 6 * time.Second},
		{name: "adjacent-pair", cubs: 14, domain: -1, down: []int{5, 6}, outage: 6 * time.Second},
		{name: "whole-domain", cubs: 14, domain: 1, outage: 6 * time.Second},
		{name: "adjacent-pair-200", cubs: 200, domain: -1, down: []int{99, 100}, outage: 6 * time.Second},
	}
}

// CorrelatedArms lists the sweep's arm names in run order, for the
// bench binary's arm-selection flag.
var CorrelatedArms = func() []string {
	var names []string
	for _, a := range correlatedArms() {
		names = append(names, a.name)
	}
	return names
}()

// RunCorrelated runs the correlated-failure sweep — the named arms, or
// all of them when names is empty — and enforces its gates; any gate
// failure is returned as an error naming the arm.
func RunCorrelated(o Options, names []string) ([]CorrelatedPoint, error) {
	arms := correlatedArms()
	if len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		kept := arms[:0]
		for _, a := range arms {
			if want[a.name] {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("no correlated arms match %v (have %v)", names, CorrelatedArms)
		}
		arms = kept
	}
	out := make([]CorrelatedPoint, len(arms))
	err := forEachPoint(len(arms), func(i int) error {
		p, err := runCorrelatedArm(o, arms[i])
		out[i] = p
		if err != nil {
			return fmt.Errorf("arm %s: %w", arms[i].name, err)
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	return out, nil
}

func runCorrelatedArm(o Options, a corrArm) (CorrelatedPoint, error) {
	oo := o
	oo.Cubs = a.cubs
	oo.DomainSize = 4
	oo.Governor.Enable = true
	// Zero the stochastic loss sources that are not the failure's fault
	// (same normalization as the scale sweep): client drops, ramp
	// stagger, and the drives' slow-outlier blip tail.
	oo.ClientDropProb = 0
	oo.RampSpacing = 0
	oo.DiskParams.BlipProb = 0
	if disks := a.cubs * oo.DisksPerCub; oo.NumFiles < disks {
		oo.NumFiles = disks
	}
	oo.Shards = scaleShards(a.cubs)

	c, err := New(oo)
	if err != nil {
		return CorrelatedPoint{}, err
	}
	p := CorrelatedPoint{
		Arm:        a.name,
		Cubs:       a.cubs,
		Shards:     c.Shards(),
		DomainSize: oo.DomainSize,
		OutageSec:  a.outage.Seconds(),
	}
	h := NewChaosHarness(c)
	defer h.Close()

	if err := c.RampTo(c.Capacity()); err != nil {
		return p, err
	}
	c.RunFor(60 * time.Second) // let the flash-ramp insertions land; reach steady state

	ok0, lost0, mir0 := c.ViewerTotals()
	miss0 := c.TotalCubStats().ServerMisses
	viol0 := c.InvariantViolations()
	p.Streams = c.Active()

	// The unservable set the layout predicts for the full down set, and
	// the park bound it implies. This mirrors the governor's own sweep
	// geometry exactly: a stream at play position p is parked when any
	// disk in [p-1, p+look] is unservable (and streams advance one disk
	// per block play, so over the outage the window a trajectory must
	// dodge stretches to [p-1, p+look+outageBlocks]), or -- at the crash
	// instant -- when any disk in [p-1, p+lookState] lost its in-flight
	// states with a dead forwarding pair. The expected park count is the
	// uniform-occupancy mass of the union of those per-disk position
	// windows; EOF-replay churn re-admits a few streams into the danger
	// window mid-outage, covered by the margin.
	down := a.down
	if a.domain >= 0 {
		for _, z := range c.Cfg.Layout.CubsOfDomain(a.domain) {
			down = append(down, int(z))
		}
	}
	deadSet := make(map[msg.NodeID]bool, len(down))
	for _, i := range down {
		deadSet[msg.NodeID(i)] = true
	}
	unservable := c.Cfg.Layout.UnservableDisks(func(z msg.NodeID) bool { return deadSet[z] })
	p.Unservable = len(unservable)
	p.Down = down
	{
		nd := c.Cfg.Layout.NumDisks()
		look := c.Cfg.Governor.GuardBlocks + c.Cfg.Governor.Horizon
		lookState := int(c.Cfg.MaxVStateLead/c.Cfg.Sched.BlockPlay) + c.Cfg.Governor.GuardBlocks
		outBlocks := int(a.outage / c.Cfg.Sched.BlockPlay)
		endangered := make(map[int]bool)
		for _, u := range unservable {
			for j := -1; j <= look+outBlocks; j++ {
				endangered[((u-j)%nd+nd)%nd] = true
			}
		}
		for z := range deadSet {
			pred := msg.NodeID((int(z) - 1 + c.Cfg.Layout.Cubs) % c.Cfg.Layout.Cubs)
			if !deadSet[pred] {
				continue
			}
			for _, d := range c.Cfg.Layout.DisksOfCub(z) {
				for j := -1; j <= lookState; j++ {
					endangered[((d-j)%nd+nd)%nd] = true
				}
			}
		}
		if len(endangered) > 0 {
			bound := (p.Streams*len(endangered) + nd - 1) / nd
			p.ParkBound = bound + bound/8 + 8
		}
	}

	if a.domain >= 0 {
		if _, err := c.CrashDomain(a.domain); err != nil {
			return p, err
		}
	} else {
		for _, i := range a.down {
			c.CrashCub(i)
		}
	}
	c.RunFor(a.outage)

	if a.domain >= 0 {
		if _, err := c.RestartDomain(a.domain); err != nil {
			return p, err
		}
	} else {
		for _, i := range a.down {
			c.RestartCub(i)
		}
	}
	restartAt := c.Now()

	// Run until the governor has drained its queue and the cluster is
	// back to a clean steady state (no death beliefs, mirror load
	// retired), stepping so the drain time has sub-second resolution.
	// The quiet condition must hold for a sustained run of samples:
	// convergence can flicker while residual mirror entries from the
	// crash-window hedges fall due, and a single clean sample mid-drain
	// must not stop the clock.
	const step = 500 * time.Millisecond
	const quietNeed = 6 // 3s of consecutive quiet samples
	const drainCap = 3 * time.Minute
	quiet := 0
	for c.Now().Sub(restartAt) < drainCap {
		gs := c.Controller.GovernorStats()
		if gs.Parked == 0 && gs.QueueLen == 0 && gs.Unservable == 0 && h.Converged() {
			quiet++
			if quiet >= quietNeed {
				break
			}
		} else {
			quiet = 0
		}
		c.RunFor(step)
	}
	p.DrainSec = c.Now().Sub(restartAt).Seconds() - float64(quiet-1)*step.Seconds()
	if quiet < quietNeed {
		p.DrainSec = c.Now().Sub(restartAt).Seconds()
	}
	// A settle tail: re-admitted streams must play cleanly too.
	c.RunFor(15 * time.Second)

	gs := c.Controller.GovernorStats()
	p.Parks = gs.Parks
	p.Resumes = gs.Resumes
	p.ParkAcks = gs.Acks
	p.ParkedEnd = gs.Parked
	p.QueueEnd = gs.QueueLen
	ok1, lost1, mir1 := c.ViewerTotals()
	p.BlocksOK = ok1 - ok0
	p.BlocksLost = lost1 - lost0
	p.MirrorBlocks = mir1 - mir0
	p.ServerMisses = c.TotalCubStats().ServerMisses - miss0
	p.DoubleServes = h.DoubleServes()
	p.Violations = c.InvariantViolations() - viol0
	p.Converged = h.Converged()

	// Gates. When the decluster span is breached the governor parks every
	// endangered stream, and a parked stream finishes cleanly and resumes
	// at its delivered watermark — so the exhausted arms must lose
	// nothing at all. Under full mirror coverage no stream parks, and the
	// only irreducible loss is the blocks mid-transfer on the dying cubs'
	// links at the crash instant: mirrors take over future blocks, but a
	// send already in flight dies with the machine (the paper's "brief
	// glitch"). Allow that residue and nothing more.
	// At the rated point each drive launches a send every
	// BlockPlay/streamsPerDisk and a block transfer lasts about twice
	// that spacing, so at most ~2 sends per drive are mid-flight when
	// the machine dies.
	lossCap := int64(0)
	if p.Unservable == 0 {
		lossCap = int64(2 * oo.DisksPerCub * len(down))
	}
	if p.BlocksLost > lossCap {
		return p, fmt.Errorf("%d blocks lost (cap %d: survivors mirror-served, endangered streams parked in time, only in-flight sends may die)", p.BlocksLost, lossCap)
	}
	if p.Unservable == 0 && p.Parks != 0 {
		return p, fmt.Errorf("%d parks with full mirror coverage (must be 0)", p.Parks)
	}
	if p.Unservable > 0 && p.Parks > int64(p.ParkBound) {
		return p, fmt.Errorf("%d parks exceed the layout-derived bound %d", p.Parks, p.ParkBound)
	}
	if p.ParkedEnd != 0 || p.QueueEnd != 0 {
		return p, fmt.Errorf("%d parked / %d queued streams left after the rejoin", p.ParkedEnd, p.QueueEnd)
	}
	if p.Resumes != p.Parks {
		return p, fmt.Errorf("%d resumes for %d parks (each parked stream must resume exactly once)", p.Resumes, p.Parks)
	}
	if p.DoubleServes != 0 {
		return p, fmt.Errorf("%d double services", p.DoubleServes)
	}
	if p.Violations != 0 {
		return p, fmt.Errorf("%d invariant violations", p.Violations)
	}
	if !p.Converged {
		return p, fmt.Errorf("cluster did not converge within %v of the restart", drainCap)
	}
	return p, nil
}
