package tiger

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// withParallelism runs fn at the given sweep width and restores the
// previous setting afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SweepParallelism()
	SetSweepParallelism(n)
	defer SetSweepParallelism(prev)
	fn()
}

func TestForEachPointOrderAndErrors(t *testing.T) {
	withParallelism(t, 4, func() {
		out := make([]int, 100)
		if err := forEachPoint(len(out), func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("slot %d holds %d", i, v)
			}
		}

		// The reported error must be the lowest-indexed one, exactly as a
		// sequential loop would have surfaced it first.
		errAt := func(bad ...int) error {
			return forEachPoint(100, func(i int) error {
				for _, b := range bad {
					if i == b {
						return fmt.Errorf("point %d", i)
					}
				}
				return nil
			})
		}
		if err := errAt(42, 7, 90); err == nil || err.Error() != "point 7" {
			t.Fatalf("got %v, want point 7", err)
		}
	})

	// Width 1 must not spawn goroutines and must stop at the first error.
	withParallelism(t, 1, func() {
		ran := 0
		sentinel := errors.New("stop")
		err := forEachPoint(10, func(i int) error {
			ran++
			if i == 3 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) || ran != 4 {
			t.Fatalf("sequential path ran %d points, err %v", ran, err)
		}
	})
}

// TestSweepParallelEquivalence asserts the tentpole's determinism claim:
// fanning sweep points out over workers yields byte-identical results to
// the sequential run, because each point is a pure function of its
// options.
func TestSweepParallelEquivalence(t *testing.T) {
	quanta := []time.Duration{0, 50 * time.Millisecond, 250 * time.Millisecond}
	var seq, par []FragmentationPoint
	withParallelism(t, 1, func() {
		var err error
		seq, err = RunAblationFragmentation(14, 100_000_000, quanta, 7)
		if err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, len(quanta), func() {
		var err error
		par, err = RunAblationFragmentation(14, 100_000_000, quanta, 7)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fragmentation sweep diverged:\nseq %+v\npar %+v", seq, par)
	}

	if testing.Short() {
		t.Skip("cluster sweep equivalence is a full-mode test")
	}
	o := quickOptions()
	cubs := []int{7, 14}
	var seqS, parS []ScalePoint
	withParallelism(t, 1, func() {
		var err error
		seqS, err = RunScalability(o, cubs, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
	})
	withParallelism(t, len(cubs), func() {
		var err error
		parS, err = RunScalability(o, cubs, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(seqS, parS) {
		t.Fatalf("scalability sweep diverged:\nseq %+v\npar %+v", seqS, parS)
	}
}
