package tiger

import (
	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

// Hook layering. The cluster's cub hooks come from independent layers —
// the built-in slot oracle, the protocol trace ring (EnableTrace), a
// chaos harness's serve oracle, and the failure flight recorder — and
// historically each feature replaced the hook set wholesale, so only one
// could be active at a time. composeHooks chains the layers instead:
// every non-nil callback of every layer fires, in layer order, and
// publishHooks pushes the composed set to every cub (including cubs an
// elastic restripe creates mid-run, which copy c.cubHooks at birth).

// composeHooks chains hook sets; for each event, every layer's non-nil
// callback fires in argument order.
func composeHooks(layers ...core.Hooks) core.Hooks {
	var out core.Hooks
	for _, l := range layers {
		if f := l.OnInsert; f != nil {
			if prev := out.OnInsert; prev != nil {
				out.OnInsert = func(cub msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
					prev(cub, slot, inst, due)
					f(cub, slot, inst, due)
				}
			} else {
				out.OnInsert = f
			}
		}
		if f := l.OnServe; f != nil {
			if prev := out.OnServe; prev != nil {
				out.OnServe = func(cub msg.NodeID, vs msg.ViewerState) { prev(cub, vs); f(cub, vs) }
			} else {
				out.OnServe = f
			}
		}
		if f := l.OnMiss; f != nil {
			if prev := out.OnMiss; prev != nil {
				out.OnMiss = func(cub msg.NodeID, vs msg.ViewerState) { prev(cub, vs); f(cub, vs) }
			} else {
				out.OnMiss = f
			}
		}
		if f := l.OnHedge; f != nil {
			if prev := out.OnHedge; prev != nil {
				out.OnHedge = func(cub msg.NodeID, vs msg.ViewerState) { prev(cub, vs); f(cub, vs) }
			} else {
				out.OnHedge = f
			}
		}
		if f := l.OnQuarantine; f != nil {
			if prev := out.OnQuarantine; prev != nil {
				out.OnQuarantine = func(cub msg.NodeID, disk int32) { prev(cub, disk); f(cub, disk) }
			} else {
				out.OnQuarantine = f
			}
		}
		if f := l.OnMoveCommit; f != nil {
			if prev := out.OnMoveCommit; prev != nil {
				out.OnMoveCommit = func(cub msg.NodeID, seq int64) { prev(cub, seq); f(cub, seq) }
			} else {
				out.OnMoveCommit = f
			}
		}
		if f := l.OnMoveNack; f != nil {
			if prev := out.OnMoveNack; prev != nil {
				out.OnMoveNack = func(cub msg.NodeID, seq int64, reason uint8) { prev(cub, seq, reason); f(cub, seq, reason) }
			} else {
				out.OnMoveNack = f
			}
		}
		if f := l.OnPark; f != nil {
			if prev := out.OnPark; prev != nil {
				out.OnPark = func(cub msg.NodeID, viewer msg.ViewerID, inst msg.InstanceID, slot int32) {
					prev(cub, viewer, inst, slot)
					f(cub, viewer, inst, slot)
				}
			} else {
				out.OnPark = f
			}
		}
		if f := l.OnResume; f != nil {
			if prev := out.OnResume; prev != nil {
				out.OnResume = func(cub msg.NodeID, viewer msg.ViewerID, oldInst, newInst msg.InstanceID) {
					prev(cub, viewer, oldInst, newInst)
					f(cub, viewer, oldInst, newInst)
				}
			} else {
				out.OnResume = f
			}
		}
		if f := l.OnUnservable; f != nil {
			if prev := out.OnUnservable; prev != nil {
				out.OnUnservable = func(cub msg.NodeID, disks int32) { prev(cub, disks); f(cub, disks) }
			} else {
				out.OnUnservable = f
			}
		}
	}
	return out
}

// publishHooks recomposes the hook layers and installs the result on
// every cub.
func (c *Cluster) publishHooks() {
	c.cubHooks = composeHooks(c.baseHooks, c.ringHooks, c.harnessHooks, c.flightHooks)
	for _, cub := range c.Cubs {
		cub.SetHooks(c.cubHooks)
	}
}
