package tiger

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestChurnNoConflicts drives a high-churn workload (Poisson arrivals,
// random stops) at ~90% load and requires zero slot conflicts. This is
// the regression test for insertion/deschedule races under churn.
func TestChurnNoConflicts(t *testing.T) {
	if testing.Short() {
		t.Skip("churn run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	o.AdmitLimit = 0.9
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(o.NumFiles-1))

	var live []*Stream
	for tick := 0; tick < 600; tick++ {
		n := poissonDraw(rng, 4.0)
		for i := 0; i < n; i++ {
			s, err := c.Play(FileID(zipf.Uint64()), 0)
			if err != nil {
				continue
			}
			live = append(live, s)
		}
		keep := live[:0]
		for _, s := range live {
			if s.Done() {
				continue
			}
			if rng.Float64() < 1.0/240 {
				s.Stop()
				continue
			}
			keep = append(keep, s)
		}
		live = keep
		c.RunFor(time.Second)
	}
	ok, lost, _ := c.ViewerTotals()
	t.Logf("delivered=%d lost=%d active=%d conflicts=%d cubConflicts=%d",
		ok, lost, c.Active(), c.InvariantViolations(), c.TotalCubStats().Conflicts)
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts under churn: %d", v)
	}
	if lost > (ok+lost)/10000 {
		t.Errorf("excessive losses under churn: %d of %d", lost, ok+lost)
	}
}

func poissonDraw(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
