// Package tiger is a simulation-backed implementation of the Tiger video
// fileserver's distributed schedule management (Bolosky, Fitzgerald &
// Douceur, SOSP 1997).
//
// A Cluster assembles the full system — controller, cubs, zoned disks,
// switched network, striped/declustered content, and verification
// viewers — on a deterministic discrete-event simulator. The protocol
// implementation itself lives in internal/core and is shared with the
// real-time TCP runtime (internal/rt); this package is the public
// surface for building systems, playing streams, injecting failures, and
// measuring what the paper measures.
//
// Quick start:
//
//	c, err := tiger.New(tiger.DefaultOptions())
//	...
//	s, err := c.Play(0, 0)         // viewer starts file 0 at block 0
//	c.RunFor(30 * time.Second)     // advance virtual time
//	fmt.Println(s.Viewer.Stats())  // blocks received / lost
package tiger

import (
	"fmt"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/obs"
	"tiger/internal/schedule"
	"tiger/internal/sim"
	"tiger/internal/trace"
	"tiger/internal/viewer"
)

// Options configure a simulated Tiger system. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// Hardware shape.
	Cubs        int
	DisksPerCub int
	Decluster   int
	// DomainSize groups consecutive cubs into failure domains of this
	// many machines (racks, power strips); 0 or 1 keeps every cub its
	// own domain. CrashDomain kills a whole domain atomically.
	DomainSize int

	// Content and stream geometry (single-bitrate system).
	BlockPlay     time.Duration
	StreamBitrate int64 // bits/s; BlockSize is derived when zero
	BlockSize     int64 // bytes; zero derives bitrate×blockPlay/8
	NumFiles      int
	FileBlocks    int // blocks per file (3600 ≈ one hour at 1 s blocks)

	// Models.
	DiskParams disk.Params
	NetParams  netsim.Params
	CPUModel   metrics.CPUModel

	// Protocol timings; zero fields take the paper's defaults.
	MinVStateLead     time.Duration
	MaxVStateLead     time.Duration
	ForwardInterval   time.Duration
	DescheduleHold    time.Duration
	ReadAhead         time.Duration
	HeartbeatInterval time.Duration
	DeadmanTimeout    time.Duration
	AdmitLimit        float64
	SingleForward     bool // ablation: forward viewer states once, not twice

	// Health configures the gray-failure monitor (fail-slow detection,
	// hedged mirror reads, quarantine); zero fields take the defaults,
	// Health.Disable turns the monitor off for baselines.
	Health core.HealthParams

	// Governor configures the graceful-degradation governor: on capacity
	// loss beyond mirror coverage it parks the fewest streams needed so
	// the survivors see zero deadline misses, and re-admits them when a
	// rejoin restores coverage. Off unless Governor.Enable is set.
	Governor core.GovernorParams

	// Client model.
	ViewersPerMachine int
	ClientDropProb    float64
	ViewerSlack       time.Duration

	// RampSpacing staggers RampTo start requests, like the paper's
	// staggered client starts; zero issues them all at once.
	RampSpacing time.Duration

	// RestartStalled, when positive, makes viewers behave like real
	// clients: after this many consecutive lost blocks they abandon the
	// play and re-request the file. Recovers streams whose schedule
	// information was wiped out by multi-failure events the protocol
	// does not cover (e.g. partitions).
	RestartStalled int

	// RestripeLinger overrides the grace window an elastic restripe
	// holds the drained old generation before dropping it (elastic.go);
	// zero takes the direction-dependent default.
	RestripeLinger time.Duration

	// Shards, when > 1, partitions the simulation across that many
	// engines run by a conservative parallel coordinator (sim.Sharded),
	// with the network's base link latency as the lookahead. Cubs are
	// spread round-robin; shard 0 additionally hosts the controller,
	// every viewer, and the harness. Results are byte-identical across
	// ShardWorkers settings (including 1), but NOT to an unsharded run
	// of the same options: sharding re-partitions the random streams.
	//
	// A sharded cluster is for scale experiments and trades away some
	// single-threaded harness extras: per-cub registry instruments, the
	// slot-conflict oracle, receipt-slack spans, and protocol traces are
	// disabled or unsupported. Chaos/fault injection IS supported — the
	// runner applies steps and sweeps invariants between RunFor slices,
	// when no shard goroutine is executing — but hook-based oracles that
	// fire during the run (the chaos serve oracle) observe cubs from
	// concurrent shard goroutines and must take their own locks.
	Shards int
	// ShardWorkers bounds the goroutines executing shards; 0 means one
	// per shard, 1 runs the sharded model serially (the determinism
	// reference).
	ShardWorkers int

	Seed int64
}

// DefaultOptions returns the paper's measured configuration: fourteen
// cubs with four disks each, 2 Mbit/s streams, 0.25 Mbyte blocks (one
// second of video), decluster factor four — a 602-stream system (§5).
func DefaultOptions() Options {
	return Options{
		Cubs:              14,
		DisksPerCub:       4,
		Decluster:         4,
		BlockPlay:         time.Second,
		StreamBitrate:     2_000_000,
		BlockSize:         262144, // 0.25 Mbyte: a 2 Mbit/s-second plus the single-bitrate system's internal fragmentation (§2.2)
		NumFiles:          64,
		FileBlocks:        3600,
		DiskParams:        disk.DefaultParams(),
		NetParams:         netsim.DefaultParams(),
		CPUModel:          metrics.DefaultCPUModel(),
		ViewersPerMachine: 20,
		ClientDropProb:    0.000004,
		ViewerSlack:       500 * time.Millisecond,
		RampSpacing:       200 * time.Millisecond,
		Seed:              1,
	}
}

// Cluster is a fully assembled simulated Tiger system.
type Cluster struct {
	Opt Options
	Cfg *core.Config

	Eng        *sim.Engine // shard 0's engine in a sharded cluster
	Net        *netsim.Network
	Controller *core.Controller
	Cubs       []*core.Cub
	Loss       *metrics.LossLog

	// sharded is the conservative parallel coordinator driving all
	// engines; nil for a single-engine cluster. engines[0] == Eng.
	sharded *sim.Sharded
	engines []*sim.Engine

	// StartupLatency accumulates request→first-byte times with the
	// schedule load at request time (Figure 10's two axes).
	StartupLatency *metrics.Summary
	StartupPoints  []StartupPoint

	capacity disk.Capacity
	rng      *rand.Rand
	reg      *obs.Registry
	ring     *trace.Ring // nil until EnableTrace

	machines   []*viewer.Machine
	streams    map[msg.InstanceID]*Stream
	nextViewer msg.ViewerID
	oracle     *slotOracle

	// parkedEOF carries a parked stream's replay handler across the
	// park/re-admission gap, keyed by the old viewer (park.go).
	parkedEOF map[msg.ViewerID]func(*Stream)

	// cubHooks is the composed hook set every cub runs with; cubs created
	// mid-run by an elastic restripe get the same set. It is rebuilt by
	// publishHooks from the independent layers below, so the trace ring, a
	// chaos harness, and the flight recorder stack instead of replacing
	// each other.
	cubHooks     core.Hooks
	baseHooks    core.Hooks // built-in slot-conflict oracle
	ringHooks    core.Hooks // EnableTrace protocol event ring
	harnessHooks core.Hooks // chaos harness serve oracle
	flightHooks  core.Hooks // failure flight recorder

	// Causal tracing state (causal.go); nil until EnableCausalTrace.
	chains         []*trace.ChainLog // per cub, indexed like Cubs
	ctlChain       *trace.ChainLog
	chainMaxChains int
	chainMaxHops   int
	flight         *FlightRecorder // nil until EnableFlightRecorder

	// Elastic-restripe phase machine (elastic.go).
	rsPhase         string
	rsGauge         *obs.Gauge
	rsTarget        int
	rsOldGen        int32
	rsNewGen        int32
	rsCfg1          *core.Config
	rsCap1          disk.Capacity
	rsMoves         int
	rsBytes         int64
	rsCopyStart     sim.Time
	rsCopyDone      sim.Time
	rsDrainDone     sim.Time
	rsFinished      sim.Time
	rsPauseReplay   bool
	rsDeferred      int
	rsDeferredTotal int
	// rsPlan retains the in-flight elastic plan so a controller takeover
	// during the copy phase can re-arm the coordinator (failover.go); set
	// by StartRestripe, cleared when the copy completes.
	rsPlan *layout.ElasticPlan

	// ctlDown mirrors the controller's crashed state for the harness and
	// the chaos runner; stream admission retries while it is set.
	ctlDown bool

	// Client start-retry tallies around controller outages (stream.go).
	startRetries    int64
	startAbandoned  int64
	startRetriesC   *obs.Counter
	startAbandonedC *obs.Counter

	// cumulative viewer tallies, folded in as streams finish
	tallyOK, tallyLost, tallyMirror int64
}

// StartupPoint is one stream start: the schedule load when it was
// requested and how long the viewer waited for its first block.
type StartupPoint struct {
	Load    float64
	Latency time.Duration
}

// New builds a cluster.
func New(o Options) (*Cluster, error) {
	if o.Cubs <= 0 || o.DisksPerCub <= 0 {
		return nil, fmt.Errorf("tiger: need cubs and disks, have %d/%d", o.Cubs, o.DisksPerCub)
	}
	if o.BlockSize == 0 {
		if o.StreamBitrate <= 0 || o.BlockPlay <= 0 {
			return nil, fmt.Errorf("tiger: need a bitrate and block play time to derive the block size")
		}
		o.BlockSize = o.StreamBitrate * int64(o.BlockPlay) / int64(8*time.Second)
	}
	if o.StreamBitrate == 0 {
		o.StreamBitrate = o.BlockSize * 8 * int64(time.Second) / int64(o.BlockPlay)
	}

	lay := layout.Config{Cubs: o.Cubs, DisksPerCub: o.DisksPerCub, Decluster: o.Decluster,
		DomainSize: o.DomainSize}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	capa := disk.PlanCapacity(o.DiskParams, lay.NumDisks(), o.BlockSize, o.BlockPlay, o.Decluster)
	if capa.Streams < 1 {
		return nil, fmt.Errorf("tiger: configuration has no stream capacity")
	}
	sp, err := schedule.NewParams(o.BlockPlay, lay.NumDisks(), capa.Streams)
	if err != nil {
		return nil, err
	}

	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > 1 && o.NetParams.LatencyBase <= 0 {
		return nil, fmt.Errorf("tiger: sharding needs a positive network base latency for lookahead")
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		// Distinct seeds per shard: each engine's rng must be an
		// independent stream, and the derivation must be a pure function
		// of (Seed, shard) so runs stay reproducible.
		engines[i] = sim.New(o.Seed + int64(i)*1_000_003)
	}
	eng := engines[0]
	clk := clock.Sim{Eng: eng}

	files := make(map[msg.FileID]layout.File, o.NumFiles)
	frng := rand.New(rand.NewSource(o.Seed + 1))
	for i := 0; i < o.NumFiles; i++ {
		id := msg.FileID(i)
		files[id] = layout.File{
			ID:        id,
			StartDisk: frng.Intn(lay.NumDisks()),
			Blocks:    o.FileBlocks,
			Bitrate:   o.StreamBitrate,
			BlockSize: o.BlockSize,
		}
	}

	cfg := &core.Config{
		Layout:            lay,
		Sched:             sp,
		BlockSize:         o.BlockSize,
		MinVStateLead:     o.MinVStateLead,
		MaxVStateLead:     o.MaxVStateLead,
		ForwardInterval:   o.ForwardInterval,
		DescheduleHold:    o.DescheduleHold,
		ReadAhead:         o.ReadAhead,
		HeartbeatInterval: o.HeartbeatInterval,
		DeadmanTimeout:    o.DeadmanTimeout,
		AdmitLimit:        o.AdmitLimit,
		SingleForward:     o.SingleForward,
		Health:            o.Health,
		Governor:          o.Governor,
		DiskParams:        o.DiskParams,
		CPUModel:          o.CPUModel,
		Files:             files,
	}
	cfg.DefaultTimings()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	net := netsim.New(o.NetParams, clk, eng.Rand())
	c := &Cluster{
		Opt:            o,
		Cfg:            cfg,
		Eng:            eng,
		Net:            net,
		engines:        engines,
		Loss:           &metrics.LossLog{},
		StartupLatency: &metrics.Summary{},
		capacity:       capa,
		rng:            rand.New(rand.NewSource(o.Seed + 2)),
		streams:        make(map[msg.InstanceID]*Stream),
		oracle:         newSlotOracle(),
	}
	shardOf := func(id msg.NodeID) int {
		if id < 0 {
			return 0 // controller (and any other sentinel) lives with the harness
		}
		return int(id) % shards
	}
	if shards > 1 {
		workers := o.ShardWorkers
		if workers < 1 {
			workers = shards
		}
		c.sharded = sim.NewSharded(engines, o.NetParams.LatencyBase, workers)
		clocks := make([]clock.Clock, shards)
		for i := range clocks {
			clocks[i] = clock.Sim{Eng: engines[i]}
		}
		net.SetSharded(&netsim.ShardMap{
			ShardOf:     shardOf,
			Clocks:      clocks,
			Post:        c.sharded.Post,
			ViewerShard: 0,
			Seed:        o.Seed,
		})
	}

	c.reg = obs.NewRegistry()
	c.rsGauge = c.reg.Gauge("tiger_restripe_phase", "Elastic restripe phase: 0 idle, 1 copy, 2 cutover, 3 drain, 4 linger, 5 done.", nil)
	c.startRetriesC = c.reg.Counter("tiger_client_start_retries_total", "Start-play admissions retried because the controller was down or scavenging.", nil)
	c.startAbandonedC = c.reg.Counter("tiger_client_start_abandons_total", "Start-play requests abandoned after exhausting failover retries.", nil)
	c.Controller = core.NewController(cfg, clk, net)
	c.Controller.AttachObs(c.reg)
	c.Controller.OnParked = c.onParked
	c.Controller.OnReadmit = c.onReadmit
	net.Register(msg.Controller, c.Controller)
	if c.sharded == nil {
		// Registry instruments and the slot-conflict oracle are harness
		// state shared across every node; in a sharded run cubs execute
		// concurrently, so cubs run bare (their plain stats structs are
		// shard-owned and remain available).
		net.AttachObs(c.reg)
		c.baseHooks = core.Hooks{OnInsert: c.onInsertOracle}
	}
	c.cubHooks = composeHooks(c.baseHooks)
	for i := 0; i < o.Cubs; i++ {
		cclk := clock.Clock(clk)
		crng := eng.Rand()
		if c.sharded != nil {
			sh := shardOf(msg.NodeID(i))
			cclk = clock.Sim{Eng: engines[sh]}
			// Each cub draws disk jitter etc. from a private stream: a
			// shared rng would race across shards and break determinism.
			crng = rand.New(rand.NewSource(o.Seed + 7_368_787*int64(i+1)))
		}
		cub := core.NewCub(msg.NodeID(i), cfg, cclk, net, net, crng)
		cub.SetLossLog(c.Loss)
		cub.SetHooks(c.cubHooks)
		if c.sharded == nil {
			cub.AttachObs(c.reg)
		}
		net.Register(msg.NodeID(i), cub)
		c.Cubs = append(c.Cubs, cub)
	}
	for _, cub := range c.Cubs {
		cub.Start()
	}
	c.Controller.Start()
	return c, nil
}

// Sharded reports the shard count driving this cluster (1 when the
// simulation is single-engine).
func (c *Cluster) Shards() int {
	if c.sharded == nil {
		return 1
	}
	return c.sharded.Shards()
}

// EventsProcessed reports the total simulation events executed so far,
// summed across shards — the denominator for ns/event budgets.
func (c *Cluster) EventsProcessed() uint64 {
	if c.sharded != nil {
		return c.sharded.Processed()
	}
	return c.Eng.Processed()
}

// Registry exposes the cluster's metrics registry: every cub, disk,
// controller, and network instrument, plus the block-lifecycle
// deadline-slack histograms. Encode it with WritePrometheus or
// WriteJSONL, or read individual series in tests.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Capacity returns the planned whole-system stream capacity (602 in the
// default configuration).
func (c *Cluster) Capacity() int { return c.capacity.Streams }

// CapacityPlan exposes the full capacity computation.
func (c *Cluster) CapacityPlan() disk.Capacity { return c.capacity }

// Now returns the current virtual time.
func (c *Cluster) Now() sim.Time { return c.Eng.Now() }

// RunFor advances the simulation by d. In a sharded cluster this drives
// the conservative coordinator, which leaves every shard's clock —
// including Eng's, which Now reads — at the same instant.
func (c *Cluster) RunFor(d time.Duration) {
	if c.sharded != nil {
		c.sharded.RunFor(d)
		return
	}
	c.Eng.RunFor(d)
}

// Active returns the number of inserted streams.
func (c *Cluster) Active() int { return c.Controller.Active() }

// Load returns the current schedule load fraction.
func (c *Cluster) Load() float64 {
	return float64(c.Controller.Active()) / float64(c.Cfg.Sched.NumSlots)
}

// FailCub kills a cub: it stops sending and receiving, as in the paper's
// power-cut experiment.
func (c *Cluster) FailCub(i int) { c.Net.Fail(msg.NodeID(i)) }

// ReviveCub ends a network blip: the cub reconnects with its state
// intact (its view has gone stale, but the entries survived) and catches
// up from incoming viewer states. For a machine that actually lost its
// memory, use RestartCub.
func (c *Cluster) ReviveCub(i int) { c.Net.Revive(msg.NodeID(i)) }

// CrashCub kills a cub like FailCub and additionally drops everything
// the old incarnation still had in flight, modelling a machine crash
// rather than a network blip. Bring it back with RestartCub. When the
// degradation governor is enabled the crash is advised to it
// immediately, standing in for a rack controller's out-of-band failure
// notification.
func (c *Cluster) CrashCub(i int) {
	c.Net.Crash(msg.NodeID(i))
	c.Controller.NoteCubsDown([]msg.NodeID{msg.NodeID(i)})
}

// RestartCub cold-restarts a crashed cub: reconnects it, wipes its
// volatile state, bumps its liveness epoch, and runs the rejoin
// handshake that rebuilds its view and hands mirror load back.
func (c *Cluster) RestartCub(i int) {
	c.Net.Revive(msg.NodeID(i))
	c.Cubs[i].Restart()
	c.Controller.NoteCubUp(msg.NodeID(i))
}

// CrashDomain kills every cub of failure domain d atomically — the
// correlated failure a rack losing power produces — and advises the
// governor of the whole group in one notification, so the park sweep
// sees the combined unservable set rather than discovering it cub by
// cub. Returns the member cub indices. Domains are configured with
// Options.DomainSize.
func (c *Cluster) CrashDomain(d int) ([]int, error) {
	members := c.Cfg.Layout.CubsOfDomain(d)
	if members == nil {
		return nil, fmt.Errorf("tiger: no failure domain %d (have %d)", d, c.Cfg.Layout.NumDomains())
	}
	out := make([]int, 0, len(members))
	for _, z := range members {
		c.Net.Crash(z)
		out = append(out, int(z))
	}
	c.Controller.NoteCubsDown(members)
	return out, nil
}

// RestartDomain cold-restarts every cub of failure domain d, in cub
// order, and returns the member indices.
func (c *Cluster) RestartDomain(d int) ([]int, error) {
	members := c.Cfg.Layout.CubsOfDomain(d)
	if members == nil {
		return nil, fmt.Errorf("tiger: no failure domain %d (have %d)", d, c.Cfg.Layout.NumDomains())
	}
	out := make([]int, 0, len(members))
	for _, z := range members {
		c.RestartCub(int(z))
		out = append(out, int(z))
	}
	return out, nil
}

// Unservable returns the disks no live copy can serve right now —
// primaries on dead cubs whose mirror coverage is also dead — computed
// from the layout and the governor's down set. Empty unless the
// governor is enabled and a correlated failure is in progress.
func (c *Cluster) Unservable() []int {
	gs := c.Controller.GovernorStats()
	if gs.Unservable == 0 {
		return nil
	}
	return c.Cfg.Layout.UnservableDisks(c.Net.Failed)
}

// diskModel returns the simulated drive behind global disk number d
// under the current layout. The cub-local drive index is invariant
// across striping generations, so the translation survives restripes
// that renumbered every disk.
func (c *Cluster) diskModel(d int) *disk.Disk {
	lay := c.Cfg.Layout
	return c.Cubs[int(lay.CubOfDisk(d))].DiskByIndex(d / lay.Cubs)
}

// FailDiskSlow makes global disk d a fail-slow drive: every read takes
// factor× its nominal service time, without any hard error. This is the
// gray failure the health monitor (suspect → hedge → quarantine) exists
// for; HealDisk restores the drive. Mirrors CrashCub/RestartCub for use
// from tests and the chaos engine.
func (c *Cluster) FailDiskSlow(d int, factor float64) {
	dk := c.diskModel(d)
	f := dk.Faults()
	f.SlowFactor = factor
	dk.SetFaults(f)
}

// FailDiskErrors gives global disk d a transient read-failure
// probability; reads complete on time but report failure with
// probability prob. HealDisk restores the drive.
func (c *Cluster) FailDiskErrors(d int, prob float64) {
	dk := c.diskModel(d)
	f := dk.Faults()
	f.ErrProb = prob
	dk.SetFaults(f)
}

// StickDisk wedges global disk d's queue: reads are accepted but none
// completes — the silent-hang gray failure. HealDisk unsticks it and
// restarts the queue.
func (c *Cluster) StickDisk(d int) {
	dk := c.diskModel(d)
	f := dk.Faults()
	f.Stuck = true
	dk.SetFaults(f)
}

// HealDisk clears every gray fault (slow, flaky, stuck) on global disk
// d. A quarantined drive is then un-quarantined by the owning cub's
// periodic probes, not immediately.
func (c *Cluster) HealDisk(d int) {
	c.diskModel(d).SetFaults(disk.Faults{})
}

// DiskHealth reports the owning cub's health-monitor state for global
// disk d under the current layout.
func (c *Cluster) DiskHealth(d int) core.DiskHealthState {
	lay := c.Cfg.Layout
	cub := c.Cubs[int(lay.CubOfDisk(d))]
	return cub.DiskHealth(cub.NativeDiskKey(d / lay.Cubs))
}

// MirrorLoadFor returns the number of mirror-piece schedule entries the
// rest of the system currently holds covering cub i's disks — the extra
// service cost the ring pays while i is down, which reintegration must
// drain back to zero.
func (c *Cluster) MirrorLoadFor(i int) int {
	n := 0
	for j, cub := range c.Cubs {
		if j == i {
			continue
		}
		n += cub.MirrorLoadFor(msg.NodeID(i))
	}
	return n
}

// machineFor places viewers onto simulated client machines.
func (c *Cluster) machineFor(v msg.ViewerID) *viewer.Machine {
	per := c.Opt.ViewersPerMachine
	if per <= 0 {
		per = 20
	}
	idx := int(v) / per
	for len(c.machines) <= idx {
		cap := per - 2 // a little under-provisioned at full packing
		if cap < 1 {
			cap = 1
		}
		c.machines = append(c.machines, viewer.NewMachine(cap, c.Opt.ClientDropProb, c.rng))
	}
	return c.machines[idx]
}

// InvariantViolations reports slot-conflict violations observed by the
// built-in oracle; it must be zero in every run.
func (c *Cluster) InvariantViolations() int { return c.oracle.violations }

// MaxViewSize returns the largest per-cub view observed via polling; see
// Sampler for periodic collection.
func (c *Cluster) MaxViewSize() int {
	m := 0
	for _, cub := range c.Cubs {
		if v := cub.ViewSize(); v > m {
			m = v
		}
	}
	return m
}

// ViewerTotals sums delivery outcomes across all finished and live
// streams: blocks verified on time, blocks lost, and blocks assembled
// from declustered mirror pieces.
func (c *Cluster) ViewerTotals() (ok, lost, mirror int64) {
	ok, lost, mirror = c.tallyOK, c.tallyLost, c.tallyMirror
	for _, s := range c.streams {
		st := s.Viewer.Stats()
		ok += st.BlocksOK
		lost += st.BlocksLost
		mirror += st.MirrorBlocks
	}
	return
}

// TotalCubStats sums the counters of all cubs.
func (c *Cluster) TotalCubStats() core.CubStats {
	var t core.CubStats
	for _, cub := range c.Cubs {
		s := cub.Stats()
		t.BlocksSent += s.BlocksSent
		t.PiecesSent += s.PiecesSent
		t.ServerMisses += s.ServerMisses
		t.StatesRecv += s.StatesRecv
		t.StatesDup += s.StatesDup
		t.StatesLate += s.StatesLate
		t.Conflicts += s.Conflicts
		t.DeschedRecv += s.DeschedRecv
		t.DeschedDup += s.DeschedDup
		t.Inserts += s.Inserts
		t.MirrorsMade += s.MirrorsMade
		t.PiecesLost += s.PiecesLost
		t.IndexMisses += s.IndexMisses
		t.DeadDeclared += s.DeadDeclared
		t.DeathsRefuted += s.DeathsRefuted
		t.RedundantRuns += s.RedundantRuns
		t.StartsDup += s.StartsDup
		t.Rejoins += s.Rejoins
		t.RejoinsServed += s.RejoinsServed
		t.ViewTransferred += s.ViewTransferred
		t.MirrorsRetired += s.MirrorsRetired
		t.StaleEpochDrops += s.StaleEpochDrops
		t.HedgesIssued += s.HedgesIssued
		t.HedgeLocalWins += s.HedgeLocalWins
		t.HedgeMirrorWins += s.HedgeMirrorWins
		t.DiskReadErrors += s.DiskReadErrors
		t.DiskSuspects += s.DiskSuspects
		t.DiskRecoveries += s.DiskRecoveries
		t.DiskQuarantines += s.DiskQuarantines
		t.DiskUnquarantines += s.DiskUnquarantines
		t.MovesOut += s.MovesOut
		t.MovesIn += s.MovesIn
		t.MoveBytesOut += s.MoveBytesOut
		t.MoveBytesIn += s.MoveBytesIn
		t.MovesNacked += s.MovesNacked
		t.StreamsParked += s.StreamsParked
		t.StreamsResumed += s.StreamsResumed
		t.DownAdvisories += s.DownAdvisories
		t.CtlStaleDrops += s.CtlStaleDrops
		t.CtlTakeovers += s.CtlTakeovers
		t.CtlDeclaredDead += s.CtlDeclaredDead
		t.ScavengesServed += s.ScavengesServed
	}
	return t
}

// onInsertOracle feeds the conflict oracle, skipping insertions of
// streams that already finished: a stop can race an in-flight insertion,
// in which case the controller deschedules the slot on the late ack and
// no double occupancy occurs (§4.1.2 idempotence makes this safe).
func (c *Cluster) onInsertOracle(cub msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
	if _, live := c.streams[inst]; !live {
		return
	}
	// A slot frees for re-insertion before its stream finishes: cubs
	// stop forwarding next-hop states at end of file, so once the final
	// viewer state is within the forwarding lead the successors see the
	// slot empty while the last services and the client's play-out are
	// still running. EOF-replay churn at full load re-inserts inside
	// that gap constantly; release the previous occupant eagerly once
	// it is provably in that tail, so the oracle only flags genuine
	// double occupancy.
	if prev, busy := c.oracle.occupant(slot); busy && prev != inst {
		lead := int32(c.Cfg.MaxVStateLead/c.Cfg.Sched.BlockPlay) + 2
		if s, live := c.streams[prev]; live && s.Viewer.InFinalWindow(lead) {
			c.oracle.release(prev)
		}
	}
	c.oracle.onInsert(cub, slot, inst, due)
}

// slotOracle is the test-side conflict detector: it tracks which
// instance occupies each slot and flags double occupancy. It exists
// outside the protocol — the cubs themselves have no global view.
type slotOracle struct {
	slots      map[int32]msg.InstanceID
	ends       map[msg.InstanceID]int32
	violations int
}

func newSlotOracle() *slotOracle {
	return &slotOracle{slots: make(map[int32]msg.InstanceID), ends: make(map[msg.InstanceID]int32)}
}

func (o *slotOracle) onInsert(cub msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
	if cur, busy := o.slots[slot]; busy && cur != inst {
		o.violations++
		return
	}
	o.slots[slot] = inst
	o.ends[inst] = slot
}

// occupant reports which instance currently holds slot, if any.
func (o *slotOracle) occupant(slot int32) (msg.InstanceID, bool) {
	inst, ok := o.slots[slot]
	return inst, ok
}

func (o *slotOracle) release(inst msg.InstanceID) {
	if slot, ok := o.ends[inst]; ok {
		if o.slots[slot] == inst {
			delete(o.slots, slot)
		}
		delete(o.ends, inst)
	}
}

// Type aliases so users of the public API never need to import internal
// packages.
type (
	// FileID names a striped content file.
	FileID = msg.FileID
	// ViewerID identifies a client endpoint.
	ViewerID = msg.ViewerID
	// InstanceID identifies one start-play request.
	InstanceID = msg.InstanceID
	// NodeID identifies a machine (cubs 0..n-1; controller -1).
	NodeID = msg.NodeID
)
