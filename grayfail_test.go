package tiger

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"tiger/internal/chaos"
	"tiger/internal/core"
	"tiger/internal/msg"
)

// grayOptions is the gray-failure test shape: big enough that one
// fail-slow disk saturates and streams genuinely lose blocks, small
// enough to sweep quickly.
func grayOptions() Options {
	o := DefaultOptions()
	o.Cubs = 6
	o.DisksPerCub = 2
	o.Decluster = 2
	o.NumFiles = 8
	o.FileBlocks = 600
	o.ClientDropProb = 0
	return o
}

// grayVictim returns the disk RunGrayFailSweep degrades: first disk of
// the last cub.
func grayVictim(c *Cluster) int {
	return c.Cfg.Layout.DisksOfCub(msg.NodeID(len(c.Cubs) - 1))[0]
}

// The acceptance bar: with one disk at 3× nominal service time, the
// monitor must hold loss under 0.5% of blocks while the unmitigated arm
// does measurably worse, quarantine the drive within a bounded window,
// and never double-serve a block.
func TestGrayFailAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	pts, err := RunGrayFailSweep(grayOptions(), 0, []float64{3}, 45*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points for 1 factor", len(pts))
	}
	hedged, bare := pts[0], pts[1]
	for _, p := range pts {
		t.Logf("factor %.1f hedge=%v: ok=%d lost=%d (%.3f%%) mirror=%d hedges=%d/%d/%d misses=%d suspected=%v(%.1fs) quarantined=%v(%.1fs) doubles=%d",
			p.Factor, p.Hedge, p.BlocksOK, p.BlocksLost, p.LossPct, p.MirrorBlocks,
			p.HedgesIssued, p.HedgeLocalWins, p.HedgeMirrorWins, p.ServerMisses,
			p.Suspected, p.TimeToSuspectSec, p.Quarantined, p.TimeToQuarantineSec, p.DoubleServes)
	}
	if !hedged.Hedge || bare.Hedge {
		t.Fatalf("arm order wrong: %+v / %+v", hedged.Hedge, bare.Hedge)
	}
	if hedged.LossPct >= 0.5 {
		t.Errorf("hedged loss %.3f%%, want < 0.5%%", hedged.LossPct)
	}
	if bare.BlocksLost <= hedged.BlocksLost {
		t.Errorf("unmitigated lost %d blocks, hedged %d — mitigation shows no benefit", bare.BlocksLost, hedged.BlocksLost)
	}
	if !hedged.Quarantined || hedged.TimeToQuarantineSec > 15 {
		t.Errorf("quarantine %v at %.1fs, want within 15s", hedged.Quarantined, hedged.TimeToQuarantineSec)
	}
	if hedged.DoubleServes != 0 || bare.DoubleServes != 0 {
		t.Errorf("double serves: hedged %d, bare %d", hedged.DoubleServes, bare.DoubleServes)
	}
	if bare.Suspected || bare.Quarantined {
		t.Errorf("disabled monitor still detected: %+v", bare)
	}
}

// The sweep must be byte-reproducible: same options, same bytes out.
func TestGrayFailSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	run := func() []byte {
		pts, err := RunGrayFailSweep(grayOptions(), 24, []float64{2}, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(pts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("sweep not deterministic:\n%s\n%s", a, b)
	}
}

// Quarantine must compose with the PR 1 restart path: a cub that
// crashes and rejoins while holding a quarantined drive must come back
// with the quarantine intact — the rejoin handshake must not resurrect
// the sick drive or double-retire it.
func TestQuarantineSurvivesRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	c, err := New(grayOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(40); err != nil {
		t.Fatal(err)
	}
	c.RunFor(15 * time.Second)
	h := NewChaosHarness(c)
	defer h.Close()

	victim := grayVictim(c)
	victimCub := int(c.Cfg.Layout.CubOfDisk(victim))
	c.FailDiskSlow(victim, 20)
	c.RunFor(15 * time.Second)
	if st := c.DiskHealth(victim); st != core.DiskQuarantined {
		t.Fatalf("disk %d %s, want quarantined", victim, st)
	}

	cs0 := c.TotalCubStats()
	c.CrashCub(victimCub)
	c.RunFor(5 * time.Second)
	c.RestartCub(victimCub)
	c.RunFor(30 * time.Second)

	cs1 := c.TotalCubStats()
	if n := cs1.Rejoins - cs0.Rejoins; n != 1 {
		t.Fatalf("%d rejoins across restart", n)
	}
	// The fault is still live, so probes keep failing: the quarantine
	// must hold across the crash–rejoin cycle.
	if st := c.DiskHealth(victim); st != core.DiskQuarantined {
		t.Fatalf("disk %d %s after rejoin, want still quarantined", victim, st)
	}
	if cc := c.Cubs[victimCub]; cc.FailedDisks() != 1 || cc.QuarantinedDisks() != 1 {
		t.Fatalf("failed=%d quarantined=%d after rejoin", cc.FailedDisks(), cc.QuarantinedDisks())
	}
	if h.DoubleServes() != 0 {
		t.Fatalf("%d double serves across rejoin", h.DoubleServes())
	}
	if cs1.Conflicts != cs0.Conflicts {
		t.Fatalf("state conflicts rose %d → %d", cs0.Conflicts, cs1.Conflicts)
	}
}

// Quarantine must compose with the PR 4 split-brain refutation: when
// the cub holding a quarantined drive is partitioned, its peers declare
// it dead and cover everything it owns; on heal, refutation must hand
// primaries back without double-retiring the already-quarantined drive
// or double-serving any block.
func TestQuarantinedDiskOnPartitionedCub(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	c, err := New(grayOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(40); err != nil {
		t.Fatal(err)
	}
	c.RunFor(15 * time.Second)

	victim := grayVictim(c)
	victimCub := int(c.Cfg.Layout.CubOfDisk(victim))
	c.FailDiskSlow(victim, 20)
	c.RunFor(15 * time.Second)
	if st := c.DiskHealth(victim); st != core.DiskQuarantined {
		t.Fatalf("disk %d %s, want quarantined", victim, st)
	}

	sc := chaos.Scenario{
		Name:     "quarantine-partition",
		Seed:     7,
		Duration: 60 * time.Second,
		Steps: chaos.Concat(
			chaos.At(2*time.Second, chaos.IsolateCub(victimCub)),
			chaos.At(10*time.Second, chaos.RejoinCub(victimCub)),
		),
	}
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Ok() {
		t.Fatalf("invariant violations: %v", res.Report.Violations)
	}
	if st := c.DiskHealth(victim); st != core.DiskQuarantined {
		t.Fatalf("disk %d %s after partition cycle, want still quarantined", victim, st)
	}
	if res.DeathsRefuted == 0 {
		t.Fatal("no refutation: partition never took effect")
	}
}

// Short-mode smoke: the chaos engine's gray steps drive a slow-then-
// healed disk end to end under the full invariant set. Settle is
// explicit because un-quarantine alone takes ProbeInterval×ProbeGood
// after the heal, then the residual mirror load must drain.
func TestGrayFailChaosSmoke(t *testing.T) {
	o := grayOptions()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(24); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	sc := chaos.Scenario{
		Name:     "grayfail-smoke",
		Seed:     5,
		Duration: 75 * time.Second,
		Settle:   40 * time.Second,
		Steps: chaos.Concat(
			chaos.At(2*time.Second, chaos.DiskSlow(1, 0, 8)),
			chaos.At(12*time.Second, chaos.DiskHeal(1, 0)),
		),
	}
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Ok() {
		t.Fatalf("invariant violations: %v", res.Report.Violations)
	}
	if !res.Report.QuietAtEnd {
		t.Fatal("gray fault left outstanding")
	}
}
