package tiger

import (
	"testing"
	"time"
)

// TestPaperCapacity checks that the default configuration plans the
// paper's headline capacity: 56 disks at about 10.75 streams per disk,
// 602 streams total (§5).
func TestPaperCapacity(t *testing.T) {
	c, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := c.CapacityPlan()
	t.Logf("blockService=%v perDisk=%.3f total=%d", plan.BlockService, plan.StreamsPerDisk, plan.Streams)
	if plan.Streams < 590 || plan.Streams > 610 {
		t.Fatalf("capacity %d far from the paper's 602", plan.Streams)
	}
	if plan.StreamsPerDisk < 10.5 || plan.StreamsPerDisk > 11.0 {
		t.Fatalf("per-disk capacity %.2f far from the paper's 10.75", plan.StreamsPerDisk)
	}
}

// TestFullLoadUnfailed ramps the paper configuration to full capacity
// and verifies timely delivery with a tiny loss rate.
func TestFullLoadUnfailed(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(c)
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(120 * time.Second)
	s := sampler.Sample()
	t.Logf("active=%d/%d cubCPU=%.2f ctrlCPU=%.4f disk=%.2f ctl=%.1fKB/s data=%.2fMB/s view=%d",
		c.Active(), c.Capacity(), s.CubCPU, s.CtrlCPU, s.DiskLoad,
		s.CtlTrafficBps/1e3, s.DataRateBps/1e6, s.MaxViewEntries)
	var ok, lost int64
	for _, st := range c.streams {
		vs := st.Viewer.Stats()
		ok += vs.BlocksOK
		lost += vs.BlocksLost
	}
	t.Logf("blocks ok=%d lost=%d serverMiss=%d", ok, lost, c.TotalCubStats().ServerMisses)
	if c.Active() != c.Capacity() {
		t.Errorf("only %d of %d streams active", c.Active(), c.Capacity())
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	if lost > (ok+lost)/10000 {
		t.Errorf("loss rate too high: %d of %d", lost, ok+lost)
	}
	cs := c.TotalCubStats()
	if cs.Conflicts != 0 || cs.IndexMisses != 0 {
		t.Errorf("anomalies: %+v", cs)
	}
}

// TestFullLoadOneCubFailed reproduces the failed-mode experiment: one
// cub down for the whole run, mirrors carrying its load.
func TestFullLoadOneCubFailed(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	c.FailCub(5)
	c.RunFor(5 * time.Second) // let the deadman notice before load arrives
	sampler := NewSampler(c)
	sampler.ProbeCub = 6 // a mirroring cub, as the paper measured
	sampler.MirrorCub = 6
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(120 * time.Second)
	s := sampler.Sample()
	t.Logf("active=%d/%d cubCPU=%.2f mirrorDisk=%.2f ctl=%.1fKB/s data=%.2fMB/s",
		c.Active(), c.Capacity(), s.CubCPU, s.MirrorDiskLoad, s.CtlTrafficBps/1e3, s.DataRateBps/1e6)
	var ok, lost, mirror int64
	for _, st := range c.streams {
		vs := st.Viewer.Stats()
		ok += vs.BlocksOK
		lost += vs.BlocksLost
		mirror += vs.MirrorBlocks
	}
	cs := c.TotalCubStats()
	t.Logf("blocks ok=%d lost=%d mirrorBlocks=%d pieces=%d misses=%d", ok, lost, mirror, cs.PiecesSent, cs.ServerMisses)
	if c.Active() != c.Capacity() {
		t.Errorf("only %d of %d streams active", c.Active(), c.Capacity())
	}
	if mirror == 0 {
		t.Errorf("no blocks served from mirrors despite a failed cub")
	}
	if lost > (ok+lost)/5000 {
		t.Errorf("loss rate too high in failed mode: %d of %d", lost, ok+lost)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
}

// TestBufferPoolMatchesPaperHardware checks that the buffer the cubs
// need (blocks held from disk read to send completion) fits the paper's
// machines: 64 MB of RAM with a 20 MB block cache per cub.
func TestBufferPoolMatchesPaperHardware(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(90 * time.Second)
	var peak int64
	for _, cub := range c.Cubs {
		if p := cub.Stats().PeakBuffered; p > peak {
			peak = p
		}
	}
	t.Logf("peak buffer pool per cub: %.1f MB", float64(peak)/1e6)
	if peak > 40e6 {
		t.Errorf("peak buffer %.1f MB would not fit the paper's 64 MB cubs", float64(peak)/1e6)
	}
	if peak < 5e6 {
		t.Errorf("peak buffer %.1f MB implausibly small at full load", float64(peak)/1e6)
	}
}
