package tiger

import (
	"fmt"
	"testing"
	"time"
)

// scenarioDigest runs a fixed eventful scenario (ramp, failure, stops,
// revival) and returns a digest of everything observable: per-cub
// counters, viewer outcomes, and the exact startup-latency sequence.
func scenarioDigest(t *testing.T, seed int64) string {
	t.Helper()
	o := DefaultOptions()
	o.Cubs = 10
	o.DisksPerCub = 2
	o.Decluster = 2
	o.ClientDropProb = 0
	o.Seed = seed
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(c.Capacity() / 2); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	c.FailCub(3)
	c.RunFor(15 * time.Second)
	// Stop a deterministic subset.
	n := 0
	for _, s := range c.Streams() {
		_ = s
		n++
	}
	stopped := 0
	for inst := InstanceID(1); stopped < n/4 && inst < InstanceID(10*n); inst++ {
		if s, ok := c.Streams()[inst]; ok {
			s.Stop()
			stopped++
		}
	}
	c.RunFor(10 * time.Second)
	c.ReviveCub(3)
	if err := c.RampTo(c.Capacity() * 3 / 4); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)

	digest := ""
	for i, cub := range c.Cubs {
		st := cub.Stats()
		digest += fmt.Sprintf("cub%d:%d/%d/%d/%d/%d;", i,
			st.BlocksSent, st.PiecesSent, st.Inserts, st.StatesRecv, st.ServerMisses)
	}
	ok, lost, mirror := c.ViewerTotals()
	digest += fmt.Sprintf("v:%d/%d/%d;", ok, lost, mirror)
	for _, p := range c.StartupPoints {
		digest += fmt.Sprintf("%d,", p.Latency.Nanoseconds())
	}
	return digest
}

// TestDeterministicReplay verifies a run is a pure function of its seed:
// identical seeds produce byte-identical observable histories, different
// seeds do not. This is what makes simulator debugging tractable.
func TestDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay run")
	}
	a := scenarioDigest(t, 7)
	b := scenarioDigest(t, 7)
	if a != b {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("same seed diverged at byte %d:\n a: ...%s\n b: ...%s",
			i, a[lo:min(i+40, len(a))], b[lo:min(i+40, len(b))])
	}
	if c := scenarioDigest(t, 8); c == a {
		t.Fatal("different seeds produced identical histories")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
