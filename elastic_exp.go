package tiger

import (
	"fmt"
	"time"

	"tiger/internal/chaos"
	"tiger/internal/obs/attr"
	"tiger/internal/sim"
)

// This file is the `tigerbench -exp elastic` experiment: grow and
// shrink the array while serving full load, with chaos arms that crash,
// partition, or gray-degrade machines mid-restripe. Every arm runs
// under the double-service oracle and the standard invariant set; the
// acceptance bar is zero stream loss and zero double-serves in all of
// them.

// Elastic arm names, in sweep order.
var ElasticArms = []string{"clean", "crash", "partition", "disk-slow"}

// elasticGrowBy is how many cubs the grow and shrink legs add/remove.
const elasticGrowBy = 2

// ElasticSample is one point of a capacity-ramp trace: active streams
// and restripe phase at T seconds after the scenario started.
type ElasticSample struct {
	T      float64
	Phase  string
	Active int
}

// ElasticPoint is one arm of the elastic sweep.
type ElasticPoint struct {
	Dir        string // "grow" | "shrink"
	Arm        string // "clean" | "crash" | "partition" | "disk-slow"
	FromCubs   int
	TargetCubs int

	CapacityBefore int
	CapacityAfter  int
	StreamsBefore  int // active when the scenario started (full load)
	ActiveAfter    int // active after re-ramping to the new capacity

	// Move-plan progress, from the coordinator and the cubs.
	Moves           int
	Committed       int
	Rerouted        int64
	Nacks           int64
	MoveBytes       int64
	DeferredReplays int

	// Phase durations in virtual seconds.
	CopySec   float64
	DrainSec  float64
	LingerSec float64
	TotalSec  float64
	MoveMBps  float64 // plan bytes over the copy phase

	// Delivery deltas across the whole run (ramp excluded).
	BlocksOK     int64
	BlocksLost   int64 // must be 0
	MirrorBlocks int64

	DoubleServes int // must be 0
	Violations   int // invariant violations, including restripe preconditions
	FinalPhase   string

	Ramp []ElasticSample

	// Attribution and Flight are filled by RunElasticSweepAttr: the
	// per-component slack table for the arm's traced blocks (mover
	// interference shows up in the disk rows), and the flight-recorder
	// dumps of any misses or oracle violations.
	Attribution *attr.Table  `json:"attribution,omitempty"`
	Flight      []FlightDump `json:"flight,omitempty"`
}

// elasticScenario builds the fault schedule for one arm. The restripe
// always starts at 2 s. Grow arms strike mid-copy and aim at the
// newest cub — the one every move is racing toward; shrink arms strike
// late, during the linger window, when the retiring cub is drained and
// a crash or partition must not resurrect its retired generation.
// Disk-slow arms degrade a busy source cub's drive mid-copy in both
// directions, forcing the health monitor's quarantine and the
// coordinator's re-route path to compose.
func elasticScenario(dir, arm string, fromCubs, target int, seed int64) (chaos.Scenario, error) {
	const start = 2 * time.Second
	steps := chaos.At(start, chaos.Restripe(target))
	var dur time.Duration
	if dir == "grow" {
		dur = 180 * time.Second
		newest := target - 1
		switch arm {
		case "clean":
		case "crash":
			steps = chaos.Concat(steps,
				chaos.At(10*time.Second, chaos.CrashMidRestripe(newest)),
				chaos.At(25*time.Second, chaos.Restart(newest)))
		case "partition":
			steps = chaos.Concat(steps,
				chaos.At(10*time.Second, chaos.IsolateMidRestripe(newest)),
				chaos.At(40*time.Second, chaos.RejoinCub(newest)))
		case "disk-slow":
			steps = chaos.Concat(steps,
				chaos.At(10*time.Second, chaos.DiskSlowMidRestripe(3, 0, 2.0)),
				chaos.At(40*time.Second, chaos.DiskHeal(3, 0)))
		default:
			return chaos.Scenario{}, fmt.Errorf("tiger: unknown elastic arm %q", arm)
		}
	} else {
		// Shrink strikes land at 240 s: with the 120 s pinned linger the
		// old generation is drained (~220 s at this load) but the retiring
		// cub is still fenced and monitored — the exact window narrowing
		// has to defend.
		dur = 300 * time.Second
		retiring := fromCubs - 1
		switch arm {
		case "clean":
		case "crash":
			steps = chaos.Concat(steps,
				chaos.At(240*time.Second, chaos.CrashMidRestripe(retiring)),
				chaos.At(255*time.Second, chaos.Restart(retiring)))
		case "partition":
			steps = chaos.Concat(steps,
				chaos.At(240*time.Second, chaos.IsolateMidRestripe(retiring)),
				chaos.At(270*time.Second, chaos.RejoinCub(retiring)))
		case "disk-slow":
			steps = chaos.Concat(steps,
				chaos.At(10*time.Second, chaos.DiskSlowMidRestripe(3, 0, 2.0)),
				chaos.At(40*time.Second, chaos.DiskHeal(3, 0)))
		default:
			return chaos.Scenario{}, fmt.Errorf("tiger: unknown elastic arm %q", arm)
		}
	}
	return chaos.Scenario{
		Name:     fmt.Sprintf("elastic-%s-%s", dir, arm),
		Seed:     seed,
		Duration: dur,
		Steps:    steps,
	}, nil
}

// RunElasticSweep runs the grow and shrink legs across the given arms.
// Each point builds a fresh cluster at the paper's shape, ramps it to
// full capacity with short files (so the old generation drains by EOF
// on experiment timescales, as DESIGN §13 describes), runs its chaos
// scenario around a live restripe, drives the restripe to completion,
// and then ramps into the new shape's capacity.
func RunElasticSweep(o Options, arms []string) ([]ElasticPoint, error) {
	return RunElasticSweepAttr(o, arms, false)
}

// RunElasticSweepAttr is RunElasticSweep with optional slack
// attribution: when enableAttr is set, each arm runs with causal
// tracing and the flight recorder on, and its point carries the
// per-component slack table plus flight dumps.
func RunElasticSweepAttr(o Options, arms []string, enableAttr bool) ([]ElasticPoint, error) {
	if len(arms) == 0 {
		arms = ElasticArms
	}
	type spec struct {
		dir    string
		target int
		arm    string
	}
	var specs []spec
	for _, d := range []struct {
		name  string
		delta int
	}{{"grow", elasticGrowBy}, {"shrink", -elasticGrowBy}} {
		for _, a := range arms {
			specs = append(specs, spec{d.name, o.Cubs + d.delta, a})
		}
	}

	out := make([]ElasticPoint, len(specs))
	err := forEachPoint(len(specs), func(i int) error {
		sp := specs[i]
		opt := o
		opt.ClientDropProb = 0
		opt.NumFiles = 12
		opt.FileBlocks = 100 // ~100 s plays: the old ring empties by EOF
		opt.AdmitLimit = 1.0
		opt.RampSpacing = 50 * time.Millisecond
		if sp.dir == "shrink" {
			// Pin the linger so the late-strike arms land inside it.
			opt.RestripeLinger = 120 * time.Second
		}
		c, err := New(opt)
		if err != nil {
			return err
		}
		if enableAttr {
			c.EnableTrace(4096)
			c.EnableCausalTrace(0, 0)
			c.EnableFlightRecorder(0)
		}
		if err := c.RampTo(c.Capacity()); err != nil {
			return err
		}
		c.RunFor(10 * time.Second)

		sc, err := elasticScenario(sp.dir, sp.arm, opt.Cubs, sp.target, opt.Seed)
		if err != nil {
			return err
		}
		sc.Settle = c.Cfg.DeadmanTimeout + c.Cfg.MaxVStateLead + 5*c.Cfg.Sched.BlockPlay

		h := NewChaosHarness(c)
		defer h.Close()
		r, err := chaos.NewRunner(chaosSystem{c}, sc, h.Invariants())
		if err != nil {
			return err
		}
		pt := ElasticPoint{
			Dir:            sp.dir,
			Arm:            sp.arm,
			FromCubs:       opt.Cubs,
			TargetCubs:     sp.target,
			CapacityBefore: c.Capacity(),
			StreamsBefore:  c.Active(),
		}
		t0 := c.Now()
		const sampleEvery = 5 * time.Second
		nextSample := time.Duration(0)
		sample := func() {
			pt.Ramp = append(pt.Ramp, ElasticSample{
				T:      c.Now().Sub(t0).Seconds(),
				Phase:  c.RestripePhase(),
				Active: c.Active(),
			})
		}
		r.OnTick = func(now sim.Time, quiet bool) {
			if el := now.Sub(t0); el >= nextSample {
				sample()
				nextSample = el + sampleEvery
			}
		}

		ok0, lost0, mir0 := c.ViewerTotals()
		rep, err := r.Run()
		if err != nil {
			return err
		}

		// The scenario duration bounds the fault schedule, not the
		// restripe: drive the cluster until the phase machine reports
		// done (or give up and record where it stuck).
		for lim := 0; c.RestripePhase() != RestripeDone && lim < 300; lim++ {
			c.RunFor(time.Second)
		}

		// Ramp into the new shape. Admission headroom opens as the last
		// old-generation streams finish, so retry around refusals.
		for try := 0; try < 30; try++ {
			if err := c.RampTo(c.Capacity()); err == nil {
				break
			}
			c.RunFor(2 * time.Second)
		}
		c.RunFor(10 * time.Second)
		sample()

		ok1, lost1, mir1 := c.ViewerTotals()
		in := c.RestripeInfo()
		cs := c.TotalCubStats()

		pt.CapacityAfter = c.Capacity()
		pt.ActiveAfter = c.Active()
		pt.Moves = in.Moves
		pt.Committed = in.Coord.Committed
		pt.Rerouted = in.Coord.Rerouted
		pt.Nacks = cs.MovesNacked
		pt.MoveBytes = in.Bytes
		pt.DeferredReplays = in.DeferredReplays
		if in.CopyDone > 0 {
			pt.CopySec = in.CopyDone.Sub(in.CopyStart).Seconds()
			if pt.CopySec > 0 {
				pt.MoveMBps = float64(in.Bytes) / 1e6 / pt.CopySec
			}
		}
		if in.DrainDone > 0 && in.CopyDone > 0 {
			pt.DrainSec = in.DrainDone.Sub(in.CopyDone).Seconds()
		}
		if in.Finished > 0 {
			if in.DrainDone > 0 {
				pt.LingerSec = in.Finished.Sub(in.DrainDone).Seconds()
			}
			pt.TotalSec = in.Finished.Sub(in.CopyStart).Seconds()
		}
		pt.BlocksOK = ok1 - ok0
		pt.BlocksLost = lost1 - lost0
		pt.MirrorBlocks = mir1 - mir0
		pt.DoubleServes = h.DoubleServes()
		pt.Violations = len(rep.Violations)
		pt.FinalPhase = c.RestripePhase()
		if enableAttr {
			pt.Attribution = attr.Build(c.CausalChains())
			if fr := c.FlightRecorder(); fr != nil {
				pt.Flight = fr.Dumps()
			}
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
