module tiger

go 1.22
