package tiger

import (
	"fmt"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/trace"
)

// Failure flight recorder (DESIGN §14.4). When an oracle fires — a
// block misses its deadline, the double-service oracle trips, or a
// chaos invariant reports a violation — the recorder captures the
// implicated block's full causal chain plus a window of neighboring
// protocol events from the trace ring, so the report carries the "what
// led up to this" context that a counter cannot. Dumps are bounded:
// after MaxDumps the recorder only counts.

// FlightDump is one captured failure: the trigger, the implicated
// block (Instance 0 / Block -1 when the trigger names no block), its
// merged causal chain, and the protocol events nearest the trigger.
type FlightDump struct {
	Reason   string          `json:"reason"`
	AtNs     int64           `json:"at_ns"`
	Instance msg.InstanceID  `json:"instance,omitempty"`
	Block    int32           `json:"block"`
	Hops     []trace.JSONHop `json:"hops,omitempty"`
	Events   []string        `json:"events,omitempty"`
}

// neighborEvents bounds the ring-event window captured per dump.
const neighborEvents = 12

// FlightRecorder captures causal context at failure time.
type FlightRecorder struct {
	c *Cluster

	// MaxDumps bounds retained dumps; triggers past it only count.
	MaxDumps int

	dumps     []FlightDump
	triggered uint64
}

// EnableFlightRecorder attaches a failure flight recorder. It requires
// causal tracing (EnableCausalTrace) for chains to be available —
// without it dumps still fire but carry only the ring-event window.
// maxDumps <= 0 takes a default of 32.
func (c *Cluster) EnableFlightRecorder(maxDumps int) *FlightRecorder {
	if c.flight != nil {
		return c.flight
	}
	if maxDumps <= 0 {
		maxDumps = 32
	}
	fr := &FlightRecorder{c: c, MaxDumps: maxDumps}
	c.flight = fr
	c.flightHooks = core.Hooks{
		OnMiss: func(cub msg.NodeID, vs msg.ViewerState) {
			fr.capture(fmt.Sprintf("deadline-miss at cub %d (slot %d, mirror=%v)", cub, vs.Slot, vs.Mirror),
				vs.Instance, vs.Block)
		},
		// A governor park is a deliberate shed, but each one costs a
		// viewer their stream — capture the causal window so a park storm
		// can be traced back to the failure that exhausted the mirrors.
		OnPark: func(cub msg.NodeID, viewer msg.ViewerID, inst msg.InstanceID, slot int32) {
			fr.capture(fmt.Sprintf("governor-park at cub %d (viewer %d, slot %d)", cub, viewer, slot),
				inst, -1)
		},
	}
	c.publishHooks()
	return fr
}

// FlightRecorder returns the attached recorder, or nil.
func (c *Cluster) FlightRecorder() *FlightRecorder { return c.flight }

// capture records one dump (or just counts, past MaxDumps).
func (fr *FlightRecorder) capture(reason string, inst msg.InstanceID, block int32) {
	fr.triggered++
	if len(fr.dumps) >= fr.MaxDumps {
		return
	}
	d := FlightDump{
		Reason:   reason,
		AtNs:     int64(fr.c.Now()),
		Instance: inst,
		Block:    block,
	}
	if block >= 0 {
		for _, h := range fr.c.CausalChain(inst, block) {
			d.Hops = append(d.Hops, h.JSON())
		}
	}
	if ring := fr.c.ring; ring != nil {
		evs := ring.Events()
		if len(evs) > neighborEvents {
			evs = evs[len(evs)-neighborEvents:]
		}
		for _, e := range evs {
			d.Events = append(d.Events, e.String())
		}
	}
	fr.dumps = append(fr.dumps, d)
}

// violation captures a chaos-invariant violation. The invariant names
// no specific block, so the dump carries the event window and, when
// causal tracing is on, the chains of the most recently touched keys.
func (fr *FlightRecorder) violation(name string, detail string) {
	fr.capture(fmt.Sprintf("invariant %s: %s", name, detail), 0, -1)
}

// doubleServe captures a double-service detection with the exact block.
func (fr *FlightRecorder) doubleServe(cub msg.NodeID, vs msg.ViewerState, detail string) {
	fr.capture("double-service: "+detail, vs.Instance, vs.Block)
}

// Dumps returns the captured failures, oldest first.
func (fr *FlightRecorder) Dumps() []FlightDump { return fr.dumps }

// Triggered returns how many times an oracle fired, counting triggers
// past the MaxDumps bound.
func (fr *FlightRecorder) Triggered() uint64 { return fr.triggered }
