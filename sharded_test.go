package tiger

import (
	"fmt"
	"testing"
	"time"
)

// shardedDigest runs a fixed loaded scenario on an S-sharded cluster
// with the given worker count and digests everything observable: per-cub
// protocol counters, viewer outcomes, loss totals, per-shard event
// counts, and the exact startup-latency sequence. A sharded simulation
// is a pure function of (options, shard count); the worker count only
// changes which goroutine executes a shard's window, so digests must be
// byte-identical across worker counts.
func shardedDigest(t *testing.T, shards, workers int) string {
	t.Helper()
	o := DefaultOptions()
	o.Cubs = 8
	o.DisksPerCub = 2
	o.Decluster = 2
	o.ClientDropProb = 0
	o.RampSpacing = 20 * time.Millisecond
	o.NumFiles = 16
	o.FileBlocks = 60
	o.Shards = shards
	o.ShardWorkers = workers
	o.Seed = 11
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(c.Capacity() * 3 / 4); err != nil {
		t.Fatal(err)
	}
	c.RunFor(45 * time.Second)
	// Stop a deterministic subset mid-run, then keep serving.
	stopped := 0
	for inst := InstanceID(1); stopped < 10 && inst < 10000; inst++ {
		if s, ok := c.Streams()[inst]; ok {
			s.Stop()
			stopped++
		}
	}
	c.RunFor(30 * time.Second)

	digest := fmt.Sprintf("t:%d;ev:%d;", int64(c.Now()), c.EventsProcessed())
	for i, cub := range c.Cubs {
		st := cub.Stats()
		digest += fmt.Sprintf("cub%d:%d/%d/%d/%d/%d/%d;", i,
			st.BlocksSent, st.PiecesSent, st.Inserts, st.StatesRecv,
			st.ServerMisses, st.Conflicts)
	}
	ok, lost, mirror := c.ViewerTotals()
	digest += fmt.Sprintf("v:%d/%d/%d;", ok, lost, mirror)
	digest += fmt.Sprintf("loss:%d/%d;", c.Loss.ServerMissed, c.Loss.ClientMissed)
	cs := c.Controller.Stats()
	digest += fmt.Sprintf("ctl:%d/%d/%d/%d;", cs.Starts, cs.Stops, cs.Acks, cs.EOFs)
	for _, p := range c.StartupPoints {
		digest += fmt.Sprintf("%d,", p.Latency.Nanoseconds())
	}
	return digest
}

// TestShardedByteIdentical is the cluster-level half of the sharded
// determinism guarantee: for each shard count, running the partitioned
// model serially (1 worker) and in parallel (2, 4, 8 workers) must
// produce byte-identical observable histories. Run with -race to also
// certify the coordination (the barrier and mailbox single-writer
// discipline) data-race free under real concurrency.
func TestShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("replay run")
	}
	for _, shards := range []int{2, 4, 8} {
		serial := shardedDigest(t, shards, 1)
		for _, workers := range []int{2, 4, 8} {
			par := shardedDigest(t, shards, workers)
			if par != serial {
				i := 0
				for i < len(serial) && i < len(par) && serial[i] == par[i] {
					i++
				}
				lo := i - 40
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("shards=%d workers=%d diverged from serial at byte %d:\n serial: ...%s\n par:    ...%s",
					shards, workers, i,
					serial[lo:min(i+40, len(serial))], par[lo:min(i+40, len(par))])
			}
		}
	}
}

// TestShardedServes sanity-checks that a sharded cluster actually
// serves: streams ramp, blocks arrive on time, and nothing is lost at
// three-quarters load.
func TestShardedServes(t *testing.T) {
	o := DefaultOptions()
	o.Cubs = 8
	o.DisksPerCub = 2
	o.Decluster = 2
	o.ClientDropProb = 0
	o.RampSpacing = 20 * time.Millisecond
	o.NumFiles = 16
	o.Shards = 4
	o.Seed = 5
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(c.Capacity() * 3 / 4); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)
	ok, lost, _ := c.ViewerTotals()
	if ok == 0 {
		t.Fatal("no blocks delivered on a sharded cluster")
	}
	if lost != 0 {
		t.Fatalf("%d blocks lost at 3/4 load on a healthy sharded cluster", lost)
	}
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	if c.EventsProcessed() == 0 {
		t.Fatal("EventsProcessed() = 0")
	}
}
