package tiger

import (
	"time"

	"tiger/internal/clock"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

func clockOf(c *Cluster) clock.Clock { return clock.Sim{Eng: c.Eng} }

// LoadSample is one measurement window's system load factors — the
// quantities plotted in Figures 8 and 9.
type LoadSample struct {
	At      sim.Time
	Streams int

	CubCPU  float64 // mean CPU load across live cubs
	CtrlCPU float64 // controller CPU load

	DiskLoad       float64 // mean disk duty cycle across live disks
	MirrorDiskLoad float64 // duty cycle of a mirroring cub's disks (failed mode)

	CtlTrafficBps  float64 // control bytes/s from the probe cub to all others
	DataRateBps    float64 // payload bytes/s from the probe cub
	MaxViewEntries int     // largest per-cub view (scalability invariant)
}

// snapshot captures the cumulative counters a Sampler diffs.
type snapshot struct {
	at       sim.Time
	cubBusy  []time.Duration
	ctrlBusy time.Duration
	diskBusy map[int]time.Duration
	ctlBytes map[msg.NodeID]int64
	dataByte map[msg.NodeID]int64
}

// Sampler converts pairs of snapshots into LoadSamples, like the paper's
// 50-second measurement windows.
type Sampler struct {
	c *Cluster
	// ProbeCub is the cub whose outbound control traffic is reported; in
	// failed-mode runs set it to a mirroring cub, as the paper did.
	ProbeCub int
	// MirrorCub identifies a cub covering for a failed peer whose disks'
	// duty cycle is reported as MirrorDiskLoad; -1 when unfailed.
	MirrorCub int

	last snapshot
}

// NewSampler creates a sampler and takes its first snapshot.
func NewSampler(c *Cluster) *Sampler {
	s := &Sampler{c: c, ProbeCub: 0, MirrorCub: -1}
	s.last = s.take()
	return s
}

func (s *Sampler) take() snapshot {
	c := s.c
	sn := snapshot{
		at:       c.Now(),
		diskBusy: make(map[int]time.Duration),
		ctlBytes: make(map[msg.NodeID]int64),
		dataByte: make(map[msg.NodeID]int64),
	}
	for _, cub := range c.Cubs {
		sn.cubBusy = append(sn.cubBusy, cub.CPUBusy())
		for id, d := range cub.Disks() {
			sn.diskBusy[id] = d.Stats().BusyTotal
		}
		ns := c.Net.NodeStats(cub.ID())
		sn.ctlBytes[cub.ID()] = ns.CtlBytes
		sn.dataByte[cub.ID()] = ns.DataBytes
	}
	sn.ctrlBusy = c.Controller.CPUBusy()
	return sn
}

// Sample closes the current window and returns its load factors.
func (s *Sampler) Sample() LoadSample {
	cur := s.take()
	prev := s.last
	s.last = cur
	c := s.c
	wall := cur.at.Sub(prev.at)
	out := LoadSample{At: cur.at, Streams: c.Active()}
	if wall <= 0 {
		return out
	}

	var cpuSum float64
	live := 0
	for i := range c.Cubs {
		if c.Net.Failed(msg.NodeID(i)) {
			continue
		}
		cpuSum += metrics.Load(prev.cubBusy[i], cur.cubBusy[i], wall)
		live++
	}
	if live > 0 {
		out.CubCPU = cpuSum / float64(live)
	}
	out.CtrlCPU = metrics.Load(prev.ctrlBusy, cur.ctrlBusy, wall)

	var diskSum float64
	diskN := 0
	mirrorDisks := map[int]bool{}
	if s.MirrorCub >= 0 {
		for _, d := range c.Cfg.Layout.DisksOfCub(msg.NodeID(s.MirrorCub)) {
			mirrorDisks[d] = true
		}
	}
	var mirrorSum float64
	mirrorN := 0
	for id, busy := range cur.diskBusy {
		cub := c.Cfg.Layout.CubOfDisk(id)
		if c.Net.Failed(cub) {
			continue
		}
		load := metrics.Load(prev.diskBusy[id], busy, wall)
		diskSum += load
		diskN++
		if mirrorDisks[id] {
			mirrorSum += load
			mirrorN++
		}
	}
	if diskN > 0 {
		out.DiskLoad = diskSum / float64(diskN)
	}
	if mirrorN > 0 {
		out.MirrorDiskLoad = mirrorSum / float64(mirrorN)
	}

	probe := msg.NodeID(s.ProbeCub)
	out.CtlTrafficBps = float64(cur.ctlBytes[probe]-prev.ctlBytes[probe]) / wall.Seconds()
	out.DataRateBps = float64(cur.dataByte[probe]-prev.dataByte[probe]) / wall.Seconds()
	out.MaxViewEntries = c.MaxViewSize()
	return out
}
