package tiger

import (
	"testing"
	"time"
)

// smallOptions returns a cheap configuration for fast tests: 5 cubs, one
// disk each, decluster 2, 0.5 s blocks, short files.
func smallOptions() Options {
	o := DefaultOptions()
	o.Cubs = 5
	o.DisksPerCub = 1
	o.Decluster = 2
	o.NumFiles = 4
	o.FileBlocks = 600
	o.ClientDropProb = 0
	return o
}

func TestSmokeSingleStream(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity: %d streams, %d slots, blockService %v",
		c.Capacity(), c.Cfg.Sched.NumSlots, c.Cfg.Sched.BlockService)

	s, err := c.Play(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second)

	st := s.Viewer.Stats()
	t.Logf("viewer: ok=%d lost=%d pieces=%d; startup=%v",
		st.BlocksOK, st.BlocksLost, st.PiecesSeen, c.StartupLatency.Mean())
	if st.BlocksOK < 20 {
		t.Fatalf("expected ~27 blocks delivered in 30s, got %d ok / %d lost", st.BlocksOK, st.BlocksLost)
	}
	if st.BlocksLost != 0 {
		t.Fatalf("unexpected losses: %d", st.BlocksLost)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Fatalf("slot conflicts: %d", v)
	}
	if got := c.TotalCubStats(); got.Conflicts != 0 || got.IndexMisses != 0 {
		t.Fatalf("protocol anomalies: %+v", got)
	}
}

func TestSmokeManyStreams(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	target := c.Capacity() / 2
	if err := c.RampTo(target); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)

	if got := c.Active(); got != target {
		t.Fatalf("wanted %d active streams, have %d (queued+active=%d)",
			target, got, c.liveStreams())
	}
	var ok, lost int64
	for _, s := range c.streams {
		st := s.Viewer.Stats()
		ok += st.BlocksOK
		lost += st.BlocksLost
	}
	t.Logf("delivered %d blocks, lost %d, view max %d", ok, lost, c.MaxViewSize())
	if lost > 0 {
		t.Fatalf("losses at half load: %d of %d", lost, ok+lost)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Fatalf("slot conflicts: %d", v)
	}
}

func TestTraceCapturesProtocolEvents(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	ring := c.EnableTrace(256)
	s, err := c.Play(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	s.Stop()
	c.RunFor(5 * time.Second)

	evs := ring.Events()
	if len(evs) < 8 {
		t.Fatalf("only %d events traced", len(evs))
	}
	inserts, serves := 0, 0
	var slot int32 = -1
	for _, e := range evs {
		switch e.Kind {
		case 1: // trace.Insert
			inserts++
			slot = e.Slot
		case 2: // trace.Serve
			serves++
		}
	}
	if inserts != 1 || serves < 7 {
		t.Fatalf("inserts=%d serves=%d", inserts, serves)
	}
	// The slot's history must begin with the insert and stay ordered.
	h := ring.SlotHistory(slot)
	if len(h) == 0 || h[0].Kind != 1 {
		t.Fatalf("slot history does not start with the insert: %v", h)
	}
	for i := 1; i < len(h); i++ {
		if h[i].At < h[i-1].At {
			t.Fatal("trace out of order")
		}
	}
	// The oracle still works through the chained hook.
	if c.InvariantViolations() != 0 {
		t.Fatal("oracle broken by tracing")
	}
}
