package tiger

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// Small, fast shape for the interplay tests: 6 cubs x 2 disks,
// decluster 2, short files so the old generation drains by EOF in
// seconds of virtual time.
func elasticTestOptions() Options {
	o := DefaultOptions()
	o.Cubs = 6
	o.DisksPerCub = 2
	o.Decluster = 2
	o.NumFiles = 6
	o.FileBlocks = 60
	o.ClientDropProb = 0
	o.AdmitLimit = 1.0
	o.RampSpacing = 20 * time.Millisecond
	return o
}

// waitPhase drives the cluster until the restripe reports phase, up to
// max virtual time. Returns whether the phase was reached.
func waitPhase(c *Cluster, phase string, max time.Duration) bool {
	deadline := c.Now().Add(max)
	for c.RestripePhase() != phase {
		if c.Now() >= deadline {
			return false
		}
		c.RunFor(500 * time.Millisecond)
	}
	return true
}

// isolateCub cuts the cub off from every peer and the controller;
// healCub undoes it.
func isolateCub(c *Cluster, victim int) {
	a := msg.NodeID(victim)
	for i := range c.Cubs {
		if i != victim {
			c.Net.Cut(a, msg.NodeID(i))
		}
	}
	c.Net.Cut(a, msg.Controller)
}

func healCub(c *Cluster, victim int) {
	a := msg.NodeID(victim)
	for i := range c.Cubs {
		if i != victim {
			c.Net.Heal(a, msg.NodeID(i))
		}
	}
	c.Net.Heal(a, msg.Controller)
}

// assertElasticClean verifies the zero columns after a restripe run:
// no blocks lost from the harness baseline, no double services, no
// oracle violations, restripe done, capacity at the new shape.
func assertElasticClean(t *testing.T, c *Cluster, h *ChaosHarness, lost0 int64, wantCubs int) {
	t.Helper()
	if p := c.RestripePhase(); p != RestripeDone {
		t.Fatalf("restripe stuck in phase %q", p)
	}
	in := c.RestripeInfo()
	if in.Coord.Committed != in.Moves {
		t.Fatalf("committed %d of %d moves", in.Coord.Committed, in.Moves)
	}
	if got := c.Cfg.Layout.Cubs; got != wantCubs {
		t.Fatalf("layout has %d cubs, want %d", got, wantCubs)
	}
	_, lost, _ := c.ViewerTotals()
	if lost != lost0 {
		t.Fatalf("lost %d blocks during restripe", lost-lost0)
	}
	if d := h.DoubleServes(); d != 0 {
		t.Fatalf("%d double services", d)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Fatalf("%d slot conflicts", v)
	}
}

// TestElasticInterplayCrashRejoin grows the array while a brand-new cub
// — the destination most moves race toward — crashes mid-copy and
// restarts. The coordinator must re-send its unacked moves after the
// rejoin, the cutover must still be gated on every commit, and no
// stream may lose a block.
func TestElasticInterplayCrashRejoin(t *testing.T) {
	o := elasticTestOptions()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	if err := c.StartRestripe(o.Cubs + 2); err != nil {
		t.Fatal(err)
	}
	newest := o.Cubs + 1
	c.RunFor(3 * time.Second)
	if p := c.RestripePhase(); p != RestripeCopy {
		t.Fatalf("expected copy phase, got %q", p)
	}
	c.CrashCub(newest)
	c.RunFor(5 * time.Second)
	c.RestartCub(newest)

	if !waitPhase(c, RestripeDone, 6*time.Minute) {
		t.Fatalf("restripe never finished (phase %q, %+v)", c.RestripePhase(), c.RestripeInfo().Coord)
	}
	c.RunFor(10 * time.Second)
	assertElasticClean(t, c, h, lost0, o.Cubs+2)
	if got := len(c.Cubs); got != o.Cubs+2 {
		t.Fatalf("cluster has %d cubs, want %d", got, o.Cubs+2)
	}
}

// TestElasticInterplayPartitionLinger shrinks the array and partitions
// the retiring cub during its linger window — the exact attack the
// linger exists for: the drained cub's peers declare it dead, it keeps
// heartbeating into a void, and on heal the refutation path must
// converge without resurrecting any old-generation state.
func TestElasticInterplayPartitionLinger(t *testing.T) {
	o := elasticTestOptions()
	o.RestripeLinger = 40 * time.Second
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	if err := c.StartRestripe(o.Cubs - 2); err != nil {
		t.Fatal(err)
	}
	if !waitPhase(c, RestripeLinger, 6*time.Minute) {
		t.Fatalf("never reached linger (phase %q)", c.RestripePhase())
	}
	retiring := o.Cubs - 1
	if n := c.Cubs[retiring].GenEntries(c.rsOldGen); n != 0 {
		t.Fatalf("retiring cub still holds %d old-generation entries in linger", n)
	}
	isolateCub(c, retiring)
	c.RunFor(10 * time.Second)
	healCub(c, retiring)

	if !waitPhase(c, RestripeDone, 2*time.Minute) {
		t.Fatalf("restripe never finished (phase %q)", c.RestripePhase())
	}
	// Let refutation and mirror retirement settle, then demand full
	// convergence: nobody believes anybody dead.
	c.RunFor(30 * time.Second)
	assertElasticClean(t, c, h, lost0, o.Cubs-2)
	for i, cub := range c.Cubs {
		if n := cub.BelievedDead(); n != 0 {
			t.Fatalf("cub %d still believes %d peers dead", i, n)
		}
	}
}

// TestElasticInterplayQuarantine degrades a source drive mid-copy hard
// enough that the health monitor quarantines it. Move orders against
// the quarantined drive are nacked, and the coordinator must re-route
// them to another holder of a redundant copy — the restripe completes
// with zero loss anyway.
func TestElasticInterplayQuarantine(t *testing.T) {
	o := elasticTestOptions()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	if err := c.StartRestripe(o.Cubs + 2); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	sys := chaosSystem{c}
	sys.SlowDisk(1, 0, 2.0)

	// Wait for the monitor to quarantine and the coordinator to start
	// re-routing (bounded: the copy phase itself is the ceiling).
	deadline := c.Now().Add(4 * time.Minute)
	for c.Controller.RestripeStats().Rerouted == 0 && c.Now() < deadline {
		if c.RestripePhase() != RestripeCopy {
			break
		}
		c.RunFor(time.Second)
	}
	rerouted := c.Controller.RestripeStats().Rerouted
	sys.HealDisk(1, 0)

	if !waitPhase(c, RestripeDone, 6*time.Minute) {
		t.Fatalf("restripe never finished (phase %q, %+v)", c.RestripePhase(), c.RestripeInfo().Coord)
	}
	c.RunFor(20 * time.Second)
	if rerouted == 0 {
		t.Fatalf("quarantined source drive produced no re-routed moves (nacks %d)", c.TotalCubStats().MovesNacked)
	}
	assertElasticClean(t, c, h, lost0, o.Cubs+2)
}
