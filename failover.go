package tiger

import (
	"fmt"

	"tiger/internal/msg"
)

// This file is the harness surface for controller failover (DESIGN §17):
// crashing the controller, restarting a new incarnation that scavenges
// the distributed schedule, and the bookkeeping the takeover needs from
// the harness — replaying the down set the dead incarnation knew about
// and re-arming an interrupted restripe.

// CrashController kills the controller mid-flight: it stops sending and
// receiving, and everything the dead incarnation had in flight is
// dropped. Admitted streams keep playing — the schedule lives in the
// cubs — but new admissions fail (Play retries with backoff) until
// RestartController brings up the next incarnation.
func (c *Cluster) CrashController() {
	if c.ctlDown {
		return
	}
	c.Controller.Crash()
	c.Net.Crash(msg.Controller)
	c.ctlDown = true
}

// RestartController cold-starts the next controller incarnation: bump
// the epoch (fencing everything the dead incarnation still had in
// flight), then rebuild the plays map, per-generation load, and parked
// set by scavenging the cubs' distributed schedule. The harness supplies
// the two pieces of state that never lived in the schedule: the set of
// cubs currently down (a real deployment's rack controller would re-
// advise these) and the elastic plan of an interrupted restripe.
func (c *Cluster) RestartController() {
	if !c.ctlDown {
		return
	}
	c.Net.Revive(msg.Controller)
	c.Controller.OnScavenged = func() {
		// Replay the down set first: the governor must know which disks
		// are unservable before it decides whether scavenged park tickets
		// can drain. NoteCubsDown is idempotent per cub.
		var down []msg.NodeID
		for i := range c.Cubs {
			if c.Net.Failed(msg.NodeID(i)) {
				down = append(down, msg.NodeID(i))
			}
		}
		if len(down) > 0 {
			c.Controller.NoteCubsDown(down)
		}
		// Re-arm an interrupted restripe: committed moves re-ack as
		// duplicates at the cubs, so re-dispatching the whole plan
		// converges on exactly the uncopied remainder.
		if c.rsPhase == RestripeCopy && c.rsPlan != nil {
			c.Controller.OnRestripeDone = c.restripeCutover
			if err := c.Controller.ResumeRestripe(int64(c.rsNewGen), c.rsOldGen, c.rsPlan); err != nil {
				panic(fmt.Sprintf("tiger: restripe resume after takeover: %v", err))
			}
		}
		if c.flight != nil {
			c.flight.capture(fmt.Sprintf("controller-takeover epoch %d", c.Controller.Epoch()), 0, -1)
		}
	}
	c.Controller.Restart()
	c.ctlDown = false
}

// ControllerDown reports whether the controller is currently crashed.
func (c *Cluster) ControllerDown() bool { return c.ctlDown }
