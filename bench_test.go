package tiger

import (
	"testing"
	"time"
)

// One benchmark per table/figure of the paper's evaluation (see
// DESIGN.md's experiment index). Each iteration performs a scaled-down
// version of the experiment in virtual time and reports the figure's
// headline quantities as custom metrics; cmd/tigerbench runs the
// full-scale versions and prints the complete tables.

func benchOptions() Options {
	o := DefaultOptions()
	o.ClientDropProb = 0
	return o
}

func benchRamp() RampSpec {
	return RampSpec{Step: 150, Settle: 8 * time.Second}
}

// BenchmarkFigure8 regenerates Figure 8 (loads versus streams, no
// failures).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure8(benchOptions(), benchRamp())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Samples[len(res.Samples)-1]
		b.ReportMetric(float64(last.Streams), "streams")
		b.ReportMetric(last.CubCPU*100, "cubCPU%")
		b.ReportMetric(last.CtrlCPU*100, "ctrlCPU%")
		b.ReportMetric(last.DiskLoad*100, "disk%")
		b.ReportMetric(last.CtlTrafficBps/1e3, "ctlKB/s")
	}
}

// BenchmarkFigure9 regenerates Figure 9 (one cub failed for the run).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure9(benchOptions(), benchRamp())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Samples[len(res.Samples)-1]
		b.ReportMetric(float64(last.Streams), "streams")
		b.ReportMetric(last.MirrorDiskLoad*100, "mirrorDisk%")
		b.ReportMetric(last.CtlTrafficBps/1e3, "ctlKB/s")
		b.ReportMetric(last.DataRateBps/1e6, "sendMB/s")
	}
}

// BenchmarkFigure10 regenerates Figure 10 (startup latency versus load).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFigure10(benchOptions(), benchRamp())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Floor.Seconds(), "floor_s")
		b.ReportMetric(res.MeanAt95.Seconds(), "meanHi_s")
		b.ReportMetric(float64(len(res.Points)), "starts")
	}
}

// BenchmarkLossRates regenerates the in-text loss-rate table (T1).
func BenchmarkLossRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := RunLossRates(benchOptions(), 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rs[0].BlocksLost), "lost_unfailed")
		b.ReportMetric(float64(rs[1].BlocksLost), "lost_failed")
		b.ReportMetric(float64(rs[1].BlocksOK), "blocks_failed")
	}
}

// BenchmarkReconfig regenerates the power-cut reconfiguration
// measurement (T2).
func BenchmarkReconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunReconfig(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LossSpan.Seconds(), "lossSpan_s")
		b.ReportMetric(float64(res.LostBlocks), "lostBlocks")
	}
}

// BenchmarkScalability regenerates the §3.3 centralized-versus-
// distributed control traffic comparison (T3).
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunScalability(benchOptions(), []int{7, 14, 28}, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		big := pts[len(pts)-1]
		b.ReportMetric(big.PerCubCtlBps/1e3, "perCubKB/s")
		b.ReportMetric(big.CentralizedBps/1e3, "centralKB/s")
		b.ReportMetric(float64(big.MaxViewEntries), "viewEntries")
	}
}

// BenchmarkScaleCapacity runs one scaled-down warehouse-scale point —
// 100 cubs at rated load on a sharded engine — and reports the
// simulator-cost budgets the full sweep pins at 1000 cubs: wall ns and
// heap allocations per simulation event, live heap per cub, and the
// view size that certifies O(window) bookkeeping.
func BenchmarkScaleCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunScaleCapacity(benchOptions(), []int{100}, 5*time.Second, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		p := pts[0]
		if p.BlocksLost != 0 || p.ServerMisses != 0 {
			b.Fatalf("lost %d blocks, %d server misses at rated load", p.BlocksLost, p.ServerMisses)
		}
		b.ReportMetric(p.NsPerEvent, "ns/event")
		b.ReportMetric(p.AllocsPerEvent, "allocs/event")
		b.ReportMetric(float64(p.HeapBytesPerCub)/1024, "KiB/cub")
		b.ReportMetric(float64(p.MaxViewEntries), "viewEntries")
	}
}

// BenchmarkAblationForwarding regenerates ablation A1 (double versus
// single forwarding).
func BenchmarkAblationForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunAblationForwarding(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DoubleLost), "lost_double")
		b.ReportMetric(float64(res.SingleLost), "lost_single")
	}
}

// BenchmarkAblationDecluster regenerates ablation A2 (decluster factor
// trade-off).
func BenchmarkAblationDecluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunAblationDecluster(benchOptions(), []int{2, 4, 8}, 15*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Capacity), "cap_dc2")
		b.ReportMetric(float64(pts[1].Capacity), "cap_dc4")
		b.ReportMetric(float64(pts[2].Capacity), "cap_dc8")
	}
}

// BenchmarkAblationLead regenerates ablation A3 (viewer-state lead
// sweep).
func BenchmarkAblationLead(b *testing.B) {
	pairs := [][2]time.Duration{
		{time.Second, 2 * time.Second},
		{4 * time.Second, 9 * time.Second},
		{8 * time.Second, 18 * time.Second},
	}
	for i := 0; i < b.N; i++ {
		pts, err := RunAblationLead(benchOptions(), pairs, 15*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].MaxViewEntries), "view_1s2s")
		b.ReportMetric(float64(pts[2].MaxViewEntries), "view_8s18s")
	}
}

// BenchmarkAblationFragmentation regenerates ablation A4 (start-time
// quantization versus fragmentation, §3.2).
func BenchmarkAblationFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := RunAblationFragmentation(14, 100_000_000,
			[]time.Duration{0, 250 * time.Millisecond}, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Admitted), "admit_1ms")
		b.ReportMetric(float64(pts[1].Admitted), "admit_bp/4")
	}
}

// BenchmarkSteadyStateThroughput measures raw simulator throughput at
// full load: virtual seconds simulated per wall second.
func BenchmarkSteadyStateThroughput(b *testing.B) {
	o := benchOptions()
	c, err := New(o)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RampTo(c.Capacity()); err != nil {
		b.Fatal(err)
	}
	c.RunFor(15 * time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunFor(time.Second) // one virtual second at 602 streams
	}
	b.StopTimer()
	ok, lost, _ := c.ViewerTotals()
	b.ReportMetric(float64(ok)/float64(b.N), "blocks/vsec")
	if lost > ok/1000 {
		b.Fatalf("unexpected losses during benchmark: %d", lost)
	}
}
