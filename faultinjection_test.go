package tiger

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/msg"
)

// TestLossyControlPlane drops a fraction of control messages between
// cubs and verifies the protocol's redundancy (double forwarding,
// redundant start copies, idempotent dedup) keeps streams flowing. The
// real system runs control over TCP, so this is strictly harsher than
// the paper's environment.
func TestLossyControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	c.Net.DropControl = func(from, to msg.NodeID, m msg.Message) bool {
		// Drop 2% of cub-to-cub gossip; leave client/controller paths
		// and heartbeats intact so liveness is not the variable here.
		if from == msg.Controller || to == msg.Controller {
			return false
		}
		if _, isHB := m.(*msg.Heartbeat); isHB {
			return false
		}
		return rng.Float64() < 0.02
	}
	if err := c.RampTo(200); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Minute)
	ok, lost, _ := c.ViewerTotals()
	st := c.TotalCubStats()
	t.Logf("ok=%d lost=%d dup=%d late=%d conflicts=%d", ok, lost, st.StatesDup, st.StatesLate, st.Conflicts)
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts under message loss: %d", v)
	}
	// A single dropped state is healed by the redundant copy; losing
	// both copies of the same hop costs at most that hop's block.
	if lost > (ok+lost)/200 {
		t.Errorf("loss rate too high under 2%% control drop: %d of %d", lost, ok+lost)
	}
	if st.Conflicts != 0 {
		t.Errorf("state conflicts: %d", st.Conflicts)
	}
}

// TestRandomOperationsInvariants drives a random mix of plays, stops,
// cub failures and revivals, checking the protocol invariants the whole
// way. This is the repository's monkey test.
func TestRandomOperationsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("monkey test")
	}
	o := DefaultOptions()
	o.Cubs = 10
	o.DisksPerCub = 2
	o.Decluster = 2
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	failed := -1
	crashed := false
	var streams []*Stream
	for step := 0; step < 300; step++ {
		switch r := rng.Float64(); {
		case r < 0.45: // start
			if c.liveStreams() < c.Capacity()*8/10 {
				s, err := c.PlayRandom()
				if err == nil {
					streams = append(streams, s)
				}
			}
		case r < 0.65 && len(streams) > 0: // stop a random stream
			i := rng.Intn(len(streams))
			streams[i].Stop()
			streams = append(streams[:i], streams[i+1:]...)
		case r < 0.70 && failed < 0: // take a cub down: blip or crash
			failed = rng.Intn(o.Cubs)
			crashed = rng.Float64() < 0.5
			if crashed {
				c.CrashCub(failed)
			} else {
				c.FailCub(failed)
			}
		case r < 0.75 && failed >= 0: // bring it back the matching way
			if crashed {
				c.RestartCub(failed)
			} else {
				c.ReviveCub(failed)
			}
			failed = -1
		}
		c.RunFor(time.Duration(500+rng.Intn(1500)) * time.Millisecond)

		if v := c.InvariantViolations(); v != 0 {
			t.Fatalf("step %d: slot conflicts: %d", step, v)
		}
		if cs := c.TotalCubStats(); cs.Conflicts != 0 || cs.IndexMisses != 0 {
			t.Fatalf("step %d: anomalies %+v", step, cs)
		}
		// Bounded views at all times.
		for _, cub := range c.Cubs {
			if cub.ViewSize() > 2500 {
				t.Fatalf("step %d: cub view exploded to %d", step, cub.ViewSize())
			}
		}
	}
	// Drain: stop everything, revive everyone, views must empty.
	if failed >= 0 {
		if crashed {
			c.RestartCub(failed)
		} else {
			c.ReviveCub(failed)
		}
	}
	c.StopAll()
	c.RunFor(30 * time.Second)
	for i, cub := range c.Cubs {
		if v := cub.ViewSize(); v != 0 {
			t.Errorf("cub %d still holds %d entries after drain", i, v)
		}
		if q := cub.QueueLen(); q != 0 {
			t.Errorf("cub %d still queues %d starts after drain", i, q)
		}
	}
	ok, lost, _ := c.ViewerTotals()
	t.Logf("monkey test: %d ok, %d lost, %d deadman transitions",
		ok, lost, c.TotalCubStats().DeadDeclared)
}

// TestCrashRestartReintegration is the headline robustness scenario: a
// cub crashes mid-gossip under heavy load, restarts with empty memory,
// and must reintegrate — rebuild its view through the rejoin handshake,
// take its mirror load back, and fence out every pre-crash message the
// transport replays at it.
func TestCrashRestartReintegration(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(120); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second)

	// Record the victim's outbound gossip for a while. The simulated
	// network is FIFO per pair, so a crashed sender's stale frames can
	// never naturally arrive after its restart announcements — but over
	// real TCP a reconnecting peer can replay buffered pre-crash frames
	// late. Model that by re-injecting the recording after the restart.
	const victim = 5
	type recMsg struct {
		to msg.NodeID
		m  msg.Message
	}
	var recorded []recMsg
	c.Net.DropControl = func(from, to msg.NodeID, m msg.Message) bool {
		if from == msg.NodeID(victim) && to >= 0 {
			switch m.(type) {
			case *msg.ViewerState, *msg.Heartbeat:
				recorded = append(recorded, recMsg{to, m})
			}
		}
		return false
	}
	c.RunFor(2 * time.Second)
	c.Net.DropControl = nil
	if len(recorded) == 0 {
		t.Fatal("no gossip recorded before the crash")
	}

	c.CrashCub(victim)
	c.RunFor(10 * time.Second) // deadman fires; mirrors take over
	if ml := c.MirrorLoadFor(victim); ml == 0 {
		t.Fatal("no mirror load built up while the victim was down")
	}
	sentAtCrash := c.Cubs[victim].Stats().BlocksSent

	c.RestartCub(victim)
	// Give the restart announcements a second to raise the peers' epoch
	// marks, then replay the old incarnation's gossip at them.
	c.RunFor(time.Second)
	for _, r := range recorded {
		c.Cubs[r.to].Deliver(msg.NodeID(victim), r.m)
	}
	c.RunFor(15 * time.Second)

	vst := c.Cubs[victim].Stats()
	cs := c.TotalCubStats()
	t.Logf("rejoins=%d served=%d transferred=%d retired=%d staleDrops=%d replayed=%d",
		vst.Rejoins, cs.RejoinsServed, vst.ViewTransferred, cs.MirrorsRetired,
		cs.StaleEpochDrops, len(recorded))
	if vst.Rejoins != 1 {
		t.Errorf("victim recorded %d rejoins, want 1", vst.Rejoins)
	}
	if e := c.Cubs[victim].Epoch(); e != 2 {
		t.Errorf("victim epoch %d after one restart, want 2", e)
	}
	if vst.ViewTransferred == 0 {
		t.Error("no viewer states transferred by the rejoin handshake")
	}
	if cs.MirrorsRetired == 0 {
		t.Error("no mirror entries handed back after reintegration")
	}
	if cs.StaleEpochDrops == 0 {
		t.Error("replayed pre-crash gossip was not fenced")
	}
	if ml := c.MirrorLoadFor(victim); ml != 0 {
		t.Errorf("mirror load did not drain: %d entries still cover the victim", ml)
	}
	if vst.BlocksSent <= sentAtCrash {
		t.Errorf("victim never served again: %d blocks before and after", sentAtCrash)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts through crash and reintegration: %d", v)
	}
	if cs.Conflicts != 0 {
		t.Errorf("state conflicts: %d", cs.Conflicts)
	}
}

// TestStaggeredDoubleRestart crashes two adjacent cubs — the harshest
// case, since each is the other's mirror neighbour — restarts them
// staggered, and requires both to reintegrate cleanly. Losses are
// expected (adjacent double failure exceeds the decluster redundancy);
// corrupted schedules are not.
func TestStaggeredDoubleRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection run")
	}
	o := DefaultOptions()
	o.Cubs = 10
	o.DisksPerCub = 2
	o.Decluster = 2
	o.ClientDropProb = 0
	o.RestartStalled = 8 // clients re-request streams the double failure killed
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(60); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)

	c.CrashCub(3)
	c.RunFor(5 * time.Second)
	c.CrashCub(4)
	c.RunFor(10 * time.Second)

	c.RestartCub(3)
	c.RunFor(5 * time.Second)
	c.RestartCub(4)
	c.RunFor(30 * time.Second)

	for _, i := range []int{3, 4} {
		st := c.Cubs[i].Stats()
		if st.Rejoins != 1 {
			t.Errorf("cub %d recorded %d rejoins, want 1", i, st.Rejoins)
		}
		if ml := c.MirrorLoadFor(i); ml != 0 {
			t.Errorf("mirror load for cub %d did not drain: %d", i, ml)
		}
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts through double restart: %d", v)
	}
	if cs := c.TotalCubStats(); cs.Conflicts != 0 {
		t.Errorf("state conflicts: %d", cs.Conflicts)
	}
	// Service must have recovered: fresh deliveries keep arriving.
	okBefore, _, _ := c.ViewerTotals()
	c.RunFor(15 * time.Second)
	okAfter, _, _ := c.ViewerTotals()
	if okAfter-okBefore < 200 {
		t.Errorf("service did not recover: %d blocks in 15s", okAfter-okBefore)
	}
}

// TestPartitionHealing probes behaviour outside the paper's fail-stop
// model: a clean partition between two halves of the ring for a while,
// then healing. Both sides declare boundary cubs dead and generate
// mirror chains for peers that are actually alive — viewers may receive
// blocks twice (primary plus pieces), which is wasteful but harmless.
// After healing, heartbeats revive the peers and the system converges
// with no slot conflicts.
func TestPartitionHealing(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection run")
	}
	o := DefaultOptions()
	o.ClientDropProb = 0
	o.RestartStalled = 8 // real clients re-request after a dead stream
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(100); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * time.Second)

	sideA := func(n msg.NodeID) bool { return n >= 0 && int(n) < o.Cubs/2 }
	partitioned := true
	c.Net.DropControl = func(from, to msg.NodeID, m msg.Message) bool {
		if !partitioned || from == msg.Controller || to == msg.Controller {
			return false
		}
		return sideA(from) != sideA(to)
	}
	c.RunFor(20 * time.Second)
	partitioned = false
	c.RunFor(40 * time.Second)

	ok, lost, _ := c.ViewerTotals()
	cs := c.TotalCubStats()
	t.Logf("ok=%d lost=%d mirrorsMade=%d deadDeclared=%d conflicts=%d",
		ok, lost, cs.MirrorsMade, cs.DeadDeclared, cs.Conflicts)
	if cs.DeadDeclared == 0 {
		t.Error("partition never detected")
	}
	// Split brain violates the fail-stop assumption the protocol is
	// built on (§2.3): each side may proxy-insert into slots the other
	// side still owns. Conflicts are therefore possible DURING the
	// partition — what matters is that they are few (bounded by the
	// start rate across the boundary) and stop once the ring heals.
	atHeal := c.InvariantViolations()
	if atHeal > 25 {
		t.Errorf("unbounded split-brain conflicts: %d", atHeal)
	}
	// A ring-wide partition is outside the fail-stop model: streams whose
	// gossip crossed the boundary die and their clients re-request. The
	// losses must stay bounded by the partition window plus re-request
	// churn, not run away.
	if lost > ok {
		t.Errorf("runaway loss across partition: %d of %d", lost, ok+lost)
	}
	// After healing and client re-requests, service is clean again.
	c.RunFor(60 * time.Second) // allow stalled clients to restart
	base := c.Loss.Total()
	baseOK, _, _ := c.ViewerTotals()
	c.RunFor(30 * time.Second)
	newOK, _, _ := c.ViewerTotals()
	if grew := c.Loss.Total() - base; grew > 5 {
		t.Errorf("losses continued after healing: %d new", grew)
	}
	if newOK-baseOK < 2000 {
		t.Errorf("service did not resume: %d blocks in 30s", newOK-baseOK)
	}
	if c.InvariantViolations() > atHeal {
		t.Errorf("conflicts kept occurring after healing: %d -> %d", atHeal, c.InvariantViolations())
	}
}
