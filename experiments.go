package tiger

import (
	"fmt"
	"time"

	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/netsched"
	"tiger/internal/obs/attr"
)

// This file regenerates the paper's evaluation (§5): Figures 8-10, the
// in-text loss-rate and reconfiguration numbers, the §3.3 scalability
// argument, and the ablations DESIGN.md lists. Each experiment returns
// structured results; cmd/tigerbench prints them as the paper's tables.

// RampSpec controls a load-ramp experiment.
type RampSpec struct {
	Step      int           // streams added per step (paper: 30)
	Settle    time.Duration // wait before sampling each step (paper: >=50s)
	Max       int           // stop at this many streams; 0 = system capacity
	HoldAtMax time.Duration // extra steady-state time at the final load
}

// PaperRamp reproduces §5's procedure.
func PaperRamp() RampSpec {
	return RampSpec{Step: 30, Settle: 50 * time.Second}
}

// QuickRamp is a scaled-down ramp for benchmarks and tests.
func QuickRamp() RampSpec {
	return RampSpec{Step: 120, Settle: 10 * time.Second}
}

// LoadCurveResult is the outcome of a Figure 8/9-style run.
type LoadCurveResult struct {
	Capacity int
	Failed   bool
	Samples  []LoadSample

	BlocksOK     int64
	BlocksLost   int64
	MirrorBlocks int64
	ServerMisses int64
	LossRate     float64 // "1 in N"; 0 when lossless

	StartupPoints []StartupPoint
	Violations    int
	CubStats      core.CubStats
}

// RunLoadCurve ramps a system to capacity, sampling the Figure 8/9 load
// factors at each step. failCub >= 0 keeps that cub failed for the whole
// run (Figure 9).
func RunLoadCurve(o Options, failCub int, ramp RampSpec) (*LoadCurveResult, error) {
	c, err := New(o)
	if err != nil {
		return nil, err
	}
	res := &LoadCurveResult{Capacity: c.Capacity(), Failed: failCub >= 0}

	sampler := NewSampler(c)
	if failCub >= 0 {
		c.FailCub(failCub)
		// Let the deadman fire before offering load, as the paper's
		// failed-mode test had the cub down for the entire run.
		c.RunFor(c.Cfg.DeadmanTimeout + 2*time.Second)
		mirror := (failCub + 1) % o.Cubs
		sampler.ProbeCub = mirror
		sampler.MirrorCub = mirror
		sampler.Sample() // reset the window
	}

	max := ramp.Max
	if max <= 0 || max > c.Capacity() {
		max = c.Capacity()
	}
	for target := ramp.Step; ; target += ramp.Step {
		if target > max {
			target = max
		}
		if err := c.RampTo(target); err != nil {
			return nil, err
		}
		sampler.Sample() // discard the ramp-transient window
		c.RunFor(ramp.Settle)
		s := sampler.Sample()
		res.Samples = append(res.Samples, s)
		if target == max {
			break
		}
	}
	if ramp.HoldAtMax > 0 {
		c.RunFor(ramp.HoldAtMax)
		res.Samples = append(res.Samples, sampler.Sample())
	}

	res.BlocksOK, res.BlocksLost, res.MirrorBlocks = c.ViewerTotals()
	res.ServerMisses = c.TotalCubStats().ServerMisses
	if res.BlocksLost > 0 {
		res.LossRate = float64(res.BlocksOK+res.BlocksLost) / float64(res.BlocksLost)
	}
	res.StartupPoints = append(res.StartupPoints, c.StartupPoints...)
	res.Violations = c.InvariantViolations()
	res.CubStats = c.TotalCubStats()
	return res, nil
}

// RunFigure8 reproduces Figure 8: load factors versus streams, no
// failures.
func RunFigure8(o Options, ramp RampSpec) (*LoadCurveResult, error) {
	return RunLoadCurve(o, -1, ramp)
}

// RunFigure9 reproduces Figure 9: the same ramp with one cub failed for
// the entire run.
func RunFigure9(o Options, ramp RampSpec) (*LoadCurveResult, error) {
	return RunLoadCurve(o, 5, ramp)
}

// Figure10Result pools stream-start latencies against schedule load.
type Figure10Result struct {
	Points []StartupPoint
	// Bucketed means, 5%-load buckets, for the heavy line in the figure.
	BucketLoad []float64
	BucketMean []time.Duration
	MeanAt95   time.Duration
	Floor      time.Duration
	Over20s    int
}

// RunFigure10 reproduces Figure 10 by pooling the starts of a non-failed
// and a failed ramp, as the paper did (4050 starts across both tests).
func RunFigure10(o Options, ramp RampSpec) (*Figure10Result, error) {
	a, err := RunFigure8(o, ramp)
	if err != nil {
		return nil, err
	}
	o2 := o
	o2.Seed = o.Seed + 1000
	b, err := RunFigure9(o2, ramp)
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{Points: append(a.StartupPoints, b.StartupPoints...)}

	const bucketW = 0.05
	type agg struct {
		sum time.Duration
		n   int
	}
	buckets := map[int]*agg{}
	var floor metrics.Summary
	var high metrics.Summary
	for _, p := range res.Points {
		i := int(p.Load / bucketW)
		a := buckets[i]
		if a == nil {
			a = &agg{}
			buckets[i] = a
		}
		a.sum += p.Latency
		a.n++
		if p.Load < 0.5 {
			floor.AddDuration(p.Latency)
		}
		if p.Load >= 0.90 && p.Load < 0.97 {
			high.AddDuration(p.Latency)
		}
		if p.Latency > 20*time.Second {
			res.Over20s++
		}
	}
	for i := 0; i <= int(1/bucketW)+1; i++ {
		if a, ok := buckets[i]; ok {
			res.BucketLoad = append(res.BucketLoad, float64(i)*bucketW+bucketW/2)
			res.BucketMean = append(res.BucketMean, a.sum/time.Duration(a.n))
		}
	}
	res.Floor = time.Duration(floor.Mean() * float64(time.Second))
	res.MeanAt95 = time.Duration(high.Mean() * float64(time.Second))
	return res, nil
}

// LossRateResult is one steady-state loss measurement (the in-text
// numbers of §5).
type LossRateResult struct {
	Name         string
	Duration     time.Duration
	Streams      int
	BlocksOK     int64
	BlocksLost   int64
	ServerMisses int64
	LossRate     float64 // "1 in N"

	// Attribution and Flight are filled by RunLossRatesAttr: the
	// per-component slack-consumption table for the run's traced blocks,
	// and the flight-recorder dumps of any that missed.
	Attribution *attr.Table  `json:"attribution,omitempty"`
	Flight      []FlightDump `json:"flight,omitempty"`
}

// RunLossRates measures end-to-end loss at full load over the given
// steady-state duration, unfailed and with one cub failed (the paper's
// two experiments: ~1 in 180,000 unfailed; ~1 in 40,000 during the
// failed-mode hour).
func RunLossRates(o Options, hold time.Duration) ([]LossRateResult, error) {
	return RunLossRatesAttr(o, hold, false)
}

// RunLossRatesAttr is RunLossRates with optional slack attribution:
// when enableAttr is set, each mode runs with causal tracing and the
// flight recorder on, and its result carries the per-component
// slack-consumption table plus flight dumps for any missed blocks.
func RunLossRatesAttr(o Options, hold time.Duration, enableAttr bool) ([]LossRateResult, error) {
	modes := []bool{false, true}
	out := make([]LossRateResult, len(modes))
	err := forEachPoint(len(modes), func(i int) error {
		failed := modes[i]
		c, err := New(o)
		if err != nil {
			return err
		}
		if enableAttr {
			c.EnableTrace(4096)
			c.EnableCausalTrace(0, 0)
			c.EnableFlightRecorder(0)
		}
		if failed {
			c.FailCub(5)
			c.RunFor(c.Cfg.DeadmanTimeout + 2*time.Second)
		}
		if err := c.RampTo(c.Capacity()); err != nil {
			return err
		}
		c.RunFor(90 * time.Second) // let the final insertions land; reach steady state
		okBase, lostBase, _ := c.ViewerTotals()
		missBase := c.TotalCubStats().ServerMisses
		c.RunFor(hold)
		ok, lost, _ := c.ViewerTotals()
		miss := c.TotalCubStats().ServerMisses

		r := LossRateResult{
			Duration:     hold,
			Streams:      c.Active(),
			BlocksOK:     ok - okBase,
			BlocksLost:   lost - lostBase,
			ServerMisses: miss - missBase,
		}
		if failed {
			r.Name = "one cub failed, full load"
		} else {
			r.Name = "unfailed, full load"
		}
		if r.BlocksLost > 0 {
			r.LossRate = float64(r.BlocksOK+r.BlocksLost) / float64(r.BlocksLost)
		}
		if enableAttr {
			r.Attribution = attr.Build(c.CausalChains())
			if fr := c.FlightRecorder(); fr != nil {
				r.Flight = fr.Dumps()
			}
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReconfigResult measures recovery from a power-cut failure (§5's final
// measurement: "about 8 seconds between the earliest and latest lost
// block" at 50% load).
type ReconfigResult struct {
	Streams     int
	LostBlocks  int64
	LossSpan    time.Duration
	DetectedIn  time.Duration // first deadman declaration after the cut
	MirrorCatch int64         // blocks assembled from mirrors afterwards
}

// RunReconfig loads the system to half capacity, cuts power to a cub,
// and measures the window between the earliest and latest lost block.
func RunReconfig(o Options) (*ReconfigResult, error) {
	o.ClientDropProb = 0 // isolate failure-induced loss
	c, err := New(o)
	if err != nil {
		return nil, err
	}
	if err := c.RampTo(c.Capacity() / 2); err != nil {
		return nil, err
	}
	c.RunFor(30 * time.Second)
	if c.Loss.Total() != 0 {
		return nil, fmt.Errorf("reconfig: %d losses before the failure", c.Loss.Total())
	}
	cut := c.Now()
	c.FailCub(5)
	c.RunFor(90 * time.Second)

	_, lost, mirror := c.ViewerTotals()
	res := &ReconfigResult{
		Streams:     c.Active(),
		LostBlocks:  lost,
		LossSpan:    c.Loss.LossSpan(),
		MirrorCatch: mirror,
	}
	// Detection time: first DeadDeclared transition is not timestamped;
	// approximate with the deadman timeout, which dominates it.
	res.DetectedIn = c.Cfg.DeadmanTimeout
	_ = cut
	return res, nil
}

// ScalePoint is one system size in the §3.3 scalability comparison.
type ScalePoint struct {
	Cubs            int
	Streams         int
	PerCubCtlBps    float64 // measured distributed control traffic
	CentralizedBps  float64 // computed central-controller send rate
	MaxViewEntries  int
	ControllerLoad  float64
	MeanCubCPU      float64
	SchedulerEvents int64 // total inserts performed
}

// RunScalability measures per-cub control traffic at ~70% load across
// system sizes and compares it with the §3.3 estimate of what a central
// controller would have to send (one ~100-byte block instruction per
// block served).
func RunScalability(o Options, cubCounts []int, settle time.Duration) ([]ScalePoint, error) {
	out := make([]ScalePoint, len(cubCounts))
	vsSize := (&msg.ViewerState{}).Size()
	err := forEachPoint(len(cubCounts), func(i int) error {
		oo := o
		oo.Cubs = cubCounts[i]
		c, err := New(oo)
		if err != nil {
			return err
		}
		target := c.Capacity() * 7 / 10
		if err := c.RampTo(target); err != nil {
			return err
		}
		c.RunFor(settle)
		sampler := NewSampler(c)
		c.RunFor(settle)
		s := sampler.Sample()
		out[i] = ScalePoint{
			Cubs:            cubCounts[i],
			Streams:         c.Active(),
			PerCubCtlBps:    s.CtlTrafficBps,
			CentralizedBps:  float64(c.Active()) * float64(vsSize) / c.Cfg.Sched.BlockPlay.Seconds(),
			MaxViewEntries:  s.MaxViewEntries,
			ControllerLoad:  s.CtrlCPU,
			MeanCubCPU:      s.CubCPU,
			SchedulerEvents: c.TotalCubStats().Inserts,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardingAblation compares double versus single forwarding of viewer
// states after a cub failure (ablation A1; §4.1.1's design rationale).
type ForwardingAblation struct {
	DoubleLost  int64
	SingleLost  int64
	DoubleCtl   float64 // per-cub control bytes/s, steady state
	SingleCtl   float64
	Streams     int
	RunDuration time.Duration
}

// RunAblationForwarding measures both variants under an identical
// failure scenario.
func RunAblationForwarding(o Options) (*ForwardingAblation, error) {
	res := &ForwardingAblation{RunDuration: 60 * time.Second}
	for _, single := range []bool{false, true} {
		oo := o
		oo.SingleForward = single
		oo.ClientDropProb = 0
		c, err := New(oo)
		if err != nil {
			return nil, err
		}
		if err := c.RampTo(c.Capacity() / 2); err != nil {
			return nil, err
		}
		c.RunFor(20 * time.Second)
		sampler := NewSampler(c)
		c.RunFor(10 * time.Second)
		ctl := sampler.Sample().CtlTrafficBps
		c.FailCub(5)
		c.RunFor(res.RunDuration)
		_, lost, _ := c.ViewerTotals()
		res.Streams = c.Active()
		if single {
			res.SingleLost = lost
			res.SingleCtl = ctl
		} else {
			res.DoubleLost = lost
			res.DoubleCtl = ctl
		}
	}
	return res, nil
}

// DeclusterPoint is one row of the decluster-factor trade-off (§2.3).
type DeclusterPoint struct {
	Decluster        int
	Capacity         int     // planned streams
	ReservedFraction float64 // bandwidth held back for failure mode
	VulnerableSpan   int     // disks whose second failure loses data
	MirrorDiskLoad   float64 // measured covering-disk duty at full load
	BlocksLost       int64
}

// RunAblationDecluster sweeps the decluster factor, reporting the §2.3
// trade-off between failover bandwidth reservation and vulnerability,
// plus measured failed-mode disk duty.
func RunAblationDecluster(o Options, factors []int, hold time.Duration) ([]DeclusterPoint, error) {
	out := make([]DeclusterPoint, len(factors))
	err := forEachPoint(len(factors), func(i int) error {
		oo := o
		oo.Decluster = factors[i]
		oo.ClientDropProb = 0
		c, err := New(oo)
		if err != nil {
			return err
		}
		p := DeclusterPoint{
			Decluster:        factors[i],
			Capacity:         c.Capacity(),
			ReservedFraction: c.Cfg.Layout.FailoverBandwidthFraction(),
			VulnerableSpan:   c.Cfg.Layout.VulnerabilitySpan(),
		}
		c.FailCub(5)
		c.RunFor(c.Cfg.DeadmanTimeout + 2*time.Second)
		sampler := NewSampler(c)
		sampler.MirrorCub = 6
		sampler.ProbeCub = 6
		if err := c.RampTo(c.Capacity()); err != nil {
			return err
		}
		sampler.Sample() // discard the ramp window; measure steady state
		c.RunFor(hold)
		s := sampler.Sample()
		p.MirrorDiskLoad = s.MirrorDiskLoad
		_, p.BlocksLost, _ = c.ViewerTotals()
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LeadPoint is one row of the viewer-state lead sweep (ablation A3).
type LeadPoint struct {
	MinLead, MaxLead time.Duration
	CtlMsgsPerSec    float64 // per-cub control messages (batching efficiency)
	CtlBps           float64
	MaxViewEntries   int
	BlocksLost       int64
}

// RunAblationLead sweeps min/maxVStateLead, showing the batching-versus-
// state-size trade-off of §4.1.1.
func RunAblationLead(o Options, pairs [][2]time.Duration, hold time.Duration) ([]LeadPoint, error) {
	out := make([]LeadPoint, len(pairs))
	err := forEachPoint(len(pairs), func(i int) error {
		pr := pairs[i]
		oo := o
		oo.MinVStateLead = pr[0]
		oo.MaxVStateLead = pr[1]
		oo.ClientDropProb = 0
		c, err := New(oo)
		if err != nil {
			return err
		}
		if err := c.RampTo(c.Capacity() * 8 / 10); err != nil {
			return err
		}
		c.RunFor(15 * time.Second)
		before := c.Net.NodeStats(0)
		beforeAt := c.Now()
		c.RunFor(hold)
		after := c.Net.NodeStats(0)
		wall := c.Now().Sub(beforeAt).Seconds()
		_, lost, _ := c.ViewerTotals()
		out[i] = LeadPoint{
			MinLead:        pr[0],
			MaxLead:        pr[1],
			CtlMsgsPerSec:  float64(after.CtlMsgs-before.CtlMsgs) / wall,
			CtlBps:         float64(after.CtlBytes-before.CtlBytes) / wall,
			MaxViewEntries: c.MaxViewSize(),
			BlocksLost:     lost,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FragmentationPoint is one row of the network-schedule quantization
// ablation (A4; §3.2).
type FragmentationPoint struct {
	Quantum       time.Duration
	Admitted      int
	Utilization   float64
	Fragmentation float64 // free-but-unusable fraction at 2 Mbit/s
}

// RunAblationFragmentation fills a network schedule with arrivals at
// either arbitrary (1 ms grid) or quantized start times and reports how
// many streams fit (§3.2: quantizing to blockPlay/decluster keeps
// fragmentation acceptable).
func RunAblationFragmentation(cubs int, nicBps int64, quanta []time.Duration, seed int64) ([]FragmentationPoint, error) {
	out := make([]FragmentationPoint, len(quanta))
	err := forEachPoint(len(quanta), func(pi int) error {
		q := quanta[pi]
		s, err := netsched.New(cubs, time.Second, nicBps)
		if err != nil {
			return err
		}
		rng := newDetRand(seed)
		admitted := 0
		for i := 0; i < 10000; i++ {
			arrival := time.Duration(rng.Int63n(int64(s.Cycle())))
			bitrate := int64(1_000_000 + rng.Int63n(5_000_000))
			searchQ := q
			if searchQ <= 0 {
				searchQ = time.Millisecond
			} else {
				arrival = arrival / searchQ * searchQ
			}
			start, ok := s.FindStart(arrival, bitrate, searchQ)
			if !ok {
				break
			}
			if err := s.Insert(netsched.Entry{
				Instance: msg.InstanceID(i + 1),
				Start:    start,
				Bitrate:  bitrate,
				State:    netsched.Committed,
			}); err != nil {
				break
			}
			admitted++
		}
		out[pi] = FragmentationPoint{
			Quantum:       q,
			Admitted:      admitted,
			Utilization:   s.Utilization(),
			Fragmentation: s.FragmentationLoss(2_000_000, 10*time.Millisecond),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RecoveryResult measures a crash–restart–reintegration cycle: the
// covering load the ring accumulated while the cub was down, how long
// the rejoin handshake took, and how long the handed-back mirror load
// took to drain to zero.
type RecoveryResult struct {
	Streams             int
	MirrorLoadAtRestart int           // mirror entries covering the victim at restart
	DrainTime           time.Duration // restart until zero residual mirror load
	Drained             bool          // false if the cap was hit first
	ViewTransferred     int64
	MirrorsRetired      int64
	StaleEpochDrops     int64
	RejoinTime          time.Duration // handshake duration (recovery histogram mean)
	Violations          int
}

// RunRecovery loads the system to the given stream count (half capacity
// when zero), crashes a cub for crashFor, cold-restarts it, and measures
// the reintegration.
func RunRecovery(o Options, streams int, crashFor time.Duration) (*RecoveryResult, error) {
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		return nil, err
	}
	if streams <= 0 || streams > c.Capacity() {
		streams = c.Capacity() / 2
	}
	if err := c.RampTo(streams); err != nil {
		return nil, err
	}
	c.RunFor(30 * time.Second)

	const victim = 5
	c.CrashCub(victim)
	c.RunFor(crashFor)
	res := &RecoveryResult{
		Streams:             c.Active(),
		MirrorLoadAtRestart: c.MirrorLoadFor(victim),
	}

	c.RestartCub(victim)
	restartAt := c.Now()
	const step = 500 * time.Millisecond
	const drainCap = 2 * time.Minute
	for c.MirrorLoadFor(victim) > 0 && c.Now().Sub(restartAt) < drainCap {
		c.RunFor(step)
	}
	res.Drained = c.MirrorLoadFor(victim) == 0
	res.DrainTime = c.Now().Sub(restartAt)

	cs := c.TotalCubStats()
	res.ViewTransferred = cs.ViewTransferred
	res.MirrorsRetired = cs.MirrorsRetired
	res.StaleEpochDrops = cs.StaleEpochDrops
	res.RejoinTime = c.Cubs[victim].RecoveryTimes().Mean()
	res.Violations = c.InvariantViolations()
	return res, nil
}

// CapacityTable returns the planning numbers the paper quotes for its
// hardware (56 disks, 0.25 MB blocks): ~10.75 streams/disk, 602 total.
func CapacityTable(o Options) disk.Capacity {
	return disk.PlanCapacity(o.DiskParams,
		o.Cubs*o.DisksPerCub, o.BlockSize, o.BlockPlay, o.Decluster)
}

// newDetRand returns a deterministic random source for experiments that
// do not run inside a cluster.
func newDetRand(seed int64) *detRand {
	return &detRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type detRand struct{ state uint64 }

// Int63n returns a uniform value in [0, n) from a splitmix-style stream;
// enough for workload generation, no crypto claims.
func (r *detRand) Int63n(n int64) int64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	v := int64(z >> 1)
	return v % n
}

// FlashCrowdResult measures the paper's motivating scenario (§2.2): a
// premiere where every viewer requests the same file at the same
// moment. Striping guarantees no hotspot once streams run; the schedule
// enforces equitemporal spacing by delaying starts, all of which are
// funnelled through the single disk holding the file's first block.
type FlashCrowdResult struct {
	Viewers      int
	Admitted     int
	FirstStart   time.Duration // earliest start latency
	LastStart    time.Duration // latest: the spacing delay the paper describes
	AdmitRate    float64       // starts per second ~ one disk's slot-window rate
	BlocksOK     int64
	BlocksLost   int64
	MaxDiskDuty  float64 // hottest disk during playback
	MeanDiskDuty float64
}

// RunFlashCrowd starts viewers simultaneously on one title and measures
// how Tiger spaces them out and whether any component hotspots.
func RunFlashCrowd(o Options, viewers int, watch time.Duration) (*FlashCrowdResult, error) {
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		return nil, err
	}
	if viewers > c.Capacity() {
		viewers = c.Capacity()
	}
	res := &FlashCrowdResult{Viewers: viewers}
	for i := 0; i < viewers; i++ {
		if _, err := c.Play(0, 0); err != nil {
			return nil, err
		}
	}
	// Give every start time to land: the single first-block disk admits
	// roughly one viewer per block service time.
	deadline := time.Duration(float64(viewers)*c.Cfg.Sched.BlockService.Seconds()*2+60) * time.Second
	c.RunFor(deadline)
	res.Admitted = c.Active()

	var first, last time.Duration
	for i, p := range c.StartupPoints {
		if i == 0 || p.Latency < first {
			first = p.Latency
		}
		if p.Latency > last {
			last = p.Latency
		}
	}
	res.FirstStart, res.LastStart = first, last
	if span := (last - first).Seconds(); span > 0 {
		res.AdmitRate = float64(res.Admitted-1) / span
	}

	// Measure disk balance during playback: striping must spread the
	// single-title load over every disk.
	type snap struct{ busy time.Duration }
	before := map[int]snap{}
	for _, cub := range c.Cubs {
		for id, d := range cub.Disks() {
			before[id] = snap{d.Stats().BusyTotal}
		}
	}
	beforeAt := c.Now()
	c.RunFor(watch)
	wall := c.Now().Sub(beforeAt)
	var sum, max float64
	n := 0
	for _, cub := range c.Cubs {
		for id, d := range cub.Disks() {
			duty := metrics.Load(before[id].busy, d.Stats().BusyTotal, wall)
			sum += duty
			if duty > max {
				max = duty
			}
			n++
		}
	}
	res.MeanDiskDuty = sum / float64(n)
	res.MaxDiskDuty = max
	res.BlocksOK, res.BlocksLost, _ = c.ViewerTotals()
	return res, nil
}
