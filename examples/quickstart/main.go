// Quickstart: build the paper's 14-cub Tiger system in simulation, play
// one stream, and watch the schedule do its work.
package main

import (
	"fmt"
	"log"
	"time"

	"tiger"
)

func main() {
	// The default options are the paper's measured configuration:
	// 14 cubs x 4 disks, 2 Mbit/s streams, 0.25 MB blocks (1 s of
	// video), decluster factor 4 — a 602-stream system.
	c, err := tiger.New(tiger.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	plan := c.CapacityPlan()
	fmt.Printf("capacity: %d streams (%.2f per disk), block service %v\n",
		plan.Streams, plan.StreamsPerDisk, plan.BlockService)

	// A viewer asks for file 3 from the beginning. The controller routes
	// the request to the cub holding the first block; that cub inserts
	// the viewer into a free schedule slot it owns, and the viewer-state
	// gossip takes it from there.
	s, err := c.Play(3, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Advance one minute of virtual time. Blocks arrive once per block
	// play time, each from the next cub in the stripe.
	c.RunFor(time.Minute)

	st := s.Viewer.Stats()
	fmt.Printf("after 1 minute: %d blocks on time, %d lost\n", st.BlocksOK, st.BlocksLost)
	fmt.Printf("startup latency: %v (the paper's floor is ~1.8 s)\n",
		time.Duration(c.StartupLatency.Mean()*float64(time.Second)).Round(time.Millisecond))

	// Stop the stream: an idempotent deschedule chases the viewer states
	// around the ring and the schedule slot frees up.
	s.Stop()
	c.RunFor(15 * time.Second)

	for i, cub := range c.Cubs {
		if v := cub.ViewSize(); v != 0 {
			fmt.Printf("cub %d still holds %d entries!\n", i, v)
		}
	}
	total := c.TotalCubStats()
	fmt.Printf("cubs served %d blocks total; views drained cleanly\n", total.BlocksSent)
}
