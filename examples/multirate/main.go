// Multirate: the multiple-bitrate Tiger's network schedule (§3.2, §4.2).
// Entries are one block play time long and as tall as their bitrate;
// insertion is a two-phase reservation with the successor cub, with the
// first block's disk read speculatively overlapped with the round trip.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/msg"
	"tiger/internal/netsched"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

func main() {
	const cubs = 6
	eng := sim.New(7)
	clk := clock.Sim{Eng: eng}
	net := netsim.New(netsim.DefaultParams(), clk, eng.Rand())

	cfg := core.DefaultMBRConfig(cubs)
	cfg.NICBps = 20_000_000 // a modest 20 Mbit/s NIC makes rejects visible

	var nodes []*core.MBRCub
	for i := 0; i < cubs; i++ {
		d := disk.New(i, cfg.DiskParams, clk, rand.New(rand.NewSource(int64(i))))
		n, err := core.NewMBRCub(msg.NodeID(i), cfg, clk, net, d)
		if err != nil {
			log.Fatal(err)
		}
		// Stand-in for viewer-state propagation: commits reach all views.
		n.OnCommit = func(e netsched.Entry) {
			for _, other := range nodes {
				if other != n {
					other.CommitRemote(e)
				}
			}
			fmt.Printf("  committed: viewer %d at %5.2f Mbit/s, schedule offset %v\n",
				e.Viewer, float64(e.Bitrate)/1e6, e.Start)
		}
		net.Register(msg.NodeID(i), n)
		nodes = append(nodes, n)
	}

	fmt.Printf("%d-cub multiple-bitrate Tiger, %d Mbit/s NICs, %v cycle\n",
		cubs, cfg.NICBps/1e6, nodes[0].Schedule().Cycle())
	fmt.Printf("start times quantized to %v (blockPlay/decluster; §3.2)\n\n", cfg.StartQuantum)

	// A mix of audio, SD and HD streams arrive at random cubs.
	rates := []int64{384_000, 1_500_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000}
	rng := rand.New(rand.NewSource(42))
	inst := msg.InstanceID(0)
	accepted, rejected := 0, 0
	for round := 0; round < 40; round++ {
		inst++
		br := rates[rng.Intn(len(rates))]
		cub := nodes[rng.Intn(cubs)]
		if cub.StartPlay(msg.ViewerID(inst), inst, br) {
			accepted++
		} else {
			rejected++
			fmt.Printf("  rejected locally: %5.2f Mbit/s at cub %v (view shows no room)\n",
				float64(br)/1e6, cub.ID())
		}
		eng.RunFor(300 * time.Millisecond)
	}
	eng.RunFor(3 * time.Second)

	fmt.Printf("\naccepted %d, rejected %d\n", accepted, rejected)
	var sends, inserts, remoteRejects, timeouts int64
	for _, n := range nodes {
		st := n.Stats()
		sends += st.Sends
		inserts += st.Inserts
		remoteRejects += st.RemoteRejects
		timeouts += st.Timeouts
		fmt.Printf("cub %v: utilization %5.1f%%, %d entries in view\n",
			n.ID(), n.Utilization()*100, n.Schedule().Len())
	}
	fmt.Printf("protocol: %d commits, %d remote rejects, %d timeouts, %d block services so far\n",
		inserts, remoteRejects, timeouts, sends)

	// The §4.2 invariant: no cub's view ever exceeds NIC capacity.
	for _, n := range nodes {
		s := n.Schedule()
		for off := time.Duration(0); off < s.Cycle(); off += 50 * time.Millisecond {
			if s.OccupancyAt(off) > s.Capacity() {
				log.Fatalf("cub %v over capacity at %v", n.ID(), off)
			}
		}
	}
	fmt.Println("capacity invariant holds at every schedule instant")
}
