// Failover: run the paper's power-cut experiment interactively. Load the
// system to half capacity, cut power to a cub, and watch the deadman
// protocol, double-forwarded viewer states, and declustered mirrors keep
// the streams alive.
package main

import (
	"fmt"
	"log"
	"time"

	"tiger"
)

func main() {
	o := tiger.DefaultOptions()
	o.ClientDropProb = 0 // isolate server-side behaviour
	c, err := tiger.New(o)
	if err != nil {
		log.Fatal(err)
	}

	target := c.Capacity() / 2
	fmt.Printf("ramping to %d of %d streams...\n", target, c.Capacity())
	if err := c.RampTo(target); err != nil {
		log.Fatal(err)
	}
	c.RunFor(30 * time.Second)

	ok0, lost0, _ := c.ViewerTotals()
	fmt.Printf("steady state: %d active streams, %d blocks delivered, %d lost\n",
		c.Active(), ok0, lost0)

	// Power cut. The cub stops sending and receiving mid-schedule; its
	// neighbours notice via the deadman protocol and its successor
	// starts generating mirror viewer states.
	fmt.Printf("\n*** cutting power to cub 5 at t=%v ***\n\n", c.Now())
	c.FailCub(5)

	sampler := tiger.NewSampler(c)
	sampler.ProbeCub = 6 // the mirroring cub, as the paper measured
	sampler.MirrorCub = 6
	for i := 0; i < 6; i++ {
		c.RunFor(10 * time.Second)
		s := sampler.Sample()
		ok, lost, mirror := c.ViewerTotals()
		fmt.Printf("t=%-6v streams=%d mirrorDisk=%4.0f%% ctl=%5.1fKB/s ok=%d lost=%d mirrored=%d\n",
			c.Now(), c.Active(), s.MirrorDiskLoad*100, s.CtlTrafficBps/1e3, ok, lost, mirror)
	}

	_, lost, mirror := c.ViewerTotals()
	fmt.Printf("\nloss window: %v between earliest and latest lost block (paper: ~8 s)\n",
		c.Loss.LossSpan().Round(time.Millisecond))
	fmt.Printf("blocks lost to the failure: %d; blocks served from mirrors since: %d\n",
		lost, mirror)

	cs := c.TotalCubStats()
	fmt.Printf("protocol: %d mirror chains created, %d deadman declarations, %d slot conflicts\n",
		cs.MirrorsMade, cs.DeadDeclared, c.InvariantViolations())

	// Bring the cub back: it rebuilds its view from the gossip within a
	// few lead times and resumes serving primaries.
	fmt.Printf("\n*** restoring cub 5 ***\n")
	before := c.Cubs[5].Stats().BlocksSent
	c.ReviveCub(5)
	c.RunFor(30 * time.Second)
	fmt.Printf("cub 5 served %d blocks since revival\n", c.Cubs[5].Stats().BlocksSent-before)

	// The harsher variant: a machine crash. The cub loses its memory and
	// its in-flight messages, so reviving is not enough — it cold-restarts
	// with a new liveness epoch, rejoins the ring, and takes its mirror
	// load back.
	fmt.Printf("\n*** crashing cub 8 at t=%v ***\n", c.Now())
	c.CrashCub(8)
	c.RunFor(20 * time.Second)
	fmt.Printf("mirror load covering cub 8 while down: %d schedule entries\n", c.MirrorLoadFor(8))

	fmt.Printf("*** cold-restarting cub 8 ***\n")
	c.RestartCub(8)
	c.RunFor(10 * time.Second)
	cs = c.TotalCubStats()
	fmt.Printf("rejoins=%d statesTransferred=%d mirrorsRetired=%d staleEpochDrops=%d\n",
		cs.Rejoins, cs.ViewTransferred, cs.MirrorsRetired, cs.StaleEpochDrops)
	fmt.Printf("residual mirror load for cub 8: %d; reintegration took %v\n",
		c.MirrorLoadFor(8), c.Cubs[8].RecoveryTimes().Mean().Round(time.Millisecond))
}
