// VOD service: a day-in-the-life workload against a Tiger system.
// Viewers arrive in a Poisson stream, pick files with a skewed (Zipf)
// popularity — the exact scenario Tiger's everything-striped layout is
// designed for ("the system will not overload even if all of the
// viewers request the same file") — watch for a while, and leave.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"tiger"
)

func main() {
	o := tiger.DefaultOptions()
	o.ClientDropProb = 0
	o.AdmitLimit = 0.9 // the paper recommends not running above 90% load
	c, err := tiger.New(o)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(o.NumFiles-1))

	fmt.Printf("VOD service on a %d-stream Tiger; admission capped at 90%%\n", c.Capacity())
	fmt.Printf("popularity is Zipf: most viewers want the same few titles\n\n")

	arrivalsPerSec := 4.0
	meanWatch := 4 * time.Minute
	rejected := 0

	// Drive a 20-minute virtual day in one-second ticks.
	var live []*tiger.Stream
	for tick := 0; tick < 1200; tick++ {
		// Poisson arrivals.
		n := poisson(rng, arrivalsPerSec)
		for i := 0; i < n; i++ {
			file := tiger.FileID(zipf.Uint64())
			s, err := c.Play(file, 0)
			if err != nil {
				rejected++ // admission limit
				continue
			}
			live = append(live, s)
		}
		// Departures: exponential watch times.
		keep := live[:0]
		for _, s := range live {
			if s.Done() {
				continue
			}
			if rng.Float64() < 1.0/meanWatch.Seconds() {
				s.Stop()
				continue
			}
			keep = append(keep, s)
		}
		live = keep
		c.RunFor(time.Second)

		if tick%120 == 119 {
			ok, lost, _ := c.ViewerTotals()
			fmt.Printf("t=%4dm  active=%3d load=%3.0f%%  delivered=%7d lost=%d rejected=%d\n",
				(tick+1)/60, c.Active(), c.Load()*100, ok, lost, rejected)
		}
	}

	fmt.Printf("\nstartup latency: mean=%v p95=%v max=%v over %d starts\n",
		time.Duration(c.StartupLatency.Mean()*float64(time.Second)).Round(time.Millisecond),
		time.Duration(c.StartupLatency.Quantile(0.95)*float64(time.Second)).Round(time.Millisecond),
		time.Duration(c.StartupLatency.Max()*float64(time.Second)).Round(time.Millisecond),
		c.StartupLatency.Count())
	ok, lost, _ := c.ViewerTotals()
	fmt.Printf("delivered %d blocks, lost %d; %d admission rejections; %d slot conflicts\n",
		ok, lost, rejected, c.InvariantViolations())

	// Even with every viewer hammering the most popular file, no disk or
	// cub hotspots: the stripe spreads each stream over all disks.
	var lo, hi time.Duration
	for i, cub := range c.Cubs {
		for _, d := range cub.Disks() {
			busy := d.Stats().BusyTotal
			if i == 0 || busy < lo {
				lo = busy
			}
			if busy > hi {
				hi = busy
			}
		}
	}
	fmt.Printf("disk busy-time spread across all %d disks: min=%v max=%v (%.0f%% skew)\n",
		o.Cubs*o.DisksPerCub, lo.Round(time.Second), hi.Round(time.Second),
		100*float64(hi-lo)/math.Max(float64(hi), 1))
}

func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
