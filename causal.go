package tiger

import (
	"tiger/internal/msg"
	"tiger/internal/trace"
)

// Causal block tracing (DESIGN §14). EnableCausalTrace attaches one
// bounded ChainLog per cub plus one at the controller; from then on
// every admitted play is stamped traced (StartPlay.Trace = 1), the flag
// rides in every viewer state derived from it, and each cub the block
// passes through records typed hops — admit, insert, state, disk-queue,
// disk-read, hedge, send/miss, receipt — stamped with sim-time and
// remaining deadline slack. Recording is observation-only: no timers,
// no messages, no map-order dependence, so a traced run is byte-
// identical to an untraced one, and with tracing off the hot path pays
// a single nil test.

// DefaultChainBounds are the per-cub chain-log bounds EnableCausalTrace
// uses when given non-positive values: enough chains to hold every
// in-flight block of a full schedule, hops bounded well above the
// longest legitimate chain (admit + insert + state + queue + read +
// hedge + send + receipt, with mirror pieces multiplying the middle).
const (
	DefaultMaxChains = 4096
	DefaultMaxHops   = 64
)

// EnableCausalTrace attaches causal chain recording to every cub and
// the controller. maxChains and maxHops bound each node's log;
// non-positive values take the defaults. Call once, before starting
// load.
func (c *Cluster) EnableCausalTrace(maxChains, maxHops int) {
	if maxChains <= 0 {
		maxChains = DefaultMaxChains
	}
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	c.chainMaxChains, c.chainMaxHops = maxChains, maxHops
	c.ctlChain = trace.NewChainLog(maxChains, maxHops)
	c.Controller.SetChainLog(c.ctlChain)
	c.chains = make([]*trace.ChainLog, len(c.Cubs))
	for i, cub := range c.Cubs {
		c.chains[i] = trace.NewChainLog(maxChains, maxHops)
		cub.SetChainLog(c.chains[i])
	}
}

// CausalTraceEnabled reports whether chain recording is attached.
func (c *Cluster) CausalTraceEnabled() bool { return c.ctlChain != nil }

// attachChainLog gives a cub created mid-run (elastic growth) its own
// chain log, sized like the others. No-op when tracing is off.
func (c *Cluster) attachChainLog(cub interface{ SetChainLog(*trace.ChainLog) }) {
	if c.ctlChain == nil {
		return
	}
	l := trace.NewChainLog(c.chainMaxChains, c.chainMaxHops)
	c.chains = append(c.chains, l)
	cub.SetChainLog(l)
}

// CausalChain merges one block's hops from the controller's and every
// cub's logs into a single time-ordered chain. Returns nil when the
// block was never traced (or its chains have been evicted everywhere).
func (c *Cluster) CausalChain(inst msg.InstanceID, block int32) []trace.Hop {
	var hops []trace.Hop
	hops = append(hops, c.ctlChain.Chain(inst, block)...)
	for _, l := range c.chains {
		hops = append(hops, l.Chain(inst, block)...)
	}
	trace.SortHops(hops)
	return hops
}

// CausalKeys returns the union of retained chain keys across all logs,
// sorted by (instance, block).
func (c *Cluster) CausalKeys() []trace.ChainKey {
	seen := make(map[trace.ChainKey]bool)
	var out []trace.ChainKey
	add := func(ks []trace.ChainKey) {
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	add(c.ctlChain.Keys())
	for _, l := range c.chains {
		add(l.Keys())
	}
	sortChainKeys(out)
	return out
}

// CausalChains returns every retained chain, merged and time-ordered,
// keyed in (instance, block) order — the attribution engine's input.
func (c *Cluster) CausalChains() [][]trace.Hop {
	keys := c.CausalKeys()
	out := make([][]trace.Hop, 0, len(keys))
	for _, k := range keys {
		if ch := c.CausalChain(k.Instance, k.Block); len(ch) > 0 {
			out = append(out, ch)
		}
	}
	return out
}

// ChainDrops sums eviction and overflow counters across every log: how
// much causal history the bounded buffers shed.
func (c *Cluster) ChainDrops() (chainsEvicted, hopsDropped uint64) {
	chainsEvicted = c.ctlChain.ChainsEvicted()
	hopsDropped = c.ctlChain.HopsDropped()
	for _, l := range c.chains {
		chainsEvicted += l.ChainsEvicted()
		hopsDropped += l.HopsDropped()
	}
	return
}

func sortChainKeys(ks []trace.ChainKey) {
	// Insertion sort: key lists are small and mostly ordered (each log
	// returns them sorted already).
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && chainKeyLess(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func chainKeyLess(a, b trace.ChainKey) bool {
	if a.Instance != b.Instance {
		return a.Instance < b.Instance
	}
	return a.Block < b.Block
}
