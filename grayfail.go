package tiger

import (
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/obs/attr"
)

// This file implements the gray-failure experiment behind `tigerbench
// -exp grayfail`. The paper's §5 failure experiment pulls a power cord —
// a clean fail-stop the deadman detector handles. A fail-slow disk is
// the failure Tiger's detectors cannot see: the cub still heartbeats,
// the disk still completes reads, but late, and streams silently lose
// blocks. The sweep measures that loss with and without the health
// monitor (fail-slow detection, hedged mirror reads, quarantine) across
// a range of slowdown factors.

// GrayFailPoint is one row of the gray-failure sweep: one slowdown
// factor under one arm (health monitor on or off).
type GrayFailPoint struct {
	Factor  float64 // victim disk service-time multiplier
	Hedge   bool    // health monitor + hedged mirror reads enabled
	Streams int

	// Viewer delivery deltas from fault injection to the end of the hold.
	BlocksOK     int64
	BlocksLost   int64
	LossPct      float64 // lost / (ok + lost), percent
	MirrorBlocks int64

	// Monitor activity over the hold.
	HedgesIssued    int64
	HedgeLocalWins  int64
	HedgeMirrorWins int64
	ServerMisses    int64

	// Detection outcome: whether the victim was ever suspected /
	// quarantined, and how long after injection each transition came.
	Suspected           bool
	Quarantined         bool
	TimeToSuspectSec    float64
	TimeToQuarantineSec float64

	// DoubleServes must stay 0: hedging launches a second copy of a
	// block's service, and the oracle proves the two never collide on
	// the same service key.
	DoubleServes int

	// Attribution is the per-component "where the slack went" table over
	// the fault window, folded from the causal chains of every traced
	// block. Nil unless the sweep ran with attribution enabled.
	Attribution *attr.Table `json:"attribution,omitempty"`

	// Flight holds the failure flight recorder's dumps: the causal
	// chains of blocks that missed their deadline during the fault.
	// Empty unless attribution was enabled.
	Flight []FlightDump `json:"flight,omitempty"`
}

// RunGrayFailSweep measures gray-failure tolerance: for each slowdown
// factor it runs two arms — health monitor enabled and disabled — each
// on a fresh cluster. The cluster ramps to streams (full capacity when
// zero: a fail-slow drive only hurts when it has no headroom, like the
// paper's fully loaded §5 runs), settles, then disk 0 of the last cub
// turns fail-slow at the factor; the run holds for hold while polling
// the victim's health state, and records the delivery loss and monitor
// activity over that window. Client-overload drops are disabled so
// every lost block is the slow disk's fault.
func RunGrayFailSweep(o Options, streams int, factors []float64, hold time.Duration) ([]GrayFailPoint, error) {
	return RunGrayFailSweepAttr(o, streams, factors, hold, false)
}

// RunGrayFailSweepAttr is RunGrayFailSweep with optional slack
// attribution: when enableAttr is set, each arm runs with causal
// tracing and the flight recorder on, and its point carries the
// per-component attribution table plus the flight dumps of blocks that
// missed deadlines — the slow disk's queue and read rows absorb the
// slack that healthy arms leave to the send stage.
func RunGrayFailSweepAttr(o Options, streams int, factors []float64, hold time.Duration, enableAttr bool) ([]GrayFailPoint, error) {
	o.ClientDropProb = 0
	n := 2 * len(factors)
	out := make([]GrayFailPoint, n)
	err := forEachPoint(n, func(i int) error {
		opt := o
		hedge := i%2 == 0
		opt.Health.Disable = !hedge
		c, err := New(opt)
		if err != nil {
			return err
		}
		if enableAttr {
			c.EnableTrace(4096)
			c.EnableCausalTrace(0, 0)
			c.EnableFlightRecorder(0)
		}
		target := streams
		if target <= 0 || target > c.Capacity() {
			target = c.Capacity()
		}
		if err := c.RampTo(target); err != nil {
			return err
		}
		c.RunFor(20 * time.Second)

		h := NewChaosHarness(c)
		defer h.Close()

		// The victim: first disk of the last cub, so its declustered
		// mirror pieces land on cubs 0..Decluster-1 rather than wrapping.
		victim := c.Cfg.Layout.DisksOfCub(msg.NodeID(len(c.Cubs) - 1))[0]

		ok0, lost0, mir0 := c.ViewerTotals()
		cs0 := c.TotalCubStats()
		failAt := c.Now()
		c.FailDiskSlow(victim, factors[i/2])

		tts, ttq := time.Duration(-1), time.Duration(-1)
		for c.Now().Sub(failAt) < hold {
			c.RunFor(250 * time.Millisecond)
			switch c.DiskHealth(victim) {
			case core.DiskQuarantined:
				if ttq < 0 {
					ttq = c.Now().Sub(failAt)
				}
				fallthrough
			case core.DiskSuspected:
				if tts < 0 {
					tts = c.Now().Sub(failAt)
				}
			}
		}

		ok1, lost1, mir1 := c.ViewerTotals()
		cs1 := c.TotalCubStats()
		p := GrayFailPoint{
			Factor:          factors[i/2],
			Hedge:           hedge,
			Streams:         c.Active(),
			BlocksOK:        ok1 - ok0,
			BlocksLost:      lost1 - lost0,
			MirrorBlocks:    mir1 - mir0,
			HedgesIssued:    cs1.HedgesIssued - cs0.HedgesIssued,
			HedgeLocalWins:  cs1.HedgeLocalWins - cs0.HedgeLocalWins,
			HedgeMirrorWins: cs1.HedgeMirrorWins - cs0.HedgeMirrorWins,
			ServerMisses:    cs1.ServerMisses - cs0.ServerMisses,
			Suspected:       tts >= 0,
			Quarantined:     ttq >= 0,
			DoubleServes:    h.DoubleServes(),
		}
		if total := p.BlocksOK + p.BlocksLost; total > 0 {
			p.LossPct = 100 * float64(p.BlocksLost) / float64(total)
		}
		if p.Suspected {
			p.TimeToSuspectSec = tts.Seconds()
		}
		if p.Quarantined {
			p.TimeToQuarantineSec = ttq.Seconds()
		}
		if enableAttr {
			p.Attribution = attr.Build(c.CausalChains())
			if fr := c.FlightRecorder(); fr != nil {
				p.Flight = fr.Dumps()
			}
		}
		out[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
