.PHONY: check test bench elastic attr scale correlated failover

# Full verification gate: vet, build, short tests, race detector on the
# concurrent packages. CI and pre-commit both run this.
check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate the online elastic restripe sweep (all chaos arms) and
# refresh the committed BENCH_elastic.json artifact.
elastic:
	go run ./cmd/tigerbench -exp elastic -out .

# Regenerate the warehouse-scale capacity sweep (14 -> 1000 cubs, each
# size at its full rated load on a sharded engine) and refresh the
# committed BENCH_scale.json artifact. Takes ~half an hour: the 1000-cub
# point alone simulates ~43,000 concurrent streams.
scale:
	go run ./cmd/tigerbench -exp scalability -out .

# Regenerate the correlated-failure survival sweep (failure domains,
# mirror exhaustion, degradation governor) and refresh the committed
# BENCH_correlated.json artifact.
correlated:
	go run ./cmd/tigerbench -exp correlated -out .

# Regenerate the controller-failover sweep (epoch-fenced takeover that
# rebuilds controller state by scavenging the cubs) and refresh the
# committed BENCH_failover.json artifact.
failover:
	go run ./cmd/tigerbench -exp failover -out .

# Run the traced grayfail sweep with causal tracing on: prints the
# per-component "where the slack went" tables and embeds attribution +
# flight-recorder dumps in BENCH_grayfail.json.
attr:
	go run ./cmd/tigerbench -exp grayfail -attr -out .
