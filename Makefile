.PHONY: check test bench

# Full verification gate: vet, build, short tests, race detector on the
# concurrent packages. CI and pre-commit both run this.
check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...
