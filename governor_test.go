package tiger

import (
	"testing"
	"time"
)

// Governor and failure-domain tests. The reduced chaos config (8 cubs,
// 1 disk each, decluster 2) makes the exhaustion geometry easy to read:
// disk d lives on cub d, and cub c's only mirror span is cub c+1, so
// killing adjacent cubs {3,4} leaves disk 3 with no live copy while
// every other disk stays covered.

func governorTestOptions(seed int64) Options {
	o := chaosTestOptions(seed)
	o.DomainSize = 4
	o.Governor.Enable = true
	return o
}

// testMassCrashRejoin is satellite coverage for the correlated-failure
// acceptance: two adjacent cubs crash simultaneously, mirror exhaustion
// is detected, endangered streams park with zero client loss, and after
// the cubs restart — in either order — the view converges, mirror load
// drains, and every parked stream resumes exactly once.
func testMassCrashRejoin(t *testing.T, firstUp, secondUp int) {
	t.Helper()
	o := governorTestOptions(7)
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(24); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	c.CrashCub(3)
	c.CrashCub(4)
	c.RunFor(3 * time.Second)

	if got := c.Unservable(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("unservable disks during the double crash = %v, want [3]", got)
	}
	gs := c.Controller.GovernorStats()
	if gs.Parks == 0 {
		t.Fatal("no streams parked while disk 3 had no live copy")
	}
	if gs.Acks == 0 {
		t.Error("no park acks recorded")
	}

	c.RestartCub(firstUp)
	c.RunFor(5 * time.Second)
	c.RestartCub(secondUp)
	c.RunFor(60 * time.Second)

	gs = c.Controller.GovernorStats()
	if gs.Parked != 0 || gs.QueueLen != 0 {
		t.Errorf("governor did not drain: %d parked, %d queued", gs.Parked, gs.QueueLen)
	}
	if gs.Resumes != gs.Parks {
		t.Errorf("%d resumes for %d parks: each parked stream must resume exactly once",
			gs.Resumes, gs.Parks)
	}
	if got := len(c.Unservable()); got != 0 {
		t.Errorf("%d disks still unservable after both rejoins", got)
	}
	if c.Active() != 24 {
		t.Errorf("active streams = %d after drain, want 24", c.Active())
	}
	if c.ParkedStreams() != 0 {
		t.Errorf("harness still tracks %d parked streams", c.ParkedStreams())
	}
	_, lost1, _ := c.ViewerTotals()
	if lost := lost1 - lost0; lost != 0 {
		t.Errorf("%d blocks lost across the correlated crash (must be 0)", lost)
	}
	if d := h.DoubleServes(); d != 0 {
		t.Errorf("%d double services across park/resume", d)
	}
	if !h.Converged() {
		t.Error("cluster did not converge after both rejoins")
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	for _, i := range []int{3, 4} {
		if ml := c.MirrorLoadFor(i); ml != 0 {
			t.Errorf("mirror load for cub %d did not drain: %d entries", i, ml)
		}
	}
}

func TestMassCrashRejoinInOrder(t *testing.T)      { testMassCrashRejoin(t, 3, 4) }
func TestMassCrashRejoinReverseOrder(t *testing.T) { testMassCrashRejoin(t, 4, 3) }

// TestGovernorScatteredPairNoParks: two dead cubs outside each other's
// decluster span leave every disk mirror-covered, so the governor must
// not shed a single stream even though two machines are down at once.
func TestGovernorScatteredPairNoParks(t *testing.T) {
	o := governorTestOptions(9)
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(24); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	_, lost0, _ := c.ViewerTotals()

	c.CrashCub(1)
	c.CrashCub(5)
	c.RunFor(6 * time.Second)
	if got := c.Unservable(); len(got) != 0 {
		t.Fatalf("unservable disks = %v for a scattered pair, want none", got)
	}
	if gs := c.Controller.GovernorStats(); gs.Parks != 0 {
		t.Errorf("governor parked %d streams with full mirror coverage", gs.Parks)
	}
	c.RestartCub(1)
	c.RestartCub(5)
	c.RunFor(40 * time.Second)
	_, lost1, _ := c.ViewerTotals()
	if lost := lost1 - lost0; lost != 0 {
		t.Errorf("%d blocks lost (scattered pair is inside mirror coverage)", lost)
	}
	if !h.Converged() {
		t.Error("cluster did not converge")
	}
}

// TestCrashDomainKillsMembers: CrashDomain takes the whole rack down
// atomically and reports the members; RestartDomain brings them back.
func TestCrashDomainKillsMembers(t *testing.T) {
	o := governorTestOptions(3)
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	h := NewChaosHarness(c)
	defer h.Close()
	if err := c.RampTo(16); err != nil {
		t.Fatal(err)
	}
	c.RunFor(15 * time.Second)

	members, err := c.CrashDomain(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 || members[0] != 4 {
		t.Fatalf("domain 1 members = %v, want [4 5 6 7]", members)
	}
	if _, err := c.CrashDomain(99); err == nil {
		t.Error("CrashDomain(99) did not report a missing domain")
	}
	c.RunFor(3 * time.Second)
	// Cubs 4..6 are dead with a dead piece-holder inside their decluster
	// span; cub 7's mirror pieces live on cubs 0 and 1, which are alive.
	if got := c.Unservable(); len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Errorf("unservable disks = %v during rack loss, want [4 5 6]", got)
	}
	if _, err := c.RestartDomain(1); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)
	gs := c.Controller.GovernorStats()
	if gs.Parked != 0 || gs.QueueLen != 0 {
		t.Errorf("governor did not drain after rack rejoin: %d parked, %d queued", gs.Parked, gs.QueueLen)
	}
	if gs.Resumes != gs.Parks {
		t.Errorf("%d resumes for %d parks", gs.Resumes, gs.Parks)
	}
	if !h.Converged() {
		t.Error("cluster did not converge after the rack rejoin")
	}
}

// TestChaosSmokeSharded is the sharded arm of the chaos smoke test: the
// same partition scenario with the event loop split across two shards.
// Step application and invariant sweeps happen between RunFor slices, so
// fault injection must behave identically under sim.Sharded.
func TestChaosSmokeSharded(t *testing.T) {
	o := chaosTestOptions(1)
	o.Shards = 2
	c := rampedCluster(t, o, 12)
	if c.Shards() < 2 {
		t.Fatalf("cluster did not shard: %d", c.Shards())
	}
	sc := PartitionScenario(5, 2, len(c.Cubs), 5*time.Second, 15*time.Second, 42)
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations: %v", err)
	}
	if !res.Converged {
		t.Error("sharded smoke partition did not converge")
	}
	if !res.Report.QuietAtEnd || len(res.Report.Outstanding) != 0 {
		t.Errorf("faults outstanding at end: %v", res.Report.Outstanding)
	}
}
