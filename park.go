package tiger

import (
	"tiger/internal/core"
	"tiger/internal/msg"
)

// Harness side of the degradation governor (DESIGN §16). The governor
// itself runs in the controller (internal/core/governor.go); these two
// callbacks are the client model around it. OnParked stands in for the
// "your stream is paused" notification a real client would receive: it
// tears the viewer down before any unservable deadline can pass and
// reports the exact position the play had verified up to. OnReadmit is
// the re-request: an ordinary admission at that position once capacity
// is back.

// onParked implements core.Controller.OnParked. It retires the stream
// through the same bookkeeping a stop uses — fold the viewer's tallies,
// release the slot oracle, detach the client machine — but sends
// nothing to the controller (the governor already owns the play record)
// and fires no EOF. The returned resume point is the first block whose
// deadline the viewer had not yet checked, so the re-admitted play
// replays nothing and skips nothing.
func (c *Cluster) onParked(v msg.ViewerID, inst msg.InstanceID) (msg.FileID, int32, bool) {
	s, ok := c.streams[inst]
	if !ok {
		return 0, 0, false
	}
	file := s.File
	resume := s.Viewer.ResumePoint()
	if s.OnEOF != nil {
		if c.parkedEOF == nil {
			c.parkedEOF = make(map[msg.ViewerID]func(*Stream))
		}
		c.parkedEOF[v] = s.OnEOF
	}
	s.finish()
	return file, resume, true
}

// onReadmit implements core.Controller.OnReadmit: re-admit one parked
// stream at its ticket position. A ticket whose resume point is at or
// past end of file resolved itself during the outage — report success
// with no new instance so the governor retires it. An admission refusal
// (schedule still shuffling after the rejoin) returns false; the
// governor retries the whole queue later.
func (c *Cluster) onReadmit(t core.ParkTicket) (msg.InstanceID, bool) {
	f, ok := c.Cfg.Files[t.File]
	if !ok {
		return 0, true // file no longer exists; nothing to resume
	}
	if int(t.ResumeBlock) >= f.Blocks {
		onEOF := c.parkedEOF[t.Viewer]
		delete(c.parkedEOF, t.Viewer)
		if onEOF != nil {
			// The play was effectively complete; let the workload loop
			// exactly as an EOF would have.
			onEOF(nil)
		}
		return 0, true
	}
	s, err := c.Play(t.File, t.ResumeBlock)
	if err != nil {
		return 0, false
	}
	s.OnEOF = c.parkedEOF[t.Viewer]
	delete(c.parkedEOF, t.Viewer)
	return s.Instance, true
}

// ParkedStreams reports the governor's current parked-stream count.
func (c *Cluster) ParkedStreams() int { return c.Controller.GovernorStats().Parked }
