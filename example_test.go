package tiger_test

import (
	"fmt"
	"time"

	"tiger"
)

// Example builds the paper's reference system, plays one stream, and
// verifies delivery. The simulator is deterministic, so this example's
// output is exact.
func Example() {
	o := tiger.DefaultOptions()
	o.ClientDropProb = 0
	c, err := tiger.New(o)
	if err != nil {
		panic(err)
	}
	fmt.Printf("capacity: %d streams\n", c.Capacity())

	s, err := c.Play(0, 0)
	if err != nil {
		panic(err)
	}
	c.RunFor(30 * time.Second)
	st := s.Viewer.Stats()
	fmt.Printf("delivered %d blocks, lost %d\n", st.BlocksOK, st.BlocksLost)
	// Output:
	// capacity: 602 streams
	// delivered 28 blocks, lost 0
}

// ExampleCluster_FailCub shows mirror takeover: a cub dies and the
// stream keeps flowing from declustered secondaries.
func ExampleCluster_FailCub() {
	o := tiger.DefaultOptions()
	o.ClientDropProb = 0
	c, err := tiger.New(o)
	if err != nil {
		panic(err)
	}
	s, err := c.Play(0, 0)
	if err != nil {
		panic(err)
	}
	c.RunFor(10 * time.Second)
	c.FailCub(5)
	c.RunFor(60 * time.Second)

	st := s.Viewer.Stats()
	fmt.Printf("mirror-assembled blocks: %v\n", st.MirrorBlocks > 0)
	fmt.Printf("stream still alive: %v\n", st.BlocksOK > 60)
	// Output:
	// mirror-assembled blocks: true
	// stream still alive: true
}

// ExampleRunFlashCrowd measures the §2.2 scenario: every viewer asks
// for the same title, and Tiger spaces the starts to keep the schedule
// conflict-free.
func ExampleRunFlashCrowd() {
	o := tiger.DefaultOptions()
	o.ClientDropProb = 0
	res, err := tiger.RunFlashCrowd(o, 100, time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Printf("admitted: %d of %d\n", res.Admitted, res.Viewers)
	fmt.Printf("spacing enforced: %v\n", res.LastStart > 5*time.Second)
	fmt.Printf("losses: %d\n", res.BlocksLost)
	// Output:
	// admitted: 100 of 100
	// spacing enforced: true
	// losses: 0
}
