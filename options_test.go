package tiger

import (
	"testing"
	"time"
)

func TestNewRejectsBadOptions(t *testing.T) {
	cases := map[string]func(*Options){
		"no cubs":        func(o *Options) { o.Cubs = 0 },
		"no disks":       func(o *Options) { o.DisksPerCub = 0 },
		"no size source": func(o *Options) { o.BlockSize = 0; o.StreamBitrate = 0 },
		"decluster":      func(o *Options) { o.Cubs = 2; o.DisksPerCub = 1; o.Decluster = 2 },
		"lead inversion": func(o *Options) { o.MinVStateLead = 10 * time.Second; o.MaxVStateLead = 5 * time.Second },
	}
	for name, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if _, err := New(o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBlockSizeDerivation(t *testing.T) {
	o := DefaultOptions()
	o.BlockSize = 0
	o.StreamBitrate = 4_000_000
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 Mbit/s for one second = 500 KB blocks.
	if c.Cfg.BlockSize != 500_000 {
		t.Fatalf("derived block size %d", c.Cfg.BlockSize)
	}
}

func TestBitrateDerivation(t *testing.T) {
	o := DefaultOptions()
	o.StreamBitrate = 0
	o.BlockSize = 125_000
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Opt.StreamBitrate != 1_000_000 {
		t.Fatalf("derived bitrate %d", c.Opt.StreamBitrate)
	}
}

func TestUnknownFileRejected(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Play(99, 0); err == nil {
		t.Fatal("unknown file accepted")
	}
}

func TestSamplerWindows(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(c)
	if err := c.RampTo(10); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	first := s.Sample()
	if first.Streams != 10 {
		t.Fatalf("streams %d", first.Streams)
	}
	if first.CubCPU <= 0 || first.DiskLoad <= 0 || first.CtlTrafficBps <= 0 {
		t.Fatalf("empty loads: %+v", first)
	}
	// A zero-length window returns zeros rather than dividing by zero.
	empty := s.Sample()
	if empty.CubCPU != 0 || empty.CtlTrafficBps != 0 {
		t.Fatalf("zero window produced loads: %+v", empty)
	}
	// Loads reflect only the new window, not cumulative history.
	c.StopAll()
	c.RunFor(30 * time.Second)
	s.Sample() // reset
	c.RunFor(10 * time.Second)
	idle := s.Sample()
	if idle.CubCPU > 0.01 || idle.DataRateBps > 1 {
		t.Fatalf("idle window shows load: %+v", idle)
	}
}

func TestViewerMachineGrouping(t *testing.T) {
	o := smallOptions()
	o.ViewersPerMachine = 3
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := c.PlayRandom(); err != nil {
			t.Fatal(err)
		}
	}
	// 7 viewers at 3 per machine -> 3 machines.
	if len(c.machines) != 3 {
		t.Fatalf("machines %d, want 3", len(c.machines))
	}
}

func TestNICHeadroomAtFullLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	// §5: "The FORE ATM network cards and system PCI busses are
	// sufficiently capable that the disks are the limiting factor."
	// Even the mirroring cub at full failed load must not overload its
	// modelled NIC.
	o := DefaultOptions()
	o.ClientDropProb = 0
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	c.FailCub(5)
	c.RunFor(5 * time.Second)
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * time.Second)
	for i := 0; i < o.Cubs; i++ {
		st := c.Net.NodeStats(NodeID(i))
		if st.OverloadNs != 0 {
			t.Errorf("cub %d NIC overloaded for %v", i, time.Duration(st.OverloadNs))
		}
		if st.PeakRate > 16.5e6 {
			t.Errorf("cub %d peak send rate %.1f MB/s exceeds the OC-3 model", i, st.PeakRate/1e6)
		}
	}
}
