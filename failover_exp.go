package tiger

import (
	"fmt"
	"time"

	"tiger/internal/msg"
)

// Controller-failover experiment (`tigerbench -exp failover`). The
// controller is the last centralized piece of Tiger; DESIGN §17 makes
// its death survivable by fencing the dead incarnation with an epoch
// and rebuilding the new incarnation's state from a scavenge of the
// cubs — who, holding the distributed schedule, never stopped serving.
// Each arm loads a fresh cluster, crashes the controller in a chosen
// regime (idle serving, mid-restripe, streams parked by the governor),
// holds the outage, restarts, and gates:
//
//   - streams active at crash time lose zero blocks and are never
//     double-served: deliveries ride the distributed schedule and the
//     takeover fold rebuilds records without re-admitting;
//   - takeover time is bounded by one scavenge round trip when every
//     cub answers, plus the deadman timeout when one cannot;
//   - the mid-restripe arm re-arms the interrupted copy and completes
//     it; the parked arm rebuilds the parked set from cub tickets and
//     resumes each stream exactly once after the cubs rejoin.

// FailoverPoint is one arm's outcome.
type FailoverPoint struct {
	Arm       string
	Cubs      int
	Streams   int     // active streams at controller-crash time
	LoadFrac  float64 // fraction of rated capacity ramped
	OutageSec float64

	// Takeover mechanics.
	TakeoverSec     float64 // restart to state-rebuilt (scavenge closed)
	TakeoverBound   float64 // the gate: RTT margin, + deadman if a cub is dead
	Epoch           int64   // controller epoch after the takeover (must be 2)
	ScavengesServed int64   // cub inventory replies (one per live cub)
	ScavengedPlays  int64   // play records rebuilt from inventories
	ScavengedParks  int64   // park tickets recovered from cub retention
	CtlDeclaredDead int64   // cubs whose controller deadman fired mid-outage
	CtlStaleDrops   int64   // stale-epoch orders fenced after the takeover

	// Client admission retries around the outage (stream.go backoff).
	RetryStarts   int   // retrying admissions injected during the outage
	RetryAdmitted int   // of those, admitted after the takeover
	StartRetries  int64 // backoff attempts across the arm
	StartAbandons int64 // clients that gave up (must be 0)

	// Parked-arm bookkeeping (zero elsewhere).
	ParkedAtCrash int   // governor-parked streams when the controller died
	Parks         int64 // park decisions across the incident
	Resumes       int64 // must equal Parks: exactly-once resume
	ParkedEnd     int   // must be 0
	QueueEnd      int   // must be 0

	// Mid-restripe-arm bookkeeping (zero elsewhere).
	Moves      int    // move plan size
	Committed  int    // must equal Moves at the end
	FinalPhase string `json:",omitempty"`

	BlocksOK     int64
	BlocksLost   int64 // must be 0
	MirrorBlocks int64
	DoubleServes int // must be 0
	Violations   int // must be 0
	ActiveAfter  int
	Converged    bool
	DrainSec     float64 // parked arm: restart-of-cubs to drained
}

type failArm struct {
	name    string
	mode    string  // "idle" | "restripe" | "parked"
	load    float64 // fraction of rated capacity
	outage  time.Duration
	retries int // retrying admissions injected during the outage
}

func failoverArms() []failArm {
	return []failArm{
		{name: "idle-light-3s", mode: "idle", load: 0.5, outage: 3 * time.Second, retries: 4},
		{name: "idle-full-3s", mode: "idle", load: 1.0, outage: 3 * time.Second},
		{name: "idle-full-12s", mode: "idle", load: 1.0, outage: 12 * time.Second},
		{name: "mid-restripe", mode: "restripe", load: 1.0, outage: 5 * time.Second},
		{name: "parked", mode: "parked", load: 1.0, outage: 5 * time.Second},
	}
}

// FailoverArms lists the sweep's arm names in run order, for the bench
// binary's arm-selection flag.
var FailoverArms = func() []string {
	var names []string
	for _, a := range failoverArms() {
		names = append(names, a.name)
	}
	return names
}()

// RunFailover runs the controller-failover sweep — the named arms, or
// all of them when names is empty — and enforces its gates; any gate
// failure is returned as an error naming the arm.
func RunFailover(o Options, names []string) ([]FailoverPoint, error) {
	arms := failoverArms()
	if len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			want[n] = true
		}
		kept := arms[:0]
		for _, a := range arms {
			if want[a.name] {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("no failover arms match %v (have %v)", names, FailoverArms)
		}
		arms = kept
	}
	out := make([]FailoverPoint, len(arms))
	err := forEachPoint(len(arms), func(i int) error {
		p, err := runFailoverArm(o, arms[i])
		out[i] = p
		if err != nil {
			return fmt.Errorf("arm %s: %w", arms[i].name, err)
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	return out, nil
}

func runFailoverArm(o Options, a failArm) (FailoverPoint, error) {
	oo := o
	// Zero the stochastic loss sources that are not the failure's fault
	// (same normalization as the correlated sweep): client drops, ramp
	// stagger, and the drives' slow-outlier blip tail.
	oo.ClientDropProb = 0
	oo.RampSpacing = 0
	oo.DiskParams.BlipProb = 0
	switch a.mode {
	case "restripe":
		// Short files so the old generation drains on experiment
		// timescales, exactly as the elastic sweep runs — including its
		// ramp stagger: a zero-spacing flash ramp phase-locks every
		// stream's EOF, and the synchronized replay storm against the
		// drain-phase schedule is a different experiment.
		oo.NumFiles = 12
		oo.FileBlocks = 100
		oo.AdmitLimit = 1.0
		oo.RampSpacing = 50 * time.Millisecond
	case "parked":
		oo.DomainSize = 4
		oo.Governor.Enable = true
	}

	c, err := New(oo)
	if err != nil {
		return FailoverPoint{}, err
	}
	p := FailoverPoint{
		Arm:       a.name,
		Cubs:      oo.Cubs,
		LoadFrac:  a.load,
		OutageSec: a.outage.Seconds(),
	}
	h := NewChaosHarness(c)
	defer h.Close()

	target := int(a.load * float64(c.Capacity()))
	if err := c.RampTo(target); err != nil {
		return p, err
	}
	c.RunFor(60 * time.Second) // let the flash-ramp insertions land; reach steady state

	ok0, lost0, mir0 := c.ViewerTotals()
	viol0 := c.InvariantViolations()
	cs0 := c.TotalCubStats()
	retries0, abandons0 := c.StartRetryStats()
	active0 := c.Active() // pre-incident population, before any preamble parks streams

	// Arm-specific preamble: get the cluster into the regime the
	// controller must die in.
	deadCubs := 0
	switch a.mode {
	case "restripe":
		if err := c.StartRestripe(oo.Cubs + elasticGrowBy); err != nil {
			return p, err
		}
		c.RunFor(5 * time.Second)
		if ph := c.RestripePhase(); ph != RestripeCopy {
			return p, fmt.Errorf("restripe already past copy (%q); crash window missed", ph)
		}
	case "parked":
		// An adjacent pair breaches the victim's decluster span: some
		// disks lose every copy and the governor parks the endangered
		// streams. The controller dies holding that parked set.
		c.CrashCub(5)
		c.CrashCub(6)
		deadCubs = 2
		c.RunFor(3 * time.Second)
		p.ParkedAtCrash = c.ParkedStreams()
		if p.ParkedAtCrash == 0 {
			return p, fmt.Errorf("no streams parked before the controller crash; the arm is vacuous")
		}
	}

	p.Streams = c.Active()
	c.CrashController()

	// Inject retrying admissions mid-outage on arms with headroom: the
	// client backoff must carry them across the takeover.
	admitted := 0
	for i := 0; i < a.retries; i++ {
		if err := c.PlayRetrying(msg.FileID(i%oo.NumFiles), 0, func(*Stream) { admitted++ }); err != nil {
			return p, fmt.Errorf("retrying start returned a hard error: %w", err)
		}
	}
	p.RetryStarts = a.retries

	c.RunFor(a.outage)
	c.RestartController()
	c.RunFor(3 * time.Second) // one scavenge round trip, or the deadman closeout

	if c.Controller.Scavenging() {
		return p, fmt.Errorf("scavenge still open %v after the restart", 3*time.Second)
	}
	st := c.Controller.Stats()
	if st.Takeovers != 1 {
		return p, fmt.Errorf("takeovers = %d, want 1", st.Takeovers)
	}
	p.TakeoverSec = c.Controller.TakeoverTimes().Max().Seconds()
	bound := 2 * time.Second // one scavenge round trip, with margin
	if deadCubs > 0 {
		bound += c.Cfg.DeadmanTimeout // a dead cub never answers; the fold closes out
	}
	p.TakeoverBound = bound.Seconds()
	p.Epoch = int64(c.Controller.Epoch())
	p.ScavengedPlays = st.ScavengedPlays
	p.ScavengedParks = st.ScavengedParks

	// Arm-specific recovery: drive the regime back to a clean steady
	// state before reading the end-to-end deltas.
	switch a.mode {
	case "idle":
		// Let the injected admissions finish their backoff schedule.
		for i := 0; i < 30 && admitted < a.retries; i++ {
			c.RunFor(time.Second)
		}
		c.RunFor(10 * time.Second)
	case "restripe":
		if !c.Controller.RestripeStats().Active {
			return p, fmt.Errorf("takeover did not re-arm the interrupted restripe")
		}
		for lim := 0; c.RestripePhase() != RestripeDone && lim < 600; lim++ {
			c.RunFor(time.Second)
		}
		p.FinalPhase = c.RestripePhase()
		in := c.RestripeInfo()
		p.Moves, p.Committed = in.Moves, in.Coord.Committed
		if p.FinalPhase != RestripeDone {
			return p, fmt.Errorf("restripe never completed after the takeover (phase %q)", p.FinalPhase)
		}
		if p.Committed != p.Moves {
			return p, fmt.Errorf("%d of %d moves committed after the takeover", p.Committed, p.Moves)
		}
	case "parked":
		if int(st.ScavengedParks) != p.ParkedAtCrash {
			return p, fmt.Errorf("scavenged %d park tickets, want %d", st.ScavengedParks, p.ParkedAtCrash)
		}
		if got := c.ParkedStreams(); got < p.ParkedAtCrash {
			// At least the scavenged set: at full load the governor keeps
			// parking organically as the endangered window slides, so more
			// is fine — fewer means tickets were dropped in the takeover.
			return p, fmt.Errorf("rebuilt parked set has %d streams, want at least %d", got, p.ParkedAtCrash)
		}
		if c.Controller.GovernorStats().Unservable == 0 {
			return p, fmt.Errorf("takeover lost the unservable set; tickets would drain into dead disks")
		}
		c.RestartCub(5)
		c.RunFor(5 * time.Second)
		c.RestartCub(6)
		rejoinAt := c.Now()
		// Drain: parked streams resume, death beliefs clear, mirror load
		// retires. Quiet must hold for a sustained run of samples, as in
		// the correlated sweep.
		const step = 500 * time.Millisecond
		const quietNeed = 6
		const drainCap = 3 * time.Minute
		quiet := 0
		for c.Now().Sub(rejoinAt) < drainCap {
			gs := c.Controller.GovernorStats()
			// Quiet means the whole pre-incident population is active
			// again, not just that the ticket queue is empty: re-admitted
			// streams trickle through slot insertion for a while after
			// their resume at full load.
			if gs.Parked == 0 && gs.QueueLen == 0 && gs.Unservable == 0 &&
				c.Active() >= active0 && h.Converged() {
				quiet++
				if quiet >= quietNeed {
					break
				}
			} else {
				quiet = 0
			}
			c.RunFor(step)
		}
		p.DrainSec = c.Now().Sub(rejoinAt).Seconds()
		if quiet >= quietNeed {
			p.DrainSec -= float64(quiet-1) * step.Seconds()
		}
		c.RunFor(15 * time.Second)
		gs := c.Controller.GovernorStats()
		p.Parks, p.Resumes = gs.Parks, gs.Resumes
		p.ParkedEnd, p.QueueEnd = gs.Parked, gs.QueueLen
		if p.ParkedEnd != 0 || p.QueueEnd != 0 {
			return p, fmt.Errorf("%d parked / %d queued streams left after the rejoin", p.ParkedEnd, p.QueueEnd)
		}
		if p.Resumes != p.Parks {
			return p, fmt.Errorf("%d resumes for %d parks (each scavenged ticket must resume exactly once)", p.Resumes, p.Parks)
		}
		for i, cub := range c.Cubs {
			if n := cub.ParkedTickets(); n != 0 {
				return p, fmt.Errorf("cub %d still retains %d park tickets after the resumes", i, n)
			}
		}
	}

	cs1 := c.TotalCubStats()
	p.ScavengesServed = cs1.ScavengesServed - cs0.ScavengesServed
	p.CtlDeclaredDead = cs1.CtlDeclaredDead - cs0.CtlDeclaredDead
	p.CtlStaleDrops = cs1.CtlStaleDrops - cs0.CtlStaleDrops
	retries1, abandons1 := c.StartRetryStats()
	p.StartRetries = retries1 - retries0
	p.StartAbandons = abandons1 - abandons0
	p.RetryAdmitted = admitted
	ok1, lost1, mir1 := c.ViewerTotals()
	p.BlocksOK = ok1 - ok0
	p.BlocksLost = lost1 - lost0
	p.MirrorBlocks = mir1 - mir0
	p.DoubleServes = h.DoubleServes()
	p.Violations = c.InvariantViolations() - viol0
	p.ActiveAfter = c.Active()
	p.Converged = h.Converged()

	// Gates common to every arm. The cubs ARE the schedule: admitted
	// streams must play through the outage untouched, so even the parked
	// arm — where two cubs died and the decluster span is breached — may
	// lose nothing (the governor parks endangered streams before any
	// deadline passes, and parked streams resume at their watermark).
	if p.BlocksLost != 0 {
		return p, fmt.Errorf("%d blocks lost across the controller outage (must be 0)", p.BlocksLost)
	}
	if p.DoubleServes != 0 {
		return p, fmt.Errorf("%d double services", p.DoubleServes)
	}
	if p.Violations != 0 {
		return p, fmt.Errorf("%d invariant violations", p.Violations)
	}
	if p.Epoch != 2 {
		return p, fmt.Errorf("controller epoch = %d after one takeover, want 2", p.Epoch)
	}
	if p.TakeoverSec > p.TakeoverBound {
		return p, fmt.Errorf("takeover took %.2fs, bound %.2fs (one scavenge RTT + deadman)", p.TakeoverSec, p.TakeoverBound)
	}
	if a.mode != "restripe" { // a restripe changes the cub population mid-arm
		if want := int64(len(c.Cubs) - deadCubs); p.ScavengesServed != want {
			return p, fmt.Errorf("scavenges served = %d, want %d (one per live cub)", p.ScavengesServed, want)
		}
	} else if p.ScavengesServed < int64(oo.Cubs) {
		return p, fmt.Errorf("scavenges served = %d, want at least %d", p.ScavengesServed, oo.Cubs)
	}
	if p.StartAbandons != 0 {
		return p, fmt.Errorf("%d admissions abandoned across a short outage (must be 0)", p.StartAbandons)
	}
	if p.RetryAdmitted != p.RetryStarts {
		return p, fmt.Errorf("%d of %d retrying admissions admitted after the takeover", p.RetryAdmitted, p.RetryStarts)
	}
	if a.retries > 0 && p.StartRetries == 0 {
		return p, fmt.Errorf("retrying admissions admitted without any backoff attempt during the outage")
	}
	if a.outage > c.Cfg.DeadmanTimeout+2*c.Cfg.HeartbeatInterval && p.CtlDeclaredDead == 0 {
		return p, fmt.Errorf("no cub declared the controller dead across a %v outage", a.outage)
	}
	// Every crash-time stream survived and none was double-admitted: for
	// the fixed-population arms the active count must come back exactly
	// (long files: no EOF churn inside the measurement window).
	if a.mode != "restripe" {
		want := p.Streams + admitted
		if a.mode == "parked" {
			// The crash-time active count excludes the parked streams; after
			// the rejoin every one of them has resumed, so the whole
			// pre-incident population must be back.
			want = active0 + admitted
		}
		if p.ActiveAfter != want {
			return p, fmt.Errorf("active = %d after the takeover, want %d", p.ActiveAfter, want)
		}
	}
	if !p.Converged {
		return p, fmt.Errorf("cluster did not converge after the incident")
	}
	return p, nil
}
