#!/bin/sh
# check.sh — the repository's full verification gate:
#   vet, build everything, the fast test tier, and the race detector on
#   the packages with real concurrency (the TCP runtime and the protocol
#   core under its executors).
set -eux
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -short ./...
go test -race ./internal/rt ./internal/core
