#!/bin/sh
# check.sh — the repository's full verification gate:
#   formatting, vet, build everything, the fast test tier, the race
#   detector on the packages with real concurrency (the TCP runtime, the
#   protocol core under its executors, and the event engine that parallel
#   sweeps instantiate per worker), a single-shot benchmark smoke pass,
#   and a tigerd smoke test of the debug/metrics endpoints.
set -eux
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -short ./...
go test -race ./internal/rt ./internal/core ./internal/obs ./internal/sim ./internal/netsim ./internal/chaos ./internal/disk

# Chaos gate: the short tier above already runs TestChaosSmoke (a full
# partition-heal-refute cycle); here the full chaos scenarios and the
# random-operations monkey test run under the race detector.
go test -race -run 'TestChaos|TestRandomOperationsInvariants' .

# Gray-failure gate: the fail-slow acceptance sweep, the quarantine
# interaction tests (rejoin, split-brain), and the disk fault/hedging
# unit tier, all under the race detector. The short tier above already
# ran TestGrayFailChaosSmoke.
go test -race -run 'TestGrayFail|TestQuarantine' .
go test -race -run 'TestFailSlow|TestStuckDisk|TestProbes|TestCancel' ./internal/core ./internal/disk

# Causal-tracing gate: tracing must be observation-only (a run with the
# ring, chains, and flight recorder enabled stays byte-identical to the
# untraced run, at any -parallel width) and free when off (zero
# allocations on the hot path, pinned by AllocsPerRun budgets).
go test -race -run 'TestCausalChainLifecycle|TestCausalTraceObservationOnly|TestAttrSweepParallelEquivalence|TestFlightRecorderCapturesMisses' .
go test -run 'TestTraceHopOffPathAllocs' ./internal/core
go test -run 'TestChainRecordAllocBudget' ./internal/trace

# Grayfail bench artifact: the sweep must run end to end with causal
# tracing on and emit BENCH_grayfail.json carrying the slack
# attribution and any flight dumps.
graydir=$(mktemp -d)
go run ./cmd/tigerbench -exp grayfail -grayfactors 3 -grayhold 20s -attr -out "$graydir" >/dev/null
[ -s "$graydir/BENCH_grayfail.json" ]
grep -q '"attribution"' "$graydir/BENCH_grayfail.json"
rm -rf "$graydir"

# Elastic gate: the restripe interplay regressions (crash-rejoin mid-copy,
# split-brain against the lingering retiring cub, quarantine re-route)
# under the race detector, then the crash-during-restripe chaos arm at
# full scale — grow and shrink legs — which must emit BENCH_elastic.json
# with the zero columns (lost / double serves / violations) intact.
go test -race -run 'TestElasticInterplay' .
eldir=$(mktemp -d)
go run ./cmd/tigerbench -exp elastic -elasticarms crash -out "$eldir" >/dev/null
[ -s "$eldir/BENCH_elastic.json" ]
if grep -E '"(BlocksLost|DoubleServes|Violations)": [^0]' "$eldir/BENCH_elastic.json"; then
    echo "elastic sweep violated the zero columns" >&2
    exit 1
fi
rm -rf "$eldir"

# Correlated-failure gate: the governor regressions (mass-crash rejoin
# in both restart orders, scattered pair parks nothing, domain kill,
# sharded chaos smoke) under the race detector, then the adjacent-pair
# sweep arm — decluster span breached, every endangered stream parked —
# which must emit BENCH_correlated.json with its zero columns intact.
go test -race -run 'TestMassCrashRejoin|TestGovernor|TestCrashDomain|TestChaosSmokeSharded' .
codir=$(mktemp -d)
go run ./cmd/tigerbench -exp correlated -corrarms adjacent-pair -out "$codir" >/dev/null
[ -s "$codir/BENCH_correlated.json" ]
if grep -E '"(BlocksLost|DoubleServes|Violations|ParkedEnd|QueueEnd)": [^0]' "$codir/BENCH_correlated.json"; then
    echo "correlated sweep violated the zero columns" >&2
    exit 1
fi
rm -rf "$codir"

# Controller-failover gate: the takeover regressions under the race
# detector (crash-controller chaos smoke: zero loss on crash-time
# streams, no double admissions, a scavenge served by every cub; the
# client start-retry backoff; the parked and mid-restripe takeovers;
# byte determinism), then the light sweep arm, which must emit
# BENCH_failover.json with its zero columns intact.
go test -race -run 'TestControllerFailover' .
fodir=$(mktemp -d)
go run ./cmd/tigerbench -exp failover -failoverarms idle-light-3s -out "$fodir" >/dev/null
[ -s "$fodir/BENCH_failover.json" ]
if grep -E '"(BlocksLost|DoubleServes|Violations|StartAbandons|ParkedEnd|QueueEnd)": [^0]' "$fodir/BENCH_failover.json"; then
    echo "failover sweep violated the zero columns" >&2
    exit 1
fi
rm -rf "$fodir"

# Warehouse-scale gate: the sharded-vs-serial byte-identical determinism
# compare (2/4/8 shards × 2/4/8 workers) under the race detector — this
# is the coordination code's correctness proof — then a short 200-cub
# scalability smoke at rated load with the ns/event and allocs/event
# budgets enforced and zero loss required (the experiment fails itself
# on any lost block).
go test -race -run 'TestSharded' .
scdir=$(mktemp -d)
go run ./cmd/tigerbench -exp scalability -scalecubs 200 -scalesettle 5s -scalehold 15s \
    -nsevent-budget 6000 -allocs-budget 8 -out "$scdir" >/dev/null
[ -s "$scdir/BENCH_scale.json" ]
rm -rf "$scdir"

# Bench smoke: compile and single-shot every benchmark so the alloc
# regression tests and hot-path benches can't silently rot.
go test -bench=. -benchtime=1x -run='^$' ./...

# Smoke: boot the single-process demo and check the observability
# surface — /healthz answers, /metrics carries the cub counters and the
# block-lifecycle slack series, pprof is mounted. The control port is
# overridable so the gate doesn't collide with a developer's running
# tigerd; tigerd derives the epoch service at control + 1000 and the
# debug endpoint at control + 2000, so all three must be free.
TIGERD_CHECK_PORT="${TIGERD_CHECK_PORT:-7400}"
TIGERD_DEBUG_PORT=$((TIGERD_CHECK_PORT + 2000))

# port_free: connection refused (curl exit 7) means nothing is
# listening; any other outcome means the port is taken.
port_free() {
    curl -s --max-time 2 -o /dev/null "http://127.0.0.1:$1/" && return 1
    [ $? -eq 7 ]
}
for p in "$TIGERD_CHECK_PORT" $((TIGERD_CHECK_PORT + 1000)) "$TIGERD_DEBUG_PORT"; do
    if ! port_free "$p"; then
        echo "check.sh: port $p is already bound (a running tigerd?);" \
             "set TIGERD_CHECK_PORT to a free control port (epoch = control + 1000, debug = control + 2000)" >&2
        exit 1
    fi
done

go build -o /tmp/tigerd.check ./cmd/tigerd
/tmp/tigerd.check -cubs 4 -listen "127.0.0.1:$TIGERD_CHECK_PORT" &
TIGERD_PID=$!
trap 'kill $TIGERD_PID 2>/dev/null || true' EXIT

ok=""
for i in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$TIGERD_DEBUG_PORT/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep 0.2
done
[ -n "$ok" ]

metrics=$(curl -fsS "http://127.0.0.1:$TIGERD_DEBUG_PORT/metrics")
echo "$metrics" | grep '^tiger_cub_inserts_total' >/dev/null
echo "$metrics" | grep '^tiger_block_deadline_slack_seconds_bucket' >/dev/null
curl -fsS "http://127.0.0.1:$TIGERD_DEBUG_PORT/debug/pprof/cmdline" >/dev/null
curl -fsS "http://127.0.0.1:$TIGERD_DEBUG_PORT/debug/vars" | grep '"cub0"' >/dev/null
curl -fsS "http://127.0.0.1:$TIGERD_DEBUG_PORT/debug/trace" | head -1 | grep '"header":true' >/dev/null

kill $TIGERD_PID
trap - EXIT
echo "check.sh: all gates passed"
