package tiger

import (
	"fmt"
	"sort"
	"time"

	"tiger/internal/core"
	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/msg"
	"tiger/internal/schedule"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// This file drives an online elastic restripe (DESIGN §13): growing or
// shrinking the cub array while every admitted stream keeps playing. The
// cluster layer owns the phase machine; the hard mechanics live below it
// — the move protocol and pacing in internal/core's mover, the dispatch
// and re-route logic in its restriper, and the dual-generation schedule
// planes in gen.go that let two slot rings coexist on the same spindles.
//
// Phases:
//
//	idle ──StartRestripe──▶ copy ──all moves committed──▶ cutover
//	     (background block moves      (admissions quiesced ~1 s, then
//	      through idle disk slots)     the active generation flips
//	                                   everywhere in one instant)
//	cutover ──▶ drain ──old generation empty──▶ linger ──▶ done
//	            (old-ring streams play            (grace window: late
//	             to EOF; new admissions            old-generation traffic
//	             land on the new ring)             still fenced, retiring
//	                                               cubs still monitored)
//
// The cutover is gated on *every* planned move having committed at its
// destination, so a block's new-generation home is always populated
// before any new-generation viewer state can reference it. The old
// generation is never migrated: its streams simply play to end of file
// on the old ring (the workload replays on EOF, and those replays are
// admitted under the new generation), and the joint admission rule in
// the controller keeps the two rings' summed per-disk stream load within
// the single-ring budget throughout.

// Restripe phase names, as reported by Cluster.RestripePhase.
const (
	RestripeIdle    = "idle"
	RestripeCopy    = "copy"
	RestripeCutover = "cutover"
	RestripeDrain   = "drain"
	RestripeLinger  = "linger"
	RestripeDone    = "done"
)

const (
	// restripeCutoverPause quiesces viewer replays around the generation
	// flip, long enough for in-flight StartPlay/ack round trips issued
	// under the old generation to land before the flip.
	restripeCutoverPause = time.Second
	// restripeDrainPoll is how often the drain monitor re-checks that the
	// old generation has emptied everywhere.
	restripeDrainPoll = 2 * time.Second
	// Default linger windows. Shrink lingers much longer: the retiring
	// cubs stay monitored and fenced through the window, so an operator
	// (or the chaos engine) hitting them with a late crash or partition
	// cannot resurrect old-generation state.
	restripeLingerGrow   = 10 * time.Second
	restripeLingerShrink = 90 * time.Second
	// replayRetry paces replay re-attempts while a restripe holds the
	// joint admission limit at capacity.
	replayRetry = 2 * time.Second
)

// restripePhaseVal maps a phase to its tiger_restripe_phase gauge value.
func restripePhaseVal(phase string) float64 {
	switch phase {
	case RestripeCopy:
		return 1
	case RestripeCutover:
		return 2
	case RestripeDrain:
		return 3
	case RestripeLinger:
		return 4
	case RestripeDone:
		return 5
	default:
		return 0
	}
}

// RestripeInfo is a snapshot of restripe progress for experiments and
// the observability surfaces.
type RestripeInfo struct {
	Phase      string
	TargetCubs int
	Moves      int // planned moves
	Bytes      int64
	Coord      core.RestripeStats // coordinator progress
	Pending    int                // copy jobs queued at cubs
	Inflight   int                // copy reads/writes in service at cubs

	// Phase transition times (zero until reached).
	CopyStart sim.Time
	CopyDone  sim.Time
	DrainDone sim.Time
	Finished  sim.Time

	// Replays deferred by the cutover quiesce and re-issued after it.
	DeferredReplays int
}

// RestripePhase reports the current phase of the elastic restripe
// machinery ("idle" when none has run).
func (c *Cluster) RestripePhase() string {
	if c.rsPhase == "" {
		return RestripeIdle
	}
	return c.rsPhase
}

// restripeActive reports whether a restripe is in progress (any phase
// between StartRestripe and done).
func (c *Cluster) restripeActive() bool {
	switch c.rsPhase {
	case RestripeCopy, RestripeCutover, RestripeDrain, RestripeLinger:
		return true
	}
	return false
}

// RestripeInfo returns a snapshot of restripe progress.
func (c *Cluster) RestripeInfo() RestripeInfo {
	in := RestripeInfo{
		Phase:           c.RestripePhase(),
		TargetCubs:      c.rsTarget,
		Moves:           c.rsMoves,
		Bytes:           c.rsBytes,
		Coord:           c.Controller.RestripeStats(),
		CopyStart:       c.rsCopyStart,
		CopyDone:        c.rsCopyDone,
		DrainDone:       c.rsDrainDone,
		Finished:        c.rsFinished,
		DeferredReplays: c.rsDeferredTotal,
	}
	for _, cub := range c.Cubs {
		in.Pending += cub.MoverPending()
		in.Inflight += cub.MoverInflight()
	}
	return in
}

func (c *Cluster) setRestripePhase(phase string) {
	c.rsPhase = phase
	if c.rsGauge != nil {
		c.rsGauge.Set(restripePhaseVal(phase))
	}
	if c.ring != nil {
		c.ring.Add(trace.Event{
			At: c.Now(), Node: msg.Controller, Kind: trace.RestripePhase,
			Slot: int32(restripePhaseVal(phase)),
		})
	}
}

// StartRestripe begins an online elastic restripe to targetCubs cubs,
// serving every admitted stream throughout. It returns immediately; the
// restripe proceeds in virtual time through the copy, cutover, drain and
// linger phases, and RestripePhase reports "done" when the new shape is
// fully in charge. Growing creates and starts the new cubs; shrinking
// retires the surplus cubs in place (they stay registered, fencing any
// late traffic for the retired generation, but serve nothing).
func (c *Cluster) StartRestripe(targetCubs int) error {
	if c.restripeActive() {
		return fmt.Errorf("tiger: restripe already active (phase %s)", c.rsPhase)
	}
	cur := c.Cfg.Layout.Cubs
	if targetCubs == cur {
		return fmt.Errorf("tiger: already %d cubs", cur)
	}

	// Build the new generation's configuration: same hardware model and
	// protocol timings, new layout and schedule geometry, file start
	// disks folded into the new disk count (matching PlanElastic).
	lay1 := layout.Config{Cubs: targetCubs, DisksPerCub: c.Cfg.Layout.DisksPerCub, Decluster: c.Cfg.Layout.Decluster}
	if err := lay1.Validate(); err != nil {
		return err
	}
	cap1 := disk.PlanCapacity(c.Cfg.DiskParams, lay1.NumDisks(), c.Cfg.BlockSize, c.Cfg.Sched.BlockPlay, lay1.Decluster)
	if cap1.Streams < 1 {
		return fmt.Errorf("tiger: target configuration has no stream capacity")
	}
	sched1, err := schedule.NewParams(c.Cfg.Sched.BlockPlay, lay1.NumDisks(), cap1.Streams)
	if err != nil {
		return err
	}
	ids := make([]msg.FileID, 0, len(c.Cfg.Files))
	for id := range c.Cfg.Files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	files1 := make(map[msg.FileID]layout.File, len(ids))
	oldFiles := make([]layout.File, 0, len(ids))
	for _, id := range ids {
		f := c.Cfg.Files[id]
		oldFiles = append(oldFiles, f)
		nf := f
		nf.StartDisk = f.StartDisk % lay1.NumDisks()
		files1[id] = nf
	}
	ncfg := *c.Cfg
	ncfg.Layout = lay1
	ncfg.Sched = sched1
	ncfg.Files = files1
	cfg1 := &ncfg
	if err := cfg1.Validate(); err != nil {
		return err
	}

	plan, err := layout.PlanElastic(c.Cfg.Layout, lay1, oldFiles)
	if err != nil {
		return err
	}

	oldGen := c.Controller.ActiveGen()
	newGen := oldGen + 1

	// Install the new generation everywhere before any move can land:
	// destinations index their drives under the new placement at install
	// time. Existing cubs (including, on a shrink, the retiring ones —
	// they hold the plane purely to fence) first, then the controller,
	// then any newly created cubs.
	c.Controller.InstallGen(newGen, cfg1)
	for _, cub := range c.Cubs {
		cub.InstallGen(newGen, cfg1)
	}
	clk := clockOf(c)
	for i := len(c.Cubs); i < targetCubs; i++ {
		cub := core.NewCub(msg.NodeID(i), cfg1, clk, c.Net, c.Net, c.Eng.Rand())
		cub.Rebase(newGen)
		cub.SetLossLog(c.Loss)
		cub.SetHooks(c.cubHooks)
		c.attachChainLog(cub)
		cub.AttachObs(c.reg)
		c.Net.Register(msg.NodeID(i), cub)
		c.Cubs = append(c.Cubs, cub)
		cub.Start()
	}

	c.rsTarget = targetCubs
	c.rsOldGen, c.rsNewGen = oldGen, newGen
	c.rsCfg1, c.rsCap1 = cfg1, cap1
	c.rsMoves, c.rsBytes = len(plan.Moves), plan.BytesTotal
	c.rsPlan = plan
	c.rsCopyStart = c.Now()
	c.rsCopyDone, c.rsDrainDone, c.rsFinished = 0, 0, 0
	c.setRestripePhase(RestripeCopy)

	c.Controller.OnRestripeDone = c.restripeCutover
	if err := c.Controller.StartRestripe(int64(newGen), oldGen, plan); err != nil {
		c.setRestripePhase(RestripeIdle)
		return err
	}
	return nil
}

// restripeCutover runs when the coordinator certifies that every planned
// move has committed at its destination: quiesce admissions briefly so
// in-flight old-generation start round trips settle, then flip the
// active generation on the controller and every cub in one engine
// callback — no message can interleave with the flip, so no insertion
// ever straddles the two rings.
func (c *Cluster) restripeCutover() {
	if c.rsPhase != RestripeCopy {
		return
	}
	c.rsCopyDone = c.Now()
	c.rsPlan = nil // every move committed; nothing left to re-arm after a takeover
	c.setRestripePhase(RestripeCutover)
	c.rsPauseReplay = true
	clockOf(c).After(restripeCutoverPause, func() {
		c.Controller.SetActiveGen(c.rsNewGen)
		for _, cub := range c.Cubs {
			cub.SetActiveGen(c.rsNewGen)
		}
		c.rsPauseReplay = false
		deferred := c.rsDeferred
		c.rsDeferred = 0
		for i := 0; i < deferred; i++ {
			c.replay(nil)
		}
		c.setRestripePhase(RestripeDrain)
		c.restripePollDrain()
	})
}

// restripePollDrain watches the old generation empty out: every stream
// admitted under it played to EOF (controller load zero), every cub's
// view holds no old-ring entries, and no start sits queued against an
// old-ring disk.
func (c *Cluster) restripePollDrain() {
	if c.rsPhase != RestripeDrain {
		return
	}
	if c.restripeDrained() {
		c.rsDrainDone = c.Now()
		c.setRestripePhase(RestripeLinger)
		lin := c.Opt.RestripeLinger
		if lin <= 0 {
			if c.rsTarget < len(c.Cubs) {
				lin = restripeLingerShrink
			} else {
				lin = restripeLingerGrow
			}
		}
		clockOf(c).After(lin, c.restripeFinish)
		return
	}
	clockOf(c).After(restripeDrainPoll, c.restripePollDrain)
}

func (c *Cluster) restripeDrained() bool {
	if c.Controller.GenLoad(c.rsOldGen) != 0 {
		return false
	}
	for _, cub := range c.Cubs {
		if cub.GenEntries(c.rsOldGen) != 0 || cub.GenQueued(c.rsOldGen) != 0 {
			return false
		}
	}
	return true
}

// restripeFinish drops the drained generation everywhere and installs
// the new shape as the cluster's notion of itself. From here late
// old-generation traffic is refused outright (cfgOf returns nil at
// every cub), which is what makes narrowing safe: a retired slot cannot
// be resurrected. Retired cubs stay registered with empty monitored
// sets; the deadman ring of the new generation no longer includes them.
func (c *Cluster) restripeFinish() {
	if c.rsPhase != RestripeLinger {
		return
	}
	c.Controller.DropGen(c.rsOldGen)
	for _, cub := range c.Cubs {
		cub.DropGen(c.rsOldGen)
	}
	c.Cfg = c.rsCfg1
	c.capacity = c.rsCap1
	c.Opt.Cubs = c.rsCfg1.Layout.Cubs
	c.rsFinished = c.Now()
	c.setRestripePhase(RestripeDone)
}
