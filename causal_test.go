package tiger

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"tiger/internal/obs/attr"
	"tiger/internal/trace"
)

// TestCausalChainLifecycle plays one traced stream and checks that the
// causal chains cover the full hop taxonomy — admit at the controller,
// insert under ownership, state acceptance, the disk pipeline, send,
// and the viewer-side receipt — in non-decreasing time order.
func TestCausalChainLifecycle(t *testing.T) {
	c, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	c.EnableCausalTrace(0, 0)
	if !c.CausalTraceEnabled() {
		t.Fatal("causal trace did not enable")
	}
	s, err := c.Play(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)

	// Block 0's chain begins with the controller's admit hop.
	first := c.CausalChain(s.Instance, 0)
	if len(first) == 0 {
		t.Fatal("no chain recorded for block 0")
	}
	if first[0].Kind != trace.HopAdmit {
		t.Fatalf("block 0 chain starts with %v, want admit: %v", first[0].Kind, first)
	}

	// Across the stream's chains, every hop kind of the steady-state
	// pipeline must appear, and each chain must be time-ordered with any
	// receipt as its final hop.
	chains := c.CausalChains()
	if len(chains) < 10 {
		t.Fatalf("only %d chains for a 20s stream", len(chains))
	}
	kinds := map[trace.HopKind]bool{}
	for _, ch := range chains {
		for i, h := range ch {
			kinds[h.Kind] = true
			if i > 0 && h.At < ch[i-1].At {
				t.Fatalf("hops out of time order: %v", ch)
			}
			if h.Kind == trace.HopReceipt && i != len(ch)-1 {
				t.Fatalf("receipt is not the final hop: %v", ch)
			}
		}
	}
	for _, k := range []trace.HopKind{
		trace.HopAdmit, trace.HopInsert, trace.HopState,
		trace.HopDiskQueue, trace.HopDiskRead, trace.HopSend, trace.HopReceipt,
	} {
		if !kinds[k] {
			t.Errorf("no %v hop recorded across %d chains", k, len(chains))
		}
	}

	// The attribution engine must digest them: receipts seen, no misses
	// on a healthy half-empty system, slack charged somewhere.
	tab := attr.Build(chains)
	if tab.Chains != len(chains) || tab.Receipts == 0 || tab.Misses != 0 {
		t.Fatalf("attribution: %d chains, %d receipts, %d misses", tab.Chains, tab.Receipts, tab.Misses)
	}
	if tab.TotalNs <= 0 || len(tab.Rows) == 0 {
		t.Fatalf("no slack attributed: total=%d rows=%d", tab.TotalNs, len(tab.Rows))
	}
}

// causalScenarioDigest runs an eventful scenario (ramp, cub failure,
// revival) and digests everything observable. traced additionally turns
// on the protocol ring, causal chains (deliberately tiny, to exercise
// eviction), and the flight recorder.
func causalScenarioDigest(t *testing.T, traced bool) string {
	t.Helper()
	o := smallOptions()
	o.Seed = 11
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if traced {
		c.EnableTrace(1024)
		c.EnableCausalTrace(64, 8)
		c.EnableFlightRecorder(8)
	}
	if err := c.RampTo(c.Capacity() / 2); err != nil {
		t.Fatal(err)
	}
	c.RunFor(15 * time.Second)
	c.FailCub(2)
	c.RunFor(15 * time.Second)
	c.ReviveCub(2)
	c.RunFor(10 * time.Second)

	digest := ""
	for i, cub := range c.Cubs {
		st := cub.Stats()
		digest += fmt.Sprintf("cub%d:%d/%d/%d/%d/%d;", i,
			st.BlocksSent, st.PiecesSent, st.Inserts, st.StatesRecv, st.ServerMisses)
	}
	ok, lost, mirror := c.ViewerTotals()
	digest += fmt.Sprintf("v:%d/%d/%d;", ok, lost, mirror)
	for _, p := range c.StartupPoints {
		digest += fmt.Sprintf("%d,", p.Latency.Nanoseconds())
	}
	return digest
}

// TestCausalTraceObservationOnly asserts the tentpole's core claim:
// tracing is observation-only. A run with the ring, causal chains, and
// flight recorder all enabled must be byte-identical to the same run
// with them off — no timers, no messages, no map-order dependence.
func TestCausalTraceObservationOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("replay run")
	}
	off := causalScenarioDigest(t, false)
	on := causalScenarioDigest(t, true)
	if off != on {
		i := 0
		for i < len(off) && i < len(on) && off[i] == on[i] {
			i++
		}
		lo := i - 40
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("tracing perturbed the run at byte %d:\n off: ...%s\n on:  ...%s",
			i, off[lo:min(i+40, len(off))], on[lo:min(i+40, len(on))])
	}
}

// TestAttrSweepParallelEquivalence asserts traced sweeps stay
// byte-identical at any -parallel width: attribution tables and flight
// dumps included.
func TestAttrSweepParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	run := func(width int) []byte {
		var b []byte
		withParallelism(t, width, func() {
			pts, err := RunGrayFailSweepAttr(grayOptions(), 24, []float64{2}, 15*time.Second, true)
			if err != nil {
				t.Fatal(err)
			}
			var mErr error
			b, mErr = json.Marshal(pts)
			if mErr != nil {
				t.Fatal(mErr)
			}
		})
		return b
	}
	seq, par := run(1), run(2)
	if !bytes.Equal(seq, par) {
		t.Fatalf("traced sweep diverged across parallel widths:\n%s\n%s", seq, par)
	}
}

// TestFlightRecorderCapturesMisses drives a system into deadline misses
// (one disk grossly fail-slow, monitor off) and checks the flight
// recorder auto-dumps the implicated blocks' causal chains.
func TestFlightRecorderCapturesMisses(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	o := grayOptions()
	o.Health.Disable = true
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(4096)
	c.EnableCausalTrace(0, 0)
	fr := c.EnableFlightRecorder(16)
	if err := c.RampTo(c.Capacity()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Second)
	c.FailDiskSlow(grayVictim(c), 4)
	c.RunFor(30 * time.Second)

	dumps := fr.Dumps()
	if len(dumps) == 0 {
		t.Fatal("no flight dumps despite a 4x fail-slow disk with the monitor off")
	}
	if len(dumps) > 16 {
		t.Fatalf("dump cap not honored: %d > 16", len(dumps))
	}
	withChains := 0
	for _, d := range dumps {
		if d.Reason == "" {
			t.Fatalf("dump without a reason: %+v", d)
		}
		if len(d.Events) == 0 {
			t.Fatalf("dump without neighbor events: %+v", d)
		}
		if len(d.Hops) > 0 {
			withChains++
		}
	}
	if withChains == 0 {
		t.Fatal("no dump carried a causal chain")
	}
}
