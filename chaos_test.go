package tiger

import (
	"encoding/json"
	"testing"
	"time"

	"tiger/internal/chaos"
	"tiger/internal/netsim"
)

// These tests drive the chaos scenario engine against full clusters.
// They use a reduced system (8 cubs, 1 disk each, decluster 2) so the
// whole suite stays fast; the protocol paths exercised are identical to
// the paper-scale configuration.

func chaosTestOptions(seed int64) Options {
	o := DefaultOptions()
	o.Cubs = 8
	o.DisksPerCub = 1
	o.Decluster = 2
	o.NumFiles = 8
	o.FileBlocks = 900
	o.ClientDropProb = 0
	o.Seed = seed
	return o
}

func rampedCluster(t *testing.T, o Options, streams int) *Cluster {
	t.Helper()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RampTo(streams); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second)
	return c
}

// runSuccessorPartition is the acceptance scenario: cut the victim cub
// off from BOTH of its ring successors — the cubs that monitor its
// heartbeats and hold its mirror pieces — for cut long, then heal, and
// return the outcome plus its canonical JSON encoding.
func runSuccessorPartition(t *testing.T, seed int64, cut time.Duration) (*ChaosOutcome, []byte) {
	t.Helper()
	c := rampedCluster(t, chaosTestOptions(seed), 24)
	const victim = 5
	sc := PartitionScenario(victim, 2, len(c.Cubs), cut, 20*time.Second, seed+100)
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ml := c.MirrorLoadFor(victim); ml != 0 {
		t.Errorf("mirror load for the victim did not drain: %d entries", ml)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, b
}

// TestChaosPartitionBothSuccessors is the acceptance scenario for the
// split-brain healing rule: a cub partitioned from both of its deadman
// monitors for 30 simulated seconds is declared dead and covered by
// mirror chains while it keeps serving; on heal, the first heartbeat
// refutes the false death and the mirror load drains — without a
// restart, without a single invariant violation, and with viewer loss
// inside the paper's single-failure envelope.
func TestChaosPartitionBothSuccessors(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance run")
	}
	res, enc := runSuccessorPartition(t, 7, 30*time.Second)

	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations: %v", err)
	}
	if res.DeathsRefuted == 0 {
		t.Error("no false deaths refuted")
	}
	if res.MirrorsRetired == 0 {
		t.Error("mirror load did not drain through the retire path")
	}
	if res.Rejoins != 0 {
		t.Errorf("healing took %d restarts; refutation must not need one", res.Rejoins)
	}
	if !res.Converged {
		t.Fatal("cluster did not converge after the heal")
	}
	if res.Recovery > 5*time.Second {
		t.Errorf("recovery took %v; refutation should take about a heartbeat", res.Recovery)
	}
	// Single-failure envelope: the mirror chains cover the partitioned
	// cub's blocks, so losses stay a tiny fraction of deliveries.
	if res.BlocksOK == 0 {
		t.Fatal("no blocks delivered during the scenario")
	}
	if res.BlocksLost*50 > res.BlocksOK {
		t.Errorf("loss outside the single-failure envelope: %d lost of %d ok",
			res.BlocksLost, res.BlocksOK)
	}
	t.Logf("refuted=%d retired=%d recovery=%v ok=%d lost=%d mirror=%d",
		res.DeathsRefuted, res.MirrorsRetired, res.Recovery,
		res.BlocksOK, res.BlocksLost, res.MirrorBlocks)

	// Determinism: the same (cluster seed, scenario seed) pair must
	// reproduce the run byte for byte.
	_, enc2 := runSuccessorPartition(t, 7, 30*time.Second)
	if string(enc) != string(enc2) {
		t.Errorf("same seeds produced different results:\n%s\n%s", enc, enc2)
	}
}

// TestChaosAsymmetricCut partitions only one direction of one link: the
// watcher stops hearing the victim and declares it dead, while the
// victim — which still hears the watcher — does not reciprocate. Healing
// the one direction lets the next heartbeat through, which refutes the
// death and retires the mirror chains, with no restart and no
// invariant violations.
func TestChaosAsymmetricCut(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	c := rampedCluster(t, chaosTestOptions(3), 24)
	const victim, watcher = 3, 4
	// Duration leaves room after the one-way heal for the derived settle
	// window: cub 5 covers the victim's part-1 pieces but never hears the
	// cut (it is not on the cut link), so it never believes the victim
	// dead and its entries drain only by being served — bounded by the
	// viewer-state forwarding lead, not by a refutation.
	sc := chaos.Scenario{
		Name:     "asymmetric-cut",
		Seed:     11,
		Duration: 40 * time.Second,
		Steps: []chaos.Step{
			{At: 2 * time.Second, Kind: chaos.CutOneWay, A: victim, B: watcher},
			{At: 12 * time.Second, Kind: chaos.HealOneWay, A: victim, B: watcher},
		},
	}
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations: %v", err)
	}
	if res.DeathsRefuted == 0 {
		t.Error("the one-way cut never produced a refuted death")
	}
	if res.Rejoins != 0 {
		t.Errorf("%d restarts; an asymmetric blip must heal in place", res.Rejoins)
	}
	if !res.Converged {
		t.Error("cluster did not converge after the one-way heal")
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	if res.BlocksLost*50 > res.BlocksOK {
		t.Errorf("loss outside the single-failure envelope: %d lost of %d ok",
			res.BlocksLost, res.BlocksOK)
	}
}

// TestChaosDuplicatedGossip makes every inter-cub link duplicate every
// control message for 30 simulated seconds — each viewer-state forward
// arrives twice, as do heartbeats, acks, and deschedules. The §4.1.2
// idempotence rules must absorb all of it: duplicates land in StatesDup,
// not in conflicts or double-scheduled slots.
func TestChaosDuplicatedGossip(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	o := chaosTestOptions(5)
	c := rampedCluster(t, o, 24)
	dup := netsim.FlakyParams{DupProb: 1}
	var steps []chaos.Step
	for a := 0; a < o.Cubs; a++ {
		for b := a + 1; b < o.Cubs; b++ {
			steps = append(steps, chaos.Step{At: time.Second, Kind: chaos.FlakyLink, A: a, B: b, Flaky: dup})
		}
	}
	steps = append(steps, chaos.Step{At: 31 * time.Second, Kind: chaos.HealAll})
	sc := chaos.Scenario{Name: "duplicate-gossip", Seed: 17, Duration: 45 * time.Second, Steps: steps}

	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations under duplication: %v", err)
	}
	if res.StatesDup == 0 {
		t.Error("no duplicate states absorbed; the links were not duplicating")
	}
	if cs := c.TotalCubStats(); cs.Conflicts != 0 {
		t.Errorf("duplicated gossip produced %d state conflicts", cs.Conflicts)
	}
	if v := c.InvariantViolations(); v != 0 {
		t.Errorf("slot conflicts: %d", v)
	}
	if dups := c.Net.FaultStats().LinkDups; dups == 0 {
		t.Error("network recorded no link duplications")
	}
	t.Logf("statesDup=%d linkDups=%d ok=%d lost=%d",
		res.StatesDup, c.Net.FaultStats().LinkDups, res.BlocksOK, res.BlocksLost)
}

// TestChaosSmoke is the short-mode gate: a small partition scenario end
// to end — schedule applied, invariants swept, refutation healed the
// split — in a few simulated seconds.
func TestChaosSmoke(t *testing.T) {
	c := rampedCluster(t, chaosTestOptions(1), 12)
	sc := PartitionScenario(5, 2, len(c.Cubs), 5*time.Second, 15*time.Second, 42)
	res, err := c.RunChaos(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Err(); err != nil {
		t.Errorf("invariant violations: %v", err)
	}
	if res.Rejoins != 0 {
		t.Errorf("smoke partition took %d restarts", res.Rejoins)
	}
	if !res.Converged {
		t.Error("smoke partition did not converge")
	}
	if res.Report.Ticks == 0 || !res.Report.QuietAtEnd {
		t.Errorf("runner did not sweep/settle: %+v", res.Report)
	}
}
