package tiger

import (
	"errors"
	"fmt"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/obs"
	"tiger/internal/trace"
	"tiger/internal/viewer"
)

// Stream is one viewer's play of one file.
type Stream struct {
	Viewer   *viewer.Viewer
	Instance msg.InstanceID
	File     msg.FileID

	cluster *Cluster
	done    bool

	// OnEOF, if set, fires when the stream plays to end of file; drivers
	// use it to start a replay ("played it from beginning to end and
	// repeated", §5).
	OnEOF func(s *Stream)
}

// Play starts a new viewer on the given file at the given block. The
// request goes to the controller immediately; the viewer may wait in a
// cub's queue until a free slot passes under an ownership window.
func (c *Cluster) Play(file msg.FileID, startBlock int32) (*Stream, error) {
	f, ok := c.Cfg.Files[file]
	if !ok {
		return nil, fmt.Errorf("tiger: unknown file %d", file)
	}
	c.nextViewer++
	vid := c.nextViewer
	v := viewer.New(vid, clockOf(c), c.Cfg.Sched.BlockPlay, c.Opt.ViewerSlack,
		c.machineFor(vid), c.Loss)
	c.Net.RegisterViewer(vid, v)

	// The load this request joins includes starts still waiting for a
	// slot: they are ahead of it in the cubs' queues.
	loadAtRequest := float64(c.liveStreams()) / float64(c.Cfg.Sched.NumSlots)
	if loadAtRequest > 1 {
		loadAtRequest = 1
	}
	inst, err := c.Controller.StartPlay(vid, file, startBlock, int32(c.Opt.StreamBitrate))
	if err != nil {
		c.Net.UnregisterViewer(vid)
		return nil, err
	}
	s := &Stream{Viewer: v, Instance: inst, File: file, cluster: c}
	c.streams[inst] = s

	v.Begin(inst, file, startBlock, int32(f.Blocks)-startBlock)
	v.OnFirstBlock = func(lat time.Duration) {
		c.StartupLatency.AddDuration(lat)
		c.StartupPoints = append(c.StartupPoints, StartupPoint{Load: loadAtRequest, Latency: lat})
	}
	// Close the block-lifecycle span at the client: margin of each
	// delivered piece against the viewer's play deadline, recorded under
	// the serving cub's label so per-cub receipt slack is comparable with
	// its insert/state/read/send stages. Not under sharding: the viewer
	// runs on shard 0 and must not reach into another shard's cub.
	if c.sharded == nil {
		v.OnTimedDelivery = c.timedDelivery
	}
	v.OnDone = func() {
		if s.done {
			return
		}
		s.finish()
		c.Controller.NotifyEOF(inst)
		if s.OnEOF != nil {
			s.OnEOF(s)
		}
	}
	if c.Opt.RestartStalled > 0 {
		v.StallThreshold = int32(c.Opt.RestartStalled)
		v.OnStalled = func() {
			if s.done {
				return
			}
			onEOF := s.OnEOF
			s.Stop()
			if ns, err := c.Play(file, startBlock); err == nil {
				ns.OnEOF = onEOF
			}
		}
	}
	return s, nil
}

// timedDelivery closes the block-lifecycle span at the client, crediting
// the serving cub's receipt stage (see the OnTimedDelivery wiring above).
func (c *Cluster) timedDelivery(d netsim.BlockDelivery, slack time.Duration) {
	if i := int(d.From); i >= 0 && i < len(c.Cubs) {
		cub := c.Cubs[i]
		cub.Spans().ObserveSlack(obs.StageReceipt, slack.Seconds())
		// Close the causal chain at the viewer: a receipt hop lands in
		// the serving cub's log, but only for blocks already being
		// traced there — untraced blocks must not allocate chains.
		if cl := cub.ChainLog(); cl.Has(d.Instance, d.Block) {
			cl.Record(d.Instance, d.Block, trace.Hop{
				At:     d.LastByte,
				Node:   d.From,
				Kind:   trace.HopReceipt,
				Slack:  int64(slack),
				Slot:   -1,
				Disk:   -1,
				Mirror: d.Mirror,
			})
		}
	}
}

// Stop sends the viewer's "stop playing" request through the controller
// (§4.1.2).
func (s *Stream) Stop() {
	if s.done {
		return
	}
	s.cluster.Controller.StopPlay(s.Instance)
	s.finish()
}

// Done reports whether the stream has ended (stopped or EOF).
func (s *Stream) Done() bool { return s.done }

func (s *Stream) finish() {
	s.done = true
	s.Viewer.End()
	st := s.Viewer.Stats()
	s.cluster.tallyOK += st.BlocksOK
	s.cluster.tallyLost += st.BlocksLost
	s.cluster.tallyMirror += st.MirrorBlocks
	s.cluster.oracle.release(s.Instance)
	delete(s.cluster.streams, s.Instance)
	s.cluster.Net.UnregisterViewer(s.Viewer.ID)
}

// PlayRandom starts a stream on a uniformly chosen file from block 0.
func (c *Cluster) PlayRandom() (*Stream, error) {
	file := msg.FileID(c.rng.Intn(c.Opt.NumFiles))
	return c.Play(file, 0)
}

// RampTo starts streams until target are running or queued, choosing
// random files, and leaves them looping: on EOF each viewer immediately
// replays a new random file, like the paper's workload. Requests are
// staggered by Options.RampSpacing, as the paper's client starts were.
func (c *Cluster) RampTo(target int) error {
	for c.liveStreams() < target {
		s, err := c.PlayRandom()
		if err != nil {
			return err
		}
		s.OnEOF = c.replay
		if c.Opt.RampSpacing > 0 && c.liveStreams() < target {
			// Jitter the spacing so request arrivals do not alias with
			// the schedule cycle; resonance would cluster slot
			// assignments and hence the free slots.
			sp := c.Opt.RampSpacing/2 + time.Duration(c.rng.Int63n(int64(c.Opt.RampSpacing)))
			c.RunFor(sp)
		}
	}
	return nil
}

// Start-retry policy for controller outages: a refused admission is
// retried with capped exponential backoff and seeded jitter, then
// abandoned — the set-top box gives up and the viewer calls back later.
const (
	startRetryBase = 250 * time.Millisecond
	startRetryCap  = 4 * time.Second
	startRetryMax  = 8
)

// failoverErr reports whether an admission error means the controller is
// temporarily unavailable (crashed, or a new incarnation still
// scavenging the schedule) rather than genuinely refusing the play.
func failoverErr(err error) bool {
	return errors.Is(err, core.ErrControllerDown) || errors.Is(err, core.ErrScavenging)
}

// retryStart re-issues a failover-refused start after a backed-off,
// jittered delay. attempt counts from 1; past startRetryMax the client
// abandons. start runs one admission attempt; started fires on success.
func (c *Cluster) retryStart(attempt int, start func() (*Stream, error), started func(*Stream)) {
	if attempt > startRetryMax {
		c.startAbandoned++
		if c.startAbandonedC != nil {
			c.startAbandonedC.Inc()
		}
		return
	}
	c.startRetries++
	if c.startRetriesC != nil {
		c.startRetriesC.Inc()
	}
	base := startRetryBase << uint(attempt-1)
	if base > startRetryCap {
		base = startRetryCap
	}
	d := base/2 + time.Duration(c.rng.Int63n(int64(base)))
	clockOf(c).After(d, func() {
		s, err := start()
		if err != nil {
			if failoverErr(err) {
				c.retryStart(attempt+1, start, started)
			}
			return
		}
		if started != nil {
			started(s)
		}
	})
}

// PlayRetrying starts a stream like Play, but treats a controller outage
// as transient: the admission is retried with capped exponential backoff
// and seeded jitter while a failover is in progress, and onStarted fires
// when an attempt succeeds. A non-failover refusal is returned at once;
// after startRetryMax backed-off attempts the client abandons (counted
// in tiger_client_start_abandons_total).
func (c *Cluster) PlayRetrying(file msg.FileID, startBlock int32, onStarted func(*Stream)) error {
	s, err := c.Play(file, startBlock)
	if err == nil {
		if onStarted != nil {
			onStarted(s)
		}
		return nil
	}
	if !failoverErr(err) {
		return err
	}
	c.retryStart(1, func() (*Stream, error) { return c.Play(file, startBlock) }, onStarted)
	return nil
}

// StartRetryStats reports how many admissions were retried around a
// controller outage and how many clients gave up.
func (c *Cluster) StartRetryStats() (retries, abandoned int64) {
	return c.startRetries, c.startAbandoned
}

func (c *Cluster) replay(old *Stream) {
	if c.rsPauseReplay {
		// Restripe cutover quiesce: hold the replay and re-issue it the
		// moment the generation flip completes (elastic.go).
		c.rsDeferred++
		c.rsDeferredTotal++
		return
	}
	s, err := c.PlayRandom()
	if err != nil {
		if failoverErr(err) {
			// Controller outage: keep the viewer's intent alive across the
			// takeover with the client retry policy.
			c.retryStart(1, c.PlayRandom, func(s *Stream) { s.OnEOF = c.replay })
			return
		}
		if c.restripeActive() {
			// The joint admission limit refuses new plays while streams
			// admitted under the old generation still hold slot budget.
			// That budget frees continuously as they reach EOF, so keep
			// the offered load pressed against the limit by retrying
			// instead of giving up; jitter avoids retry convoys.
			d := replayRetry/2 + time.Duration(c.rng.Int63n(int64(replayRetry)))
			clockOf(c).After(d, func() { c.replay(nil) })
			return
		}
		return // admission refused; the viewer gives up
	}
	s.OnEOF = c.replay
}

// liveStreams counts streams not yet done (queued or active).
func (c *Cluster) liveStreams() int { return len(c.streams) }

// Streams returns the currently live streams, keyed by instance.
func (c *Cluster) Streams() map[msg.InstanceID]*Stream { return c.streams }

// StopAll stops every live stream.
func (c *Cluster) StopAll() {
	for _, s := range c.streams {
		s.Stop()
	}
}
