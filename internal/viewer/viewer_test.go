package viewer

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/metrics"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

const bp = time.Second

func newViewer(t *testing.T) (*sim.Engine, *Viewer, *metrics.LossLog) {
	t.Helper()
	eng := sim.New(1)
	loss := &metrics.LossLog{}
	v := New(1, clock.Sim{Eng: eng}, bp, 500*time.Millisecond, nil, loss)
	return eng, v, loss
}

func deliver(v *Viewer, seq int32, parts, need int8, at sim.Time) {
	for p := int8(0); p < parts; p++ {
		v.DeliverBlock(netsim.BlockDelivery{
			Viewer: v.ID, Instance: v.instance, File: v.file,
			Block: v.startBlock + seq, PlaySeq: seq,
			Part: p, Parts: need, LastByte: at,
		})
	}
}

func TestHappyPath(t *testing.T) {
	eng, v, loss := newViewer(t)
	var latency time.Duration
	v.OnFirstBlock = func(l time.Duration) { latency = l }
	done := false
	v.OnDone = func() { done = true }
	v.Begin(42, 0, 0, 5)

	// First block arrives 1.8 s after the request; the rest follow every
	// block play time.
	for k := int32(0); k < 5; k++ {
		k := k
		eng.At(sim.Time(1800*time.Millisecond)+sim.Time(k)*sim.Time(bp), func() {
			deliver(v, k, 1, 1, eng.Now())
		})
	}
	eng.Run()
	st := v.Stats()
	if st.BlocksOK != 5 || st.BlocksLost != 0 {
		t.Fatalf("stats %+v", st)
	}
	if latency != 1800*time.Millisecond {
		t.Fatalf("startup latency %v", latency)
	}
	if !done {
		t.Fatal("OnDone never fired")
	}
	if loss.Total() != 0 {
		t.Fatal("losses recorded on clean stream")
	}
}

func TestMissingBlockCounted(t *testing.T) {
	eng, v, loss := newViewer(t)
	v.Begin(42, 0, 0, 3)
	eng.At(sim.Time(time.Second), func() { deliver(v, 0, 1, 1, eng.Now()) })
	// Block 1 never arrives; block 2 does.
	eng.At(sim.Time(3*time.Second), func() { deliver(v, 2, 1, 1, eng.Now()) })
	eng.Run()
	st := v.Stats()
	if st.BlocksOK != 2 || st.BlocksLost != 1 {
		t.Fatalf("stats %+v", st)
	}
	if loss.ClientMissed != 1 {
		t.Fatalf("loss log %+v", loss)
	}
}

func TestLateBlockIsLost(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 0, 0, 2)
	eng.At(sim.Time(time.Second), func() { deliver(v, 0, 1, 1, eng.Now()) })
	// Block 1 arrives 0.9 s late: past the 0.5 s slack.
	eng.At(sim.Time(2900*time.Millisecond), func() { deliver(v, 1, 1, 1, eng.Now()) })
	eng.Run()
	st := v.Stats()
	if st.BlocksLost != 1 || st.BlocksOK != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMirrorAssembly(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 0, 0, 2)
	eng.At(sim.Time(time.Second), func() { deliver(v, 0, 1, 1, eng.Now()) })
	// Block 1 arrives as 4 declustered pieces spread over the block play
	// time, the last at the nominal arrival instant.
	for p := int8(0); p < 4; p++ {
		p := p
		eng.At(sim.Time(1250*time.Millisecond)+sim.Time(p)*sim.Time(250*time.Millisecond), func() {
			v.DeliverBlock(netsim.BlockDelivery{
				Viewer: v.ID, Instance: 42, Block: 1, PlaySeq: 1, Part: p, Parts: 4,
				Mirror: true, LastByte: eng.Now(),
			})
		})
	}
	eng.Run()
	st := v.Stats()
	if st.BlocksOK != 2 || st.BlocksLost != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.MirrorBlocks != 1 {
		t.Fatalf("mirror blocks %d", st.MirrorBlocks)
	}
}

func TestIncompleteMirrorIsLost(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 0, 0, 2)
	eng.At(sim.Time(time.Second), func() { deliver(v, 0, 1, 1, eng.Now()) })
	// Only 3 of 4 pieces arrive.
	for p := int8(0); p < 3; p++ {
		p := p
		eng.At(sim.Time(1250*time.Millisecond), func() {
			v.DeliverBlock(netsim.BlockDelivery{
				Viewer: v.ID, Instance: 42, Block: 1, PlaySeq: 1, Part: p, Parts: 4,
				Mirror: true, LastByte: eng.Now(),
			})
		})
	}
	eng.Run()
	if st := v.Stats(); st.BlocksLost != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMirrorServedFirstBlockAnchorsOnCompletion(t *testing.T) {
	eng, v, _ := newViewer(t)
	var latency time.Duration
	v.OnFirstBlock = func(l time.Duration) { latency = l }
	v.Begin(42, 0, 0, 2)
	// First block arrives as pieces completing at t=2s; second block
	// completes at t=3s. Neither should be counted lost.
	for p := int8(0); p < 4; p++ {
		p := p
		eng.At(sim.Time(1250*time.Millisecond)+sim.Time(p)*sim.Time(250*time.Millisecond), func() {
			v.DeliverBlock(netsim.BlockDelivery{
				Viewer: v.ID, Instance: 42, PlaySeq: 0, Part: p, Parts: 4,
				Mirror: true, LastByte: eng.Now(),
			})
		})
	}
	eng.At(sim.Time(3*time.Second), func() { deliver(v, 1, 1, 1, eng.Now()) })
	eng.Run()
	st := v.Stats()
	if st.BlocksOK != 2 || st.BlocksLost != 0 {
		t.Fatalf("stats %+v", st)
	}
	if latency != 2*time.Second {
		t.Fatalf("latency %v, want anchor at block completion", latency)
	}
}

func TestFirstBlockLostEntirelyStillDetected(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 0, 0, 3)
	// Blocks 1 and 2 arrive; block 0 never does.
	eng.At(sim.Time(2*time.Second), func() { deliver(v, 1, 1, 1, eng.Now()) })
	eng.At(sim.Time(3*time.Second), func() { deliver(v, 2, 1, 1, eng.Now()) })
	eng.Run()
	st := v.Stats()
	if st.BlocksLost != 1 || st.BlocksOK != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStaleInstanceIgnored(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 0, 0, 2)
	v.End()
	v.Begin(43, 0, 0, 2)
	eng.At(sim.Time(time.Second), func() {
		v.DeliverBlock(netsim.BlockDelivery{Viewer: v.ID, Instance: 42, PlaySeq: 0, Parts: 1, LastByte: eng.Now()})
	})
	eng.RunFor(5 * time.Second)
	if st := v.Stats(); st.PiecesSeen != 0 {
		t.Fatalf("stale delivery accepted: %+v", st)
	}
}

func TestMachineOverloadDrops(t *testing.T) {
	eng := sim.New(1)
	m := NewMachine(2, 1.0, rand.New(rand.NewSource(3))) // always drop when over
	loss := &metrics.LossLog{}
	v := New(1, clock.Sim{Eng: eng}, bp, 500*time.Millisecond, m, loss)
	v.Begin(42, 0, 0, 1)
	m.Attach()
	m.Attach() // 3 streams on a 2-stream machine
	eng.At(sim.Time(time.Second), func() { deliver(v, 0, 1, 1, eng.Now()) })
	eng.Run()
	if st := v.Stats(); st.PiecesSeen != 0 {
		t.Fatal("overloaded machine should have dropped the block")
	}
	if m.Streams() != 3 {
		t.Fatalf("streams %d", m.Streams())
	}
	m.Detach()
	v.End() // also detaches
	if m.Streams() != 1 {
		t.Fatalf("streams after detach %d", m.Streams())
	}
}

func TestMachineUnderCapacityNeverDrops(t *testing.T) {
	m := NewMachine(5, 1.0, rand.New(rand.NewSource(4)))
	m.Attach()
	for i := 0; i < 100; i++ {
		if m.drops() {
			t.Fatal("dropped under capacity")
		}
	}
}

func TestWrongDataDetected(t *testing.T) {
	eng, v, _ := newViewer(t)
	v.Begin(42, 3, 10, 2) // file 3 from block 10
	// Correct block for playseq 0 is file 3 block 10.
	eng.At(sim.Time(time.Second), func() {
		v.DeliverBlock(netsim.BlockDelivery{
			Viewer: v.ID, Instance: 42, File: 3, Block: 10, PlaySeq: 0,
			Parts: 1, LastByte: eng.Now(),
		})
	})
	// Wrong file, then wrong block, for playseq 1.
	eng.At(sim.Time(2*time.Second), func() {
		v.DeliverBlock(netsim.BlockDelivery{
			Viewer: v.ID, Instance: 42, File: 4, Block: 11, PlaySeq: 1,
			Parts: 1, LastByte: eng.Now(),
		})
		v.DeliverBlock(netsim.BlockDelivery{
			Viewer: v.ID, Instance: 42, File: 3, Block: 12, PlaySeq: 1,
			Parts: 1, LastByte: eng.Now(),
		})
	})
	eng.Run()
	st := v.Stats()
	if st.WrongData != 2 {
		t.Fatalf("wrong-data count %d, want 2", st.WrongData)
	}
	// The corrupt deliveries do not satisfy the deadline: block 1 lost.
	if st.BlocksOK != 1 || st.BlocksLost != 1 {
		t.Fatalf("stats %+v", st)
	}
}
