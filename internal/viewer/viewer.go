// Package viewer implements Tiger's verification clients. Like the
// paper's measurement client (§5), a viewer renders nothing: it checks
// that every expected block arrives by its deadline, reports losses, and
// measures startup latency (the Figure 10 metric).
package viewer

import (
	"math/bits"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

// Machine models one client computer receiving multiple streams. The
// paper's client machines handled 15-25 simultaneous streams; beyond
// capacity they occasionally dropped blocks, which is where the
// non-failed test's 8 client-reported losses came from (§5).
type Machine struct {
	Capacity int
	DropProb float64 // per-block drop probability while over capacity
	streams  int
	rng      *rand.Rand
}

// NewMachine creates a client machine model.
func NewMachine(capacity int, dropProb float64, rng *rand.Rand) *Machine {
	return &Machine{Capacity: capacity, DropProb: dropProb, rng: rng}
}

// Attach registers one more stream on the machine.
func (m *Machine) Attach() { m.streams++ }

// Detach removes a stream.
func (m *Machine) Detach() {
	if m.streams > 0 {
		m.streams--
	}
}

// Streams returns the number of attached streams.
func (m *Machine) Streams() int { return m.streams }

// drops reports whether an arriving block is lost to client overload.
func (m *Machine) drops() bool {
	return m.Capacity > 0 && m.streams > m.Capacity && m.rng.Float64() < m.DropProb
}

// Stats counts what one viewer observed.
type Stats struct {
	BlocksOK     int64
	BlocksLost   int64 // expected but missing or incomplete at deadline
	PiecesSeen   int64
	MirrorBlocks int64 // blocks assembled from declustered pieces
	WrongData    int64 // deliveries carrying the wrong file or block
}

// Viewer consumes one stream and verifies its timeliness.
type Viewer struct {
	ID  msg.ViewerID
	clk clock.Clock

	blockPlay time.Duration
	slack     time.Duration

	machine *Machine
	loss    *metrics.LossLog

	instance    msg.InstanceID
	file        msg.FileID
	startBlock  int32
	requested   sim.Time
	firstByteAt sim.Time
	gotFirst    bool
	totalBlocks int32 // blocks this play will deliver

	nextCheck int32
	received  map[int32]partState
	maxSeq    int32 // highest play sequence with any delivery (-1: none)

	stats Stats

	consecLost int32

	// OnFirstBlock reports startup latency: request to last byte of the
	// first block, the paper's Figure 10 quantity.
	OnFirstBlock func(latency time.Duration)
	// OnDone fires when the final block's deadline has passed (end of
	// file).
	OnDone func()
	// StallThreshold and OnStalled model a real client giving up: after
	// StallThreshold consecutive lost blocks, OnStalled fires once (the
	// client would re-request the stream). Zero disables it.
	StallThreshold int32
	OnStalled      func()
	// OnTimedDelivery reports each verified delivery's margin against
	// the block's play deadline (positive slack is early arrival). It
	// fires only once the timeline is anchored by the first block.
	OnTimedDelivery func(d netsim.BlockDelivery, slack time.Duration)
}

// partState tracks one play sequence's deliveries. A hedged or
// split-brain-healed send can deliver BOTH the full primary block and
// some mirror pieces for the same sequence, so the two copies are
// tracked independently: the primary completes the block by itself, and
// pieces complete it only when every distinct piece index is present
// (the mask defends against duplicate pieces masquerading as coverage).
// Decluster factors above 32 are not supported by the verification
// client.
type partState struct {
	primary bool
	need    int8
	mask    uint32
}

func (p partState) complete() bool {
	return p.primary || (p.need > 0 && bits.OnesCount32(p.mask) >= int(p.need))
}

// New creates a viewer. slack is the grace period after a block's
// nominal arrival time before it is declared lost.
func New(id msg.ViewerID, clk clock.Clock, blockPlay, slack time.Duration, machine *Machine, loss *metrics.LossLog) *Viewer {
	return &Viewer{
		ID:        id,
		clk:       clk,
		blockPlay: blockPlay,
		slack:     slack,
		machine:   machine,
		loss:      loss,
		received:  make(map[int32]partState),
	}
}

// Stats returns the viewer's cumulative observations.
func (v *Viewer) Stats() Stats { return v.stats }

// Begin arms the viewer for a new play of totalBlocks blocks of file
// starting at startBlock, under the given instance. Deliveries for
// other instances are ignored; deliveries for the wrong file or block
// are counted as corrupt (the paper's test-pattern check).
func (v *Viewer) Begin(inst msg.InstanceID, file msg.FileID, startBlock, totalBlocks int32) {
	v.instance = inst
	v.file = file
	v.startBlock = startBlock
	v.requested = v.clk.Now()
	v.gotFirst = false
	v.totalBlocks = totalBlocks
	v.maxSeq = -1
	v.nextCheck = 0
	v.consecLost = 0
	v.received = make(map[int32]partState)
	if v.machine != nil {
		v.machine.Attach()
	}
}

// End detaches the viewer from its machine (stop or finished).
func (v *Viewer) End() {
	if v.machine != nil {
		v.machine.Detach()
	}
	v.instance = 0
}

// ResumePoint returns the file block the play has verified up to: the
// start block plus the first play sequence whose deadline has not yet
// been checked. A stream parked by the degradation governor re-admits
// from here, so the viewer replays nothing it already verified and
// skips nothing it had still to receive.
func (v *Viewer) ResumePoint() int32 { return v.startBlock + v.nextCheck }

// InFinalWindow reports whether every block this play has left to
// receive is already within lead sequences of the end of file. Once the
// final viewer state is that close, cubs stop forwarding next-hop
// states (end of file, §4.1.2), so the stream's slot is free for
// re-insertion even though its last services and play-out are still
// running.
func (v *Viewer) InFinalWindow(lead int32) bool {
	return v.totalBlocks > 0 && v.maxSeq >= v.totalBlocks-1-lead
}

// DeliverBlock implements netsim.DataSink.
func (v *Viewer) DeliverBlock(d netsim.BlockDelivery) {
	if d.Instance != v.instance {
		return // stale delivery from a previous play
	}
	if d.PlaySeq > v.maxSeq {
		v.maxSeq = d.PlaySeq
	}
	if v.machine != nil && v.machine.drops() {
		return // client overload: the block is gone (client-side loss)
	}
	v.stats.PiecesSeen++
	// Content check: play sequence k must carry block startBlock+k of
	// the requested file — the striping and schedule math end to end.
	if d.File != v.file || d.Block != v.startBlock+d.PlaySeq {
		v.stats.WrongData++
		return
	}
	ps := v.received[d.PlaySeq]
	if d.Parts <= 1 {
		ps.primary = true
	} else {
		ps.need = d.Parts
		ps.mask |= 1 << uint(d.Part)
	}
	v.received[d.PlaySeq] = ps
	// The timeline anchors on the completion of the first block — the
	// paper's client records "the receive time of a block to be when the
	// last byte of the block arrives". A mirror-served first block
	// completes with its final declustered piece. Never anchor on an
	// incomplete piece group: a lone declustered piece finishes its
	// transfer far sooner than a whole block would, so inferring the
	// timeline from it back-dates firstByteAt by nearly the difference
	// in transfer times and every on-time block thereafter is judged
	// late. If the anchoring block's remaining pieces never arrive, a
	// later complete block anchors instead and the hole is still
	// counted lost at its deadline.
	if !v.gotFirst && ps.complete() {
		// Anchor on the completed first block; if the first block was
		// lost entirely, infer the timeline from a later complete
		// delivery so the loss is still detected.
		v.gotFirst = true
		v.firstByteAt = d.LastByte.Add(-time.Duration(d.PlaySeq) * v.blockPlay)
		if v.OnFirstBlock != nil {
			v.OnFirstBlock(v.firstByteAt.Sub(v.requested))
		}
		v.scheduleCheck()
	}
	if v.OnTimedDelivery != nil && v.gotFirst {
		v.OnTimedDelivery(d, v.deadline(d.PlaySeq).Sub(d.LastByte))
	}
}

// deadline for play sequence k: nominal arrival plus slack. The first
// block's own arrival anchors the timeline, as the paper's client does.
func (v *Viewer) deadline(k int32) sim.Time {
	return v.firstByteAt.Add(time.Duration(k)*v.blockPlay + v.slack)
}

func (v *Viewer) scheduleCheck() {
	k := v.nextCheck
	inst := v.instance
	at := v.deadline(k)
	if now := v.clk.Now(); at < now {
		at = now // inferred timeline: the deadline already passed
	}
	v.clk.At(at, func() { v.check(k, inst) })
}

func (v *Viewer) check(k int32, inst msg.InstanceID) {
	if v.instance != inst {
		return // stopped or replaced meanwhile
	}
	ps, ok := v.received[k]
	delete(v.received, k)
	complete := ok && ps.complete()
	if complete {
		v.stats.BlocksOK++
		v.consecLost = 0
		if !ps.primary {
			v.stats.MirrorBlocks++
		}
	} else {
		v.stats.BlocksLost++
		v.consecLost++
		if v.loss != nil {
			v.loss.RecordClientMiss(v.clk.Now())
		}
		if v.StallThreshold > 0 && v.consecLost == v.StallThreshold && v.OnStalled != nil {
			v.OnStalled()
			return // the stall handler replaces this play
		}
	}
	v.nextCheck = k + 1
	if v.nextCheck >= v.totalBlocks {
		if v.OnDone != nil {
			v.OnDone()
		}
		return
	}
	v.scheduleCheck()
}
