package wire

import (
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"

	"tiger/internal/msg"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []msg.Message{
		&msg.Heartbeat{From: 3, Epoch: 9, Now: 42},
		&msg.ViewerState{Viewer: 1, Instance: 2, Slot: 3, Due: 4},
		&msg.Batch{Msgs: []msg.Message{&msg.Deschedule{Viewer: 5, Instance: 6, Slot: 7}}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round trip: %+v != %+v", want, got)
		}
	}
}

func TestReadMessageErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader([]byte{1, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	// Zero-length frame.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized frame length.
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0x7F})); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &msg.Heartbeat{From: 1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 200
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		for i := 0; i < n; i++ {
			m, err := conn.Recv()
			if err != nil {
				done <- err
				return
			}
			hb, ok := m.(*msg.Heartbeat)
			if !ok || hb.Epoch != int32(i) {
				done <- err
				return
			}
		}
		done <- nil
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(c)
	defer conn.Close()

	// Concurrent senders must interleave whole frames, never bytes.
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := 0
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				// Hold the ID lock across Send so epochs arrive ordered;
				// the concurrency still exercises Conn's write lock.
				err := conn.Send(&msg.Heartbeat{Epoch: int32(i)})
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// discardConn satisfies net.Conn for the write path only; Send must
// never touch the embedded nil Conn's other methods.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// TestSendAllocBudget pins the transport's steady-state allocation
// budget: once the connection's scratch buffer has grown to the frame
// size, Send must not allocate.
func TestSendAllocBudget(t *testing.T) {
	conn := NewConn(discardConn{})
	hb := &msg.Heartbeat{From: 1, Epoch: 2, Now: 3}
	if err := conn.Send(hb); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		if err := conn.Send(hb); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Conn.Send allocated %.1f/op on a warmed connection, want 0", a)
	}
}

// TestRecvBufferReuse checks that recycling the read scratch buffer can
// never corrupt an earlier decoded message: decoders must copy anything
// they keep out of the frame body.
func TestRecvBufferReuse(t *testing.T) {
	cl, sv := net.Pipe()
	defer cl.Close()
	go func() {
		conn := NewConn(sv)
		defer conn.Close()
		for i := 0; i < 2; i++ {
			payload := bytes.Repeat([]byte{byte('A' + i)}, 64)
			if err := conn.Send(&msg.BlockData{Block: int32(i), Bytes: 64, Payload: payload}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	conn := NewConn(cl)
	first, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // overwrites the read scratch
		t.Fatal(err)
	}
	bd := first.(*msg.BlockData)
	if !bytes.Equal(bd.Payload, bytes.Repeat([]byte{'A'}, 64)) {
		t.Fatal("first message's payload corrupted by scratch-buffer reuse")
	}
}
