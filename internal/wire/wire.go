// Package wire frames Tiger control messages for TCP transport: a
// 4-byte little-endian length prefix followed by the msg codec's
// encoding. Tiger uses TCP between cubs precisely because the insertion
// argument of §4.1.3 depends on in-order pairwise delivery.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"tiger/internal/msg"
)

// MaxFrame bounds a single frame; far above any batch the cubs produce,
// low enough to fail fast on stream corruption.
const MaxFrame = 16 << 20

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m msg.Message) error {
	body := msg.Encode(m)
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (msg.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return msg.Decode(body)
}

// Conn is a framed, write-locked connection. Reads are not locked; run
// them from a single reader goroutine.
//
// Both directions reuse per-connection scratch buffers, so steady-state
// sends and receives allocate nothing beyond the decoded message values:
// the write path encodes into wbuf under the write lock, and the read
// path reads frame bodies into rbuf, which is safe to recycle because
// the msg codec never retains the input buffer (every decoder copies
// what it keeps).
type Conn struct {
	c    net.Conn
	br   *bufio.Reader
	rbuf []byte // read scratch; single-reader, grows to the peak frame

	mu   sync.Mutex
	bw   *bufio.Writer
	wbuf []byte // write scratch, guarded by mu
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Send frames, writes, and flushes one message. Safe for concurrent use.
func (c *Conn) Send(m msg.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The frame header lives in the scratch buffer's first four bytes, so
	// header plus body go out in one Write with no per-send allocation (a
	// stack [4]byte would escape through the io.Writer interface).
	c.wbuf = append(c.wbuf[:0], 0, 0, 0, 0)
	c.wbuf = msg.AppendEncode(c.wbuf, m)
	body := len(c.wbuf) - 4
	if body > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", body)
	}
	binary.LittleEndian.PutUint32(c.wbuf[:4], uint32(body))
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next message. Single-reader only.
func (c *Conn) Recv() (msg.Message, error) {
	if cap(c.rbuf) < 4 {
		c.rbuf = make([]byte, 512)
	}
	hdr := c.rbuf[:4]
	if _, err := io.ReadFull(c.br, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	if uint32(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err
	}
	return msg.Decode(body)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
