// Package wire frames Tiger control messages for TCP transport: a
// 4-byte little-endian length prefix followed by the msg codec's
// encoding. Tiger uses TCP between cubs precisely because the insertion
// argument of §4.1.3 depends on in-order pairwise delivery.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"tiger/internal/msg"
)

// MaxFrame bounds a single frame; far above any batch the cubs produce,
// low enough to fail fast on stream corruption.
const MaxFrame = 16 << 20

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m msg.Message) error {
	body := msg.Encode(m)
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMessage reads and decodes one framed message.
func ReadMessage(r io.Reader) (msg.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return msg.Decode(body)
}

// Conn is a framed, write-locked connection. Reads are not locked; run
// them from a single reader goroutine.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	mu sync.Mutex
	bw *bufio.Writer
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Send frames, writes, and flushes one message. Safe for concurrent use.
func (c *Conn) Send(m msg.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteMessage(c.bw, m); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next message. Single-reader only.
func (c *Conn) Recv() (msg.Message, error) {
	return ReadMessage(c.br)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr reports the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
