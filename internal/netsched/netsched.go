// Package netsched implements the two-dimensional network schedule used
// by multiple-bitrate Tiger systems (§3.2, §4.2). The x-axis is time
// (cyclic, numCubs block play times long), the y-axis bandwidth. Every
// entry is exactly one block play time long and as tall as its stream's
// bitrate; the sum of heights at any instant must not exceed a cub NIC's
// bandwidth.
//
// Entries pass through three states during the distributed insertion
// protocol: Tentative on the originating cub while it asks its successor,
// Reserved on the successor (capacity held, no work generated), and
// Committed once the originating cub confirms.
package netsched

import (
	"fmt"
	"time"

	"tiger/internal/msg"
)

// State tracks an entry through the two-phase insertion of §4.2.
type State int

const (
	Tentative State = iota
	Reserved
	Committed
)

func (s State) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Reserved:
		return "reserved"
	case Committed:
		return "committed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Entry is one stream's occupancy of the network schedule.
type Entry struct {
	Viewer   msg.ViewerID
	Instance msg.InstanceID
	Start    time.Duration // offset of the entry within the cycle
	Bitrate  int64         // bits per second (the entry's height)
	State    State
	// Trace marks the entry as causally traced: cubs carrying it record
	// insertion and service hops into their chain logs. The flag travels
	// with the reservation protocol, so the successor's side of the
	// two-phase insertion is traced under the same chain.
	Trace uint8
}

// Schedule is one cub's view of the network schedule. As with the disk
// schedule there is no global instance; each cub holds the region near
// its own pointer plus reservations it has granted.
type Schedule struct {
	cycle     time.Duration // numCubs × blockPlay
	blockPlay time.Duration
	capacity  int64 // bits/s of one NIC
	entries   map[msg.InstanceID]*Entry
}

// New creates an empty schedule. capacityBps is the NIC bandwidth in
// bits per second.
func New(numCubs int, blockPlay time.Duration, capacityBps int64) (*Schedule, error) {
	if numCubs < 1 || blockPlay <= 0 || capacityBps <= 0 {
		return nil, fmt.Errorf("netsched: bad geometry (%d cubs, %v play, %d bps)",
			numCubs, blockPlay, capacityBps)
	}
	return &Schedule{
		cycle:     time.Duration(numCubs) * blockPlay,
		blockPlay: blockPlay,
		capacity:  capacityBps,
		entries:   make(map[msg.InstanceID]*Entry),
	}, nil
}

// Cycle returns the schedule's total length.
func (s *Schedule) Cycle() time.Duration { return s.cycle }

// Capacity returns the NIC bandwidth modelled, in bits per second.
func (s *Schedule) Capacity() int64 { return s.capacity }

// BlockPlay returns the fixed entry length.
func (s *Schedule) BlockPlay() time.Duration { return s.blockPlay }

// Len returns the number of entries (any state).
func (s *Schedule) Len() int { return len(s.entries) }

func (s *Schedule) norm(t time.Duration) time.Duration {
	t %= s.cycle
	if t < 0 {
		t += s.cycle
	}
	return t
}

// overlap reports how the entry at start covers instant t (cyclically).
func (s *Schedule) covers(start, t time.Duration) bool {
	d := s.norm(t - start)
	return d < s.blockPlay
}

// OccupancyAt returns the summed bitrate of entries covering instant t.
func (s *Schedule) OccupancyAt(t time.Duration) int64 {
	t = s.norm(t)
	var sum int64
	for _, e := range s.entries {
		if s.covers(e.Start, t) {
			sum += e.Bitrate
		}
	}
	return sum
}

// FreeAt reports the spare bandwidth at instant t.
func (s *Schedule) FreeAt(t time.Duration) int64 {
	return s.capacity - s.OccupancyAt(t)
}

// CanInsert reports whether an entry of the given bitrate starting at
// start would keep occupancy within capacity over its entire extent. The
// check only needs to evaluate occupancy at start and at each existing
// entry boundary inside the window: occupancy is piecewise constant.
func (s *Schedule) CanInsert(start time.Duration, bitrate int64) bool {
	start = s.norm(start)
	if bitrate <= 0 || bitrate > s.capacity {
		return false
	}
	if s.OccupancyAt(start)+bitrate > s.capacity {
		return false
	}
	for _, e := range s.entries {
		// Boundaries where occupancy can step up inside our window are
		// existing entries' starts.
		d := s.norm(e.Start - start)
		if d > 0 && d < s.blockPlay {
			if s.OccupancyAt(e.Start)+bitrate > s.capacity {
				return false
			}
		}
	}
	return true
}

// Insert adds an entry, enforcing the capacity invariant.
func (s *Schedule) Insert(e Entry) error {
	if _, dup := s.entries[e.Instance]; dup {
		return fmt.Errorf("netsched: instance %d already present", e.Instance)
	}
	if !s.CanInsert(e.Start, e.Bitrate) {
		return fmt.Errorf("netsched: inserting %d bps at %v would exceed capacity %d",
			e.Bitrate, e.Start, s.capacity)
	}
	e.Start = s.norm(e.Start)
	s.entries[e.Instance] = &e
	return nil
}

// Get returns the entry for an instance, if present.
func (s *Schedule) Get(id msg.InstanceID) (Entry, bool) {
	e, ok := s.entries[id]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// SetState transitions an entry's state (reservation → committed, etc).
func (s *Schedule) SetState(id msg.InstanceID, st State) error {
	e, ok := s.entries[id]
	if !ok {
		return fmt.Errorf("netsched: no entry for instance %d", id)
	}
	e.State = st
	return nil
}

// Remove deletes an entry; removing an absent instance is a no-op, in
// keeping with deschedule idempotence.
func (s *Schedule) Remove(id msg.InstanceID) {
	delete(s.entries, id)
}

// Utilization returns occupied bandwidth-time as a fraction of
// capacity × cycle.
func (s *Schedule) Utilization() float64 {
	var area float64
	for _, e := range s.entries {
		area += float64(e.Bitrate) * s.blockPlay.Seconds()
	}
	return area / (float64(s.capacity) * s.cycle.Seconds())
}

// FindStart searches for the first start position >= after (cyclically,
// scanning at the given quantum) where an entry of the given bitrate
// fits. The paper found fragmentation acceptable only when starts are
// quantized to blockPlay/decluster (§3.2); passing a smaller quantum
// reproduces the fragmented case for the ablation. ok is false if no
// position in the whole cycle fits.
func (s *Schedule) FindStart(after time.Duration, bitrate int64, quantum time.Duration) (time.Duration, bool) {
	if quantum <= 0 {
		quantum = time.Millisecond
	}
	// Round 'after' up to the quantization grid.
	start := ((after + quantum - 1) / quantum) * quantum
	steps := int(s.cycle/quantum) + 1
	for i := 0; i < steps; i++ {
		pos := s.norm(start + time.Duration(i)*quantum)
		if s.CanInsert(pos, bitrate) {
			return pos, true
		}
	}
	return 0, false
}

// FragmentationLoss measures schedule-area that is free but unusable:
// the fraction of the cycle (at the given scan quantum) where free
// bandwidth is at least bitrate yet no blockPlay-long entry of that
// bitrate can start. This is the quantity Figure 4's discussion
// describes ("the free bandwidth ... is unusable, because any new entry
// would be one block play time long").
func (s *Schedule) FragmentationLoss(bitrate int64, quantum time.Duration) float64 {
	if quantum <= 0 {
		quantum = 10 * time.Millisecond
	}
	var freeSlots, wastedSlots int
	for pos := time.Duration(0); pos < s.cycle; pos += quantum {
		if s.FreeAt(pos) >= bitrate {
			freeSlots++
			if !s.CanInsert(pos, bitrate) {
				wastedSlots++
			}
		}
	}
	if freeSlots == 0 {
		return 0
	}
	return float64(wastedSlots) / float64(freeSlots)
}
