package netsched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiger/internal/msg"
)

const cap6M = 6_000_000 // the 6 Mbit/s NIC of Figure 4's example

func newSched(t *testing.T) *Schedule {
	t.Helper()
	s, err := New(3, time.Second, cap6M)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	for _, bad := range []struct {
		cubs int
		bp   time.Duration
		cap  int64
	}{{0, time.Second, 1}, {1, 0, 1}, {1, time.Second, 0}} {
		if _, err := New(bad.cubs, bad.bp, bad.cap); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestFigure4Example(t *testing.T) {
	// Figure 4: viewer 4 runs at 2 Mbit/s from time 0 to 1; viewer 0 at
	// 3 Mbit/s from 1.125 to 2.125, on a 3-cub, 1 s block play system.
	s := newSched(t)
	must := func(e Entry) {
		t.Helper()
		if err := s.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	must(Entry{Instance: 4, Start: 0, Bitrate: 2_000_000, State: Committed})
	must(Entry{Instance: 0, Start: 1125 * time.Millisecond, Bitrate: 3_000_000, State: Committed})
	must(Entry{Instance: 2, Start: 1500 * time.Millisecond, Bitrate: 2_000_000, State: Committed})

	if got := s.OccupancyAt(1200 * time.Millisecond); got != 3_000_000 {
		t.Fatalf("occupancy at 1.2s = %d", got)
	}
	if got := s.OccupancyAt(1600 * time.Millisecond); got != 5_000_000 {
		t.Fatalf("occupancy at 1.6s = %d", got)
	}
	if got := s.OccupancyAt(500 * time.Millisecond); got != 2_000_000 {
		t.Fatalf("occupancy at 0.5s = %d", got)
	}
	// The gap between viewer 4's end (1.0) and viewer 2's start (1.5) has
	// 6-3=3 Mbit/s free below capacity, but a 1 s entry of 3 Mbit/s
	// cannot start at 1.0 because it would overlap viewer 0 + viewer 2.
	if s.CanInsert(time.Second, 3_000_001) {
		t.Fatal("overcommit accepted")
	}
}

func TestCapacityInvariant(t *testing.T) {
	s := newSched(t)
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(Entry{Instance: 2, Start: 500 * time.Millisecond, Bitrate: 1}); err == nil {
		t.Fatal("capacity exceeded")
	}
	// But an entry in the untouched region fits.
	if err := s.Insert(Entry{Instance: 3, Start: time.Second, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicWraparound(t *testing.T) {
	s := newSched(t)
	// An entry near the cycle end wraps into the beginning.
	if err := s.Insert(Entry{Instance: 1, Start: 2500 * time.Millisecond, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	if got := s.OccupancyAt(200 * time.Millisecond); got != cap6M {
		t.Fatalf("wrapped occupancy %d", got)
	}
	if s.CanInsert(0, 1) {
		t.Fatal("overlap with wrapped entry accepted")
	}
}

func TestRemoveIsIdempotent(t *testing.T) {
	s := newSched(t)
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: 1000}); err != nil {
		t.Fatal(err)
	}
	s.Remove(1)
	s.Remove(1) // no-op
	if s.Len() != 0 {
		t.Fatal("entry survived removal")
	}
	if !s.CanInsert(0, cap6M) {
		t.Fatal("capacity not released")
	}
}

func TestDuplicateInstanceRejected(t *testing.T) {
	s := newSched(t)
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(Entry{Instance: 1, Start: time.Second, Bitrate: 1}); err == nil {
		t.Fatal("duplicate instance accepted")
	}
}

func TestStateTransitions(t *testing.T) {
	s := newSched(t)
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: 1, State: Reserved}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(1, Committed); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(1)
	if !ok || e.State != Committed {
		t.Fatalf("entry %+v ok=%v", e, ok)
	}
	if err := s.SetState(99, Committed); err == nil {
		t.Fatal("missing instance accepted")
	}
	for _, st := range []State{Tentative, Reserved, Committed, State(9)} {
		_ = st.String()
	}
}

func TestUtilization(t *testing.T) {
	s := newSched(t)
	if u := s.Utilization(); u != 0 {
		t.Fatalf("empty utilization %v", u)
	}
	// One full-rate entry for one of three seconds: 1/3 utilization.
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u < 0.33 || u > 0.34 {
		t.Fatalf("utilization %v, want ~1/3", u)
	}
}

func TestFindStartQuantized(t *testing.T) {
	s := newSched(t)
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	q := 250 * time.Millisecond // blockPlay/decluster with decluster 4
	start, ok := s.FindStart(0, cap6M, q)
	if !ok {
		t.Fatal("no start found")
	}
	if start != time.Second {
		t.Fatalf("found start %v, want 1s", start)
	}
	if start%q != 0 {
		t.Fatalf("start %v not on the quantization grid", start)
	}
}

func TestFindStartFullScheduleFails(t *testing.T) {
	s := newSched(t)
	for i := 0; i < 3; i++ {
		if err := s.Insert(Entry{Instance: msg.InstanceID(i), Start: time.Duration(i) * time.Second, Bitrate: cap6M}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.FindStart(0, 1, 250*time.Millisecond); ok {
		t.Fatal("found a start in a full schedule")
	}
}

// TestFragmentationQuantizationHelps reproduces §3.2's finding in miniature:
// with arbitrary start times fragmentation wastes free bandwidth, while
// quantizing starts to blockPlay/decluster admits more streams.
func TestFragmentationQuantizationHelps(t *testing.T) {
	admit := func(quantum time.Duration, rng *rand.Rand) int {
		s, err := New(8, time.Second, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 200; i++ {
			// Arrive at a random phase, then search from there.
			after := time.Duration(rng.Int63n(int64(s.Cycle())))
			if quantum > 0 {
				after = after / quantum * quantum
			}
			br := int64(1_000_000 + rng.Int63n(2_000_000))
			searchQ := quantum
			if searchQ <= 0 {
				searchQ = time.Millisecond
			}
			if start, ok := s.FindStart(after, br, searchQ); ok {
				if err := s.Insert(Entry{Instance: msg.InstanceID(i), Start: start, Bitrate: br, State: Committed}); err == nil {
					n++
					continue
				}
			}
			break
		}
		return n
	}
	quantized := admit(250*time.Millisecond, rand.New(rand.NewSource(11)))
	arbitrary := admit(0, rand.New(rand.NewSource(11)))
	t.Logf("admitted: quantized=%d arbitrary(1ms grid)=%d", quantized, arbitrary)
	if quantized < arbitrary {
		t.Fatalf("quantization should not admit fewer streams: %d vs %d", quantized, arbitrary)
	}
}

func TestFragmentationLossMeasure(t *testing.T) {
	s := newSched(t)
	// Occupy [0,1) fully and [1.5,2.5) fully: the half-second gap at
	// [1.0,1.5) is free but unusable for a 1 s entry.
	if err := s.Insert(Entry{Instance: 1, Start: 0, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(Entry{Instance: 2, Start: 1500 * time.Millisecond, Bitrate: cap6M}); err != nil {
		t.Fatal(err)
	}
	loss := s.FragmentationLoss(cap6M, 10*time.Millisecond)
	if loss <= 0.9 {
		// All free instants (the gap) are unusable: loss should be ~1.
		t.Fatalf("fragmentation loss %v, want ~1", loss)
	}
}

// Property: Insert never lets occupancy exceed capacity anywhere.
func TestQuickNeverOverCapacity(t *testing.T) {
	f := func(startsRaw []uint32, ratesRaw []uint16) bool {
		s, err := New(4, time.Second, 5_000_000)
		if err != nil {
			return false
		}
		n := len(startsRaw)
		if len(ratesRaw) < n {
			n = len(ratesRaw)
		}
		for i := 0; i < n; i++ {
			start := time.Duration(startsRaw[i]) % s.Cycle()
			rate := int64(ratesRaw[i]) * 100
			_ = s.Insert(Entry{Instance: msg.InstanceID(i), Start: start, Bitrate: rate})
		}
		for off := time.Duration(0); off < s.Cycle(); off += 50 * time.Millisecond {
			if s.OccupancyAt(off) > s.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
