package netsched

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

func filledSchedule(b *testing.B, n int) *Schedule {
	b.Helper()
	s, err := New(14, time.Second, 1_000_000_000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e := Entry{
			Instance: msg.InstanceID(i + 1),
			Start:    time.Duration(i*37%14000) * time.Millisecond,
			Bitrate:  2_000_000,
			State:    Committed,
		}
		if err := s.Insert(e); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkCanInsert200(b *testing.B) {
	s := filledSchedule(b, 200)
	for i := 0; i < b.N; i++ {
		s.CanInsert(time.Duration(i%14000)*time.Millisecond, 2_000_000)
	}
}

func BenchmarkOccupancyAt200(b *testing.B) {
	s := filledSchedule(b, 200)
	for i := 0; i < b.N; i++ {
		s.OccupancyAt(time.Duration(i%14000) * time.Millisecond)
	}
}

func BenchmarkFindStartQuantized(b *testing.B) {
	s := filledSchedule(b, 200)
	for i := 0; i < b.N; i++ {
		s.FindStart(time.Duration(i%14000)*time.Millisecond, 2_000_000, 250*time.Millisecond)
	}
}
