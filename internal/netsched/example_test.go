package netsched_test

import (
	"fmt"
	"time"

	"tiger/internal/netsched"
)

// Example reproduces Figure 4's network schedule: a 3-cub system with a
// 6 Mbit/s NIC, where the gap left between two entries is free
// bandwidth that no one-block-play-time entry can use (§3.2).
func Example() {
	s, _ := netsched.New(3, time.Second, 6_000_000)
	s.Insert(netsched.Entry{Instance: 4, Start: 0, Bitrate: 2_000_000})
	s.Insert(netsched.Entry{Instance: 0, Start: 1125 * time.Millisecond, Bitrate: 3_000_000})
	s.Insert(netsched.Entry{Instance: 2, Start: 1500 * time.Millisecond, Bitrate: 2_000_000})

	fmt.Printf("occupancy at 1.6s: %d bit/s\n", s.OccupancyAt(1600*time.Millisecond))
	fmt.Printf("3 Mbit/s entry fits at 1.0s: %v\n", s.CanInsert(time.Second, 3_000_001))
	start, ok := s.FindStart(0, 2_000_000, 250*time.Millisecond)
	fmt.Printf("first quantized start for 2 Mbit/s: %v (ok=%v)\n", start, ok)
	// Output:
	// occupancy at 1.6s: 5000000 bit/s
	// 3 Mbit/s entry fits at 1.0s: false
	// first quantized start for 2 Mbit/s: 0s (ok=true)
}
