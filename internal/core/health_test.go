package core

import (
	"testing"
	"time"

	"tiger/internal/disk"
	"tiger/internal/msg"
)

// healthRig builds a rig and starts n viewers spread over the files, so
// every disk — including the victim — sees steady read traffic.
func healthRig(t *testing.T, mutate func(*Config), n int) *rig {
	o := defaultRigOptions()
	o.mutate = mutate
	r := newRig(t, o)
	for v := 0; v < n; v++ {
		r.play(msg.ViewerID(v+1), msg.FileID(v%o.files), 0)
		r.run(700 * time.Millisecond)
	}
	r.run(5 * time.Second)
	return r
}

func (r *rig) victimDisk() *disk.Disk { return r.cubs[0].disks[0] }

// A drive serving every read far too slowly must walk the full state
// machine — suspected, hedged, quarantined through the fail-stop retire
// path — while its streams keep flowing off the declustered mirrors.
func TestFailSlowDiskQuarantined(t *testing.T) {
	r := healthRig(t, nil, 6)
	cub := r.cubs[0]
	if st := cub.DiskHealth(0); st != DiskHealthy {
		t.Fatalf("disk 0 %s before any fault", st)
	}

	r.victimDisk().SetFaults(disk.Faults{SlowFactor: 20})
	r.run(30 * time.Second)

	if st := cub.DiskHealth(0); st != DiskQuarantined {
		t.Fatalf("disk 0 %s after 30s at 20x, want quarantined", st)
	}
	s := cub.Stats()
	if s.DiskSuspects < 1 || s.DiskQuarantines != 1 {
		t.Fatalf("suspects=%d quarantines=%d", s.DiskSuspects, s.DiskQuarantines)
	}
	if s.HedgesIssued == 0 {
		t.Fatal("no hedges issued while suspected")
	}
	if cub.FailedDisks() != 1 || cub.QuarantinedDisks() != 1 {
		t.Fatalf("failed=%d quarantined=%d, want 1/1", cub.FailedDisks(), cub.QuarantinedDisks())
	}
	if ml := r.mirrorLoadFor(0); ml == 0 {
		t.Fatal("no mirror load covering the quarantined drive")
	}

	// Streams must keep flowing off the mirrors after the retire.
	before := r.got(1)
	r.run(10 * time.Second)
	if after := r.got(1); after <= before {
		t.Fatalf("viewer stalled after quarantine: %d then %d blocks", before, after)
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("%d state conflicts", tot.Conflicts)
	}
}

// A wedged drive completes nothing, so deadline misses are the only
// signal; they alone must drive the machine to quarantine.
func TestStuckDiskQuarantinedByMisses(t *testing.T) {
	r := healthRig(t, nil, 6)
	r.victimDisk().SetFaults(disk.Faults{Stuck: true})
	r.run(40 * time.Second)
	cub := r.cubs[0]
	if st := cub.DiskHealth(0); st != DiskQuarantined {
		t.Fatalf("stuck disk 0 %s after 40s, want quarantined", st)
	}
	if s := cub.Stats(); s.DiskQuarantines != 1 {
		t.Fatalf("quarantines=%d", s.DiskQuarantines)
	}
}

// Once the fault clears, ProbeGood consecutive in-budget probes must
// return the drive to service at an unchanged epoch.
func TestProbesUnquarantineHealedDisk(t *testing.T) {
	r := healthRig(t, func(cfg *Config) {
		cfg.Health.ProbeInterval = 2 * time.Second
		cfg.Health.ProbeGood = 2
	}, 6)
	cub := r.cubs[0]
	epoch := cub.Epoch()

	r.victimDisk().SetFaults(disk.Faults{SlowFactor: 20})
	r.run(30 * time.Second)
	if st := cub.DiskHealth(0); st != DiskQuarantined {
		t.Fatalf("disk 0 %s, want quarantined", st)
	}

	r.victimDisk().SetFaults(disk.Faults{})
	r.run(10 * time.Second)
	if st := cub.DiskHealth(0); st != DiskHealthy {
		t.Fatalf("disk 0 %s after heal + probes, want healthy", st)
	}
	s := cub.Stats()
	if s.DiskUnquarantines != 1 {
		t.Fatalf("unquarantines=%d", s.DiskUnquarantines)
	}
	if cub.FailedDisks() != 0 || cub.QuarantinedDisks() != 0 {
		t.Fatalf("failed=%d quarantined=%d after un-quarantine", cub.FailedDisks(), cub.QuarantinedDisks())
	}
	if cub.Epoch() != epoch {
		t.Fatalf("epoch moved %d → %d across quarantine cycle", epoch, cub.Epoch())
	}
}

// A brief latency wobble must not quarantine: the drive is suspected at
// most, then recovers once clean reads rebuild the slack estimate.
func TestTransientWobbleRecoversWithoutQuarantine(t *testing.T) {
	r := healthRig(t, nil, 6)
	cub := r.cubs[0]
	r.victimDisk().SetFaults(disk.Faults{SlowFactor: 6})
	r.run(3 * time.Second)
	r.victimDisk().SetFaults(disk.Faults{})
	r.run(40 * time.Second)
	if st := cub.DiskHealth(0); st != DiskHealthy {
		t.Fatalf("disk 0 %s after wobble cleared, want healthy", st)
	}
	if s := cub.Stats(); s.DiskQuarantines != 0 {
		t.Fatalf("wobble caused %d quarantines", s.DiskQuarantines)
	}
}
