package core

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/schedule"
	"tiger/internal/sim"
)

// TestServingDiskClosedForm cross-checks the O(1) servingDisk against
// the definitional argmin over every disk's next service time, across
// geometries from the paper's 56 disks up to warehouse scale.
func TestServingDiskClosedForm(t *testing.T) {
	geoms := []struct {
		disks, slots int
	}{
		{4, 43}, {14, 150}, {56, 602}, {56, 601}, {4000, 43000},
	}
	rng := rand.New(rand.NewSource(7))
	for _, g := range geoms {
		sp, err := schedule.NewParams(time.Second, g.disks, g.slots)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New(1)
		ctl := NewController(&Config{Sched: sp}, clock.Sim{Eng: eng}, nil)
		oracle := func(slot int32) int {
			now := clock.Sim{Eng: eng}.Now()
			best, bestT := 0, sim.Time(0)
			for d := 0; d < sp.NumDisks; d++ {
				st := sp.ServiceTime(d, slot, now)
				if d == 0 || st < bestT {
					best, bestT = d, st
				}
			}
			return best
		}
		for i := 0; i < 200; i++ {
			eng.RunUntil(sim.Time(rng.Int63n(int64(30 * 24 * time.Hour))))
			slot := int32(rng.Intn(g.slots))
			if got, want := ctl.servingDisk(slot), oracle(slot); got != want {
				t.Fatalf("disks=%d slots=%d slot=%d now=%v: servingDisk=%d oracle=%d",
					g.disks, g.slots, slot, eng.Now(), got, want)
			}
		}
	}
}

// TestGenSlotEncodingAtScale checks the gen-tagged slot encoding at its
// boundaries: the largest raw slot a warehouse-scale schedule produces
// (1000 cubs x 4 disks x ~10.75 streams/disk ~ 43k, far under the 24-bit
// field) and the largest generation the 7-bit field carries must round-
// trip without sign trouble or cross-field bleed.
func TestGenSlotEncodingAtScale(t *testing.T) {
	cases := []struct {
		gen int32
		raw int32
	}{
		{0, 0}, {0, 43000}, {1, 43000}, {63, rawSlotMask}, {127, 0}, {127, rawSlotMask},
	}
	for _, c := range cases {
		slot := genBase(c.gen) | c.raw
		if slot < 0 {
			t.Fatalf("gen=%d raw=%d: encoded slot %d is negative", c.gen, c.raw, slot)
		}
		if got := GenOf(slot); got != c.gen {
			t.Errorf("gen=%d raw=%d: GenOf=%d", c.gen, c.raw, got)
		}
		if got := RawSlot(slot); got != c.raw {
			t.Errorf("gen=%d raw=%d: RawSlot=%d", c.gen, c.raw, got)
		}
	}
	// The sentinel stays a sentinel.
	if GenOf(-1) != -1 || RawSlot(-1) != -1 {
		t.Errorf("negative slot sentinel broken: GenOf=%d RawSlot=%d", GenOf(-1), RawSlot(-1))
	}
}
