package core

import (
	"sort"

	"tiger/internal/msg"
)

// The degradation governor (DESIGN §16). Declustered mirroring survives
// any single cub loss, but a second death inside a dead cub's decluster
// span makes that cub's disks unservable from either copy. Without a
// policy, every stream whose play trajectory crosses those disks
// scatters deadline misses across the whole viewer population. The
// governor turns that into a deterministic, minimal shed: it computes
// the unservable disks straight from the layout, parks exactly the
// streams whose trajectories reach them before mirrors could recover
// (latest-admitted-first for determinism), and queues them for
// re-admission the moment a rejoin restores coverage. Everything runs
// at the controller — capacity policy is the one job the paper actually
// gives it — and is off unless Config.Governor.Enable is set.

// ParkTicket is the re-admission record of one parked stream.
type ParkTicket struct {
	Viewer      msg.ViewerID
	OldInstance msg.InstanceID
	File        msg.FileID
	ResumeBlock int32 // first block the re-admitted stream should play
	Bitrate     int32
	Fence       int32 // governor fence at park time
}

// GovernorStats is a snapshot of the governor's authoritative per-stream
// accounting. Cub-side CubStats count park/resume messages (two cubs see
// each order); these count streams.
type GovernorStats struct {
	Fence      int32
	Parked     int   // streams currently parked (awaiting re-admission)
	QueueLen   int   // parked streams queued for the next drain
	Parks      int64 // park decisions taken
	Resumes    int64 // parked streams re-admitted (or resolved at EOF)
	Acks       int64 // distinct instances acked by cubs
	Unservable int   // disks currently computed mirror-exhausted
}

type governorState struct {
	fence      int32
	down       map[msg.NodeID]bool // cubs the governor was told are down
	unservable map[int]bool        // disks unservable under the active layout
	// stateLost marks disks of cubs that died together with their ring
	// predecessor: the in-hand viewer states for those disks died with
	// the cub, and the predecessor's redelivery records died with it.
	// Streams whose play position is inside the state-lead window of
	// such a disk would each lose the in-hand block, so the crash-instant
	// sweep parks them too. Unlike unservable, this exposure does not
	// roll forward — states approaching the dead cub after the crash are
	// routed around it — so only the initial sweep consults it.
	stateLost map[int]bool
	parked    map[msg.InstanceID]*ParkTicket
	queue     []*ParkTicket // FIFO re-admission order
	acked     map[msg.InstanceID]bool
	ticking   bool // rolling park sweep scheduled
	draining  bool // re-admission drain scheduled
	stats     GovernorStats
}

func (g *governorState) init() {
	if g.down == nil {
		g.down = make(map[msg.NodeID]bool)
		g.unservable = make(map[int]bool)
		g.stateLost = make(map[int]bool)
		g.parked = make(map[msg.InstanceID]*ParkTicket)
		g.acked = make(map[msg.InstanceID]bool)
	}
}

// GovernorStats returns the governor's accounting snapshot.
func (c *Controller) GovernorStats() GovernorStats {
	s := c.gov.stats
	s.Fence = c.gov.fence
	s.Parked = len(c.gov.parked)
	s.QueueLen = len(c.gov.queue)
	s.Unservable = len(c.gov.unservable)
	return s
}

// NoteCubsDown tells the governor the listed cubs just died together —
// the harness calls it from CrashCub/CrashDomain, standing in for the
// out-of-band failure notification a real deployment's rack controller
// would deliver. It advises every live cub immediately (beating the
// deadman window), recomputes the unservable disk set, and parks every
// stream whose trajectory reaches it. No-op unless Governor.Enable.
func (c *Controller) NoteCubsDown(down []msg.NodeID) {
	if !c.cfg.Governor.Enable || len(down) == 0 {
		return
	}
	g := &c.gov
	g.init()
	changed := false
	for _, z := range down {
		if !g.down[z] {
			g.down[z] = true
			changed = true
		}
	}
	if !changed {
		return
	}
	g.fence++
	g.stats.Fence = g.fence

	acfg := c.gens[c.activeGen]
	adv := make([]msg.NodeID, 0, len(g.down))
	for z := range g.down {
		adv = append(adv, z)
	}
	sort.Slice(adv, func(i, j int) bool { return adv[i] < adv[j] })
	for i := 0; i < acfg.Layout.Cubs; i++ {
		z := msg.NodeID(i)
		if g.down[z] {
			continue
		}
		c.net.Send(msg.Controller, z, &msg.CubDown{Fence: g.fence, Down: adv})
	}

	c.recomputeUnservable()
	c.parkSweep(true)
	c.ensureGovTick()
}

// NoteCubUp tells the governor a previously-down cub restarted. When
// the unservable set empties, the re-admission queue drains after
// ResumeDelay — long enough for the rejoin handshake to finish.
func (c *Controller) NoteCubUp(z msg.NodeID) {
	if !c.cfg.Governor.Enable {
		return
	}
	g := &c.gov
	if g.down == nil || !g.down[z] {
		return
	}
	delete(g.down, z)
	c.recomputeUnservable()
	if len(g.unservable) == 0 && len(g.queue) > 0 && !g.draining {
		g.draining = true
		c.clk.After(c.cfg.Governor.ResumeDelay, c.drainParked)
	}
}

// recomputeUnservable rebuilds the unservable disk set from the
// governor's down set under the active generation's layout — closed-form
// arithmetic over O(Cubs·Decluster), no stream scan.
func (c *Controller) recomputeUnservable() {
	g := &c.gov
	acfg := c.gens[c.activeGen]
	for d := range g.unservable {
		delete(g.unservable, d)
	}
	for _, d := range acfg.Layout.UnservableDisks(func(z msg.NodeID) bool { return g.down[z] }) {
		g.unservable[d] = true
	}
	for d := range g.stateLost {
		delete(g.stateLost, d)
	}
	for z := range g.down {
		pred := msg.NodeID((int(z) - 1 + acfg.Layout.Cubs) % acfg.Layout.Cubs)
		if !g.down[pred] {
			continue
		}
		for _, d := range acfg.Layout.DisksOfCub(z) {
			g.stateLost[d] = true
		}
	}
	if o := c.obs; o != nil {
		o.unservable.Set(float64(len(g.unservable)))
	}
}

// parkSweep parks every active-generation stream whose play position
// reaches an unservable disk within the guard window; the crash-instant
// sweep (initial=true) additionally parks streams inside the state-lead
// window of a state-lost disk, whose in-hand block died with the cub
// pair. Candidates are parked latest-admitted-first: instance IDs are
// admission-ordered, so descending order makes the shed both
// deterministic and fair in the paper's sense — the viewers served
// longest keep their streams.
func (c *Controller) parkSweep(initial bool) {
	g := &c.gov
	if len(g.unservable) == 0 && !(initial && len(g.stateLost) > 0) {
		return
	}
	acfg := c.gens[c.activeGen]
	n := acfg.Sched.NumDisks
	look := c.cfg.Governor.GuardBlocks + c.cfg.Governor.Horizon
	// In-hand states run up to MaxVStateLead ahead of their due times,
	// so that is how far ahead of a state-lost disk a stream's position
	// can be while its next block there is already gone.
	lookState := int(c.cfg.MaxVStateLead/c.cfg.Sched.BlockPlay) + c.cfg.Governor.GuardBlocks
	var cands []msg.InstanceID
	for inst, rec := range c.plays {
		if rec.state == PlayDone || rec.gen != c.activeGen {
			// The governor shelters only the active generation; a
			// mid-restripe draining generation keeps the raw behaviour.
			continue
		}
		var d int
		if rec.state == PlayQueued {
			f, ok := acfg.Files[rec.file]
			if !ok {
				continue
			}
			d = acfg.Layout.PrimaryDisk(f, int(rec.startBlock))
		} else {
			d = c.servingDisk(rec.slot)
		}
		endangered := false
		for j := -1; j <= look && !endangered; j++ {
			endangered = g.unservable[((d+j)%n+n)%n]
		}
		if initial {
			for j := -1; j <= lookState && !endangered; j++ {
				endangered = g.stateLost[((d+j)%n+n)%n]
			}
		}
		if endangered {
			cands = append(cands, inst)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] > cands[j] })
	for _, inst := range cands {
		c.parkOne(inst)
	}
}

// parkOne sheds one stream: build its re-admission ticket (asking the
// harness for the viewer's exact position via OnParked), order the
// serving cub and its successor to scrub it, and retire the play record
// through the same bookkeeping a stop uses.
func (c *Controller) parkOne(inst msg.InstanceID) {
	g := &c.gov
	rec := c.plays[inst]
	if rec == nil || rec.state == PlayDone {
		return
	}
	t := &ParkTicket{
		Viewer:      rec.viewer,
		OldInstance: inst,
		File:        rec.file,
		ResumeBlock: rec.startBlock,
		Bitrate:     rec.bitrate,
		Fence:       g.fence,
	}
	if c.OnParked != nil {
		if file, rb, ok := c.OnParked(rec.viewer, inst); ok {
			t.File = file
			t.ResumeBlock = rb
		}
	}
	rcfg := c.gens[rec.gen]
	if rcfg == nil {
		rcfg = c.cfg
	}
	slot := rec.slot
	if rec.state == PlayQueued {
		slot = -1
	}
	// The scrub order goes to EVERY live cub, not just the serving cub
	// and its successor. A parked stream is often being served by one of
	// the cubs whose death triggered the park — a scrub addressed there
	// is lost with the cub, while the stream's mirror-chain states keep
	// circulating the ring, burning disk reads the degraded cluster does
	// not have. The park is idempotent (tombstoned per instance at each
	// cub) and park episodes are rare, so the broadcast is cheap. The
	// order carries the full re-admission ticket: every live cub retains
	// it until the matching Resume, so a controller takeover can
	// scavenge the parked set (scavenge.go).
	p := msg.Park{Viewer: rec.viewer, Instance: inst, Slot: slot, Fence: g.fence,
		File: t.File, ResumeBlock: t.ResumeBlock, Bitrate: t.Bitrate, Ctl: c.ctlEpoch}
	for i := 0; i < rcfg.Layout.Cubs; i++ {
		z := msg.NodeID(i)
		if g.down[z] {
			continue
		}
		pi := p
		c.net.Send(msg.Controller, z, &pi)
	}
	g.parked[inst] = t
	g.queue = append(g.queue, t)
	g.stats.Parks++
	if o := c.obs; o != nil {
		o.parksTotal.Inc()
		o.parked.Set(float64(len(g.parked)))
	}
	c.finish(inst, rec)
}

// ensureGovTick keeps a rolling park sweep running one tick apart while
// any disk is unservable: streams advance one disk per block play, so
// new trajectories enter the danger window every tick.
func (c *Controller) ensureGovTick() {
	g := &c.gov
	if g.ticking || len(g.unservable) == 0 {
		return
	}
	g.ticking = true
	tick := c.cfg.Governor.Tick
	if tick == 0 {
		tick = c.cfg.Sched.BlockPlay
	}
	c.clk.After(tick, c.govTick)
}

func (c *Controller) govTick() {
	c.gov.ticking = false
	if c.down || len(c.gov.unservable) == 0 {
		return
	}
	c.parkSweep(false)
	c.ensureGovTick()
}

// drainParked re-admits parked streams in FIFO order through the
// harness's OnReadmit (which runs an ordinary Play and returns the new
// instance). Re-admissions are paced: at most a batch proportional to
// the array width per block play, so a mass resume is a steady trickle
// of ordinary starts rather than a flash crowd — re-inserting hundreds
// of streams in one schedule beat floods the insertion and state-
// forwarding paths of a cluster already running at rated load. An
// admission refusal re-schedules the drain; a capacity loss in the
// meantime aborts it until the next NoteCubUp.
func (c *Controller) drainParked() {
	g := &c.gov
	g.draining = false
	if c.down || len(g.unservable) != 0 {
		return
	}
	batch := c.cfg.Sched.NumDisks / 4
	if batch < 1 {
		batch = 1
	}
	for len(g.queue) > 0 && batch > 0 {
		batch--
		t := g.queue[0]
		var newInst msg.InstanceID
		ok := true
		if c.OnReadmit != nil {
			newInst, ok = c.OnReadmit(*t)
		}
		if !ok {
			// Admission refused — capacity is back but the schedule is
			// still shuffling. Retry the whole remainder later.
			g.draining = true
			c.clk.After(c.cfg.Governor.ResumeDelay, c.drainParked)
			return
		}
		g.queue = g.queue[1:]
		delete(g.parked, t.OldInstance)
		delete(g.acked, t.OldInstance)
		g.stats.Resumes++
		if o := c.obs; o != nil {
			o.resumesTotal.Inc()
			o.parked.Set(float64(len(g.parked)))
		}
		if newInst != 0 {
			if rec := c.plays[newInst]; rec != nil {
				rcfg := c.gens[rec.gen]
				if rcfg == nil {
					rcfg = c.cfg
				}
				// The resume notice is broadcast to every live cub, matching
				// the Park broadcast: each cub that retained the ticket must
				// clear it, or a later controller takeover would scavenge the
				// stale ticket and resume the stream a second time.
				r := msg.Resume{Viewer: t.Viewer, OldInstance: t.OldInstance,
					NewInstance: newInst, Fence: g.fence, Ctl: c.ctlEpoch}
				for i := 0; i < rcfg.Layout.Cubs; i++ {
					z := msg.NodeID(i)
					if g.down[z] {
						continue
					}
					ri := r
					c.net.Send(msg.Controller, z, &ri)
				}
			}
		}
	}
	if len(g.queue) > 0 {
		// More to re-admit: continue one block play from now.
		g.draining = true
		tick := c.cfg.Governor.Tick
		if tick == 0 {
			tick = c.cfg.Sched.BlockPlay
		}
		c.clk.After(tick, c.drainParked)
	}
}

// onParkAck counts the first cub acknowledgement per parked instance.
func (c *Controller) onParkAck(a *msg.ParkAck) {
	g := &c.gov
	if g.parked == nil {
		return
	}
	if _, parked := g.parked[a.Instance]; !parked {
		return
	}
	if g.acked[a.Instance] {
		return
	}
	g.acked[a.Instance] = true
	g.stats.Acks++
}
