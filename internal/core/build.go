package core

import (
	"fmt"
	"math/rand"
	"time"

	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/schedule"
)

// SystemSpec is the convenient way to describe a whole Tiger system; it
// expands into a validated Config with capacity-planned schedule
// geometry and a synthetic striped content set.
type SystemSpec struct {
	Cubs        int
	DisksPerCub int
	Decluster   int

	BlockPlay time.Duration
	BlockSize int64
	Bitrate   int64

	NumFiles   int
	FileBlocks int
	FileSeed   int64 // start-disk placement seed

	DiskParams disk.Params
	CPUModel   metrics.CPUModel
}

// BuildConfig expands a SystemSpec into a Config.
func BuildConfig(s SystemSpec) (*Config, error) {
	if s.BlockPlay <= 0 {
		s.BlockPlay = time.Second
	}
	if s.BlockSize <= 0 {
		if s.Bitrate <= 0 {
			return nil, fmt.Errorf("core: spec needs a block size or bitrate")
		}
		s.BlockSize = s.Bitrate * int64(s.BlockPlay) / int64(8*time.Second)
	}
	if s.Bitrate <= 0 {
		s.Bitrate = s.BlockSize * 8 * int64(time.Second) / int64(s.BlockPlay)
	}
	if s.DiskParams.OuterRate == 0 {
		s.DiskParams = disk.DefaultParams()
	}
	if s.CPUModel.PerDataByte == 0 {
		s.CPUModel = metrics.DefaultCPUModel()
	}
	lay := layout.Config{Cubs: s.Cubs, DisksPerCub: s.DisksPerCub, Decluster: s.Decluster}
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	capa := disk.PlanCapacity(s.DiskParams, lay.NumDisks(), s.BlockSize, s.BlockPlay, s.Decluster)
	if capa.Streams < 1 {
		return nil, fmt.Errorf("core: configuration has no stream capacity")
	}
	sp, err := schedule.NewParams(s.BlockPlay, lay.NumDisks(), capa.Streams)
	if err != nil {
		return nil, err
	}
	files := make(map[msg.FileID]layout.File, s.NumFiles)
	rng := rand.New(rand.NewSource(s.FileSeed + 1))
	for i := 0; i < s.NumFiles; i++ {
		files[msg.FileID(i)] = layout.File{
			ID:        msg.FileID(i),
			StartDisk: rng.Intn(lay.NumDisks()),
			Blocks:    s.FileBlocks,
			Bitrate:   s.Bitrate,
			BlockSize: s.BlockSize,
		}
	}
	cfg := &Config{
		Layout:     lay,
		Sched:      sp,
		BlockSize:  s.BlockSize,
		DiskParams: s.DiskParams,
		CPUModel:   s.CPUModel,
		Files:      files,
	}
	cfg.DefaultTimings()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Capacity recomputes the planned stream capacity of a built config.
func (c *Config) Capacity() disk.Capacity {
	return disk.PlanCapacity(c.DiskParams, c.Layout.NumDisks(), c.BlockSize,
		c.Sched.BlockPlay, c.Layout.Decluster)
}
