package core

import (
	"testing"

	"tiger/internal/msg"
	"tiger/internal/trace"
)

// TestTraceHopOffPathAllocs pins the tentpole's cost claim: with causal
// tracing off the hot path pays a single nil test — zero allocations,
// no clock read — whether tracing is globally detached (nil chain log)
// or the block simply isn't traced (flag clear).
func TestTraceHopOffPathAllocs(t *testing.T) {
	// Globally off: no chain log attached. clk is nil, so any clock
	// read past the guard would panic, not just allocate.
	detached := &Cub{}
	traced := msg.ViewerState{Instance: 1, Block: 2, Trace: 1}
	if a := testing.AllocsPerRun(1000, func() {
		detached.traceHop(&traced, trace.HopSend, -1)
	}); a != 0 {
		t.Fatalf("detached traceHop allocates %.1f/op, want 0", a)
	}

	// Globally on, block untraced: the common case in a traced run,
	// since only flagged streams record.
	attached := &Cub{ctrace: trace.NewChainLog(8, 8)}
	untraced := msg.ViewerState{Instance: 1, Block: 2}
	if a := testing.AllocsPerRun(1000, func() {
		attached.traceHop(&untraced, trace.HopSend, -1)
	}); a != 0 {
		t.Fatalf("untraced-block traceHop allocates %.1f/op, want 0", a)
	}
	if attached.ctrace.Len() != 0 {
		t.Fatalf("untraced block was recorded: %d chains", attached.ctrace.Len())
	}
}
