package core

import (
	"time"

	"tiger/internal/msg"
	"tiger/internal/obs"
	"tiger/internal/schedule"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// This file implements slot insertion (§4.1.3): queued start requests,
// the per-disk ownership scan, and the insertion itself, which is safe
// without global coordination because a cub may insert only into an
// empty slot it currently owns. Queues and scans are keyed by
// (generation, generation-local disk) — during an elastic restripe two
// schedules coexist, and a disk owns slots on both rings.

// --- start-play handling (§4.1.3) ---

func (c *Cub) onStartPlay(sp msg.StartPlay) {
	ap := c.activePlane()
	if ap == nil || ap.index == nil {
		return // not a participant of the admitting generation
	}
	f, ok := ap.cfg.Files[sp.File]
	if !ok || !c.fileHasBlock(sp.File, sp.StartBlock) {
		return // unknown content; the controller validated, so ignore
	}
	d := ap.cfg.Layout.PrimaryDisk(f, int(sp.StartBlock))
	req := &startReq{sp: sp, dkey: genDiskKey(c.activeGen, d), enqueued: c.clk.Now()}
	if !sp.Primary {
		if _, done := c.cancelledStart[sp.Instance]; done {
			return
		}
		// If the primary target is already known dead and we are its
		// acting successor, take the request immediately; otherwise hold
		// the redundant copy in case it dies before inserting (§4.1.3).
		tc := ap.cfg.Layout.CubOfDisk(d)
		if c.believedDead[tc] && c.firstLivingSuccessorOfIn(ap.cfg.Layout, tc) {
			c.enqueueStart(req)
			c.stats.RedundantRuns++
			return
		}
		c.redundantStart[sp.Instance] = req
		return
	}
	c.enqueueStart(req)
}

func (c *Cub) enqueueStart(req *startReq) {
	// Idempotence guard: a duplicated StartPlay (an at-least-once
	// transport retrying across a blip, or a redundant copy racing its
	// promotion) must not enqueue the same instance twice — two inserts
	// of one instance into two slots would be a real double-schedule.
	inst := req.sp.Instance
	if _, dup := c.enqueuedStart[inst]; dup {
		c.stats.StartsDup++
		if o := c.obs; o != nil {
			o.startsDup.Inc()
		}
		return
	}
	c.enqueuedStart[inst] = c.clk.Now()
	c.clk.After(time.Minute, func() { delete(c.enqueuedStart, inst) })
	c.queue[req.dkey] = append(c.queue[req.dkey], req)
	c.queueLen++
	if o := c.obs; o != nil {
		o.queueLen.Set(float64(c.queueLen))
	}
	c.ensureScan(req.dkey)
}

func (c *Cub) onStartAck(a msg.StartAck) {
	delete(c.redundantStart, a.Instance)
	c.cancelledStart[a.Instance] = c.clk.Now()
	// Lazy GC of the tombstone.
	c.clk.After(time.Minute, func() { delete(c.cancelledStart, a.Instance) })
}

// ensureScan starts the ownership scan loop for a (generation, disk)
// with queued starts. The loop wakes at each ownership-window opening
// on that generation's ring — the only moments this cub may insert into
// a slot (§4.1.3) — and stops when the queue drains.
func (c *Cub) ensureScan(k int32) {
	if c.scanning[k] {
		return
	}
	c.scanning[k] = true
	c.scanTick(k)
}

func (c *Cub) scanTick(k int32) {
	if len(c.queue[k]) == 0 {
		c.scanning[k] = false
		return
	}
	p := c.planes[GenOf(k)]
	if p == nil {
		// The generation was dropped with starts still queued (it drained
		// under protest); they can never insert.
		c.queueLen -= len(c.queue[k])
		delete(c.queue, k)
		c.scanning[k] = false
		return
	}
	gd := int(RawSlot(k))
	now := c.clk.Now()
	slot, due, ok := p.cfg.Sched.SlotUnderOwnership(gd, now)
	if ok {
		c.tryInsert(k, genBase(p.gen)|slot, due)
	}
	// Wake at the next window opening.
	next := nextWindowOpen(p.cfg.Sched, gd, now)
	c.clk.At(next, func() { c.scanTick(k) })
}

// nextWindowOpen returns the next time disk d's pointer enters a new
// slot's ownership window under schedule p.
func nextWindowOpen(p schedule.Params, d int, now sim.Time) sim.Time {
	off := int64(p.PointerOffset(d, now))
	target := (off + int64(p.SchedLead)) % int64(p.CycleLen())
	bs := int64(p.BlockService)
	into := target % bs
	wait := bs - into
	return now.Add(time.Duration(wait) + time.Nanosecond)
}

// tryInsert inserts the head queued viewer into slot if our view shows
// it free. "A cub may insert into a slot if and only if it owns that
// slot and the slot is empty" (§4.1.3). slot carries the generation in
// its high bits; k is the queue being drained.
func (c *Cub) tryInsert(k, slot int32, due sim.Time) {
	if c.slotOcc[slot] != 0 {
		return
	}
	q := c.queue[k]
	var req *startReq
	for len(q) > 0 {
		head := q[0]
		q = q[1:]
		c.queueLen--
		if _, cancelled := c.cancelledStart[head.sp.Instance]; cancelled {
			continue
		}
		req = head
		break
	}
	c.queue[k] = q
	if req == nil {
		return
	}
	cfg := c.planes[GenOf(k)].cfg
	gd := int(RawSlot(k))

	vs := msg.ViewerState{
		Viewer:   req.sp.Viewer,
		Instance: req.sp.Instance,
		Addr:     req.sp.Addr,
		File:     req.sp.File,
		Block:    req.sp.StartBlock,
		Slot:     slot,
		PlaySeq:  0,
		Due:      int64(due),
		Bitrate:  req.sp.Bitrate,
		OrigDisk: int32(gd),
		Trace:    req.sp.Trace,
	}
	c.stats.Inserts++
	if o := c.obs; o != nil {
		now := c.clk.Now()
		o.inserts.Inc()
		o.startWait.Observe(now.Sub(req.enqueued).Seconds())
		o.spans.Observe(obs.StageInsert, due, now)
		o.queueLen.Set(float64(c.QueueLen()))
	}
	c.traceHop(&vs, trace.HopInsert, int32(gd))
	if c.hooks.OnInsert != nil {
		c.hooks.OnInsert(c.id, slot, vs.Instance, due)
	}

	if cfg.Layout.CubOfDisk(gd) != c.id || c.failedDisks[c.nativeDisk(cfg.Layout, gd)] {
		// Proxy insertion for a dead predecessor's disk, or our own dead
		// drive: the first block is served from its mirrors.
		c.createMirrors(vs, gd)
	} else {
		c.acceptPrimary(vs, gd)
		if e, ok := c.entries[entryKey{slot, -1, vs.Due}]; ok {
			e.forwarded = true // forwarded inline below; avoid a duplicate
		}
	}
	// Tell the next owner of the slot about the assignment right away:
	// there is at least blockPlay−ownDur for this to arrive (§4.1.3).
	c.forwardEntryNow(vs)
	c.flushForwards()

	ack := &msg.StartAck{Viewer: vs.Viewer, Instance: vs.Instance, Slot: slot, By: c.id}
	c.net.Send(c.id, msg.Controller, ack)
	if s1, ok := c.nthLivingSuccessorIn(cfg.Layout, 1); ok {
		c.net.Send(c.id, s1, ack)
	}
	if len(c.queue[k]) > 0 {
		c.ensureScan(k)
	}
}
