package core

import (
	"errors"
	"sort"
	"time"

	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

// Controller failover (DESIGN §17). The paper's argument that the
// controller has "almost nothing to do" has a sharp corollary: it also
// has almost nothing to *lose*. The distributed schedule — the viewer
// states circulating the cub ring, the queued starts, the parked-stream
// tickets — IS the system of record, so a dead controller is replaced by
// asking the cubs what they are doing:
//
//  1. Fencing. Every controller-originated order (StartPlay, Park,
//     Resume, MoveOrder) carries the incarnation's epoch. A takeover
//     bumps the epoch and announces it in the ScavengeReq broadcast, so
//     each cub raises its high-water mark and the dead incarnation's
//     in-flight orders die on arrival (Cub.staleCtl).
//
//  2. Scavenging. Each cub answers with its inventory: one
//     representative (furthest-progress) viewer state per play instance
//     in its window — including starts still queued for a slot and
//     primaries it is covering from mirror pieces — plus the parked
//     re-admission tickets it retains and its governor-fence high-water
//     mark. The new incarnation folds the replies into a rebuilt plays
//     map, per-generation admission load, parked set and fence.
//
//  3. Dedup. States are folded per instance (a stream appears in
//     several cubs' windows); parked tickets are deduped by instance
//     and dropped when the viewer already has a live play — the dead
//     incarnation resumed it and crashed before every cub saw the
//     Resume — so no stream is double-admitted and every parked stream
//     resumes exactly once.
//
// Cubs never stop serving: the schedule needs no controller to run, so
// every active stream plays through the outage untouched.

// ErrControllerDown is returned to a start request while the controller
// incarnation is crashed (a real deployment's connection refusal).
var ErrControllerDown = errors.New("controller: down")

// ErrScavenging is returned to a start request while a takeover
// scavenge is folding cub inventories; callers should retry after the
// scavenge window (one RTT, bounded by the deadman closeout).
var ErrScavenging = errors.New("controller: takeover scavenge in progress")

// Epoch returns the controller incarnation's epoch. It starts at 1 and
// bumps on every Restart, so any order stamped with an older epoch is
// provably from a dead incarnation.
func (c *Controller) Epoch() int32 { return c.ctlEpoch }

// Down reports whether the controller incarnation is crashed.
func (c *Controller) Down() bool { return c.down }

// Scavenging reports whether a takeover scavenge is still folding cub
// inventories; admission is refused while it is.
func (c *Controller) Scavenging() bool { return c.scavenging }

// Start begins the controller's periodic heartbeat broadcast, which is
// what lets cubs run a deadman for the controller itself. Idempotent;
// harnesses that never call it get the historical silent controller.
func (c *Controller) Start() {
	if c.started {
		return
	}
	c.started = true
	c.hbTick()
}

// allCubs returns the union of cub IDs across every installed
// generation — during a grow restripe the new generation's extra cubs
// must hear heartbeats and scavenge requests too. Cub IDs are dense per
// generation, so the union is 0..max-1.
func (c *Controller) allCubs() int {
	n := 0
	for _, g := range c.gens {
		if g.Layout.Cubs > n {
			n = g.Layout.Cubs
		}
	}
	return n
}

func (c *Controller) hbTick() {
	if c.down {
		return
	}
	now := c.clk.Now()
	hb := &msg.Heartbeat{From: msg.Controller, Epoch: c.ctlEpoch, Now: int64(now)}
	// Steady (jitter-free) delivery when the transport offers it: the
	// heartbeat is periodic background traffic, and drawing per-send
	// jitter from the simulation's shared randomness stream would
	// re-roll the alignment of every unrelated experiment just by
	// existing.
	send := c.net.Send
	if s, ok := c.net.(SteadySender); ok {
		send = s.SendSteady
	}
	for i := 0; i < c.allCubs(); i++ {
		send(msg.Controller, msg.NodeID(i), hb)
	}
	c.hbTimer = c.clk.After(c.cfg.HeartbeatInterval, c.hbTick)
}

// Crash makes the incarnation inert in place: timers stop, deliveries
// drop, and no further orders leave. The object survives because the
// harness holds the pointer (mirroring Cub.Restart's in-place model);
// everything an incarnation would lose is wiped by Restart.
func (c *Controller) Crash() {
	if c.down {
		return
	}
	c.down = true
	if c.hbTimer != nil {
		c.hbTimer.Stop()
		c.hbTimer = nil
	}
	if c.rs.tick != nil {
		c.rs.tick.Stop()
		c.rs.tick = nil
	}
	c.scavenging = false
	c.scavPending = nil
	c.scavParked = nil
}

// Restart brings up a new controller incarnation: bump the epoch, wipe
// every piece of volatile state, and broadcast a ScavengeReq so the
// cubs' inventories rebuild it. Installed generations and the active
// generation survive — they are configuration, known to every cub, not
// view. nextInstance is also kept: a production controller salts the
// instance space with its epoch so a new incarnation can never re-issue
// a live ID; the in-place restart models that by keeping the counter,
// and the fold still raises it past anything a cub reports.
func (c *Controller) Restart() {
	if !c.down {
		c.Crash()
	}
	c.down = false
	c.ctlEpoch++
	c.stats.Takeovers++
	c.plays = make(map[msg.InstanceID]*playRecord)
	c.active = 0
	c.genLoad = make(map[int32]int)
	c.rs = restriperState{}
	c.gov = governorState{}

	now := c.clk.Now()
	c.scavenging = true
	c.scavStart = now
	c.scavParked = make(map[msg.InstanceID]*ParkTicket)
	c.scavPending = make(map[msg.NodeID]bool)
	for i := 0; i < c.allCubs(); i++ {
		z := msg.NodeID(i)
		c.scavPending[z] = true
		c.net.Send(msg.Controller, z, &msg.ScavengeReq{Epoch: c.ctlEpoch})
	}
	if o := c.obs; o != nil {
		o.epoch.Set(float64(c.ctlEpoch))
		o.takeovers.Inc()
		o.active.Set(0)
	}
	// A cub that is itself dead never answers; close the fold after a
	// deadman timeout so the takeover clock always stops.
	ep := c.ctlEpoch
	c.clk.After(c.cfg.DeadmanTimeout, func() {
		if c.scavenging && c.ctlEpoch == ep {
			c.finishScavenge()
		}
	})
	c.started = true
	c.hbTick()
	if len(c.scavPending) == 0 {
		c.finishScavenge()
	}
}

// onScavengeReply folds one cub's inventory into the rebuilt state.
func (c *Controller) onScavengeReply(r *msg.ScavengeReply) {
	if !c.scavenging || r.ForEpoch != c.ctlEpoch {
		return // an answer to a previous incarnation's request
	}
	if !c.scavPending[r.From] {
		return // duplicate
	}
	delete(c.scavPending, r.From)
	c.stats.ScavengeReplies++
	if o := c.obs; o != nil {
		o.scavReplies.Inc()
	}
	if r.GovFence > c.gov.fence {
		c.gov.fence = r.GovFence
		c.gov.stats.Fence = r.GovFence
	}
	for i := range r.States {
		vs := &r.States[i]
		if vs.Instance > c.nextInstance {
			c.nextInstance = vs.Instance
		}
		// Due == 0 marks a start still queued for a slot; its Slot field
		// carries the gen-tagged primary disk, not a schedule slot.
		queued := vs.Due == 0
		rec := c.plays[vs.Instance]
		if rec == nil {
			gen := GenOf(vs.Slot)
			gcfg := c.gens[gen]
			if gcfg == nil {
				gen = c.activeGen
				gcfg = c.gens[gen]
			}
			rec = &playRecord{
				viewer:     vs.Viewer,
				file:       vs.File,
				startBlock: vs.Block,
				bitrate:    vs.Bitrate,
				slot:       -1,
				state:      PlayQueued,
				issued:     c.clk.Now(),
				gen:        gen,
			}
			if queued && gcfg != nil {
				rec.primary = gcfg.Layout.CubOfDisk(int(RawSlot(vs.Slot)) % gcfg.Sched.NumDisks)
			}
			c.plays[vs.Instance] = rec
			c.genLoad[gen]++
			c.stats.ScavengedPlays++
		}
		if !queued && rec.state == PlayQueued {
			rec.state = PlayActive
			rec.slot = vs.Slot
			c.active++
			if c.active > c.stats.MaxActive {
				c.stats.MaxActive = c.active
			}
		}
	}
	for i := range r.Parked {
		p := &r.Parked[i]
		if p.Instance > c.nextInstance {
			c.nextInstance = p.Instance
		}
		if t := c.scavParked[p.Instance]; t == nil || p.Fence > t.Fence {
			c.scavParked[p.Instance] = &ParkTicket{
				Viewer:      p.Viewer,
				OldInstance: p.Instance,
				File:        p.File,
				ResumeBlock: p.ResumeBlock,
				Bitrate:     p.Bitrate,
				Fence:       p.Fence,
			}
		}
	}
	if len(c.scavPending) == 0 {
		c.finishScavenge()
	}
}

// finishScavenge installs the folded state and re-opens admission.
func (c *Controller) finishScavenge() {
	if !c.scavenging {
		return
	}
	c.scavenging = false
	c.scavPending = nil

	// Install recovered park tickets — except those whose viewer already
	// has a live play: the dead incarnation resumed that stream and
	// crashed before every cub saw the Resume, so re-admitting the
	// ticket would double-serve the viewer.
	g := &c.gov
	g.init()
	liveViewer := make(map[msg.ViewerID]bool, len(c.plays))
	for _, rec := range c.plays {
		if rec.state != PlayDone {
			liveViewer[rec.viewer] = true
		}
	}
	insts := make([]msg.InstanceID, 0, len(c.scavParked))
	for inst := range c.scavParked {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		t := c.scavParked[inst]
		if liveViewer[t.Viewer] {
			continue
		}
		g.parked[inst] = t
		g.queue = append(g.queue, t)
		g.stats.Parks++
		c.stats.ScavengedParks++
	}
	c.scavParked = nil

	d := c.clk.Now().Sub(c.scavStart)
	c.takeover.Observe(d)
	if o := c.obs; o != nil {
		o.active.Set(float64(c.active))
		o.parked.Set(float64(len(g.parked)))
		o.takeoverTime.Observe(d.Seconds())
	}
	if c.OnScavenged != nil {
		c.OnScavenged()
	}
	// If capacity is whole and recovered tickets are waiting, drain them;
	// when the replayed down-set re-armed the governor instead, the
	// ordinary NoteCubUp path drains once coverage returns.
	if len(g.unservable) == 0 && len(g.queue) > 0 && !g.draining {
		g.draining = true
		c.clk.After(c.cfg.Governor.ResumeDelay, c.drainParked)
	}
	c.ensureGovTick()
}

// TakeoverTimes returns the histogram of restart-to-rebuilt durations.
func (c *Controller) TakeoverTimes() *metrics.Histogram { return c.takeover }

// ResumeRestripe re-drives an elastic plan after a takeover. The wiped
// coordinator re-issues every move as pending; sources dedup orders
// already queued, destinations re-ack moves already durable (the
// at-least-once order stream meets the cubs' (fence,seq) dedup), so the
// run converges without re-copying committed work.
func (c *Controller) ResumeRestripe(fence int64, oldGen int32, plan *layout.ElasticPlan) error {
	if c.rs.active {
		return nil
	}
	return c.StartRestripe(fence, oldGen, plan)
}

// --- cub side ---

// parkedTicketTTL bounds how long a cub retains a parked stream's
// re-admission ticket with no Resume arriving. Generous — tickets exist
// precisely to survive a controller outage plus a governor episode —
// but finite, so a stream abandoned forever does not pin the map.
const parkedTicketTTL = 10 * time.Minute

// staleCtl implements the receive-side controller-epoch fence: an order
// stamped below the highest controller epoch this cub has seen was
// issued by a dead incarnation and must not touch the schedule. Epoch 0
// marks an unstamped order (direct-injection tests) and passes.
func (c *Cub) staleCtl(e int32) bool {
	if e == 0 {
		return false
	}
	if e < c.ctlEpoch {
		c.stats.CtlStaleDrops++
		if o := c.obs; o != nil {
			o.ctlStaleDrops.Inc()
		}
		return true
	}
	c.noteCtlEpoch(e)
	return false
}

// noteCtlEpoch raises the controller-epoch high-water mark. A bump past
// an epoch we already knew is a takeover observed.
func (c *Cub) noteCtlEpoch(e int32) {
	if e <= c.ctlEpoch {
		return
	}
	if c.ctlEpoch != 0 {
		c.stats.CtlTakeovers++
		if o := c.obs; o != nil {
			o.ctlTakeovers.Inc()
		}
	}
	c.ctlEpoch = e
}

// onCtlHeartbeat feeds the cub's deadman for the controller. The cub
// keeps serving either way — the schedule needs no controller to run —
// so a controller death only flips an observability flag here.
func (c *Cub) onCtlHeartbeat(t *msg.Heartbeat) {
	c.ctlLastSeen = c.clk.Now()
	if c.ctlDown {
		c.ctlDown = false
		if o := c.obs; o != nil {
			o.ctlDown.Set(0)
		}
	}
	c.noteCtlEpoch(t.Epoch)
}

// ctlDeadmanCheck runs from heartbeatTick: a controller that has
// heartbeated before and then fallen silent past the deadman window is
// declared down. Armed only after the first controller heartbeat, so
// harnesses that never start the controller's broadcast see nothing.
func (c *Cub) ctlDeadmanCheck(now sim.Time) {
	if c.ctlLastSeen == 0 || c.ctlDown {
		return
	}
	if now.Sub(c.ctlLastSeen) > c.cfg.DeadmanTimeout {
		c.ctlDown = true
		c.stats.CtlDeclaredDead++
		if o := c.obs; o != nil {
			o.ctlDown.Set(1)
		}
	}
}

// ControllerDown reports whether this cub's deadman currently believes
// the controller dead.
func (c *Cub) ControllerDown() bool { return c.ctlDown }

// CtlEpoch returns the highest controller epoch this cub has seen.
func (c *Cub) CtlEpoch() int32 { return c.ctlEpoch }

// ParkedTickets returns how many parked-stream re-admission tickets
// this cub currently retains.
func (c *Cub) ParkedTickets() int { return len(c.parkedTickets) }

// onScavengeReq answers a new controller incarnation with this cub's
// inventory: one representative viewer state per play instance in its
// window, queued starts it holds, and its parked-stream tickets. The
// request doubles as the fence announcement — the epoch high-water mark
// rises before the reply leaves, so nothing the dead incarnation still
// has in flight can slip in behind the fold.
func (c *Cub) onScavengeReq(q msg.ScavengeReq) {
	c.noteCtlEpoch(q.Epoch)
	c.ctlLastSeen = c.clk.Now()
	if c.ctlDown {
		c.ctlDown = false
		if o := c.obs; o != nil {
			o.ctlDown.Set(0)
		}
	}
	c.stats.ScavengesServed++
	if o := c.obs; o != nil {
		o.scavServed.Inc()
	}

	pace := int64(c.cfg.MirrorPace())
	best := make(map[msg.InstanceID]msg.ViewerState)
	keys := make([]entryKey, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		e := c.entries[k]
		if _, parked := c.parkedInst[e.vs.Instance]; parked {
			continue // a parked stream's stragglers are not a live play
		}
		vs := e.vs
		if k.part >= 0 {
			// A mirror piece: rebuild the primary service it substitutes
			// for, exactly as the rejoin reply does — the play is live even
			// if every primary state sits on dead cubs.
			vs.Mirror = false
			vs.Part = 0
			vs.Due -= int64(e.vs.Part) * pace
		}
		if b, ok := best[vs.Instance]; !ok || vs.Block > b.Block {
			best[vs.Instance] = vs
		}
	}
	// Starts still waiting for a slot — queued under a (gen, disk) key
	// or held as a redundant copy for a neighbour. Reported with Due 0
	// (no schedule position yet) and the gen-tagged primary disk in
	// Slot; a real state for the same instance wins the fold.
	addQueued := func(req *startReq) {
		if _, ok := best[req.sp.Instance]; ok {
			return
		}
		best[req.sp.Instance] = msg.ViewerState{
			Viewer:   req.sp.Viewer,
			Instance: req.sp.Instance,
			File:     req.sp.File,
			Block:    req.sp.StartBlock,
			Slot:     req.dkey,
			Due:      0,
			Bitrate:  req.sp.Bitrate,
		}
	}
	dkeys := make([]int32, 0, len(c.queue))
	for k := range c.queue {
		dkeys = append(dkeys, k)
	}
	sort.Slice(dkeys, func(i, j int) bool { return dkeys[i] < dkeys[j] })
	for _, k := range dkeys {
		for _, req := range c.queue[k] {
			addQueued(req)
		}
	}
	rinsts := make([]msg.InstanceID, 0, len(c.redundantStart))
	for inst := range c.redundantStart {
		rinsts = append(rinsts, inst)
	}
	sort.Slice(rinsts, func(i, j int) bool { return rinsts[i] < rinsts[j] })
	for _, inst := range rinsts {
		addQueued(c.redundantStart[inst])
	}

	reply := &msg.ScavengeReply{From: c.id, ForEpoch: q.Epoch, GovFence: c.govFence}
	insts := make([]msg.InstanceID, 0, len(best))
	for inst := range best {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		reply.States = append(reply.States, best[inst])
	}
	pinsts := make([]msg.InstanceID, 0, len(c.parkedTickets))
	for inst := range c.parkedTickets {
		pinsts = append(pinsts, inst)
	}
	sort.Slice(pinsts, func(i, j int) bool { return pinsts[i] < pinsts[j] })
	for _, inst := range pinsts {
		reply.Parked = append(reply.Parked, c.parkedTickets[inst])
	}
	c.net.Send(c.id, msg.Controller, reply)
}
