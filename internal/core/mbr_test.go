package core

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/disk"
	"tiger/internal/msg"
	"tiger/internal/netsched"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

type mbrRig struct {
	eng  *sim.Engine
	net  *netsim.Network
	cubs []*MBRCub
}

func newMBRRig(t *testing.T, n int, mutate func(*MBRConfig)) *mbrRig {
	t.Helper()
	eng := sim.New(21)
	clk := clock.Sim{Eng: eng}
	net := netsim.New(netsim.DefaultParams(), clk, eng.Rand())
	cfg := DefaultMBRConfig(n)
	if mutate != nil {
		mutate(&cfg)
	}
	r := &mbrRig{eng: eng, net: net}
	for i := 0; i < n; i++ {
		dp := cfg.DiskParams
		dp.BlipProb = 0
		d := disk.New(i, dp, clk, rand.New(rand.NewSource(int64(i))))
		c, err := NewMBRCub(msg.NodeID(i), cfg, clk, net, d)
		if err != nil {
			t.Fatal(err)
		}
		// Gossip commits to every cub, standing in for the viewer-state
		// propagation of the full system.
		c.OnCommit = func(e netsched.Entry) {
			for _, other := range r.cubs {
				if other != c {
					other.CommitRemote(e)
				}
			}
		}
		net.Register(msg.NodeID(i), c)
		r.cubs = append(r.cubs, c)
	}
	return r
}

func TestMBRInsertCommits(t *testing.T) {
	r := newMBRRig(t, 3, nil)
	if !r.cubs[0].StartPlay(1, 100, 2_000_000) {
		t.Fatal("local view rejected an empty schedule")
	}
	r.eng.RunFor(time.Second)
	st := r.cubs[0].Stats()
	if st.Inserts != 1 || st.Timeouts != 0 || st.RemoteRejects != 0 {
		t.Fatalf("stats %+v", st)
	}
	e, ok := r.cubs[0].Schedule().Get(100)
	if !ok || e.State != netsched.Committed {
		t.Fatalf("entry %+v ok=%v", e, ok)
	}
	// The successor holds the entry too (reservation upgraded).
	se, ok := r.cubs[1].Schedule().Get(100)
	if !ok || se.State != netsched.Committed {
		t.Fatalf("successor entry %+v ok=%v", se, ok)
	}
}

func TestMBRServiceRotatesAllCubs(t *testing.T) {
	r := newMBRRig(t, 3, nil)
	serves := map[msg.NodeID]int{}
	for _, c := range r.cubs {
		c := c
		c.OnServe = func(e netsched.Entry, at sim.Time) { serves[c.ID()]++ }
	}
	r.cubs[0].StartPlay(1, 100, 2_000_000)
	r.eng.RunFor(10 * time.Second)
	// In a 3-cub, 1 s block play system each cub serves the stream once
	// per 3 s cycle.
	for id, n := range serves {
		if n < 2 || n > 4 {
			t.Fatalf("cub %v served %d times in 10s", id, n)
		}
	}
	if len(serves) != 3 {
		t.Fatalf("only %d cubs served", len(serves))
	}
}

func TestMBRLocalRejectWhenFull(t *testing.T) {
	r := newMBRRig(t, 3, func(c *MBRConfig) { c.NICBps = 6_000_000 })
	// Fill the whole 3-second cycle with 6 Mbit entries.
	for i := 0; i < 3; i++ {
		if !r.cubs[0].StartPlay(1, msg.InstanceID(i+1), 6_000_000) {
			t.Fatalf("insert %d rejected early", i)
		}
		r.eng.RunFor(time.Second)
	}
	if r.cubs[0].StartPlay(2, 99, 1_000_000) {
		t.Fatal("full schedule accepted another stream")
	}
	if r.cubs[0].Stats().LocalRejects != 1 {
		t.Fatalf("stats %+v", r.cubs[0].Stats())
	}
}

func TestMBRRemoteRejectAborts(t *testing.T) {
	// The successor's view has a reservation the originator cannot see;
	// its confirmation must be negative and the originator must abort
	// and free its tentative entry (§4.2).
	r := newMBRRig(t, 3, func(c *MBRConfig) { c.NICBps = 6_000_000 })
	// Jam the successor's view directly: a foreign reservation filling
	// the entire schedule.
	for i := 0; i < 3; i++ {
		if err := r.cubs[1].Schedule().Insert(netsched.Entry{
			Instance: msg.InstanceID(1000 + i),
			Start:    time.Duration(i) * time.Second,
			Bitrate:  6_000_000,
			State:    netsched.Reserved,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.cubs[0].StartPlay(1, 7, 2_000_000) {
		t.Fatal("local check should pass — the originator cannot see the jam")
	}
	r.eng.RunFor(time.Second)
	st := r.cubs[0].Stats()
	if st.RemoteRejects != 1 || st.Inserts != 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, still := r.cubs[0].Schedule().Get(7); still {
		t.Fatal("tentative entry not removed after remote reject")
	}
	// The freed capacity is usable again once the jam clears.
	for i := 0; i < 3; i++ {
		r.cubs[1].Schedule().Remove(msg.InstanceID(1000 + i))
	}
	if !r.cubs[0].StartPlay(1, 8, 2_000_000) {
		t.Fatal("insert after cleared jam rejected")
	}
}

func TestMBRTimeoutAborts(t *testing.T) {
	r := newMBRRig(t, 3, nil)
	r.net.Fail(1) // successor dead: no confirmation will come
	if !r.cubs[0].StartPlay(1, 7, 2_000_000) {
		t.Fatal("local insert rejected")
	}
	r.eng.RunFor(time.Second)
	st := r.cubs[0].Stats()
	if st.Timeouts != 1 || st.Inserts != 0 {
		t.Fatalf("stats %+v", st)
	}
	if _, still := r.cubs[0].Schedule().Get(7); still {
		t.Fatal("tentative entry survived timeout")
	}
}

func TestMBRSpeculativeReadOverlap(t *testing.T) {
	// §4.3: "Insertion in the multiple bitrate system shows how
	// communications latency can be hidden by overlapping it with
	// speculative action (the disk read)." The read must be issued
	// before the confirmation arrives.
	r := newMBRRig(t, 3, nil)
	r.cubs[0].StartPlay(1, 7, 2_000_000)
	// Immediately after StartPlay (before any network round trip), the
	// disk already has the read queued or in service.
	if r.cubs[0].disk.QueueLen() == 0 && r.cubs[0].disk.Stats().Reads == 0 {
		t.Fatal("speculative read not issued at insertion time")
	}
	r.eng.RunFor(time.Second)
	if st := r.cubs[0].Stats(); st.Inserts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMBRAbortedReadCounted(t *testing.T) {
	r := newMBRRig(t, 3, func(c *MBRConfig) {
		c.ReserveTimeout = time.Millisecond // faster than the disk read
	})
	r.net.Fail(1)
	r.cubs[0].StartPlay(1, 7, 2_000_000)
	r.eng.RunFor(time.Second)
	if st := r.cubs[0].Stats(); st.AbortedReads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMBRDescheduleIdempotent(t *testing.T) {
	r := newMBRRig(t, 3, nil)
	r.cubs[0].StartPlay(1, 7, 2_000_000)
	r.eng.RunFor(time.Second)
	d := &msg.Deschedule{Viewer: 1, Instance: 7}
	for _, c := range r.cubs {
		c.Deliver(msg.Controller, d)
		c.Deliver(msg.Controller, d)
	}
	r.eng.RunFor(time.Second)
	for _, c := range r.cubs {
		if _, still := c.Schedule().Get(7); still {
			t.Fatalf("cub %v still holds descheduled entry", c.ID())
		}
	}
	// Services stop.
	sends := r.cubs[0].Stats().Sends
	r.eng.RunFor(5 * time.Second)
	if r.cubs[0].Stats().Sends != sends {
		t.Fatal("descheduled entry still being served")
	}
}

func TestMBRMixedBitratesFillCapacity(t *testing.T) {
	r := newMBRRig(t, 4, func(c *MBRConfig) { c.NICBps = 10_000_000 })
	rates := []int64{1_000_000, 3_000_000, 2_000_000, 4_000_000, 2_000_000, 6_000_000}
	inst := msg.InstanceID(1)
	accepted := 0
	for _, br := range rates {
		if r.cubs[int(inst)%4].StartPlay(1, inst, br) {
			accepted++
		}
		inst++
		r.eng.RunFor(300 * time.Millisecond)
	}
	r.eng.RunFor(2 * time.Second)
	if accepted < 5 {
		t.Fatalf("only %d of %d mixed-rate streams accepted", accepted, len(rates))
	}
	// No cub's view may ever exceed NIC capacity.
	for _, c := range r.cubs {
		s := c.Schedule()
		for off := time.Duration(0); off < s.Cycle(); off += 100 * time.Millisecond {
			if s.OccupancyAt(off) > s.Capacity() {
				t.Fatalf("cub %v over capacity at %v", c.ID(), off)
			}
		}
	}
}

func TestMBRDataPathNICAccounting(t *testing.T) {
	r := newMBRRig(t, 4, func(c *MBRConfig) { c.NICBps = 50_000_000 })
	for _, c := range r.cubs {
		c.Data = r.net
	}
	// Commit several streams of different rates.
	for i, br := range []int64{2_000_000, 4_000_000, 6_000_000} {
		if !r.cubs[i%4].StartPlay(msg.ViewerID(i+1), msg.InstanceID(i+1), br) {
			t.Fatalf("insert %d rejected", i)
		}
		r.eng.RunFor(500 * time.Millisecond)
	}
	r.eng.RunFor(20 * time.Second)
	var sent int64
	for i := 0; i < 4; i++ {
		st := r.net.NodeStats(msg.NodeID(i))
		sent += st.DataBytes
		if st.OverloadNs != 0 {
			t.Fatalf("cub %d NIC overloaded", i)
		}
	}
	// 12 Mbit/s aggregate for ~20 s = ~30 MB of payload.
	if sent < 20_000_000 {
		t.Fatalf("only %d data bytes sent", sent)
	}
}
