package core

import (
	"fmt"

	"tiger/internal/disk"
	"tiger/internal/msg"
)

// blockKey identifies one copy of one block on one disk.
type blockKey struct {
	file  msg.FileID
	block int32
	part  int8 // -1 for the primary copy, else the mirror piece index
}

// diskIndex is a cub's in-memory index of the contents of one disk's
// primary and secondary regions. The paper stores this metadata in cub
// memory rather than on the data disks: blocks are large so there is
// little of it, and an extra metadata seek before every block read would
// cost too much and add start latency (§4.1.1).
type diskIndex struct {
	disk    int
	entries map[blockKey]indexEntry
}

// indexEntry is the 64-bit-ish locator the paper describes: enough to
// find the block on the platters.
type indexEntry struct {
	zone  disk.Zone
	bytes int64
}

// buildIndexes enumerates every file in the configuration and records
// which primary blocks and mirror pieces land on each of the given
// disks. This is what a real cub builds at startup by reading its disks'
// headers.
func buildIndexes(cfg *Config, disks []int) map[int]*diskIndex {
	idx := make(map[int]*diskIndex, len(disks))
	mine := make(map[int]bool, len(disks))
	for _, d := range disks {
		idx[d] = &diskIndex{disk: d, entries: make(map[blockKey]indexEntry)}
		mine[d] = true
	}
	for _, f := range cfg.Files {
		for b := 0; b < f.Blocks; b++ {
			p := cfg.Layout.PrimaryDisk(f, b)
			if mine[p] {
				idx[p].entries[blockKey{f.ID, int32(b), -1}] = indexEntry{
					zone: disk.Outer, bytes: cfg.BlockSize,
				}
			}
			for part := 0; part < cfg.Layout.Decluster; part++ {
				s := cfg.Layout.SecondaryDisk(f, b, part)
				if mine[s] {
					idx[s].entries[blockKey{f.ID, int32(b), int8(part)}] = indexEntry{
						zone: disk.Inner, bytes: cfg.MirrorPartSize(),
					}
				}
			}
		}
	}
	return idx
}

// lookup finds a block copy on the disk, failing loudly if the layout
// math and the index disagree — that is always a bug, not a runtime
// condition.
func (di *diskIndex) lookup(file msg.FileID, block int32, part int8) (indexEntry, error) {
	e, ok := di.entries[blockKey{file, block, part}]
	if !ok {
		return indexEntry{}, fmt.Errorf("disk %d: no copy of file %d block %d part %d",
			di.disk, file, block, part)
	}
	return e, nil
}

// size returns the number of indexed copies on this disk.
func (di *diskIndex) size() int { return len(di.entries) }
