package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// These tests drive the controller-failover machinery (scavenge.go)
// directly: epoch fencing, the takeover scavenge fold, the cub-side
// controller deadman, and recovery of starts caught mid-flight.

// TestScavengeRebuildsActivePlays is the core takeover property: crash
// the controller under live streams, restart it, and the new incarnation
// rebuilds the plays map purely from cub inventories — same active
// count, no re-admissions, and the streams never stop being served.
func TestScavengeRebuildsActivePlays(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	insts := make([]msg.InstanceID, 0, 6)
	for v := msg.ViewerID(1); v <= 6; v++ {
		insts = append(insts, r.play(v, msg.FileID(int(v)%4), int32(v)*10))
	}
	r.run(10 * time.Second)
	active0 := r.ctl.Active()
	if active0 != 6 {
		t.Fatalf("expected 6 active before the crash, have %d", active0)
	}
	inserts0 := r.totals().Inserts
	got0 := make(map[msg.ViewerID]int)
	for v := msg.ViewerID(1); v <= 6; v++ {
		got0[v] = r.got(v)
	}

	r.ctl.Crash()
	r.run(5 * time.Second)
	// The outage is invisible to admitted streams: every viewer kept
	// receiving blocks off the distributed schedule.
	for v := msg.ViewerID(1); v <= 6; v++ {
		if r.got(v) <= got0[v] {
			t.Errorf("viewer %d stalled during the outage: %d blocks before, %d after",
				v, got0[v], r.got(v))
		}
	}
	if _, err := r.ctl.StartPlay(99, 0, 0, 2_000_000); err != ErrControllerDown {
		t.Errorf("admission during the outage: err=%v", err)
	}

	r.ctl.Restart()
	r.run(2 * time.Second)

	if r.ctl.Scavenging() {
		t.Fatal("scavenge did not close with every cub live")
	}
	if got := r.ctl.Active(); got != active0 {
		t.Errorf("rebuilt active count %d, want %d", got, active0)
	}
	st := r.ctl.Stats()
	if st.Takeovers != 1 {
		t.Errorf("takeovers = %d, want 1", st.Takeovers)
	}
	if st.ScavengeReplies != int64(len(r.cubs)) {
		t.Errorf("scavenge replies = %d, want %d", st.ScavengeReplies, len(r.cubs))
	}
	if st.ScavengedPlays != int64(active0) {
		t.Errorf("scavenged plays = %d, want %d (one per instance, deduped)", st.ScavengedPlays, active0)
	}
	if e := r.ctl.Epoch(); e != 2 {
		t.Errorf("controller epoch after one takeover = %d, want 2", e)
	}
	for i, cub := range r.cubs {
		if e := cub.CtlEpoch(); e != 2 {
			t.Errorf("cub %d controller-epoch high-water = %d, want 2", i, e)
		}
	}
	// No stream was re-admitted: the fold rebuilt records, it did not
	// replay starts through the insertion path.
	if inserts1 := r.totals().Inserts; inserts1 != inserts0 {
		t.Errorf("takeover caused %d new insertions", inserts1-inserts0)
	}
	// The rebuilt records are live: a stop routes through them.
	r.ctl.StopPlay(insts[0])
	r.run(time.Second)
	if got := r.ctl.Active(); got != active0-1 {
		t.Errorf("active after post-takeover stop = %d, want %d", got, active0-1)
	}
}

// TestScavengeRecoversInFlightStart crashes the controller the instant a
// start request leaves, before its ack can return. The cub still admits
// the stream (the order was issued by the live incarnation); the
// takeover fold must discover it from the cub's inventory even though
// the controller never saw the ack.
func TestScavengeRecoversInFlightStart(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(7, 2, 0)
	r.ctl.Crash() // the StartPlay is in flight; its ack will find the controller dead
	r.run(2 * time.Second)
	r.ctl.Restart()
	r.run(2 * time.Second)
	if got := r.ctl.Active(); got != 1 {
		t.Errorf("in-flight start not recovered: active = %d, want 1", got)
	}
	if r.got(7) == 0 {
		t.Error("the recovered stream never delivered a block")
	}
}

// TestCtlEpochFencesStaleOrders verifies the receive-side fence: after a
// takeover bumps the cubs' high-water mark, orders stamped by the dead
// incarnation die on arrival, while unstamped (epoch 0) test injections
// still pass.
func TestCtlEpochFencesStaleOrders(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(5 * time.Second)
	r.ctl.Crash()
	r.ctl.Restart() // epoch 2 announced via ScavengeReq
	r.run(time.Second)

	cub := r.cubs[0]
	drops0 := cub.Stats().CtlStaleDrops
	parked0 := cub.Stats().StreamsParked
	// A Park from the dead incarnation (epoch 1) must be dropped.
	r.net.Send(msg.Controller, 0, &msg.Park{Viewer: 50, Instance: 5000, Slot: -1, Ctl: 1})
	r.run(time.Second)
	if d := cub.Stats().CtlStaleDrops; d != drops0+1 {
		t.Errorf("stale-order drops = %d, want %d", d, drops0+1)
	}
	if p := cub.Stats().StreamsParked; p != parked0 {
		t.Errorf("a fenced Park still parked a stream (%d -> %d)", parked0, p)
	}
	// An unstamped Park (test injection) passes the fence.
	r.net.Send(msg.Controller, 0, &msg.Park{Viewer: 51, Instance: 5001, Slot: -1})
	r.run(time.Second)
	if p := cub.Stats().StreamsParked; p != parked0+1 {
		t.Errorf("an unstamped Park was dropped (parked %d, want %d)", p, parked0+1)
	}
}

// TestCtlDeadmanDeclaresAndClears drives the cub-side controller
// deadman: armed by the first controller heartbeat, declaring after
// silence past the deadman window, cleared by the next incarnation's
// scavenge broadcast.
func TestCtlDeadmanDeclaresAndClears(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.ctl.Start()
	r.run(2 * time.Second)
	for i, cub := range r.cubs {
		if cub.ControllerDown() {
			t.Fatalf("cub %d believes a heartbeating controller dead", i)
		}
	}
	r.ctl.Crash()
	r.run(r.cfg.DeadmanTimeout + 2*r.cfg.HeartbeatInterval + time.Second)
	for i, cub := range r.cubs {
		if !cub.ControllerDown() {
			t.Errorf("cub %d never declared the silent controller dead", i)
		}
		if cub.Stats().CtlDeclaredDead == 0 {
			t.Errorf("cub %d declared no controller death", i)
		}
	}
	r.ctl.Restart()
	r.run(time.Second)
	for i, cub := range r.cubs {
		if cub.ControllerDown() {
			t.Errorf("cub %d still believes the restarted controller dead", i)
		}
	}
}

// TestScavengeSurvivesDeadCub closes the fold by deadman timeout when a
// cub cannot answer: the takeover must not hang on a reply that will
// never come, and the plays the dead cub alone knew about are covered by
// the mirror states its peers report.
func TestScavengeSurvivesDeadCub(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	for v := msg.ViewerID(1); v <= 4; v++ {
		r.play(v, msg.FileID(int(v)%4), 0)
	}
	r.run(10 * time.Second)
	active0 := r.ctl.Active()

	// Kill a cub, then the controller, then take over with the cub still
	// down: one reply is missing forever.
	r.net.Crash(3)
	r.ctl.Crash()
	r.run(time.Second)
	r.ctl.Restart()
	r.run(500 * time.Millisecond)
	if !r.ctl.Scavenging() {
		t.Fatal("scavenge closed while a reply was still owed")
	}
	r.run(r.cfg.DeadmanTimeout + time.Second)
	if r.ctl.Scavenging() {
		t.Fatal("scavenge never closed out around the dead cub")
	}
	if got := r.ctl.Stats().ScavengeReplies; got != int64(len(r.cubs)-1) {
		t.Errorf("scavenge replies = %d, want %d (cub 3 is dead)", got, len(r.cubs)-1)
	}
	if got := r.ctl.Active(); got != active0 {
		t.Errorf("rebuilt active count %d, want %d", got, active0)
	}
}
