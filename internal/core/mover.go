package core

import (
	"time"

	"tiger/internal/disk"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

// This file is the cub side of the live restripe (DESIGN §13): the
// *mover* executes MoveOrders by draining block copies through the idle
// time of the disk schedule. Three rules keep stream service unharmed:
//
//  1. Copy reads are issued with a far-future deadline, so the drive's
//     EDF queue serves every stream read first; a copy only reaches the
//     platter when nothing timely is waiting.
//  2. At most one copy is outstanding per drive, so a copy can delay a
//     stream read by at most one copy service time (the same head-of-line
//     bound §3.1 already absorbs in the schedule's slack).
//  3. Between copies the mover idles for a pacing gap derived from the
//     drive's *measured* duty cycle, so copy load adapts to the streams
//     actually being served rather than to a static plan.
//
// The mover deliberately bypasses the gray-failure monitor's read
// accounting (noteRead): copy reads are best-effort background work with
// fake deadlines, and feeding their "slack" into the health EWMA would
// poison it. A drive that fails or is quarantined mid-copy Nacks its
// pending orders so the coordinator re-routes them to a mirror copy.
//
// Move state is volatile by design: a cub restart wipes the queues
// (resetMover in Restart) and the coordinator's resend timer re-issues
// anything that was lost — the at-least-once order stream meets the
// destination's (fence,seq) dedup to yield exactly-once commits.

// moverCopyBudget is the fraction of a drive's idle time the mover may
// consume. Half the idle time keeps the copy stream brisk at low load
// while leaving headroom for admission bursts at high load.
const moverCopyBudget = 0.5

// moverIdleFloor is the minimum idle fraction assumed by the pacing
// math: on a saturated drive the measured idle fraction approaches
// zero, and dividing by it would stall the restripe entirely. The floor
// bounds the gap at tCopy/(budget·floor), ≈ 2 s for a full block — the
// restripe slows to a trickle under overload but never stops.
const moverIdleFloor = 0.05

// mvKey identifies one move of one restripe run.
type mvKey struct {
	fence int64
	seq   int32
}

// mvJob is one queued copy operation on one local drive: a source-side
// read that will ship MoveData, or a destination-side write that will
// ack MoveCommit.
type mvJob struct {
	out   bool          // true: source read; false: destination write
	order msg.MoveOrder // set when out
	data  msg.MoveData  // set when !out
	bytes int64
	zone  disk.Zone
}

func (j *mvJob) key() mvKey {
	if j.out {
		return mvKey{j.order.Fence, j.order.Seq}
	}
	return mvKey{j.data.Fence, j.data.Seq}
}

// moverState is the per-cub mover bookkeeping. Volatile: Restart wipes
// it (the planes — configuration state — survive, the work in flight
// does not).
type moverState struct {
	queues map[int][]*mvJob // per-native-disk FIFO
	busy   map[int]bool     // copy in service or pacing gap running
	queued map[mvKey]bool   // source-side orders queued or in flight
	done   map[mvKey]bool   // dest-side commits already durable (dedup)

	// Duty-cycle sampling for the pacing gap: BusyTotal and time of the
	// last sample, per drive.
	lastBusy   map[int]time.Duration
	lastSample map[int]sim.Time
}

// resetMover initializes (or wipes, on restart) the mover state.
func (c *Cub) resetMover() {
	c.mover = moverState{
		queues:     make(map[int][]*mvJob),
		busy:       make(map[int]bool),
		queued:     make(map[mvKey]bool),
		done:       make(map[mvKey]bool),
		lastBusy:   make(map[int]time.Duration),
		lastSample: make(map[int]sim.Time),
	}
}

// MoverPending returns the number of copy jobs queued on this cub's
// drives (both directions), for the restripe progress surfaces.
func (c *Cub) MoverPending() int {
	n := 0
	for _, q := range c.mover.queues {
		n += len(q)
	}
	return n
}

// MoverInflight returns the number of drives currently executing (or
// pacing after) a copy.
func (c *Cub) MoverInflight() int {
	n := 0
	for _, b := range c.mover.busy {
		if b {
			n++
		}
	}
	return n
}

// moveBytesZone returns the size and platter zone of one move payload.
// Derived from the birth configuration: block and piece sizes are
// generation-invariant (a restripe re-homes blocks, it does not resize
// them), and Alt re-routes read a redundant copy but still ship a full
// payload — modeled at primary size for simplicity.
func (c *Cub) moveBytesZone(part int8) (int64, disk.Zone) {
	if part < 0 {
		return c.cfg.BlockSize, disk.Outer
	}
	return c.cfg.MirrorPartSize(), disk.Inner
}

// localDiskOfIdx maps a cub-local drive index (the wire addressing of
// move messages) to the native disk number keying c.disks.
func (c *Cub) localDiskOfIdx(idx int8) int {
	return int(idx)*c.nativeCubs + int(c.id)
}

// onMoveOrder is the source side of a move: read the block copy and
// ship it to the destination. Orders come from the controller (which the
// epoch fence skips); a duplicate of an order already queued or in
// service is dropped, but a re-sent order for work this cub lost in a
// restart is accepted as fresh — the destination's dedup makes the
// at-least-once stream safe.
func (c *Cub) onMoveOrder(t msg.MoveOrder) {
	d := c.localDiskOfIdx(t.SrcIdx)
	if _, mine := c.disks[d]; !mine {
		return // malformed or stale order; the resend timer will retry
	}
	if c.failedDisks[d] {
		c.nackMove(t, d)
		return
	}
	k := mvKey{t.Fence, t.Seq}
	if c.mover.queued[k] {
		return
	}
	c.mover.queued[k] = true
	bytes, zone := c.moveBytesZone(t.Part)
	c.enqueueMove(d, &mvJob{out: true, order: t, bytes: bytes, zone: zone})
}

// onMoveData is the destination side: land the copy on the target drive
// and ack the coordinator. Already-fenced by the caller (deliverOne); a
// duplicate of a committed move just re-sends the commit, because the
// original ack may have been lost to a crash or partition.
func (c *Cub) onMoveData(t msg.MoveData) {
	k := mvKey{t.Fence, t.Seq}
	if c.mover.done[k] {
		c.sendMoveCommit(t)
		return
	}
	d := c.localDiskOfIdx(t.DstIdx)
	if _, mine := c.disks[d]; !mine {
		return
	}
	if c.failedDisks[d] {
		// Cannot land the copy now; drop it. The coordinator's resend
		// re-delivers once the drive is probed healthy again.
		return
	}
	// A duplicate MoveData racing an in-flight write for the same move
	// would double-commit; dedup on the queue too.
	for _, j := range c.mover.queues[d] {
		if !j.out && j.key() == k {
			return
		}
	}
	bytes, zone := c.moveBytesZone(t.Part)
	c.enqueueMove(d, &mvJob{out: false, data: t, bytes: bytes, zone: zone})
}

// enqueueMove adds a copy job to a drive's FIFO and kicks the drive if
// it is idle.
func (c *Cub) enqueueMove(d int, j *mvJob) {
	c.mover.queues[d] = append(c.mover.queues[d], j)
	if o := c.obs; o != nil {
		o.moverPending.Set(float64(c.MoverPending()))
	}
	if !c.mover.busy[d] {
		c.startNextMove(d)
	}
}

// startNextMove pops the drive's FIFO and issues the copy with a
// far-future deadline so every stream read wins the EDF queue.
func (c *Cub) startNextMove(d int) {
	q := c.mover.queues[d]
	if len(q) == 0 {
		c.mover.busy[d] = false
		return
	}
	if c.failedDisks[d] {
		// Retired while jobs were waiting; moverDiskRetired handles the
		// queue, nothing to start.
		c.mover.busy[d] = false
		return
	}
	j := q[0]
	c.mover.queues[d] = q[1:]
	c.mover.busy[d] = true
	if o := c.obs; o != nil {
		o.moverPending.Set(float64(c.MoverPending()))
	}
	start := c.clk.Now()
	farDue := start.Add(time.Hour)
	c.cpu.ChargeDiskOp()
	c.disks[d].Read(j.bytes, j.zone, farDue, func(done sim.Time, ok bool) {
		c.finishMove(d, j, start, done, ok)
	})
}

// finishMove completes one copy operation and schedules the drive's next
// one after the pacing gap.
func (c *Cub) finishMove(d int, j *mvJob, start, done sim.Time, ok bool) {
	tCopy := done.Sub(start)
	if j.out {
		k := j.key()
		delete(c.mover.queued, k)
		if !ok || c.failedDisks[d] {
			c.nackMoveReason(j.order, msg.NackReadError)
		} else {
			c.stats.MovesOut++
			c.stats.MoveBytesOut += j.bytes
			if o := c.obs; o != nil {
				o.movesOut.Inc()
				o.moveBytesOut.Add(float64(j.bytes))
			}
			md := msg.MoveData{
				Fence:  j.order.Fence,
				Seq:    j.order.Seq,
				File:   j.order.File,
				Block:  j.order.Block,
				Part:   j.order.Part,
				DstIdx: j.order.DstIdx,
				From:   c.id,
				Epoch:  c.epoch,
			}
			if j.order.DstCub == c.id {
				// Self-move (a disk-index change on the same cub): land it
				// without a network hop.
				c.onMoveData(md)
			} else {
				c.net.Send(c.id, j.order.DstCub, &md)
			}
		}
	} else {
		k := j.key()
		if !ok || c.failedDisks[d] {
			// Write failed; leave the move uncommitted, the coordinator
			// resends.
		} else if !c.mover.done[k] {
			c.mover.done[k] = true
			c.stats.MovesIn++
			c.stats.MoveBytesIn += j.bytes
			if o := c.obs; o != nil {
				o.movesIn.Inc()
				o.moveBytesIn.Add(float64(j.bytes))
			}
			c.sendMoveCommit(j.data)
		}
	}
	gap := c.movePacingGap(d, tCopy)
	if gap <= 0 {
		c.startNextMove(d)
		return
	}
	c.clk.After(gap, func() { c.startNextMove(d) })
}

// movePacingGap computes how long drive d should idle before its next
// copy. The drive's duty cycle is measured over the window since the
// last copy (BusyTotal delta, minus the copy's own service time), and
// the gap is sized so that steady-state copying consumes at most
// moverCopyBudget of the measured idle fraction:
//
//	tCopy/(tCopy+gap) = budget·idle  ⇒  gap = tCopy/(budget·idle) − tCopy
//
// On an idle array this is ≈ tCopy (copy at half rate); on a saturated
// one the idle floor bounds the gap so progress never stops.
func (c *Cub) movePacingGap(d int, tCopy time.Duration) time.Duration {
	now := c.clk.Now()
	busy := c.disks[d].Stats().BusyTotal
	prevBusy, sampled := c.mover.lastBusy[d]
	prevT := c.mover.lastSample[d]
	c.mover.lastBusy[d] = busy
	c.mover.lastSample[d] = now
	if tCopy <= 0 {
		tCopy = c.cfg.DiskParams.MeanServiceTime(c.cfg.BlockSize, disk.Outer)
	}
	idle := 1.0
	if sampled && now > prevT {
		window := float64(now.Sub(prevT))
		streamBusy := float64(busy-prevBusy) - float64(tCopy)
		if streamBusy < 0 {
			streamBusy = 0
		}
		idle = 1 - streamBusy/window
		if idle < moverIdleFloor {
			idle = moverIdleFloor
		}
	}
	gap := time.Duration(float64(tCopy)/(moverCopyBudget*idle)) - tCopy
	if gap < 0 {
		gap = 0
	}
	return gap
}

// sendMoveCommit acks one landed copy to the coordinator.
func (c *Cub) sendMoveCommit(t msg.MoveData) {
	c.net.Send(c.id, msg.Controller, &msg.MoveCommit{
		Fence: t.Fence,
		Seq:   t.Seq,
		From:  c.id,
		Epoch: c.epoch,
	})
	if c.hooks.OnMoveCommit != nil {
		c.hooks.OnMoveCommit(c.id, int64(t.Seq))
	}
}

// nackMove refuses an order because the source drive is out of service,
// with the reason matched to how it left.
func (c *Cub) nackMove(t msg.MoveOrder, d int) {
	reason := msg.NackDiskFailed
	if c.quarantined[d] {
		reason = msg.NackDiskQuarantined
	}
	c.nackMoveReason(t, reason)
}

func (c *Cub) nackMoveReason(t msg.MoveOrder, reason uint8) {
	c.stats.MovesNacked++
	if o := c.obs; o != nil {
		o.movesNacked.Inc()
	}
	c.net.Send(c.id, msg.Controller, &msg.MoveNack{
		Fence:  t.Fence,
		Seq:    t.Seq,
		From:   c.id,
		Reason: reason,
	})
	if c.hooks.OnMoveNack != nil {
		c.hooks.OnMoveNack(c.id, int64(t.Seq), reason)
	}
}

// moverDiskRetired is the retireDisk hook: pending source reads on the
// drive are Nacked so the coordinator re-routes them to a mirror copy
// immediately; pending destination writes are dropped and re-delivered
// by the coordinator's resend once the drive heals.
func (c *Cub) moverDiskRetired(d int) {
	q := c.mover.queues[d]
	if len(q) == 0 {
		return
	}
	c.mover.queues[d] = nil
	if o := c.obs; o != nil {
		o.moverPending.Set(float64(c.MoverPending()))
	}
	for _, j := range q {
		if j.out {
			delete(c.mover.queued, j.key())
			c.nackMove(j.order, d)
		}
	}
}

// ProjectedMoveRate estimates the live mover's steady-state copy
// throughput for one drive at a given stream load, using the same
// pacing math the mover applies online. load is the fraction of planned
// stream capacity in use (0..1); budget is the idle-time fraction the
// mover may consume (moverCopyBudget in the shipped scheduler). Returns
// copies and bytes per second per drive.
//
// The stream duty at full load is the planned one: streams-per-disk
// worst-case primary+piece service per block play (disk.PlanCapacity).
// The mover sees idle = 1 − load·duty and spends budget·idle of the
// drive on copies of mean primary-block service time.
func ProjectedMoveRate(dp disk.Params, blockSize int64, blockPlay time.Duration, decluster int, load, budget float64) (copiesPerSec, bytesPerSec float64) {
	cap := PlanMoveCapacity(dp, blockSize, blockPlay, decluster)
	duty := load * cap
	if duty > 1 {
		duty = 1
	}
	idle := 1 - duty
	if idle < moverIdleFloor {
		idle = moverIdleFloor
	}
	tCopy := dp.MeanServiceTime(blockSize, disk.Outer)
	period := float64(tCopy) / (budget * idle)
	copiesPerSec = float64(time.Second) / period
	bytesPerSec = copiesPerSec * float64(blockSize)
	return copiesPerSec, bytesPerSec
}

// PlanMoveCapacity returns the planned full-load duty cycle of one
// drive: streams per disk times the worst-case per-stream service
// budget, per block play time.
func PlanMoveCapacity(dp disk.Params, blockSize int64, blockPlay time.Duration, decluster int) float64 {
	c := disk.PlanCapacity(dp, 1, blockSize, blockPlay, decluster)
	return c.StreamsPerDisk * float64(c.BlockService) / float64(blockPlay)
}
