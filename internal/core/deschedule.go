package core

import (
	"time"

	"tiger/internal/msg"
	"tiger/internal/trace"
)

// This file implements deschedule handling (§4.1.2): idempotent removal
// records that chase viewer states around the ring and are held after
// the slot passes so late states cannot resurrect a stopped viewer.

// --- deschedule handling (§4.1.2) ---

func (c *Cub) onDeschedule(d msg.Deschedule) {
	c.stats.DeschedRecv++
	if o := c.obs; o != nil {
		o.deschedRecv.Inc()
	}
	if d.Slot < 0 {
		// The viewer was never inserted: the controller is cancelling a
		// queued start request. Scrub it from our queues and redundant
		// copies and leave a tombstone so a late promotion cannot
		// resurrect it.
		c.cancelledStart[d.Instance] = c.clk.Now()
		c.clk.After(time.Minute, func() { delete(c.cancelledStart, d.Instance) })
		delete(c.redundantStart, d.Instance)
		for disk, q := range c.queue {
			for i, req := range q {
				if req.sp.Instance == d.Instance {
					c.queue[disk] = append(q[:i:i], q[i+1:]...)
					c.queueLen--
					break
				}
			}
		}
		if o := c.obs; o != nil {
			o.queueLen.Set(float64(c.queueLen))
		}
		return
	}
	key := descKey{d.Slot, d.Instance}
	if _, seen := c.desch[key]; seen {
		c.stats.DeschedDup++
		return
	}
	now := c.clk.Now()
	rec := d
	c.desch[key] = &rec
	// Hold the record until no viewer state for this slot could still
	// arrive, then forget it.
	hold := c.cfg.MaxVStateLead + c.cfg.DescheduleHold + c.cfg.Sched.BlockPlay
	c.clk.After(hold, func() {
		// Only forget the record we installed: a Restart may have wiped
		// the map and a newer record for the same key may exist by the
		// time this stale timer fires.
		if c.desch[key] == &rec {
			delete(c.desch, key)
		}
	})

	// Remove any matching entries: primary and mirror pieces alike. The
	// semantics are exactly "if this instance is in this slot, remove
	// it", so a stale request is harmless.
	var doomed []entryKey
	for k, e := range c.entries {
		if k.slot == d.Slot && e.vs.Instance == d.Instance {
			doomed = append(doomed, k)
		}
	}
	sortEntryKeys(doomed)
	for _, k := range doomed {
		if e := c.entries[k]; e != nil {
			c.traceHop(&e.vs, trace.HopDeschedule, int32(e.disk))
		}
		c.dropEntryRelease(k)
	}

	// Forward immediately — deschedules must outrun viewer states — to
	// the first and second living successors on the slot's generation's
	// ring, unless we are already more than MaxVStateLead in front of the
	// slot, at which point the request has caught every state it could.
	cfg := c.cfgOf(d.Slot)
	if cfg == nil {
		return // generation dropped; nothing downstream to chase
	}
	if c.schedTimeOfSlot(d.Slot).Sub(now) <= c.cfg.MaxVStateLead+c.cfg.Sched.BlockPlay {
		s1, ok1 := c.nthLivingSuccessorIn(cfg.Layout, 1)
		s2, ok2 := c.nthLivingSuccessorIn(cfg.Layout, 2)
		fwd := d
		if ok1 {
			c.net.Send(c.id, s1, &fwd)
		}
		if ok2 && s2 != s1 {
			c.net.Send(c.id, s2, &fwd)
		}
	}
}
