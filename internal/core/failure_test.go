package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// missesFor counts playseqs with fewer pieces than a full block needs.
func (r *rig) completeBlocks(v msg.ViewerID, needPieces int) (full, partial int) {
	for _, pieces := range r.deliveries[v] {
		if pieces >= needPieces || pieces == 1 {
			full++
		} else {
			partial++
		}
	}
	return
}

func TestDeadmanDetection(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.run(2 * time.Second)
	r.net.Fail(3)
	r.run(r.cfg.DeadmanTimeout + 2*r.cfg.HeartbeatInterval + time.Second)
	for _, c := range r.cubs {
		if c.ID() == 3 {
			continue
		}
		for _, m := range c.monitored {
			if m == msg.NodeID(3) && !c.believedDead[3] {
				t.Fatalf("cub %v monitors cub3 but has not declared it dead", c.ID())
			}
		}
	}
	if r.cubs[4].Stats().DeadDeclared == 0 {
		t.Fatal("successor never declared the failure")
	}
}

func TestMirrorTakeoverOngoingStream(t *testing.T) {
	// Kill a cub mid-stream: blocks whose primary lived there must keep
	// arriving as declustered pieces from the covering cubs (§4.1.1).
	o := defaultRigOptions()
	o.cubs, o.decluster = 8, 2
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.net.Fail(3)
	r.run(40 * time.Second)

	tot := r.totals()
	if tot.MirrorsMade == 0 || tot.PiecesSent == 0 {
		t.Fatalf("no mirror activity after cub failure: %+v", tot)
	}
	// The stream passes the failed cub every 8 blocks; in 40 s that is
	// ~5 mirror-served blocks. Allow detection-latency losses of a few
	// blocks right after the failure.
	got := r.got(1)
	if got < 42 {
		t.Fatalf("viewer got %d of ~48 expected blocks", got)
	}
	full, partial := r.completeBlocks(1, o.decluster)
	if partial > 0 {
		t.Fatalf("%d partially delivered blocks (of %d)", partial, full+partial)
	}
}

func TestFailureLossWindowMatchesDetectionLatency(t *testing.T) {
	// §5: after a power cut, lost blocks span a bounded window (the
	// paper measured ~8 s at 50% load). Losses must stop once the
	// deadman fires and mirrors take over.
	o := defaultRigOptions()
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.net.Fail(3)
	r.run(60 * time.Second)
	// Which playseqs are missing entirely?
	var missing []int32
	for k := int32(0); k < 65; k++ {
		if _, ok := r.deliveries[1][k]; !ok {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return // detection beat the stream's next visit: no loss at all
	}
	span := missing[len(missing)-1] - missing[0]
	if span > 12 {
		t.Fatalf("loss window spans %d blocks (%v), want bounded by detection+lead", span, missing)
	}
	if len(missing) > 4 {
		t.Fatalf("%d blocks lost to one failure: %v", len(missing), missing)
	}
}

func TestGapBridgingTwoConsecutiveFailures(t *testing.T) {
	// §2.3: "If two or more consecutive cubs are failed, the preceding
	// living cub will send scheduling information to the succeeding
	// living cub, bridging the gap." Streams continue, missing only the
	// blocks that cannot be reconstructed.
	o := defaultRigOptions()
	o.cubs, o.decluster = 10, 2
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.net.Fail(3)
	r.net.Fail(4)
	r.run(50 * time.Second)

	got := r.got(1)
	// 60 blocks expected; the stream passes the dead pair every 10
	// blocks. Blocks on cub3 lose piece 0 (on cub4): unreconstructable.
	// Blocks on cub4 have pieces on cubs 5,6: fine. So ~5 blocks lost
	// to the gap plus a few to detection latency.
	if got < 45 {
		t.Fatalf("viewer got %d of ~60 blocks with a two-cub gap", got)
	}
	if tot := r.totals(); tot.PiecesLost == 0 {
		t.Fatal("expected lost pieces for blocks mirrored onto the dead pair")
	}
	// Forwarding must have bridged: cubs past the gap keep serving.
	if r.cubs[5].Stats().BlocksSent == 0 {
		t.Fatal("cub past the gap never served")
	}
}

func TestRedundantStartPromotion(t *testing.T) {
	// §4.1.3: the start request goes to the target cub and its successor;
	// if the target dies before inserting, the successor inserts.
	o := defaultRigOptions()
	r := newRig(t, o)
	// File 2 starts on disk 6 (cub 6): kill cub 6 before the request.
	f := r.cfg.Files[2]
	d0 := r.cfg.Layout.PrimaryDisk(f, 0)
	target := int(r.cfg.Layout.CubOfDisk(d0))
	r.net.Fail(msg.NodeID(target))
	r.run(r.cfg.DeadmanTimeout + 2*time.Second)

	r.play(1, 2, 0)
	r.run(20 * time.Second)
	got := r.got(1)
	if got < 12 {
		t.Fatalf("stream starting on a dead cub's disk got %d blocks", got)
	}
	succ := r.cubs[(target+1)%o.cubs]
	if succ.Stats().RedundantRuns == 0 {
		t.Fatal("successor never promoted the redundant start")
	}
	if succ.Stats().Inserts == 0 {
		t.Fatal("successor never inserted by proxy")
	}
}

func TestRejoinedCubResumesService(t *testing.T) {
	o := defaultRigOptions()
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.net.Fail(3)
	r.run(20 * time.Second)
	r.net.Revive(3)
	r.run(30 * time.Second)
	// After revival the cub rebuilds its view from gossip and serves
	// primaries again.
	base := r.cubs[3].Stats().BlocksSent
	r.run(20 * time.Second)
	if r.cubs[3].Stats().BlocksSent == base {
		t.Fatal("revived cub never served again")
	}
	for _, c := range r.cubs {
		if c.believedDead[3] {
			t.Fatalf("cub %v still believes cub3 dead after revival", c.ID())
		}
	}
}

func TestSingleDiskFailure(t *testing.T) {
	// A lone disk failure (not a whole cub): its own cub converts the
	// schedule entries into mirror viewer states.
	o := defaultRigOptions()
	o.cubs, o.disksPerCub, o.decluster = 6, 2, 2
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	// Fail one disk of cub 2.
	var failDisk int
	for d := range r.cubs[2].Disks() {
		failDisk = d
		break
	}
	r.cubs[2].FailDisk(failDisk)
	r.run(40 * time.Second)
	got := r.got(1)
	if got < 45 {
		t.Fatalf("viewer got %d of ~48 blocks after disk failure", got)
	}
	if r.totals().MirrorsMade == 0 {
		t.Fatal("no mirror states for the failed disk")
	}
	// The owning cub keeps serving from its healthy disk.
	if r.cubs[2].Stats().BlocksSent == 0 {
		t.Fatal("cub with one failed disk stopped serving entirely")
	}
}

func TestSingleForwardingLosesMoreOnFailure(t *testing.T) {
	// Ablation A1: with single forwarding, schedule information queued
	// only at the failed cub is lost, so more blocks go missing than
	// with double forwarding (§4.1.1's design rationale).
	losses := func(single bool) int {
		o := defaultRigOptions()
		o.cubs, o.decluster = 8, 2
		o.mutate = func(c *Config) { c.SingleForward = single }
		r := newRig(t, o)
		for v := msg.ViewerID(1); v <= 4; v++ {
			r.play(v, msg.FileID(int(v-1)%o.files), 0)
		}
		r.run(10 * time.Second)
		r.net.Fail(3)
		r.run(40 * time.Second)
		lost := 0
		for v := msg.ViewerID(1); v <= 4; v++ {
			expect := int(r.eng.Now().Seconds()) - 3 // minus startup slack
			if got := r.got(v); got < expect {
				lost += expect - got
			}
		}
		return lost
	}
	double := losses(false)
	single := losses(true)
	t.Logf("blocks lost after failure: double=%d single=%d", double, single)
	if single <= double {
		t.Fatalf("single forwarding should lose more: single=%d double=%d", single, double)
	}
}

func TestMonitoredSetSizeBounded(t *testing.T) {
	// The deadman protocol is neighbour-based: monitored sets must not
	// grow with system size.
	for _, cubs := range []int{6, 12, 24} {
		o := defaultRigOptions()
		o.cubs = cubs
		r := newRig(t, o)
		want := 2 * (o.decluster + 1)
		for _, c := range r.cubs {
			if len(c.monitored) > want {
				t.Fatalf("%d cubs: monitored set %d exceeds %d", cubs, len(c.monitored), want)
			}
		}
	}
}
