package core

import (
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/schedule"
	"tiger/internal/sim"
)

// rig assembles a minimal Tiger system for protocol tests, with direct
// access to cub internals (same package).
type rig struct {
	t    *testing.T
	eng  *sim.Engine
	net  *netsim.Network
	cfg  *Config
	ctl  *Controller
	cubs []*Cub
	loss *metrics.LossLog

	// deliveries[viewer][playseq] = pieces received
	deliveries map[msg.ViewerID]map[int32]int
	lastInst   map[msg.ViewerID]msg.InstanceID
}

type rigOptions struct {
	cubs, disksPerCub, decluster int
	files                        int
	fileBlocks                   int
	blockPlay                    time.Duration
	mutate                       func(*Config)
}

func defaultRigOptions() rigOptions {
	return rigOptions{
		cubs: 8, disksPerCub: 1, decluster: 2,
		files: 4, fileBlocks: 1200, blockPlay: time.Second,
	}
}

func newRig(t *testing.T, o rigOptions) *rig {
	t.Helper()
	lay := layout.Config{Cubs: o.cubs, DisksPerCub: o.disksPerCub, Decluster: o.decluster}
	if err := lay.Validate(); err != nil {
		t.Fatal(err)
	}
	dp := disk.DefaultParams()
	dp.BlipProb = 0 // protocol tests want deterministic disks
	blockSize := int64(262144)
	capa := disk.PlanCapacity(dp, lay.NumDisks(), blockSize, o.blockPlay, o.decluster)
	sp, err := schedule.NewParams(o.blockPlay, lay.NumDisks(), capa.Streams)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[msg.FileID]layout.File)
	for i := 0; i < o.files; i++ {
		files[msg.FileID(i)] = layout.File{
			ID: msg.FileID(i), StartDisk: (i * 3) % lay.NumDisks(),
			Blocks: o.fileBlocks, Bitrate: 2_000_000, BlockSize: blockSize,
		}
	}
	cfg := &Config{
		Layout: lay, Sched: sp, BlockSize: blockSize,
		DiskParams: dp, CPUModel: metrics.DefaultCPUModel(), Files: files,
	}
	cfg.DefaultTimings()
	if o.mutate != nil {
		o.mutate(cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	eng := sim.New(42)
	clk := clock.Sim{Eng: eng}
	net := netsim.New(netsim.DefaultParams(), clk, eng.Rand())
	r := &rig{
		t: t, eng: eng, net: net, cfg: cfg,
		loss:       &metrics.LossLog{},
		deliveries: make(map[msg.ViewerID]map[int32]int),
		lastInst:   make(map[msg.ViewerID]msg.InstanceID),
	}
	r.ctl = NewController(cfg, clk, net)
	net.Register(msg.Controller, r.ctl)
	for i := 0; i < o.cubs; i++ {
		cub := NewCub(msg.NodeID(i), cfg, clk, net, net, eng.Rand())
		cub.SetLossLog(r.loss)
		net.Register(msg.NodeID(i), cub)
		r.cubs = append(r.cubs, cub)
	}
	for _, c := range r.cubs {
		c.Start()
	}
	return r
}

// sink implements netsim.DataSink, recording piece counts per playseq.
type sink struct {
	r *rig
	v msg.ViewerID
}

func (s sink) DeliverBlock(d netsim.BlockDelivery) {
	if d.Instance != s.r.lastInst[s.v] {
		return
	}
	m := s.r.deliveries[s.v]
	if m == nil {
		m = make(map[int32]int)
		s.r.deliveries[s.v] = m
	}
	m[d.PlaySeq]++
}

// play starts a viewer on the given file/block and registers a sink.
func (r *rig) play(v msg.ViewerID, file msg.FileID, block int32) msg.InstanceID {
	r.t.Helper()
	if _, seen := r.deliveries[v]; !seen {
		r.net.RegisterViewer(v, sink{r: r, v: v})
	}
	inst, err := r.ctl.StartPlay(v, file, block, 2_000_000)
	if err != nil {
		r.t.Fatal(err)
	}
	r.lastInst[v] = inst
	return inst
}

func (r *rig) run(d time.Duration) { r.eng.RunFor(d) }

// got returns how many distinct playseqs viewer v received at least one
// piece for.
func (r *rig) got(v msg.ViewerID) int { return len(r.deliveries[v]) }

// totals sums a stat across cubs.
func (r *rig) totals() CubStats {
	var t CubStats
	for _, c := range r.cubs {
		s := c.Stats()
		t.BlocksSent += s.BlocksSent
		t.PiecesSent += s.PiecesSent
		t.ServerMisses += s.ServerMisses
		t.StatesRecv += s.StatesRecv
		t.StatesDup += s.StatesDup
		t.StatesLate += s.StatesLate
		t.Conflicts += s.Conflicts
		t.Inserts += s.Inserts
		t.MirrorsMade += s.MirrorsMade
		t.PiecesLost += s.PiecesLost
		t.IndexMisses += s.IndexMisses
		t.DeathsRefuted += s.DeathsRefuted
		t.StartsDup += s.StartsDup
		t.Rejoins += s.Rejoins
		t.RejoinsServed += s.RejoinsServed
		t.ViewTransferred += s.ViewTransferred
		t.MirrorsRetired += s.MirrorsRetired
		t.StaleEpochDrops += s.StaleEpochDrops
	}
	return t
}

// mirrorLoadFor sums the mirror-piece entries the other cubs hold
// covering cub i's disks.
func (r *rig) mirrorLoadFor(i int) int {
	n := 0
	for j, c := range r.cubs {
		if j == i {
			continue
		}
		n += c.MirrorLoadFor(msg.NodeID(i))
	}
	return n
}
