package core

import (
	"fmt"
	"time"

	"tiger/internal/clock"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// PlayState tracks one start request at the controller.
type PlayState int

const (
	PlayQueued PlayState = iota // sent to cubs, not yet inserted
	PlayActive                  // inserted into a slot
	PlayDone                    // stopped or reached end of file
)

type playRecord struct {
	viewer     msg.ViewerID
	file       msg.FileID
	startBlock int32
	bitrate    int32
	primary    msg.NodeID
	slot       int32
	state      PlayState
	issued     sim.Time
	gen        int32 // striping generation the play was admitted under
}

// ControllerStats are cumulative counters for the controller.
type ControllerStats struct {
	Starts    int64
	Stops     int64
	Acks      int64
	EOFs      int64
	Rejected  int64 // refused by the admission limit
	MaxActive int

	// Failover counters (scavenge.go).
	Takeovers       int64 // restarts of the controller incarnation
	ScavengeReplies int64 // cub inventory replies folded
	ScavengedPlays  int64 // play records rebuilt from cub inventories
	ScavengedParks  int64 // parked-stream tickets recovered from cubs
}

// Controller is the Tiger controller machine: the clients' contact
// point, the clock master, and little else — the paper's point is that
// distributing the schedule leaves the controller with almost nothing to
// do, so its load stays flat as the system grows (§2.1, Figure 8).
type Controller struct {
	cfg *Config
	clk clock.Clock
	net Transport
	cpu metrics.CPU

	nextInstance msg.InstanceID
	plays        map[msg.InstanceID]*playRecord
	active       int

	// Striping generations: during an elastic restripe two schedules
	// coexist and admission must respect the disks they share. gens maps
	// installed generation -> its Config; genLoad counts not-yet-finished
	// plays admitted under each generation.
	gens      map[int32]*Config
	activeGen int32
	genLoad   map[int32]int

	// Live-restripe coordinator state (restriper.go).
	rs restriperState

	// Degradation-governor state (governor.go).
	gov governorState

	// Controller-failover state (scavenge.go). ctlEpoch is this
	// incarnation's epoch, stamped into every controller-originated order
	// so cubs can fence a dead incarnation's in-flight traffic; down
	// makes a crashed incarnation inert in place; the scav* fields track
	// an in-progress takeover scavenge.
	ctlEpoch    int32
	down        bool
	started     bool
	hbTimer     clock.Timer
	scavenging  bool
	scavPending map[msg.NodeID]bool
	scavParked  map[msg.InstanceID]*ParkTicket
	scavStart   sim.Time
	takeover    *metrics.Histogram

	stats  ControllerStats
	obs    *ctlObs         // nil until AttachObs
	ctrace *trace.ChainLog // nil until SetChainLog; causal hop recorder

	// OnAck, if set, is called when an insertion is confirmed; harnesses
	// use it to measure slot-assignment latency.
	OnAck func(inst msg.InstanceID, slot int32, waited time.Duration)

	// OnRestripeDone, if set, is called once every move of a restripe run
	// has committed at its destination.
	OnRestripeDone func()

	// OnParked, if set, is consulted when the governor parks a stream: the
	// harness tears the viewer down before its next deadline and returns
	// the file and block the re-admitted stream should resume from.
	OnParked func(viewer msg.ViewerID, inst msg.InstanceID) (file msg.FileID, resumeBlock int32, ok bool)

	// OnReadmit, if set, is called for each parked stream when the
	// governor drains its queue: the harness runs an ordinary Play and
	// returns the new instance (0 if the ticket resolved without one,
	// e.g. the stream would have ended). ok=false means admission
	// refused — the governor retries later.
	OnReadmit func(t ParkTicket) (msg.InstanceID, bool)

	// OnScavenged, if set, is called when a takeover scavenge completes:
	// the rebuilt state is installed and the harness may replay
	// environmental knowledge the dead incarnation held that cubs do not
	// (the out-of-band down-cub notifications, an in-flight restripe
	// plan).
	OnScavenged func()
}

// NewController creates a controller for the given system.
func NewController(cfg *Config, clk clock.Clock, net Transport) *Controller {
	c := &Controller{
		cfg:      cfg,
		clk:      clk,
		net:      net,
		plays:    make(map[msg.InstanceID]*playRecord),
		gens:     map[int32]*Config{0: cfg},
		genLoad:  make(map[int32]int),
		ctlEpoch: 1,
		takeover: metrics.NewHistogram(RecoveryBounds...),
	}
	c.cpu.Model = cfg.CPUModel
	return c
}

// InstallGen makes a striping generation's configuration known to the
// controller. Idempotent.
func (c *Controller) InstallGen(gen int32, cfg *Config) {
	if _, ok := c.gens[gen]; ok {
		return
	}
	c.gens[gen] = cfg
}

// SetActiveGen flips which generation admits new plays.
func (c *Controller) SetActiveGen(gen int32) {
	if _, ok := c.gens[gen]; !ok {
		panic(fmt.Sprintf("controller: SetActiveGen(%d) before InstallGen", gen))
	}
	c.activeGen = gen
}

// ActiveGen returns the generation new plays are admitted under.
func (c *Controller) ActiveGen() int32 { return c.activeGen }

// DropGen forgets a fully drained generation.
func (c *Controller) DropGen(gen int32) {
	if gen == c.activeGen {
		panic(fmt.Sprintf("controller: cannot drop active generation %d", gen))
	}
	delete(c.gens, gen)
	delete(c.genLoad, gen)
}

// GenLoad returns the number of not-yet-finished plays admitted under
// one generation; the restripe drain monitor polls the old generation's
// count toward zero.
func (c *Controller) GenLoad(gen int32) int { return c.genLoad[gen] }

// SetChainLog attaches a causal-trace chain recorder. While attached,
// every admitted play is stamped traced (StartPlay.Trace = 1), so the
// cubs it touches record hop chains for its blocks.
func (c *Controller) SetChainLog(l *trace.ChainLog) { c.ctrace = l }

// ChainLog returns the attached chain recorder, or nil.
func (c *Controller) ChainLog() *trace.ChainLog { return c.ctrace }

// CPUBusy returns the controller's cumulative modelled CPU time.
func (c *Controller) CPUBusy() time.Duration { return c.cpu.Busy() }

// Stats returns a snapshot of controller counters.
func (c *Controller) Stats() ControllerStats { return c.stats }

// Active returns the number of currently playing (inserted) viewers the
// controller knows about.
func (c *Controller) Active() int { return c.active }

// StartPlay handles a viewer's request to begin receiving a file: it
// assigns an instance ID and forwards the request to the cub holding the
// first block wanted, plus that cub's successor for redundancy (§4.1.3).
func (c *Controller) StartPlay(viewer msg.ViewerID, file msg.FileID, startBlock int32, bitrate int32) (msg.InstanceID, error) {
	return c.StartPlayFrom(viewer, [16]byte{}, file, startBlock, bitrate)
}

// StartPlayFrom is StartPlay carrying the viewer's network address,
// which rides in every viewer state so cubs know where to send blocks
// (the real-time transport uses it; the simulator routes by ViewerID).
func (c *Controller) StartPlayFrom(viewer msg.ViewerID, addr [16]byte, file msg.FileID, startBlock int32, bitrate int32) (msg.InstanceID, error) {
	c.cpu.ChargeStartReq()
	if c.down {
		return 0, ErrControllerDown
	}
	if c.scavenging {
		// Admitting before the fold completes risks double-admitting an
		// instance a cub is about to report; callers retry after the
		// scavenge window (one RTT, bounded by the deadman closeout).
		return 0, ErrScavenging
	}
	acfg := c.gens[c.activeGen]
	f, ok := acfg.Files[file]
	if !ok {
		return 0, fmt.Errorf("controller: unknown file %d", file)
	}
	if startBlock < 0 || int(startBlock) >= f.Blocks {
		return 0, fmt.Errorf("controller: file %d has no block %d", file, startBlock)
	}
	if acfg.AdmitLimit > 0 {
		if len(c.gens) == 1 {
			limit := int(acfg.AdmitLimit * float64(acfg.Sched.NumSlots))
			if c.pendingAndActive() >= limit {
				c.stats.Rejected++
				if o := c.obs; o != nil {
					o.rejected.Inc()
				}
				return 0, fmt.Errorf("controller: schedule load limit %d reached", limit)
			}
		} else {
			// During a restripe the generations share the same spindles,
			// so the admission budget is joint: each play consumes one
			// slot-fraction of its own generation's ring, and the sum of
			// fractions bounds per-disk stream load exactly as the single
			// ring did (both rings carry the same streams-per-disk ratio).
			frac := 0.0
			for g, n := range c.genLoad {
				if gcfg := c.gens[g]; gcfg != nil && n > 0 {
					frac += float64(n) / float64(gcfg.Sched.NumSlots)
				}
			}
			if frac >= acfg.AdmitLimit {
				c.stats.Rejected++
				if o := c.obs; o != nil {
					o.rejected.Inc()
				}
				return 0, fmt.Errorf("controller: joint schedule load limit %.3f reached", acfg.AdmitLimit)
			}
		}
	}
	c.nextInstance++
	inst := c.nextInstance
	d0 := acfg.Layout.PrimaryDisk(f, int(startBlock))
	primary := acfg.Layout.CubOfDisk(d0)
	now := c.clk.Now()
	c.plays[inst] = &playRecord{
		viewer:     viewer,
		file:       file,
		startBlock: startBlock,
		bitrate:    bitrate,
		primary:    primary,
		slot:       -1,
		state:      PlayQueued,
		issued:     now,
		gen:        c.activeGen,
	}
	c.genLoad[c.activeGen]++
	sp := msg.StartPlay{
		Viewer:     viewer,
		Instance:   inst,
		Addr:       addr,
		File:       file,
		StartBlock: startBlock,
		Bitrate:    bitrate,
		Issued:     int64(now),
		Ctl:        c.ctlEpoch,
	}
	if c.ctrace != nil {
		sp.Trace = 1
		// The admit hop predates the deadline — no slot, no due time yet —
		// so its slack is recorded as zero and the attribution engine
		// charges admit→insert by elapsed wait instead of slack delta.
		c.ctrace.Record(inst, startBlock, trace.Hop{
			At:    now,
			Node:  msg.Controller,
			Kind:  trace.HopAdmit,
			Slack: 0,
			Slot:  -1,
			Disk:  int32(d0),
		})
	}
	p := sp
	p.Primary = true
	c.net.Send(msg.Controller, primary, &p)
	r := sp
	r.Primary = false
	c.net.Send(msg.Controller, acfg.Layout.Successor(primary), &r)
	c.stats.Starts++
	if o := c.obs; o != nil {
		o.starts.Inc()
	}
	return inst, nil
}

// StopPlay handles a viewer's "stop playing" request: the controller
// determines which cub the viewer is currently receiving data from and
// forwards an idempotent deschedule request to it and its successor
// (§4.1.2).
func (c *Controller) StopPlay(inst msg.InstanceID) {
	c.cpu.ChargeStartReq()
	if c.down {
		return
	}
	rec, ok := c.plays[inst]
	if !ok || rec.state == PlayDone {
		return
	}
	c.stats.Stops++
	if o := c.obs; o != nil {
		o.stops.Inc()
	}
	d := msg.Deschedule{
		Viewer:   rec.viewer,
		Instance: inst,
		Slot:     rec.slot, // -1 when still queued: cancels the start
		Created:  int64(c.clk.Now()),
	}
	rcfg := c.gens[rec.gen]
	if rcfg == nil {
		rcfg = c.cfg
	}
	var target msg.NodeID
	if rec.state == PlayQueued {
		target = rec.primary
	} else {
		target = rcfg.Layout.CubOfDisk(c.servingDisk(rec.slot))
	}
	d1 := d
	c.net.Send(msg.Controller, target, &d1)
	d2 := d
	c.net.Send(msg.Controller, rcfg.Layout.Successor(target), &d2)
	c.finish(inst, rec)
}

// NotifyEOF records that a viewer reached end of file; the stream left
// the schedule on its own (§4.1.2: "handling end-of-file is
// straightforward").
func (c *Controller) NotifyEOF(inst msg.InstanceID) {
	if c.down {
		return
	}
	rec, ok := c.plays[inst]
	if !ok || rec.state == PlayDone {
		return
	}
	c.stats.EOFs++
	if o := c.obs; o != nil {
		o.eofs.Inc()
	}
	c.finish(inst, rec)
}

func (c *Controller) finish(inst msg.InstanceID, rec *playRecord) {
	if rec.state == PlayActive {
		c.active--
		if o := c.obs; o != nil {
			o.active.Set(float64(c.active))
		}
	}
	if rec.state != PlayDone {
		if n := c.genLoad[rec.gen]; n > 0 {
			c.genLoad[rec.gen] = n - 1
		}
	}
	rec.state = PlayDone
	// Keep the tombstone briefly — a late or redundant StartAck still in
	// flight needs the record so its slot can be killed (onStartAck's
	// PlayDone path) — then forget it. A minute dwarfs any transport
	// delay, and bounds the map at O(active + recently finished) instead
	// of every play ever admitted.
	c.clk.After(time.Minute, func() {
		if r, ok := c.plays[inst]; ok && r == rec {
			delete(c.plays, inst)
		}
	})
}

// servingDisk returns the generation-local disk about to serve the
// given slot, under the slot's own generation.
//
// Closed form of "the disk whose next service of this slot comes
// soonest": disk d serves the slot at now + mod(d·blockPlay + raw·svc −
// now, cycle), and those N candidate offsets are y0 mod blockPlay plus a
// distinct multiple of blockPlay each, so the minimum is taken by the
// disk that cancels y0's whole-blockPlay part — no scan over NumDisks.
func (c *Controller) servingDisk(slot int32) int {
	cfg := c.gens[GenOf(slot)]
	if cfg == nil {
		cfg = c.cfg
	}
	raw := RawSlot(slot)
	now := c.clk.Now()
	p := cfg.Sched
	cycle := int64(p.CycleLen())
	y0 := (int64(raw)*int64(p.BlockService)-int64(now))%cycle + cycle
	y0 %= cycle
	n := p.NumDisks
	return (n - int(y0/int64(p.BlockPlay))) % n
}

// pendingAndActive counts plays admitted but not yet finished. The
// per-generation admission loads sum to exactly that — genLoad increments
// at admission and decrements once at finish — so no sweep over the
// play records is needed.
func (c *Controller) pendingAndActive() int {
	n := 0
	for _, g := range c.genLoad {
		n += g
	}
	return n
}

// Deliver implements netsim.Handler for messages addressed to the
// controller: start acknowledgements from cubs, and the commit/nack
// halves of the live-restripe move protocol.
func (c *Controller) Deliver(from msg.NodeID, m msg.Message) {
	c.cpu.ChargeCtlMsg()
	if c.down {
		// A crashed incarnation is inert: anything addressed to it — a
		// StartAck racing the crash, a late commit — is lost exactly as a
		// dead process would lose it, and the takeover scavenge rebuilds
		// the state from the cubs instead.
		return
	}
	switch t := m.(type) {
	case *msg.StartAck:
		c.onStartAck(t)
	case *msg.MoveCommit:
		c.onMoveCommit(t)
	case *msg.MoveNack:
		c.onMoveNack(t)
	case *msg.ParkAck:
		c.onParkAck(t)
	case *msg.ScavengeReply:
		c.onScavengeReply(t)
	}
}

func (c *Controller) onStartAck(a *msg.StartAck) {
	rec, found := c.plays[a.Instance]
	if !found {
		return
	}
	if rec.state == PlayDone {
		// The viewer stopped while its insertion was in flight: the
		// queue-cancel deschedule missed. Kill the slot properly now —
		// deschedules are idempotent, so this is safe even if the cancel
		// did land (§4.1.2).
		d := msg.Deschedule{
			Viewer:   rec.viewer,
			Instance: a.Instance,
			Slot:     a.Slot,
			Created:  int64(c.clk.Now()),
		}
		rcfg := c.gens[rec.gen]
		if rcfg == nil {
			rcfg = c.cfg
		}
		d1 := d
		c.net.Send(msg.Controller, a.By, &d1)
		d2 := d
		c.net.Send(msg.Controller, rcfg.Layout.Successor(a.By), &d2)
		return
	}
	if rec.state != PlayQueued {
		return // duplicate ack
	}
	rec.slot = a.Slot
	rec.state = PlayActive
	c.active++
	if c.active > c.stats.MaxActive {
		c.stats.MaxActive = c.active
	}
	c.stats.Acks++
	waited := c.clk.Now().Sub(rec.issued)
	if o := c.obs; o != nil {
		o.acks.Inc()
		o.active.Set(float64(c.active))
		o.slotWait.Observe(waited.Seconds())
	}
	if c.OnAck != nil {
		c.OnAck(a.Instance, a.Slot, waited)
	}
}
