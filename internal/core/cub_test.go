package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

func TestSteadyStateDelivery(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(30 * time.Second)
	if got := r.got(1); got < 26 || got > 30 {
		t.Fatalf("viewer received %d blocks in 30s, want ~28", got)
	}
	tot := r.totals()
	if tot.ServerMisses != 0 || tot.Conflicts != 0 || tot.IndexMisses != 0 {
		t.Fatalf("anomalies: %+v", tot)
	}
	if tot.Inserts != 1 {
		t.Fatalf("%d inserts for one play", tot.Inserts)
	}
}

func TestBlocksFlowInOrderFromConsecutiveCubs(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	var served []msg.NodeID
	for _, c := range r.cubs {
		c.SetHooks(Hooks{OnServe: func(cub msg.NodeID, vs msg.ViewerState) {
			served = append(served, cub)
		}})
	}
	r.play(1, 0, 0)
	r.run(20 * time.Second)
	if len(served) < 15 {
		t.Fatalf("only %d serves", len(served))
	}
	// Striping: consecutive blocks come from consecutive cubs (§2.2).
	for i := 1; i < len(served); i++ {
		want := msg.NodeID((int(served[i-1]) + 1) % r.cfg.Layout.Cubs)
		if served[i] != want {
			t.Fatalf("serve %d from %v after %v, want %v", i, served[i], served[i-1], want)
		}
	}
}

// TestViewBounded verifies §4's scalability invariant: a cub's view is
// bounded by the lead window, independent of file length or run time.
func TestViewBounded(t *testing.T) {
	o := defaultRigOptions()
	r := newRig(t, o)
	for v := msg.ViewerID(1); v <= 10; v++ {
		r.play(v, msg.FileID(int(v)%o.files), 0)
	}
	perStream := int(r.cfg.MaxVStateLead/r.cfg.Sched.BlockPlay) + 3
	bound := 10 * perStream
	for i := 0; i < 30; i++ {
		r.run(2 * time.Second)
		for _, c := range r.cubs {
			if v := c.ViewSize(); v > bound {
				t.Fatalf("cub %v view %d exceeds bound %d", c.ID(), v, bound)
			}
		}
	}
}

func TestDuplicateViewerStatesIgnored(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(15 * time.Second)
	tot := r.totals()
	// Double forwarding means roughly half of all received states are
	// idempotent duplicates — and none of them conflict.
	if tot.StatesDup == 0 {
		t.Fatal("no duplicates despite double forwarding")
	}
	if tot.Conflicts != 0 {
		t.Fatalf("conflicts: %d", tot.Conflicts)
	}
	ratio := float64(tot.StatesDup) / float64(tot.StatesRecv)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("duplicate ratio %.2f, want ~0.5", ratio)
	}
}

func TestStopPlayDeschedules(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	inst := r.play(1, 0, 0)
	r.run(10 * time.Second)
	before := r.got(1)
	r.ctl.StopPlay(inst)
	r.run(15 * time.Second)
	after := r.got(1)
	// A couple of already-queued sends may still arrive, then silence.
	if after-before > 3 {
		t.Fatalf("%d blocks after stop", after-before)
	}
	// All views drain.
	r.run(10 * time.Second)
	for _, c := range r.cubs {
		if c.ViewSize() != 0 {
			t.Fatalf("cub %v still holds %d entries after stop", c.ID(), c.ViewSize())
		}
	}
	if r.ctl.Active() != 0 {
		t.Fatalf("controller still counts %d active", r.ctl.Active())
	}
}

func TestStopQueuedPlayCancels(t *testing.T) {
	o := defaultRigOptions()
	o.mutate = func(c *Config) { c.AdmitLimit = 0 }
	r := newRig(t, o)
	inst := r.play(1, 0, 0)
	// Stop immediately. The cancel may race the cub's insertion; either
	// way the stream must die quickly and leave nothing behind.
	r.ctl.StopPlay(inst)
	r.run(30 * time.Second)
	if got := r.got(1); got > 5 {
		t.Fatalf("cancelled play delivered %d blocks", got)
	}
	for _, c := range r.cubs {
		if c.ViewSize() != 0 {
			t.Fatalf("cub %v still holds %d entries", c.ID(), c.ViewSize())
		}
		if c.QueueLen() != 0 {
			t.Fatalf("cub %v still queues %d starts", c.ID(), c.QueueLen())
		}
	}
}

func TestEOFLeavesScheduleCleanly(t *testing.T) {
	o := defaultRigOptions()
	o.fileBlocks = 10
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(25 * time.Second)
	if got := r.got(1); got != 10 {
		t.Fatalf("viewer got %d of 10 blocks", got)
	}
	for _, c := range r.cubs {
		if c.ViewSize() != 0 {
			t.Fatalf("cub %v holds %d entries after EOF", c.ID(), c.ViewSize())
		}
	}
}

func TestSlotReuseAfterStop(t *testing.T) {
	// A descheduled slot must be reusable by a later viewer without
	// conflicts (§4.1.2/§4.1.3 interaction).
	o := defaultRigOptions()
	r := newRig(t, o)
	conflicts := 0
	insertedSlots := map[int32]msg.InstanceID{}
	for _, c := range r.cubs {
		c.SetHooks(Hooks{OnInsert: func(cub msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
			if _, busy := insertedSlots[slot]; busy {
				conflicts++
			}
			insertedSlots[slot] = inst
		}})
	}
	inst := r.play(1, 0, 0)
	r.run(5 * time.Second)
	r.ctl.StopPlay(inst)
	r.run(5 * time.Second)
	delete(insertedSlots, 0) // allow reuse in the oracle: stream 1 is gone
	for k := range insertedSlots {
		delete(insertedSlots, k)
	}
	r.play(2, 1, 0)
	r.run(20 * time.Second)
	if conflicts != 0 {
		t.Fatalf("%d conflicts", conflicts)
	}
	if got := r.got(2); got < 15 {
		t.Fatalf("second viewer got %d blocks", got)
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("state conflicts: %d", tot.Conflicts)
	}
}

func TestLateViewerStateDiscardedNotForwarded(t *testing.T) {
	// §4.1.2: a state older than the deschedule hold is discarded, so a
	// viewer cannot be spontaneously rescheduled.
	r := newRig(t, defaultRigOptions())
	r.run(30 * time.Second) // settle
	cub := r.cubs[3]
	stale := &msg.ViewerState{
		Viewer: 9, Instance: 99, File: 0, Block: 5, Slot: 7, PlaySeq: 5,
		Due:      int64(r.eng.Now()) - int64(r.cfg.DescheduleHold) - int64(time.Second),
		OrigDisk: 3,
		Epoch:    r.cubs[2].Epoch(), // current epoch: late, not epoch-stale
	}
	cub.Deliver(msg.NodeID(2), stale)
	if cub.Stats().StatesLate != 1 {
		t.Fatalf("late state not counted: %+v", cub.Stats())
	}
	r.run(5 * time.Second)
	// Nothing may have propagated: no other cub saw any state.
	for _, c := range r.cubs {
		if c.ViewSize() != 0 {
			t.Fatalf("late state resurrected an entry on cub %v", c.ID())
		}
	}
}

func TestDescheduleIsIdempotentAndHarmless(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	cub := r.cubs[0]
	d := &msg.Deschedule{Viewer: 5, Instance: 55, Slot: 3, Created: int64(r.eng.Now())}
	cub.Deliver(msg.Controller, d)
	cub.Deliver(msg.Controller, d)
	st := cub.Stats()
	if st.DeschedRecv != 2 || st.DeschedDup != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Descheduling an empty slot changes nothing and a fresh play works.
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	if r.got(1) < 7 {
		t.Fatalf("play after stray deschedule got %d blocks", r.got(1))
	}
}

func TestDescheduleRace(t *testing.T) {
	// The paper's Figure 7 scenario: a deschedule and a new insertion
	// into the freed slot chase each other around the ring. The new
	// viewer must survive; the old one must die.
	o := defaultRigOptions()
	r := newRig(t, o)
	inst1 := r.play(1, 0, 0)
	r.run(7 * time.Second)
	// Stop viewer 1 and immediately start viewer 2 on the same file, so
	// it is likely to reuse the freed slot.
	r.ctl.StopPlay(inst1)
	r.play(2, 0, 0)
	r.run(30 * time.Second)
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("conflicts: %d", tot.Conflicts)
	}
	got := r.got(2)
	if got < 25 {
		t.Fatalf("new viewer got only %d blocks", got)
	}
}
