package core

import (
	"strconv"

	"tiger/internal/disk"
	"tiger/internal/obs"
)

// This file wires the protocol to the observability registry
// (internal/obs). Instrumentation is strictly optional: the obs pointer
// stays nil until AttachObs, every recording site is nil-guarded, and
// the existing CubStats/ControllerStats counters remain the source of
// truth for tests — the registry is the export surface (tigerd's
// /metrics, tigerbench's JSONL artifacts), not a replacement.
//
// Counter and gauge updates are lock-free atomics, so the extra cost on
// the protocol hot path is one pointer test plus one CAS per event —
// cheap enough to leave attached during capacity experiments.

// startWaitBounds bucket the queue-to-insertion wait of start requests
// (seconds). The paper's Figure 10 puts typical slot waits well under a
// second even at high load; the tail buckets catch saturation.
var startWaitBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// cubObs bundles the registry instruments one cub updates on its
// protocol paths. Field groups mirror CubStats.
type cubObs struct {
	inserts    *obs.Counter
	blocksSent *obs.Counter
	piecesSent *obs.Counter
	misses     *obs.Counter

	statesRecv *obs.Counter
	statesLate *obs.Counter
	statesDup  *obs.Counter
	conflicts  *obs.Counter

	deschedRecv *obs.Counter
	fwdBatches  *obs.Counter
	fwdMsgs     *obs.Counter
	mirrorsMade *obs.Counter
	piecesLost  *obs.Counter

	deadDeclared  *obs.Counter
	deathsRefuted *obs.Counter
	startsDup     *obs.Counter
	rejoins       *obs.Counter
	rejoinsServed *obs.Counter
	viewXfer      *obs.Counter
	mirrorsBack   *obs.Counter
	staleDrops    *obs.Counter

	// Gray-failure monitor (health.go).
	hedgesIssued      *obs.Counter
	hedgeLocalWins    *obs.Counter
	hedgeMirrorWins   *obs.Counter
	diskReadErrors    *obs.Counter
	diskSuspects      *obs.Counter
	diskRecoveries    *obs.Counter
	diskQuarantines   *obs.Counter
	diskUnquarantines *obs.Counter
	diskProbes        *obs.Counter
	diskHealth        map[int]*obs.Gauge // health state per local disk

	// Live-restripe mover (mover.go).
	movesOut     *obs.Counter
	movesIn      *obs.Counter
	moveBytesOut *obs.Counter
	moveBytesIn  *obs.Counter
	movesNacked  *obs.Counter
	moverPending *obs.Gauge

	// Degradation governor (park.go).
	parks      *obs.Counter
	resumes    *obs.Counter
	unservable *obs.Gauge

	// Controller failover (scavenge.go).
	ctlStaleDrops *obs.Counter
	ctlTakeovers  *obs.Counter
	scavServed    *obs.Counter
	ctlDown       *obs.Gauge

	viewSize *obs.Gauge
	queueLen *obs.Gauge
	bufBytes *obs.Gauge
	epoch    *obs.Gauge

	startWait *obs.Histogram
	recovery  *obs.Histogram
	spans     *obs.SpanRecorder
}

// AttachObs registers this cub's named instruments (labelled cub="N")
// and its per-disk instruments with the registry, and begins recording.
// Call it before Start, or from the node's executor; attaching is
// idempotent because the registry returns existing instruments.
func (c *Cub) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	cl := strconv.Itoa(int(c.id))
	ls := obs.Labels{"cub": cl}
	o := &cubObs{
		inserts:    reg.Counter("tiger_cub_inserts_total", "Slot insertions performed under ownership (§4.1.3).", ls),
		blocksSent: reg.Counter("tiger_cub_blocks_sent_total", "Primary blocks placed on the network.", ls),
		piecesSent: reg.Counter("tiger_cub_pieces_sent_total", "Declustered mirror pieces placed on the network.", ls),
		misses:     reg.Counter("tiger_cub_server_misses_total", "Scheduled sends that could not be made (late read or late state).", ls),

		statesRecv: reg.Counter("tiger_cub_states_recv_total", "Viewer states received.", ls),
		statesLate: reg.Counter("tiger_cub_states_late_total", "Viewer states discarded as too late (§4.1.2).", ls),
		statesDup:  reg.Counter("tiger_cub_states_dup_total", "Duplicate viewer states ignored.", ls),
		conflicts:  reg.Counter("tiger_cub_conflicts_total", "States for an occupied slot with another instance (should stay 0).", ls),

		deschedRecv: reg.Counter("tiger_cub_deschedules_total", "Deschedule requests received.", ls),
		fwdBatches:  reg.Counter("tiger_cub_gossip_batches_total", "Viewer-state gossip batches sent.", ls),
		fwdMsgs:     reg.Counter("tiger_cub_gossip_msgs_total", "Messages carried inside gossip batches.", ls),
		mirrorsMade: reg.Counter("tiger_cub_mirrors_made_total", "Mirror viewer-state chains created.", ls),
		piecesLost:  reg.Counter("tiger_cub_pieces_lost_total", "Mirror pieces undeliverable (covering cub dead).", ls),

		deadDeclared:  reg.Counter("tiger_cub_dead_declared_total", "Deadman transitions observed.", ls),
		deathsRefuted: reg.Counter("tiger_cub_deaths_refuted_total", "False death declarations withdrawn on proof of life.", ls),
		startsDup:     reg.Counter("tiger_cub_starts_dup_total", "Duplicate start-play enqueues ignored.", ls),
		rejoins:       reg.Counter("tiger_cub_rejoins_total", "Cold restarts this cub performed.", ls),
		rejoinsServed: reg.Counter("tiger_cub_rejoins_served_total", "Rejoin requests answered for neighbours.", ls),
		viewXfer:      reg.Counter("tiger_cub_view_transferred_total", "Schedule entries rebuilt from rejoin replies.", ls),
		mirrorsBack:   reg.Counter("tiger_cub_mirrors_retired_total", "Mirror entries handed back to a rejoined primary.", ls),
		staleDrops:    reg.Counter("tiger_cub_stale_epoch_drops_total", "Messages discarded for carrying a stale epoch.", ls),

		hedgesIssued:      reg.Counter("tiger_cub_hedges_issued_total", "Mirror chains launched to hedge reads on suspected disks.", ls),
		hedgeLocalWins:    reg.Counter("tiger_cub_hedge_local_wins_total", "Hedged sends where the local read completed in time.", ls),
		hedgeMirrorWins:   reg.Counter("tiger_cub_hedge_mirror_wins_total", "Hedged sends covered by the declustered mirror pieces.", ls),
		diskReadErrors:    reg.Counter("tiger_cub_disk_read_errors_total", "Transient read failures reported by local drives.", ls),
		diskSuspects:      reg.Counter("tiger_cub_disk_suspects_total", "Disk health transitions healthy→suspected.", ls),
		diskRecoveries:    reg.Counter("tiger_cub_disk_recoveries_total", "Disk health transitions suspected→healthy.", ls),
		diskQuarantines:   reg.Counter("tiger_cub_disk_quarantines_total", "Disk health transitions suspected→quarantined.", ls),
		diskUnquarantines: reg.Counter("tiger_cub_disk_unquarantines_total", "Quarantines cleared by passing probes.", ls),
		diskProbes:        reg.Counter("tiger_cub_disk_probes_total", "Probe reads issued against quarantined drives.", ls),

		movesOut:     reg.Counter("tiger_cub_moves_out_total", "Restripe copies read and shipped by this cub.", ls),
		movesIn:      reg.Counter("tiger_cub_moves_in_total", "Restripe copies landed on this cub's drives.", ls),
		moveBytesOut: reg.Counter("tiger_cub_move_bytes_out_total", "Bytes of restripe copies shipped.", ls),
		moveBytesIn:  reg.Counter("tiger_cub_move_bytes_in_total", "Bytes of restripe copies landed.", ls),
		movesNacked:  reg.Counter("tiger_cub_moves_nacked_total", "Move orders refused (source drive failed or quarantined).", ls),
		moverPending: reg.Gauge("tiger_cub_moves_pending", "Restripe copy jobs queued on this cub's drives.", ls),

		parks:      reg.Counter("tiger_cub_parks_total", "Governor park orders processed (first sighting per instance).", ls),
		resumes:    reg.Counter("tiger_cub_resumes_total", "Governor resume notices processed.", ls),
		unservable: reg.Gauge("tiger_cub_unservable_disks", "Disks this cub computes mirror-exhausted from its death beliefs.", ls),

		ctlStaleDrops: reg.Counter("tiger_cub_ctl_stale_drops_total", "Orders dropped for carrying a dead controller incarnation's epoch.", ls),
		ctlTakeovers:  reg.Counter("tiger_cub_ctl_takeovers_total", "Controller epoch bumps observed (takeovers).", ls),
		scavServed:    reg.Counter("tiger_cub_scavenges_served_total", "Takeover scavenge requests answered with an inventory.", ls),
		ctlDown:       reg.Gauge("tiger_cub_ctl_down", "1 while this cub's deadman believes the controller dead.", ls),

		viewSize: reg.Gauge("tiger_cub_view_entries", "Schedule entries currently in the cub's view.", ls),
		queueLen: reg.Gauge("tiger_cub_queued_starts", "Start requests waiting for a free slot.", ls),
		bufBytes: reg.Gauge("tiger_cub_buffered_bytes", "Block buffer bytes currently held.", ls),
		epoch:    reg.Gauge("tiger_cub_epoch", "Liveness epoch (bumps on cold restart).", ls),

		startWait: reg.Histogram("tiger_cub_start_wait_seconds", "Queue-to-insertion wait of start requests.", ls, startWaitBounds),
		spans:     obs.NewSpanRecorder(reg, ls),
	}
	rb := make([]float64, len(RecoveryBounds))
	for i, d := range RecoveryBounds {
		rb[i] = d.Seconds()
	}
	o.recovery = reg.Histogram("tiger_cub_recovery_seconds", "Restart-to-reintegration time.", ls, rb)
	o.epoch.Set(float64(c.epoch))
	c.obs = o

	o.diskHealth = make(map[int]*obs.Gauge, len(c.disks))
	for dnum, dk := range c.disks {
		dls := obs.Labels{"cub": cl, "disk": strconv.Itoa(dnum)}
		dk.SetObs(disk.Obs{
			Reads:       reg.Counter("tiger_disk_reads_total", "Disk read operations started.", dls),
			Bytes:       reg.Counter("tiger_disk_read_bytes_total", "Bytes read from disk.", dls),
			BusySeconds: reg.Counter("tiger_disk_busy_seconds_total", "Cumulative disk service time.", dls),
			Queue:       reg.Gauge("tiger_disk_queue_depth", "Outstanding reads including the one in service.", dls),
			Cancelled:   reg.Counter("tiger_disk_cancelled_reads_total", "Reads withdrawn before or during service.", dls),
			Errors:      reg.Counter("tiger_disk_read_errors_total", "Reads completed with a transient failure.", dls),
		})
		g := reg.Gauge("tiger_disk_health_state", "Gray-failure monitor state: 0 healthy, 1 suspected, 2 quarantined.", dls)
		o.diskHealth[dnum] = g
		if h := c.health[dnum]; h != nil {
			g.Set(float64(h.state))
		}
	}
}

// Spans exposes the cub's block-lifecycle span recorder (nil when no
// registry is attached); harnesses use it to record the client-side
// receipt stage against the same deadline series.
func (c *Cub) Spans() *obs.SpanRecorder {
	if c.obs == nil {
		return nil
	}
	return c.obs.spans
}

// ctlObs bundles the controller's registry instruments.
type ctlObs struct {
	starts   *obs.Counter
	stops    *obs.Counter
	acks     *obs.Counter
	eofs     *obs.Counter
	rejected *obs.Counter
	active   *obs.Gauge
	slotWait *obs.Histogram

	// Live-restripe coordinator (restriper.go).
	rsCommitted *obs.Counter
	rsRerouted  *obs.Counter

	// Degradation governor (governor.go).
	parked       *obs.Gauge
	unservable   *obs.Gauge
	parksTotal   *obs.Counter
	resumesTotal *obs.Counter

	// Controller failover (scavenge.go).
	epoch        *obs.Gauge
	takeovers    *obs.Counter
	scavReplies  *obs.Counter
	takeoverTime *obs.Histogram
}

// AttachObs registers the controller's instruments with the registry.
func (c *Controller) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.obs = &ctlObs{
		starts:   reg.Counter("tiger_ctrl_starts_total", "Start-play requests accepted.", nil),
		stops:    reg.Counter("tiger_ctrl_stops_total", "Stop-play requests handled.", nil),
		acks:     reg.Counter("tiger_ctrl_acks_total", "Insertion acknowledgements confirmed.", nil),
		eofs:     reg.Counter("tiger_ctrl_eofs_total", "Streams that reached end of file.", nil),
		rejected: reg.Counter("tiger_ctrl_rejected_total", "Start requests refused by the admission limit.", nil),
		active:   reg.Gauge("tiger_ctrl_active_streams", "Currently inserted streams.", nil),
		slotWait: reg.Histogram("tiger_ctrl_slot_wait_seconds", "Request-to-insertion latency seen by the controller.", nil, startWaitBounds),

		rsCommitted: reg.Counter("tiger_restripe_commits_total", "Restripe moves committed at their destinations.", nil),
		rsRerouted:  reg.Counter("tiger_restripe_reroutes_total", "Restripe moves re-routed to a redundant copy.", nil),

		parked:       reg.Gauge("tiger_governor_parked_streams", "Streams currently parked by the degradation governor.", nil),
		unservable:   reg.Gauge("tiger_governor_unservable_disks", "Disks the governor currently computes mirror-exhausted.", nil),
		parksTotal:   reg.Counter("tiger_governor_parks_total", "Streams parked by the degradation governor.", nil),
		resumesTotal: reg.Counter("tiger_governor_resumes_total", "Parked streams re-admitted after capacity returned.", nil),

		epoch:       reg.Gauge("tiger_ctrl_epoch", "Controller incarnation epoch (bumps on takeover).", nil),
		takeovers:   reg.Counter("tiger_ctrl_takeovers_total", "Controller incarnation restarts performed.", nil),
		scavReplies: reg.Counter("tiger_ctrl_scavenge_replies_total", "Cub inventory replies folded during takeovers.", nil),
	}
	tb := make([]float64, len(RecoveryBounds))
	for i, d := range RecoveryBounds {
		tb[i] = d.Seconds()
	}
	c.obs.takeoverTime = reg.Histogram("tiger_ctrl_takeover_seconds", "Restart-to-rebuilt duration of controller takeovers.", nil, tb)
	c.obs.epoch.Set(float64(c.ctlEpoch))
}
