package core

import (
	"fmt"
	"time"

	"tiger/internal/clock"
	"tiger/internal/layout"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

// This file is the coordinator side of the live restripe (DESIGN §13):
// the controller drives an ElasticPlan's moves through the cubs' movers
// with a bounded dispatch window per source cub, a resend timer for
// orders lost to crashes or partitions, and a re-route path for sources
// whose drive failed or was quarantined mid-run. The coordinator is
// deliberately dumb — ordered moves, at-least-once resend, idempotent
// commits — because every hard problem (fencing stale incarnations,
// exactly-once landing, pacing under load) is solved at the cubs, where
// the rejoin and gray-failure machinery already lives.

const (
	// rsWindow bounds orders in flight per source cub, so a single cub's
	// mover queue never grows past a few copies per drive and a crashed
	// cub strands only a window's worth of work.
	rsWindow = 8
	// rsTick is the dispatch cadence.
	rsTick = time.Second
	// rsResend is how long an uncommitted order waits before the
	// coordinator re-sends it. Generous against pacing gaps (a saturated
	// drive copies every ~2 s), cheap against real loss: duplicates are
	// deduped at both cub ends.
	rsResend = 10 * time.Second
)

// rsMove states.
const (
	rsPending   = 0 // not dispatched (or awaiting re-dispatch after a nack)
	rsInflight  = 1 // order sent, commit not yet seen
	rsCommitted = 2
)

// rsMove is the coordinator's record of one planned move.
type rsMove struct {
	order    msg.MoveOrder
	src      msg.NodeID // current source cub (changes on re-route)
	state    int
	lastSent sim.Time
}

// restriperState is the controller's live-restripe bookkeeping.
type restriperState struct {
	active    bool
	fence     int64
	oldGen    int32
	moves     []*rsMove
	committed int
	rerouted  int64
	nacks     int64
	// outstanding counts in-flight orders per source cub, enforcing
	// rsWindow.
	outstanding map[msg.NodeID]int
	tick        clock.Timer
}

// RestripeStats is a snapshot of coordinator progress for the
// observability surfaces and tigerctl.
type RestripeStats struct {
	Active    bool
	Total     int
	Committed int
	Inflight  int
	Pending   int
	Rerouted  int64
	Nacks     int64
}

// RestripeStats reports the coordinator's current progress.
func (c *Controller) RestripeStats() RestripeStats {
	s := RestripeStats{
		Active:    c.rs.active,
		Total:     len(c.rs.moves),
		Committed: c.rs.committed,
		Rerouted:  c.rs.rerouted,
		Nacks:     c.rs.nacks,
	}
	for _, m := range c.rs.moves {
		switch m.state {
		case rsPending:
			s.Pending++
		case rsInflight:
			s.Inflight++
		}
	}
	return s
}

// StartRestripe begins coordinating an elastic plan's moves. oldGen
// names the generation whose layout the plan's sources live under (the
// re-route path reads its redundant copies); fence identifies the run
// in every move message. The plan must already be installed as a new
// generation at every cub (InstallGen) so destinations can land copies.
func (c *Controller) StartRestripe(fence int64, oldGen int32, plan *layout.ElasticPlan) error {
	if c.rs.active {
		return fmt.Errorf("controller: restripe already active (fence %d)", c.rs.fence)
	}
	if _, ok := c.gens[oldGen]; !ok {
		return fmt.Errorf("controller: restripe from uninstalled generation %d", oldGen)
	}
	moves := make([]*rsMove, len(plan.Moves))
	for i, pm := range plan.Moves {
		moves[i] = &rsMove{
			order: msg.MoveOrder{
				Fence:  fence,
				Seq:    int32(i),
				File:   pm.File,
				Block:  pm.Block,
				Part:   pm.Part,
				SrcIdx: pm.FromIdx,
				DstCub: pm.ToCub,
				DstIdx: pm.ToIdx,
			},
			src: pm.FromCub,
		}
	}
	c.rs = restriperState{
		active:      true,
		fence:       fence,
		oldGen:      oldGen,
		moves:       moves,
		outstanding: make(map[msg.NodeID]int),
	}
	if len(moves) == 0 {
		c.finishRestripe()
		return nil
	}
	c.dispatchMoves()
	return nil
}

// dispatchMoves is the coordinator's periodic pump: send pending orders
// up to each source's window, re-send in-flight orders past the resend
// timeout, and re-arm.
func (c *Controller) dispatchMoves() {
	if !c.rs.active || c.down {
		return
	}
	now := c.clk.Now()
	for _, m := range c.rs.moves {
		switch m.state {
		case rsPending:
			if c.rs.outstanding[m.src] >= rsWindow {
				continue
			}
			c.sendOrder(m, now)
			c.rs.outstanding[m.src]++
			m.state = rsInflight
		case rsInflight:
			if now.Sub(m.lastSent) >= rsResend {
				c.sendOrder(m, now)
			}
		}
	}
	c.rs.tick = c.clk.After(rsTick, c.dispatchMoves)
}

func (c *Controller) sendOrder(m *rsMove, now sim.Time) {
	m.lastSent = now
	o := m.order
	o.Ctl = c.ctlEpoch
	c.net.Send(msg.Controller, m.src, &o)
}

// onMoveCommit marks one move durable at its destination. From here on
// the block's new-generation home is authoritative; duplicates (a
// destination re-acking after a lost commit) are ignored.
func (c *Controller) onMoveCommit(t *msg.MoveCommit) {
	if !c.rs.active || t.Fence != c.rs.fence || int(t.Seq) >= len(c.rs.moves) {
		return
	}
	m := c.rs.moves[t.Seq]
	if m.state == rsCommitted {
		return
	}
	if m.state == rsInflight {
		if n := c.rs.outstanding[m.src]; n > 0 {
			c.rs.outstanding[m.src] = n - 1
		}
	}
	m.state = rsCommitted
	c.rs.committed++
	if o := c.obs; o != nil {
		o.rsCommitted.Inc()
	}
	if c.rs.committed == len(c.rs.moves) {
		c.finishRestripe()
	}
}

// onMoveNack re-routes a move whose source cannot produce the copy: the
// next redundant copy of the block under the old generation becomes the
// source, and the move returns to the dispatch queue.
func (c *Controller) onMoveNack(t *msg.MoveNack) {
	if !c.rs.active || t.Fence != c.rs.fence || int(t.Seq) >= len(c.rs.moves) {
		return
	}
	m := c.rs.moves[t.Seq]
	if m.state == rsCommitted {
		return
	}
	c.rs.nacks++
	if m.state == rsInflight {
		if n := c.rs.outstanding[m.src]; n > 0 {
			c.rs.outstanding[m.src] = n - 1
		}
	}
	m.order.Alt++
	src, idx := c.moveSource(m.order)
	m.src = src
	m.order.SrcIdx = idx
	m.state = rsPending
	c.rs.rerouted++
	if o := c.obs; o != nil {
		o.rsRerouted.Inc()
	}
}

// moveSource resolves the current source of a move under the old
// generation's layout: Alt 0 is the planned copy, higher Alts cycle
// through the block's other redundant copies (primary and declustered
// pieces). A quarantined source heals and eventually serves, so the
// cycle always terminates the run.
func (c *Controller) moveSource(o msg.MoveOrder) (msg.NodeID, int8) {
	ocfg := c.gens[c.rs.oldGen]
	if ocfg == nil {
		ocfg = c.cfg
	}
	lay := ocfg.Layout
	f, ok := ocfg.Files[o.File]
	if !ok {
		// Cannot happen for a validated plan; fall back to the planned
		// source so the resend path still drives the move.
		return lay.CubOfDisk(int(o.SrcIdx)), o.SrcIdx
	}
	// All holders of this block's data under the old layout, planned copy
	// first.
	type holder struct {
		cub msg.NodeID
		idx int8
	}
	cands := make([]holder, 0, 1+lay.Decluster)
	add := func(d int) {
		cub := lay.CubOfDisk(d)
		idx := int8(d / lay.Cubs)
		for _, h := range cands {
			if h.cub == cub && h.idx == idx {
				return
			}
		}
		cands = append(cands, holder{cub, idx})
	}
	b := int(o.Block)
	if o.Part < 0 || int(o.Part) >= lay.Decluster {
		// Planned source was the primary copy.
		add(lay.PrimaryDisk(f, b))
		for p := 0; p < lay.Decluster; p++ {
			add(lay.SecondaryDisk(f, b, p))
		}
	} else {
		add(lay.SecondaryDisk(f, b, int(o.Part)))
		add(lay.PrimaryDisk(f, b))
		for p := 0; p < lay.Decluster; p++ {
			add(lay.SecondaryDisk(f, b, p))
		}
	}
	h := cands[int(o.Alt)%len(cands)]
	return h.cub, h.idx
}

// finishRestripe stops the pump and reports completion. The cluster
// layer decides what happens next (cutover, drain, generation drop);
// the coordinator only certifies that every block has landed.
func (c *Controller) finishRestripe() {
	c.rs.active = false
	if c.rs.tick != nil {
		c.rs.tick.Stop()
		c.rs.tick = nil
	}
	if c.OnRestripeDone != nil {
		c.OnRestripeDone()
	}
}
