package core

import (
	"fmt"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// DataPath carries paced block payloads from a cub to viewers. The
// simulated switch (netsim.Network) and the real-time runtime both
// implement it.
type DataPath interface {
	SendBlock(from msg.NodeID, d netsim.BlockDelivery, pace time.Duration)
}

// entryKey identifies one schedule entry in a cub's view: slot number
// plus which copy (part == -1 for the primary, otherwise the mirror
// piece index).
type entryKey struct {
	slot int32
	part int8  // -1 primary, else mirror piece index
	due  int64 // the service event's due time: a slot is visited once
	// per block play time, and with small rings (cycle < MaxVStateLead)
	// a cub can legitimately hold entries for two successive visits of
	// the same slot by the same stream.
}

// entry is one record in a cub's view of the schedule: an upcoming send
// from one of this cub's disks.
type entry struct {
	vs        msg.ViewerState
	disk      int // this cub's disk that will serve it
	ready     bool
	forwarded bool
	hedged    bool   // a mirror chain was launched to cover a suspected disk
	readID    uint64 // outstanding disk read, cancellable; 0 when none
	buffered  int64  // bytes of buffer pool held for this entry's read
	readTimer clock.Timer
	sendTimer clock.Timer
}

// descKey identifies a held deschedule record (§4.1.2).
type descKey struct {
	slot     int32
	instance msg.InstanceID
}

// startReq is a queued start-play request (§4.1.3). dkey packs the
// striping generation with the generation-local disk holding the first
// block wanted (genDiskKey).
type startReq struct {
	sp       msg.StartPlay
	dkey     int32
	enqueued sim.Time
}

// CubStats are cumulative protocol counters for one cub.
type CubStats struct {
	BlocksSent   int64 // primary blocks placed on the network
	PiecesSent   int64 // declustered mirror pieces placed on the network
	ServerMisses int64 // sends missed (disk not done, or state too late)
	StatesRecv   int64
	StatesDup    int64 // idempotent duplicates ignored
	StatesLate   int64 // viewer states discarded as too late (§4.1.2)
	Conflicts    int64 // a state for an occupied slot with another instance
	DeschedRecv  int64
	DeschedDup   int64
	Inserts      int64 // slot insertions performed under ownership
	MirrorsMade  int64 // mirror viewer states created
	PiecesLost   int64 // mirror pieces undeliverable (covering cub dead)
	PeakBuffered int64 // peak bytes of block buffers held (the paper's
	// cubs had 20 MB buffer caches; §3.1 trades buffer usage for
	// tolerance of disk-performance variation)
	IndexMisses   int64 // index lookups that failed (always a bug)
	DeadDeclared  int64 // deadman transitions observed
	DeathsRefuted int64 // false death declarations withdrawn on proof of life
	RedundantRuns int64 // redundant start queues promoted after a failure
	StartsDup     int64 // duplicate start-play enqueues ignored

	// Restart and reintegration counters.
	Rejoins         int64 // cold restarts this cub performed
	RejoinsServed   int64 // rejoin requests answered for neighbours
	ViewTransferred int64 // schedule entries rebuilt from rejoin replies
	MirrorsRetired  int64 // mirror entries handed back to a rejoined primary
	StaleEpochDrops int64 // messages discarded for carrying a stale epoch

	// Gray-failure tolerance counters (health.go).
	HedgesIssued      int64 // mirror chains launched to cover suspected disks
	HedgeLocalWins    int64 // hedged sends where the local read made it anyway
	HedgeMirrorWins   int64 // hedged sends covered by the mirror pieces
	DiskReadErrors    int64 // transient read failures reported by local drives
	DiskSuspects      int64 // healthy → suspected transitions
	DiskRecoveries    int64 // suspected → healthy transitions
	DiskQuarantines   int64 // suspected → quarantined transitions
	DiskUnquarantines int64 // quarantines cleared by passing probes

	// Live-restripe mover counters (mover.go).
	MovesOut     int64 // move copies read and shipped by this cub
	MovesIn      int64 // move copies landed on this cub's drives
	MoveBytesOut int64
	MoveBytesIn  int64
	MovesNacked  int64 // move orders refused (source disk failed/quarantined)

	// Degradation-governor counters (park.go). Park and Resume orders go
	// to two cubs each (serving cub + successor), so summed across cubs
	// these count messages processed, not streams; the authoritative
	// per-stream counts live in the controller's GovernorStats.
	StreamsParked  int64 // park orders processed (first sighting per instance)
	StreamsResumed int64 // resume notices processed
	DownAdvisories int64 // controller CubDown advisories applied

	// Controller-failover counters (scavenge.go).
	CtlStaleDrops   int64 // orders dropped for a stale controller epoch
	CtlTakeovers    int64 // controller epoch bumps observed (takeovers)
	CtlDeclaredDead int64 // controller deadman transitions observed
	ScavengesServed int64 // takeover scavenge requests answered
}

// Hooks let tests and harnesses observe protocol events without
// perturbing them.
type Hooks struct {
	// OnInsert fires when this cub inserts a viewer into a slot it owns.
	OnInsert func(cub msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time)
	// OnServe fires when a block or piece send begins.
	OnServe func(cub msg.NodeID, vs msg.ViewerState)
	// OnMiss fires when a scheduled send could not be made.
	OnMiss func(cub msg.NodeID, vs msg.ViewerState)
	// OnHedge fires when a hedged mirror chain is launched to cover a
	// suspected disk (health.go).
	OnHedge func(cub msg.NodeID, vs msg.ViewerState)
	// OnQuarantine fires when the health monitor quarantines a disk.
	OnQuarantine func(cub msg.NodeID, disk int32)
	// OnMoveCommit fires when a restripe move copy is committed.
	OnMoveCommit func(cub msg.NodeID, seq int64)
	// OnMoveNack fires when a move order is refused; reason is the
	// MoveNack wire reason code.
	OnMoveNack func(cub msg.NodeID, seq int64, reason uint8)
	// OnPark fires when a cub first processes a governor park order for
	// an instance.
	OnPark func(cub msg.NodeID, viewer msg.ViewerID, inst msg.InstanceID, slot int32)
	// OnResume fires when a cub processes a governor resume notice.
	OnResume func(cub msg.NodeID, viewer msg.ViewerID, oldInst, newInst msg.InstanceID)
	// OnUnservable fires when a cub's count of mirror-exhausted disks
	// changes; disks is the new count.
	OnUnservable func(cub msg.NodeID, disks int32)
}

// Cub is one content-holding machine of a Tiger system, implementing the
// distributed schedule management protocol of §4. All methods must be
// invoked from the node's executor (the simulator, or the rt runtime's
// per-node goroutine); none of them block.
type Cub struct {
	id   msg.NodeID
	cfg  *Config
	clk  clock.Clock
	net  Transport
	data DataPath
	rng  *rand.Rand

	disks       map[int]*disk.Disk
	failedDisks map[int]bool // this cub's own dead drives

	// Striping generations (gen.go): one plane per installed generation,
	// each holding that generation's Config and this cub's content index
	// under its placement. nativeCubs is the cub count of the generation
	// this cub was created under — the basis of its physical (native)
	// disk numbering.
	planes     map[int32]*genPlane
	activeGen  int32
	nativeCubs int

	// Gray-failure monitor (health.go): per-local-disk detector state,
	// and the subset of failedDisks that were retired by the health
	// machine rather than an operator — only those are probed for
	// un-quarantine.
	health      map[int]*diskHealth
	quarantined map[int]bool

	entries map[entryKey]*entry
	slotOcc map[int32]int // entries per slot, all parts

	desch map[descKey]*msg.Deschedule

	queue          map[int32][]*startReq // pending starts per genDiskKey
	queueLen       int                   // total queued starts, all genDiskKeys
	scanning       map[int32]bool        // ownership scan active per genDiskKey
	redundantStart map[msg.InstanceID]*startReq
	cancelledStart map[msg.InstanceID]sim.Time // acks seen; GC'd lazily
	enqueuedStart  map[msg.InstanceID]sim.Time // dedup of start enqueues; GC'd lazily

	lastSeen     map[msg.NodeID]sim.Time
	believedDead map[msg.NodeID]bool
	monitored    []msg.NodeID

	// Degradation-governor state (park.go): tombstones for parked
	// instances (so stale gossip dies on arrival), the high-water fence
	// of controller CubDown advisories, and the current count of
	// mirror-exhausted disks derived from believedDead.
	parkedInst map[msg.InstanceID]sim.Time
	govFence   int32
	unservable int

	// Controller-failover state (scavenge.go): the high-water mark of
	// controller epochs seen (fences a dead incarnation's in-flight
	// orders), the retained re-admission tickets of parked streams (the
	// scavengeable half of the governor's state), and the deadman for
	// the controller itself — armed only once a controller heartbeat
	// has been seen.
	ctlEpoch      int32
	parkedTickets map[msg.InstanceID]msg.ScavengedPark
	ctlLastSeen   sim.Time
	ctlDown       bool

	// Liveness epoch (§2.3's deadman protocol extended with restart
	// fencing): bumped on every cold restart, stamped into heartbeats and
	// forwarded viewer states, so receivers can discard traffic produced
	// by a pre-restart incarnation. peerEpoch is the per-peer high-water
	// mark of epochs seen.
	epoch     int32
	peerEpoch map[msg.NodeID]int32

	// Rejoin handshake bookkeeping (rejoin.go).
	rejoinActive  bool
	rejoinPending map[msg.NodeID]bool
	rejoinStart   sim.Time
	recovery      *metrics.Histogram

	fwdPending map[msg.NodeID][]msg.Message // batch under assembly
	// fwdHeap is a min-heap of primary entry keys not yet forwarded,
	// ordered (due, slot, part) — the same order the old full-view scan
	// produced — so forwardTick pops only the entries inside the forward
	// horizon instead of sweeping the whole view. Entries dropped or
	// forwarded out of band are deleted lazily: a popped key whose entry
	// is gone or already forwarded is skipped.
	fwdHeap []entryKey
	// Scratch slices recycled across the periodic forwarding path, so
	// the per-tick collect/sort and per-flush target ordering allocate
	// nothing in steady state. The queued message slices themselves are
	// NOT recycled: a dispatched Batch travels the transport (in flight
	// in the simulator, or queued on a mesh writer) after flushForwards
	// returns, so reusing them would corrupt in-flight batches.
	fwdDueScratch    []entryKey
	fwdTargetScratch []msg.NodeID

	bufBytes int64 // block buffers currently held

	// Live-restripe mover state (mover.go): per-disk copy queues and the
	// idle-budget pacing bookkeeping. Volatile — wiped on Restart.
	mover moverState

	cpu    metrics.CPU
	stats  CubStats
	loss   *metrics.LossLog
	hooks  Hooks
	obs    *cubObs         // nil until AttachObs
	ctrace *trace.ChainLog // nil until SetChainLog; causal hop recorder

	started bool
}

// NewCub constructs a cub. The caller wires the same Transport/DataPath
// to every node and then calls Start once the whole system is built.
func NewCub(id msg.NodeID, cfg *Config, clk clock.Clock, net Transport, data DataPath, rng *rand.Rand) *Cub {
	diskNums := cfg.Layout.DisksOfCub(id)
	c := &Cub{
		id:             id,
		cfg:            cfg,
		clk:            clk,
		net:            net,
		data:           data,
		rng:            rng,
		disks:          make(map[int]*disk.Disk, len(diskNums)),
		nativeCubs:     cfg.Layout.Cubs,
		planes:         make(map[int32]*genPlane, 2),
		failedDisks:    make(map[int]bool),
		health:         make(map[int]*diskHealth, len(diskNums)),
		quarantined:    make(map[int]bool),
		entries:        make(map[entryKey]*entry),
		slotOcc:        make(map[int32]int),
		desch:          make(map[descKey]*msg.Deschedule),
		queue:          make(map[int32][]*startReq),
		scanning:       make(map[int32]bool),
		redundantStart: make(map[msg.InstanceID]*startReq),
		cancelledStart: make(map[msg.InstanceID]sim.Time),
		enqueuedStart:  make(map[msg.InstanceID]sim.Time),
		lastSeen:       make(map[msg.NodeID]sim.Time),
		believedDead:   make(map[msg.NodeID]bool),
		parkedInst:     make(map[msg.InstanceID]sim.Time),
		parkedTickets:  make(map[msg.InstanceID]msg.ScavengedPark),
		epoch:          1,
		peerEpoch:      make(map[msg.NodeID]int32),
		recovery:       metrics.NewHistogram(RecoveryBounds...),
		fwdPending:     make(map[msg.NodeID][]msg.Message),
	}
	c.cpu.Model = cfg.CPUModel
	for _, d := range diskNums {
		c.disks[d] = disk.New(d, cfg.DiskParams, clk, rng)
		c.health[d] = &diskHealth{}
	}
	c.resetMover()
	// The birth configuration is generation 0 (Rebase relabels it for
	// cubs joining an already-restriped system). Its disk numbering is
	// the cub's native numbering, so the index keys pass through.
	c.planes[0] = &genPlane{gen: 0, cfg: cfg, index: buildIndexes(cfg, diskNums)}
	// Monitor liveness of the cubs we must make decisions about: up to
	// max(2, decluster+1) hops in each ring direction, per generation.
	c.refreshMonitored()
	return c
}

// ID returns the cub's node ID.
func (c *Cub) ID() msg.NodeID { return c.id }

// Stats returns a snapshot of the cub's counters.
func (c *Cub) Stats() CubStats { return c.stats }

// Epoch returns the cub's current liveness epoch. Epochs start at 1 and
// bump on every Restart, so any message stamped with an older epoch is
// provably from a dead incarnation.
func (c *Cub) Epoch() int32 { return c.epoch }

// SetEpoch installs a persisted epoch; call before Start when bringing a
// cub process back with state recovered from stable storage (the rt
// runtime uses it so a re-launched tigerd resumes past its old epoch).
func (c *Cub) SetEpoch(e int32) {
	if e > c.epoch {
		c.epoch = e
	}
}

// MirrorLoadFor returns the number of mirror entries this cub currently
// holds covering services on owner's disks — the load that should drain
// back to owner after it restarts and rejoins.
func (c *Cub) MirrorLoadFor(owner msg.NodeID) int {
	n := 0
	for k, e := range c.entries {
		if k.part >= 0 && c.layoutOf(k.slot).CubOfDisk(int(e.vs.OrigDisk)) == owner {
			n++
		}
	}
	return n
}

// BelievesDead reports whether this cub currently believes z dead.
func (c *Cub) BelievesDead(z msg.NodeID) bool { return c.believedDead[z] }

// BelievedDead returns the number of peers this cub currently believes
// dead; convergence checks expect it to return to 0 after all faults
// heal.
func (c *Cub) BelievedDead() int { return len(c.believedDead) }

// FailedDisks returns how many of this cub's own drives are marked
// failed (permanently dead or health-quarantined).
func (c *Cub) FailedDisks() int { return len(c.failedDisks) }

// QuarantinedDisks returns how many of this cub's drives are currently
// health-quarantined — the probed subset of FailedDisks.
func (c *Cub) QuarantinedDisks() int { return len(c.quarantined) }

// RecoveryTimes returns the restart-to-reintegration duration histogram.
func (c *Cub) RecoveryTimes() *metrics.Histogram { return c.recovery }

// CPUBusy returns cumulative modelled CPU busy time.
func (c *Cub) CPUBusy() time.Duration { return c.cpu.Busy() }

// ViewSize returns the number of schedule entries currently in the cub's
// view — the quantity the scalability argument of §4 bounds.
func (c *Cub) ViewSize() int { return len(c.entries) }

// QueueLen returns the number of start requests waiting for a free slot.
// Maintained as a counter so the per-insert gauge update is O(1) instead
// of a sweep over every per-disk queue.
func (c *Cub) QueueLen() int { return c.queueLen }

// Disks exposes the cub's drive models for metrics collection, keyed by
// native disk number (the numbering of the cub's birth generation).
func (c *Cub) Disks() map[int]*disk.Disk { return c.disks }

// NativeDiskKey converts a cub-local drive index — invariant across
// striping generations — into the native disk number keying Disks().
func (c *Cub) NativeDiskKey(idx int) int { return idx*c.nativeCubs + int(c.id) }

// DiskByIndex returns the cub's idx-th local drive. Callers holding a
// global disk number under any generation's layout can reach the drive
// via (CubOfDisk, disk/cubs) without knowing the cub's native numbering.
func (c *Cub) DiskByIndex(idx int) *disk.Disk { return c.disks[c.NativeDiskKey(idx)] }

// SetLossLog directs server-side miss reports to a shared loss log.
func (c *Cub) SetLossLog(l *metrics.LossLog) { c.loss = l }

// SetHooks installs observation hooks (tests only).
func (c *Cub) SetHooks(h Hooks) { c.hooks = h }

// SetChainLog installs a causal-trace chain log. Hops are recorded only
// for viewer states carrying the trace flag; with a nil log (the
// default) the recording paths reduce to one pointer test.
func (c *Cub) SetChainLog(l *trace.ChainLog) { c.ctrace = l }

// ChainLog returns the cub's causal-trace log (nil when tracing is off).
func (c *Cub) ChainLog() *trace.ChainLog { return c.ctrace }

// traceHop records one causal hop for a traced viewer state. The guard
// makes the tracing-off path free: no time lookup, no hop construction.
func (c *Cub) traceHop(vs *msg.ViewerState, kind trace.HopKind, disk int32) {
	if c.ctrace == nil || vs.Trace == 0 {
		return
	}
	now := c.clk.Now()
	c.ctrace.Record(vs.Instance, vs.Block, trace.Hop{
		At: now, Node: c.id, Kind: kind,
		Slack: vs.Due - int64(now), Slot: vs.Slot, Disk: disk, Mirror: vs.Mirror,
	})
}

// Start begins the cub's periodic activities: heartbeats and the
// viewer-state forwarding batcher.
func (c *Cub) Start() {
	if c.started {
		return
	}
	c.started = true
	now := c.clk.Now()
	for _, n := range c.monitored {
		c.lastSeen[n] = now
	}
	c.heartbeatTick()
	c.forwardTick()
}

// FailDisk marks one of this cub's own drives as permanently dead. The
// cub itself keeps running and converts schedule entries for that disk
// into mirror viewer states ("the decision to send this data is made by
// the cub succeeding the failed component" — for a lone disk, its own
// cub is the first living component that can decide). Unlike a health
// quarantine, a FailDisk is never probed: the drive stays retired until
// operator action replaces it.
func (c *Cub) FailDisk(d int) {
	if _, mine := c.disks[d]; !mine {
		panic(fmt.Sprintf("cub %v: disk %d is not local", c.id, d))
	}
	// A permanent failure overrides any health quarantine: stop probing,
	// and keep the state machine pinned at quarantined so the health
	// gauge reflects a drive that is out of service.
	if h := c.health[d]; h != nil {
		if h.probeTimer != nil {
			h.probeTimer.Stop()
			h.probeTimer = nil
		}
		delete(c.quarantined, d)
		h.state = DiskQuarantined
		c.setHealthGauge(d, h)
	}
	c.retireDisk(d)
}

// retireDisk converts every pending schedule entry on local drive d to
// mirror service and marks the drive failed. Shared by the permanent
// FailDisk path and the health monitor's quarantine; idempotent.
func (c *Cub) retireDisk(d int) {
	if c.failedDisks[d] {
		return
	}
	c.failedDisks[d] = true
	// Any restripe copies pending on the drive cannot be produced any
	// more; tell the coordinator so it re-routes them to a mirror.
	c.moverDiskRetired(d)
	// Convert pending entries on that disk to mirror service.
	var keys []entryKey
	for k, e := range c.entries {
		if k.part == -1 && e.disk == d {
			keys = append(keys, k)
		}
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		e := c.entries[k]
		if e.vs.Due > int64(c.clk.Now()) && !e.hedged {
			// Hedged entries already launched their mirror chain; starting
			// another would only create duplicate gossip. The mirror route
			// is resolved under the entry's own generation.
			if cfg := c.cfgOf(k.slot); cfg != nil {
				c.createMirrors(e.vs, c.genLocalDisk(cfg.Layout, d))
			}
		}
		c.dropEntryRelease(k)
	}
	c.flushForwards()
}

// --- ring arithmetic ---
//
// Ring geometry is per generation: the cub ring widens and narrows with
// the striping generation in play, so every helper takes the layout of
// the generation whose traffic it is routing.

func ringAddIn(lay layout.Config, id msg.NodeID, i int) msg.NodeID {
	n := lay.Cubs
	return msg.NodeID(((int(id)+i)%n + n) % n)
}

func ringDist(cfg *Config, from, to msg.NodeID) int {
	n := cfg.Layout.Cubs
	return ((int(to)-int(from))%n + n) % n
}

// nthLivingSuccessorIn returns the n-th (1-based) successor believed
// alive on lay's ring, or ok=false if the whole ring seems dead (or
// this cub is not on it).
func (c *Cub) nthLivingSuccessorIn(lay layout.Config, n int) (msg.NodeID, bool) {
	if int(c.id) >= lay.Cubs {
		return 0, false
	}
	found := 0
	for i := 1; i < lay.Cubs; i++ {
		s := ringAddIn(lay, c.id, i)
		if !c.believedDead[s] {
			found++
			if found == n {
				return s, true
			}
		}
	}
	return 0, false
}

// firstLivingSuccessorOfIn reports whether this cub is the first living
// successor of z on lay's ring (the decision-maker for z's mirror
// takeover under that generation).
func (c *Cub) firstLivingSuccessorOfIn(lay layout.Config, z msg.NodeID) bool {
	for i := 1; i < lay.Cubs; i++ {
		s := msg.NodeID((int(z) + i) % lay.Cubs)
		if s == c.id {
			return true
		}
		if !c.believedDead[s] {
			return false
		}
	}
	return false
}

// --- message handling ---

// Deliver implements netsim.Handler: the single entry point for all
// control messages.
func (c *Cub) Deliver(from msg.NodeID, m msg.Message) {
	c.cpu.ChargeCtlMsg()
	switch t := m.(type) {
	case *msg.Batch:
		for _, inner := range t.Msgs {
			c.deliverOne(from, inner)
		}
	default:
		c.deliverOne(from, m)
	}
}

func (c *Cub) deliverOne(from msg.NodeID, m msg.Message) {
	switch t := m.(type) {
	case *msg.ViewerState:
		prior := c.peerEpoch[from]
		if c.staleEpoch(from, t.Epoch) {
			return
		}
		// Gossip is proof of life too: a viewer state arriving directly
		// from a peer we believe dead refutes the death (deadman.go) just
		// like a heartbeat would — during a partial partition the gossip
		// path can heal before the next heartbeat arrives.
		if c.believedDead[from] {
			c.proofOfLife(from, t.Epoch, prior)
		}
		c.onViewerState(*t)
	case *msg.Deschedule:
		c.onDeschedule(*t)
	case *msg.StartPlay:
		if c.staleCtl(t.Ctl) {
			return
		}
		c.onStartPlay(*t)
	case *msg.StartAck:
		c.onStartAck(*t)
	case *msg.Heartbeat:
		if t.From == msg.Controller {
			c.onCtlHeartbeat(t)
			return
		}
		prior := c.peerEpoch[from]
		if c.staleEpoch(from, t.Epoch) {
			return
		}
		c.lastSeen[t.From] = c.clk.Now()
		if c.believedDead[t.From] {
			c.proofOfLife(t.From, t.Epoch, prior)
		}
	case *msg.Hello:
		// Transport-level peer identification. Its epoch announcement is
		// how the rt mesh learns about a restarted incarnation from the
		// first frame of a fresh connection.
		c.noteEpoch(t.From, t.Epoch)
	case *msg.RejoinRequest:
		c.onRejoinRequest(*t)
	case *msg.RejoinReply:
		c.onRejoinReply(t)
	case *msg.RejoinConfirm:
		c.onRejoinConfirm(t)
	case *msg.MoveOrder:
		// Orders come from the controller, which the peer epoch fence
		// skips — the controller-epoch fence is what guards them.
		if c.staleCtl(t.Ctl) {
			return
		}
		c.onMoveOrder(*t)
	case *msg.CubDown:
		// Advisory from the controller's governor (epoch-exempt).
		c.onCubDown(t)
	case *msg.Park:
		if c.staleCtl(t.Ctl) {
			return
		}
		c.onPark(*t)
	case *msg.Resume:
		if c.staleCtl(t.Ctl) {
			return
		}
		c.onResume(*t)
	case *msg.ScavengeReq:
		c.onScavengeReq(*t)
	case *msg.MoveData:
		prior := c.peerEpoch[from]
		if c.staleEpoch(from, t.Epoch) {
			return
		}
		if c.believedDead[from] {
			c.proofOfLife(from, t.Epoch, prior)
		}
		c.onMoveData(*t)
	default:
		// ReserveReq/Resp belong to the multiple-bitrate node (mbr.go).
	}
}

// staleEpoch implements the receive-side epoch fence: a message from a
// peer carrying an epoch below the highest we have seen from that peer
// was produced by a pre-restart incarnation (for example, replayed by a
// TCP reconnect racing the new connection) and must not touch the view.
func (c *Cub) staleEpoch(from msg.NodeID, e int32) bool {
	if from == msg.Controller || from == c.id {
		return false
	}
	if e < c.peerEpoch[from] {
		c.stats.StaleEpochDrops++
		if o := c.obs; o != nil {
			o.staleDrops.Inc()
		}
		return true
	}
	if e > c.peerEpoch[from] {
		c.peerEpoch[from] = e
	}
	return false
}

// noteEpoch raises the high-water epoch mark for a peer.
func (c *Cub) noteEpoch(from msg.NodeID, e int32) {
	if from == msg.Controller || from == c.id {
		return
	}
	if e > c.peerEpoch[from] {
		c.peerEpoch[from] = e
	}
}
