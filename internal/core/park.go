package core

import (
	"time"

	"tiger/internal/msg"
)

// This file is the cub side of the degradation-governor protocol
// (governor.go holds the controller side): applying CubDown advisories,
// scrubbing parked streams out of the schedule, and maintaining the
// mirror-exhaustion gauge derived from the deadman's death beliefs.

// onCubDown applies a controller advisory that the listed cubs died at
// once. The advisory exists to beat the deadman window: a correlated
// crash kills several cubs between two heartbeats, and waiting
// DeadmanTimeout to notice each one separately costs exactly the
// deadlines the governor is trying to protect. Only deaths of cubs this
// cub monitors are applied — those are the only ones its takeover
// decisions depend on, and they are the only ones whose recovery
// (heartbeat, rejoin, gossip proof of life) reaches this cub to clear
// the belief again.
func (c *Cub) onCubDown(m *msg.CubDown) {
	if m.Fence < c.govFence {
		return // stale advisory from an earlier degradation episode
	}
	c.govFence = m.Fence
	c.stats.DownAdvisories++
	for _, z := range m.Down {
		if z == c.id || c.believedDead[z] || !c.isMonitored(z) {
			continue
		}
		c.markDead(z)
	}
}

func (c *Cub) isMonitored(z msg.NodeID) bool {
	for _, n := range c.monitored {
		if n == z {
			return true
		}
	}
	return false
}

// onPark removes a governor-parked stream from this cub's schedule. The
// scrub itself is a deschedule — the same idempotent removal, the same
// chase to successors — plus a parked-instance tombstone so states
// still gossiping around the ring die on arrival (onViewerState) even
// after the deschedule record ages out. The ack always goes back: the
// controller dedups by instance.
func (c *Cub) onPark(p msg.Park) {
	if _, seen := c.parkedInst[p.Instance]; !seen {
		c.parkedInst[p.Instance] = c.clk.Now()
		// A resume clears the tombstone early; the GC bounds the map when
		// the stream never comes back. By then every state of the parked
		// stream has aged past the late-state cutoff anyway.
		c.clk.After(time.Minute, func() { delete(c.parkedInst, p.Instance) })
		// Retain the re-admission ticket until the matching Resume: the
		// tickets held across the ring are what a controller takeover
		// scavenges to rebuild the parked set (scavenge.go). Retention is
		// much longer than the tombstone — it must survive a controller
		// outage — with a backstop GC for streams never resumed.
		c.parkedTickets[p.Instance] = msg.ScavengedPark{
			Viewer:      p.Viewer,
			Instance:    p.Instance,
			File:        p.File,
			ResumeBlock: p.ResumeBlock,
			Bitrate:     p.Bitrate,
			Fence:       p.Fence,
		}
		c.clk.After(parkedTicketTTL, func() { delete(c.parkedTickets, p.Instance) })
		c.stats.StreamsParked++
		if o := c.obs; o != nil {
			o.parks.Inc()
		}
		c.onDeschedule(msg.Deschedule{
			Viewer:   p.Viewer,
			Instance: p.Instance,
			Slot:     p.Slot,
			Created:  int64(c.clk.Now()),
		})
		if c.hooks.OnPark != nil {
			c.hooks.OnPark(c.id, p.Viewer, p.Instance, p.Slot)
		}
	}
	c.net.Send(c.id, msg.Controller, &msg.ParkAck{Instance: p.Instance, Fence: p.Fence, By: c.id})
}

// onResume clears the parked-instance tombstone when the governor
// re-admits the stream under a fresh instance. The new instance arrives
// through the ordinary StartPlay path; this is only bookkeeping.
func (c *Cub) onResume(r msg.Resume) {
	delete(c.parkedInst, r.OldInstance)
	delete(c.parkedTickets, r.OldInstance)
	c.stats.StreamsResumed++
	if o := c.obs; o != nil {
		o.resumes.Inc()
	}
	if c.hooks.OnResume != nil {
		c.hooks.OnResume(c.id, r.Viewer, r.OldInstance, r.NewInstance)
	}
}

// updateUnservable recomputes the cub's count of mirror-exhausted disks
// from its current death beliefs — pure layout arithmetic
// (layout.UnservableDisks), no scan over streams or schedule entries.
// Called on every death-belief transition; with at most one believed
// death the count is zero without touching the layout at all.
func (c *Cub) updateUnservable() {
	n := 0
	if len(c.believedDead) > 1 {
		n = len(c.cfg.Layout.UnservableDisks(func(z msg.NodeID) bool { return c.believedDead[z] }))
	}
	if n == c.unservable {
		return
	}
	c.unservable = n
	if o := c.obs; o != nil {
		o.unservable.Set(float64(n))
	}
	if c.hooks.OnUnservable != nil {
		c.hooks.OnUnservable(c.id, int32(n))
	}
}

// Unservable returns the number of disks this cub currently computes as
// mirror-exhausted: dead disks whose decluster span contains another
// death. Derived from this cub's own death beliefs, so only cubs near
// the failure see a non-zero value.
func (c *Cub) Unservable() int { return c.unservable }
