package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// ViewEntry is one record of a cub's view of the schedule, for
// introspection and debugging (the paper's Figure 7 shows exactly this:
// per-cub views of the same schedule region, transiently different yet
// coherent).
type ViewEntry struct {
	Slot     int32
	Viewer   msg.ViewerID
	Instance msg.InstanceID
	Block    int32
	Due      sim.Time
	Disk     int
	Mirror   bool
	Part     int8
	Ready    bool
}

// ViewWindow returns the cub's current view, ordered by due time — the
// slice of the hallucinated global schedule this cub can see.
func (c *Cub) ViewWindow() []ViewEntry {
	out := make([]ViewEntry, 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, ViewEntry{
			Slot:     k.slot,
			Viewer:   e.vs.Viewer,
			Instance: e.vs.Instance,
			Block:    e.vs.Block,
			Due:      sim.Time(e.vs.Due),
			Disk:     e.disk,
			Mirror:   e.vs.Mirror,
			Part:     maxI8(e.vs.Part, 0),
			Ready:    e.ready,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Due != out[j].Due {
			return out[i].Due < out[j].Due
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// SlotView reports what this cub currently believes about a slot:
// "free", or the occupying instance. Held deschedules are reported too,
// mirroring Figure 7's annotations.
func (c *Cub) SlotView(slot int32) string {
	var parts []string
	for k, e := range c.entries {
		if k.slot != slot {
			continue
		}
		tag := ""
		if e.vs.Mirror {
			tag = fmt.Sprintf(" mirror#%d", e.vs.Part)
		}
		parts = append(parts, fmt.Sprintf("viewer %d (inst %d, block %d%s)",
			e.vs.Viewer, e.vs.Instance, e.vs.Block, tag))
	}
	for k := range c.desch {
		if k.slot == slot {
			parts = append(parts, fmt.Sprintf("deschedule held (inst %d)", k.instance))
		}
	}
	if len(parts) == 0 {
		return "free"
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}

// DumpView renders the cub's view window as text, one line per entry —
// the textual analogue of Figure 7.
func (c *Cub) DumpView() string {
	var b strings.Builder
	now := c.clk.Now()
	fmt.Fprintf(&b, "cub %v view at %v (%d entries, %d held deschedules):\n",
		c.id, now, len(c.entries), len(c.desch))
	if hl := c.diskHealthLine(); hl != "" {
		fmt.Fprintf(&b, "  disk health: %s\n", hl)
	}
	if ml := c.moverLine(); ml != "" {
		fmt.Fprintf(&b, "  restripe mover: %s\n", ml)
	}
	for _, e := range c.ViewWindow() {
		kind := "primary"
		if e.Mirror {
			kind = fmt.Sprintf("mirror#%d", e.Part)
		}
		ready := ""
		if e.Ready {
			ready = " [read done]"
		}
		fmt.Fprintf(&b, "  slot %4d  due +%-8v disk %2d  %-9s viewer %d block %d%s\n",
			e.Slot, e.Due.Sub(now).Round(time.Millisecond), e.Disk, kind,
			e.Viewer, e.Block, ready)
	}
	return b.String()
}

// moverLine summarizes live-restripe move activity for DumpView and the
// /debug/vars surface: copy jobs queued and in service on this cub's
// drives, plus lifetime totals. Empty when the mover is idle and has
// never moved anything.
func (c *Cub) moverLine() string {
	pend, inf := c.MoverPending(), c.MoverInflight()
	st := c.stats
	if pend == 0 && inf == 0 && st.MovesOut == 0 && st.MovesIn == 0 {
		return ""
	}
	return fmt.Sprintf("%d queued, %d in flight; %d blocks out (%.1f MB), %d in (%.1f MB), %d nacked",
		pend, inf, st.MovesOut, float64(st.MoveBytesOut)/1e6,
		st.MovesIn, float64(st.MoveBytesIn)/1e6, st.MovesNacked)
}

// diskHealthLine summarizes the local drives that are not plain healthy
// — suspected, quarantined, or permanently failed — for DumpView and the
// /debug/vars surface. Empty when every drive is fine.
func (c *Cub) diskHealthLine() string {
	var nums []int
	for d := range c.disks {
		nums = append(nums, d)
	}
	sort.Ints(nums)
	var parts []string
	for _, d := range nums {
		st := c.DiskHealth(d)
		switch {
		case c.quarantined[d]:
			parts = append(parts, fmt.Sprintf("disk %d quarantined", d))
		case c.failedDisks[d]:
			parts = append(parts, fmt.Sprintf("disk %d failed", d))
		case st != DiskHealthy:
			parts = append(parts, fmt.Sprintf("disk %d %s", d, st))
		}
	}
	return strings.Join(parts, ", ")
}

// HeldDeschedules returns the slots with live deschedule records.
func (c *Cub) HeldDeschedules() []int32 {
	out := make([]int32, 0, len(c.desch))
	for k := range c.desch {
		out = append(out, k.slot)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
