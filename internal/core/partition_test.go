package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// This file tests the split-brain healing rule (deadman.go): a false
// death declaration — the deadman timeout firing across a partition
// while the "dead" cub is alive and serving — must be refuted by the
// first proof of life at an unchanged epoch, with the mirror load the
// believers built drained through the retire path, no restart involved.

// isolate cuts cub i off from every other node including the controller.
func (r *rig) isolate(i int) {
	for j := range r.cubs {
		if j != i {
			r.net.Cut(msg.NodeID(i), msg.NodeID(j))
		}
	}
	r.net.Cut(msg.NodeID(i), msg.Controller)
}

func (r *rig) healAll() { r.net.HealAllLinks() }

func TestFalseDeathRefutedOnHeal(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(4 * time.Second)

	const victim = 3
	r.isolate(victim)
	// Long enough for every monitored neighbour to declare the victim
	// dead and for its first living successor to build mirror load.
	r.run(5 * time.Second)

	believers := 0
	for j, c := range r.cubs {
		if j != victim && c.BelievesDead(victim) {
			believers++
		}
	}
	if believers == 0 {
		t.Fatal("no neighbour declared the isolated cub dead")
	}
	if r.cubs[victim].BelievedDead() == 0 {
		t.Fatal("isolated cub did not reciprocate the death beliefs")
	}
	load := r.mirrorLoadFor(victim)
	if load == 0 {
		t.Fatal("no mirror load built for the falsely-declared cub")
	}

	r.healAll()
	// A couple of heartbeat intervals: the first heartbeat across the
	// healed links refutes the deaths in both directions.
	r.run(5 * time.Second)

	for j, c := range r.cubs {
		if c.BelievedDead() != 0 {
			t.Fatalf("cub %d still believes %d peers dead after heal", j, c.BelievedDead())
		}
	}
	if got := r.mirrorLoadFor(victim); got != 0 {
		t.Fatalf("mirror load for victim still %d after heal (was %d)", got, load)
	}
	tot := r.totals()
	if tot.DeathsRefuted == 0 {
		t.Fatal("no death refutation recorded")
	}
	if tot.Rejoins != 0 {
		t.Fatalf("healing took %d restarts; refutation must not need one", tot.Rejoins)
	}
	if tot.MirrorsRetired == 0 {
		t.Fatal("mirror load drained without passing the retire path")
	}
	if tot.Conflicts != 0 {
		t.Fatalf("%d slot conflicts during a churn-free partition", tot.Conflicts)
	}
	// The handback states the believers forwarded are duplicates to the
	// victim, which kept its view across the blip; idempotence absorbs
	// them rather than double-scheduling.
	if tot.IndexMisses != 0 {
		t.Fatalf("%d index misses", tot.IndexMisses)
	}

	// The stream must still be flowing after the heal.
	before := r.got(1)
	r.run(5 * time.Second)
	if after := r.got(1); after <= before {
		t.Fatalf("stream stalled after heal: %d playseqs before, %d after", before, after)
	}
}

func TestGossipRefutesDeath(t *testing.T) {
	// Cut ONLY the heartbeat direction victim→successor long enough for
	// the successor to declare the victim dead, then keep that one-way
	// cut and let the victim's forwarded viewer states (redelivered via
	// the healed link) refute the death: any direct message at a current
	// epoch is proof of life, not just heartbeats.
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(4 * time.Second)

	const victim, watcher = 3, 4
	r.net.CutOneWay(msg.NodeID(victim), msg.NodeID(watcher))
	r.run(5 * time.Second)
	if !r.cubs[watcher].BelievesDead(victim) {
		t.Fatal("watcher did not declare the silenced cub dead")
	}
	if r.cubs[victim].BelievesDead(watcher) {
		t.Fatal("asymmetric cut should not make the victim suspect the watcher")
	}

	r.net.HealOneWay(msg.NodeID(victim), msg.NodeID(watcher))
	r.run(2 * time.Second)
	if r.cubs[watcher].BelievesDead(victim) {
		t.Fatal("death not refuted after one-way heal")
	}
	if r.totals().DeathsRefuted == 0 {
		t.Fatal("no refutation recorded")
	}
	if r.totals().Rejoins != 0 {
		t.Fatal("refutation must not require a restart")
	}
}

func TestDuplicateStartPlayAbsorbed(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	// File 0 starts on disk (0*3)%8 = 0, owned by cub 0.
	sp := msg.StartPlay{
		Viewer: 9, Instance: 77, File: 0, StartBlock: 0,
		Bitrate: 2_000_000, Primary: true,
	}
	r.cubs[0].Deliver(msg.Controller, &sp)
	dup := sp
	r.cubs[0].Deliver(msg.Controller, &dup)
	r.run(5 * time.Second)

	tot := r.totals()
	if tot.Inserts != 1 {
		t.Fatalf("duplicated StartPlay produced %d inserts, want 1", tot.Inserts)
	}
	if tot.StartsDup != 1 {
		t.Fatalf("StartsDup = %d, want 1", tot.StartsDup)
	}
	if tot.Conflicts != 0 {
		t.Fatalf("%d conflicts from a duplicated start", tot.Conflicts)
	}
}
