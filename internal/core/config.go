// Package core implements Tiger's distributed schedule management (§4 of
// the paper): cubs that hold partial, possibly out-of-date views of a
// global schedule that exists only as a "coherent hallucination", the
// viewer-state gossip that keeps those views coherent, idempotent
// deschedules, slot insertion under time-based ownership, the deadman
// failure detector, and mirror takeover for failed components.
//
// The protocol code is written against clock.Clock and Transport
// interfaces so the identical cub logic runs under the deterministic
// simulator (internal/sim + internal/netsim) and under real time
// (internal/rt).
package core

import (
	"fmt"
	"time"

	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/schedule"
)

// Transport sends control messages between nodes. netsim.Network and the
// real TCP mesh both satisfy it.
type Transport interface {
	Send(from, to msg.NodeID, m msg.Message)
}

// SteadySender is an optional Transport refinement: SendSteady delivers
// like Send but without drawing from the transport's shared jitter
// stream, so periodic liveness traffic (the controller heartbeat) cannot
// perturb the randomness alignment of everything else in a simulated
// run. netsim.Network implements it; the TCP mesh just uses Send.
type SteadySender interface {
	SendSteady(from, to msg.NodeID, m msg.Message)
}

// Config is the static, globally agreed configuration of a Tiger system.
// Every node gets an identical copy; nothing in it is negotiated at run
// time.
type Config struct {
	Layout layout.Config
	Sched  schedule.Params

	BlockSize int64 // bytes per block (single-bitrate system, §2.2)

	// Viewer-state forwarding control (§4.1.1). Cubs keep the schedule
	// updated at least MinVStateLead into the future and never forward
	// viewer states more than MaxVStateLead ahead; the gap lets them
	// batch states into single messages.
	MinVStateLead   time.Duration
	MaxVStateLead   time.Duration
	ForwardInterval time.Duration // batching cadence

	// DescheduleHold is how long deschedule records are retained after
	// the slot they describe has passed the holding cub (§4.1.2).
	DescheduleHold time.Duration

	// ReadAhead is how far before a block's send deadline its disk read
	// is issued ("the disks run at least one block service time ahead of
	// the schedule. Usually, they run a little earlier", §3.1).
	ReadAhead time.Duration

	// Deadman protocol (§2.3).
	HeartbeatInterval time.Duration
	DeadmanTimeout    time.Duration

	// AdmitLimit caps schedule load for new insertions (the controller
	// refuses starts past this fraction of capacity). The paper's code
	// has such a limit, disabled for the §5 experiments; 0 disables it.
	AdmitLimit float64

	// SingleForward disables double forwarding of viewer states: each
	// state goes only to the first living successor. The paper rejected
	// this design because schedule information held only by a cub when
	// it fails is lost until laboriously reconstructed (§4.1.1); the
	// knob exists to reproduce that ablation.
	SingleForward bool

	DiskParams disk.Params
	CPUModel   metrics.CPUModel

	// Health tunes the per-disk gray-failure monitor (DESIGN §12).
	Health HealthParams

	// Governor tunes the correlated-failure degradation governor
	// (governor.go). Off unless Governor.Enable is set: parking is a
	// policy choice layered on the protocol, and the fault experiments
	// that predate it measure raw mirror behaviour.
	Governor GovernorParams

	Files map[msg.FileID]layout.File
}

// GovernorParams tune the degradation governor: when correlated
// failures exhaust mirror coverage, the controller parks the fewest
// streams whose play trajectories cross the unservable disks so every
// surviving stream keeps a clean schedule. Zero fields take
// DefaultTimings' defaults.
type GovernorParams struct {
	// Enable turns the governor on. Without it, correlated failures
	// degrade every stream crossing the dead span (the paper's
	// behaviour).
	Enable bool

	// GuardBlocks widens the park test around a stream's current disk:
	// a stream is parked when any disk within [-1, GuardBlocks+Horizon]
	// block-times of its position is unservable. The -1 end covers a
	// send already in flight; GuardBlocks covers reads already issued.
	GuardBlocks int

	// Horizon is how many additional block-times ahead the rolling
	// sweep looks, so a stream is parked at least Horizon block plays
	// before its first unservable deadline.
	Horizon int

	// Tick is the rolling sweep cadence while any disk is unservable;
	// 0 means one block play time.
	Tick time.Duration

	// ResumeDelay is how long after the unservable set empties the
	// governor waits before draining the re-admission queue — long
	// enough for the restarted cub's rejoin handshake to finish.
	ResumeDelay time.Duration
}

// HealthParams tune the per-disk gray-failure monitor: the EWMA slack
// detector, the healthy → suspected → quarantined state machine, and the
// un-quarantine probe loop. Zero fields take DefaultTimings' defaults;
// Disable turns the whole monitor off (the unmitigated ablation arm of
// the grayfail sweep).
type HealthParams struct {
	Disable bool

	// SlackAlpha is the EWMA weight of the newest completion sample, for
	// both the normalized-slack and the issue-to-completion latency
	// estimators.
	SlackAlpha float64

	// SuspectSlack and HealthySlack are normalized-slack EWMA thresholds
	// in units of the zoned worst-case service time: below SuspectSlack a
	// healthy disk becomes suspected; back above HealthySlack (with a
	// clean streak) a suspected disk recovers. A healthy fully loaded
	// disk sits far above both (slack ≈ ReadAhead / worst-case service),
	// so the hysteresis band only engages on genuine degradation.
	SuspectSlack float64
	HealthySlack float64

	// SuspectAfter / QuarantineAfter are the consecutive bad-event
	// streaks (late completion, failed read, or deadline miss) that force
	// healthy → suspected and suspected → quarantined regardless of the
	// EWMA — the only signal path a stuck drive ever produces.
	SuspectAfter    int
	QuarantineAfter int

	// ProbeInterval is the cadence of single-block probe reads against a
	// quarantined drive; ProbeGood consecutive probes completing within
	// 1.5× the worst-case service budget un-quarantine it, at an
	// unchanged epoch.
	ProbeInterval time.Duration
	ProbeGood     int
}

// DefaultTimings fills in the paper's typical protocol constants.
func (c *Config) DefaultTimings() {
	if c.MinVStateLead == 0 {
		c.MinVStateLead = 4 * time.Second
	}
	if c.MaxVStateLead == 0 {
		c.MaxVStateLead = 9 * time.Second
	}
	if c.ForwardInterval == 0 {
		c.ForwardInterval = 500 * time.Millisecond
	}
	if c.DescheduleHold == 0 {
		c.DescheduleHold = 3 * time.Second
	}
	if c.ReadAhead == 0 {
		// One second of read-ahead: the cubs' 20 MB buffer caches bound
		// how far ahead of the schedule the disks can usefully run, and
		// deeper prefetch only delays late-read detection (§3.1).
		c.ReadAhead = time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.DeadmanTimeout == 0 {
		c.DeadmanTimeout = 2500 * time.Millisecond
	}
	if c.Health.SlackAlpha == 0 {
		c.Health.SlackAlpha = 0.2
	}
	if c.Health.SuspectSlack == 0 {
		c.Health.SuspectSlack = 3
	}
	if c.Health.HealthySlack == 0 {
		c.Health.HealthySlack = 6
	}
	if c.Health.SuspectAfter == 0 {
		c.Health.SuspectAfter = 3
	}
	if c.Health.QuarantineAfter == 0 {
		c.Health.QuarantineAfter = 8
	}
	if c.Health.ProbeInterval == 0 {
		c.Health.ProbeInterval = 5 * time.Second
	}
	if c.Health.ProbeGood == 0 {
		c.Health.ProbeGood = 3
	}
	if c.Governor.GuardBlocks == 0 {
		c.Governor.GuardBlocks = 1
	}
	if c.Governor.Horizon == 0 {
		c.Governor.Horizon = 2
	}
	if c.Governor.ResumeDelay == 0 {
		c.Governor.ResumeDelay = c.DeadmanTimeout
	}
}

// Validate checks cross-field consistency.
func (c *Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if err := c.Sched.Validate(); err != nil {
		return err
	}
	if c.Layout.NumDisks() != c.Sched.NumDisks {
		return fmt.Errorf("core: layout has %d disks but schedule has %d",
			c.Layout.NumDisks(), c.Sched.NumDisks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("core: non-positive block size %d", c.BlockSize)
	}
	if c.MinVStateLead >= c.MaxVStateLead {
		return fmt.Errorf("core: minVStateLead %v must be below maxVStateLead %v",
			c.MinVStateLead, c.MaxVStateLead)
	}
	if c.MinVStateLead <= c.Sched.SchedLead {
		return fmt.Errorf("core: minVStateLead %v must exceed the scheduling lead %v (§4.1.3)",
			c.MinVStateLead, c.Sched.SchedLead)
	}
	// §4.1.3: in the single-bitrate Tiger the block play time must exceed
	// the largest expected inter-cub latency; we cannot check the real
	// network here, but the forwarding machinery additionally needs the
	// batching interval to fit comfortably inside the lead gap.
	if c.ForwardInterval > c.MaxVStateLead-c.MinVStateLead {
		return fmt.Errorf("core: forward interval %v exceeds the vstate lead gap %v",
			c.ForwardInterval, c.MaxVStateLead-c.MinVStateLead)
	}
	if c.ReadAhead < c.Sched.BlockService {
		return fmt.Errorf("core: read-ahead %v below one block service time %v",
			c.ReadAhead, c.Sched.BlockService)
	}
	if c.DeadmanTimeout < 2*c.HeartbeatInterval {
		return fmt.Errorf("core: deadman timeout %v under two heartbeat intervals", c.DeadmanTimeout)
	}
	if c.Governor.Enable {
		g := c.Governor
		if g.GuardBlocks < 0 || g.Horizon < 0 {
			return fmt.Errorf("core: governor guard/horizon must be non-negative: %+v", g)
		}
		if g.Tick < 0 || g.ResumeDelay < 0 {
			return fmt.Errorf("core: governor tick/resume delay must be non-negative: %+v", g)
		}
	}
	if !c.Health.Disable {
		h := c.Health
		if h.SlackAlpha <= 0 || h.SlackAlpha > 1 {
			return fmt.Errorf("core: health slack alpha %v outside (0,1]", h.SlackAlpha)
		}
		if h.SuspectSlack >= h.HealthySlack {
			return fmt.Errorf("core: health suspect slack %v must be below healthy slack %v (hysteresis)",
				h.SuspectSlack, h.HealthySlack)
		}
		if h.SuspectAfter <= 0 || h.QuarantineAfter <= 0 || h.ProbeGood <= 0 {
			return fmt.Errorf("core: health streak/probe counts must be positive: %+v", h)
		}
		if h.ProbeInterval <= 0 {
			return fmt.Errorf("core: health probe interval %v must be positive", h.ProbeInterval)
		}
	}
	for id, f := range c.Files {
		if f.ID != id {
			return fmt.Errorf("core: file map key %d does not match file ID %d", id, f.ID)
		}
		if f.Blocks <= 0 {
			return fmt.Errorf("core: file %d has no blocks", id)
		}
		if f.StartDisk < 0 || f.StartDisk >= c.Layout.NumDisks() {
			return fmt.Errorf("core: file %d start disk %d out of range", id, f.StartDisk)
		}
	}
	return nil
}

// MirrorPace returns the pacing interval between declustered mirror
// pieces: block play time divided by the decluster factor (§4.1.1).
func (c *Config) MirrorPace() time.Duration {
	return c.Sched.BlockPlay / time.Duration(c.Layout.Decluster)
}

// MirrorPartSize returns the size of one declustered secondary piece.
func (c *Config) MirrorPartSize() int64 {
	dc := int64(c.Layout.Decluster)
	return (c.BlockSize + dc - 1) / dc
}
