package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

func TestStartMidFile(t *testing.T) {
	// A viewer may start at any block; the request routes to the disk
	// holding that block and the stream plays to EOF from there.
	o := defaultRigOptions()
	o.fileBlocks = 40
	r := newRig(t, o)
	r.play(1, 0, 25) // 15 blocks remain
	r.run(30 * time.Second)
	if got := r.got(1); got != 15 {
		t.Fatalf("mid-file start delivered %d blocks, want 15", got)
	}
	for _, c := range r.cubs {
		if c.ViewSize() != 0 {
			t.Fatalf("cub %v retains entries after EOF", c.ID())
		}
	}
}

func TestStartAtLastBlock(t *testing.T) {
	o := defaultRigOptions()
	o.fileBlocks = 40
	r := newRig(t, o)
	r.play(1, 0, 39)
	r.run(15 * time.Second)
	if got := r.got(1); got != 1 {
		t.Fatalf("last-block start delivered %d blocks, want 1", got)
	}
}

func TestEOFDuringFailure(t *testing.T) {
	// A stream reaching end of file while a cub is down must terminate
	// cleanly: mirror chains stop at the file boundary.
	o := defaultRigOptions()
	o.cubs, o.decluster = 8, 2
	o.fileBlocks = 30
	r := newRig(t, o)
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.net.Fail(3)
	r.run(40 * time.Second) // well past EOF at ~32 s
	got := r.got(1)
	if got < 26 || got > 30 {
		t.Fatalf("delivered %d of 30 blocks across failure+EOF", got)
	}
	for _, c := range r.cubs {
		if c.ID() == 3 {
			continue
		}
		if v := c.ViewSize(); v != 0 {
			t.Fatalf("cub %v retains %d entries after EOF", c.ID(), v)
		}
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("conflicts %d", tot.Conflicts)
	}
}

func TestManySimultaneousStops(t *testing.T) {
	o := defaultRigOptions()
	r := newRig(t, o)
	var insts []msg.InstanceID
	for v := msg.ViewerID(1); v <= 12; v++ {
		insts = append(insts, r.play(v, msg.FileID(int(v)%o.files), 0))
	}
	r.run(15 * time.Second)
	for _, inst := range insts {
		r.ctl.StopPlay(inst)
	}
	r.run(20 * time.Second)
	for _, c := range r.cubs {
		if v := c.ViewSize(); v != 0 {
			t.Fatalf("cub %v retains %d entries after mass stop", c.ID(), v)
		}
	}
	if r.ctl.Active() != 0 {
		t.Fatalf("controller still counts %d active", r.ctl.Active())
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("conflicts %d", tot.Conflicts)
	}
}

func TestAdmissionLimit(t *testing.T) {
	o := defaultRigOptions()
	o.mutate = func(c *Config) { c.AdmitLimit = 0.5 }
	r := newRig(t, o)
	limit := int(0.5 * float64(r.cfg.Sched.NumSlots))
	accepted := 0
	var lastErr error
	for v := msg.ViewerID(1); int(v) <= limit+10; v++ {
		_, err := r.ctl.StartPlay(v, msg.FileID(int(v)%4), 0, 2_000_000)
		if err == nil {
			accepted++
		} else {
			lastErr = err
		}
	}
	if accepted != limit {
		t.Fatalf("accepted %d, limit %d", accepted, limit)
	}
	if lastErr == nil {
		t.Fatal("no rejection error")
	}
	if r.ctl.Stats().Rejected != 10 {
		t.Fatalf("rejected %d, want 10", r.ctl.Stats().Rejected)
	}
	// Stopping a stream frees admission capacity.
	r.run(5 * time.Second)
	r.ctl.StopPlay(1)
	if _, err := r.ctl.StartPlay(999, 0, 0, 2_000_000); err != nil {
		t.Fatalf("admission not released after stop: %v", err)
	}
}

func TestControllerRejectsBadRequests(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	if _, err := r.ctl.StartPlay(1, 99, 0, 2_000_000); err == nil {
		t.Error("unknown file accepted")
	}
	if _, err := r.ctl.StartPlay(1, 0, -1, 2_000_000); err == nil {
		t.Error("negative block accepted")
	}
	if _, err := r.ctl.StartPlay(1, 0, 1_000_000, 2_000_000); err == nil {
		t.Error("out-of-range block accepted")
	}
	// Stopping unknown instances is a harmless no-op.
	r.ctl.StopPlay(424242)
	r.ctl.NotifyEOF(424242)
}

func TestHeartbeatKeepsPeersAlive(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.run(time.Minute)
	for _, c := range r.cubs {
		if len(c.believedDead) != 0 {
			t.Fatalf("cub %v believes %v dead in a healthy system", c.ID(), c.believedDead)
		}
		if c.Stats().DeadDeclared != 0 {
			t.Fatalf("cub %v declared deaths: %+v", c.ID(), c.Stats())
		}
	}
}

func TestBufferReleasedAfterStop(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	inst := r.play(1, 0, 0)
	r.run(10 * time.Second)
	r.ctl.StopPlay(inst)
	r.run(15 * time.Second)
	for _, c := range r.cubs {
		if b := c.BufferedBytes(); b != 0 {
			t.Fatalf("cub %v leaks %d buffered bytes after stop", c.ID(), b)
		}
		if c.Stats().PeakBuffered == 0 && c.Stats().BlocksSent > 0 {
			t.Fatalf("cub %v sent blocks without buffering", c.ID())
		}
	}
}
