package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// TestRestartReintegration is the deterministic version of the crash–
// restart story: a cub crashes mid-stream, the ring covers for it, and
// after a cold restart the rejoin handshake rebuilds its view and hands
// the mirror load back.
func TestRestartReintegration(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(20 * time.Second)

	const victim = 3
	r.net.Crash(msg.NodeID(victim))
	r.run(10 * time.Second) // deadman fires; successors build mirror chains
	if ml := r.mirrorLoadFor(victim); ml == 0 {
		t.Fatal("no mirror load built up while the victim was down")
	}
	sentAtCrash := r.cubs[victim].Stats().BlocksSent
	gotAtCrash := r.got(1)

	r.net.Revive(msg.NodeID(victim))
	r.cubs[victim].Restart()
	r.run(15 * time.Second)

	st := r.cubs[victim].Stats()
	if st.Rejoins != 1 {
		t.Fatalf("rejoins %d, want 1", st.Rejoins)
	}
	if e := r.cubs[victim].Epoch(); e != 2 {
		t.Fatalf("epoch %d after one restart, want 2", e)
	}
	if st.ViewTransferred == 0 {
		t.Error("no viewer states transferred by the rejoin handshake")
	}
	tot := r.totals()
	if tot.MirrorsRetired == 0 {
		t.Error("no mirror entries handed back")
	}
	if ml := r.mirrorLoadFor(victim); ml != 0 {
		t.Errorf("mirror load did not drain: %d entries", ml)
	}
	if st.BlocksSent <= sentAtCrash {
		t.Error("victim never served a block after restart")
	}
	// One-second blocks: full rate is 15 blocks over the 15 s window.
	if r.got(1)-gotAtCrash < 12 {
		t.Errorf("stream stalled across the restart: %d new blocks in 15s",
			r.got(1)-gotAtCrash)
	}
	if tot.Conflicts != 0 {
		t.Errorf("state conflicts through restart: %d", tot.Conflicts)
	}

	// The recovery clock stopped when the last neighbour answered — well
	// inside the deadman-timeout fallback.
	h := r.cubs[victim].RecoveryTimes()
	if h.Count() != 1 {
		t.Fatalf("%d recovery samples, want 1", h.Count())
	}
	if h.Max() >= r.cfg.DeadmanTimeout {
		t.Errorf("recovery took %v, fallback timer must not be the closer", h.Max())
	}
}

// TestEpochFencing exercises the fence directly: once a peer's epoch
// high-water mark rises, anything stamped with an older epoch — a
// heartbeat, a viewer state, a rejoin reply for a previous incarnation —
// is discarded without side effects.
func TestEpochFencing(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.run(5 * time.Second) // settle; real heartbeats carry epoch 1
	cub := r.cubs[0]
	base := cub.Stats().StaleEpochDrops

	// A heartbeat with a higher epoch raises the mark for peer 2.
	cub.Deliver(msg.NodeID(2), &msg.Heartbeat{From: 2, Epoch: 5, Now: int64(r.eng.Now())})
	if d := cub.Stats().StaleEpochDrops - base; d != 0 {
		t.Fatalf("fresh heartbeat dropped: %d", d)
	}
	// An older-epoch heartbeat from the same peer is fenced.
	cub.Deliver(msg.NodeID(2), &msg.Heartbeat{From: 2, Epoch: 4, Now: int64(r.eng.Now())})
	if d := cub.Stats().StaleEpochDrops - base; d != 1 {
		t.Fatalf("stale heartbeat not fenced: %d drops", d)
	}

	// A stale-epoch viewer state is discarded before any processing: not
	// received, not applied, not forwarded.
	vs := msg.ViewerState{
		Viewer: 7, Instance: 77, File: 0, Block: 0, Slot: 3,
		Due:      int64(r.eng.Now()) + int64(2*time.Second),
		OrigDisk: 0, Epoch: 4,
	}
	recvBefore := cub.Stats().StatesRecv
	cub.Deliver(msg.NodeID(2), &vs)
	st := cub.Stats()
	if st.StaleEpochDrops-base != 2 {
		t.Fatalf("stale viewer state not fenced: %d drops", st.StaleEpochDrops-base)
	}
	if st.StatesRecv != recvBefore || cub.ViewSize() != 0 {
		t.Fatal("stale viewer state was processed")
	}

	// The same state at the current mark is accepted normally.
	vs.Epoch = 5
	cub.Deliver(msg.NodeID(2), &vs)
	if cub.ViewSize() != 1 {
		t.Fatal("current-epoch viewer state not accepted")
	}

	// A rejoin reply addressed to a previous incarnation is ignored.
	cub.Deliver(msg.NodeID(1), &msg.RejoinReply{From: 1, ForEpoch: cub.Epoch() + 1})
	if d := cub.Stats().StaleEpochDrops - base; d != 3 {
		t.Fatalf("mismatched rejoin reply not dropped: %d drops", d)
	}
}

// TestRestartWipesVolatileState verifies Restart is a genuine cold
// start: the view empties, queues clear, and liveness beliefs reset,
// while cumulative counters survive (they belong to the test harness,
// not the incarnation).
func TestRestartWipesVolatileState(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(12 * time.Second)
	cub := r.cubs[2]
	if cub.ViewSize() == 0 {
		t.Fatal("no view to wipe")
	}
	sent := cub.Stats().BlocksSent
	cub.Restart()
	if cub.ViewSize() != 0 || cub.QueueLen() != 0 {
		t.Fatalf("restart left state: view=%d queue=%d", cub.ViewSize(), cub.QueueLen())
	}
	if cub.Stats().BlocksSent != sent {
		t.Fatal("restart clobbered cumulative counters")
	}
	if cub.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", cub.Epoch())
	}
	// The ring refills the view and the stream survives.
	before := r.got(1)
	r.run(15 * time.Second)
	if r.got(1)-before < 10 {
		t.Fatalf("stream did not survive an in-place restart: %d blocks", r.got(1)-before)
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("conflicts after restart: %d", tot.Conflicts)
	}
}
