package core

import (
	"fmt"
	"sort"

	"tiger/internal/layout"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

// This file implements striping generations, the mechanism behind
// ownership-safe schedule widening and narrowing (DESIGN §13). An
// elastic restripe changes the cub count, which renumbers every disk and
// resizes the slot ring — but streams admitted under the old shape must
// keep playing while streams admitted under the new shape ramp up. Each
// cub therefore carries one *plane* per installed generation: the
// generation's Config (layout, schedule geometry, file placement) plus
// the content index of this cub's drives under that generation's
// numbering. Which plane governs a message is encoded in the slot
// number itself: the top bits of ViewerState.Slot carry the generation,
// the low bits the raw slot. Slot ownership, ring forwarding, mirror
// declustering, and deschedule chasing all resolve against the plane of
// the entry they touch, so the two schedules interleave on the same
// spindles without ever sharing a slot — new slots "appear" as the new
// generation's ring and drain away with the old one's.
//
// Physical drives keep their *native* numbering — the disk numbers of
// the generation the cub was created under — as the keys of the disk,
// index, health, and failure maps. A generation-local disk number
// converts to native via the cub-local disk index, which is invariant
// across generations.

// genShift is where the generation field starts inside a slot number.
// 24 bits of raw slot is ~16M slots, far above any schedule; 7 bits of
// generation outlast any realistic reconfiguration history.
const genShift = 24

const rawSlotMask = int32(1)<<genShift - 1

// GenOf returns the striping generation encoded in a slot number.
// Negative slots (the "never inserted" sentinel) have no generation.
func GenOf(slot int32) int32 {
	if slot < 0 {
		return -1
	}
	return slot >> genShift
}

// RawSlot strips the generation bits off a slot number, yielding the
// slot index meaningful to that generation's schedule.
func RawSlot(slot int32) int32 {
	if slot < 0 {
		return slot
	}
	return slot & rawSlotMask
}

func genBase(g int32) int32 { return g << genShift }

// genDiskKey packs (generation, generation-local disk) into one int32,
// used to key the start-insertion queues.
func genDiskKey(g int32, gd int) int32 { return genBase(g) | int32(gd) }

// genPlane is one generation's view of the world on one cub.
type genPlane struct {
	gen int32
	cfg *Config
	// index maps native local disk number -> content index under this
	// generation's placement. nil when this cub is not a participant of
	// the generation (a retiring cub holds the plane only to fence).
	index map[int]*diskIndex
}

func (c *Cub) participatesIn(cfg *Config) bool {
	return int(c.id) < cfg.Layout.Cubs
}

// nativeDisk converts a generation-local disk number owned by this cub
// into the native numbering that keys c.disks.
func (c *Cub) nativeDisk(lay layout.Config, gd int) int {
	return (gd/lay.Cubs)*c.nativeCubs + int(c.id)
}

// genLocalDisk converts one of this cub's native disk numbers into the
// given generation's numbering.
func (c *Cub) genLocalDisk(lay layout.Config, nd int) int {
	return (nd/c.nativeCubs)*lay.Cubs + int(c.id)
}

func (c *Cub) planeOf(slot int32) *genPlane { return c.planes[GenOf(slot)] }

// cfgOf returns the Config governing a slot, or nil when the slot's
// generation is not installed — uninstalled generations fence exactly
// like stale epochs: their traffic must not touch the view.
func (c *Cub) cfgOf(slot int32) *Config {
	if p := c.planes[GenOf(slot)]; p != nil {
		return p.cfg
	}
	return nil
}

func (c *Cub) activePlane() *genPlane { return c.planes[c.activeGen] }

// ActiveGen returns the generation new insertions go to.
func (c *Cub) ActiveGen() int32 { return c.activeGen }

// InstallGen makes a generation's configuration known to the cub,
// building the content index of its drives under the new placement.
// Idempotent; must be called on every cub before any slot of that
// generation can circulate.
func (c *Cub) InstallGen(gen int32, cfg *Config) {
	if _, ok := c.planes[gen]; ok {
		return
	}
	p := &genPlane{gen: gen, cfg: cfg}
	if c.participatesIn(cfg) {
		genDisks := cfg.Layout.DisksOfCub(c.id)
		built := buildIndexes(cfg, genDisks)
		p.index = make(map[int]*diskIndex, len(built))
		for gd, di := range built {
			p.index[c.nativeDisk(cfg.Layout, gd)] = di
		}
	}
	c.planes[gen] = p
	c.refreshMonitored()
}

// SetActiveGen flips which generation admits new insertions. The flip
// is atomic within the cub's executor; the cluster performs it on every
// node in a single quiesced instant (the cutover).
func (c *Cub) SetActiveGen(gen int32) {
	if _, ok := c.planes[gen]; !ok {
		panic(fmt.Sprintf("cub %v: SetActiveGen(%d) before InstallGen", c.id, gen))
	}
	c.activeGen = gen
}

// DropGen forgets a fully drained generation. Late traffic carrying its
// slots is refused from then on (cfgOf returns nil), which is what makes
// narrowing safe: a retired slot cannot be resurrected.
func (c *Cub) DropGen(gen int32) {
	if gen == c.activeGen {
		panic(fmt.Sprintf("cub %v: cannot drop active generation %d", c.id, gen))
	}
	if _, ok := c.planes[gen]; !ok {
		return
	}
	delete(c.planes, gen)
	// Scrub any stale queued starts for the dropped generation.
	for k, q := range c.queue {
		if GenOf(k) == gen {
			c.queueLen -= len(q)
			delete(c.queue, k)
		}
	}
	c.refreshMonitored()
}

// GenEntries counts view entries belonging to one generation — the
// drain monitor polls this toward zero.
func (c *Cub) GenEntries(gen int32) int {
	n := 0
	for k := range c.entries {
		if GenOf(k.slot) == gen {
			n++
		}
	}
	return n
}

// GenQueued counts queued start requests targeting one generation.
func (c *Cub) GenQueued(gen int32) int {
	n := 0
	for k, q := range c.queue {
		if GenOf(k) == gen {
			n += len(q)
		}
	}
	return n
}

// Rebase re-homes a cub created under a non-zero generation: NewCub
// installed its birth configuration as generation 0, so a cub joining
// at generation g relabels that plane. Must be called before Start and
// before any InstallGen.
func (c *Cub) Rebase(gen int32) {
	if gen == 0 || len(c.planes) != 1 || c.planes[0] == nil {
		return
	}
	p := c.planes[0]
	p.gen = gen
	delete(c.planes, 0)
	c.planes[gen] = p
	c.activeGen = gen
}

// refreshMonitored recomputes the deadman-monitored neighbour set as
// the union of this cub's ring neighbourhoods over every installed
// generation it participates in. Newly monitored peers start with a
// fresh lastSeen so installation cannot instantly declare them dead; a
// retiring cub ends with an empty set and harmlessly idle heartbeats.
func (c *Cub) refreshMonitored() {
	gens := make([]int32, 0, len(c.planes))
	for g := range c.planes {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	seen := map[msg.NodeID]bool{c.id: true}
	var mon []msg.NodeID
	for _, g := range gens {
		cfg := c.planes[g].cfg
		if !c.participatesIn(cfg) {
			continue
		}
		lay := cfg.Layout
		k := lay.Decluster + 1
		if k < 2 {
			k = 2
		}
		if k > lay.Cubs-1 {
			k = lay.Cubs - 1
		}
		for i := 1; i <= k; i++ {
			for _, n := range []msg.NodeID{ringAddIn(lay, c.id, i), ringAddIn(lay, c.id, -i)} {
				if !seen[n] {
					seen[n] = true
					mon = append(mon, n)
				}
			}
		}
	}
	if c.started {
		now := c.clk.Now()
		prev := make(map[msg.NodeID]bool, len(c.monitored))
		for _, n := range c.monitored {
			prev[n] = true
		}
		for _, n := range mon {
			if !prev[n] {
				c.lastSeen[n] = now
			}
		}
	}
	c.monitored = mon
}

// layoutOf returns the layout governing a slot, falling back to the
// native layout for slots of dropped generations (callers that only
// need a count bound, not routing).
func (c *Cub) layoutOf(slot int32) layout.Config {
	if cfg := c.cfgOf(slot); cfg != nil {
		return cfg.Layout
	}
	return c.cfg.Layout
}

// schedTimeOfSlot returns the earliest upcoming service time of slot on
// any of this cub's disks under the slot's generation, or now when the
// generation is unknown or this cub does not participate in it.
func (c *Cub) schedTimeOfSlot(slot int32) sim.Time {
	now := c.clk.Now()
	cfg := c.cfgOf(slot)
	if cfg == nil || !c.participatesIn(cfg) {
		return now
	}
	raw := RawSlot(slot)
	var best sim.Time
	first := true
	for nd := range c.disks {
		gd := c.genLocalDisk(cfg.Layout, nd)
		t := cfg.Sched.ServiceTime(gd, raw, now)
		if first || t < best {
			best = t
			first = false
		}
	}
	if first {
		return now
	}
	return best
}
