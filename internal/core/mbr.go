package core

import (
	"fmt"
	"time"

	"tiger/internal/clock"
	"tiger/internal/disk"
	"tiger/internal/msg"
	"tiger/internal/netsched"
	"tiger/internal/netsim"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// This file implements the multiple-bitrate Tiger's network schedule
// management (§3.2, §4.2). Entries are one block play time long and as
// tall as their stream's bitrate; because cubs are separated from one
// another in the schedule by exactly a block play time, the ownership
// trick of the single-bitrate system cannot work, and insertion instead
// uses a two-phase reservation with the successor cub, overlapped with
// the speculative disk read of the first block.
//
// The authors had the network schedule "complete and working" while the
// multi-bitrate disk schedule remained unwritten; we mirror that scope:
// the disk side is a reorderable read whose only requirement is
// completion before the network needs the block.

// MBRConfig configures a multiple-bitrate cub.
type MBRConfig struct {
	Cubs      int
	BlockPlay time.Duration
	NICBps    int64 // network schedule capacity per cub (bits/s)

	// StartQuantum quantizes entry start positions; the paper found
	// fragmentation acceptable only at blockPlay/decluster (§3.2).
	StartQuantum time.Duration

	// ReserveTimeout bounds how long the originator waits for the
	// successor's confirmation before aborting the tentative insertion.
	ReserveTimeout time.Duration

	// SchedLead is how far before the entry's first service the
	// insertion must complete (covers the speculative disk read).
	SchedLead time.Duration

	DiskParams disk.Params
	BlockSize  func(bitrate int64) int64 // bytes per block at a bitrate
}

// DefaultMBRConfig returns a small multiple-bitrate system configuration.
func DefaultMBRConfig(cubs int) MBRConfig {
	bp := time.Second
	return MBRConfig{
		Cubs:           cubs,
		BlockPlay:      bp,
		NICBps:         100_000_000,
		StartQuantum:   bp / 4,
		ReserveTimeout: 250 * time.Millisecond,
		SchedLead:      750 * time.Millisecond,
		DiskParams:     disk.DefaultParams(),
		BlockSize: func(bitrate int64) int64 {
			return bitrate * int64(bp) / int64(8*time.Second)
		},
	}
}

// MBRStats count multiple-bitrate protocol events.
type MBRStats struct {
	Inserts        int64 // committed insertions
	LocalRejects   int64 // ruled out by the local view alone (§4.2)
	RemoteRejects  int64 // successor reported insufficient room
	Timeouts       int64 // no confirmation in time; aborted
	AbortedReads   int64 // speculative disk reads thrown away
	ReserveHandled int64
	Sends          int64
}

type mbrPending struct {
	entry    netsched.Entry
	seq      int32
	deadline clock.Timer
	readDone bool
	sendAt   sim.Time
}

// MBRCub is one cub of a multiple-bitrate Tiger system. It maintains a
// view of the network schedule and performs distributed insertion per
// §4.2. Like Cub, it is single-threaded under its node executor.
type MBRCub struct {
	id  msg.NodeID
	cfg MBRConfig
	clk clock.Clock
	net Transport

	sched   *netsched.Schedule
	disk    *disk.Disk
	pending map[int32]*mbrPending // tentative insertions by sequence
	nextSeq int32
	stats   MBRStats
	ctrace  *trace.ChainLog // nil ⇒ causal tracing off

	// Data, if set, carries each block service onto the network data
	// path (paced at the stream's bitrate over one block play time), so
	// NIC occupancy accounting covers multiple-bitrate streams too.
	Data DataPath

	// OnCommit fires when an insertion commits; OnServe on each block
	// service (used by tests and the example).
	OnCommit func(e netsched.Entry)
	OnServe  func(e netsched.Entry, at sim.Time)
}

// NewMBRCub constructs a multiple-bitrate cub.
func NewMBRCub(id msg.NodeID, cfg MBRConfig, clk clock.Clock, net Transport, d *disk.Disk) (*MBRCub, error) {
	s, err := netsched.New(cfg.Cubs, cfg.BlockPlay, cfg.NICBps)
	if err != nil {
		return nil, err
	}
	if cfg.StartQuantum <= 0 {
		return nil, fmt.Errorf("mbr: non-positive start quantum")
	}
	return &MBRCub{
		id:      id,
		cfg:     cfg,
		clk:     clk,
		net:     net,
		sched:   s,
		disk:    d,
		pending: make(map[int32]*mbrPending),
	}, nil
}

// ID returns the node ID.
func (m *MBRCub) ID() msg.NodeID { return m.id }

// Stats returns protocol counters.
func (m *MBRCub) Stats() MBRStats { return m.stats }

// Schedule exposes this cub's view of the network schedule.
func (m *MBRCub) Schedule() *netsched.Schedule { return m.sched }

// SetChainLog attaches a causal chain log; new insertions on this cub
// are then traced. nil detaches (tracing off, the default).
func (m *MBRCub) SetChainLog(l *trace.ChainLog) { m.ctrace = l }

// ChainLog returns the attached chain log (possibly nil).
func (m *MBRCub) ChainLog() *trace.ChainLog { return m.ctrace }

// mbrHop records one causal hop for a traced entry. MBR chains are keyed
// by (instance, block 0): the interesting latency here is the two-phase
// insertion of §4.2, which all happens before the first block's service.
// Slack is measured against the entry's next service instant.
func (m *MBRCub) mbrHop(e *netsched.Entry, kind trace.HopKind) {
	if m.ctrace == nil || e.Trace == 0 {
		return
	}
	now := m.clk.Now()
	due := m.serviceTime(e.Start, now)
	m.ctrace.Record(e.Instance, 0, trace.Hop{
		At:    now,
		Node:  m.id,
		Kind:  kind,
		Slack: int64(due) - int64(now),
		Slot:  -1,
		Disk:  -1,
	})
}

func (m *MBRCub) successor() msg.NodeID {
	return msg.NodeID((int(m.id) + 1) % m.cfg.Cubs)
}

// pointer returns this cub's current offset within the network schedule
// cycle (Figure 4: cubs move left to right, one block play time apart).
func (m *MBRCub) pointer(t sim.Time) time.Duration {
	cycle := int64(m.sched.Cycle())
	off := (int64(t) - int64(m.id)*int64(m.cfg.BlockPlay)) % cycle
	if off < 0 {
		off += cycle
	}
	return time.Duration(off)
}

// StartPlay attempts to insert a stream of the given bitrate. It returns
// false if the cub's own view already rules the insertion out ("it first
// checks its local copy of the schedule to see if it can rule out the
// insertion based solely on its view", §4.2). Otherwise the insertion
// proceeds tentatively and commits or aborts asynchronously.
func (m *MBRCub) StartPlay(viewer msg.ViewerID, inst msg.InstanceID, bitrate int64) bool {
	now := m.clk.Now()
	// The entry must start after our pointer plus the scheduling lead.
	after := m.pointer(now.Add(m.cfg.SchedLead))
	start, ok := m.sched.FindStart(after, bitrate, m.cfg.StartQuantum)
	if !ok {
		m.stats.LocalRejects++
		return false
	}
	e := netsched.Entry{
		Viewer:   viewer,
		Instance: inst,
		Start:    start,
		Bitrate:  bitrate,
		State:    netsched.Tentative,
	}
	if m.ctrace != nil {
		e.Trace = 1
	}
	if err := m.sched.Insert(e); err != nil {
		m.stats.LocalRejects++
		return false
	}
	m.mbrHop(&e, trace.HopAdmit)
	m.nextSeq++
	seq := m.nextSeq
	p := &mbrPending{entry: e, seq: seq, sendAt: m.serviceTime(start, now)}

	// Overlap the communication latency with the speculative disk read
	// of the first block (§4.2, §4.3: "communications latency can be
	// hidden by overlapping it with speculative action").
	if m.disk != nil {
		size := m.cfg.BlockSize(bitrate)
		m.disk.Read(size, disk.Outer, p.sendAt, func(_ sim.Time, ok bool) {
			if cur, live := m.pending[seq]; live && cur == p && ok {
				p.readDone = true
			}
		})
	} else {
		p.readDone = true
	}

	m.pending[seq] = p
	m.net.Send(m.id, m.successor(), &msg.ReserveReq{
		Viewer:   viewer,
		Instance: inst,
		Start:    int64(start),
		Bitrate:  int32(bitrate),
		Seq:      seq,
		Trace:    e.Trace,
	})
	// Abort if no confirmation arrives early enough to start sending
	// the initial block on time.
	p.deadline = m.clk.After(m.cfg.ReserveTimeout, func() {
		if _, live := m.pending[seq]; live {
			m.stats.Timeouts++
			m.abort(seq)
		}
	})
	return true
}

// serviceTime returns this cub's next service instant for an entry at
// the given schedule offset.
func (m *MBRCub) serviceTime(start time.Duration, after sim.Time) sim.Time {
	cycle := int64(m.sched.Cycle())
	base := int64(m.id)*int64(m.cfg.BlockPlay) + int64(start)
	d := (base - int64(after)) % cycle
	if d < 0 {
		d += cycle
	}
	return after.Add(time.Duration(d))
}

func (m *MBRCub) abort(seq int32) {
	p, ok := m.pending[seq]
	if !ok {
		return
	}
	delete(m.pending, seq)
	if p.deadline != nil {
		p.deadline.Stop()
	}
	m.sched.Remove(p.entry.Instance)
	if !p.readDone {
		m.stats.AbortedReads++ // the disk I/O is stopped / discarded (§4.2)
	}
}

// Deliver implements netsim.Handler for the multiple-bitrate protocol.
func (m *MBRCub) Deliver(from msg.NodeID, t msg.Message) {
	switch mm := t.(type) {
	case *msg.ReserveReq:
		m.onReserveReq(from, mm)
	case *msg.ReserveResp:
		m.onReserveResp(mm)
	case *msg.Deschedule:
		// Idempotent removal, exactly as in the disk schedule.
		m.sched.Remove(mm.Instance)
	}
}

// onReserveReq handles the successor-side reservation: "if its view of
// the schedule has sufficient room it makes an entry that reserves the
// necessary space ... This entry will not result in any work being done
// ... only in a reservation of space" (§4.2).
func (m *MBRCub) onReserveReq(from msg.NodeID, r *msg.ReserveReq) {
	m.stats.ReserveHandled++
	e := netsched.Entry{
		Viewer:   r.Viewer,
		Instance: r.Instance,
		Start:    time.Duration(r.Start),
		Bitrate:  int64(r.Bitrate),
		State:    netsched.Reserved,
		Trace:    r.Trace,
	}
	ok := m.sched.Insert(e) == nil
	if ok {
		m.mbrHop(&e, trace.HopState) // reservation installed in the successor's view
	}
	m.net.Send(m.id, from, &msg.ReserveResp{Instance: r.Instance, Seq: r.Seq, OK: ok})
}

func (m *MBRCub) onReserveResp(r *msg.ReserveResp) {
	p, ok := m.pending[r.Seq]
	if !ok {
		return // already aborted by timeout
	}
	delete(m.pending, r.Seq)
	if p.deadline != nil {
		p.deadline.Stop()
	}
	if !r.OK {
		m.stats.RemoteRejects++
		m.sched.Remove(p.entry.Instance)
		if !p.readDone {
			m.stats.AbortedReads++
		}
		return
	}
	// Commit: the insertion is now part of the coherent hallucination —
	// known by at least one other machine (§4.3).
	if err := m.sched.SetState(p.entry.Instance, netsched.Committed); err == nil {
		m.stats.Inserts++
		p.entry.State = netsched.Committed
		m.mbrHop(&p.entry, trace.HopInsert)
		if m.OnCommit != nil {
			m.OnCommit(p.entry)
		}
		m.scheduleService(p.entry)
	}
}

// Commit notification from the originator replaces the successor's
// reservation with a real schedule entry; in the full system this rides
// on the first viewer state. Here the committed entry is propagated by
// CommitRemote (invoked by the harness's gossip) or directly by tests.
func (m *MBRCub) CommitRemote(e netsched.Entry) {
	if _, have := m.sched.Get(e.Instance); have {
		_ = m.sched.SetState(e.Instance, netsched.Committed)
	} else {
		e.State = netsched.Committed
		_ = m.sched.Insert(e)
	}
	m.scheduleService(e)
}

// scheduleService arms this cub's next block send for a committed entry.
func (m *MBRCub) scheduleService(e netsched.Entry) {
	at := m.serviceTime(e.Start, m.clk.Now())
	m.clk.At(at, func() { m.service(e.Instance, at) })
}

func (m *MBRCub) service(inst msg.InstanceID, at sim.Time) {
	e, ok := m.sched.Get(inst)
	if !ok || e.State != netsched.Committed {
		return // descheduled meanwhile
	}
	m.stats.Sends++
	m.mbrHop(&e, trace.HopSend)
	if m.Data != nil {
		m.Data.SendBlock(m.id, netsim.BlockDelivery{
			Viewer:   e.Viewer,
			Instance: e.Instance,
			PlaySeq:  int32(m.stats.Sends),
			Bytes:    m.cfg.BlockSize(e.Bitrate),
			Parts:    1,
		}, m.cfg.BlockPlay)
	}
	if m.OnServe != nil {
		m.OnServe(e, at)
	}
	// Next service one cycle later.
	next := at.Add(m.sched.Cycle())
	m.clk.At(next, func() { m.service(inst, next) })
}

// Utilization reports this cub's view of network schedule occupancy.
func (m *MBRCub) Utilization() float64 { return m.sched.Utilization() }
