package core

import (
	"time"

	"tiger/internal/clock"
	"tiger/internal/disk"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// This file implements the per-disk gray-failure monitor (DESIGN §12).
// Tiger's fail-stop machinery — the deadman detector, mirror takeover,
// restart rejoin — cannot see a drive that still answers, only slowly or
// unreliably; yet such a drive silently drops every stream it serves,
// because loss in Tiger is driven entirely by *late* reads. The monitor
// watches every local read completion and runs a three-state machine per
// drive:
//
//	healthy ──(slack EWMA < SuspectSlack, or SuspectAfter consecutive
//	           bad events)──▶ suspected
//	suspected ──(clean streak and slack EWMA > HealthySlack)──▶ healthy
//	suspected ──(slack EWMA < 0, or QuarantineAfter consecutive bad
//	           events)──▶ quarantined
//	quarantined ──(ProbeGood consecutive in-budget probe reads)──▶ healthy
//
// A *bad event* is a read that completed late or failed, or a scheduled
// send that fired with its read still outstanding — the deadline-miss
// path matters because a stuck drive produces no completions at all, so
// misses are its only signal.
//
// While a drive is suspected, reads whose predicted completion would
// miss the block deadline are hedged: the declustered mirror chain is
// launched in parallel with the local read, first copy wins at service
// time and the loser is cancelled. The capacity plan already reserves
// one secondary piece budget per stream slot on every disk
// (disk.PlanCapacity), which is exactly what makes the extra mirror load
// safe at the paper's 10.75 streams/disk operating point.
//
// Quarantine reuses the fail-stop retire path (retireDisk): the drive is
// declared dead, its entries convert to mirror chains, and incoming
// states route straight to mirrors. Unlike FailDisk it is not
// permanent: the drive is probed every ProbeInterval with one
// block-sized read, and ProbeGood consecutive probes inside the budget
// clear the quarantine at an unchanged epoch — no restart, no rejoin
// handshake, the cub never stopped being alive.

// DiskHealthState is the monitor's verdict on one drive.
type DiskHealthState int32

const (
	DiskHealthy DiskHealthState = iota
	DiskSuspected
	DiskQuarantined
)

func (s DiskHealthState) String() string {
	switch s {
	case DiskHealthy:
		return "healthy"
	case DiskSuspected:
		return "suspected"
	default:
		return "quarantined"
	}
}

// diskHealth is the monitor state for one local drive.
type diskHealth struct {
	state DiskHealthState

	// slackEwma tracks (due − completion) of recent reads, normalized by
	// the zoned worst-case service time; lat tracks raw issue-to-
	// completion latency for the hedge predictor. seeded is false until
	// the first sample (and again after an un-quarantine, so stale
	// pre-fault estimates cannot linger).
	slackEwma float64
	lat       time.Duration
	seeded    bool

	badStreak  int
	probeGood  int
	probeTimer clock.Timer
}

// DiskHealth reports the monitor's state for a local disk.
func (c *Cub) DiskHealth(d int) DiskHealthState {
	if h := c.health[d]; h != nil {
		return h.state
	}
	return DiskHealthy
}

// noteRead feeds one local read completion to the monitor. issued/due/
// done are the read's issue time, service deadline, and completion time;
// ok is false for a (transiently) failed read.
func (c *Cub) noteRead(d int, issued, due, done sim.Time, size int64, zone disk.Zone, ok bool) {
	if c.cfg.Health.Disable {
		return
	}
	h := c.health[d]
	if h == nil || h.state == DiskQuarantined {
		return // quarantined drives are judged by their probes alone
	}
	hp := &c.cfg.Health
	lat := done.Sub(issued)
	worst := c.cfg.DiskParams.WorstServiceTime(size, zone)
	slack := float64(due.Sub(done)) / float64(worst)
	if !h.seeded {
		h.lat = lat
		h.slackEwma = slack
		h.seeded = true
	} else {
		h.lat = time.Duration(float64(h.lat)*(1-hp.SlackAlpha) + float64(lat)*hp.SlackAlpha)
		h.slackEwma = h.slackEwma*(1-hp.SlackAlpha) + slack*hp.SlackAlpha
	}
	if !ok || done > due {
		h.badStreak++
	} else {
		h.badStreak = 0
	}
	c.evalHealth(d, h)
}

// noteDeadlineMiss records a send that fired with its read outstanding
// on drive d. For a stuck drive these misses are the only signal the
// monitor ever receives, so they must advance the state machine alone.
func (c *Cub) noteDeadlineMiss(d int) {
	if c.cfg.Health.Disable {
		return
	}
	h := c.health[d]
	if h == nil || h.state == DiskQuarantined {
		return
	}
	h.badStreak++
	c.evalHealth(d, h)
}

// evalHealth applies the state machine after the estimators moved.
func (c *Cub) evalHealth(d int, h *diskHealth) {
	hp := &c.cfg.Health
	switch h.state {
	case DiskHealthy:
		if h.badStreak >= hp.SuspectAfter || (h.seeded && h.slackEwma < hp.SuspectSlack) {
			c.suspectDisk(d, h)
		}
	case DiskSuspected:
		switch {
		case h.badStreak >= hp.QuarantineAfter || (h.seeded && h.slackEwma < 0):
			c.quarantineDisk(d, h)
		case h.badStreak == 0 && h.seeded && h.slackEwma > hp.HealthySlack:
			h.state = DiskHealthy
			c.stats.DiskRecoveries++
			if o := c.obs; o != nil {
				o.diskRecoveries.Inc()
			}
			c.setHealthGauge(d, h)
		}
	}
}

func (c *Cub) suspectDisk(d int, h *diskHealth) {
	h.state = DiskSuspected
	c.stats.DiskSuspects++
	if o := c.obs; o != nil {
		o.diskSuspects.Inc()
	}
	c.setHealthGauge(d, h)
	// The backlog that triggered suspicion is exactly the set of reads
	// that will miss: hedge every outstanding not-yet-due primary on the
	// drive immediately rather than waiting for each to be re-judged.
	c.hedgeOutstanding(d)
}

// hedgeOutstanding launches mirror chains for every unhedged, not-ready,
// future-due primary entry on drive d.
func (c *Cub) hedgeOutstanding(d int) {
	now := int64(c.clk.Now())
	var keys []entryKey
	for k, e := range c.entries {
		if k.part == -1 && e.disk == d && !e.ready && !e.hedged && e.vs.Due > now {
			keys = append(keys, k)
		}
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		c.hedgeEntry(c.entries[k])
	}
	if len(keys) > 0 {
		c.flushForwards()
	}
}

// shouldHedge is the per-read hedge decision (§12's rule): on a
// suspected drive, hedge when the predicted completion — now, plus the
// latency EWMA, plus one worst-case service time for the read itself —
// would miss the due time, or when the drive is mid-streak (its
// estimators cannot be trusted while every read is failing).
func (c *Cub) shouldHedge(d int, size int64, zone disk.Zone, due sim.Time) bool {
	if c.cfg.Health.Disable {
		return false
	}
	h := c.health[d]
	if h == nil || h.state != DiskSuspected {
		return false
	}
	if h.badStreak > 0 {
		return true
	}
	if !h.seeded {
		return false
	}
	predicted := c.clk.Now().Add(h.lat).Add(c.cfg.DiskParams.WorstServiceTime(size, zone))
	return predicted > due
}

// hedgeEntry launches the declustered mirror chain for a primary entry
// whose local read is in doubt. The local read keeps running: service()
// sends whichever copy is ready and cancels the loser. The primary block
// and its mirror pieces carry distinct (mirror, part) identities, so the
// double-service oracle sees the hedge as the redundancy it is, and the
// verification client assembles whichever copies arrive.
func (c *Cub) hedgeEntry(e *entry) {
	if e.hedged || e.vs.Mirror || e.vs.Due <= int64(c.clk.Now()) {
		return
	}
	e.hedged = true
	c.stats.HedgesIssued++
	if o := c.obs; o != nil {
		o.hedgesIssued.Inc()
	}
	c.traceHop(&e.vs, trace.HopHedge, int32(e.disk))
	if c.hooks.OnHedge != nil {
		c.hooks.OnHedge(c.id, e.vs)
	}
	// The mirror route resolves under the entry's generation, which
	// numbers the drive differently from the native key e.disk carries.
	if cfg := c.cfgOf(e.vs.Slot); cfg != nil {
		c.createMirrors(e.vs, c.genLocalDisk(cfg.Layout, e.disk))
	}
}

// quarantineDisk retires a drive through the same conversion the
// fail-stop path uses, and starts the un-quarantine probe loop.
func (c *Cub) quarantineDisk(d int, h *diskHealth) {
	h.state = DiskQuarantined
	h.badStreak = 0
	h.probeGood = 0
	h.seeded = false
	c.stats.DiskQuarantines++
	if o := c.obs; o != nil {
		o.diskQuarantines.Inc()
	}
	if c.hooks.OnQuarantine != nil {
		c.hooks.OnQuarantine(c.id, int32(d))
	}
	c.setHealthGauge(d, h)
	c.quarantined[d] = true
	c.retireDisk(d)
	c.armProbe(d)
}

func (c *Cub) armProbe(d int) {
	h := c.health[d]
	h.probeTimer = c.clk.After(c.cfg.Health.ProbeInterval, func() { c.probeDisk(d) })
}

// probeBudget is the pass/fail bound for one probe read: 1.5× the
// worst-case service time of a full primary block. Generous enough that
// queueing the probe behind a residual read cannot fail a recovered
// drive, tight enough that a still-degraded one cannot pass.
func probeBudget(p disk.Params, blockSize int64) time.Duration {
	return time.Duration(1.5 * float64(p.WorstServiceTime(blockSize, disk.Outer)))
}

// probeDisk issues one block-sized read against a quarantined drive and
// re-arms the next probe. The probe bypasses the block buffer pool — it
// carries no payload anywhere — and a wedged drive simply never answers,
// which resets nothing: the quarantine holds until real completions
// return.
func (c *Cub) probeDisk(d int) {
	if !c.quarantined[d] {
		return
	}
	h := c.health[d]
	start := c.clk.Now()
	budget := probeBudget(c.cfg.DiskParams, c.cfg.BlockSize)
	c.cpu.ChargeDiskOp()
	if o := c.obs; o != nil {
		o.diskProbes.Inc()
	}
	c.disks[d].Read(c.cfg.BlockSize, disk.Outer, start.Add(budget), func(done sim.Time, ok bool) {
		if !c.quarantined[d] {
			return
		}
		if ok && done.Sub(start) <= budget {
			h.probeGood++
			if h.probeGood >= c.cfg.Health.ProbeGood {
				c.unquarantineDisk(d, h)
			}
		} else {
			h.probeGood = 0
		}
	})
	c.armProbe(d)
}

// unquarantineDisk returns a probed-healthy drive to service at an
// unchanged epoch: the cub never died, so there is nothing to fence —
// new viewer states simply start landing on the drive again, and the
// residual mirror load drains as its entries fall due.
func (c *Cub) unquarantineDisk(d int, h *diskHealth) {
	delete(c.quarantined, d)
	delete(c.failedDisks, d)
	if h.probeTimer != nil {
		h.probeTimer.Stop()
		h.probeTimer = nil
	}
	h.state = DiskHealthy
	h.badStreak = 0
	h.probeGood = 0
	h.seeded = false
	c.stats.DiskUnquarantines++
	if o := c.obs; o != nil {
		o.diskUnquarantines.Inc()
	}
	c.setHealthGauge(d, h)
}

// resetHealthOnRestart wipes the monitor across a cub restart. Health
// verdicts are volatile state of the dead incarnation: during a machine
// crash every in-flight read dies, so the monitor of the (still
// simulated) old incarnation quarantines all local drives — and if that
// survived Restart(), the new incarnation would route even its own
// accepted primaries to mirror chains until the probe loop cleared the
// quarantine many seconds later. That window is worse than harmless
// mirror load: the cub's view stays empty, so its slot-occupancy check
// cannot veto re-admission inserts into slots whose states are flowing
// around it (double service), and re-admissions started on it come up
// as mirror chains missing the neighbouring restarted cub's piece. A
// reboot clears soft state; a genuinely sick drive will be re-detected
// by the same monitor within a few reads. Permanent FailDisk retirements
// are not quarantines and survive.
func (c *Cub) resetHealthOnRestart() {
	for d := range c.quarantined {
		delete(c.failedDisks, d)
	}
	c.quarantined = make(map[int]bool)
	for d, h := range c.health {
		if h.probeTimer != nil {
			h.probeTimer.Stop()
			h.probeTimer = nil
		}
		if c.failedDisks[d] {
			continue // permanently retired: gauge stays pinned
		}
		h.state = DiskHealthy
		h.badStreak = 0
		h.probeGood = 0
		h.seeded = false
		c.setHealthGauge(d, h)
	}
}

func (c *Cub) setHealthGauge(d int, h *diskHealth) {
	if o := c.obs; o != nil {
		if g := o.diskHealth[d]; g != nil {
			g.Set(float64(h.state))
		}
	}
}
