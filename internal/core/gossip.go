package core

import (
	"fmt"
	"sort"

	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/obs"
	"tiger/internal/sim"
	"tiger/internal/trace"
)

// This file implements the viewer-state gossip of §4.1.1: accepting and
// deduplicating states, serving their blocks, forwarding next-hop states
// to the successor and second successor, and the mirror viewer-state
// chains that cover failed components.

// --- viewer state handling (§4.1.1) ---

func (c *Cub) onViewerState(vs msg.ViewerState) {
	c.stats.StatesRecv++
	if o := c.obs; o != nil {
		o.statesRecv.Inc()
	}
	now := c.clk.Now()

	// Too late to matter: any deschedule for it would already have been
	// discarded, so accepting it could resurrect a stopped viewer.
	if vs.Due < int64(now)-int64(c.cfg.DescheduleHold) {
		c.stats.StatesLate++
		if o := c.obs; o != nil {
			o.statesLate.Inc()
		}
		return
	}
	if _, killed := c.desch[descKey{vs.Slot, vs.Instance}]; killed {
		return
	}
	if _, parked := c.parkedInst[vs.Instance]; parked {
		// The governor parked this stream; states still gossiping around
		// the ring die here instead of resurrecting it (park.go).
		return
	}

	// Resolve the striping generation the slot belongs to. A state for an
	// uninstalled generation — dropped after its drain, or never seen —
	// is fenced out exactly like a late state: it must not touch the view.
	cfg := c.cfgOf(vs.Slot)
	if cfg == nil {
		c.stats.StatesLate++
		if o := c.obs; o != nil {
			o.statesLate.Inc()
		}
		return
	}

	if vs.Mirror {
		c.acceptMirror(vs)
		c.flushForwards()
		return
	}

	target := int(vs.OrigDisk) // primary states carry their target disk
	hops := ringDist(cfg, cfg.Layout.CubOfDisk(target), c.id)

	// Create mirror states for any services on the way to us whose cub
	// we believe dead and whose first living successor we are; this is
	// both the adjacent-failure case and the bridged-gap case (§2.3).
	bp := int64(cfg.Sched.BlockPlay)
	for j := 0; j < hops; j++ {
		d := (target + j) % cfg.Sched.NumDisks
		cd := cfg.Layout.CubOfDisk(d)
		if c.believedDead[cd] && c.firstLivingSuccessorOfIn(cfg.Layout, cd) {
			mvs := vs
			mvs.Block += int32(j)
			mvs.PlaySeq += int32(j)
			mvs.Due += int64(j) * bp
			if c.fileHasBlock(mvs.File, mvs.Block) && mvs.Due > int64(now) {
				c.createMirrors(mvs, d)
			}
		}
	}

	// Advance the state to our own disk's service of this stream.
	mine := vs
	mine.Block += int32(hops)
	mine.PlaySeq += int32(hops)
	mine.Due += int64(hops) * bp
	myDisk := (target + hops) % cfg.Sched.NumDisks
	if cfg.Layout.CubOfDisk(myDisk) != c.id {
		panic(fmt.Sprintf("cub %v: disk arithmetic broken for target %d hops %d", c.id, target, hops))
	}
	mine.OrigDisk = int32(myDisk)
	if !c.fileHasBlock(mine.File, mine.Block) {
		return // the stream ends before it reaches us
	}
	c.acceptPrimary(mine, myDisk)
	c.flushForwards()
}

func (c *Cub) fileHasBlock(f msg.FileID, b int32) bool {
	file, ok := c.cfg.Files[f]
	return ok && b >= 0 && int(b) < file.Blocks
}

// acceptPrimary installs a viewer state for one of this cub's own
// disks. d is numbered in the slot's generation; the entry records the
// native drive so reads and health tracking stay generation-blind.
func (c *Cub) acceptPrimary(vs msg.ViewerState, d int) {
	cfg := c.cfgOf(vs.Slot)
	if cfg == nil {
		c.stats.StatesLate++
		if o := c.obs; o != nil {
			o.statesLate.Inc()
		}
		return
	}
	nd := c.nativeDisk(cfg.Layout, d)
	key := entryKey{vs.Slot, -1, vs.Due}
	if old, ok := c.entries[key]; ok {
		if old.vs.Instance == vs.Instance {
			c.stats.StatesDup++
			if o := c.obs; o != nil {
				o.statesDup.Inc()
			}
		} else {
			// §4.1.3's ordering argument makes this unreachable in a
			// correctly functioning system; count it rather than guess.
			c.stats.Conflicts++
			if o := c.obs; o != nil {
				o.conflicts.Inc()
			}
		}
		return
	}
	now := c.clk.Now()
	if vs.Due <= int64(now) {
		// Within the deschedule hold but already overdue: the send is
		// missed, but the stream must continue downstream (§4.1.2).
		c.recordMiss(vs)
		c.forwardEntryNow(vs)
		return
	}
	if c.failedDisks[nd] {
		// Our own drive is dead: we are the deciding component; serve
		// the block from its declustered mirrors instead.
		c.createMirrors(vs, d)
		c.forwardEntryNow(vs)
		return
	}
	e := &entry{vs: vs, disk: nd}
	c.entries[key] = e
	c.slotOcc[vs.Slot]++
	c.fwdPush(key)
	if o := c.obs; o != nil {
		o.spans.Observe(obs.StageState, sim.Time(vs.Due), now)
		o.viewSize.Set(float64(len(c.entries)))
	}
	c.traceHop(&vs, trace.HopState, int32(nd))
	c.scheduleEntry(e, key)
}

// scheduleEntry arms the disk read and network send for an entry.
func (c *Cub) scheduleEntry(e *entry, key entryKey) {
	now := c.clk.Now()
	readAt := sim.Time(e.vs.Due) - sim.Time(c.cfg.ReadAhead)
	if readAt < now {
		readAt = now
	}
	e.readTimer = c.clk.At(readAt, func() { c.issueRead(key) })
	e.sendTimer = c.clk.At(sim.Time(e.vs.Due), func() { c.service(key) })
}

func (c *Cub) issueRead(key entryKey) {
	e, ok := c.entries[key]
	if !ok {
		return // descheduled meanwhile
	}
	c.cpu.ChargeDiskOp()
	p := c.planeOf(key.slot)
	if p == nil || p.index == nil || p.index[e.disk] == nil {
		c.stats.IndexMisses++
		return
	}
	part := key.part
	ie, err := p.index[e.disk].lookup(e.vs.File, e.vs.Block, part)
	if err != nil {
		c.stats.IndexMisses++
		return
	}
	inst := e.vs.Instance
	// The block DMAs into a pre-allocated buffer held until the network
	// send completes (§2.2's zero-copy disk-to-network path); account
	// for the pool so tests can check it against the cubs' real memory.
	e.buffered = ie.bytes
	c.bufAdjust(ie.bytes)
	d := e.disk
	due := sim.Time(e.vs.Due)
	// Gray-failure hedge (health.go): on a suspected drive, a read whose
	// predicted completion would miss the deadline gets its mirror chain
	// launched in parallel; service() sends whichever copy is ready.
	if key.part == -1 && c.shouldHedge(d, ie.bytes, ie.zone, due) {
		c.hedgeEntry(e)
		c.flushForwards()
	}
	c.traceHop(&e.vs, trace.HopDiskQueue, int32(d))
	issued := c.clk.Now()
	e.readID = c.disks[d].Read(ie.bytes, ie.zone, due, func(done sim.Time, ok bool) {
		c.noteRead(d, issued, due, done, ie.bytes, ie.zone, ok)
		cur, still := c.entries[key]
		if !still || cur.vs.Instance != inst {
			// The entry was served-as-missed or descheduled while the
			// read was in flight; discard the buffer.
			c.bufAdjust(-ie.bytes)
			return
		}
		cur.readID = 0
		if !ok {
			// Transient read failure: release the buffer and retry while
			// the deadline allows. Repeated failures feed the health
			// monitor, whose suspicion makes the retry hedge to the
			// mirrors (shouldHedge returns true mid-streak).
			c.bufAdjust(-ie.bytes)
			cur.buffered = 0
			c.stats.DiskReadErrors++
			if o := c.obs; o != nil {
				o.diskReadErrors.Inc()
			}
			if due > c.clk.Now() {
				c.issueRead(key)
			}
			return
		}
		cur.ready = true
		if o := c.obs; o != nil {
			o.spans.Observe(obs.StageRead, sim.Time(cur.vs.Due), done)
		}
		c.traceHop(&cur.vs, trace.HopDiskRead, int32(d))
	})
}

// service fires at an entry's due time: send the block if its read
// completed, otherwise report a missed block (§5's server-side loss
// path).
func (c *Cub) service(key entryKey) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	c.dropEntry(key)
	if !e.ready {
		// The read did not complete in time. Feed the health monitor
		// first — for a stuck drive, these misses are its only signal —
		// then withdraw the read: if it is still queued it never starts
		// (and is never charged), and either way its callback will not
		// fire, so the buffer is released here.
		c.noteDeadlineMiss(e.disk)
		if e.readID != 0 && c.disks[e.disk].Cancel(e.readID) {
			c.bufAdjust(-e.buffered)
			e.buffered = 0
		}
		if e.hedged {
			// The hedge's mirror chain covers this send: the viewer
			// assembles the block from the declustered pieces, so the
			// block is not lost and the miss is not recorded as one.
			c.stats.HedgeMirrorWins++
			if o := c.obs; o != nil {
				o.hedgeMirrorWins.Inc()
			}
			return
		}
		c.recordMiss(e.vs)
		return
	}
	if e.hedged {
		// Local read beat the fault after all; the mirror pieces arrive
		// as duplicates the verification client tolerates.
		c.stats.HedgeLocalWins++
		if o := c.obs; o != nil {
			o.hedgeLocalWins.Inc()
		}
	}
	pace := c.cfg.Sched.BlockPlay
	bytes := c.cfg.BlockSize
	parts := int8(1)
	if e.vs.Mirror {
		pace = c.cfg.MirrorPace()
		bytes = c.cfg.MirrorPartSize()
		parts = int8(c.cfg.Layout.Decluster)
	}
	c.cpu.ChargeData(bytes)
	c.data.SendBlock(c.id, netsim.BlockDelivery{
		Viewer:   e.vs.Viewer,
		Instance: e.vs.Instance,
		Addr:     e.vs.Addr,
		File:     e.vs.File,
		Block:    e.vs.Block,
		PlaySeq:  e.vs.PlaySeq,
		Bytes:    bytes,
		Mirror:   e.vs.Mirror,
		Part:     maxI8(e.vs.Part, 0),
		Parts:    parts,
	}, pace)
	if e.vs.Mirror {
		c.stats.PiecesSent++
	} else {
		c.stats.BlocksSent++
	}
	if o := c.obs; o != nil {
		if e.vs.Mirror {
			o.piecesSent.Inc()
		} else {
			o.blocksSent.Inc()
		}
		o.spans.Observe(obs.StageSend, sim.Time(e.vs.Due), c.clk.Now())
	}
	// The buffer frees once the paced send finishes.
	held := e.buffered
	c.clk.After(pace, func() { c.bufAdjust(-held) })
	c.traceHop(&e.vs, trace.HopSend, int32(e.disk))
	if c.hooks.OnServe != nil {
		c.hooks.OnServe(c.id, e.vs)
	}
}

func maxI8(a, b int8) int8 {
	if a > b {
		return a
	}
	return b
}

func (c *Cub) bufAdjust(delta int64) {
	c.bufBytes += delta
	if c.bufBytes > c.stats.PeakBuffered {
		c.stats.PeakBuffered = c.bufBytes
	}
	if o := c.obs; o != nil {
		o.bufBytes.Set(float64(c.bufBytes))
	}
}

// BufferedBytes returns the block buffers currently held.
func (c *Cub) BufferedBytes() int64 { return c.bufBytes }

func (c *Cub) recordMiss(vs msg.ViewerState) {
	c.stats.ServerMisses++
	if o := c.obs; o != nil {
		o.misses.Inc()
		// Record the missed send against the same deadline-slack series
		// as successful ones, so the distribution shows the whole story:
		// a late viewer state lands here with negative slack.
		o.spans.Observe(obs.StageSend, sim.Time(vs.Due), c.clk.Now())
	}
	if c.loss != nil {
		c.loss.RecordServerMiss(c.clk.Now())
	}
	c.traceHop(&vs, trace.HopMiss, -1)
	if c.hooks.OnMiss != nil {
		c.hooks.OnMiss(c.id, vs)
	}
}

// dropEntryRelease removes an entry and releases any completed read's
// buffer. Deschedule and disk-failure paths use it; the service path
// uses dropEntry directly because it frees the buffer after the send.
// An entry whose read is still outstanding has the read withdrawn — a
// descheduled viewer's prefetch should not occupy a drive — and since a
// cancelled read's callback never fires, the buffer is released here.
func (c *Cub) dropEntryRelease(key entryKey) {
	if e, ok := c.entries[key]; ok && e.buffered > 0 {
		if e.ready {
			c.bufAdjust(-e.buffered)
			e.buffered = 0
		} else if e.readID != 0 && c.disks[e.disk].Cancel(e.readID) {
			c.bufAdjust(-e.buffered)
			e.buffered = 0
		}
	}
	c.dropEntry(key)
}

func (c *Cub) dropEntry(key entryKey) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	if e.readTimer != nil {
		e.readTimer.Stop()
	}
	if e.sendTimer != nil {
		e.sendTimer.Stop()
	}
	delete(c.entries, key)
	if n := c.slotOcc[key.slot] - 1; n > 0 {
		c.slotOcc[key.slot] = n
	} else {
		delete(c.slotOcc, key.slot)
	}
	if o := c.obs; o != nil {
		o.viewSize.Set(float64(len(c.entries)))
	}
}

// --- mirror viewer states (§4.1.1) ---

// createMirrors starts the mirror viewer-state chain for the service of
// block vs.Block on dead (or failed) disk d. The paper forwards ONE
// mirror viewer state from covering cub to covering cub — "for each
// primary viewer state forwarded, the mirroring cub must also forward a
// mirror viewer state" — with each piece's send paced blockPlay/decluster
// after the previous (§4.1.1). That hop-forwarding is what keeps
// failed-mode control traffic at roughly double the unfailed rate.
func (c *Cub) createMirrors(vs msg.ViewerState, d int) {
	mvs := vs
	mvs.Mirror = true
	mvs.Part = 0
	mvs.OrigDisk = int32(d)
	c.stats.MirrorsMade++
	if o := c.obs; o != nil {
		o.mirrorsMade.Inc()
	}
	c.routeMirror(mvs)
}

// routeMirror delivers a mirror viewer state to the cub holding its
// piece's disk, skipping (and counting) pieces whose holders are dead.
// Like primary states, mirror states are sent redundantly — a second,
// pre-derived copy goes to the following piece's cub — so the loss of a
// single covering cub does not sever the piece chain.
func (c *Cub) routeMirror(mvs msg.ViewerState) {
	cfg := c.cfgOf(mvs.Slot)
	if cfg == nil {
		return // generation gone; nothing left to cover
	}
	pace := int64(cfg.MirrorPace())
	for int(mvs.Part) < cfg.Layout.Decluster {
		pd := cfg.Layout.SecondaryDiskFor(int(mvs.OrigDisk), int(mvs.Part))
		pc := cfg.Layout.CubOfDisk(pd)
		if c.believedDead[pc] {
			c.stats.PiecesLost++
			if o := c.obs; o != nil {
				o.piecesLost.Inc()
			}
			mvs.Part++
			mvs.Due += pace
			continue
		}
		if pc == c.id {
			// Local accept re-enters routeMirror for the next piece,
			// which provides the redundant send itself.
			c.acceptMirror(mvs)
			return
		}
		cp := mvs
		c.enqueueForward(pc, &cp)
		// Redundant copy of the next piece's state to its holder, so a
		// single covering-cub failure cannot sever the chain (the mirror
		// analogue of primary double forwarding).
		next := mvs
		next.Part++
		next.Due += pace
		if int(next.Part) < cfg.Layout.Decluster {
			nd := cfg.Layout.SecondaryDiskFor(int(next.OrigDisk), int(next.Part))
			nc := cfg.Layout.CubOfDisk(nd)
			if nc != pc && nc != c.id && !c.believedDead[nc] {
				c.enqueueForward(nc, &next)
			}
		}
		return
	}
}

// acceptMirror installs a mirror viewer state on the cub holding that
// piece's disk and forwards the next piece's state onward.
func (c *Cub) acceptMirror(vs msg.ViewerState) {
	cfg := c.cfgOf(vs.Slot)
	if cfg == nil {
		c.stats.StatesLate++
		if o := c.obs; o != nil {
			o.statesLate.Inc()
		}
		return
	}
	pd := cfg.Layout.SecondaryDiskFor(int(vs.OrigDisk), int(vs.Part))
	if cfg.Layout.CubOfDisk(pd) != c.id {
		return // mis-routed; the piece will be reported lost client-side
	}
	npd := c.nativeDisk(cfg.Layout, pd)
	key := entryKey{vs.Slot, vs.Part, vs.Due}
	if old, ok := c.entries[key]; ok {
		if old.vs.Instance == vs.Instance {
			c.stats.StatesDup++
			if o := c.obs; o != nil {
				o.statesDup.Inc()
			}
		} else {
			c.stats.Conflicts++
			if o := c.obs; o != nil {
				o.conflicts.Inc()
			}
		}
		return // the original acceptance already forwarded the chain
	}
	switch {
	case c.failedDisks[npd]:
		c.stats.PiecesLost++
		if o := c.obs; o != nil {
			o.piecesLost.Inc()
		}
	case vs.Due <= int64(c.clk.Now()):
		c.recordMiss(vs)
	default:
		e := &entry{vs: vs, disk: npd}
		c.entries[key] = e
		c.slotOcc[vs.Slot]++
		if o := c.obs; o != nil {
			o.spans.Observe(obs.StageState, sim.Time(vs.Due), c.clk.Now())
			o.viewSize.Set(float64(len(c.entries)))
		}
		c.traceHop(&vs, trace.HopState, int32(npd))
		c.scheduleEntry(e, key)
	}
	// Pass the mirror state to the next piece's cub, due one mirror pace
	// later, whether or not our own piece could be served: the stream
	// should miss as little as possible.
	next := vs
	next.Part++
	next.Due += int64(cfg.MirrorPace())
	if int(next.Part) < cfg.Layout.Decluster {
		c.routeMirror(next)
	}
}

// --- forwarding (§4.1.1) ---

// forwardTick is the periodic batcher: it forwards, to the successor and
// second successor, the next-hop viewer state of every entry whose
// successor service has come within MaxVStateLead.
//
// The candidates come off fwdHeap, which pops in exactly the (due, slot,
// part) order the old sort-the-whole-view scan produced, so batch
// composition is unchanged — but the tick now costs O(popped), the
// number of entries crossing the forward horizon, instead of O(view).
// Eligible keys are drained to a scratch slice before any forwarding so
// next-hop entries a forward installs on this same cub (proxy insertion,
// single-cub rings) wait for the next tick, as they always have.
func (c *Cub) forwardTick() {
	now := c.clk.Now()
	horizon := int64(now) + int64(c.cfg.MaxVStateLead)
	bp := int64(c.cfg.Sched.BlockPlay)
	due := c.fwdDueScratch[:0]
	for len(c.fwdHeap) > 0 && c.fwdHeap[0].due+bp <= horizon {
		due = append(due, c.fwdPop())
	}
	for _, k := range due {
		e, ok := c.entries[k]
		if !ok || e.forwarded || e.vs.Mirror {
			continue // lazily deleted: dropped or forwarded out of band
		}
		e.forwarded = true
		c.forwardEntryNow(e.vs)
	}
	c.fwdDueScratch = due // keep the grown backing array for the next tick
	c.flushForwards()
	c.clk.After(c.cfg.ForwardInterval, c.forwardTick)
}

// fwdKeyLess orders forward-heap keys (due, slot, part), matching
// sortEntryKeys.
func fwdKeyLess(a, b entryKey) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.part < b.part
}

// fwdPush adds a not-yet-forwarded primary entry key to the forward
// heap.
func (c *Cub) fwdPush(k entryKey) {
	h := append(c.fwdHeap, k)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !fwdKeyLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	c.fwdHeap = h
}

// fwdPop removes and returns the least key on the forward heap.
func (c *Cub) fwdPop() entryKey {
	h := c.fwdHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && fwdKeyLess(h[l], h[s]) {
			s = l
		}
		if r < n && fwdKeyLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	c.fwdHeap = h
	return top
}

// sortEntryKeys orders keys by (due, slot, part) for deterministic
// iteration.
func sortEntryKeys(ks []entryKey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].due != ks[j].due {
			return ks[i].due < ks[j].due
		}
		if ks[i].slot != ks[j].slot {
			return ks[i].slot < ks[j].slot
		}
		return ks[i].part < ks[j].part
	})
}

// forwardEntryNow queues the next-hop state derived from vs for delivery
// to the first and second living successors.
func (c *Cub) forwardEntryNow(vs msg.ViewerState) {
	cfg := c.cfgOf(vs.Slot)
	if cfg == nil {
		return // generation dropped; its streams are all gone
	}
	next := vs
	next.Block++
	next.PlaySeq++
	next.Due += int64(cfg.Sched.BlockPlay)
	nextDisk := (int(vs.OrigDisk) + 1) % cfg.Sched.NumDisks
	next.OrigDisk = int32(nextDisk)
	if !c.fileHasBlock(next.File, next.Block) {
		return // end of file: the viewer leaves the schedule (§4.1.2)
	}
	if cfg.Layout.CubOfDisk(nextDisk) == c.id {
		// The next service is on one of our own disks. This happens when
		// we proxy-inserted for a dead predecessor's disk (the stream's
		// next block is ours to send) and in single-cub systems.
		if c.failedDisks[c.nativeDisk(cfg.Layout, nextDisk)] {
			c.createMirrors(next, nextDisk)
			c.forwardEntryNow(next)
		} else {
			c.acceptPrimary(next, nextDisk)
		}
	}
	s1, ok1 := c.nthLivingSuccessorIn(cfg.Layout, 1)
	if ok1 {
		c.enqueueForward(s1, &next)
	}
	if c.cfg.SingleForward {
		return
	}
	s2, ok2 := c.nthLivingSuccessorIn(cfg.Layout, 2)
	if ok2 && s2 != s1 {
		cp := next
		c.enqueueForward(s2, &cp)
	}
}

func (c *Cub) enqueueForward(to msg.NodeID, m msg.Message) {
	// Every outgoing viewer state is stamped with the sender's current
	// liveness epoch here, the single choke point all gossip flows
	// through; receivers fence on it (staleEpoch) so a restarted cub's
	// pre-crash gossip cannot be mistaken for fresh state.
	if vs, ok := m.(*msg.ViewerState); ok {
		vs.Epoch = c.epoch
	}
	c.fwdPending[to] = append(c.fwdPending[to], m)
}

// flushForwards sends all queued per-target batches, in target order
// for run-to-run determinism.
func (c *Cub) flushForwards() {
	if len(c.fwdPending) == 0 {
		return
	}
	targets := c.fwdTargetScratch[:0]
	for to := range c.fwdPending {
		targets = append(targets, to)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	c.fwdTargetScratch = targets
	for _, to := range targets {
		msgs := c.fwdPending[to]
		if len(msgs) == 0 {
			continue
		}
		delete(c.fwdPending, to)
		if len(msgs) == 1 {
			c.net.Send(c.id, to, msgs[0])
		} else {
			c.net.Send(c.id, to, &msg.Batch{Msgs: msgs})
		}
		if o := c.obs; o != nil {
			o.fwdBatches.Inc()
			o.fwdMsgs.Add(float64(len(msgs)))
		}
		c.cpu.ChargeCtlMsg()
	}
}
