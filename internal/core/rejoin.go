package core

import (
	"time"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// This file implements the crash–restart–reintegration protocol. The
// paper's deadman machinery (§2.3) covers the outbound half of a failure
// — detecting the death and shifting the dead cub's schedule load onto
// its mirrors — but is silent on the return path. A restarted cub comes
// back with an empty view; until it relearns the viewer states landing in
// its window, its disks sit idle while the covering cubs keep paying the
// mirror-service overhead, and any of its pre-crash messages still in
// flight could corrupt the ring's "coherent hallucination".
//
// Reintegration therefore has three parts:
//
//  1. Epoch fencing. Every cub carries a liveness epoch, bumped on each
//     cold restart and stamped into its heartbeats and forwarded viewer
//     states. Receivers keep a per-peer high-water mark and discard
//     anything older (Cub.staleEpoch), so pre-crash traffic replayed by
//     transport reconnects is inert.
//
//  2. View transfer. The restarted cub sends RejoinRequest to every
//     monitored ring neighbour. Each neighbour answers with the primary
//     viewer states it can reconstruct for the requester's disks: the
//     re-derived next hops of entries it had already forwarded into the
//     dead window, and primaries rebuilt from the mirror pieces it has
//     been covering.
//
//  3. Mirror handback. For each transferred state the restarted cub
//     actually installs (or already has), it returns a RejoinConfirm;
//     the covering cub retires the matching mirror-piece entries so the
//     system returns to normal-mode service cost.

// RecoveryBounds are the histogram buckets for restart-to-reintegration
// times. Real recoveries complete within a couple of round trips; the
// tail buckets exist to make pathological cases visible.
var RecoveryBounds = []time.Duration{
	10 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	5 * time.Second,
	30 * time.Second,
}

// Restart performs a cold restart in place: it wipes all volatile state
// (the view, queues, liveness beliefs), bumps the liveness epoch, and
// starts the rejoin handshake with the ring neighbours. The periodic
// heartbeat and forwarding loops keep running — on a real machine they
// belong to the freshly booted process; in the simulator and the rt
// runtime the cub object is reused, so Restart must leave them armed.
func (c *Cub) Restart() {
	// Drop every schedule entry, stopping its timers and releasing any
	// read buffers a dead incarnation would not have kept.
	keys := make([]entryKey, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		c.dropEntryRelease(k)
	}
	c.desch = make(map[descKey]*msg.Deschedule)
	c.queue = make(map[int32][]*startReq)
	c.queueLen = 0
	c.fwdHeap = c.fwdHeap[:0]
	c.redundantStart = make(map[msg.InstanceID]*startReq)
	c.cancelledStart = make(map[msg.InstanceID]sim.Time)
	c.enqueuedStart = make(map[msg.InstanceID]sim.Time)
	c.believedDead = make(map[msg.NodeID]bool)
	c.peerEpoch = make(map[msg.NodeID]int32)
	c.fwdPending = make(map[msg.NodeID][]msg.Message)
	// The mover's copy queues are volatile too: in-flight restripe copies
	// die with the incarnation, and the coordinator's resend timer
	// re-orders them. Installed generations survive — they are
	// configuration, not view.
	c.resetMover()
	// Health verdicts died with the incarnation (see resetHealthOnRestart
	// for why letting them linger corrupts the rejoin).
	c.resetHealthOnRestart()
	now := c.clk.Now()
	for _, n := range c.monitored {
		c.lastSeen[n] = now
	}

	// New incarnation: everything stamped with the old epoch is now
	// provably stale.
	c.epoch++
	c.stats.Rejoins++
	if o := c.obs; o != nil {
		o.rejoins.Inc()
		o.epoch.Set(float64(c.epoch))
		o.queueLen.Set(0)
	}

	// Announce the new incarnation immediately — neighbours clear their
	// believedDead entry and stop generating new mirror load for us —
	// and ask each of them for the states landing in our window.
	hb := &msg.Heartbeat{From: c.id, Epoch: c.epoch, Now: int64(now)}
	c.rejoinActive = true
	c.rejoinStart = now
	c.rejoinPending = make(map[msg.NodeID]bool, len(c.monitored))
	for _, n := range c.monitored {
		c.net.Send(c.id, n, hb)
		c.rejoinPending[n] = true
		c.net.Send(c.id, n, &msg.RejoinRequest{From: c.id, Epoch: c.epoch})
	}
	// A neighbour that is itself dead never answers; close the handshake
	// after a deadman timeout so the recovery clock still stops.
	ep := c.epoch
	c.clk.After(c.cfg.DeadmanTimeout, func() {
		if c.rejoinActive && c.epoch == ep {
			c.finishRejoin()
		}
	})
}

func (c *Cub) finishRejoin() {
	c.rejoinActive = false
	c.rejoinPending = nil
	d := c.clk.Now().Sub(c.rejoinStart)
	c.recovery.Observe(d)
	if o := c.obs; o != nil {
		o.recovery.Observe(d.Seconds())
	}
}

// onRejoinRequest answers a restarted neighbour with every primary
// viewer state we can reconstruct for its disks.
func (c *Cub) onRejoinRequest(req msg.RejoinRequest) {
	if req.From == c.id {
		return
	}
	// The request is the first proof of life of the new incarnation.
	c.noteEpoch(req.From, req.Epoch)
	c.lastSeen[req.From] = c.clk.Now()
	if c.believedDead[req.From] {
		c.markAlive(req.From)
	}
	c.stats.RejoinsServed++
	if o := c.obs; o != nil {
		o.rejoinsServed.Inc()
	}

	now := int64(c.clk.Now())
	bp := int64(c.cfg.Sched.BlockPlay)
	pace := int64(c.cfg.MirrorPace())
	horizon := now + int64(c.cfg.MaxVStateLead) + bp
	reply := &msg.RejoinReply{From: c.id, ForEpoch: req.Epoch}
	sent := make(map[entryKey]bool)

	keys := make([]entryKey, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		e := c.entries[k]
		cfg := c.cfgOf(k.slot)
		if cfg == nil {
			continue
		}
		if k.part >= 0 {
			// A mirror piece covering one of the requester's disks:
			// rebuild the primary state it derives from. Piece p is due
			// p mirror paces after the primary service it replaces.
			if cfg.Layout.CubOfDisk(int(e.vs.OrigDisk)) != req.From {
				continue
			}
			pvs := e.vs
			pvs.Mirror = false
			pvs.Part = 0
			pvs.Due -= int64(e.vs.Part) * pace
			pvs.Epoch = c.epoch
			pk := entryKey{pvs.Slot, -1, pvs.Due}
			if pvs.Due > now && !sent[pk] {
				sent[pk] = true
				reply.States = append(reply.States, pvs)
			}
			continue
		}
		// A primary entry we already forwarded: while the requester was
		// down its next hops landing on the requester's disks went
		// nowhere. Re-derive them, exactly as forwardEntryNow would.
		if !e.forwarded {
			continue // the forward loop will reach the requester normally
		}
		for j := 1; ; j++ {
			due := e.vs.Due + int64(j)*bp
			if due > horizon {
				break
			}
			d := (int(e.vs.OrigDisk) + j) % cfg.Sched.NumDisks
			if cfg.Layout.CubOfDisk(d) != req.From {
				continue
			}
			nvs := e.vs
			nvs.Block += int32(j)
			nvs.PlaySeq += int32(j)
			nvs.Due = due
			nvs.OrigDisk = int32(d)
			nvs.Epoch = c.epoch
			nk := entryKey{nvs.Slot, -1, nvs.Due}
			if due > now && c.fileHasBlock(nvs.File, nvs.Block) && !sent[nk] {
				sent[nk] = true
				reply.States = append(reply.States, nvs)
			}
		}
	}
	// Always reply, even with nothing to transfer: the requester's
	// handshake completes when every neighbour has been heard from.
	c.net.Send(c.id, req.From, reply)
}

// onRejoinReply installs the transferred states that belong to us and
// confirms ownership back to the sender so it can retire its mirrors.
func (c *Cub) onRejoinReply(rep *msg.RejoinReply) {
	if rep.ForEpoch != c.epoch {
		// Answer to a previous incarnation's request.
		c.stats.StaleEpochDrops++
		if o := c.obs; o != nil {
			o.staleDrops.Inc()
		}
		return
	}
	c.lastSeen[rep.From] = c.clk.Now()
	now := int64(c.clk.Now())
	var owned []msg.ViewerState
	for _, vs := range rep.States {
		cfg := c.cfgOf(vs.Slot)
		if cfg == nil {
			continue
		}
		d := int(vs.OrigDisk)
		if cfg.Layout.CubOfDisk(d) != c.id || !c.fileHasBlock(vs.File, vs.Block) {
			continue
		}
		if _, killed := c.desch[descKey{vs.Slot, vs.Instance}]; killed {
			continue
		}
		key := entryKey{vs.Slot, -1, vs.Due}
		if old, ok := c.entries[key]; ok {
			// Another neighbour transferred it first (or gossip beat the
			// reply here). Confirm anyway so every covering cub retires.
			if old.vs.Instance == vs.Instance {
				owned = append(owned, vs)
			}
			continue
		}
		if vs.Due <= now || c.failedDisks[c.nativeDisk(cfg.Layout, d)] {
			// Too late to serve, or on one of our dead drives: leave the
			// mirrors covering it.
			continue
		}
		c.acceptPrimary(vs, d)
		if e, ok := c.entries[key]; ok && e.vs.Instance == vs.Instance {
			c.stats.ViewTransferred++
			if o := c.obs; o != nil {
				o.viewXfer.Inc()
			}
			owned = append(owned, vs)
		}
	}
	// Transferred entries re-enter the normal gossip flow: forwardTick
	// will forward their next hops downstream, and flushForwards covers
	// any mirror chains acceptPrimary started.
	c.flushForwards()
	if len(owned) > 0 {
		c.net.Send(c.id, rep.From, &msg.RejoinConfirm{From: c.id, Epoch: c.epoch, States: owned})
	}
	if c.rejoinActive {
		delete(c.rejoinPending, rep.From)
		if len(c.rejoinPending) == 0 {
			c.finishRejoin()
		}
	}
}

// onRejoinConfirm retires the mirror entries covering services the
// restarted primary has confirmed it owns again (mirror-load handback).
func (c *Cub) onRejoinConfirm(cf *msg.RejoinConfirm) {
	c.noteEpoch(cf.From, cf.Epoch)
	pace := int64(c.cfg.MirrorPace())
	for _, vs := range cf.States {
		lay := c.layoutOf(vs.Slot)
		if lay.CubOfDisk(int(vs.OrigDisk)) != cf.From {
			continue
		}
		for p := 0; p < lay.Decluster; p++ {
			key := entryKey{vs.Slot, int8(p), vs.Due + int64(p)*pace}
			e, ok := c.entries[key]
			if !ok || e.vs.Instance != vs.Instance || e.vs.OrigDisk != vs.OrigDisk {
				continue
			}
			c.dropEntryRelease(key)
			c.stats.MirrorsRetired++
			if o := c.obs; o != nil {
				o.mirrorsBack.Inc()
			}
		}
	}
}
