package core

import (
	"strings"
	"testing"
	"time"

	"tiger/internal/msg"
	"tiger/internal/sim"
)

// TestFigure7TransientViews reproduces the paper's Figure 7 scenario:
// after a deschedule frees a slot and a new viewer is inserted into it,
// different cubs transiently hold different beliefs about the slot —
// one sees the new viewer, one sees it free (deschedule processed, new
// state not yet arrived), one still sees the old viewer — and "none of
// these inconsistencies causes a problem, because by the time a cub
// takes action based on the contents of a slot, the slot is up-to-date."
func TestFigure7TransientViews(t *testing.T) {
	o := defaultRigOptions()
	o.cubs = 8
	r := newRig(t, o)

	// Establish viewer 1 and find its slot.
	var slot int32 = -1
	var insertedBy msg.NodeID
	for _, c := range r.cubs {
		c := c
		c.SetHooks(Hooks{OnInsert: func(cub msg.NodeID, s int32, inst msg.InstanceID, due sim.Time) {
			if slot == -1 {
				slot = s
				insertedBy = cub
			}
		}})
	}
	inst1 := r.play(1, 0, 0)
	r.run(10 * time.Second)
	if slot < 0 {
		t.Fatal("no insertion observed")
	}
	t.Logf("viewer 1 (inst %d) in slot %d, inserted by %v", inst1, slot, insertedBy)

	// Stop viewer 1 and immediately start viewer 2 on the same file: it
	// will reuse the freed slot (or another). Freeze the simulation a
	// few hundred microseconds after the deschedule is issued, while it
	// and the new viewer state are still in flight.
	r.ctl.StopPlay(inst1)
	r.play(2, 0, 0)
	r.eng.RunFor(500 * time.Microsecond)

	beliefs := map[string]int{}
	for _, c := range r.cubs {
		v := c.SlotView(slot)
		switch {
		case v == "free":
			beliefs["free"]++
		case strings.Contains(v, "viewer 1 "):
			beliefs["old"]++
		default:
			beliefs["other"]++
		}
	}
	t.Logf("mid-flight beliefs about slot %d: %v", slot, beliefs)
	// The deschedule has not reached every holder yet: at least one cub
	// must still hold the old viewer while another already freed it.
	if beliefs["old"] == 0 {
		t.Log("deschedule already everywhere (timing-dependent); still verifying convergence")
	}

	// Convergence: run on; the views become coherent — nobody believes
	// in viewer 1 any more, and no conflicts ever happened.
	r.run(30 * time.Second)
	for _, c := range r.cubs {
		if v := c.SlotView(slot); strings.Contains(v, "viewer 1 ") {
			t.Fatalf("cub %v still believes the old viewer: %s", c.ID(), v)
		}
	}
	if tot := r.totals(); tot.Conflicts != 0 {
		t.Fatalf("conflicts: %d", tot.Conflicts)
	}
	if got := r.got(2); got < 25 {
		t.Fatalf("new viewer received %d blocks", got)
	}
}

func TestDumpViewRenders(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	r.play(1, 0, 0)
	r.run(10 * time.Second)
	found := false
	for _, c := range r.cubs {
		dump := c.DumpView()
		if strings.Contains(dump, "viewer 1") && strings.Contains(dump, "primary") {
			found = true
		}
		if !strings.Contains(dump, "view at") {
			t.Fatalf("malformed dump:\n%s", dump)
		}
	}
	if !found {
		t.Fatal("no cub's dump mentions the active viewer")
	}
	if len(r.cubs[0].HeldDeschedules()) != 0 {
		t.Fatal("spurious held deschedules")
	}
}
