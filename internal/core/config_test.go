package core

import (
	"testing"
	"time"

	"tiger/internal/disk"
	"tiger/internal/layout"
	"tiger/internal/metrics"
	"tiger/internal/msg"
	"tiger/internal/schedule"
)

func validConfig(t *testing.T) *Config {
	t.Helper()
	lay := layout.Config{Cubs: 4, DisksPerCub: 1, Decluster: 2}
	sp, err := schedule.NewParams(time.Second, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		Layout: lay, Sched: sp, BlockSize: 262144,
		DiskParams: disk.DefaultParams(), CPUModel: metrics.DefaultCPUModel(),
		Files: map[msg.FileID]layout.File{
			1: {ID: 1, StartDisk: 0, Blocks: 100, BlockSize: 262144},
		},
	}
	cfg.DefaultTimings()
	return cfg
}

func TestConfigDefaults(t *testing.T) {
	cfg := validConfig(t)
	if cfg.MinVStateLead != 4*time.Second || cfg.MaxVStateLead != 9*time.Second {
		t.Fatalf("paper's typical leads not applied: %v/%v", cfg.MinVStateLead, cfg.MaxVStateLead)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := map[string]func(*Config){
		"disks mismatch":    func(c *Config) { c.Layout.DisksPerCub = 2 },
		"zero block":        func(c *Config) { c.BlockSize = 0 },
		"min>=max lead":     func(c *Config) { c.MinVStateLead = c.MaxVStateLead },
		"min under lead":    func(c *Config) { c.MinVStateLead = c.Sched.SchedLead },
		"fwd interval":      func(c *Config) { c.ForwardInterval = 6 * time.Second },
		"readahead":         func(c *Config) { c.ReadAhead = time.Millisecond },
		"deadman":           func(c *Config) { c.DeadmanTimeout = c.HeartbeatInterval },
		"file key mismatch": func(c *Config) { f := c.Files[1]; f.ID = 2; c.Files[1] = f },
		"file empty":        func(c *Config) { f := c.Files[1]; f.Blocks = 0; c.Files[1] = f },
		"file start oob":    func(c *Config) { f := c.Files[1]; f.StartDisk = 99; c.Files[1] = f },
		"bad layout":        func(c *Config) { c.Layout.Cubs = 0 },
		"bad sched ownership": func(c *Config) {
			c.Sched.OwnDur = 2 * c.Sched.BlockPlay
		},
	}
	for name, mutate := range mutations {
		cfg := validConfig(t)
		mutate(cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestMirrorHelpers(t *testing.T) {
	cfg := validConfig(t)
	if cfg.MirrorPace() != 500*time.Millisecond {
		t.Fatalf("mirror pace %v", cfg.MirrorPace())
	}
	if cfg.MirrorPartSize() != 131072 {
		t.Fatalf("part size %d", cfg.MirrorPartSize())
	}
	cfg.BlockSize = 7
	if cfg.MirrorPartSize() != 4 {
		t.Fatalf("ceil part size %d", cfg.MirrorPartSize())
	}
}

func TestIndexCoversExactlyLocalCopies(t *testing.T) {
	cfg := validConfig(t)
	f2 := layout.File{ID: 2, StartDisk: 3, Blocks: 37, BlockSize: 262144}
	cfg.Files[2] = f2
	for cub := msg.NodeID(0); cub < 4; cub++ {
		disks := cfg.Layout.DisksOfCub(cub)
		idx := buildIndexes(cfg, disks)
		for _, d := range disks {
			// Every primary and secondary the layout places here must be
			// present, and nothing else.
			want := 0
			for _, f := range cfg.Files {
				for b := 0; b < f.Blocks; b++ {
					if cfg.Layout.PrimaryDisk(f, b) == d {
						want++
						if _, err := idx[d].lookup(f.ID, int32(b), -1); err != nil {
							t.Fatal(err)
						}
					}
					for part := 0; part < cfg.Layout.Decluster; part++ {
						if cfg.Layout.SecondaryDisk(f, b, part) == d {
							want++
							e, err := idx[d].lookup(f.ID, int32(b), int8(part))
							if err != nil {
								t.Fatal(err)
							}
							if e.zone != disk.Inner {
								t.Fatal("secondary not in the inner zone")
							}
						}
					}
				}
			}
			if idx[d].size() != want {
				t.Fatalf("disk %d indexes %d copies, want %d", d, idx[d].size(), want)
			}
		}
	}
}

func TestIndexLookupMiss(t *testing.T) {
	cfg := validConfig(t)
	idx := buildIndexes(cfg, []int{0})
	if _, err := idx[0].lookup(99, 0, -1); err == nil {
		t.Fatal("missing file looked up successfully")
	}
}

// TestIndexScalesWithContentNotSystem confirms the paper's argument for
// a memory-resident index: metadata per disk depends on content volume
// per disk, not on system size.
func TestIndexScalesWithContentNotSystem(t *testing.T) {
	perDisk := func(cubs int) int {
		lay := layout.Config{Cubs: cubs, DisksPerCub: 1, Decluster: 2}
		sp, err := schedule.NewParams(time.Second, cubs, cubs*10)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[msg.FileID]layout.File)
		// Content scales with the system: 100 blocks per disk.
		for i := 0; i < cubs; i++ {
			files[msg.FileID(i)] = layout.File{ID: msg.FileID(i), StartDisk: i, Blocks: 100, BlockSize: 4}
		}
		cfg := &Config{Layout: lay, Sched: sp, BlockSize: 4,
			DiskParams: disk.DefaultParams(), Files: files}
		cfg.DefaultTimings()
		idx := buildIndexes(cfg, []int{0})
		return idx[0].size()
	}
	small, large := perDisk(4), perDisk(16)
	if large > small {
		t.Fatalf("per-disk index grew with system size: %d -> %d", small, large)
	}
}
