package core

import (
	"sort"

	"tiger/internal/msg"
)

// This file implements the deadman failure detector (§2.3) and what a
// cub does on a death: take over the failed peer's schedule load with
// mirror viewer states and adopt its redundant start requests.

// --- deadman protocol (§2.3) ---

func (c *Cub) heartbeatTick() {
	now := c.clk.Now()
	hb := &msg.Heartbeat{From: c.id, Epoch: c.epoch, Now: int64(now)}
	for _, n := range c.monitored {
		c.net.Send(c.id, n, hb)
	}
	// Check for silent neighbours.
	for _, n := range c.monitored {
		if c.believedDead[n] {
			continue
		}
		if now.Sub(c.lastSeen[n]) > c.cfg.DeadmanTimeout {
			c.markDead(n)
		}
	}
	c.clk.After(c.cfg.HeartbeatInterval, c.heartbeatTick)
}

func (c *Cub) markDead(z msg.NodeID) {
	c.believedDead[z] = true
	c.stats.DeadDeclared++
	if o := c.obs; o != nil {
		o.deadDeclared.Inc()
	}
	if !c.firstLivingSuccessorOf(z) {
		return
	}
	// We are the decision maker for z's schedule load (§4.1.1): create
	// mirror viewer states for every not-yet-due service on z's disks
	// that our view knows about, and adopt z's queued starts we hold
	// redundant copies of.
	now := c.clk.Now()
	bp := int64(c.cfg.Sched.BlockPlay)
	var keys []entryKey
	for k := range c.entries {
		if k.part == -1 {
			keys = append(keys, k)
		}
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		e := c.entries[k]
		// Walk back through the services that precede ours in the
		// stream while they land on disks of cubs we believe dead.
		vs := e.vs
		d := e.disk
		for j := 1; j < c.cfg.Layout.Cubs; j++ {
			pd := (d - j + c.cfg.Sched.NumDisks) % c.cfg.Sched.NumDisks
			pc := c.cfg.Layout.CubOfDisk(pd)
			if !c.believedDead[pc] || !c.firstLivingSuccessorOf(pc) {
				break
			}
			pvs := vs
			pvs.Block = vs.Block - int32(j)
			pvs.PlaySeq = vs.PlaySeq - int32(j)
			pvs.Due = vs.Due - int64(j)*bp
			if pvs.Block < 0 || pvs.Due <= int64(now) {
				break
			}
			c.createMirrors(pvs, pd)
		}
	}
	// Promote redundant start requests targeting z's disks, in instance
	// order for determinism.
	var insts []msg.InstanceID
	for inst, req := range c.redundantStart {
		if c.cfg.Layout.CubOfDisk(req.disk) == z {
			insts = append(insts, inst)
		}
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		req := c.redundantStart[inst]
		delete(c.redundantStart, inst)
		c.enqueueStart(req)
		c.stats.RedundantRuns++
	}
	c.flushForwards()
}

// markAlive handles a heartbeat from a cub previously declared dead.
// This alone only ends a network blip: the peer kept its state and
// resumes where it left off. A peer that actually restarted additionally
// runs the rejoin handshake (rejoin.go) to rebuild its view and take its
// mirror load back.
func (c *Cub) markAlive(z msg.NodeID) {
	delete(c.believedDead, z)
}
