package core

import (
	"sort"

	"tiger/internal/msg"
)

// This file implements the deadman failure detector (§2.3) and what a
// cub does on a death: take over the failed peer's schedule load with
// mirror viewer states and adopt its redundant start requests.

// --- deadman protocol (§2.3) ---

func (c *Cub) heartbeatTick() {
	now := c.clk.Now()
	hb := &msg.Heartbeat{From: c.id, Epoch: c.epoch, Now: int64(now)}
	for _, n := range c.monitored {
		c.net.Send(c.id, n, hb)
	}
	// Check for silent neighbours.
	for _, n := range c.monitored {
		if c.believedDead[n] {
			continue
		}
		if now.Sub(c.lastSeen[n]) > c.cfg.DeadmanTimeout {
			c.markDead(n)
		}
	}
	c.ctlDeadmanCheck(now)
	c.clk.After(c.cfg.HeartbeatInterval, c.heartbeatTick)
}

func (c *Cub) markDead(z msg.NodeID) {
	c.believedDead[z] = true
	c.stats.DeadDeclared++
	if o := c.obs; o != nil {
		o.deadDeclared.Inc()
	}
	c.updateUnservable()
	// We may be the decision maker for z's schedule load on some
	// installed generations' rings but not others (the rings differ
	// during a restripe); compute the verdict per generation.
	decider := make(map[int32]bool, len(c.planes))
	any := false
	for g, p := range c.planes {
		if int(z) < p.cfg.Layout.Cubs && c.firstLivingSuccessorOfIn(p.cfg.Layout, z) {
			decider[g] = true
			any = true
		}
	}
	if !any {
		return
	}
	// We are the decision maker for z's schedule load (§4.1.1): create
	// mirror viewer states for every not-yet-due service on z's disks
	// that our view knows about, and adopt z's queued starts we hold
	// redundant copies of.
	now := c.clk.Now()
	var keys []entryKey
	for k := range c.entries {
		if k.part == -1 {
			keys = append(keys, k)
		}
	}
	sortEntryKeys(keys)
	for _, k := range keys {
		e := c.entries[k]
		cfg := c.cfgOf(k.slot)
		if cfg == nil || !decider[GenOf(k.slot)] {
			continue
		}
		bp := int64(cfg.Sched.BlockPlay)
		// Walk back through the services that precede ours in the
		// stream while they land on disks of cubs we believe dead.
		vs := e.vs
		d := int(e.vs.OrigDisk) // generation-local target disk
		for j := 1; j < cfg.Layout.Cubs; j++ {
			pd := (d - j + cfg.Sched.NumDisks) % cfg.Sched.NumDisks
			pc := cfg.Layout.CubOfDisk(pd)
			if !c.believedDead[pc] || !c.firstLivingSuccessorOfIn(cfg.Layout, pc) {
				break
			}
			pvs := vs
			pvs.Block = vs.Block - int32(j)
			pvs.PlaySeq = vs.PlaySeq - int32(j)
			pvs.Due = vs.Due - int64(j)*bp
			if pvs.Block < 0 || pvs.Due <= int64(now) {
				break
			}
			c.createMirrors(pvs, pd)
		}
	}
	// Promote redundant start requests targeting z's disks, in instance
	// order for determinism.
	var insts []msg.InstanceID
	for inst, req := range c.redundantStart {
		g := GenOf(req.dkey)
		p := c.planes[g]
		if p == nil || !decider[g] {
			continue
		}
		if p.cfg.Layout.CubOfDisk(int(RawSlot(req.dkey))) == z {
			insts = append(insts, inst)
		}
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		req := c.redundantStart[inst]
		delete(c.redundantStart, inst)
		c.enqueueStart(req)
		c.stats.RedundantRuns++
	}
	c.flushForwards()
}

// markAlive clears the death belief for a peer without touching mirror
// state. It is the right call when the peer's recovery path will perform
// the handback itself — a restarted incarnation runs the rejoin
// handshake (rejoin.go), which rebuilds its view and retires our
// mirrors via RejoinConfirm.
func (c *Cub) markAlive(z msg.NodeID) {
	delete(c.believedDead, z)
	c.updateUnservable()
}

// proofOfLife handles a direct message from z at epoch e when z is on
// our believedDead list; prior is our epoch high-water mark for z before
// this message. Two cases:
//
//   - e bumped past prior: z genuinely restarted. Clearing the belief is
//     enough; its rejoin handshake transfers the view and takes the
//     mirror load back.
//   - e unchanged (or z was never epoch-known): z never died — the
//     deadman timeout fired across a partition or asymmetric link loss.
//     The death is refuted: we retire the mirror load we built for z and
//     hand the rebuilt primaries straight back, no rejoin handshake
//     required (z still holds its own view; the handback is absorbed as
//     idempotent duplicates).
func (c *Cub) proofOfLife(z msg.NodeID, e, prior int32) {
	c.lastSeen[z] = c.clk.Now()
	if !c.believedDead[z] {
		return
	}
	if prior != 0 && e > prior {
		c.markAlive(z)
		return
	}
	c.refuteDeath(z)
}

// refuteDeath implements the split-brain healing rule: a false death
// declaration is withdrawn and the mirror viewer states covering z's
// disks are retired through the same path RejoinConfirm uses. For each
// retired chain the primary state it derives from is rebuilt and
// forwarded to z — if z somehow lost it the stream survives, and
// otherwise z's dedup counters absorb the duplicate (§4.1.2's
// idempotence argument, applied to the heal).
func (c *Cub) refuteDeath(z msg.NodeID) {
	c.markAlive(z)
	c.stats.DeathsRefuted++
	if o := c.obs; o != nil {
		o.deathsRefuted.Inc()
	}
	pace := int64(c.cfg.MirrorPace())
	now := int64(c.clk.Now())
	var keys []entryKey
	for k, e := range c.entries {
		if k.part >= 0 && c.layoutOf(k.slot).CubOfDisk(int(e.vs.OrigDisk)) == z {
			keys = append(keys, k)
		}
	}
	sortEntryKeys(keys)
	handed := make(map[entryKey]bool)
	for _, k := range keys {
		e := c.entries[k]
		// Rebuild the primary service this piece substitutes for: piece p
		// is due p mirror paces after the primary send it replaces.
		pvs := e.vs
		pvs.Mirror = false
		pvs.Part = 0
		pvs.Due -= int64(e.vs.Part) * pace
		pk := entryKey{pvs.Slot, -1, pvs.Due}
		if pvs.Due > now && !handed[pk] {
			handed[pk] = true
			cp := pvs
			c.enqueueForward(z, &cp)
		}
		c.dropEntryRelease(k)
		c.stats.MirrorsRetired++
		if o := c.obs; o != nil {
			o.mirrorsBack.Inc()
		}
	}
	if len(keys) > 0 {
		c.flushForwards()
	}
}
