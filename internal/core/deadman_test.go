package core

import (
	"testing"
	"time"

	"tiger/internal/msg"
)

// TestRefuteDeathSameEpoch pins the false-death branch of proofOfLife
// (deadman.go): a direct message from a believed-dead peer at an
// UNCHANGED epoch means the peer never died — the deadman fired across a
// partition — so the death is refuted in place: the belief clears, the
// mirror chains built for the peer's disks retire, and the rebuilt
// primaries are handed straight back without a rejoin handshake.
func TestRefuteDeathSameEpoch(t *testing.T) {
	r := newRig(t, defaultRigOptions())
	for v := msg.ViewerID(1); v <= 8; v++ {
		r.play(v, msg.FileID(int(v)%4), int32(v)*5)
	}
	r.run(10 * time.Second)

	// Cub 4 is a ring successor of cub 3: it monitors 3's heartbeats and
	// holds mirror pieces for 3's disks. Plant the false belief directly —
	// the unit under test is the recovery, not the (separately tested)
	// timeout that would produce it.
	const victim = 3
	watcher := r.cubs[4]
	watcher.markDead(victim)
	if !watcher.believedDead[victim] {
		t.Fatal("markDead did not record the belief")
	}
	if watcher.MirrorLoadFor(victim) == 0 {
		t.Fatal("markDead built no mirror chains; the scenario is vacuous")
	}
	refuted0 := watcher.Stats().DeathsRefuted
	retired0 := watcher.Stats().MirrorsRetired
	rejoins0 := r.totals().Rejoins

	// The victim was alive all along: its next heartbeat arrives at the
	// same epoch it has always used, which must take the refuteDeath
	// branch (epoch unchanged), not the restart branch.
	r.run(2*r.cfg.HeartbeatInterval + time.Second)

	if watcher.believedDead[victim] {
		t.Error("death belief survived proof of life")
	}
	if got := watcher.Stats().DeathsRefuted; got != refuted0+1 {
		t.Errorf("DeathsRefuted = %d, want %d", got, refuted0+1)
	}
	if watcher.MirrorLoadFor(victim) != 0 {
		t.Errorf("mirror chains not retired: %d entries remain", watcher.MirrorLoadFor(victim))
	}
	if got := watcher.Stats().MirrorsRetired; got <= retired0 {
		t.Error("refutation retired no mirror entries")
	}
	// The heal must be in place: a rejoin handshake is the restart path,
	// and the victim never restarted.
	if got := r.totals().Rejoins; got != rejoins0 {
		t.Errorf("refutation triggered %d rejoin handshakes", got-rejoins0)
	}
}
