package restripe

import (
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/layout"
	"tiger/internal/msg"
	"tiger/internal/sim"
)

func plan(t *testing.T, fromCubs, toCubs, filesPerCub, blocks int) *layout.RestripePlan {
	t.Helper()
	old := layout.Config{Cubs: fromCubs, DisksPerCub: 2, Decluster: 2}
	new := layout.Config{Cubs: toCubs, DisksPerCub: 2, Decluster: 2}
	var files []layout.File
	for i := 0; i < fromCubs*filesPerCub; i++ {
		files = append(files, layout.File{
			ID:        msg.FileID(i),
			StartDisk: (i * 5) % old.NumDisks(),
			Blocks:    blocks,
			BlockSize: 262144,
		})
	}
	p, err := layout.PlanRestripe(old, new, files)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteEmptyPlan(t *testing.T) {
	eng := sim.New(1)
	p, err := layout.PlanRestripe(
		layout.Config{Cubs: 3, DisksPerCub: 1, Decluster: 1},
		layout.Config{Cubs: 3, DisksPerCub: 1, Decluster: 1},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(clock.Sim{Eng: eng}, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 || res.Duration != 0 {
		t.Fatalf("empty plan result %+v", res)
	}
}

func TestExecuteMatchesEstimateOrder(t *testing.T) {
	eng := sim.New(1)
	p := plan(t, 4, 5, 2, 120)
	o := DefaultOptions()
	res, err := Execute(clock.Sim{Eng: eng}, p, o)
	if err != nil {
		t.Fatal(err)
	}
	est := p.EstimateDuration(o.DiskRate)
	t.Logf("executed %d moves (%.1f MB) in %v; planner estimate %v",
		res.Moves, float64(res.Bytes)/1e6, res.Duration, est)
	if res.Duration <= 0 {
		t.Fatal("no time elapsed")
	}
	// The executed duration includes per-move overhead and write
	// serialization the estimate ignores, so it is larger — but within a
	// small factor.
	if res.Duration < est/2 || res.Duration > 6*est {
		t.Fatalf("executed %v wildly different from estimate %v", res.Duration, est)
	}
}

// TestDurationIndependentOfSystemSize is §2.2's claim executed rather
// than estimated: with per-disk content held constant, quadrupling the
// system changes the restripe time by less than 2x.
func TestDurationIndependentOfSystemSize(t *testing.T) {
	run := func(cubs int) time.Duration {
		eng := sim.New(1)
		p := plan(t, cubs, cubs+1, 1, 240)
		res, err := Execute(clock.Sim{Eng: eng}, p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	small := run(4)
	large := run(16)
	t.Logf("restripe 4->5 cubs: %v; 16->17 cubs: %v", small, large)
	ratio := float64(large) / float64(small)
	if ratio > 2 {
		t.Fatalf("restripe time grew %.1fx with a 4x system", ratio)
	}
}

func TestThrottleScalesDuration(t *testing.T) {
	full := func(th float64) time.Duration {
		eng := sim.New(1)
		p := plan(t, 4, 5, 1, 100)
		o := DefaultOptions()
		o.Throttle = th
		res, err := Execute(clock.Sim{Eng: eng}, p, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	offline := full(1.0)
	online := full(0.25) // restriping with 75% of bandwidth left for service
	if online < 2*offline {
		t.Fatalf("throttled restripe %v not much slower than offline %v", online, offline)
	}
}

func TestExecuteRejectsBadOptions(t *testing.T) {
	eng := sim.New(1)
	p := plan(t, 3, 4, 1, 10)
	for _, o := range []Options{
		{DiskRate: 0, Throttle: 1},
		{DiskRate: 1e6, Throttle: 0},
		{DiskRate: 1e6, Throttle: 1.5},
	} {
		if _, err := Execute(clock.Sim{Eng: eng}, p, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() Result {
		eng := sim.New(1)
		p := plan(t, 5, 6, 2, 60)
		res, err := Execute(clock.Sim{Eng: eng}, p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic execution: %+v vs %+v", a, b)
	}
}
