// Package restripe executes a layout.RestripePlan against simulated
// disks and the switched network: the "software to update (or
// 're-stripe') from one configuration to another" the paper mentions
// (§2.2). Every disk moves its blocks in parallel through the switch, so
// the wall time is governed by the busiest single disk — not by system
// size — which is the claim this package lets tests demonstrate.
package restripe

import (
	"fmt"
	"sort"
	"time"

	"tiger/internal/clock"
	"tiger/internal/layout"
	"tiger/internal/sim"
)

// Options tune an execution.
type Options struct {
	// DiskRate is each disk's sustained copy bandwidth in bytes/s.
	DiskRate float64
	// PerMoveOverhead models seek plus request handling per block moved.
	PerMoveOverhead time.Duration
	// Throttle is the fraction of disk bandwidth the restripe may use;
	// the remainder is reserved for concurrent stream service. 1.0
	// restripes offline at full speed.
	Throttle float64
	// NetLatency is the switch traversal time per block.
	NetLatency time.Duration
}

// DefaultOptions match the reference disk models.
func DefaultOptions() Options {
	return Options{
		DiskRate:        5.08e6,
		PerMoveOverhead: 11 * time.Millisecond,
		Throttle:        1.0,
		NetLatency:      time.Millisecond,
	}
}

// Result summarises an execution.
type Result struct {
	Moves      int
	Bytes      int64
	Duration   time.Duration
	BusiestOut int // old disk with the most outbound work
	BusiestIn  int // new disk with the most inbound work
}

// diskLine is one disk's serialized work timeline.
type diskLine struct {
	free sim.Time
}

func (d *diskLine) take(at sim.Time, svc time.Duration) sim.Time {
	if d.free > at {
		at = d.free
	}
	done := at.Add(svc)
	d.free = done
	return done
}

// Execute runs the plan move by move on an event-driven model: each
// move reads from its source disk, crosses the switch, and writes to
// its destination disk; both disks serialize their own work, all disks
// proceed in parallel. The returned duration is the virtual time until
// the last write completes.
func Execute(clk clock.Clock, plan *layout.RestripePlan, o Options) (*Result, error) {
	if o.DiskRate <= 0 || o.Throttle <= 0 || o.Throttle > 1 {
		return nil, fmt.Errorf("restripe: bad options %+v", o)
	}
	rate := o.DiskRate * o.Throttle

	// Per-move service time on a disk.
	svc := func(bytes int64) time.Duration {
		return o.PerMoveOverhead + time.Duration(float64(bytes)/rate*float64(time.Second))
	}

	// Sort moves so execution is deterministic and sources stream
	// sequentially (the real tool would walk each disk in layout order).
	moves := append([]layout.Move(nil), plan.Moves...)
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].From != moves[j].From {
			return moves[i].From < moves[j].From
		}
		if moves[i].File.ID != moves[j].File.ID {
			return moves[i].File.ID < moves[j].File.ID
		}
		if moves[i].Block != moves[j].Block {
			return moves[i].Block < moves[j].Block
		}
		return moves[i].Part < moves[j].Part
	})

	src := make(map[int]*diskLine)
	dst := make(map[int]*diskLine)
	start := clk.Now()
	var last sim.Time
	var bytes int64
	for _, m := range moves {
		s := src[m.From]
		if s == nil {
			s = &diskLine{free: start}
			src[m.From] = s
		}
		d := dst[m.To]
		if d == nil {
			d = &diskLine{free: start}
			dst[m.To] = d
		}
		readDone := s.take(start, svc(m.Bytes))
		writeDone := d.take(readDone.Add(o.NetLatency), svc(m.Bytes))
		if writeDone > last {
			last = writeDone
		}
		bytes += m.Bytes
	}

	res := &Result{Moves: len(moves), Bytes: bytes, Duration: last.Sub(start)}
	var worstOut, worstIn sim.Time
	for id, l := range src {
		if l.free > worstOut || (l.free == worstOut && id < res.BusiestOut) {
			worstOut, res.BusiestOut = l.free, id
		}
	}
	for id, l := range dst {
		if l.free > worstIn || (l.free == worstIn && id < res.BusiestIn) {
			worstIn, res.BusiestIn = l.free, id
		}
	}
	return res, nil
}
