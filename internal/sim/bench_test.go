package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkTimerChurn(b *testing.B) {
	// The cubs' dominant pattern: schedule a timer, usually stop it.
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.After(time.Second, func() {})
		if i%8 != 0 {
			t.Stop()
		}
		if i%1024 == 1023 {
			e.RunFor(time.Millisecond)
		}
	}
}

func BenchmarkEventCascade(b *testing.B) {
	// Self-perpetuating event chain: the pure engine overhead per event.
	e := New(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}
