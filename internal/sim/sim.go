// Package sim provides a deterministic discrete-event simulation engine.
//
// All Tiger protocol experiments run in virtual time on this engine: the
// paper's hour-long measurement runs complete in seconds of wall time, and
// every run is reproducible from its RNG seed. The engine is deliberately
// single-threaded; determinism comes from a total order on events (time,
// then insertion sequence).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured in nanoseconds since the
// start of the simulation. It is kept distinct from time.Time so that a
// wall-clock value can never be mixed into a simulation by accident.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at    Time
	seq   uint64 // insertion order; breaks ties deterministically
	fn    func()
	index int // heap index; -1 once popped or stopped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event; Stop cancels it if it has not
// yet fired.
type Timer struct {
	eng *Engine
	ev  *event
}

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.eng.events, t.ev.index)
	t.ev.fn = nil
	return true
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// running guards against re-entrant Run calls.
	running bool
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// models (disk jitter, network latency, workload arrivals) must draw from
// this source so a run is a pure function of the seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at instant t. Scheduling in the past panics: it
// is always a model bug, and silently clamping would hide it.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{eng: e, ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the single earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil { // stopped timer
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.Step() {
	}
}

// RunUntil executes events with at-time <= t, then advances the clock to
// exactly t. Events scheduled at t run; later ones remain queued.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) enter() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }
