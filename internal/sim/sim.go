// Package sim provides a deterministic discrete-event simulation engine.
//
// All Tiger protocol experiments run in virtual time on this engine: the
// paper's hour-long measurement runs complete in seconds of wall time, and
// every run is reproducible from its RNG seed. The engine is deliberately
// single-threaded; determinism comes from a total order on events (time,
// then insertion sequence).
//
// The scheduling hot path is allocation-free in steady state: events live
// in a slab recycled through a free list, the priority queue is an inline
// indexed 4-ary heap of small value nodes (no container/heap, no interface
// boxing), and Timer handles are generation-stamped values, so a
// fire-and-forget After costs no heap allocation once the engine is warm.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured in nanoseconds since the
// start of the simulation. It is kept distinct from time.Time so that a
// wall-clock value can never be mixed into a simulation by accident.
type Time int64

// Duration re-exports time.Duration for readability at call sites.
type Duration = time.Duration

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return Duration(t).String() }

// event is one slab record: the callback plus the bookkeeping that lets a
// Timer find it again safely. Records are recycled through a free list;
// gen increments on every release, so a stale Timer handle can never
// cancel a later event that happens to reuse the same slot.
type event struct {
	fn      func()
	gen     uint32
	heapIdx int32 // index into Engine.heap; -1 when not queued
	free    int32 // next free slot when on the free list
}

// heapNode is the priority-queue element proper: the full (time, seq) sort
// key plus the slab slot of its record. Nodes are moved by value during
// sifts; only the slab's heapIdx needs patching.
type heapNode struct {
	at   Time
	seq  uint64
	slot int32
}

// before reports whether a sorts strictly before b in the engine's total
// order. seq is unique per event, so this is a strict total order and the
// pop sequence is independent of heap layout.
func (a heapNode) before(b heapNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// noSlot marks an empty free list.
const noSlot = -1

// Timer is a handle to a scheduled event; Stop cancels it if it has not
// yet fired. The zero Timer is valid and Stop on it reports false. Timer
// is a value: copies refer to the same scheduled event.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false once the event has fired, been stopped, or if the handle is stale
// (its slab record was recycled for a later event).
func (t Timer) Stop() bool {
	e := t.eng
	if e == nil || t.slot < 0 || int(t.slot) >= len(e.pool) {
		return false
	}
	ev := &e.pool[t.slot]
	if ev.gen != t.gen || ev.heapIdx < 0 {
		return false
	}
	e.heapRemove(int(ev.heapIdx))
	e.release(t.slot)
	return true
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now       Time
	seq       uint64
	processed uint64
	heap      []heapNode
	pool      []event // slab of event records, addressed by heapNode.slot
	freeHead  int32
	rng       *rand.Rand
	// running guards against re-entrant Run calls.
	running bool
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), freeHead: noSlot}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// models (disk jitter, network latency, workload arrivals) must draw from
// this source so a run is a pure function of the seed.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes a record slot from the free list, growing the slab only
// when it is exhausted.
func (e *Engine) alloc() int32 {
	if s := e.freeHead; s != noSlot {
		e.freeHead = e.pool[s].free
		return s
	}
	e.pool = append(e.pool, event{})
	return int32(len(e.pool) - 1)
}

// release recycles a record: bump the generation so outstanding Timer
// handles go stale, drop the callback reference, and chain the slot onto
// the free list.
func (e *Engine) release(slot int32) {
	ev := &e.pool[slot]
	ev.fn = nil
	ev.gen++
	ev.heapIdx = -1
	ev.free = e.freeHead
	e.freeHead = slot
}

// At schedules fn to run at instant t. Scheduling in the past panics: it
// is always a model bug, and silently clamping would hide it.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	slot := e.alloc()
	e.pool[slot].fn = fn
	gen := e.pool[slot].gen
	e.heapPush(heapNode{at: t, seq: e.seq, slot: slot})
	return Timer{eng: e, slot: slot, gen: gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// Processed reports the number of events executed since New. It is the
// denominator for ns/event and allocs/event budgets.
func (e *Engine) Processed() uint64 { return e.processed }

// Step runs the single earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	n := e.heap[0]
	e.heapRemove(0)
	fn := e.pool[n.slot].fn
	e.release(n.slot)
	e.now = n.at
	e.processed++
	fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.enter()
	defer e.leave()
	for e.Step() {
	}
}

// RunUntil executes events with at-time <= t, then advances the clock to
// exactly t. Events scheduled at t run; later ones remain queued.
func (e *Engine) RunUntil(t Time) {
	e.enter()
	defer e.leave()
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunBefore executes events with at-time strictly less than t, then
// advances the clock to exactly t. The sharded coordinator uses the
// strict bound for every window except the last: an event scheduled at
// exactly a window boundary belongs to the next window, so that events
// injected at the boundary by another shard (which the lookahead bound
// guarantees arrive no earlier than the boundary) still sort into the
// same total order a serial execution would produce.
func (e *Engine) RunBefore(t Time) {
	e.enter()
	defer e.leave()
	for len(e.heap) > 0 && e.heap[0].at < t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) enter() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) leave() { e.running = false }

// --- inline indexed 4-ary heap ---
//
// A 4-ary heap halves the tree depth of a binary heap, trading slightly
// more comparisons per level for many fewer node moves; with 24-byte value
// nodes and the sift loops inlined, the engine spends its time on the
// comparisons alone. The slab's heapIdx is patched on every placement so
// Stop can remove an arbitrary node by index.

func (e *Engine) place(i int, n heapNode) {
	e.heap[i] = n
	e.pool[n.slot].heapIdx = int32(i)
}

func (e *Engine) heapPush(n heapNode) {
	e.heap = append(e.heap, heapNode{})
	e.siftUp(len(e.heap)-1, n)
}

// heapRemove deletes the node at heap index i, preserving heap order.
func (e *Engine) heapRemove(i int) {
	last := len(e.heap) - 1
	moved := e.heap[last]
	e.heap[last] = heapNode{}
	e.heap = e.heap[:last]
	if i == last {
		return
	}
	// Re-seat the displaced tail node: it may need to move either way
	// relative to position i.
	if i > 0 {
		parent := (i - 1) / 4
		if moved.before(e.heap[parent]) {
			e.siftUp(i, moved)
			return
		}
	}
	e.siftDown(i, moved)
}

// siftUp places n, currently destined for index i, at its final position
// on the path to the root.
func (e *Engine) siftUp(i int, n heapNode) {
	for i > 0 {
		parent := (i - 1) / 4
		p := e.heap[parent]
		if !n.before(p) {
			break
		}
		e.place(i, p)
		i = parent
	}
	e.place(i, n)
}

// siftDown places n, currently destined for index i, at its final
// position among its descendants.
func (e *Engine) siftDown(i int, n heapNode) {
	size := len(e.heap)
	for {
		first := 4*i + 1
		if first >= size {
			break
		}
		min := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if e.heap[c].before(e.heap[min]) {
				min = c
			}
		}
		if !e.heap[min].before(n) {
			break
		}
		e.place(i, e.heap[min])
		i = min
	}
	e.place(i, n)
}
