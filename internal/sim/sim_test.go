package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("clock at %v, want 3s", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(time.Second), func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not in insertion order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopDuringRun(t *testing.T) {
	e := New(1)
	fired := false
	var tm Timer
	e.After(time.Second, func() { tm.Stop() })
	tm = e.After(2*time.Second, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("timer stopped mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Time(time.Second), func() { count++ })
	}
	e.RunUntil(Time(5 * time.Second))
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock at %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("%d pending, want 5", e.Pending())
	}
}

func TestRunForAdvancesEvenWhenIdle(t *testing.T) {
	e := New(1)
	e.RunFor(7 * time.Second)
	if e.Now() != Time(7*time.Second) {
		t.Fatalf("clock at %v, want 7s", e.Now())
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if depth != 100 {
		t.Fatalf("chain depth %d, want 100", depth)
	}
	if e.Now() != Time(99*time.Millisecond) {
		t.Fatalf("clock %v, want 99ms", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(time.Millisecond), func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	fired := false
	e.After(-5*time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		e := New(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			if len(out) < 200 {
				e.After(time.Duration(e.Rand().Intn(50)+1)*time.Millisecond, step)
			}
		}
		e.After(0, step)
		e.Run()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the final clock equals the maximum delay.
func TestQuickEventOrder(t *testing.T) {
	f := func(delays []uint32) bool {
		e := New(7)
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d % 1_000_000_000)
			if at > max {
				max = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleTimerAfterReuse is the generation-stamp proof: a Timer whose
// event already fired must report false from Stop and must never cancel
// an unrelated later event that recycled the same slab record.
func TestStaleTimerAfterReuse(t *testing.T) {
	e := New(1)
	stale := e.After(time.Second, func() {})
	e.Run() // fires; the record returns to the free list

	// The next schedule reuses the freed slot (LIFO free list).
	fired := false
	fresh := e.After(time.Second, func() { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("free list did not recycle the slot: %d vs %d", fresh.slot, stale.slot)
	}
	if stale.Stop() {
		t.Fatal("stale Stop reported true after its record was recycled")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Stop cancelled an unrelated event")
	}
}

// TestStoppedTimerSlotReuse covers the other recycle path: Stop frees the
// record, and the stopped handle must stay inert across reuse.
func TestStoppedTimerSlotReuse(t *testing.T) {
	e := New(1)
	a := e.After(time.Second, func() { t.Fatal("stopped event fired") })
	if !a.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	fired := 0
	b := e.After(2*time.Second, func() { fired++ })
	if b.slot != a.slot {
		t.Fatalf("free list did not recycle the slot: %d vs %d", b.slot, a.slot)
	}
	if a.Stop() {
		t.Fatal("doubly-stopped stale handle reported true")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if b.Stop() {
		t.Fatal("Stop after firing reported true")
	}
}

func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop reported true")
	}
}

// TestStopInterleavedOrdering removes events from the middle of a large
// heap and checks the survivors still fire in exact (time, seq) order.
func TestStopInterleavedOrdering(t *testing.T) {
	e := New(1)
	var want []int
	var got []int
	timers := make([]Timer, 0, 300)
	for i := 0; i < 300; i++ {
		i := i
		// Deliberately colliding times exercise the seq tie-break.
		at := Time(int64(i%37) * int64(time.Millisecond))
		timers = append(timers, e.At(at, func() { got = append(got, i) }))
	}
	for i, tm := range timers {
		if i%3 == 1 {
			if !tm.Stop() {
				t.Fatalf("Stop on pending timer %d reported false", i)
			}
		}
	}
	for at := 0; at < 37; at++ {
		for i := 0; i < 300; i++ {
			if i%3 != 1 && i%37 == at {
				want = append(want, i)
			}
		}
	}
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("%d events fired, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

var nop = func() {}

// TestAfterAllocs is the allocation budget of the steady scheduling path:
// on a warmed engine, a fire-and-forget After (and its Run) must not
// allocate at all.
func TestAfterAllocs(t *testing.T) {
	e := New(1)
	for i := 0; i < 64; i++ { // warm the slab and heap
		e.After(time.Duration(i)*time.Microsecond, nop)
	}
	e.Run()
	if a := testing.AllocsPerRun(200, func() {
		e.After(time.Microsecond, nop)
		e.Run()
	}); a != 0 {
		t.Fatalf("After+Run allocated %.1f/op on a warmed engine, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		tm := e.After(time.Second, nop)
		tm.Stop()
	}); a != 0 {
		t.Fatalf("After+Stop allocated %.1f/op on a warmed engine, want 0", a)
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(1500 * time.Millisecond)
	if x.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", x.Seconds())
	}
	if x.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if x.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub broken")
	}
	if x.String() != "1.5s" {
		t.Fatalf("String = %q", x.String())
	}
}
