package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("clock at %v, want 3s", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(time.Second), func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not in insertion order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopDuringRun(t *testing.T) {
	e := New(1)
	fired := false
	var tm *Timer
	e.After(time.Second, func() { tm.Stop() })
	tm = e.After(2*time.Second, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("timer stopped mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Time(time.Second), func() { count++ })
	}
	e.RunUntil(Time(5 * time.Second))
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock at %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("%d pending, want 5", e.Pending())
	}
}

func TestRunForAdvancesEvenWhenIdle(t *testing.T) {
	e := New(1)
	e.RunFor(7 * time.Second)
	if e.Now() != Time(7*time.Second) {
		t.Fatalf("clock at %v, want 7s", e.Now())
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	e := New(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if depth != 100 {
		t.Fatalf("chain depth %d, want 100", depth)
	}
	if e.Now() != Time(99*time.Millisecond) {
		t.Fatalf("clock %v, want 99ms", e.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(Time(time.Millisecond), func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := New(1)
	e.RunFor(time.Second)
	fired := false
	e.After(-5*time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if e.Now() != Time(time.Second) {
		t.Fatalf("clock moved to %v", e.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		e := New(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			if len(out) < 200 {
				e.After(time.Duration(e.Rand().Intn(50)+1)*time.Millisecond, step)
			}
		}
		e.After(0, step)
		e.Run()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any set of delays, events fire in nondecreasing time
// order and the final clock equals the maximum delay.
func TestQuickEventOrder(t *testing.T) {
	f := func(delays []uint32) bool {
		e := New(7)
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d % 1_000_000_000)
			if at > max {
				max = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(1500 * time.Millisecond)
	if x.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", x.Seconds())
	}
	if x.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if x.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub broken")
	}
	if x.String() != "1.5s" {
		t.Fatalf("String = %q", x.String())
	}
}
