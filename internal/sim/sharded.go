package sim

import "fmt"

// Sharded is a conservative parallel coordinator over S independent
// engines ("shards"). It exploits the classic lookahead property of
// conservative parallel DES (Chandy–Misra–Bryant): if every cross-shard
// interaction is delayed by at least the lookahead L — in Tiger, the
// network's minimum link latency — then within any window [T, T+L) the
// shards cannot affect each other, so their event queues may be executed
// concurrently without violating the global event order.
//
// The protocol per window is:
//
//  1. Run every shard's engine up to the window end — strictly before
//     the end for interior windows (RunBefore), inclusively for the
//     final window of a RunUntil (RunUntil). During the window a shard
//     may Post cross-shard work; the lookahead bound guarantees every
//     posted instant is at or after the window end.
//  2. Barrier.
//  3. Drain the S×S mailboxes single-threaded in a fixed order —
//     destination-major, then source 0..S-1, preserving append order —
//     injecting each posted callback into its destination engine.
//
// Because shard execution is deterministic (each engine's order is a
// pure function of its queue) and the drain order is fixed, the
// sequence numbers assigned to injected events — and therefore the
// global tie-break order — are identical for any worker count,
// including 1. That is the byte-identical guarantee: a W-worker run of
// an S-sharded model produces exactly the bytes of the same model run
// serially.
type Sharded struct {
	engines   []*Engine
	lookahead Duration
	workers   int
	now       Time
	// mail[src][dst] is written only by shard src during a window and
	// read only by the coordinator after the barrier, so it needs no
	// lock; the WaitGroup/channel barrier provides the happens-before.
	mail [][][]post
}

// post is one cross-shard injection: run fn at instant at on the
// destination shard.
type post struct {
	at Time
	fn func()
}

// window is one conservative execution quantum.
type window struct {
	end   Time
	final bool
}

// NewSharded builds a coordinator over the given engines. lookahead is
// the minimum cross-shard interaction delay (the model must guarantee
// it; Tiger uses the network's base link latency). workers bounds the
// goroutines executing shards concurrently; 1 runs the same partitioned
// model serially, byte-identically.
func NewSharded(engines []*Engine, lookahead Duration, workers int) *Sharded {
	if len(engines) == 0 {
		panic("sim: NewSharded with no engines")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded needs a positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	s := &Sharded{engines: engines, lookahead: lookahead, workers: workers}
	s.mail = make([][][]post, len(engines))
	for i := range s.mail {
		s.mail[i] = make([][]post, len(engines))
	}
	return s
}

// Shards reports the number of shards.
func (s *Sharded) Shards() int { return len(s.engines) }

// Now returns the coordinator's virtual time: every engine has been run
// at least to this instant.
func (s *Sharded) Now() Time { return s.now }

// Processed sums the events executed across all shards.
func (s *Sharded) Processed() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.processed
	}
	return n
}

// Post schedules fn at instant at on shard dst. It must be called from
// shard src's execution context (its engine's callbacks) during a
// window, and at must be no earlier than the end of that window — which
// the lookahead contract guarantees when at is at least the posting
// shard's current time plus the lookahead.
func (s *Sharded) Post(src, dst int, at Time, fn func()) {
	s.mail[src][dst] = append(s.mail[src][dst], post{at: at, fn: fn})
}

// RunUntil advances the whole sharded model to t, window by window.
func (s *Sharded) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: sharded RunUntil(%v) before now %v", t, s.now))
	}
	run := s.serialWindows
	if s.workers > 1 && len(s.engines) > 1 {
		var stop func()
		run, stop = s.parallelWindows()
		defer stop()
	}
	// Driver code running between RunUntil calls (shard 0's execution
	// context at the coordinator's current time) may itself have posted
	// cross-shard work; fold it into the engine queues before the first
	// window so the idle hop below sees it. Such posts respect the same
	// lookahead bound, so they are never in any engine's past.
	s.drain()
	for {
		start := s.now
		// Hop over idle stretches: with every mailbox drained, nothing
		// can fire anywhere before the earliest queued event.
		if nxt, ok := s.nextEvent(); !ok {
			start = t
		} else if nxt > start {
			start = nxt
			if start > t {
				start = t
			}
		}
		end := start.Add(s.lookahead)
		if end >= t {
			run(window{end: t, final: true})
			s.drain()
			s.now = t
			return
		}
		run(window{end: end, final: false})
		s.drain()
		s.now = end
	}
}

// RunFor advances the sharded model by d.
func (s *Sharded) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// runShard executes one shard's window.
func (s *Sharded) runShard(i int, w window) {
	if w.final {
		s.engines[i].RunUntil(w.end)
	} else {
		s.engines[i].RunBefore(w.end)
	}
}

// serialWindows runs every shard on the calling goroutine.
func (s *Sharded) serialWindows(w window) {
	for i := range s.engines {
		s.runShard(i, w)
	}
}

// parallelWindows starts a persistent worker pool striping shards over
// workers and returns (run one window, stop the pool). The done channel
// receives after a worker's writes, and the next cmd send follows the
// coordinator's drain, so mailbox accesses are ordered without locks.
func (s *Sharded) parallelWindows() (func(window), func()) {
	w := s.workers
	if w > len(s.engines) {
		w = len(s.engines)
	}
	cmd := make([]chan window, w)
	done := make(chan struct{}, w)
	for i := 0; i < w; i++ {
		cmd[i] = make(chan window, 1)
		go func(i int) {
			for win := range cmd[i] {
				for sh := i; sh < len(s.engines); sh += w {
					s.runShard(sh, win)
				}
				done <- struct{}{}
			}
		}(i)
	}
	run := func(win window) {
		for _, c := range cmd {
			c <- win
		}
		for i := 0; i < w; i++ {
			<-done
		}
	}
	stop := func() {
		for _, c := range cmd {
			close(c)
		}
	}
	return run, stop
}

// nextEvent reports the earliest queued event time across all shards.
func (s *Sharded) nextEvent() (Time, bool) {
	var best Time
	ok := false
	for _, e := range s.engines {
		if len(e.heap) == 0 {
			continue
		}
		if !ok || e.heap[0].at < best {
			best, ok = e.heap[0].at, true
		}
	}
	return best, ok
}

// drain injects every mailbox post into its destination engine, in a
// fixed order so injected sequence numbers — and hence the global event
// order — do not depend on the worker count.
func (s *Sharded) drain() {
	for dst := range s.engines {
		e := s.engines[dst]
		for src := range s.engines {
			box := s.mail[src][dst]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				e.At(box[i].at, box[i].fn)
				box[i].fn = nil
			}
			s.mail[src][dst] = box[:0]
		}
	}
}
