package sim

import (
	"fmt"
	"testing"
	"time"
)

// shardedTrace runs a synthetic cross-shard workload — every node
// periodically fires and posts a message to a node on another shard,
// which schedules a local follow-up — and records every execution as a
// line in the executing shard's trace. Only the owning shard writes its
// trace during a window (the same single-writer discipline the
// coordinator's mailboxes use), so per-shard traces are race-free and
// must match byte for byte across worker counts.
func shardedTrace(t *testing.T, shards, workers int, horizon Duration) [][]string {
	t.Helper()
	const lookahead = 300 * time.Microsecond
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = New(int64(100 + i))
	}
	co := NewSharded(engines, lookahead, workers)

	traces := make([][]string, shards)
	// Each shard runs a few self-rescheduling nodes with co-prime
	// periods so window boundaries land unevenly, plus cross-shard
	// posts at exactly the lookahead and a bit beyond it.
	for i := range engines {
		src := i
		e := engines[src]
		for n := 0; n < 3; n++ {
			node := n
			period := Duration(37+13*src+7*node) * time.Microsecond
			var tick func()
			tick = func() {
				now := e.Now()
				traces[src] = append(traces[src], fmt.Sprintf("tick s%d n%d @%d", src, node, now))
				dst := (src + 1 + node) % shards
				delay := lookahead + Duration(node)*29*time.Microsecond
				co.Post(src, dst, now.Add(delay), func() {
					at := engines[dst].Now()
					traces[dst] = append(traces[dst], fmt.Sprintf("recv s%d<-s%d n%d @%d", dst, src, node, at))
				})
				e.After(period, tick)
			}
			e.After(period, tick)
		}
	}
	co.RunUntil(Time(horizon))
	if co.Now() != Time(horizon) {
		t.Fatalf("coordinator stopped at %v, want %v", co.Now(), Time(horizon))
	}
	return traces
}

// TestShardedDeterministicAcrossWorkers is the engine-level half of the
// sharded-vs-serial guarantee: the same partitioned model must produce
// an identical execution trace at any worker count. The appends to the
// shared trace slice are themselves cross-goroutine, so running this
// test under -race also exercises the barrier's happens-before edges.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		serial := shardedTrace(t, shards, 1, 20*time.Millisecond)
		for sh, tr := range serial {
			if len(tr) == 0 {
				t.Fatalf("shards=%d: shard %d has an empty trace", shards, sh)
			}
		}
		for _, workers := range []int{2, 4} {
			par := shardedTrace(t, shards, workers, 20*time.Millisecond)
			for sh := range serial {
				if len(par[sh]) != len(serial[sh]) {
					t.Fatalf("shards=%d workers=%d shard=%d: %d events vs %d serial",
						shards, workers, sh, len(par[sh]), len(serial[sh]))
				}
				for i := range serial[sh] {
					if par[sh][i] != serial[sh][i] {
						t.Fatalf("shards=%d workers=%d shard=%d: trace diverges at %d:\n  serial: %s\n  par:    %s",
							shards, workers, sh, i, serial[sh][i], par[sh][i])
					}
				}
			}
		}
	}
}

// TestShardedPostOrdering pins the drain order contract: posts landing
// at the same instant on one destination run in (source shard, append
// order) — independent of which goroutine executed the source.
func TestShardedPostOrdering(t *testing.T) {
	engines := []*Engine{New(1), New(2), New(3)}
	co := NewSharded(engines, time.Millisecond, 2)
	var got []string
	// All three shards post to shard 0 for the same instant from the
	// same window.
	for i := range engines {
		src := i
		engines[src].After(100*time.Microsecond, func() {
			for k := 0; k < 2; k++ {
				k := k
				co.Post(src, 0, Time(2*time.Millisecond), func() {
					got = append(got, fmt.Sprintf("s%d#%d", src, k))
				})
			}
		})
	}
	co.RunUntil(Time(3 * time.Millisecond))
	want := []string{"s0#0", "s0#1", "s1#0", "s1#1", "s2#0", "s2#1"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

// TestRunBefore pins the strict-bound semantics the interior windows
// rely on: an event at exactly the bound must not run, and the clock
// still advances to the bound.
func TestRunBefore(t *testing.T) {
	e := New(1)
	var ran []int
	e.At(Time(10), func() { ran = append(ran, 10) })
	e.At(Time(20), func() { ran = append(ran, 20) })
	e.At(Time(30), func() { ran = append(ran, 30) })
	e.RunBefore(Time(20))
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("RunBefore(20) ran %v, want [10]", ran)
	}
	if e.Now() != Time(20) {
		t.Fatalf("now %v after RunBefore(20)", e.Now())
	}
	e.RunUntil(Time(20))
	if len(ran) != 2 || ran[1] != 20 {
		t.Fatalf("RunUntil(20) ran %v, want [10 20]", ran)
	}
	if got := e.Processed(); got != 2 {
		t.Fatalf("Processed = %d, want 2", got)
	}
}
