package msg

import "testing"

func BenchmarkEncodeViewerState(b *testing.B) {
	vs := &ViewerState{Viewer: 7, Instance: 99, File: 4, Block: 1234,
		Slot: 17, PlaySeq: 55, Due: 1234567890, Bitrate: 2_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Encode(vs)
		if len(buf) != vs.Size() {
			b.Fatal("size mismatch")
		}
	}
}

func BenchmarkDecodeViewerState(b *testing.B) {
	buf := Encode(&ViewerState{Viewer: 7, Instance: 99, Due: 42})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBatch32(b *testing.B) {
	batch := &Batch{}
	for i := 0; i < 32; i++ {
		batch.Msgs = append(batch.Msgs, &ViewerState{Viewer: ViewerID(i), Due: int64(i)})
	}
	b.ReportAllocs()
	b.SetBytes(int64(batch.Size()))
	for i := 0; i < b.N; i++ {
		Encode(batch)
	}
}

func BenchmarkDecodeBatch32(b *testing.B) {
	batch := &Batch{}
	for i := 0; i < 32; i++ {
		batch.Msgs = append(batch.Msgs, &ViewerState{Viewer: ViewerID(i), Due: int64(i)})
	}
	buf := Encode(batch)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
