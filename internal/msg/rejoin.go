package msg

import "fmt"

// The rejoin handshake is the anti-entropy view transfer a cold-restarted
// cub runs against its ring neighbours. The paper's deadman protocol
// (§2.3) only covers detecting a death and shifting the mirror load; the
// return path — rebuilding the restarted cub's sliding-window view and
// handing its mirror load back — is this three-message exchange:
//
//	RejoinRequest  restarted cub → each monitored neighbour
//	RejoinReply    neighbour → restarted cub (reconstructed states)
//	RejoinConfirm  restarted cub → neighbour (states it installed; the
//	               neighbour retires the matching mirror entries)

// RejoinRequest announces a restarted cub's new epoch to a ring
// neighbour and asks for the viewer states landing in its window.
type RejoinRequest struct {
	From  NodeID
	Epoch int32
}

const rejoinRequestSize = 4 + 4

func (*RejoinRequest) Type() Type { return TRejoinRequest }
func (*RejoinRequest) Size() int  { return 1 + rejoinRequestSize }

func (r *RejoinRequest) encode(b []byte) []byte {
	b = putU32(b, uint32(r.From))
	b = putU32(b, uint32(r.Epoch))
	return b
}

func (r *RejoinRequest) decode(b []byte) ([]byte, error) {
	if len(b) < rejoinRequestSize {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	r.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	r.Epoch = int32(u32)
	return b, nil
}

// RejoinReply carries the primary viewer states a neighbour reconstructed
// for the requester's disks: re-derived next hops of entries it had
// already forwarded into the dead window, plus primaries rebuilt from the
// mirror pieces it is covering. ForEpoch echoes the requester's epoch so
// a reply to an older incarnation is discarded.
type RejoinReply struct {
	From     NodeID
	ForEpoch int32
	States   []ViewerState
}

func (*RejoinReply) Type() Type { return TRejoinReply }

func (r *RejoinReply) Size() int {
	return 1 + 4 + 4 + 4 + len(r.States)*viewerStateSize
}

func (r *RejoinReply) encode(b []byte) []byte {
	b = putU32(b, uint32(r.From))
	b = putU32(b, uint32(r.ForEpoch))
	b = encodeStates(b, r.States)
	return b
}

func (r *RejoinReply) decode(b []byte) ([]byte, error) {
	if len(b) < 4+4+4 {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	r.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	r.ForEpoch = int32(u32)
	var err error
	r.States, b, err = decodeStates(b)
	return b, err
}

// RejoinConfirm tells a covering cub which transferred states the
// restarted primary now owns, so the cub can retire the matching mirror
// entries (mirror-load handback).
type RejoinConfirm struct {
	From   NodeID
	Epoch  int32
	States []ViewerState
}

func (*RejoinConfirm) Type() Type { return TRejoinConfirm }

func (c *RejoinConfirm) Size() int {
	return 1 + 4 + 4 + 4 + len(c.States)*viewerStateSize
}

func (c *RejoinConfirm) encode(b []byte) []byte {
	b = putU32(b, uint32(c.From))
	b = putU32(b, uint32(c.Epoch))
	b = encodeStates(b, c.States)
	return b
}

func (c *RejoinConfirm) decode(b []byte) ([]byte, error) {
	if len(b) < 4+4+4 {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	c.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	c.Epoch = int32(u32)
	var err error
	c.States, b, err = decodeStates(b)
	return b, err
}

func encodeStates(b []byte, states []ViewerState) []byte {
	b = putU32(b, uint32(len(states)))
	for i := range states {
		b = states[i].encode(b)
	}
	return b
}

func decodeStates(b []byte) ([]ViewerState, []byte, error) {
	u32, b, err := getU32(b)
	if err != nil {
		return nil, nil, err
	}
	n := int(u32)
	if n < 0 || n > 1<<20 {
		return nil, nil, fmt.Errorf("msg: unreasonable state count %d", n)
	}
	states := make([]ViewerState, n)
	for i := 0; i < n; i++ {
		if b, err = states[i].decode(b); err != nil {
			return nil, nil, err
		}
	}
	return states, b, nil
}
