package msg

import "fmt"

// BlockData carries one block (or declustered mirror piece) to a viewer
// over the real-time TCP transport. The simulator models the data path
// analytically, but tigerd sends real frames: a descriptor plus a
// truncated test-pattern payload standing in for the video bits (the
// paper's measurement clients verified arrival, not pixels).
type BlockData struct {
	Viewer   ViewerID
	Instance InstanceID
	File     FileID
	Block    int32
	PlaySeq  int32
	Part     int8
	Parts    int8
	Mirror   bool
	Bytes    int64 // the block's true size; Payload may be truncated
	Payload  []byte
}

func (*BlockData) Type() Type { return TBlockData }

func (b *BlockData) Size() int {
	return 1 + 8 + 8 + 4 + 4 + 4 + 1 + 1 + 1 + 8 + 4 + len(b.Payload)
}

func (b *BlockData) encode(buf []byte) []byte {
	buf = putU64(buf, uint64(b.Viewer))
	buf = putU64(buf, uint64(b.Instance))
	buf = putU32(buf, uint32(b.File))
	buf = putU32(buf, uint32(b.Block))
	buf = putU32(buf, uint32(b.PlaySeq))
	buf = putU8(buf, uint8(b.Part))
	buf = putU8(buf, uint8(b.Parts))
	buf = putBool(buf, b.Mirror)
	buf = putU64(buf, uint64(b.Bytes))
	buf = putU32(buf, uint32(len(b.Payload)))
	return append(buf, b.Payload...)
}

func (b *BlockData) decode(buf []byte) ([]byte, error) {
	u64, buf, err := getU64(buf)
	if err != nil {
		return nil, err
	}
	b.Viewer = ViewerID(u64)
	if u64, buf, err = getU64(buf); err != nil {
		return nil, err
	}
	b.Instance = InstanceID(u64)
	var u32 uint32
	if u32, buf, err = getU32(buf); err != nil {
		return nil, err
	}
	b.File = FileID(int32(u32))
	if u32, buf, err = getU32(buf); err != nil {
		return nil, err
	}
	b.Block = int32(u32)
	if u32, buf, err = getU32(buf); err != nil {
		return nil, err
	}
	b.PlaySeq = int32(u32)
	var u8 uint8
	if u8, buf, err = getU8(buf); err != nil {
		return nil, err
	}
	b.Part = int8(u8)
	if u8, buf, err = getU8(buf); err != nil {
		return nil, err
	}
	b.Parts = int8(u8)
	if u8, buf, err = getU8(buf); err != nil {
		return nil, err
	}
	b.Mirror = u8 != 0
	if u64, buf, err = getU64(buf); err != nil {
		return nil, err
	}
	b.Bytes = int64(u64)
	if u32, buf, err = getU32(buf); err != nil {
		return nil, err
	}
	n := int(u32)
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("msg: unreasonable payload length %d", n)
	}
	if len(buf) < n {
		return nil, errShort
	}
	b.Payload = append([]byte(nil), buf[:n]...)
	return buf[n:], nil
}

// ClockSync distributes the system epoch from the controller — "the
// system clock master" (§2.1) — to cubs joining a real-time deployment.
type ClockSync struct {
	EpochUnixNano int64
}

func (*ClockSync) Type() Type { return TClockSync }
func (*ClockSync) Size() int  { return 1 + 8 }

func (c *ClockSync) encode(buf []byte) []byte {
	return putU64(buf, uint64(c.EpochUnixNano))
}

func (c *ClockSync) decode(buf []byte) ([]byte, error) {
	u64, buf, err := getU64(buf)
	if err != nil {
		return nil, err
	}
	c.EpochUnixNano = int64(u64)
	return buf, nil
}

// Hello identifies the sender on a freshly opened transport connection
// and announces its liveness epoch, so a peer learns about a restarted
// incarnation from the very first frame of the new connection.
type Hello struct {
	From  NodeID
	Epoch int32
}

func (*Hello) Type() Type { return THello }
func (*Hello) Size() int  { return 1 + 4 + 4 }

func (h *Hello) encode(buf []byte) []byte {
	buf = putU32(buf, uint32(h.From))
	return putU32(buf, uint32(h.Epoch))
}

func (h *Hello) decode(buf []byte) ([]byte, error) {
	if len(buf) < 4+4 {
		return nil, errShort
	}
	u32, buf, _ := getU32(buf)
	h.From = NodeID(int32(u32))
	u32, buf, _ = getU32(buf)
	h.Epoch = int32(u32)
	return buf, nil
}
