// Package msg defines the control messages exchanged by Tiger nodes and a
// compact binary codec for them.
//
// The same encoding is used on the real TCP transport (internal/wire) and
// for byte-accurate control-traffic accounting in the simulator: the
// paper's Figures 8 and 9 plot control bytes per second, so message sizes
// must be faithful (§3.3 assumes ~100-byte viewer states).
package msg

import (
	"encoding/binary"
	"fmt"
)

// NodeID identifies a machine in a Tiger system. Cubs are numbered
// 0..n-1; the controller is node -1.
type NodeID int32

// Controller is the NodeID of the Tiger controller machine.
const Controller NodeID = -1

func (n NodeID) String() string {
	if n == Controller {
		return "controller"
	}
	return fmt.Sprintf("cub%d", int32(n))
}

// ViewerID identifies a client endpoint (the paper's "address of the
// viewer").
type ViewerID int64

// InstanceID identifies one particular start-play request by a viewer.
// The deschedule semantics of §4.1.2 are per instance: "if this instance
// of viewer is in this schedule slot, remove the viewer".
type InstanceID int64

// FileID names a content file.
type FileID int32

// Type tags a message on the wire.
type Type uint8

const (
	TViewerState Type = iota + 1
	TDeschedule
	TStartPlay
	TStartAck
	THeartbeat
	TReserveReq
	TReserveResp
	TBatch
	TBlockData
	TClockSync
	THello
	TRejoinRequest
	TRejoinReply
	TRejoinConfirm
	TMoveOrder
	TMoveData
	TMoveCommit
	TMoveNack
	TCubDown
	TPark
	TParkAck
	TResume
	TScavengeReq
	TScavengeReply
)

func (t Type) String() string {
	switch t {
	case TViewerState:
		return "ViewerState"
	case TDeschedule:
		return "Deschedule"
	case TStartPlay:
		return "StartPlay"
	case TStartAck:
		return "StartAck"
	case THeartbeat:
		return "Heartbeat"
	case TReserveReq:
		return "ReserveReq"
	case TReserveResp:
		return "ReserveResp"
	case TBatch:
		return "Batch"
	case TBlockData:
		return "BlockData"
	case TClockSync:
		return "ClockSync"
	case THello:
		return "Hello"
	case TRejoinRequest:
		return "RejoinRequest"
	case TRejoinReply:
		return "RejoinReply"
	case TRejoinConfirm:
		return "RejoinConfirm"
	case TMoveOrder:
		return "MoveOrder"
	case TMoveData:
		return "MoveData"
	case TMoveCommit:
		return "MoveCommit"
	case TMoveNack:
		return "MoveNack"
	case TCubDown:
		return "CubDown"
	case TPark:
		return "Park"
	case TParkAck:
		return "ParkAck"
	case TResume:
		return "Resume"
	case TScavengeReq:
		return "ScavengeReq"
	case TScavengeReply:
		return "ScavengeReply"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Message is implemented by every Tiger control message.
type Message interface {
	Type() Type
	// Size returns the exact encoded size in bytes, used for traffic
	// accounting without marshalling.
	Size() int
	encode(b []byte) []byte
	decode(b []byte) ([]byte, error)
}

// ViewerState is the schedule-entry record gossiped around the ring of
// cubs (§4.1.1). It tells the receiving cub to send block Block of file
// File to Viewer when the slot's time arrives.
type ViewerState struct {
	Viewer   ViewerID
	Instance InstanceID
	Addr     [16]byte // viewer network address (opaque bookkeeping)
	File     FileID
	Block    int32 // block index within the file due at the receiving disk
	Slot     int32 // schedule slot number
	PlaySeq  int32 // blocks sent so far in this play request
	Due      int64 // ns: when the receiving disk's send of Block is due
	Bitrate  int32 // bits per second of the stream
	Mirror   bool  // true for mirror viewer states (§4.1.1)
	Part     int8  // mirror piece index, 0..decluster-1
	OrigDisk int32 // for mirror states: the failed disk holding the primary
	Epoch    int32 // liveness epoch under which this state was produced
	Trace    uint8 // causal-trace flags; non-zero marks the block traced
}

const viewerStateSize = 8 + 8 + 16 + 4 + 4 + 4 + 4 + 8 + 4 + 1 + 1 + 4 + 4 + 1

func (*ViewerState) Type() Type { return TViewerState }
func (*ViewerState) Size() int  { return 1 + viewerStateSize }

// Deschedule asks every cub that sees it to remove the given viewer
// instance from the given slot (§4.1.2). The operation is idempotent and
// harmless if the instance is not in the slot.
type Deschedule struct {
	Viewer   ViewerID
	Instance InstanceID
	Slot     int32
	Created  int64 // ns: when the deschedule was first issued
}

const descheduleSize = 8 + 8 + 4 + 8

func (*Deschedule) Type() Type { return TDeschedule }
func (*Deschedule) Size() int  { return 1 + descheduleSize }

// StartPlay is sent by the controller to the cub holding the first block
// the viewer wants, and to that cub's successor for redundancy (§4.1.3).
type StartPlay struct {
	Viewer     ViewerID
	Instance   InstanceID
	Addr       [16]byte
	File       FileID
	StartBlock int32
	Bitrate    int32
	Primary    bool  // true at the cub expected to do the insertion
	Issued     int64 // ns: when the controller received the request
	Trace      uint8 // causal-trace flags inherited by every viewer state
	Ctl        int32 // controller epoch; fences orders from a dead incarnation
}

const startPlaySize = 8 + 8 + 16 + 4 + 4 + 4 + 1 + 8 + 1 + 4

func (*StartPlay) Type() Type { return TStartPlay }
func (*StartPlay) Size() int  { return 1 + startPlaySize }

// StartAck tells the controller (and through it, the viewer) that the
// instance has been placed in a slot. Used for startup-latency metrics
// and so the redundant queue copy can be dropped.
type StartAck struct {
	Viewer   ViewerID
	Instance InstanceID
	Slot     int32
	By       NodeID
}

const startAckSize = 8 + 8 + 4 + 4

func (*StartAck) Type() Type { return TStartAck }
func (*StartAck) Size() int  { return 1 + startAckSize }

// Heartbeat is the deadman-protocol liveness beacon between cubs (§2.3).
type Heartbeat struct {
	From  NodeID
	Epoch int32
	Now   int64
}

const heartbeatSize = 4 + 4 + 8

func (*Heartbeat) Type() Type { return THeartbeat }
func (*Heartbeat) Size() int  { return 1 + heartbeatSize }

// ReserveReq asks the successor cub to reserve network-schedule capacity
// for a tentative multiple-bitrate insertion (§4.2).
type ReserveReq struct {
	Viewer   ViewerID
	Instance InstanceID
	Start    int64 // ns: proposed schedule position of the entry
	Bitrate  int32
	Seq      int32
	Trace    uint8 // causal-trace flag; rides the reservation so the successor's hops are traced too
}

const reserveReqSize = 8 + 8 + 8 + 4 + 4 + 1

func (*ReserveReq) Type() Type { return TReserveReq }
func (*ReserveReq) Size() int  { return 1 + reserveReqSize }

// ReserveResp confirms or rejects a tentative network-schedule insertion.
type ReserveResp struct {
	Instance InstanceID
	Seq      int32
	OK       bool
}

const reserveRespSize = 8 + 4 + 1

func (*ReserveResp) Type() Type { return TReserveResp }
func (*ReserveResp) Size() int  { return 1 + reserveRespSize }

// Batch groups several messages into one network send. Cubs use it to
// amortize per-message overhead when forwarding viewer states (§4.1.1:
// "group viewer states together into a single network message").
type Batch struct {
	Msgs []Message
}

func (*Batch) Type() Type { return TBatch }

func (b *Batch) Size() int {
	n := 1 + 4
	for _, m := range b.Msgs {
		n += m.Size()
	}
	return n
}

// --- codec ---

func putU8(b []byte, v uint8) []byte   { return append(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

var errShort = fmt.Errorf("msg: short buffer")

func getU8(b []byte) (uint8, []byte, error) {
	if len(b) < 1 {
		return 0, nil, errShort
	}
	return b[0], b[1:], nil
}
func getU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}
func getU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func (v *ViewerState) encode(b []byte) []byte {
	b = putU64(b, uint64(v.Viewer))
	b = putU64(b, uint64(v.Instance))
	b = append(b, v.Addr[:]...)
	b = putU32(b, uint32(v.File))
	b = putU32(b, uint32(v.Block))
	b = putU32(b, uint32(v.Slot))
	b = putU32(b, uint32(v.PlaySeq))
	b = putU64(b, uint64(v.Due))
	b = putU32(b, uint32(v.Bitrate))
	b = putBool(b, v.Mirror)
	b = putU8(b, uint8(v.Part))
	b = putU32(b, uint32(v.OrigDisk))
	b = putU32(b, uint32(v.Epoch))
	b = putU8(b, v.Trace)
	return b
}

func (v *ViewerState) decode(b []byte) ([]byte, error) {
	if len(b) < viewerStateSize {
		return nil, errShort
	}
	var u64 uint64
	var u32 uint32
	var u8 uint8
	var err error
	if u64, b, err = getU64(b); err != nil {
		return nil, err
	}
	v.Viewer = ViewerID(u64)
	if u64, b, err = getU64(b); err != nil {
		return nil, err
	}
	v.Instance = InstanceID(u64)
	copy(v.Addr[:], b[:16])
	b = b[16:]
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.File = FileID(int32(u32))
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.Block = int32(u32)
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.Slot = int32(u32)
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.PlaySeq = int32(u32)
	if u64, b, err = getU64(b); err != nil {
		return nil, err
	}
	v.Due = int64(u64)
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.Bitrate = int32(u32)
	if u8, b, err = getU8(b); err != nil {
		return nil, err
	}
	v.Mirror = u8 != 0
	if u8, b, err = getU8(b); err != nil {
		return nil, err
	}
	v.Part = int8(u8)
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.OrigDisk = int32(u32)
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	v.Epoch = int32(u32)
	if u8, b, err = getU8(b); err != nil {
		return nil, err
	}
	v.Trace = u8
	return b, nil
}

func (d *Deschedule) encode(b []byte) []byte {
	b = putU64(b, uint64(d.Viewer))
	b = putU64(b, uint64(d.Instance))
	b = putU32(b, uint32(d.Slot))
	b = putU64(b, uint64(d.Created))
	return b
}

func (d *Deschedule) decode(b []byte) ([]byte, error) {
	if len(b) < descheduleSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	d.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	d.Instance = InstanceID(u64)
	u32, b, _ := getU32(b)
	d.Slot = int32(u32)
	u64, b, _ = getU64(b)
	d.Created = int64(u64)
	return b, nil
}

func (s *StartPlay) encode(b []byte) []byte {
	b = putU64(b, uint64(s.Viewer))
	b = putU64(b, uint64(s.Instance))
	b = append(b, s.Addr[:]...)
	b = putU32(b, uint32(s.File))
	b = putU32(b, uint32(s.StartBlock))
	b = putU32(b, uint32(s.Bitrate))
	b = putBool(b, s.Primary)
	b = putU64(b, uint64(s.Issued))
	b = putU8(b, s.Trace)
	b = putU32(b, uint32(s.Ctl))
	return b
}

func (s *StartPlay) decode(b []byte) ([]byte, error) {
	if len(b) < startPlaySize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	s.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	s.Instance = InstanceID(u64)
	copy(s.Addr[:], b[:16])
	b = b[16:]
	u32, b, _ := getU32(b)
	s.File = FileID(int32(u32))
	u32, b, _ = getU32(b)
	s.StartBlock = int32(u32)
	u32, b, _ = getU32(b)
	s.Bitrate = int32(u32)
	u8, b, _ := getU8(b)
	s.Primary = u8 != 0
	u64, b, _ = getU64(b)
	s.Issued = int64(u64)
	u8, b, _ = getU8(b)
	s.Trace = u8
	u32, b, _ = getU32(b)
	s.Ctl = int32(u32)
	return b, nil
}

func (a *StartAck) encode(b []byte) []byte {
	b = putU64(b, uint64(a.Viewer))
	b = putU64(b, uint64(a.Instance))
	b = putU32(b, uint32(a.Slot))
	b = putU32(b, uint32(a.By))
	return b
}

func (a *StartAck) decode(b []byte) ([]byte, error) {
	if len(b) < startAckSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	a.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	a.Instance = InstanceID(u64)
	u32, b, _ := getU32(b)
	a.Slot = int32(u32)
	u32, b, _ = getU32(b)
	a.By = NodeID(int32(u32))
	return b, nil
}

func (h *Heartbeat) encode(b []byte) []byte {
	b = putU32(b, uint32(h.From))
	b = putU32(b, uint32(h.Epoch))
	b = putU64(b, uint64(h.Now))
	return b
}

func (h *Heartbeat) decode(b []byte) ([]byte, error) {
	if len(b) < heartbeatSize {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	h.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	h.Epoch = int32(u32)
	u64, b, _ := getU64(b)
	h.Now = int64(u64)
	return b, nil
}

func (r *ReserveReq) encode(b []byte) []byte {
	b = putU64(b, uint64(r.Viewer))
	b = putU64(b, uint64(r.Instance))
	b = putU64(b, uint64(r.Start))
	b = putU32(b, uint32(r.Bitrate))
	b = putU32(b, uint32(r.Seq))
	b = append(b, r.Trace)
	return b
}

func (r *ReserveReq) decode(b []byte) ([]byte, error) {
	if len(b) < reserveReqSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	r.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	r.Instance = InstanceID(u64)
	u64, b, _ = getU64(b)
	r.Start = int64(u64)
	u32, b, _ := getU32(b)
	r.Bitrate = int32(u32)
	u32, b, _ = getU32(b)
	r.Seq = int32(u32)
	r.Trace = b[0]
	b = b[1:]
	return b, nil
}

func (r *ReserveResp) encode(b []byte) []byte {
	b = putU64(b, uint64(r.Instance))
	b = putU32(b, uint32(r.Seq))
	b = putBool(b, r.OK)
	return b
}

func (r *ReserveResp) decode(b []byte) ([]byte, error) {
	if len(b) < reserveRespSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	r.Instance = InstanceID(u64)
	u32, b, _ := getU32(b)
	r.Seq = int32(u32)
	u8, b, _ := getU8(b)
	r.OK = u8 != 0
	return b, nil
}

func (bt *Batch) encode(b []byte) []byte {
	b = putU32(b, uint32(len(bt.Msgs)))
	for _, m := range bt.Msgs {
		b = Append(b, m)
	}
	return b
}

func (bt *Batch) decode(b []byte) ([]byte, error) {
	u32, b, err := getU32(b)
	if err != nil {
		return nil, err
	}
	n := int(u32)
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("msg: unreasonable batch length %d", n)
	}
	bt.Msgs = make([]Message, 0, n)
	for i := 0; i < n; i++ {
		var m Message
		m, b, err = Consume(b)
		if err != nil {
			return nil, err
		}
		bt.Msgs = append(bt.Msgs, m)
	}
	return b, nil
}

// Append encodes m (type tag followed by body) onto b and returns the
// extended slice.
func Append(b []byte, m Message) []byte {
	b = append(b, byte(m.Type()))
	return m.encode(b)
}

// AppendEncode encodes m into a caller-supplied buffer, appending the
// full encoding (type tag plus body) and returning the extended slice.
// It is the zero-allocation counterpart of Encode: pass a recycled
// buffer truncated to length zero and no garbage is produced once the
// buffer has grown to the working-set frame size. The hot transport
// paths (wire.Conn, the cubs' batch forwarding) route through it.
func AppendEncode(b []byte, m Message) []byte {
	return Append(b, m)
}

// Encode returns the full encoding of m in a freshly allocated buffer.
// Steady-state paths should prefer AppendEncode with a reused buffer.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, m.Size()), m)
}

// Consume decodes one message from the front of b, returning the message
// and the remaining bytes.
func Consume(b []byte) (Message, []byte, error) {
	t, b, err := getU8(b)
	if err != nil {
		return nil, nil, err
	}
	var m Message
	switch Type(t) {
	case TViewerState:
		m = &ViewerState{}
	case TDeschedule:
		m = &Deschedule{}
	case TStartPlay:
		m = &StartPlay{}
	case TStartAck:
		m = &StartAck{}
	case THeartbeat:
		m = &Heartbeat{}
	case TReserveReq:
		m = &ReserveReq{}
	case TReserveResp:
		m = &ReserveResp{}
	case TBatch:
		m = &Batch{}
	case TBlockData:
		m = &BlockData{}
	case TClockSync:
		m = &ClockSync{}
	case THello:
		m = &Hello{}
	case TRejoinRequest:
		m = &RejoinRequest{}
	case TRejoinReply:
		m = &RejoinReply{}
	case TRejoinConfirm:
		m = &RejoinConfirm{}
	case TMoveOrder:
		m = &MoveOrder{}
	case TMoveData:
		m = &MoveData{}
	case TMoveCommit:
		m = &MoveCommit{}
	case TMoveNack:
		m = &MoveNack{}
	case TCubDown:
		m = &CubDown{}
	case TPark:
		m = &Park{}
	case TParkAck:
		m = &ParkAck{}
	case TResume:
		m = &Resume{}
	case TScavengeReq:
		m = &ScavengeReq{}
	case TScavengeReply:
		m = &ScavengeReply{}
	default:
		return nil, nil, fmt.Errorf("msg: unknown message type %d", t)
	}
	rest, err := m.decode(b)
	if err != nil {
		return nil, nil, err
	}
	return m, rest, nil
}

// Decode decodes exactly one message from b, failing on trailing bytes.
func Decode(b []byte) (Message, error) {
	m, rest, err := Consume(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("msg: %d trailing bytes after %v", len(rest), m.Type())
	}
	return m, nil
}
