package msg

import "fmt"

// The degradation-governor protocol. When correlated failures exhaust
// mirror coverage (a second death inside a dead cub's decluster span),
// the controller's governor parks the fewest streams whose trajectories
// cross the unservable disks, so every surviving stream keeps a clean
// schedule. All four messages carry the governor's fence — a counter
// bumped on every capacity-loss event — so an ack or a resume from a
// previous degradation episode is discarded rather than double-counted.
//
//	CubDown  controller → every live cub (advisory death notice)
//	Park     controller → serving cub + successor (remove the stream)
//	ParkAck  cub → controller
//	Resume   controller → new primary + successor (re-admitted stream)

// CubDown is the controller's advisory that the listed cubs died at
// once — a breaker trip, not independent deadman timeouts. Receiving
// cubs mark them dead immediately instead of waiting out the deadman
// window, which is what lets mirror takeover start before any viewer
// deadline passes.
type CubDown struct {
	Fence int32
	Down  []NodeID
}

func (*CubDown) Type() Type { return TCubDown }

func (m *CubDown) Size() int { return 1 + 4 + 4 + 4*len(m.Down) }

func (m *CubDown) encode(b []byte) []byte {
	b = putU32(b, uint32(m.Fence))
	b = putU32(b, uint32(len(m.Down)))
	for _, z := range m.Down {
		b = putU32(b, uint32(z))
	}
	return b
}

func (m *CubDown) decode(b []byte) ([]byte, error) {
	if len(b) < 4+4 {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	m.Fence = int32(u32)
	u32, b, _ = getU32(b)
	n := int(u32)
	if n < 0 || n > 1<<20 {
		return nil, fmt.Errorf("msg: unreasonable down-cub count %d", n)
	}
	m.Down = make([]NodeID, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, errShort
		}
		u32, b, _ = getU32(b)
		m.Down[i] = NodeID(int32(u32))
	}
	return b, nil
}

// Park orders the cub currently serving the stream (and, like a
// deschedule, its successor, in case the state already hopped) to
// remove the instance from its schedule. Unlike a deschedule it also
// installs a tombstone for the instance so states still gossiping
// around the ring die on arrival. The File/ResumeBlock/Bitrate fields
// are the viewer's full re-admission ticket: every live cub retains
// them until the matching Resume, so a controller takeover can scavenge
// the parked set instead of losing it with the dead incarnation.
type Park struct {
	Viewer      ViewerID
	Instance    InstanceID
	Slot        int32 // slot the controller believes the stream occupies; <0 if queued
	Fence       int32
	File        FileID
	ResumeBlock int32 // delivered watermark the stream resumes at
	Bitrate     int32
	Ctl         int32 // controller epoch
}

const parkSize = 8 + 8 + 4 + 4 + 4 + 4 + 4 + 4

func (*Park) Type() Type { return TPark }
func (*Park) Size() int  { return 1 + parkSize }

func (m *Park) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Viewer))
	b = putU64(b, uint64(m.Instance))
	b = putU32(b, uint32(m.Slot))
	b = putU32(b, uint32(m.Fence))
	b = putU32(b, uint32(m.File))
	b = putU32(b, uint32(m.ResumeBlock))
	b = putU32(b, uint32(m.Bitrate))
	b = putU32(b, uint32(m.Ctl))
	return b
}

func (m *Park) decode(b []byte) ([]byte, error) {
	if len(b) < parkSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	m.Instance = InstanceID(u64)
	u32, b, _ := getU32(b)
	m.Slot = int32(u32)
	u32, b, _ = getU32(b)
	m.Fence = int32(u32)
	u32, b, _ = getU32(b)
	m.File = FileID(int32(u32))
	u32, b, _ = getU32(b)
	m.ResumeBlock = int32(u32)
	u32, b, _ = getU32(b)
	m.Bitrate = int32(u32)
	u32, b, _ = getU32(b)
	m.Ctl = int32(u32)
	return b, nil
}

// ParkAck confirms a Park. By identifies the acking cub; the governor
// counts each instance parked once however many cubs ack it.
type ParkAck struct {
	Instance InstanceID
	Fence    int32
	By       NodeID
}

const parkAckSize = 8 + 4 + 4

func (*ParkAck) Type() Type { return TParkAck }
func (*ParkAck) Size() int  { return 1 + parkAckSize }

func (m *ParkAck) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Instance))
	b = putU32(b, uint32(m.Fence))
	b = putU32(b, uint32(m.By))
	return b
}

func (m *ParkAck) decode(b []byte) ([]byte, error) {
	if len(b) < parkAckSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Instance = InstanceID(u64)
	u32, b, _ := getU32(b)
	m.Fence = int32(u32)
	u32, b, _ = getU32(b)
	m.By = NodeID(int32(u32))
	return b, nil
}

// Resume tells the new primary (and successor) that a parked viewer is
// back under a fresh instance: clear the parked tombstone for the old
// instance so the viewer's history is clean. The stream itself restarts
// through the ordinary StartPlay path; Resume is bookkeeping.
type Resume struct {
	Viewer      ViewerID
	OldInstance InstanceID
	NewInstance InstanceID
	Fence       int32
	Ctl         int32 // controller epoch
}

const resumeSize = 8 + 8 + 8 + 4 + 4

func (*Resume) Type() Type { return TResume }
func (*Resume) Size() int  { return 1 + resumeSize }

func (m *Resume) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Viewer))
	b = putU64(b, uint64(m.OldInstance))
	b = putU64(b, uint64(m.NewInstance))
	b = putU32(b, uint32(m.Fence))
	b = putU32(b, uint32(m.Ctl))
	return b
}

func (m *Resume) decode(b []byte) ([]byte, error) {
	if len(b) < resumeSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Viewer = ViewerID(u64)
	u64, b, _ = getU64(b)
	m.OldInstance = InstanceID(u64)
	u64, b, _ = getU64(b)
	m.NewInstance = InstanceID(u64)
	u32, b, _ := getU32(b)
	m.Fence = int32(u32)
	u32, b, _ = getU32(b)
	m.Ctl = int32(u32)
	return b, nil
}
