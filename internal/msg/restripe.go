package msg

// The live-restripe move protocol transfers block ownership between cubs
// while both keep serving. It reuses the epoch-fencing discipline of the
// rejoin path: every cub→cub or cub→controller move message carries the
// sender's liveness epoch, so a copy issued before a crash or partition
// is refused by the stale-epoch gate at the receiver and the coordinator
// simply re-orders the move. The exchange is:
//
//	MoveOrder   controller → source cub  (copy this block to DstCub)
//	MoveData    source cub → dest cub    (fenced handoff; bulk modeled
//	                                      at the disk layer, the wire
//	                                      message is header-sized)
//	MoveCommit  dest cub → controller    (block durable at destination;
//	                                      ownership flips in the new view)
//	MoveNack    source cub → controller  (source cannot serve the copy —
//	                                      disk failed or quarantined —
//	                                      re-route from a mirror)

// MoveOrder directs a source cub to copy one block (or one mirror piece,
// Part >= 0) from its local disk SrcIdx to disk DstIdx of cub DstCub.
// Disks are addressed by cub-local index so the order is meaningful to
// both sides regardless of which striping generation numbered them.
// Alt counts re-route attempts: Alt > 0 reads the block's redundant copy
// instead of the one a previous attempt failed on.
type MoveOrder struct {
	Fence  int64 // restripe run identifier
	Seq    int32 // move index within the run
	File   FileID
	Block  int32
	Part   int8 // -1 for the primary copy, else mirror piece index
	SrcIdx int8 // cub-local source disk index
	DstCub NodeID
	DstIdx int8 // cub-local destination disk index
	Alt    uint8
	Ctl    int32 // controller epoch; fences orders from a dead incarnation
}

const moveOrderSize = 8 + 4 + 4 + 4 + 1 + 1 + 4 + 1 + 1 + 4

func (*MoveOrder) Type() Type { return TMoveOrder }
func (*MoveOrder) Size() int  { return 1 + moveOrderSize }

func (m *MoveOrder) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Fence))
	b = putU32(b, uint32(m.Seq))
	b = putU32(b, uint32(m.File))
	b = putU32(b, uint32(m.Block))
	b = putU8(b, uint8(m.Part))
	b = putU8(b, uint8(m.SrcIdx))
	b = putU32(b, uint32(m.DstCub))
	b = putU8(b, uint8(m.DstIdx))
	b = putU8(b, m.Alt)
	b = putU32(b, uint32(m.Ctl))
	return b
}

func (m *MoveOrder) decode(b []byte) ([]byte, error) {
	if len(b) < moveOrderSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Fence = int64(u64)
	u32, b, _ := getU32(b)
	m.Seq = int32(u32)
	u32, b, _ = getU32(b)
	m.File = FileID(int32(u32))
	u32, b, _ = getU32(b)
	m.Block = int32(u32)
	u8, b, _ := getU8(b)
	m.Part = int8(u8)
	u8, b, _ = getU8(b)
	m.SrcIdx = int8(u8)
	u32, b, _ = getU32(b)
	m.DstCub = NodeID(int32(u32))
	u8, b, _ = getU8(b)
	m.DstIdx = int8(u8)
	u8, b, _ = getU8(b)
	m.Alt = u8
	u32, b, _ = getU32(b)
	m.Ctl = int32(u32)
	return b, nil
}

// MoveData is the fenced block handoff from source to destination cub.
// Size covers the header only: the block payload itself is modeled as
// disk time at both ends (a copy consumes a read at the source and a
// write at the destination), keeping the control-traffic accounting of
// §3.3 honest — data bytes never rode the control network in Tiger.
type MoveData struct {
	Fence  int64
	Seq    int32
	File   FileID
	Block  int32
	Part   int8
	DstIdx int8 // cub-local destination disk index
	From   NodeID
	Epoch  int32 // source cub's liveness epoch (fencing)
}

const moveDataSize = 8 + 4 + 4 + 4 + 1 + 1 + 4 + 4

func (*MoveData) Type() Type { return TMoveData }
func (*MoveData) Size() int  { return 1 + moveDataSize }

func (m *MoveData) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Fence))
	b = putU32(b, uint32(m.Seq))
	b = putU32(b, uint32(m.File))
	b = putU32(b, uint32(m.Block))
	b = putU8(b, uint8(m.Part))
	b = putU8(b, uint8(m.DstIdx))
	b = putU32(b, uint32(m.From))
	b = putU32(b, uint32(m.Epoch))
	return b
}

func (m *MoveData) decode(b []byte) ([]byte, error) {
	if len(b) < moveDataSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Fence = int64(u64)
	u32, b, _ := getU32(b)
	m.Seq = int32(u32)
	u32, b, _ = getU32(b)
	m.File = FileID(int32(u32))
	u32, b, _ = getU32(b)
	m.Block = int32(u32)
	u8, b, _ := getU8(b)
	m.Part = int8(u8)
	u8, b, _ = getU8(b)
	m.DstIdx = int8(u8)
	u32, b, _ = getU32(b)
	m.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	m.Epoch = int32(u32)
	return b, nil
}

// MoveCommit tells the coordinator the destination has the block on
// disk. Ownership of the block in the new striping generation flips on
// receipt; until then the source keeps serving it under the old one.
type MoveCommit struct {
	Fence int64
	Seq   int32
	From  NodeID
	Epoch int32
}

const moveCommitSize = 8 + 4 + 4 + 4

func (*MoveCommit) Type() Type { return TMoveCommit }
func (*MoveCommit) Size() int  { return 1 + moveCommitSize }

func (m *MoveCommit) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Fence))
	b = putU32(b, uint32(m.Seq))
	b = putU32(b, uint32(m.From))
	b = putU32(b, uint32(m.Epoch))
	return b
}

func (m *MoveCommit) decode(b []byte) ([]byte, error) {
	if len(b) < moveCommitSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Fence = int64(u64)
	u32, b, _ := getU32(b)
	m.Seq = int32(u32)
	u32, b, _ = getU32(b)
	m.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	m.Epoch = int32(u32)
	return b, nil
}

// Reason codes for MoveNack.
const (
	NackDiskFailed      uint8 = 1 // source disk failed or was retired
	NackDiskQuarantined uint8 = 2 // source disk quarantined by gray-failure monitor
	NackReadError       uint8 = 3 // the copy read itself errored
)

// MoveNack reports that the source cub cannot produce the copy; the
// coordinator re-routes the move to the block's redundant copy.
type MoveNack struct {
	Fence  int64
	Seq    int32
	From   NodeID
	Reason uint8
}

const moveNackSize = 8 + 4 + 4 + 1

func (*MoveNack) Type() Type { return TMoveNack }
func (*MoveNack) Size() int  { return 1 + moveNackSize }

func (m *MoveNack) encode(b []byte) []byte {
	b = putU64(b, uint64(m.Fence))
	b = putU32(b, uint32(m.Seq))
	b = putU32(b, uint32(m.From))
	b = putU8(b, m.Reason)
	return b
}

func (m *MoveNack) decode(b []byte) ([]byte, error) {
	if len(b) < moveNackSize {
		return nil, errShort
	}
	u64, b, _ := getU64(b)
	m.Fence = int64(u64)
	u32, b, _ := getU32(b)
	m.Seq = int32(u32)
	u32, b, _ = getU32(b)
	m.From = NodeID(int32(u32))
	u8, b, _ := getU8(b)
	m.Reason = u8
	return b, nil
}
