package msg

// The controller-failover scavenge protocol. The controller carries no
// durable state the cubs do not already hold: the distributed schedule
// *is* the system of record. A restarted (or standby) controller
// incarnation therefore rebuilds its plays map, per-generation load,
// parked-stream set and in-flight restripe bookkeeping by broadcasting
// a ScavengeReq stamped with its new controller epoch and folding each
// cub's inventory reply. Replies echo the epoch so a reply raced to a
// still-newer incarnation is discarded, and the request itself raises
// every cub's controller-epoch high-water mark, fencing any order the
// dead incarnation still has in flight.
//
//	ScavengeReq    new controller incarnation → every cub
//	ScavengeReply  cub → controller (active plays + parked tickets)

// ScavengeReq announces a new controller incarnation and asks the cub
// for its schedule inventory.
type ScavengeReq struct {
	Epoch int32 // the new controller epoch
}

const scavengeReqSize = 4

func (*ScavengeReq) Type() Type { return TScavengeReq }
func (*ScavengeReq) Size() int  { return 1 + scavengeReqSize }

func (s *ScavengeReq) encode(b []byte) []byte {
	return putU32(b, uint32(s.Epoch))
}

func (s *ScavengeReq) decode(b []byte) ([]byte, error) {
	if len(b) < scavengeReqSize {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	s.Epoch = int32(u32)
	return b, nil
}

// ScavengedPark is one parked stream's re-admission ticket as retained
// by a cub: everything the governor needs to resume the viewer at its
// delivered watermark. Cubs hold these from the Park broadcast until
// the matching Resume arrives, precisely so a controller takeover can
// recover them.
type ScavengedPark struct {
	Viewer      ViewerID
	Instance    InstanceID // the parked (old) instance
	File        FileID
	ResumeBlock int32
	Bitrate     int32
	Fence       int32 // governor fence the park was issued under
}

const scavengedParkSize = 8 + 8 + 4 + 4 + 4 + 4

// ScavengeReply is one cub's inventory: a representative viewer state
// per play instance in its window (the furthest-progress state it
// holds), its parked-stream tickets, and the highest governor fence it
// has seen. ForEpoch echoes the requesting incarnation's epoch.
type ScavengeReply struct {
	From     NodeID
	ForEpoch int32
	GovFence int32
	States   []ViewerState
	Parked   []ScavengedPark
}

func (*ScavengeReply) Type() Type { return TScavengeReply }

func (r *ScavengeReply) Size() int {
	return 1 + 4 + 4 + 4 + 4 + len(r.States)*viewerStateSize + 4 + len(r.Parked)*scavengedParkSize
}

func (r *ScavengeReply) encode(b []byte) []byte {
	b = putU32(b, uint32(r.From))
	b = putU32(b, uint32(r.ForEpoch))
	b = putU32(b, uint32(r.GovFence))
	b = encodeStates(b, r.States)
	b = putU32(b, uint32(len(r.Parked)))
	for i := range r.Parked {
		p := &r.Parked[i]
		b = putU64(b, uint64(p.Viewer))
		b = putU64(b, uint64(p.Instance))
		b = putU32(b, uint32(p.File))
		b = putU32(b, uint32(p.ResumeBlock))
		b = putU32(b, uint32(p.Bitrate))
		b = putU32(b, uint32(p.Fence))
	}
	return b
}

func (r *ScavengeReply) decode(b []byte) ([]byte, error) {
	if len(b) < 4+4+4+4 {
		return nil, errShort
	}
	u32, b, _ := getU32(b)
	r.From = NodeID(int32(u32))
	u32, b, _ = getU32(b)
	r.ForEpoch = int32(u32)
	u32, b, _ = getU32(b)
	r.GovFence = int32(u32)
	var err error
	if r.States, b, err = decodeStates(b); err != nil {
		return nil, err
	}
	if u32, b, err = getU32(b); err != nil {
		return nil, err
	}
	n := int(u32)
	if n < 0 || n > 1<<20 {
		return nil, errShort
	}
	r.Parked = make([]ScavengedPark, n)
	for i := range r.Parked {
		if len(b) < scavengedParkSize {
			return nil, errShort
		}
		p := &r.Parked[i]
		var u64 uint64
		u64, b, _ = getU64(b)
		p.Viewer = ViewerID(u64)
		u64, b, _ = getU64(b)
		p.Instance = InstanceID(u64)
		u32, b, _ = getU32(b)
		p.File = FileID(int32(u32))
		u32, b, _ = getU32(b)
		p.ResumeBlock = int32(u32)
		u32, b, _ = getU32(b)
		p.Bitrate = int32(u32)
		u32, b, _ = getU32(b)
		p.Fence = int32(u32)
	}
	return b, nil
}
