package msg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessages() []Message {
	return []Message{
		&ViewerState{
			Viewer: 7, Instance: 99, Addr: [16]byte{1, 2, 3}, File: 4,
			Block: 1234, Slot: 17, PlaySeq: 55, Due: 1234567890,
			Bitrate: 2_000_000, Mirror: true, Part: 3, OrigDisk: 41, Epoch: 2,
		},
		&Deschedule{Viewer: 1, Instance: 2, Slot: -1, Created: 42},
		&StartPlay{Viewer: 3, Instance: 4, Addr: [16]byte{9}, File: 5,
			StartBlock: 6, Bitrate: 7, Primary: true, Issued: 8},
		&StartAck{Viewer: 9, Instance: 10, Slot: 11, By: -1},
		&Heartbeat{From: 12, Epoch: 13, Now: 14},
		&ReserveReq{Viewer: 15, Instance: 16, Start: 17, Bitrate: 18, Seq: 19},
		&ReserveResp{Instance: 20, Seq: 21, OK: true},
		&Hello{From: 22, Epoch: 23},
		&RejoinRequest{From: 24, Epoch: 25},
		&RejoinReply{From: 26, ForEpoch: 27, States: []ViewerState{
			{Viewer: 28, Instance: 29, File: 30, Block: 31, Slot: 32,
				Due: 33, Bitrate: 34, OrigDisk: 35, Epoch: 36},
			{Viewer: 37, Instance: 38, Slot: 39, Due: 40},
		}},
		&RejoinConfirm{From: 41, Epoch: 42, States: []ViewerState{
			{Viewer: 43, Instance: 44, Slot: 45, Due: 46, OrigDisk: 47},
		}},
		&CubDown{Fence: 48, Down: []NodeID{5, 6}},
		&Park{Viewer: 49, Instance: 50, Slot: -1, Fence: 51,
			File: 2, ResumeBlock: 77, Bitrate: 2_000_000, Ctl: 3},
		&ParkAck{Instance: 52, Fence: 53, By: 54},
		&Resume{Viewer: 55, OldInstance: 56, NewInstance: 57, Fence: 58, Ctl: 3},
		&ScavengeReq{Epoch: 59},
		&ScavengeReply{From: 60, ForEpoch: 61, GovFence: 62,
			States: []ViewerState{
				{Viewer: 63, Instance: 64, File: 65, Block: 66, Slot: 67,
					Due: 68, Bitrate: 69, Epoch: 70},
			},
			Parked: []ScavengedPark{
				{Viewer: 71, Instance: 72, File: 73, ResumeBlock: 74,
					Bitrate: 75, Fence: 76},
			}},
	}
}

func TestRoundTripAll(t *testing.T) {
	for _, m := range sampleMessages() {
		b := Encode(m)
		if len(b) != m.Size() {
			t.Errorf("%v: encoded %d bytes, Size() says %d", m.Type(), len(b), m.Size())
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n in: %+v\nout: %+v", m.Type(), m, got)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	b := &Batch{Msgs: sampleMessages()}
	enc := Encode(b)
	if len(enc) != b.Size() {
		t.Errorf("batch encoded %d bytes, Size() says %d", len(enc), b.Size())
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	gb, ok := got.(*Batch)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if !reflect.DeepEqual(b.Msgs, gb.Msgs) {
		t.Error("batch contents mismatch")
	}
}

func TestNestedBatch(t *testing.T) {
	inner := &Batch{Msgs: []Message{&Heartbeat{From: 1}}}
	outer := &Batch{Msgs: []Message{inner, &Heartbeat{From: 2}}}
	got, err := Decode(Encode(outer))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outer, got) {
		t.Error("nested batch mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer decoded")
	}
	if _, err := Decode([]byte{0xFF, 1, 2}); err == nil {
		t.Error("unknown type decoded")
	}
	// Truncations of every sample must error, never panic.
	for _, m := range sampleMessages() {
		b := Encode(m)
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Errorf("%v truncated to %d bytes decoded successfully", m.Type(), cut)
			}
		}
		// Trailing garbage must also error.
		if _, err := Decode(append(append([]byte{}, b...), 0)); err == nil {
			t.Errorf("%v with trailing byte decoded", m.Type())
		}
	}
}

func TestConsumeSequence(t *testing.T) {
	var buf []byte
	msgs := sampleMessages()
	for _, m := range msgs {
		buf = Append(buf, m)
	}
	rest := buf
	for i := 0; len(rest) > 0; i++ {
		m, r, err := Consume(rest)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, msgs[i]) {
			t.Fatalf("message %d mismatch", i)
		}
		rest = r
	}
}

func TestViewerStateSizeIsPaperScale(t *testing.T) {
	// §3.3 sizes the control messages at about 100 bytes.
	s := (&ViewerState{}).Size()
	if s < 60 || s > 140 {
		t.Fatalf("viewer state is %d bytes; the paper's analysis assumes ~100", s)
	}
}

func TestQuickViewerStateRoundTrip(t *testing.T) {
	f := func(v ViewerState) bool {
		got, err := Decode(Encode(&v))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(&v, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDString(t *testing.T) {
	if Controller.String() != "controller" {
		t.Error(Controller.String())
	}
	if NodeID(3).String() != "cub3" {
		t.Error(NodeID(3).String())
	}
}

func TestTypeString(t *testing.T) {
	for _, m := range sampleMessages() {
		if bytes.Contains([]byte(m.Type().String()), []byte("Type(")) {
			t.Errorf("missing name for type %d", m.Type())
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Error("unknown type should format numerically")
	}
}

// TestCodecAllocBudget is the allocation budget of the codec hot path:
// encoding a ViewerState into a recycled buffer must be allocation-free,
// and decoding one must allocate only the message value itself.
func TestCodecAllocBudget(t *testing.T) {
	vs := &ViewerState{Viewer: 7, Instance: 99, File: 4, Block: 1234,
		Slot: 17, PlaySeq: 55, Due: 1234567890, Bitrate: 2_000_000, Epoch: 3}
	buf := make([]byte, 0, vs.Size())
	if a := testing.AllocsPerRun(200, func() {
		buf = AppendEncode(buf[:0], vs)
	}); a != 0 {
		t.Errorf("AppendEncode of ViewerState allocated %.1f/op, want 0", a)
	}
	if len(buf) != vs.Size() {
		t.Fatalf("encoded %d bytes, Size says %d", len(buf), vs.Size())
	}
	enc := Encode(vs)
	if a := testing.AllocsPerRun(200, func() {
		if _, err := Decode(enc); err != nil {
			t.Fatal(err)
		}
	}); a > 1 {
		t.Errorf("Decode of ViewerState allocated %.1f/op, want <= 1 (the message value)", a)
	}
}
