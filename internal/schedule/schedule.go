// Package schedule implements the timing mathematics of Tiger's
// single-bitrate disk schedule (§3.1) and the slot-ownership rule that
// makes distributed insertion safe (§4.1.3).
//
// The schedule is conceptually a cyclic array of slots, one per stream of
// system capacity, indexed by time: slot s occupies
// [s·blockService, (s+1)·blockService) within a cycle of length
// numDisks·blockPlay. Each disk owns a pointer that advances through the
// cycle in real time, offset one block play time behind its predecessor
// disk. No machine stores the whole schedule — cubs keep only windows of
// it — but all of them compute positions within it using this package, so
// their views are views of the *same* hallucinated object.
package schedule

import (
	"fmt"
	"time"

	"tiger/internal/sim"
)

// Params fixes the global schedule geometry. All cubs in a system must
// agree on it exactly; it is distributed as configuration, never
// negotiated.
type Params struct {
	BlockPlay    time.Duration // duration of one block of every file (§2.2)
	BlockService time.Duration // one slot's width, after integral rounding
	NumDisks     int
	NumSlots     int

	// SchedLead is how far before a slot's service time its ownership
	// window opens: at least one block service time, typically more, to
	// give the inserting cub time for the first disk read (§4.1.3).
	SchedLead time.Duration
	// OwnDur is the length of the ownership window, small relative to
	// the block play time.
	OwnDur time.Duration
}

// NewParams derives a consistent schedule from the block play time, the
// number of disks, and the system stream capacity (from
// disk.PlanCapacity). It lengthens the block service time so that the
// schedule is an integral multiple of both times (§3.1).
func NewParams(blockPlay time.Duration, numDisks, numSlots int) (Params, error) {
	if numDisks < 1 || numSlots < 1 {
		return Params{}, fmt.Errorf("schedule: need disks and slots, have %d/%d", numDisks, numSlots)
	}
	cycle := int64(numDisks) * int64(blockPlay)
	// Lengthen the block service time so an integral number of slots
	// fits ("If not, the block service time is lengthened enough to make
	// it so", §3.1). Floor division leaves a sub-microsecond remainder
	// at the end of the cycle — a dead zone that is never owned and
	// never serves; physically this is the paper's rounding-down of
	// system capacity to a whole stream.
	svc := cycle / int64(numSlots)
	if svc <= 0 {
		return Params{}, fmt.Errorf("schedule: %d slots do not fit in cycle %v", numSlots, time.Duration(cycle))
	}
	// The scheduling lead must cover the first block's disk read plus
	// queueing; the paper's measured startup floor attributes ~800 ms to
	// network latency plus scheduling lead (§5), so default to eight
	// block service times (~744 ms in the reference configuration).
	p := Params{
		BlockPlay:    blockPlay,
		BlockService: time.Duration(svc),
		NumDisks:     numDisks,
		NumSlots:     numSlots,
		SchedLead:    8 * time.Duration(svc),
		OwnDur:       time.Duration(svc),
	}
	return p, p.Validate()
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	switch {
	case p.BlockPlay <= 0:
		return fmt.Errorf("schedule: non-positive block play time %v", p.BlockPlay)
	case p.NumSlots <= 0 || p.NumDisks <= 0:
		return fmt.Errorf("schedule: empty schedule")
	case p.BlockService != time.Duration(int64(p.CycleLen())/int64(p.NumSlots)):
		return fmt.Errorf("schedule: block service %v is not cycle %v / %d slots",
			p.BlockService, p.CycleLen(), p.NumSlots)
	case p.OwnDur > p.BlockPlay:
		return fmt.Errorf("schedule: ownership window %v exceeds block play %v; two pointers could own one slot",
			p.OwnDur, p.BlockPlay)
	case p.SchedLead < p.BlockService:
		return fmt.Errorf("schedule: scheduling lead %v below one block service time %v",
			p.SchedLead, p.BlockService)
	}
	return nil
}

// CycleLen returns the total schedule length: numDisks block play times.
func (p Params) CycleLen() time.Duration {
	return time.Duration(int64(p.NumDisks) * int64(p.BlockPlay))
}

// SlotAtOffset returns the slot whose time range contains the given
// offset within the cycle.
func (p Params) SlotAtOffset(off time.Duration) int32 {
	s := int32(int64(off) / int64(p.BlockService))
	if s >= int32(p.NumSlots) {
		s = int32(p.NumSlots) - 1
	}
	return s
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// PointerOffset returns where disk's pointer is within the cycle at time
// t: pointers move in real time, each disk one block play time behind
// its predecessor (§3.1).
func (p Params) PointerOffset(disk int, t sim.Time) time.Duration {
	return time.Duration(mod(int64(t)-int64(disk)*int64(p.BlockPlay), int64(p.CycleLen())))
}

// ServiceTime returns the unique time in [after, after+cycle) at which
// disk's pointer reaches the start of slot, i.e. when that disk's send
// for the slot's viewer is due.
func (p Params) ServiceTime(disk int, slot int32, after sim.Time) sim.Time {
	cycle := int64(p.CycleLen())
	// Solve (t - disk·blockPlay) mod cycle == slot·blockService for the
	// smallest t >= after.
	base := int64(disk)*int64(p.BlockPlay) + int64(slot)*int64(p.BlockService)
	return after.Add(time.Duration(mod(base-int64(after), cycle)))
}

// NextServiceAfter is like ServiceTime but strictly after `after`.
func (p Params) NextServiceAfter(disk int, slot int32, after sim.Time) sim.Time {
	t := p.ServiceTime(disk, slot, after)
	if t == after {
		t = p.ServiceTime(disk, slot, after+1)
	}
	return t
}

// OwnershipWindow returns the window during which disk owns slot ahead of
// serving it at due: [due-SchedLead, due-SchedLead+OwnDur). A cub may
// insert into a slot if and only if its disk's pointer is inside the
// window and the slot is empty in its view (§4.1.3).
func (p Params) OwnershipWindow(due sim.Time) (open, close sim.Time) {
	open = due.Add(-p.SchedLead)
	return open, open.Add(p.OwnDur)
}

// OwnerAt returns which disk (if any) owns slot at time t, and the due
// time of the service the ownership precedes. ok is false when the slot
// is unowned at t.
//
// Closed form, O(1) in the number of disks: disk d's time-to-service of
// the slot is delta_d = (slotStart - t + d·blockPlay) mod cycle, an
// arithmetic progression in d with step blockPlay, so exactly one disk
// has delta in the length-blockPlay window (SchedLead-blockPlay,
// SchedLead]. Solving delta_d = SchedLead - s with s in [0, blockPlay)
// gives d = floor(y/blockPlay) and s = y mod blockPlay for
// y = (t + SchedLead - slotStart) mod cycle; the slot is owned iff the
// pointer is within OwnDur of the window opening, i.e. s < OwnDur.
func (p Params) OwnerAt(slot int32, t sim.Time) (disk int, due sim.Time, ok bool) {
	bp := int64(p.BlockPlay)
	slotStart := int64(slot) * int64(p.BlockService)
	y := mod(int64(t)+int64(p.SchedLead)-slotStart, int64(p.CycleLen()))
	d := y / bp
	s := y - d*bp // how far the owning pointer is past the window opening
	// s <= SchedLead keeps the remaining time-to-service non-negative:
	// when OwnDur exceeds SchedLead the window would otherwise reach past
	// the service time itself, which ownership never does.
	if s >= int64(p.OwnDur) || s > int64(p.SchedLead) {
		return 0, 0, false
	}
	return int(d), t.Add(time.Duration(int64(p.SchedLead) - s)), true
}

// NextOwnership returns the first time >= after at which disk owns slot,
// along with the corresponding due time.
func (p Params) NextOwnership(disk int, slot int32, after sim.Time) (open, due sim.Time) {
	due = p.ServiceTime(disk, slot, after.Add(p.SchedLead))
	open = due.Add(-p.SchedLead)
	return open, due
}

// SlotUnderOwnership returns the slot whose ownership window disk's
// pointer is inside at time t, if any. This is what a cub evaluates on
// each ownership tick.
func (p Params) SlotUnderOwnership(disk int, t sim.Time) (slot int32, due sim.Time, ok bool) {
	// The pointer owns the slot whose start lies SchedLead-OwnDur..SchedLead
	// ahead of it.
	off := int64(p.PointerOffset(disk, t))
	cycle := int64(p.CycleLen())
	target := mod(off+int64(p.SchedLead), cycle)
	// target is inside the owned slot if the pointer has been in the
	// window for < OwnDur.
	slotStart := (target / int64(p.BlockService)) * int64(p.BlockService)
	into := target - slotStart // how far past the window opening we are
	if into >= int64(p.OwnDur) {
		return 0, 0, false
	}
	slot = int32(slotStart / int64(p.BlockService))
	if slot >= int32(p.NumSlots) {
		// The pointer is in the dead zone left by service-time rounding;
		// no slot lives there.
		return 0, 0, false
	}
	due = t.Add(time.Duration(int64(p.SchedLead) - into))
	return slot, due, true
}

// DiskForNextBlock returns the disk that will serve the next block after
// the one served by disk: striping order is simply the next disk (§2.2).
func (p Params) DiskForNextBlock(disk int) int { return (disk + 1) % p.NumDisks }
