package schedule

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/sim"
)

// TestWarehouseScaleArithmetic exercises the schedule arithmetic at the
// 1000-cub scale the scalability experiment runs: 4000 disks, ~43k
// slots, times out to 30 simulated days. Every product in the closed
// forms must stay far from int64 overflow, and OwnerAt must agree with
// the definitional ownership-window check.
func TestWarehouseScaleArithmetic(t *testing.T) {
	const disks, slots = 4000, 43000
	p, err := NewParams(time.Second, disks, slots)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CycleLen(); got != time.Duration(disks)*time.Second {
		t.Fatalf("cycle %v at %d disks", got, disks)
	}
	rng := rand.New(rand.NewSource(3))
	horizon := int64(30 * 24 * time.Hour) // ~2.6e15 ns, a month of sim time
	for i := 0; i < 500; i++ {
		now := sim.Time(rng.Int63n(horizon))
		slot := int32(rng.Intn(slots))
		d := rng.Intn(disks)
		st := p.ServiceTime(d, slot, now)
		if st < now || st.Sub(now) >= p.CycleLen() {
			t.Fatalf("ServiceTime(%d, %d, %v) = %v outside [now, now+cycle)", d, slot, now, st)
		}
		// OwnerAt against the definition: the returned disk's ownership
		// window must contain now, and its due time must be that disk's
		// next service of the slot.
		if od, due, ok := p.OwnerAt(slot, now); ok {
			open, cl := p.OwnershipWindow(due)
			if now < open || now >= cl {
				t.Fatalf("OwnerAt(%d, %v): window [%v,%v) misses now", slot, now, open, cl)
			}
			if want := p.ServiceTime(od, slot, now); want != due {
				t.Fatalf("OwnerAt(%d, %v): due %v but disk %d serves at %v", slot, now, due, od, want)
			}
		}
	}
	// The ownership relation must be a partition in time: sampling one
	// slot densely across a full cycle, exactly NumDisks ownership
	// windows of OwnDur each must appear (one per disk's pass).
	owned := 0
	step := int64(p.OwnDur) / 4
	for off := int64(0); off < int64(p.CycleLen()); off += step {
		if _, _, ok := p.OwnerAt(7, sim.Time(off)); ok {
			owned++
		}
	}
	wantOwned := int(int64(disks) * int64(p.OwnDur) / step)
	if owned < wantOwned-disks || owned > wantOwned+disks {
		t.Fatalf("slot 7 owned at %d of the sampled offsets, want ~%d", owned, wantOwned)
	}
}
