package schedule

import (
	"testing"
	"time"

	"tiger/internal/sim"
)

func benchParams(b *testing.B) Params {
	b.Helper()
	p, err := NewParams(time.Second, 56, 602)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkServiceTime(b *testing.B) {
	p := benchParams(b)
	var sink sim.Time
	for i := 0; i < b.N; i++ {
		sink = p.ServiceTime(i%56, int32(i%602), sim.Time(i))
	}
	_ = sink
}

func BenchmarkSlotUnderOwnership(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		p.SlotUnderOwnership(i%56, sim.Time(i)*1000)
	}
}

func BenchmarkPointerOffset(b *testing.B) {
	p := benchParams(b)
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink = p.PointerOffset(i%56, sim.Time(i)*997)
	}
	_ = sink
}

func BenchmarkOwnerAt(b *testing.B) {
	p := benchParams(b)
	for i := 0; i < b.N; i++ {
		p.OwnerAt(int32(i%602), sim.Time(i)*31337)
	}
}
