package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tiger/internal/sim"
)

func paperParams(t *testing.T) Params {
	t.Helper()
	p, err := NewParams(time.Second, 56, 602)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewParamsRounding(t *testing.T) {
	p := paperParams(t)
	if p.NumSlots != 602 {
		t.Fatalf("slots %d", p.NumSlots)
	}
	// §3.1: the block service time is lengthened so slots tile the cycle.
	if p.BlockService != time.Duration(int64(56*time.Second)/602) {
		t.Fatalf("block service %v", p.BlockService)
	}
	if p.CycleLen() != 56*time.Second {
		t.Fatalf("cycle %v", p.CycleLen())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewParamsErrors(t *testing.T) {
	if _, err := NewParams(time.Second, 0, 10); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := NewParams(time.Nanosecond, 1, 10); err == nil {
		t.Error("over-subscribed schedule accepted")
	}
}

func TestPointerSpacing(t *testing.T) {
	// §3.1: "The pointer for each disk is one block play time behind the
	// pointer for its predecessor."
	p := paperParams(t)
	at := sim.Time(123456789123)
	for d := 1; d < p.NumDisks; d++ {
		gap := p.PointerOffset(d-1, at) - p.PointerOffset(d, at)
		if gap < 0 {
			gap += p.CycleLen()
		}
		if gap != p.BlockPlay {
			t.Fatalf("disk %d trails by %v", d, gap)
		}
	}
	// The distance between the last and the first disk is also one block
	// play time.
	gap := p.PointerOffset(p.NumDisks-1, at) - p.PointerOffset(0, at)
	if gap < 0 {
		gap += p.CycleLen()
	}
	if gap != p.CycleLen()-time.Duration(p.NumDisks-1)*p.BlockPlay {
		t.Fatalf("wraparound gap %v", gap)
	}
}

func TestServiceTimeProperties(t *testing.T) {
	p := paperParams(t)
	for _, after := range []sim.Time{0, 1, sim.Time(30 * time.Second), sim.Time(90 * time.Second)} {
		for _, disk := range []int{0, 1, 13, 55} {
			for _, slot := range []int32{0, 1, 300, 601} {
				tt := p.ServiceTime(disk, slot, after)
				if tt < after {
					t.Fatalf("service %v before after %v", tt, after)
				}
				if tt.Sub(after) >= p.CycleLen() {
					t.Fatalf("service %v more than a cycle after %v", tt, after)
				}
				// At the service time the pointer is at the slot start.
				if off := p.PointerOffset(disk, tt); off != time.Duration(slot)*p.BlockService {
					t.Fatalf("pointer at %v, slot start %v", off, time.Duration(slot)*p.BlockService)
				}
			}
		}
	}
}

func TestConsecutiveDisksServeOneBlockPlayApart(t *testing.T) {
	// The lockstep property: the viewer in slot s is served by disk d+1
	// exactly one block play time after disk d (§3).
	p := paperParams(t)
	slot := int32(77)
	t0 := p.ServiceTime(0, slot, sim.Time(10*time.Second))
	for d := 1; d < p.NumDisks; d++ {
		td := p.ServiceTime(d, slot, t0)
		if td.Sub(t0) != time.Duration(d)*p.BlockPlay {
			t.Fatalf("disk %d serves %v after disk 0, want %v", d, td.Sub(t0), time.Duration(d)*p.BlockPlay)
		}
	}
}

func TestNextServiceAfterStrict(t *testing.T) {
	p := paperParams(t)
	due := p.ServiceTime(3, 10, 0)
	next := p.NextServiceAfter(3, 10, due)
	if next != due+sim.Time(p.CycleLen()) {
		t.Fatalf("next service %v, want one cycle later", next)
	}
}

func TestOwnershipWindows(t *testing.T) {
	p := paperParams(t)
	slot := int32(42)
	// Find an ownership period and verify exactly one disk owns the slot
	// inside it and none outside.
	due := p.ServiceTime(7, slot, sim.Time(time.Minute))
	open, close := p.OwnershipWindow(due)
	mid := open.Add(close.Sub(open) / 2)
	d, gotDue, ok := p.OwnerAt(slot, mid)
	if !ok || d != 7 {
		t.Fatalf("owner at window mid = %d (ok=%v), want 7", d, ok)
	}
	if gotDue != due {
		t.Fatalf("owner due %v, want %v", gotDue, due)
	}
	// Immediately after the window closes, nobody owns the slot (OwnDur
	// < BlockPlay guarantees a gap).
	if _, _, ok := p.OwnerAt(slot, close.Add(time.Microsecond)); ok {
		t.Fatal("slot owned right after window close")
	}
}

func TestSlotUnderOwnershipConsistency(t *testing.T) {
	p := paperParams(t)
	// Whenever SlotUnderOwnership reports (slot, due), OwnerAt agrees.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		at := sim.Time(rng.Int63n(int64(3 * p.CycleLen())))
		disk := rng.Intn(p.NumDisks)
		slot, due, ok := p.SlotUnderOwnership(disk, at)
		if !ok {
			continue
		}
		if slot < 0 || slot >= int32(p.NumSlots) {
			t.Fatalf("slot %d out of range", slot)
		}
		od, odue, ook := p.OwnerAt(slot, at)
		if !ook || od != disk || odue != due {
			t.Fatalf("OwnerAt disagrees: disk %d/%v vs %d/%v (ok=%v)", od, odue, disk, due, ook)
		}
		// The due time matches the schedule's service time for the slot.
		if svc := p.ServiceTime(disk, slot, at); svc != due {
			t.Fatalf("due %v but service time %v", due, svc)
		}
	}
}

func TestAtMostOneOwnerEver(t *testing.T) {
	// §4.1.3: "Tiger assigns ownership of each slot to at most one cub at
	// a time." Sample instants and check no two disks own the same slot.
	p, err := NewParams(100*time.Millisecond, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		at := sim.Time(rng.Int63n(int64(2 * p.CycleLen())))
		owned := map[int32]int{}
		for d := 0; d < p.NumDisks; d++ {
			if slot, _, ok := p.SlotUnderOwnership(d, at); ok {
				if prev, dup := owned[slot]; dup {
					t.Fatalf("slot %d owned by disks %d and %d at %v", slot, prev, d, at)
				}
				owned[slot] = d
			}
		}
	}
}

func TestNextOwnership(t *testing.T) {
	p := paperParams(t)
	after := sim.Time(5 * time.Second)
	open, due := p.NextOwnership(9, 100, after)
	if open < after {
		t.Fatalf("window opens at %v, before %v", open, after)
	}
	if due.Sub(open) != p.SchedLead {
		t.Fatalf("window opens %v before due, want %v", due.Sub(open), p.SchedLead)
	}
	// The due really is disk 9's service of slot 100.
	if p.PointerOffset(9, due) != 100*time.Duration(p.BlockService) {
		t.Fatal("ownership due is not the service time")
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	good := paperParams(t)
	bad := good
	bad.OwnDur = 2 * bad.BlockPlay
	if bad.Validate() == nil {
		t.Error("ownership window longer than block play accepted")
	}
	bad = good
	bad.SchedLead = bad.BlockService / 2
	if bad.Validate() == nil {
		t.Error("scheduling lead under one block service accepted")
	}
	bad = good
	bad.BlockService = bad.BlockService + 1
	if bad.Validate() == nil {
		t.Error("inconsistent block service accepted")
	}
}

func TestSlotAtOffsetClamps(t *testing.T) {
	p := paperParams(t)
	if s := p.SlotAtOffset(p.CycleLen() - 1); s != int32(p.NumSlots-1) {
		t.Fatalf("dead zone mapped to slot %d", s)
	}
	if s := p.SlotAtOffset(0); s != 0 {
		t.Fatalf("offset 0 mapped to slot %d", s)
	}
}

func TestDiskForNextBlock(t *testing.T) {
	p := paperParams(t)
	if p.DiskForNextBlock(55) != 0 || p.DiskForNextBlock(3) != 4 {
		t.Fatal("striping successor broken")
	}
}

// Property: ServiceTime is the unique service instant in [after,
// after+cycle) — idempotent when re-anchored at its own result.
func TestQuickServiceTimeUnique(t *testing.T) {
	p := paperParams(t)
	f := func(afterRaw uint32, diskRaw uint8, slotRaw uint16) bool {
		after := sim.Time(afterRaw)
		disk := int(diskRaw) % p.NumDisks
		slot := int32(slotRaw) % int32(p.NumSlots)
		tt := p.ServiceTime(disk, slot, after)
		return p.ServiceTime(disk, slot, tt) == tt && tt >= after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// ownerAtScan is the pre-optimization O(numDisks) reference: scan every
// disk's pointer for one inside the slot's ownership window. Kept here to
// cross-check the closed-form OwnerAt.
func ownerAtScan(p Params, slot int32, t sim.Time) (int, sim.Time, bool) {
	slotStart := int64(slot) * int64(p.BlockService)
	cycle := int64(p.CycleLen())
	for d := 0; d < p.NumDisks; d++ {
		off := int64(p.PointerOffset(d, t))
		delta := mod(slotStart-off, cycle) // time until d's pointer reaches the slot
		if delta > int64(p.SchedLead)-int64(p.OwnDur) && delta <= int64(p.SchedLead) {
			return d, t.Add(time.Duration(delta)), true
		}
	}
	return 0, 0, false
}

// TestOwnerAtClosedForm cross-checks the O(1) OwnerAt against the linear
// scan over a dense (slot, t) grid on several geometries, including ones
// whose service-time rounding leaves a dead zone and one whose ownership
// window spans the whole block play time.
func TestOwnerAtClosedForm(t *testing.T) {
	mk := func(bp time.Duration, disks, slots int, mut func(*Params)) Params {
		p, err := NewParams(bp, disks, slots)
		if err != nil {
			t.Fatal(err)
		}
		if mut != nil {
			mut(&p)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	geoms := []Params{
		mk(time.Second, 14, 150, nil),
		mk(time.Second, 7, 76, nil), // rounding dead zone
		mk(250*time.Millisecond, 5, 53, nil),
		mk(time.Second, 4, 40, func(p *Params) { p.OwnDur = p.BlockPlay }), // always-owned edge
		mk(time.Second, 3, 24, func(p *Params) { p.OwnDur = p.BlockService / 3 }),
		// SchedLead above one cycle: the scan's window arithmetic wraps
		// here and goes blind, so this geometry is checked only against
		// SlotUnderOwnership below.
		mk(time.Second, 3, 7, func(p *Params) { p.OwnDur = p.BlockService / 3 }),
	}
	for gi, p := range geoms {
		step := p.BlockService / 7 // denser than a slot width, misaligned
		horizon := sim.Time(2 * p.CycleLen())
		scanValid := p.SchedLead < p.CycleLen()
		for slot := int32(0); slot < int32(p.NumSlots); slot += 3 {
			for at := sim.Time(0); at < horizon; at = at.Add(step) {
				gd, gdue, gok := p.OwnerAt(slot, at)
				if scanValid {
					wd, wdue, wok := ownerAtScan(p, slot, at)
					if wd != gd || wdue != gdue || wok != gok {
						t.Fatalf("geom %d slot %d t=%v: scan (%d,%v,%v) != closed form (%d,%v,%v)",
							gi, slot, at, wd, wdue, wok, gd, gdue, gok)
					}
				}
				if gok && gdue < at {
					t.Fatalf("geom %d slot %d t=%v: due %v in the past", gi, slot, at, gdue)
				}
			}
		}
		// The two views of the same hallucinated schedule must agree: if a
		// disk's pointer is inside a slot's window, OwnerAt must name that
		// disk and the same due time.
		for d := 0; d < p.NumDisks; d++ {
			for at := sim.Time(0); at < horizon; at = at.Add(step) {
				slot, due, ok := p.SlotUnderOwnership(d, at)
				if !ok {
					continue
				}
				gd, gdue, gok := p.OwnerAt(slot, at)
				if !gok || gd != d || gdue != due {
					t.Fatalf("geom %d: SlotUnderOwnership(%d,%v)=(%d,%v) but OwnerAt says (%d,%v,%v)",
						gi, d, at, slot, due, gd, gdue, gok)
				}
			}
		}
	}
}
