// Package spec loads and saves cluster specifications: the shared JSON
// document a Tiger deployment distributes to every node so that all of
// them build the identical core.Config (the configuration is static and
// agreed, never negotiated — a premise of the coherent hallucination).
package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
)

// ClusterSpec is the on-disk deployment document.
type ClusterSpec struct {
	// Shape.
	Cubs        int `json:"cubs"`
	DisksPerCub int `json:"disks_per_cub"`
	Decluster   int `json:"decluster"`

	// Content geometry.
	BlockPlayMs int   `json:"block_play_ms"`
	BlockSize   int64 `json:"block_size"`
	BitrateBps  int64 `json:"bitrate_bps"`
	NumFiles    int   `json:"num_files"`
	FileBlocks  int   `json:"file_blocks"`
	FileSeed    int64 `json:"file_seed"`

	// Protocol timings, in milliseconds; zero takes scaled defaults.
	MinVStateLeadMs int `json:"min_vstate_lead_ms,omitempty"`
	MaxVStateLeadMs int `json:"max_vstate_lead_ms,omitempty"`
	ForwardMs       int `json:"forward_interval_ms,omitempty"`
	DeschedHoldMs   int `json:"deschedule_hold_ms,omitempty"`
	ReadAheadMs     int `json:"read_ahead_ms,omitempty"`
	HeartbeatMs     int `json:"heartbeat_ms,omitempty"`
	DeadmanMs       int `json:"deadman_ms,omitempty"`

	// Addresses: "ctl" plus one entry per cub number.
	Addrs map[string]string `json:"addrs,omitempty"`
}

// Default returns a small loopback deployment spec.
func Default(cubs int) ClusterSpec {
	s := ClusterSpec{
		Cubs:        cubs,
		DisksPerCub: 1,
		Decluster:   2,
		BlockPlayMs: 250,
		BlockSize:   65536,
		NumFiles:    4,
		FileBlocks:  2400,
		Addrs:       map[string]string{"ctl": "127.0.0.1:7000"},
	}
	for i := 0; i < cubs; i++ {
		s.Addrs[strconv.Itoa(i)] = fmt.Sprintf("127.0.0.1:%d", 7001+i)
	}
	return s
}

// Load reads a spec from a JSON file.
func Load(path string) (ClusterSpec, error) {
	var s ClusterSpec
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("spec %s: %w", path, err)
	}
	return s, nil
}

// Save writes the spec as indented JSON.
func (s ClusterSpec) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// Config expands the spec into a validated core.Config. Unset protocol
// timings scale with the block play time, like the tigerd defaults.
func (s ClusterSpec) Config() (*core.Config, error) {
	cfg, err := core.BuildConfig(core.SystemSpec{
		Cubs:        s.Cubs,
		DisksPerCub: s.DisksPerCub,
		Decluster:   s.Decluster,
		BlockPlay:   ms(s.BlockPlayMs),
		BlockSize:   s.BlockSize,
		Bitrate:     s.BitrateBps,
		NumFiles:    s.NumFiles,
		FileBlocks:  s.FileBlocks,
		FileSeed:    s.FileSeed,
	})
	if err != nil {
		return nil, err
	}
	bp := ms(s.BlockPlayMs)
	set := func(dst *time.Duration, v int, def time.Duration) {
		if v > 0 {
			*dst = ms(v)
		} else {
			*dst = def
		}
	}
	set(&cfg.MinVStateLead, s.MinVStateLeadMs, 4*bp)
	set(&cfg.MaxVStateLead, s.MaxVStateLeadMs, 9*bp)
	set(&cfg.ForwardInterval, s.ForwardMs, bp/2)
	set(&cfg.DescheduleHold, s.DeschedHoldMs, 3*bp)
	set(&cfg.ReadAhead, s.ReadAheadMs, bp)
	set(&cfg.HeartbeatInterval, s.HeartbeatMs, bp/2)
	set(&cfg.DeadmanTimeout, s.DeadmanMs, 5*bp/2)
	return cfg, cfg.Validate()
}

// NodeAddrs converts the string-keyed address map into node IDs.
func (s ClusterSpec) NodeAddrs() (map[msg.NodeID]string, error) {
	out := make(map[msg.NodeID]string, len(s.Addrs))
	for k, v := range s.Addrs {
		if k == "ctl" || k == "controller" {
			out[msg.Controller] = v
			continue
		}
		id, err := strconv.Atoi(k)
		if err != nil || id < 0 || id >= s.Cubs {
			return nil, fmt.Errorf("spec: bad address key %q", k)
		}
		out[msg.NodeID(id)] = v
	}
	return out, nil
}

// MissingAddrs lists nodes without addresses (ctl plus every cub).
func (s ClusterSpec) MissingAddrs() []string {
	var missing []string
	if _, ok := s.Addrs["ctl"]; !ok {
		if _, ok2 := s.Addrs["controller"]; !ok2 {
			missing = append(missing, "ctl")
		}
	}
	for i := 0; i < s.Cubs; i++ {
		if _, ok := s.Addrs[strconv.Itoa(i)]; !ok {
			missing = append(missing, strconv.Itoa(i))
		}
	}
	sort.Strings(missing)
	return missing
}
