package spec

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tiger/internal/msg"
)

func TestRoundTrip(t *testing.T) {
	s := Default(4)
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip:\n in: %+v\nout: %+v", s, got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt JSON loaded")
	}
}

func TestConfigExpansion(t *testing.T) {
	s := Default(4)
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Layout.Cubs != 4 || cfg.BlockSize != 65536 {
		t.Fatalf("config %+v", cfg.Layout)
	}
	// Scaled defaults: minVStateLead = 4 block plays.
	if cfg.MinVStateLead != time.Second {
		t.Fatalf("min lead %v", cfg.MinVStateLead)
	}
	// Explicit override wins.
	s.MinVStateLeadMs = 2000
	s.MaxVStateLeadMs = 4000
	cfg, err = s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MinVStateLead != 2*time.Second || cfg.MaxVStateLead != 4*time.Second {
		t.Fatalf("overrides lost: %v/%v", cfg.MinVStateLead, cfg.MaxVStateLead)
	}
}

func TestConfigRejectsBadShape(t *testing.T) {
	s := Default(2)
	s.Decluster = 5 // exceeds disk count
	if _, err := s.Config(); err == nil {
		t.Error("bad shape accepted")
	}
}

func TestNodeAddrs(t *testing.T) {
	s := Default(3)
	addrs, err := s.NodeAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 4 {
		t.Fatalf("addrs %v", addrs)
	}
	if addrs[msg.Controller] == "" || addrs[msg.NodeID(2)] == "" {
		t.Fatalf("addrs %v", addrs)
	}
	s.Addrs["bogus"] = "x"
	if _, err := s.NodeAddrs(); err == nil {
		t.Error("bogus key accepted")
	}
	delete(s.Addrs, "bogus")
	s.Addrs["9"] = "x" // out of range for 3 cubs
	if _, err := s.NodeAddrs(); err == nil {
		t.Error("out-of-range cub accepted")
	}
}

func TestMissingAddrs(t *testing.T) {
	s := Default(3)
	if m := s.MissingAddrs(); len(m) != 0 {
		t.Fatalf("default spec missing %v", m)
	}
	delete(s.Addrs, "1")
	delete(s.Addrs, "ctl")
	m := s.MissingAddrs()
	if len(m) != 2 || m[0] != "1" || m[1] != "ctl" {
		t.Fatalf("missing %v", m)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
