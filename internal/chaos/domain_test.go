package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeDomainSystem extends fakeSystem with the DomainSystem hooks,
// mapping domain d to the two cubs {2d, 2d+1}.
type fakeDomainSystem struct {
	*fakeSystem
}

func (f *fakeDomainSystem) members(d int) []int { return []int{2 * d, 2*d + 1} }

func (f *fakeDomainSystem) CrashDomain(d int) ([]int, error) {
	if d >= f.cubs/2 {
		return nil, fmt.Errorf("no domain %d", d)
	}
	for _, c := range f.members(d) {
		f.CrashCub(c)
	}
	return f.members(d), nil
}

func (f *fakeDomainSystem) RestartDomain(d int) ([]int, error) {
	if d >= f.cubs/2 {
		return nil, fmt.Errorf("no domain %d", d)
	}
	for _, c := range f.members(d) {
		f.RestartCub(c)
	}
	return f.members(d), nil
}

func TestCascadeExpansion(t *testing.T) {
	steps := Cascade(2*time.Second, 5, 3, 500*time.Millisecond)
	if len(steps) != 3 {
		t.Fatalf("cascade of 3 expands to %d steps", len(steps))
	}
	for k, st := range steps {
		if st.Kind != CrashCub {
			t.Fatalf("step %d kind %q, want crash-cub", k, st.Kind)
		}
		if st.A != 5+k {
			t.Fatalf("step %d targets cub %d, want %d", k, st.A, 5+k)
		}
		if want := 2*time.Second + time.Duration(k)*500*time.Millisecond; st.At != want {
			t.Fatalf("step %d fires at %v, want %v", k, st.At, want)
		}
	}
}

func TestMultiCrashRestartRoundTrip(t *testing.T) {
	sys := newFakeSystem(t, 6)
	sc := Scenario{
		Name:     "multi",
		Duration: 2 * time.Second,
		Settle:   100 * time.Millisecond,
		Steps: []Step{
			{At: 100 * time.Millisecond, Kind: CrashMany, A: 2, B: 3},
			{At: 900 * time.Millisecond, Kind: RestartMany, A: 2, B: 3},
		},
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"crash", "crash", "crash", "restart", "restart", "restart"}
	if len(sys.calls) != len(want) {
		t.Fatalf("calls %v, want %v", sys.calls, want)
	}
	for i := range want {
		if sys.calls[i] != want[i] {
			t.Fatalf("calls %v, want %v", sys.calls, want)
		}
	}
	if !rep.QuietAtEnd || len(rep.Outstanding) != 0 {
		t.Fatalf("restarted scenario not quiet: outstanding %v", rep.Outstanding)
	}
}

func TestOutstandingNamesUnrestoredFaults(t *testing.T) {
	sys := newFakeSystem(t, 6)
	sc := Scenario{
		Name:     "leak",
		Duration: 1 * time.Second,
		Settle:   100 * time.Millisecond,
		Steps: []Step{
			{At: 100 * time.Millisecond, Kind: CrashMany, A: 4, B: 2},
		},
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.QuietAtEnd {
		t.Fatal("two cubs left down but the report claims quiet")
	}
	if len(rep.Outstanding) < 2 ||
		!strings.Contains(rep.Outstanding[0], "cub 4 down") ||
		!strings.Contains(rep.Outstanding[1], "cub 5 down") {
		t.Fatalf("Outstanding = %v, want cub 4 and cub 5 named in order", rep.Outstanding)
	}
}

func TestDomainStepsUseDomainSystem(t *testing.T) {
	sys := &fakeDomainSystem{newFakeSystem(t, 6)}
	sc := Scenario{
		Name:     "domain",
		Duration: 2 * time.Second,
		Settle:   100 * time.Millisecond,
		Steps: []Step{
			At(100*time.Millisecond, DomainCrash(1))[0],
			At(900*time.Millisecond, DomainRestart(1))[0],
		},
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"crash", "crash", "restart", "restart"}
	if len(sys.calls) != len(want) {
		t.Fatalf("calls %v, want %v (domain 1 = cubs 2,3)", sys.calls, want)
	}
	if !rep.QuietAtEnd {
		t.Fatalf("domain round trip not quiet: %v", rep.Outstanding)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations %v", rep.Violations)
	}
}

func TestDomainStepsRequireDomainSystem(t *testing.T) {
	sys := newFakeSystem(t, 6) // plain System: no domain hooks
	sc := Scenario{
		Name:     "nodomain",
		Duration: 1 * time.Second,
		Settle:   100 * time.Millisecond,
		Steps:    At(100*time.Millisecond, DomainCrash(0)),
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "domain-precondition" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no domain-precondition violation recorded: %v", rep.Violations)
	}
}

func TestValidateRejectsBadMultiSteps(t *testing.T) {
	bad := []Scenario{
		{Name: "zero-count", Duration: time.Second,
			Steps: []Step{{Kind: CrashMany, A: 0, B: 0}}},
		{Name: "overflow", Duration: time.Second,
			Steps: []Step{{Kind: CrashMany, A: 4, B: 4}}},
		{Name: "negative-domain", Duration: time.Second,
			Steps: []Step{{Kind: CrashDomain, A: -1}}},
	}
	for _, sc := range bad {
		if err := sc.Validate(6); err == nil {
			t.Fatalf("scenario %q validated", sc.Name)
		}
	}
}
