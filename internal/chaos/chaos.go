// Package chaos is a declarative, seed-reproducible fault-schedule
// harness for a Tiger cluster. A Scenario is a timed list of fault and
// repair Steps (crash / restart / disk-fail / link-cut / flaky-link /
// data-drop / heal); a Runner applies them to any System (the simulated
// Cluster in practice) while a set of Invariants — no slot conflicts, no
// double service, mirror-load conservation, view convergence — is
// checked every tick. Everything runs under the deterministic sim clock
// and a scenario-seeded rng, so a failing run replays byte-identically
// from its seed.
//
// The paper's §5 failure experiments pull one power cord; this package
// exists for the failures that are harder to stage by hand — partitions
// that make a live cub look dead, asymmetric link loss, duplicated
// gossip — and turns each into a reusable, reproducible schedule.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"tiger/internal/netsim"
)

// Kind names one fault or repair action.
type Kind string

const (
	// CrashCub kills cub A and dooms its in-flight traffic; pair with
	// RestartCub for the full crash–restart cycle.
	CrashCub Kind = "crash"
	// RestartCub cold-restarts cub A (rejoin handshake, epoch bump).
	RestartCub Kind = "restart"
	// FailCub silently disconnects cub A (a network blip: state intact).
	FailCub Kind = "fail"
	// ReviveCub ends a FailCub blip.
	ReviveCub Kind = "revive"
	// FailDisk kills disk Disk on cub A; declustered mirrors take over.
	FailDisk Kind = "disk-fail"
	// CutLink severs the A↔B control link in both directions.
	CutLink Kind = "cut"
	// CutOneWay severs only the A→B direction (asymmetric partition).
	CutOneWay Kind = "cut-oneway"
	// HealLink restores A↔B (cut and flakiness, both directions).
	HealLink Kind = "heal"
	// HealOneWay restores only the A→B direction.
	HealOneWay Kind = "heal-oneway"
	// FlakyLink degrades A↔B with Flaky (drop/dup/extra-delay) params;
	// zero params heal the flakiness.
	FlakyLink Kind = "flaky"
	// FlakyOneWay degrades only the A→B direction.
	FlakyOneWay Kind = "flaky-oneway"
	// Isolate cuts cub A off from every other cub and the controller —
	// the canonical split-brain partition.
	Isolate Kind = "isolate"
	// Rejoin heals every link of cub A cut by Isolate (or otherwise).
	Rejoin Kind = "rejoin"
	// HealAll clears every link fault on the switch.
	HealAll Kind = "heal-all"
	// DropData sets the block-delivery drop probability for sends from
	// cub A (A == All for every cub) to Prob; Prob 0 heals it.
	DropData Kind = "drop-data"
	// SlowDisk degrades disk Disk on cub A to Factor× its nominal
	// service time — the gray fail-slow fault the health monitor hunts.
	SlowDisk Kind = "disk-slow"
	// ErrorDisk gives disk Disk on cub A a transient read-failure
	// probability of Prob.
	ErrorDisk Kind = "disk-error"
	// StickDisk wedges disk Disk's queue on cub A: reads are accepted
	// but none completes until a DiskHeal.
	StickDisk Kind = "disk-stick"
	// HealDisk clears every gray fault (slow/error/stuck) on disk Disk
	// of cub A; the health monitor's probes then un-quarantine it.
	HealDisk Kind = "disk-heal"
	// RestripeStart begins an online elastic restripe of the array to A
	// cubs (grow or shrink). Requires a System that also implements
	// ElasticSystem; later steps may name cubs up to the largest target
	// any earlier restripe-start introduced.
	RestripeStart Kind = "restripe-start"
	// CrashDuringRestripe crashes cub A like CrashCub, but asserts a
	// restripe is in progress at apply time — applying it to an idle
	// system records a restripe-precondition violation (the schedule's
	// timing no longer tests what it claims to). Pair with RestartCub.
	CrashDuringRestripe Kind = "crash-during-restripe"
	// PartitionMidMove isolates cub A like Isolate, asserting a restripe
	// is in progress. Pair with Rejoin.
	PartitionMidMove Kind = "partition-mid-move"
	// DiskSlowDuringRestripe degrades disk Disk on cub A to Factor× like
	// SlowDisk, asserting a restripe is in progress — the move scheduler
	// must re-route the disk's pending copies when the health monitor
	// quarantines it. Pair with HealDisk.
	DiskSlowDuringRestripe Kind = "disk-slow-during-restripe"
	// CrashMany crashes cubs A..A+B-1 simultaneously (no virtual time
	// between the kills) — the correlated failure a shared power strip
	// produces. Pair with RestartMany, or individual RestartCub steps.
	CrashMany Kind = "crash-many"
	// RestartMany cold-restarts cubs A..A+B-1 together.
	RestartMany Kind = "restart-many"
	// CrashDomain crashes every cub of failure domain A atomically.
	// Requires a System that also implements DomainSystem; the domain
	// index is range-checked at apply time (the runner cannot see the
	// layout at validation time).
	CrashDomain Kind = "crash-domain"
	// RestartDomain restarts every cub of failure domain A.
	RestartDomain Kind = "restart-domain"
	// CrashController kills the controller: admitted streams keep
	// playing off the distributed schedule, new admissions retry.
	// Requires a System that also implements ControllerSystem. Pair with
	// RestartController.
	CrashController Kind = "crash-controller"
	// RestartController brings up the next controller incarnation, which
	// fences the dead one by epoch and rebuilds its state by scavenging
	// the cubs' schedules.
	RestartController Kind = "restart-controller"
	// CrashControllerDuringRestripe crashes the controller like
	// CrashController, asserting an elastic restripe is in copy phase at
	// apply time — the takeover must re-arm the interrupted move plan.
	CrashControllerDuringRestripe Kind = "crash-controller-during-restripe"
	// CrashControllerWhileParked crashes the controller while the
	// governor holds parked streams, asserting ParkedStreams() > 0 at
	// apply time — the takeover must scavenge the park tickets and
	// resume each stream exactly once.
	CrashControllerWhileParked Kind = "crash-controller-while-parked"
)

// All, as Step.A for DropData, applies the probability to every cub.
const All = -1

// Step is one timed action in a scenario. At is the offset from the
// start of the run; A and B are cub indices (B unused for single-node
// kinds).
type Step struct {
	At     time.Duration
	Kind   Kind
	A, B   int
	Disk   int                // FailDisk / SlowDisk / ErrorDisk / StickDisk / HealDisk
	Flaky  netsim.FlakyParams // FlakyLink / FlakyOneWay only
	Prob   float64            // DropData / ErrorDisk
	Factor float64            // SlowDisk only: service-time multiplier, ≥ 1
}

// Scenario is a named, seeded fault schedule.
type Scenario struct {
	Name string
	// Seed drives the runner's private rng (data-drop coin flips). Link
	// flakiness draws from the simulator's own rng, so the pair
	// (cluster seed, scenario seed) fully determines a run.
	Seed int64
	// Duration is the total virtual time the runner drives the system,
	// including the tail after the last step.
	Duration time.Duration
	// Settle is how long after the last outstanding fault clears before
	// the quiet-state invariants (mirror conservation, convergence)
	// re-engage; zero takes DefaultSettle.
	Settle time.Duration
	// Tick is the invariant-check interval; zero takes DefaultTick.
	Tick  time.Duration
	Steps []Step
}

// DefaultTick is the invariant-check interval when Scenario.Tick is zero:
// ten checks per simulated second catches transient double occupancy
// without dominating run time.
const DefaultTick = 100 * time.Millisecond

// DefaultSettle is the post-heal grace period when Scenario.Settle is
// zero. It must cover a deadman timeout plus a couple of forward
// intervals so refutation and mirror retirement can complete before the
// quiet invariants start failing runs.
const DefaultSettle = 5 * time.Second

func (s Scenario) tick() time.Duration {
	if s.Tick > 0 {
		return s.Tick
	}
	return DefaultTick
}

func (s Scenario) settle() time.Duration {
	if s.Settle > 0 {
		return s.Settle
	}
	return DefaultSettle
}

// needsPeer reports whether the kind uses Step.B.
func (k Kind) needsPeer() bool {
	switch k {
	case CutLink, CutOneWay, HealLink, HealOneWay, FlakyLink, FlakyOneWay:
		return true
	}
	return false
}

// Validate checks the scenario against a cluster of numCubs cubs. A
// restripe-start step raises the cub-index bound for every later step:
// a grow to N cubs makes cubs numCubs..N-1 real targets (and a shrink
// never lowers the bound — retired cubs still exist to be crashed or
// partitioned, which is exactly what the linger window defends).
func (s Scenario) Validate(numCubs int) error {
	if s.Duration <= 0 {
		return fmt.Errorf("chaos: scenario %q has no duration", s.Name)
	}
	for i, st := range s.Steps {
		if st.At < 0 || st.At > s.Duration {
			return fmt.Errorf("chaos: step %d (%s) at %v outside run of %v", i, st.Kind, st.At, s.Duration)
		}
		switch st.Kind {
		case CrashCub, RestartCub, FailCub, ReviveCub, FailDisk, CutLink, CutOneWay,
			HealLink, HealOneWay, FlakyLink, FlakyOneWay, Isolate, Rejoin, HealAll, DropData,
			SlowDisk, ErrorDisk, StickDisk, HealDisk,
			RestripeStart, CrashDuringRestripe, PartitionMidMove, DiskSlowDuringRestripe,
			CrashMany, RestartMany, CrashDomain, RestartDomain,
			CrashController, RestartController, CrashControllerDuringRestripe, CrashControllerWhileParked:
		default:
			return fmt.Errorf("chaos: step %d has unknown kind %q", i, st.Kind)
		}
		if (st.Kind == CrashMany || st.Kind == RestartMany) && st.B < 1 {
			return fmt.Errorf("chaos: step %d (%s) covers %d cubs", i, st.Kind, st.B)
		}
		if (st.Kind == CrashDomain || st.Kind == RestartDomain) && st.A < 0 {
			return fmt.Errorf("chaos: step %d (%s) names domain %d", i, st.Kind, st.A)
		}
		if st.Kind == HealAll {
			continue
		}
		if st.Kind == RestripeStart {
			if st.A < 2 {
				return fmt.Errorf("chaos: step %d (%s) targets %d cubs", i, st.Kind, st.A)
			}
			continue
		}
		if st.Kind.needsPeer() {
			if st.B < 0 {
				return fmt.Errorf("chaos: step %d (%s) names peer cub %d", i, st.Kind, st.B)
			}
			if st.B == st.A {
				return fmt.Errorf("chaos: step %d (%s) links cub %d to itself", i, st.Kind, st.A)
			}
		}
		if st.Kind == DropData && (st.Prob < 0 || st.Prob > 1) {
			return fmt.Errorf("chaos: step %d has drop probability %v", i, st.Prob)
		}
		if (st.Kind == SlowDisk || st.Kind == DiskSlowDuringRestripe) && st.Factor < 1 {
			return fmt.Errorf("chaos: step %d has slow factor %v below 1 (use %s to heal)", i, st.Factor, HealDisk)
		}
		if st.Kind == ErrorDisk && (st.Prob <= 0 || st.Prob > 1) {
			return fmt.Errorf("chaos: step %d has error probability %v outside (0,1] (use %s to heal)", i, st.Prob, HealDisk)
		}
	}
	// Cub-index bounds in schedule order, tracking the widening effect of
	// restripe-start steps.
	bound := numCubs
	for _, st := range s.sortedSteps() {
		switch st.Kind {
		case HealAll, CrashController, RestartController,
			CrashControllerDuringRestripe, CrashControllerWhileParked:
			// No cub named: the target is the switch or the controller.
			continue
		case RestripeStart:
			if st.A > bound {
				bound = st.A
			}
			continue
		case CrashDomain, RestartDomain:
			// Domain membership depends on the layout, which validation
			// cannot see; a bad index surfaces as an apply-time violation.
			continue
		case CrashMany, RestartMany:
			if st.A < 0 || st.A+st.B > bound {
				return fmt.Errorf("chaos: step %s at %v covers cubs [%d,%d) of %d",
					st.Kind, st.At, st.A, st.A+st.B, bound)
			}
			continue
		}
		if st.A < 0 || st.A >= bound {
			if !(st.Kind == DropData && st.A == All) {
				return fmt.Errorf("chaos: step %s at %v names cub %d of %d", st.Kind, st.At, st.A, bound)
			}
		}
		if st.Kind.needsPeer() && st.B >= bound {
			return fmt.Errorf("chaos: step %s at %v names peer cub %d of %d", st.Kind, st.At, st.B, bound)
		}
	}
	return nil
}

// sortedSteps returns the steps ordered by At, original order preserved
// among equals so scenarios read top to bottom.
func (s Scenario) sortedSteps() []Step {
	out := make([]Step, len(s.Steps))
	copy(out, s.Steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// --- step constructors, so scenarios read as schedules ---

// At prefixes a group of steps with a common offset.
func At(at time.Duration, steps ...Step) []Step {
	out := make([]Step, len(steps))
	for i, st := range steps {
		st.At = at
		out[i] = st
	}
	return out
}

// Crash returns a CrashCub step (At filled by the caller or chaos.At).
func Crash(cub int) Step { return Step{Kind: CrashCub, A: cub} }

// Restart returns a RestartCub step.
func Restart(cub int) Step { return Step{Kind: RestartCub, A: cub} }

// Fail returns a FailCub step.
func Fail(cub int) Step { return Step{Kind: FailCub, A: cub} }

// Revive returns a ReviveCub step.
func Revive(cub int) Step { return Step{Kind: ReviveCub, A: cub} }

// DiskFail returns a FailDisk step.
func DiskFail(cub, disk int) Step { return Step{Kind: FailDisk, A: cub, Disk: disk} }

// Cut returns a symmetric CutLink step.
func Cut(a, b int) Step { return Step{Kind: CutLink, A: a, B: b} }

// CutTo returns an asymmetric CutOneWay step (a can no longer reach b).
func CutTo(a, b int) Step { return Step{Kind: CutOneWay, A: a, B: b} }

// Heal returns a symmetric HealLink step.
func Heal(a, b int) Step { return Step{Kind: HealLink, A: a, B: b} }

// Flaky returns a symmetric FlakyLink step.
func Flaky(a, b int, p netsim.FlakyParams) Step { return Step{Kind: FlakyLink, A: a, B: b, Flaky: p} }

// IsolateCub returns an Isolate step.
func IsolateCub(cub int) Step { return Step{Kind: Isolate, A: cub} }

// RejoinCub returns a Rejoin step.
func RejoinCub(cub int) Step { return Step{Kind: Rejoin, A: cub} }

// DataLoss returns a DropData step (cub == All for every sender).
func DataLoss(cub int, prob float64) Step { return Step{Kind: DropData, A: cub, Prob: prob} }

// DiskSlow returns a SlowDisk step: disk runs at factor× nominal time.
func DiskSlow(cub, disk int, factor float64) Step {
	return Step{Kind: SlowDisk, A: cub, Disk: disk, Factor: factor}
}

// DiskErrors returns an ErrorDisk step: reads fail with probability prob.
func DiskErrors(cub, disk int, prob float64) Step {
	return Step{Kind: ErrorDisk, A: cub, Disk: disk, Prob: prob}
}

// DiskStick returns a StickDisk step: the disk queue wedges solid.
func DiskStick(cub, disk int) Step { return Step{Kind: StickDisk, A: cub, Disk: disk} }

// DiskHeal returns a HealDisk step clearing all gray faults on the disk.
func DiskHeal(cub, disk int) Step { return Step{Kind: HealDisk, A: cub, Disk: disk} }

// Restripe returns a RestripeStart step growing or shrinking the array
// to targetCubs.
func Restripe(targetCubs int) Step { return Step{Kind: RestripeStart, A: targetCubs} }

// CrashMidRestripe returns a CrashDuringRestripe step.
func CrashMidRestripe(cub int) Step { return Step{Kind: CrashDuringRestripe, A: cub} }

// IsolateMidRestripe returns a PartitionMidMove step.
func IsolateMidRestripe(cub int) Step { return Step{Kind: PartitionMidMove, A: cub} }

// DiskSlowMidRestripe returns a DiskSlowDuringRestripe step.
func DiskSlowMidRestripe(cub, disk int, factor float64) Step {
	return Step{Kind: DiskSlowDuringRestripe, A: cub, Disk: disk, Factor: factor}
}

// MultiCrash returns a CrashMany step killing cubs first..first+count-1
// at the same instant.
func MultiCrash(first, count int) Step { return Step{Kind: CrashMany, A: first, B: count} }

// MultiRestart returns a RestartMany step restarting cubs
// first..first+count-1 together.
func MultiRestart(first, count int) Step { return Step{Kind: RestartMany, A: first, B: count} }

// DomainCrash returns a CrashDomain step killing failure domain d.
func DomainCrash(d int) Step { return Step{Kind: CrashDomain, A: d} }

// DomainRestart returns a RestartDomain step restarting failure domain d.
func DomainRestart(d int) Step { return Step{Kind: RestartDomain, A: d} }

// CtlCrash returns a CrashController step.
func CtlCrash() Step { return Step{Kind: CrashController} }

// CtlRestart returns a RestartController step (epoch bump + scavenge).
func CtlRestart() Step { return Step{Kind: RestartController} }

// CtlCrashMidRestripe returns a CrashControllerDuringRestripe step.
func CtlCrashMidRestripe() Step { return Step{Kind: CrashControllerDuringRestripe} }

// CtlCrashWhileParked returns a CrashControllerWhileParked step.
func CtlCrashWhileParked() Step { return Step{Kind: CrashControllerWhileParked} }

// Cascade expands to count single-cub crash steps for cubs
// first..first+count-1, the k-th firing at at + k·gap — the rolling
// correlated failure of a rack losing cooling rather than power.
func Cascade(at time.Duration, first, count int, gap time.Duration) []Step {
	out := make([]Step, 0, count)
	for k := 0; k < count; k++ {
		out = append(out, Step{At: at + time.Duration(k)*gap, Kind: CrashCub, A: first + k})
	}
	return out
}

// Concat joins step groups built with At into one schedule.
func Concat(groups ...[]Step) []Step {
	var out []Step
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
