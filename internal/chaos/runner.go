package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

// System is the slice of a cluster the runner drives. The root tiger
// package adapts *tiger.Cluster to it; tests substitute fakes.
type System interface {
	NumCubs() int
	Net() *netsim.Network
	CrashCub(i int)
	RestartCub(i int)
	FailCub(i int)
	ReviveCub(i int)
	FailDisk(cub, disk int)
	// Gray disk faults (PR 5): degrade a disk without killing it, so the
	// health monitor has something to detect. HealDisk clears all three.
	SlowDisk(cub, disk int, factor float64)
	ErrorDisk(cub, disk int, prob float64)
	StickDisk(cub, disk int)
	HealDisk(cub, disk int)
	RunFor(d time.Duration)
	Now() sim.Time
}

// ElasticSystem is the optional extension a System implements when it
// supports online elastic restriping. The restripe step kinds require
// it; applying them to a plain System records a restripe-precondition
// violation instead of acting.
type ElasticSystem interface {
	// StartRestripe begins an online restripe to targetCubs cubs.
	StartRestripe(targetCubs int) error
	// RestripePhase reports the current phase; "idle" and "done" mean no
	// restripe is in progress.
	RestripePhase() string
}

// restripeInProgress interprets an ElasticSystem phase string.
func restripeInProgress(phase string) bool {
	return phase != "" && phase != "idle" && phase != "done"
}

// DomainSystem is the optional extension a System implements when its
// layout groups cubs into failure domains. The CrashDomain and
// RestartDomain step kinds require it; the methods return the member
// cub indices actually affected so the runner can track them as down.
type DomainSystem interface {
	CrashDomain(d int) ([]int, error)
	RestartDomain(d int) ([]int, error)
}

// ControllerSystem is the optional extension a System implements when
// its controller can be crashed and restarted (epoch-fenced takeover
// that rebuilds state by scavenging the cubs). The controller step
// kinds require it.
type ControllerSystem interface {
	CrashController()
	RestartController()
	ControllerDown() bool
	// ParkedStreams reports the governor's parked-stream count, the
	// precondition CrashControllerWhileParked asserts.
	ParkedStreams() int
}

// Invariant is one property checked every tick. Check receives quiet =
// true once no fault is outstanding and the scenario's settle period has
// elapsed; properties that only hold at rest (mirror-load conservation,
// view convergence) must return nil while quiet is false.
type Invariant struct {
	Name  string
	Check func(quiet bool) error
}

// Violation records one failed invariant check.
type Violation struct {
	At        sim.Time
	Invariant string
	Err       string
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario   string
	Ticks      int  // invariant sweeps performed
	QuietTicks int  // sweeps with quiet == true
	QuietAtEnd bool // no fault outstanding when the run finished
	// Outstanding names every fault still active at the end of the run,
	// one entry per fault ("cub 3 down", "gray fault on cub 1 disk 2",
	// ...). Empty exactly when QuietAtEnd — a scenario that leaks a fault
	// now says which one instead of a bare false.
	Outstanding []string
	Violations  []Violation
	FaultStats  netsim.FaultStats // cumulative link/data interventions
}

// Ok reports whether the run completed with no invariant violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report and a summary error otherwise.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	v := r.Violations[0]
	return fmt.Errorf("chaos: scenario %q: %d invariant violations (first: %s at %v: %s)",
		r.Scenario, len(r.Violations), v.Invariant, v.At, v.Err)
}

// Runner executes one Scenario against one System.
type Runner struct {
	Sys        System
	Scenario   Scenario
	Invariants []Invariant
	// OnTick, if set, fires after each invariant sweep; sweeps and
	// experiments use it to probe recovery progress.
	OnTick func(now sim.Time, quiet bool)
	// OnViolation, if set, fires the moment any violation is recorded —
	// before the run finishes — so a flight recorder can capture the
	// causal context while it is still in the bounded buffers.
	OnViolation func(v Violation)

	rng       *rand.Rand      // scenario-seeded; data-drop coin flips only
	dropProb  map[int]float64 // cub index (or All) → drop probability
	downCubs  map[int]bool    // FailCub/CrashCub without a matching repair
	sickCubs  map[int]bool    // cubs with a failed disk: never fully quiet
	grayDisks map[[2]int]bool // {cub, disk} with a gray fault not yet healed
	ctlDown   bool            // CrashController without a RestartController
	lastCure  sim.Time        // when the last outstanding fault cleared
}

// NewRunner builds a runner; it validates the scenario against the
// system immediately so malformed schedules fail before any virtual time
// passes.
func NewRunner(sys System, sc Scenario, invs []Invariant) (*Runner, error) {
	if err := sc.Validate(sys.NumCubs()); err != nil {
		return nil, err
	}
	return &Runner{
		Sys:        sys,
		Scenario:   sc,
		Invariants: invs,
		rng:        rand.New(rand.NewSource(sc.Seed)),
		dropProb:   make(map[int]float64),
		downCubs:   make(map[int]bool),
		sickCubs:   make(map[int]bool),
		grayDisks:  make(map[[2]int]bool),
	}, nil
}

// dropData is installed as the network's DropData hook while any
// drop-data probability is set. Draws come from the runner's private
// rng in simulator event order, so runs replay identically.
func (r *Runner) dropData(from msg.NodeID, d netsim.BlockDelivery) bool {
	p, ok := r.dropProb[int(from)]
	if !ok {
		p = r.dropProb[All]
	}
	return p > 0 && r.rng.Float64() < p
}

func (r *Runner) setDropProb(cub int, p float64) {
	if p == 0 {
		delete(r.dropProb, cub)
	} else {
		r.dropProb[cub] = p
	}
	net := r.Sys.Net()
	if len(r.dropProb) == 0 {
		net.DropData = nil
	} else if net.DropData == nil {
		net.DropData = r.dropData
	}
}

// addViolation appends to the report and notifies OnViolation.
func (r *Runner) addViolation(rep *Report, v Violation) {
	rep.Violations = append(rep.Violations, v)
	if r.OnViolation != nil {
		r.OnViolation(v)
	}
}

// requireRestripe records a restripe-precondition violation when the
// system is not mid-restripe at apply time: the step still acts (the
// fault is generic), but the run is flagged because its timing no longer
// exercises the interplay the schedule was written to test.
func (r *Runner) requireRestripe(rep *Report, st Step) {
	es, ok := r.Sys.(ElasticSystem)
	if !ok {
		r.addViolation(rep, Violation{
			At: r.Sys.Now(), Invariant: "restripe-precondition",
			Err: fmt.Sprintf("step %s requires an elastic system", st.Kind),
		})
		return
	}
	if p := es.RestripePhase(); !restripeInProgress(p) {
		r.addViolation(rep, Violation{
			At: r.Sys.Now(), Invariant: "restripe-precondition",
			Err: fmt.Sprintf("step %s at %v fired with restripe phase %q", st.Kind, st.At, p),
		})
	}
}

// isolate cuts cub a off from every other cub and the controller.
func (r *Runner) isolate(a msg.NodeID) {
	net := r.Sys.Net()
	for i := 0; i < r.Sys.NumCubs(); i++ {
		if msg.NodeID(i) != a {
			net.Cut(a, msg.NodeID(i))
		}
	}
	net.Cut(a, msg.Controller)
}

// apply executes one step now. rep collects precondition violations
// from the restripe-gated kinds.
func (r *Runner) apply(rep *Report, st Step) {
	net := r.Sys.Net()
	a, b := msg.NodeID(st.A), msg.NodeID(st.B)
	switch st.Kind {
	case CrashCub:
		r.Sys.CrashCub(st.A)
		r.downCubs[st.A] = true
	case RestartCub:
		r.Sys.RestartCub(st.A)
		delete(r.downCubs, st.A)
	case FailCub:
		r.Sys.FailCub(st.A)
		r.downCubs[st.A] = true
	case ReviveCub:
		r.Sys.ReviveCub(st.A)
		delete(r.downCubs, st.A)
	case FailDisk:
		r.Sys.FailDisk(st.A, st.Disk)
		r.sickCubs[st.A] = true
	case CutLink:
		net.Cut(a, b)
	case CutOneWay:
		net.CutOneWay(a, b)
	case HealLink:
		net.Heal(a, b)
	case HealOneWay:
		net.HealOneWay(a, b)
	case FlakyLink:
		net.SetFlaky(a, b, st.Flaky)
	case FlakyOneWay:
		net.SetFlakyOneWay(a, b, st.Flaky)
	case Isolate:
		r.isolate(a)
	case Rejoin:
		for i := 0; i < r.Sys.NumCubs(); i++ {
			if i != st.A {
				net.Heal(a, msg.NodeID(i))
			}
		}
		net.Heal(a, msg.Controller)
	case HealAll:
		net.HealAllLinks()
	case DropData:
		r.setDropProb(st.A, st.Prob)
	case SlowDisk:
		r.Sys.SlowDisk(st.A, st.Disk, st.Factor)
		r.grayDisks[[2]int{st.A, st.Disk}] = true
	case ErrorDisk:
		r.Sys.ErrorDisk(st.A, st.Disk, st.Prob)
		r.grayDisks[[2]int{st.A, st.Disk}] = true
	case StickDisk:
		r.Sys.StickDisk(st.A, st.Disk)
		r.grayDisks[[2]int{st.A, st.Disk}] = true
	case HealDisk:
		r.Sys.HealDisk(st.A, st.Disk)
		delete(r.grayDisks, [2]int{st.A, st.Disk})
	case RestripeStart:
		es, ok := r.Sys.(ElasticSystem)
		if !ok {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "restripe-precondition",
				Err: fmt.Sprintf("step %s requires an elastic system", st.Kind),
			})
			break
		}
		if err := es.StartRestripe(st.A); err != nil {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "restripe-precondition",
				Err: fmt.Sprintf("restripe to %d cubs refused: %v", st.A, err),
			})
		}
	case CrashDuringRestripe:
		r.requireRestripe(rep, st)
		r.Sys.CrashCub(st.A)
		r.downCubs[st.A] = true
	case PartitionMidMove:
		r.requireRestripe(rep, st)
		r.isolate(a)
	case DiskSlowDuringRestripe:
		r.requireRestripe(rep, st)
		r.Sys.SlowDisk(st.A, st.Disk, st.Factor)
		r.grayDisks[[2]int{st.A, st.Disk}] = true
	case CrashMany:
		for k := 0; k < st.B; k++ {
			r.Sys.CrashCub(st.A + k)
			r.downCubs[st.A+k] = true
		}
	case RestartMany:
		for k := 0; k < st.B; k++ {
			r.Sys.RestartCub(st.A + k)
			delete(r.downCubs, st.A+k)
		}
	case CrashDomain:
		ds, ok := r.Sys.(DomainSystem)
		if !ok {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "domain-precondition",
				Err: fmt.Sprintf("step %s requires a domain-aware system", st.Kind),
			})
			break
		}
		members, err := ds.CrashDomain(st.A)
		if err != nil {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "domain-precondition",
				Err: fmt.Sprintf("crash of domain %d refused: %v", st.A, err),
			})
			break
		}
		for _, c := range members {
			r.downCubs[c] = true
		}
	case RestartDomain:
		ds, ok := r.Sys.(DomainSystem)
		if !ok {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "domain-precondition",
				Err: fmt.Sprintf("step %s requires a domain-aware system", st.Kind),
			})
			break
		}
		members, err := ds.RestartDomain(st.A)
		if err != nil {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "domain-precondition",
				Err: fmt.Sprintf("restart of domain %d refused: %v", st.A, err),
			})
			break
		}
		for _, c := range members {
			delete(r.downCubs, c)
		}
	case CrashController, RestartController, CrashControllerDuringRestripe, CrashControllerWhileParked:
		cs, ok := r.Sys.(ControllerSystem)
		if !ok {
			r.addViolation(rep, Violation{
				At: r.Sys.Now(), Invariant: "controller-precondition",
				Err: fmt.Sprintf("step %s requires a controller-aware system", st.Kind),
			})
			break
		}
		switch st.Kind {
		case RestartController:
			cs.RestartController()
			r.ctlDown = false
		case CrashControllerDuringRestripe:
			r.requireRestripe(rep, st)
			cs.CrashController()
			r.ctlDown = true
		case CrashControllerWhileParked:
			if cs.ParkedStreams() == 0 {
				r.addViolation(rep, Violation{
					At: r.Sys.Now(), Invariant: "controller-precondition",
					Err: fmt.Sprintf("step %s at %v fired with no parked streams", st.Kind, st.At),
				})
			}
			cs.CrashController()
			r.ctlDown = true
		default: // CrashController
			cs.CrashController()
			r.ctlDown = true
		}
	}
	r.lastCure = r.Sys.Now()
}

// faultOutstanding reports whether any injected fault is still active.
// Disk failures are excluded: they are permanent by design (the paper
// has no disk revive) and the system is expected to reach a new steady
// state around them; invariants that care consult the system directly.
// Gray disk faults DO count — unlike FailDisk they are healable, and a
// scenario is not quiet until its slow/flaky/stuck disks are healed.
// An in-progress elastic restripe also counts: the system is between
// steady states until the old generation is dropped.
func (r *Runner) faultOutstanding() bool {
	if len(r.downCubs) > 0 || len(r.dropProb) > 0 || len(r.grayDisks) > 0 ||
		r.ctlDown || r.Sys.Net().FaultedLinks() > 0 {
		return true
	}
	if es, ok := r.Sys.(ElasticSystem); ok && restripeInProgress(es.RestripePhase()) {
		return true
	}
	return false
}

// outstanding enumerates the active faults faultOutstanding counts, one
// string per fault in deterministic order, for Report.Outstanding.
func (r *Runner) outstanding() []string {
	var out []string
	for _, c := range sortedInts(r.downCubs) {
		out = append(out, fmt.Sprintf("cub %d down", c))
	}
	if r.ctlDown {
		out = append(out, "controller down")
	}
	for _, c := range sortedInts(r.dropProb) {
		if c == All {
			out = append(out, fmt.Sprintf("data drop p=%.3g on all cubs", r.dropProb[c]))
		} else {
			out = append(out, fmt.Sprintf("data drop p=%.3g on cub %d", r.dropProb[c], c))
		}
	}
	keys := make([][2]int, 0, len(r.grayDisks))
	for k := range r.grayDisks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		out = append(out, fmt.Sprintf("gray fault on cub %d disk %d", k[0], k[1]))
	}
	if n := r.Sys.Net().FaultedLinks(); n > 0 {
		out = append(out, fmt.Sprintf("%d faulted links", n))
	}
	if es, ok := r.Sys.(ElasticSystem); ok {
		if p := es.RestripePhase(); restripeInProgress(p) {
			out = append(out, fmt.Sprintf("restripe in phase %q", p))
		}
	}
	return out
}

// sortedInts returns the keys of an int-keyed map in ascending order.
func sortedInts[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// quiet reports whether the quiet-state invariants should engage: no
// outstanding fault, and Settle elapsed since the last fault cleared.
// Faults can clear between scheduled steps (a restripe finishing, links
// healing), so the clock restarts at every tick that still sees one.
func (r *Runner) quiet(now sim.Time) bool {
	if r.faultOutstanding() {
		r.lastCure = now
		return false
	}
	return now.Sub(r.lastCure) >= r.Scenario.settle()
}

func (r *Runner) sweep(rep *Report, now sim.Time) {
	q := r.quiet(now)
	rep.Ticks++
	if q {
		rep.QuietTicks++
	}
	for _, inv := range r.Invariants {
		if err := inv.Check(q); err != nil {
			r.addViolation(rep, Violation{At: now, Invariant: inv.Name, Err: err.Error()})
		}
	}
	if r.OnTick != nil {
		r.OnTick(now, q)
	}
}

// Run drives the system through the scenario: virtual time advances in
// tick-sized slices, due steps are applied in schedule order, and every
// invariant is checked each tick (and once more at the end). The report
// collects all violations; Run itself errors only on harness misuse.
func (r *Runner) Run() (*Report, error) {
	sc := r.Scenario
	steps := sc.sortedSteps()
	tick := sc.tick()
	start := r.Sys.Now()
	end := start.Add(sc.Duration)
	nextTick := start.Add(tick)
	rep := &Report{Scenario: sc.Name}
	r.lastCure = start

	i := 0
	lastSweep := sim.Time(-1)
	for {
		now := r.Sys.Now()
		next := end
		if i < len(steps) {
			if at := start.Add(steps[i].At); at < next {
				next = at
			}
		}
		if nextTick < next {
			next = nextTick
		}
		if d := next.Sub(now); d > 0 {
			r.Sys.RunFor(d)
		}
		now = r.Sys.Now()
		for i < len(steps) && start.Add(steps[i].At) <= now {
			r.apply(rep, steps[i])
			i++
		}
		if now >= nextTick {
			r.sweep(rep, now)
			lastSweep = now
			nextTick = nextTick.Add(tick)
		}
		if now >= end {
			break
		}
	}
	if r.Sys.Now() != lastSweep {
		r.sweep(rep, r.Sys.Now())
	}
	rep.Outstanding = r.outstanding()
	rep.QuietAtEnd = len(rep.Outstanding) == 0
	rep.FaultStats = r.Sys.Net().FaultStats()
	// Leave the network clean for whatever runs next.
	if len(r.dropProb) > 0 {
		r.dropProb = make(map[int]float64)
		r.Sys.Net().DropData = nil
	}
	return rep, nil
}
