package chaos

import (
	"fmt"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/sim"
)

// fakeSystem wraps a real engine + network with recording cub controls.
type fakeSystem struct {
	eng   *sim.Engine
	net   *netsim.Network
	cubs  int
	calls []string
}

func newFakeSystem(t *testing.T, cubs int) *fakeSystem {
	t.Helper()
	eng := sim.New(1)
	net := netsim.New(netsim.DefaultParams(), clock.Sim{Eng: eng}, eng.Rand())
	for i := 0; i < cubs; i++ {
		net.Register(msg.NodeID(i), netsim.HandlerFunc(func(msg.NodeID, msg.Message) {}))
	}
	return &fakeSystem{eng: eng, net: net, cubs: cubs}
}

func (f *fakeSystem) record(s string)        { f.calls = append(f.calls, s) }
func (f *fakeSystem) NumCubs() int           { return f.cubs }
func (f *fakeSystem) Net() *netsim.Network   { return f.net }
func (f *fakeSystem) CrashCub(i int)         { f.record("crash"); f.net.Crash(msg.NodeID(i)) }
func (f *fakeSystem) RestartCub(i int)       { f.record("restart"); f.net.Revive(msg.NodeID(i)) }
func (f *fakeSystem) FailCub(i int)          { f.record("fail"); f.net.Fail(msg.NodeID(i)) }
func (f *fakeSystem) ReviveCub(i int)        { f.record("revive"); f.net.Revive(msg.NodeID(i)) }
func (f *fakeSystem) FailDisk(cub, disk int) { f.record("disk") }
func (f *fakeSystem) SlowDisk(cub, disk int, factor float64) {
	f.record(fmt.Sprintf("slow %d/%d x%g", cub, disk, factor))
}
func (f *fakeSystem) ErrorDisk(cub, disk int, prob float64) {
	f.record(fmt.Sprintf("err %d/%d p%g", cub, disk, prob))
}
func (f *fakeSystem) StickDisk(cub, disk int) { f.record(fmt.Sprintf("stick %d/%d", cub, disk)) }
func (f *fakeSystem) HealDisk(cub, disk int)  { f.record(fmt.Sprintf("healdisk %d/%d", cub, disk)) }
func (f *fakeSystem) RunFor(d time.Duration)  { f.eng.RunFor(d) }
func (f *fakeSystem) Now() sim.Time           { return f.eng.Now() }

func TestValidateRejectsBadSteps(t *testing.T) {
	cases := []Scenario{
		{Name: "no-duration"},
		{Name: "late-step", Duration: time.Second, Steps: []Step{{At: 2 * time.Second, Kind: CrashCub}}},
		{Name: "bad-kind", Duration: time.Second, Steps: []Step{{Kind: "melt"}}},
		{Name: "bad-cub", Duration: time.Second, Steps: []Step{{Kind: CrashCub, A: 9}}},
		{Name: "bad-peer", Duration: time.Second, Steps: []Step{{Kind: CutLink, A: 0, B: 9}}},
		{Name: "self-link", Duration: time.Second, Steps: []Step{{Kind: CutLink, A: 1, B: 1}}},
		{Name: "bad-prob", Duration: time.Second, Steps: []Step{{Kind: DropData, A: 0, Prob: 2}}},
		{Name: "slow-below-1", Duration: time.Second, Steps: []Step{DiskSlow(0, 0, 0.5)}},
		{Name: "err-prob-zero", Duration: time.Second, Steps: []Step{{Kind: ErrorDisk, A: 0}}},
		{Name: "err-prob-high", Duration: time.Second, Steps: []Step{DiskErrors(0, 0, 1.5)}},
	}
	for _, sc := range cases {
		if err := sc.Validate(4); err == nil {
			t.Errorf("scenario %q validated", sc.Name)
		}
	}
	good := Scenario{
		Name:     "good",
		Duration: time.Second,
		Steps: Concat(
			At(0, IsolateCub(2), DataLoss(All, 0.5)),
			At(250*time.Millisecond, DiskSlow(1, 0, 3), DiskErrors(1, 1, 0.05), DiskStick(0, 0)),
			At(500*time.Millisecond, RejoinCub(2), DataLoss(All, 0), DiskHeal(1, 0), DiskHeal(1, 1), DiskHeal(0, 0)),
		),
	}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good scenario rejected: %v", err)
	}
}

func TestRunnerAppliesScheduleInOrder(t *testing.T) {
	sys := newFakeSystem(t, 4)
	sc := Scenario{
		Name:     "order",
		Duration: 2 * time.Second,
		Settle:   100 * time.Millisecond,
		Steps: Concat(
			// Listed out of time order on purpose; the runner sorts.
			At(900*time.Millisecond, Revive(1)),
			At(100*time.Millisecond, Fail(1)),
			At(300*time.Millisecond, Cut(2, 3)),
			At(600*time.Millisecond, Heal(2, 3)),
		),
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fail", "revive"}
	if len(sys.calls) != 2 || sys.calls[0] != want[0] || sys.calls[1] != want[1] {
		t.Fatalf("calls %v, want %v", sys.calls, want)
	}
	if !rep.QuietAtEnd {
		t.Fatal("faults left outstanding")
	}
	if sys.net.FaultedLinks() != 0 {
		t.Fatal("link fault left behind")
	}
	if rep.Ticks < 19 {
		t.Fatalf("only %d ticks for a 2s run at 100ms", rep.Ticks)
	}
	if rep.QuietTicks == 0 {
		t.Fatal("never reached quiet despite 1.1s of settled tail")
	}
}

func TestQuietGating(t *testing.T) {
	sys := newFakeSystem(t, 3)
	var quietSeen, loudSeen bool
	inv := Invariant{Name: "probe", Check: func(quiet bool) error {
		if quiet {
			quietSeen = true
		} else {
			loudSeen = true
		}
		return nil
	}}
	sc := Scenario{
		Name:     "quiet",
		Duration: 3 * time.Second,
		Settle:   500 * time.Millisecond,
		Steps: Concat(
			At(0, Cut(0, 1)),
			At(2*time.Second, Heal(0, 1)),
		),
	}
	r, err := NewRunner(sys, sc, []Invariant{inv})
	if err != nil {
		t.Fatal(err)
	}
	var firstQuiet sim.Time
	r.OnTick = func(now sim.Time, quiet bool) {
		if quiet && firstQuiet == 0 {
			firstQuiet = now
		}
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !quietSeen || !loudSeen {
		t.Fatalf("quietSeen=%v loudSeen=%v", quietSeen, loudSeen)
	}
	// Quiet must not engage before heal + settle.
	if firstQuiet < sim.Time(2500*time.Millisecond) {
		t.Fatalf("quiet at %v, before heal+settle", firstQuiet)
	}
	if rep.Ticks != rep.QuietTicks+countLoud(rep) {
		t.Fatalf("tick bookkeeping inconsistent: %+v", rep)
	}
}

func countLoud(rep *Report) int { return rep.Ticks - rep.QuietTicks }

func TestViolationsRecorded(t *testing.T) {
	sys := newFakeSystem(t, 2)
	n := 0
	inv := Invariant{Name: "flaky-check", Check: func(bool) error {
		n++
		if n == 3 {
			return errTest
		}
		return nil
	}}
	sc := Scenario{Name: "viol", Duration: time.Second}
	r, err := NewRunner(sys, sc, []Invariant{inv})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() || len(rep.Violations) != 1 {
		t.Fatalf("violations %v", rep.Violations)
	}
	if rep.Violations[0].Invariant != "flaky-check" {
		t.Fatalf("violation %+v", rep.Violations[0])
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil with violations")
	}
}

type testErr string

func (e testErr) Error() string { return string(e) }

const errTest = testErr("boom")

func TestDropDataDeterministic(t *testing.T) {
	run := func() (drops int64) {
		sys := newFakeSystem(t, 2)
		sink := dummySink{}
		sys.net.RegisterViewer(1, sink)
		sc := Scenario{
			Name:     "drops",
			Seed:     42,
			Duration: time.Second,
			Steps:    At(0, DataLoss(0, 0.5)),
		}
		r, err := NewRunner(sys, sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Schedule a stream of block sends across the run.
		for i := 0; i < 200; i++ {
			d := time.Duration(i) * 4 * time.Millisecond
			sys.eng.After(d, func() {
				sys.net.SendBlock(0, netsim.BlockDelivery{Viewer: 1, Bytes: 100, Parts: 1}, time.Millisecond)
			})
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.net.FaultStats().DataDrops
	}
	a, b := run(), run()
	if a == 0 || a == 200 {
		t.Fatalf("drop prob 0.5 dropped %d of 200", a)
	}
	if a != b {
		t.Fatalf("same seed dropped %d then %d blocks", a, b)
	}
}

func TestGrayDiskStepsApplyAndGateQuiet(t *testing.T) {
	sys := newFakeSystem(t, 3)
	sc := Scenario{
		Name:     "gray",
		Duration: 2 * time.Second,
		Settle:   200 * time.Millisecond,
		Steps: Concat(
			At(100*time.Millisecond, DiskSlow(1, 0, 3)),
			At(300*time.Millisecond, DiskStick(2, 1)),
			At(600*time.Millisecond, DiskHeal(1, 0)),
			At(900*time.Millisecond, DiskHeal(2, 1)),
		),
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var firstQuiet sim.Time
	r.OnTick = func(now sim.Time, quiet bool) {
		if quiet && firstQuiet == 0 {
			firstQuiet = now
		}
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"slow 1/0 x3", "stick 2/1", "healdisk 1/0", "healdisk 2/1"}
	if len(sys.calls) != len(want) {
		t.Fatalf("calls %v, want %v", sys.calls, want)
	}
	for i := range want {
		if sys.calls[i] != want[i] {
			t.Fatalf("calls %v, want %v", sys.calls, want)
		}
	}
	// Gray faults gate quiet: it cannot engage until the last heal + settle.
	if firstQuiet < sim.Time(1100*time.Millisecond) {
		t.Fatalf("quiet at %v, before last heal + settle", firstQuiet)
	}
	if !rep.QuietAtEnd {
		t.Fatal("gray fault left outstanding after heals")
	}
}

type dummySink struct{}

func (dummySink) DeliverBlock(netsim.BlockDelivery) {}

func TestIsolateCutsEverything(t *testing.T) {
	sys := newFakeSystem(t, 4)
	sc := Scenario{
		Name:     "iso",
		Duration: time.Second,
		Steps: Concat(
			At(0, IsolateCub(1)),
			At(500*time.Millisecond, RejoinCub(1)),
		),
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	applied := false
	r.OnTick = func(now sim.Time, quiet bool) {
		if now < sim.Time(500*time.Millisecond) && !applied {
			applied = true
			// 3 peers + controller, both directions.
			if got := sys.net.FaultedLinks(); got != 8 {
				t.Fatalf("isolate cut %d directed links, want 8", got)
			}
			if !sys.net.LinkCut(1, msg.Controller) || !sys.net.LinkCut(msg.Controller, 1) {
				t.Fatal("controller link not cut")
			}
		}
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("probe never ran")
	}
	if sys.net.FaultedLinks() != 0 || !rep.QuietAtEnd {
		t.Fatal("rejoin did not heal all links")
	}
}

func TestValidateRestripeWidening(t *testing.T) {
	// A restripe-start to 6 cubs makes cubs 4 and 5 legal targets for
	// every later step on a 4-cub cluster.
	grow := Scenario{
		Name:     "grow-widens",
		Duration: 10 * time.Second,
		Steps: Concat(
			At(0, Restripe(6)),
			At(time.Second, CrashMidRestripe(5)),
			At(2*time.Second, Restart(5)),
		),
	}
	if err := grow.Validate(4); err != nil {
		t.Fatalf("grow scenario rejected: %v", err)
	}

	// The same crash without the restripe-start is out of bounds.
	noStart := Scenario{
		Name:     "no-start",
		Duration: 10 * time.Second,
		Steps:    At(time.Second, CrashMidRestripe(5)),
	}
	if err := noStart.Validate(4); err == nil {
		t.Fatal("crash of cub 5 of 4 validated without a restripe-start")
	}

	// The widening applies in schedule order: a step BEFORE the
	// restripe-start cannot use the future bound.
	early := Scenario{
		Name:     "early-strike",
		Duration: 10 * time.Second,
		Steps: Concat(
			At(0, Crash(5)),
			At(time.Second, Restripe(6)),
		),
	}
	if err := early.Validate(4); err == nil {
		t.Fatal("step before restripe-start used the widened bound")
	}

	// A shrink never lowers the bound: the retiring cubs still exist to
	// be crashed or partitioned — that is what the linger defends.
	shrink := Scenario{
		Name:     "shrink-keeps-bound",
		Duration: 10 * time.Second,
		Steps: Concat(
			At(0, Restripe(2)),
			At(time.Second, IsolateMidRestripe(3)),
			At(2*time.Second, RejoinCub(3)),
		),
	}
	if err := shrink.Validate(4); err != nil {
		t.Fatalf("shrink scenario rejected: %v", err)
	}

	for _, bad := range []Scenario{
		{Name: "target-too-small", Duration: time.Second, Steps: At(0, Restripe(1))},
		{Name: "slow-below-1", Duration: time.Second, Steps: At(0, DiskSlowMidRestripe(0, 0, 0.5))},
	} {
		if err := bad.Validate(4); err == nil {
			t.Errorf("scenario %q validated", bad.Name)
		}
	}
}

func TestRestripePreconditionViolations(t *testing.T) {
	// On a system that does not support elastic restriping, every
	// restripe-gated step still applies its generic fault but records a
	// restripe-precondition violation.
	sys := newFakeSystem(t, 4)
	sc := Scenario{
		Name:     "no-elastic",
		Duration: time.Second,
		Settle:   100 * time.Millisecond,
		Steps: Concat(
			At(100*time.Millisecond, Restripe(6)),
			At(200*time.Millisecond, CrashMidRestripe(2)),
			At(400*time.Millisecond, Restart(2)),
		),
	}
	r, err := NewRunner(sys, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var pre int
	for _, v := range rep.Violations {
		if v.Invariant == "restripe-precondition" {
			pre++
		}
	}
	if pre != 2 {
		t.Fatalf("recorded %d restripe-precondition violations, want 2: %v", pre, rep.Violations)
	}
	// The crash itself still acted.
	var crashed bool
	for _, call := range sys.calls {
		if call == "crash" {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("gated crash step never applied its fault")
	}
}
