package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
)

func TestNodeExecutorSerializes(t *testing.T) {
	n := NewNode(time.Now())
	defer n.Close()
	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		n.Do(func() {
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			mu.Lock()
			inside--
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("executor ran %d callbacks concurrently", maxInside)
	}
	if p := n.Processed(); p < 200 {
		t.Fatalf("Processed() = %d after 200 callbacks", p)
	}
}

func TestNodeClock(t *testing.T) {
	n := NewNode(time.Now())
	defer n.Close()
	start := n.Now()
	fired := make(chan struct{})
	n.After(30*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if n.Now().Sub(start) < 25*time.Millisecond {
		t.Fatal("clock barely advanced")
	}
	// Stopped timers do not fire.
	var ran atomic.Bool
	tm := n.After(50*time.Millisecond, func() { ran.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	time.Sleep(120 * time.Millisecond)
	if ran.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestMeshRoundTrip(t *testing.T) {
	epoch := time.Now()
	nodeA := NewNode(epoch)
	nodeB := NewNode(epoch)
	defer nodeA.Close()
	defer nodeB.Close()

	got := make(chan msg.Message, 16)
	addrs := map[msg.NodeID]string{}

	meshB, err := NewMesh(1, nodeB, "127.0.0.1:0", addrs,
		func(from msg.NodeID, m msg.Message) {
			if from != 0 {
				t.Errorf("from = %v", from)
			}
			got <- m
		})
	if err != nil {
		t.Fatal(err)
	}
	defer meshB.Close()
	addrs[1] = meshB.Addr()

	meshA, err := NewMesh(0, nodeA, "127.0.0.1:0", addrs, func(msg.NodeID, msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer meshA.Close()

	for i := 0; i < 10; i++ {
		meshA.Send(0, 1, &msg.Heartbeat{From: 0, Epoch: int32(i)})
	}
	// The connection preamble — a Hello announcing the sender's liveness
	// epoch — is delivered to the handler before the payload messages.
	select {
	case m := <-got:
		if _, ok := m.(*msg.Hello); !ok {
			t.Fatalf("first frame %+v, want Hello", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("hello never arrived")
	}
	for i := 0; i < 10; i++ {
		select {
		case m := <-got:
			hb, ok := m.(*msg.Heartbeat)
			if !ok || hb.Epoch != int32(i) {
				t.Fatalf("message %d: %+v", i, m)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

func TestAddrCodec(t *testing.T) {
	a, err := EncodeAddr("127.0.0.1:65535")
	if err != nil {
		t.Fatal(err)
	}
	if DecodeAddr(a) != "127.0.0.1:65535" {
		t.Fatalf("round trip %q", DecodeAddr(a))
	}
	if _, err := EncodeAddr("host.example.com:12345"); err == nil {
		t.Fatal("oversized address accepted")
	}
}

// rtSystem assembles a full real-TCP Tiger system on loopback.
func rtSystem(t *testing.T, cubs int) (*ControllerHost, []*CubHost, *core.Config) {
	t.Helper()
	ctl, hosts, cfg, _, _ := rtSystemFull(t, cubs)
	return ctl, hosts, cfg
}

// rtSystemFull additionally returns the shared address map and time epoch,
// which a test needs to launch a replacement host for a killed cub.
func rtSystemFull(t *testing.T, cubs int) (*ControllerHost, []*CubHost, *core.Config,
	map[msg.NodeID]string, time.Time) {
	t.Helper()
	cfg, err := core.BuildConfig(core.SystemSpec{
		Cubs:        cubs,
		DisksPerCub: 1,
		Decluster:   2,
		BlockPlay:   100 * time.Millisecond,
		BlockSize:   32768,
		NumFiles:    2,
		FileBlocks:  600,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Real-time scale-down: leads shrink with the block play time.
	cfg.MinVStateLead = 400 * time.Millisecond
	cfg.MaxVStateLead = 900 * time.Millisecond
	cfg.ForwardInterval = 50 * time.Millisecond
	cfg.DescheduleHold = 300 * time.Millisecond
	cfg.ReadAhead = 100 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.DeadmanTimeout = 500 * time.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	epoch := time.Now()
	addrs := map[msg.NodeID]string{}
	ctl, err := StartControllerHost(cfg, "127.0.0.1:0", addrs, epoch)
	if err != nil {
		t.Fatal(err)
	}
	addrs[msg.Controller] = ctl.Mesh.Addr()
	var hosts []*CubHost
	for i := 0; i < cubs; i++ {
		h, err := StartCubHost(msg.NodeID(i), cfg, "127.0.0.1:0", addrs, epoch, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		addrs[msg.NodeID(i)] = h.Mesh.Addr()
		hosts = append(hosts, h)
	}
	// Meshes snapshot the address table at construction; tell the early
	// starters about the nodes that came up after them.
	for id, a := range addrs {
		ctl.Mesh.SetAddr(id, a)
		for _, h := range hosts {
			h.Mesh.SetAddr(id, a)
		}
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
		ctl.Close()
	})
	return ctl, hosts, cfg, addrs, epoch
}

// cubStats reads a cub's counters on its own executor, so tests do not
// race with the protocol code.
func cubStats(t *testing.T, h *CubHost) core.CubStats {
	t.Helper()
	var st core.CubStats
	done := make(chan struct{})
	h.Node.Do(func() {
		st = h.Cub.Stats()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cub executor unresponsive")
	}
	return st
}

func TestEndToEndStreamOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	ctl, _, _ := rtSystem(t, 4)

	vc, err := NewViewerClient("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var blocks atomic.Int64
	var lastSeq atomic.Int32
	acked := make(chan msg.InstanceID, 1)
	vc.SetHandlers(
		func(b *msg.BlockData) {
			blocks.Add(1)
			lastSeq.Store(b.PlaySeq)
			if len(b.Payload) == 0 {
				t.Error("empty payload")
			}
		},
		func(a *msg.StartAck) {
			select {
			case acked <- a.Instance:
			default:
			}
		},
	)

	cc, err := DialController(ctl.Mesh.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Start(7, vc.Addr(), 0, 0, 2_000_000); err != nil {
		t.Fatal(err)
	}

	var inst msg.InstanceID
	select {
	case inst = <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("no start ack")
	}

	// 100 ms blocks: expect roughly 20 blocks over 2 s of play.
	time.Sleep(2500 * time.Millisecond)
	n := blocks.Load()
	if n < 12 {
		t.Fatalf("received %d blocks over TCP, want ~20", n)
	}

	if err := cc.Stop(inst); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	quiesced := blocks.Load()
	time.Sleep(700 * time.Millisecond)
	if blocks.Load() > quiesced+1 {
		t.Fatalf("blocks kept flowing after stop: %d -> %d", quiesced, blocks.Load())
	}
	t.Logf("received %d blocks, last playseq %d", n, lastSeq.Load())
}

func TestEpochService(t *testing.T) {
	ctl, _, _ := rtSystem(t, 3)
	addr, err := ctl.ServeEpoch("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := FetchEpoch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(epoch) > time.Minute || time.Since(epoch) < 0 {
		t.Fatalf("implausible epoch %v", epoch)
	}
}

// TestFailoverOverTCP kills a cub host mid-stream and verifies the
// deadman protocol and mirror takeover work over real TCP exactly as in
// the simulator: the viewer keeps receiving (some blocks as declustered
// pieces) after a bounded gap.
func TestFailoverOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	ctl, hosts, cfg := rtSystem(t, 5)

	vc, err := NewViewerClient("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var blocks atomic.Int64
	var pieces atomic.Int64
	acked := make(chan msg.InstanceID, 1)
	vc.SetHandlers(
		func(b *msg.BlockData) {
			blocks.Add(1)
			if b.Mirror {
				pieces.Add(1)
			}
		},
		func(a *msg.StartAck) {
			select {
			case acked <- a.Instance:
			default:
			}
		},
	)

	cc, err := DialController(ctl.Mesh.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Start(9, vc.Addr(), 0, 0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("no start ack")
	}
	time.Sleep(1200 * time.Millisecond)

	// Kill a cub that is not currently inserting: close its host. Its
	// TCP listener dies; peers' sends fail silently; the deadman fires
	// within ~500 ms (scaled config).
	victim := hosts[2]
	victim.Close()

	before := blocks.Load()
	time.Sleep(4 * time.Second) // ~8 ring revolutions at 100 ms blocks
	after := blocks.Load()

	t.Logf("blocks: %d before kill, %d after 4s (mirror pieces: %d)", before, after, pieces.Load())
	// 100 ms blocks: ~40 more expected; allow generous losses around the
	// detection window but demand the stream kept flowing.
	if after-before < 25 {
		t.Fatalf("stream stalled after cub failure: %d -> %d", before, after)
	}
	if pieces.Load() == 0 {
		t.Fatal("no declustered mirror pieces delivered over TCP")
	}
	_ = cfg
}

// TestMeshBackoffAndReconnect exercises the hardened redial policy: while
// a peer is down, messages are dropped under backoff instead of each
// eating a fresh dial, and once the peer returns the mesh reconnects and
// announces the configured epoch in its Hello.
func TestMeshBackoffAndReconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	epoch := time.Now()
	nodeA := NewNode(epoch)
	defer nodeA.Close()
	nodeB := NewNode(epoch)
	defer nodeB.Close()

	addrs := map[msg.NodeID]string{}
	gotB := make(chan msg.Message, 256)
	meshB, err := NewMesh(1, nodeB, "127.0.0.1:0", addrs,
		func(from msg.NodeID, m msg.Message) { gotB <- m })
	if err != nil {
		t.Fatal(err)
	}
	bAddr := meshB.Addr()
	addrs[1] = bAddr

	meshA, err := NewMesh(0, nodeA, "127.0.0.1:0", addrs, func(msg.NodeID, msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer meshA.Close()
	meshA.SetEpoch(1)

	// Establish the connection; the first frame must be Hello{Epoch: 1}.
	meshA.Send(0, 1, &msg.Heartbeat{From: 0})
	select {
	case m := <-gotB:
		h, ok := m.(*msg.Hello)
		if !ok || h.From != 0 || h.Epoch != 1 {
			t.Fatalf("first frame %+v, want Hello from 0 epoch 1", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no hello")
	}
	select {
	case m := <-gotB:
		if _, ok := m.(*msg.Heartbeat); !ok {
			t.Fatalf("second frame %+v, want heartbeat", m)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no heartbeat")
	}

	// Kill B. Its Close tears down the accepted connection, so A's next
	// send fails and A starts probing.
	meshB.Close()

	// Outage traffic: 40 sends over ~400 ms. The old per-message dial
	// would attempt 40 dials; under backoff almost all sends must be
	// dropped without dialing.
	for i := 0; i < 40; i++ {
		meshA.Send(0, 1, &msg.Heartbeat{From: 0})
		time.Sleep(10 * time.Millisecond)
	}
	st := meshA.Stats()
	if st.DialFails == 0 {
		t.Fatalf("no failed dials recorded during outage: %+v", st)
	}
	if st.BackoffDrops < 10 {
		t.Fatalf("only %d backoff drops over 40 sends; redials not rate limited: %+v",
			st.BackoffDrops, st)
	}
	if st.Dials > 15 {
		t.Fatalf("%d dials during a 400ms outage; dial storm: %+v", st.Dials, st)
	}

	// Restart B on the same address with a new epoch on A's side, as a
	// restarted cub would. A must reconnect within the backoff cap and the
	// new connection's Hello must carry the new epoch.
	meshA.SetEpoch(2)
	nodeB2 := NewNode(epoch)
	defer nodeB2.Close()
	gotB2 := make(chan msg.Message, 256)
	meshB2, err := NewMesh(1, nodeB2, bAddr, addrs,
		func(from msg.NodeID, m msg.Message) { gotB2 <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer meshB2.Close()

	deadline := time.Now().Add(15 * time.Second)
	var helloEpoch int32 = -1
	delivered := false
	for !delivered && time.Now().Before(deadline) {
		meshA.Send(0, 1, &msg.Heartbeat{From: 0, Epoch: 99})
		select {
		case m := <-gotB2:
			switch mm := m.(type) {
			case *msg.Hello:
				helloEpoch = mm.Epoch
			case *msg.Heartbeat:
				delivered = true
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("delivery never resumed after peer restart")
	}
	if helloEpoch != 2 {
		t.Fatalf("reconnect hello epoch %d, want 2", helloEpoch)
	}
	if st := meshA.Stats(); st.Reconnects < 1 {
		t.Fatalf("no reconnect counted: %+v", st)
	}
}

// TestRestartRejoinOverTCP is the rt half of the reintegration story: a
// cub host is killed mid-stream, a replacement process comes up on the
// same identity and address, runs the rejoin handshake, and the ring
// accepts it back — peers reconnect and the stream keeps flowing.
func TestRestartRejoinOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	ctl, hosts, cfg, addrs, epoch := rtSystemFull(t, 5)

	vc, err := NewViewerClient("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var blocks atomic.Int64
	acked := make(chan msg.InstanceID, 1)
	vc.SetHandlers(
		func(b *msg.BlockData) { blocks.Add(1) },
		func(a *msg.StartAck) {
			select {
			case acked <- a.Instance:
			default:
			}
		},
	)

	cc, err := DialController(ctl.Mesh.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Start(9, vc.Addr(), 0, 0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("no start ack")
	}
	time.Sleep(1200 * time.Millisecond)

	victim := hosts[2]
	victimAddr := victim.Mesh.Addr()
	victimEpoch := victim.Cub.Epoch() // never changes on the victim; safe to read
	victim.Close()

	// Let the deadman fire and the mirrors take over.
	time.Sleep(1200 * time.Millisecond)

	// Replacement process: same identity, same address, fresh state. A
	// fresh process boots at epoch 1, so move past the dead incarnation
	// before rejoining.
	h2, err := StartCubHost(2, cfg, victimAddr, addrs, epoch, 1002)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h2.Close)
	h2.Node.Do(func() { h2.Cub.SetEpoch(victimEpoch) })
	h2.Rejoin()

	before := blocks.Load()
	time.Sleep(3 * time.Second)
	after := blocks.Load()
	if after-before < 20 {
		t.Fatalf("stream stalled after restart: %d -> %d", before, after)
	}

	st := cubStats(t, h2)
	if st.Rejoins != 1 {
		t.Fatalf("replacement cub recorded %d rejoins, want 1", st.Rejoins)
	}
	if e := h2.Cub.Epoch(); e <= victimEpoch {
		t.Fatalf("replacement epoch %d not past dead incarnation's %d", e, victimEpoch)
	}

	// Ring peers must have redialed the replacement.
	var reconnects int64
	for i, h := range hosts {
		if i == 2 {
			continue
		}
		reconnects += h.Mesh.Stats().Reconnects
	}
	if reconnects == 0 {
		t.Fatal("no surviving peer reconnected to the restarted cub")
	}

	// The replacement should also be serving again: its heartbeat and
	// rejoin traffic must have cleared believedDead on the neighbours, so
	// new states flow to it and it sends blocks.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := cubStats(t, h2); st.BlocksSent > 0 {
			t.Logf("reintegrated: %d blocks sent, %d states transferred, rejoins served by peers ok",
				st.BlocksSent, st.ViewTransferred)
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("restarted cub never served a block after rejoin")
}
