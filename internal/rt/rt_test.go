package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
)

func TestNodeExecutorSerializes(t *testing.T) {
	n := NewNode(time.Now())
	defer n.Close()
	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		n.Do(func() {
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			mu.Lock()
			inside--
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("executor ran %d callbacks concurrently", maxInside)
	}
}

func TestNodeClock(t *testing.T) {
	n := NewNode(time.Now())
	defer n.Close()
	start := n.Now()
	fired := make(chan struct{})
	n.After(30*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if n.Now().Sub(start) < 25*time.Millisecond {
		t.Fatal("clock barely advanced")
	}
	// Stopped timers do not fire.
	var ran atomic.Bool
	tm := n.After(50*time.Millisecond, func() { ran.Store(true) })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	time.Sleep(120 * time.Millisecond)
	if ran.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestMeshRoundTrip(t *testing.T) {
	epoch := time.Now()
	nodeA := NewNode(epoch)
	nodeB := NewNode(epoch)
	defer nodeA.Close()
	defer nodeB.Close()

	got := make(chan msg.Message, 16)
	addrs := map[msg.NodeID]string{}

	meshB, err := NewMesh(1, nodeB, "127.0.0.1:0", addrs,
		func(from msg.NodeID, m msg.Message) {
			if from != 0 {
				t.Errorf("from = %v", from)
			}
			got <- m
		})
	if err != nil {
		t.Fatal(err)
	}
	defer meshB.Close()
	addrs[1] = meshB.Addr()

	meshA, err := NewMesh(0, nodeA, "127.0.0.1:0", addrs, func(msg.NodeID, msg.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	defer meshA.Close()

	for i := 0; i < 10; i++ {
		meshA.Send(0, 1, &msg.Heartbeat{From: 0, Epoch: int32(i)})
	}
	for i := 0; i < 10; i++ {
		select {
		case m := <-got:
			hb, ok := m.(*msg.Heartbeat)
			if !ok || hb.Epoch != int32(i) {
				t.Fatalf("message %d: %+v", i, m)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
	}
}

func TestAddrCodec(t *testing.T) {
	a, err := EncodeAddr("127.0.0.1:65535")
	if err != nil {
		t.Fatal(err)
	}
	if DecodeAddr(a) != "127.0.0.1:65535" {
		t.Fatalf("round trip %q", DecodeAddr(a))
	}
	if _, err := EncodeAddr("host.example.com:12345"); err == nil {
		t.Fatal("oversized address accepted")
	}
}

// rtSystem assembles a full real-TCP Tiger system on loopback.
func rtSystem(t *testing.T, cubs int) (*ControllerHost, []*CubHost, *core.Config) {
	t.Helper()
	cfg, err := core.BuildConfig(core.SystemSpec{
		Cubs:        cubs,
		DisksPerCub: 1,
		Decluster:   2,
		BlockPlay:   100 * time.Millisecond,
		BlockSize:   32768,
		NumFiles:    2,
		FileBlocks:  600,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Real-time scale-down: leads shrink with the block play time.
	cfg.MinVStateLead = 400 * time.Millisecond
	cfg.MaxVStateLead = 900 * time.Millisecond
	cfg.ForwardInterval = 50 * time.Millisecond
	cfg.DescheduleHold = 300 * time.Millisecond
	cfg.ReadAhead = 100 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.DeadmanTimeout = 500 * time.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	epoch := time.Now()
	addrs := map[msg.NodeID]string{}
	ctl, err := StartControllerHost(cfg, "127.0.0.1:0", addrs, epoch)
	if err != nil {
		t.Fatal(err)
	}
	addrs[msg.Controller] = ctl.Mesh.Addr()
	var hosts []*CubHost
	for i := 0; i < cubs; i++ {
		h, err := StartCubHost(msg.NodeID(i), cfg, "127.0.0.1:0", addrs, epoch, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		addrs[msg.NodeID(i)] = h.Mesh.Addr()
		hosts = append(hosts, h)
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Close()
		}
		ctl.Close()
	})
	return ctl, hosts, cfg
}

func TestEndToEndStreamOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	ctl, _, _ := rtSystem(t, 4)

	vc, err := NewViewerClient("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var blocks atomic.Int64
	var lastSeq atomic.Int32
	acked := make(chan msg.InstanceID, 1)
	vc.SetHandlers(
		func(b *msg.BlockData) {
			blocks.Add(1)
			lastSeq.Store(b.PlaySeq)
			if len(b.Payload) == 0 {
				t.Error("empty payload")
			}
		},
		func(a *msg.StartAck) {
			select {
			case acked <- a.Instance:
			default:
			}
		},
	)

	cc, err := DialController(ctl.Mesh.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Start(7, vc.Addr(), 0, 0, 2_000_000); err != nil {
		t.Fatal(err)
	}

	var inst msg.InstanceID
	select {
	case inst = <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("no start ack")
	}

	// 100 ms blocks: expect roughly 20 blocks over 2 s of play.
	time.Sleep(2500 * time.Millisecond)
	n := blocks.Load()
	if n < 12 {
		t.Fatalf("received %d blocks over TCP, want ~20", n)
	}

	if err := cc.Stop(inst); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	quiesced := blocks.Load()
	time.Sleep(700 * time.Millisecond)
	if blocks.Load() > quiesced+1 {
		t.Fatalf("blocks kept flowing after stop: %d -> %d", quiesced, blocks.Load())
	}
	t.Logf("received %d blocks, last playseq %d", n, lastSeq.Load())
}

func TestEpochService(t *testing.T) {
	ctl, _, _ := rtSystem(t, 3)
	addr, err := ctl.ServeEpoch("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := FetchEpoch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(epoch) > time.Minute || time.Since(epoch) < 0 {
		t.Fatalf("implausible epoch %v", epoch)
	}
}

// TestFailoverOverTCP kills a cub host mid-stream and verifies the
// deadman protocol and mirror takeover work over real TCP exactly as in
// the simulator: the viewer keeps receiving (some blocks as declustered
// pieces) after a bounded gap.
func TestFailoverOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test")
	}
	ctl, hosts, cfg := rtSystem(t, 5)

	vc, err := NewViewerClient("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var blocks atomic.Int64
	var pieces atomic.Int64
	acked := make(chan msg.InstanceID, 1)
	vc.SetHandlers(
		func(b *msg.BlockData) {
			blocks.Add(1)
			if b.Mirror {
				pieces.Add(1)
			}
		},
		func(a *msg.StartAck) {
			select {
			case acked <- a.Instance:
			default:
			}
		},
	)

	cc, err := DialController(ctl.Mesh.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Start(9, vc.Addr(), 0, 0, 2_000_000); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acked:
	case <-time.After(5 * time.Second):
		t.Fatal("no start ack")
	}
	time.Sleep(1200 * time.Millisecond)

	// Kill a cub that is not currently inserting: close its host. Its
	// TCP listener dies; peers' sends fail silently; the deadman fires
	// within ~500 ms (scaled config).
	victim := hosts[2]
	victim.Close()

	before := blocks.Load()
	time.Sleep(4 * time.Second) // ~8 ring revolutions at 100 ms blocks
	after := blocks.Load()

	t.Logf("blocks: %d before kill, %d after 4s (mirror pieces: %d)", before, after, pieces.Load())
	// 100 ms blocks: ~40 more expected; allow generous losses around the
	// detection window but demand the stream kept flowing.
	if after-before < 25 {
		t.Fatalf("stream stalled after cub failure: %d -> %d", before, after)
	}
	if pieces.Load() == 0 {
		t.Fatal("no declustered mirror pieces delivered over TCP")
	}
	_ = cfg
}
