package rt

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tiger/internal/obs"
	"tiger/internal/trace"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("tiger_test_total", "A test counter.", obs.Labels{"cub": "0"}).Add(7)
	ring := trace.NewRing(16)
	ring.Add(trace.Event{At: 1, Node: 0, Kind: trace.Insert, Slot: 3, Instance: 9})

	d, err := StartDebug("127.0.0.1:0", DebugConfig{
		Registry: reg,
		Trace:    ring,
		Views: map[string]func(time.Duration) (string, error){
			"cub0": func(time.Duration) (string, error) { return "view of cub0", nil },
		},
		Events: map[string]func() uint64{
			"cub0": func() uint64 { return 42 },
		},
		Info: map[string]string{"node": "cub0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	if code, body := getBody(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `tiger_test_total{cub="0"} 7`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	code, body := getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v (%q)", err, body)
	}
	if health["ok"] != true || health["node"] != "cub0" {
		t.Fatalf("/healthz = %v", health)
	}

	if code, body := getBody(t, base+"/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "view of cub0") ||
		!strings.Contains(body, `"events_processed"`) ||
		!strings.Contains(body, `"cub0": 42`) {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}

	code, body = getBody(t, base+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/debug/trace: want header + 1 event, got %d lines (%q)", len(lines), body)
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("/debug/trace header not JSON: %v (%q)", err, lines[0])
	}
	if hdr["header"] != true || hdr["retained"] != float64(1) {
		t.Fatalf("/debug/trace header = %v", hdr)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("/debug/trace not JSONL: %v (%q)", err, body)
	}
	if ev["kind"] != "insert" {
		t.Fatalf("/debug/trace event = %v", ev)
	}

	if code, body := getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

// TestDebugServerDisabledEndpoints checks the nil-field behaviour: the
// server still answers, with 404s for what it has no backing for.
func TestDebugServerDisabledEndpoints(t *testing.T) {
	d, err := StartDebug("127.0.0.1:0", DebugConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()
	if code, _ := getBody(t, base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without a registry = %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/debug/trace"); code != http.StatusNotFound {
		t.Fatalf("/debug/trace without a ring = %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
}
