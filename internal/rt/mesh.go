package rt

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/wire"
)

// ClientNode is the Hello identity used by viewer/control clients
// connecting to the controller (they are not ring members).
const ClientNode msg.NodeID = -2

// EncodeAddr packs a "host:port" endpoint into a viewer address field.
// It must fit the 16 bytes the viewer-state record reserves.
func EncodeAddr(hostport string) ([16]byte, error) {
	var a [16]byte
	if len(hostport) > len(a) {
		return a, fmt.Errorf("rt: address %q longer than 16 bytes", hostport)
	}
	copy(a[:], hostport)
	return a, nil
}

// DecodeAddr unpacks EncodeAddr's format.
func DecodeAddr(a [16]byte) string {
	return strings.TrimRight(string(a[:]), "\x00")
}

// peer is one outbound connection with an async send queue, so protocol
// code never blocks on TCP backpressure.
type peer struct {
	ch   chan msg.Message
	quit chan struct{}
}

// Mesh is the TCP control-message transport plus the real data path. It
// implements core.Transport and core.DataPath for one node.
type Mesh struct {
	self    msg.NodeID
	node    *Node
	addrs   map[msg.NodeID]string
	ln      net.Listener
	handler func(from msg.NodeID, m msg.Message)

	mu      sync.Mutex
	peers   map[msg.NodeID]*peer
	viewers map[string]*peer
	closed  bool

	// Logf, if set, receives transport diagnostics.
	Logf func(format string, args ...any)
}

// NewMesh starts listening on listenAddr and begins accepting control
// connections. addrs maps every node (cubs and controller) to its
// listen address. handler is invoked on the node executor for each
// inbound message.
func NewMesh(self msg.NodeID, node *Node, listenAddr string, addrs map[msg.NodeID]string,
	handler func(from msg.NodeID, m msg.Message)) (*Mesh, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		self:    self,
		node:    node,
		addrs:   addrs,
		ln:      ln,
		handler: handler,
		peers:   make(map[msg.NodeID]*peer),
		viewers: make(map[string]*peer),
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the actual listen address (useful with ":0").
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

func (m *Mesh) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

func (m *Mesh) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.serveConn(wire.NewConn(c))
	}
}

func (m *Mesh) serveConn(c *wire.Conn) {
	defer c.Close()
	first, err := c.Recv()
	if err != nil {
		return
	}
	hello, ok := first.(*msg.Hello)
	if !ok {
		m.logf("rt: first frame from %v was %v, not Hello", c.RemoteAddr(), first.Type())
		return
	}
	from := hello.From
	for {
		mm, err := c.Recv()
		if err != nil {
			return
		}
		m.node.Do(func() { m.handler(from, mm) })
	}
}

// Send implements core.Transport. The from argument must be this mesh's
// own node (each machine has its own mesh).
func (m *Mesh) Send(from, to msg.NodeID, mm msg.Message) {
	if from != m.self {
		panic(fmt.Sprintf("rt: node %v sending as %v", m.self, from))
	}
	addr, ok := m.addrs[to]
	if !ok {
		m.logf("rt: no address for %v", to)
		return
	}
	m.peerFor(to, addr).send(mm, m)
}

func (m *Mesh) peerFor(to msg.NodeID, addr string) *peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[to]; ok {
		return p
	}
	p := m.newPeer(addr)
	m.peers[to] = p
	return p
}

// newPeer spawns the writer goroutine for one outbound connection; it
// (re)dials lazily and drops messages while the peer is unreachable,
// exactly like the simulated network drops traffic to failed nodes.
func (m *Mesh) newPeer(addr string) *peer {
	p := &peer{ch: make(chan msg.Message, 4096), quit: make(chan struct{})}
	go func() {
		var conn *wire.Conn
		defer func() {
			if conn != nil {
				conn.Close()
			}
		}()
		for {
			var mm msg.Message
			select {
			case mm = <-p.ch:
			case <-p.quit:
				return
			}
			for attempt := 0; attempt < 2; attempt++ {
				if conn == nil {
					c, err := net.DialTimeout("tcp", addr, 2*time.Second)
					if err != nil {
						m.logf("rt: dial %s: %v", addr, err)
						break // drop the message; peer presumed down
					}
					conn = wire.NewConn(c)
					if err := conn.Send(&msg.Hello{From: m.self}); err != nil {
						conn.Close()
						conn = nil
						continue
					}
				}
				if err := conn.Send(mm); err != nil {
					conn.Close()
					conn = nil
					continue // one redial attempt
				}
				break
			}
		}
	}()
	return p
}

func (p *peer) send(mm msg.Message, m *Mesh) {
	select {
	case p.ch <- mm:
	default:
		m.logf("rt: outbound queue full; dropping %v", mm.Type())
	}
}

// SendBlock implements core.DataPath: pace the send in real time, then
// deliver a BlockData frame (descriptor plus truncated test pattern) to
// the viewer's address.
func (m *Mesh) SendBlock(from msg.NodeID, d netsim.BlockDelivery, pace time.Duration) {
	addr := DecodeAddr(d.Addr)
	if addr == "" {
		return
	}
	payload := testPattern(d.Bytes)
	m.node.After(pace, func() {
		bd := &msg.BlockData{
			Viewer:   d.Viewer,
			Instance: d.Instance,
			File:     d.File,
			Block:    d.Block,
			PlaySeq:  d.PlaySeq,
			Part:     d.Part,
			Parts:    d.Parts,
			Mirror:   d.Mirror,
			Bytes:    d.Bytes,
			Payload:  payload,
		}
		m.viewerPeer(addr).send(bd, m)
	})
}

func (m *Mesh) viewerPeer(addr string) *peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.viewers[addr]; ok {
		return p
	}
	p := m.newPeer(addr)
	m.viewers[addr] = p
	return p
}

// testPattern returns a deterministic stand-in for video payload,
// truncated so demo traffic stays light.
func testPattern(blockBytes int64) []byte {
	n := blockBytes
	if n > 1024 {
		n = 1024
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// Close shuts the mesh down: the listener and all peer writers.
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	peers := make([]*peer, 0, len(m.peers)+len(m.viewers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	for _, p := range m.viewers {
		peers = append(peers, p)
	}
	m.mu.Unlock()

	m.ln.Close()
	for _, p := range peers {
		close(p.quit)
	}
}
