package rt

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tiger/internal/msg"
	"tiger/internal/netsim"
	"tiger/internal/obs"
	"tiger/internal/wire"
)

// ClientNode is the Hello identity used by viewer/control clients
// connecting to the controller (they are not ring members).
const ClientNode msg.NodeID = -2

// EncodeAddr packs a "host:port" endpoint into a viewer address field.
// It must fit the 16 bytes the viewer-state record reserves.
func EncodeAddr(hostport string) ([16]byte, error) {
	var a [16]byte
	if len(hostport) > len(a) {
		return a, fmt.Errorf("rt: address %q longer than 16 bytes", hostport)
	}
	copy(a[:], hostport)
	return a, nil
}

// DecodeAddr unpacks EncodeAddr's format.
func DecodeAddr(a [16]byte) string {
	return strings.TrimRight(string(a[:]), "\x00")
}

// Redial policy for down peers: a half-open probe with exponential
// backoff. While a peer is unreachable at most one dial is attempted per
// backoff window; messages arriving between probes are dropped
// immediately instead of each eating a fresh dial timeout.
const (
	dialTimeout = 2 * time.Second
	backoffBase = 50 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// peer is one outbound connection with an async send queue, so protocol
// code never blocks on TCP backpressure.
type peer struct {
	ch   chan msg.Message
	quit chan struct{}
}

// MeshStats are cumulative transport counters for one mesh.
type MeshStats struct {
	Dials        int64 // connection attempts
	DialFails    int64 // connection attempts that failed
	Reconnects   int64 // successful dials after an established conn was lost
	QueueDrops   int64 // messages dropped because an outbound queue was full
	BackoffDrops int64 // messages dropped while a down peer's redial backed off
}

// Mesh is the TCP control-message transport plus the real data path. It
// implements core.Transport and core.DataPath for one node.
type Mesh struct {
	self    msg.NodeID
	node    *Node
	ln      net.Listener
	handler func(from msg.NodeID, m msg.Message)

	// epoch is stamped into the Hello of every outbound connection, so
	// peers learn about a restarted incarnation from its first frame.
	epoch atomic.Int32

	dials, dialFails, reconnects atomic.Int64
	queueDrops, backoffDrops     atomic.Int64

	mu      sync.Mutex
	addrs   map[msg.NodeID]string
	peers   map[msg.NodeID]*peer
	viewers map[string]*peer
	inbound map[*wire.Conn]struct{}
	closed  bool

	// Logf, if set, receives transport diagnostics.
	Logf func(format string, args ...any)
}

// NewMesh starts listening on listenAddr and begins accepting control
// connections. addrs maps every node (cubs and controller) to its
// listen address; the mesh takes a snapshot, so nodes started later must
// be announced with SetAddr. handler is invoked on the node executor for
// each inbound message.
func NewMesh(self msg.NodeID, node *Node, listenAddr string, addrs map[msg.NodeID]string,
	handler func(from msg.NodeID, m msg.Message)) (*Mesh, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		self:    self,
		node:    node,
		ln:      ln,
		handler: handler,
		addrs:   make(map[msg.NodeID]string, len(addrs)),
		peers:   make(map[msg.NodeID]*peer),
		viewers: make(map[string]*peer),
		inbound: make(map[*wire.Conn]struct{}),
	}
	for id, a := range addrs {
		m.addrs[id] = a
	}
	go m.acceptLoop()
	return m, nil
}

// SetAddr registers or updates a node's control address. An existing
// peer connection keeps the address it was created with; in this
// codebase restarted nodes come back on the same endpoint.
func (m *Mesh) SetAddr(id msg.NodeID, addr string) {
	m.mu.Lock()
	m.addrs[id] = addr
	m.mu.Unlock()
}

// Addr returns the actual listen address (useful with ":0").
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetEpoch sets the liveness epoch announced in outbound Hellos. Call it
// whenever the local cub's epoch changes (cold restart).
func (m *Mesh) SetEpoch(e int32) { m.epoch.Store(e) }

// AttachObs registers the mesh's transport counters with the registry
// as function-backed series reading the mesh's atomics — safe to scrape
// from any goroutine while the writer goroutines update them.
func (m *Mesh) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ls := obs.Labels{"node": m.self.String()}
	reg.CounterFunc("tiger_mesh_dials_total", "TCP connection attempts.", ls,
		func() float64 { return float64(m.dials.Load()) })
	reg.CounterFunc("tiger_mesh_dial_fails_total", "TCP connection attempts that failed.", ls,
		func() float64 { return float64(m.dialFails.Load()) })
	reg.CounterFunc("tiger_mesh_reconnects_total", "Successful dials after an established connection was lost.", ls,
		func() float64 { return float64(m.reconnects.Load()) })
	reg.CounterFunc("tiger_mesh_queue_drops_total", "Messages dropped because an outbound queue was full.", ls,
		func() float64 { return float64(m.queueDrops.Load()) })
	reg.CounterFunc("tiger_mesh_backoff_drops_total", "Messages dropped while a down peer's redial backed off.", ls,
		func() float64 { return float64(m.backoffDrops.Load()) })
	reg.GaugeFunc("tiger_mesh_epoch", "Liveness epoch announced in outbound Hellos.", ls,
		func() float64 { return float64(m.epoch.Load()) })
}

// Stats returns a snapshot of the mesh's transport counters.
func (m *Mesh) Stats() MeshStats {
	return MeshStats{
		Dials:        m.dials.Load(),
		DialFails:    m.dialFails.Load(),
		Reconnects:   m.reconnects.Load(),
		QueueDrops:   m.queueDrops.Load(),
		BackoffDrops: m.backoffDrops.Load(),
	}
}

func (m *Mesh) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

func (m *Mesh) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.serveConn(wire.NewConn(c))
	}
}

func (m *Mesh) serveConn(c *wire.Conn) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close()
		return
	}
	m.inbound[c] = struct{}{}
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.inbound, c)
		m.mu.Unlock()
		c.Close()
	}()
	first, err := c.Recv()
	if err != nil {
		return
	}
	hello, ok := first.(*msg.Hello)
	if !ok {
		m.logf("rt: first frame from %v was %v, not Hello", c.RemoteAddr(), first.Type())
		return
	}
	from := hello.From
	// Deliver the Hello itself: its epoch announcement is how the local
	// cub learns a peer restarted before any fenced traffic arrives.
	m.node.Do(func() { m.handler(from, hello) })
	for {
		mm, err := c.Recv()
		if err != nil {
			return
		}
		m.node.Do(func() { m.handler(from, mm) })
	}
}

// Send implements core.Transport. The from argument must be this mesh's
// own node (each machine has its own mesh).
func (m *Mesh) Send(from, to msg.NodeID, mm msg.Message) {
	if from != m.self {
		panic(fmt.Sprintf("rt: node %v sending as %v", m.self, from))
	}
	m.mu.Lock()
	p, ok := m.peers[to]
	if !ok {
		addr, known := m.addrs[to]
		if !known {
			m.mu.Unlock()
			m.logf("rt: no address for %v", to)
			return
		}
		p = m.newPeer(addr)
		m.peers[to] = p
	}
	m.mu.Unlock()
	p.send(mm, m)
}

// newPeer spawns the writer goroutine for one outbound connection; it
// (re)dials lazily and drops messages while the peer is unreachable,
// exactly like the simulated network drops traffic to failed nodes.
//
// Redial is rate limited: after a failed dial the writer enters a
// backoff window (exponential with jitter, capped at backoffCap) during
// which messages are dropped without dialing. Without this, every
// message to a dead peer eats a fresh dialTimeout, stalling the queue so
// badly that heartbeats back up for the whole outage.
func (m *Mesh) newPeer(addr string) *peer {
	p := &peer{ch: make(chan msg.Message, 4096), quit: make(chan struct{})}
	go func() {
		var conn *wire.Conn
		everConnected := false
		backoff := backoffBase
		var nextDial time.Time
		defer func() {
			if conn != nil {
				conn.Close()
			}
		}()
		for {
			var mm msg.Message
			select {
			case mm = <-p.ch:
			case <-p.quit:
				return
			}
			for attempt := 0; attempt < 2; attempt++ {
				if conn == nil {
					if time.Now().Before(nextDial) {
						m.backoffDrops.Add(1)
						break // half-open: no dial until the window passes
					}
					m.dials.Add(1)
					c, err := net.DialTimeout("tcp", addr, dialTimeout)
					if err != nil {
						m.dialFails.Add(1)
						m.logf("rt: dial %s: %v (next attempt in ~%v)", addr, err, backoff)
						nextDial = time.Now().Add(jitter(backoff))
						backoff *= 2
						if backoff > backoffCap {
							backoff = backoffCap
						}
						break // drop the message; peer presumed down
					}
					conn = wire.NewConn(c)
					if err := conn.Send(&msg.Hello{From: m.self, Epoch: m.epoch.Load()}); err != nil {
						conn.Close()
						conn = nil
						continue
					}
					if everConnected {
						m.reconnects.Add(1)
					}
					everConnected = true
					backoff = backoffBase
					nextDial = time.Time{}
				}
				if err := conn.Send(mm); err != nil {
					conn.Close()
					conn = nil
					continue // one redial attempt
				}
				break
			}
		}
	}()
	return p
}

// jitter draws uniformly from [d/2, d), desynchronizing redial storms
// when many peers lose the same node at once.
func jitter(d time.Duration) time.Duration {
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half))
}

func (p *peer) send(mm msg.Message, m *Mesh) {
	select {
	case p.ch <- mm:
	default:
		m.queueDrops.Add(1)
		m.logf("rt: outbound queue full; dropping %v", mm.Type())
	}
}

// SendBlock implements core.DataPath: pace the send in real time, then
// deliver a BlockData frame (descriptor plus truncated test pattern) to
// the viewer's address.
func (m *Mesh) SendBlock(from msg.NodeID, d netsim.BlockDelivery, pace time.Duration) {
	addr := DecodeAddr(d.Addr)
	if addr == "" {
		return
	}
	payload := testPattern(d.Bytes)
	m.node.After(pace, func() {
		bd := &msg.BlockData{
			Viewer:   d.Viewer,
			Instance: d.Instance,
			File:     d.File,
			Block:    d.Block,
			PlaySeq:  d.PlaySeq,
			Part:     d.Part,
			Parts:    d.Parts,
			Mirror:   d.Mirror,
			Bytes:    d.Bytes,
			Payload:  payload,
		}
		m.viewerPeer(addr).send(bd, m)
	})
}

func (m *Mesh) viewerPeer(addr string) *peer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.viewers[addr]; ok {
		return p
	}
	p := m.newPeer(addr)
	m.viewers[addr] = p
	return p
}

// testPattern returns a deterministic stand-in for video payload,
// truncated so demo traffic stays light.
func testPattern(blockBytes int64) []byte {
	n := blockBytes
	if n > 1024 {
		n = 1024
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// Close shuts the mesh down: the listener, all peer writers, and every
// accepted inbound connection (so peers observe the death promptly
// instead of writing into a half-dead socket).
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	peers := make([]*peer, 0, len(m.peers)+len(m.viewers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	for _, p := range m.viewers {
		peers = append(peers, p)
	}
	inbound := make([]*wire.Conn, 0, len(m.inbound))
	for c := range m.inbound {
		inbound = append(inbound, c)
	}
	m.mu.Unlock()

	m.ln.Close()
	for _, p := range peers {
		close(p.quit)
	}
	for _, c := range inbound {
		c.Close()
	}
}
