package rt

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"tiger/internal/core"
	"tiger/internal/msg"
	"tiger/internal/obs"
	"tiger/internal/sim"
	"tiger/internal/trace"
	"tiger/internal/wire"
)

// CubHost runs one cub as a real network node.
type CubHost struct {
	Node *Node
	Mesh *Mesh
	Cub  *core.Cub
}

// StartCubHost builds and starts a cub listening on listenAddr. addrs
// maps every node in the system to its control address. epoch is the
// shared system epoch (see FetchEpoch).
func StartCubHost(id msg.NodeID, cfg *core.Config, listenAddr string,
	addrs map[msg.NodeID]string, epoch time.Time, seed int64) (*CubHost, error) {
	node := NewNode(epoch)
	var cub *core.Cub
	mesh, err := NewMesh(id, node, listenAddr, addrs,
		func(from msg.NodeID, m msg.Message) { cub.Deliver(from, m) })
	if err != nil {
		node.Close()
		return nil, err
	}
	cub = core.NewCub(id, cfg, node, mesh, mesh, rand.New(rand.NewSource(seed)))
	mesh.SetEpoch(cub.Epoch())
	node.Do(cub.Start)
	return &CubHost{Node: node, Mesh: mesh, Cub: cub}, nil
}

// AttachObs wires the host's cub and mesh to a metrics registry. The
// cub's instruments are created on its executor, so attachment cannot
// race protocol events already in flight; the call blocks until done.
func (h *CubHost) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Cub.AttachObs(reg)
		close(done)
	})
	<-done
	h.Mesh.AttachObs(reg)
}

// AttachTrace installs protocol-event hooks feeding the ring, replacing
// any hooks already set. Events are stamped with the node's wall clock
// (nanoseconds since the shared epoch), so traces from different nodes
// of one system line up.
func (h *CubHost) AttachTrace(ring *trace.Ring) {
	if ring == nil {
		return
	}
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Cub.SetHooks(core.Hooks{
			OnInsert: func(cubID msg.NodeID, slot int32, inst msg.InstanceID, due sim.Time) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.Insert,
					Slot: slot, Instance: inst,
				})
			},
			OnServe: func(cubID msg.NodeID, vs msg.ViewerState) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.Serve,
					Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
					Mirror: vs.Mirror,
				})
			},
			OnMiss: func(cubID msg.NodeID, vs msg.ViewerState) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.Miss,
					Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
					Mirror: vs.Mirror,
				})
			},
			OnHedge: func(cubID msg.NodeID, vs msg.ViewerState) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.Hedge,
					Slot: vs.Slot, Instance: vs.Instance, Block: vs.Block,
				})
			},
			OnQuarantine: func(cubID msg.NodeID, disk int32) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.Quarantine,
					Slot: disk,
				})
			},
			OnMoveCommit: func(cubID msg.NodeID, seq int64) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.MoveCommit,
					Slot: int32(seq),
				})
			},
			OnMoveNack: func(cubID msg.NodeID, seq int64, reason uint8) {
				ring.Add(trace.Event{
					At: h.Node.Now(), Node: cubID, Kind: trace.MoveNack,
					Slot: int32(seq), Block: int32(reason),
				})
			},
		})
		close(done)
	})
	<-done
}

// AttachChainLog installs a causal chain recorder on the cub; hops for
// traced blocks (states whose Trace flag is set) land in l. The
// attachment is executor-marshalled and blocks until installed.
func (h *CubHost) AttachChainLog(l *trace.ChainLog) {
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Cub.SetChainLog(l)
		close(done)
	})
	<-done
}

// DumpView renders the cub's schedule view, marshalling through the
// node executor (the view is executor-owned state). The timeout guards
// HTTP debug handlers against a wedged node.
func (h *CubHost) DumpView(timeout time.Duration) (string, error) {
	ch := make(chan string, 1)
	h.Node.Do(func() { ch <- h.Cub.DumpView() })
	select {
	case s := <-ch:
		return s, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("rt: view dump timed out after %v", timeout)
	}
}

// Rejoin runs the cold-restart reintegration protocol on the cub: wipe
// volatile state, bump the liveness epoch, and ask the ring neighbours
// for the viewer states landing in this cub's window. Call it on a host
// brought back after a crash; a freshly launched process starts at epoch
// 1, so a host standing in for a restarted one should first move past
// the dead incarnation's epoch with h.Cub.SetEpoch. Blocks until the
// handshake is initiated (not until it completes).
func (h *CubHost) Rejoin() {
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Cub.Restart()
		h.Mesh.SetEpoch(h.Cub.Epoch())
		close(done)
	})
	<-done
}

// Close stops the cub host.
func (h *CubHost) Close() {
	h.Mesh.Close()
	h.Node.Close()
}

// ControllerHost runs the controller as a real network node. It also
// serves clients: viewers connect with a ClientNode hello, issue
// StartPlay/Deschedule requests, and receive StartAck frames at their
// own listen address (carried in StartPlay.Addr).
type ControllerHost struct {
	Node *Node
	Mesh *Mesh
	Ctl  *core.Controller

	mu        sync.Mutex
	ackAddrs  map[msg.InstanceID]ackRoute
	epochUnix int64
}

// ackRoute remembers where (and for whom) a pending start's ack goes.
type ackRoute struct {
	addr   string
	viewer msg.ViewerID
}

// StartControllerHost builds and starts the controller.
func StartControllerHost(cfg *core.Config, listenAddr string,
	addrs map[msg.NodeID]string, epoch time.Time) (*ControllerHost, error) {
	node := NewNode(epoch)
	h := &ControllerHost{
		Node:      node,
		ackAddrs:  make(map[msg.InstanceID]ackRoute),
		epochUnix: epoch.UnixNano(),
	}
	mesh, err := NewMesh(msg.Controller, node, listenAddr, addrs, h.handle)
	if err != nil {
		node.Close()
		return nil, err
	}
	h.Mesh = mesh
	h.Ctl = core.NewController(cfg, node, mesh)
	h.Ctl.OnAck = h.onAck
	return h, nil
}

// AttachObs wires the controller and its mesh to a metrics registry,
// blocking until the instruments exist.
func (h *ControllerHost) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Ctl.AttachObs(reg)
		close(done)
	})
	<-done
	h.Mesh.AttachObs(reg)
}

// AttachChainLog installs a causal chain recorder on the controller.
// While attached, every admitted play is stamped traced, so the cubs it
// touches record causal hops (given their own attached logs).
func (h *ControllerHost) AttachChainLog(l *trace.ChainLog) {
	done := make(chan struct{})
	h.Node.Do(func() {
		h.Ctl.SetChainLog(l)
		close(done)
	})
	<-done
}

func (h *ControllerHost) handle(from msg.NodeID, m msg.Message) {
	if from == ClientNode {
		h.handleClient(m)
		return
	}
	h.Ctl.Deliver(from, m)
}

func (h *ControllerHost) handleClient(m msg.Message) {
	switch t := m.(type) {
	case *msg.StartPlay:
		inst, err := h.Ctl.StartPlayFrom(t.Viewer, t.Addr, t.File, t.StartBlock, t.Bitrate)
		if err != nil {
			return // the client times out; admission refusals are silent here
		}
		h.mu.Lock()
		h.ackAddrs[inst] = ackRoute{addr: DecodeAddr(t.Addr), viewer: t.Viewer}
		h.mu.Unlock()
	case *msg.Deschedule:
		h.Ctl.StopPlay(t.Instance)
	case *msg.ClockSync:
		// Answered inline at connection level via FetchEpoch; nothing to
		// do when it arrives through the normal path.
	case *msg.Hello:
		// Connection preamble; clients carry no epoch worth tracking.
	}
}

func (h *ControllerHost) onAck(inst msg.InstanceID, slot int32, waited time.Duration) {
	h.mu.Lock()
	rt := h.ackAddrs[inst]
	delete(h.ackAddrs, inst)
	h.mu.Unlock()
	if rt.addr == "" {
		return
	}
	h.Mesh.viewerPeer(rt.addr).send(&msg.StartAck{Viewer: rt.viewer, Instance: inst, Slot: slot}, h.Mesh)
}

// Close stops the controller host.
func (h *ControllerHost) Close() {
	h.Mesh.Close()
	h.Node.Close()
}

// FetchEpoch asks the controller — the system clock master (§2.1) — for
// the shared epoch. It speaks a one-shot inline protocol: Hello,
// ClockSync request, ClockSync reply.
func FetchEpoch(controllerAddr string) (time.Time, error) {
	c, err := net.DialTimeout("tcp", controllerAddr, 2*time.Second)
	if err != nil {
		return time.Time{}, err
	}
	conn := wire.NewConn(c)
	defer conn.Close()
	if err := conn.Send(&msg.Hello{From: ClientNode}); err != nil {
		return time.Time{}, err
	}
	if err := conn.Send(&msg.ClockSync{}); err != nil {
		return time.Time{}, err
	}
	c.SetReadDeadline(time.Now().Add(3 * time.Second))
	m, err := conn.Recv()
	if err != nil {
		return time.Time{}, err
	}
	cs, ok := m.(*msg.ClockSync)
	if !ok {
		return time.Time{}, fmt.Errorf("rt: epoch reply was %v", m.Type())
	}
	return time.Unix(0, cs.EpochUnixNano), nil
}

// ServeEpoch answers FetchEpoch requests. The controller host runs this
// on its own mesh by intercepting inline ClockSync frames; because the
// generic mesh has no reply channel, the controller instead runs a tiny
// dedicated responder on a second listener.
func (h *ControllerHost) ServeEpoch(listenAddr string) (string, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return "", err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := wire.NewConn(c)
				defer conn.Close()
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					if _, ok := m.(*msg.ClockSync); ok {
						conn.Send(&msg.ClockSync{EpochUnixNano: h.epochUnix})
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// ViewerClient receives StartAck and BlockData frames for one or more
// viewers, standing in for the paper's measurement client application.
type ViewerClient struct {
	ln net.Listener

	mu      sync.Mutex
	OnBlock func(*msg.BlockData)
	OnAck   func(*msg.StartAck)
}

// NewViewerClient listens on listenAddr for data and ack frames.
func NewViewerClient(listenAddr string) (*ViewerClient, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	v := &ViewerClient{ln: ln}
	go v.acceptLoop()
	return v, nil
}

// Addr returns the client's listen address, to be passed in
// StartPlay.Addr.
func (v *ViewerClient) Addr() string { return v.ln.Addr().String() }

// EncodedAddr returns the 16-byte form of Addr.
func (v *ViewerClient) EncodedAddr() ([16]byte, error) { return EncodeAddr(v.Addr()) }

func (v *ViewerClient) acceptLoop() {
	for {
		c, err := v.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			conn := wire.NewConn(c)
			defer conn.Close()
			for {
				m, err := conn.Recv()
				if err != nil {
					return
				}
				v.mu.Lock()
				onBlock, onAck := v.OnBlock, v.OnAck
				v.mu.Unlock()
				switch t := m.(type) {
				case *msg.BlockData:
					if onBlock != nil {
						onBlock(t)
					}
				case *msg.StartAck:
					if onAck != nil {
						onAck(t)
					}
				case *msg.Hello:
					// connection preamble; ignore
				}
			}
		}()
	}
}

// SetHandlers installs the block and ack callbacks.
func (v *ViewerClient) SetHandlers(onBlock func(*msg.BlockData), onAck func(*msg.StartAck)) {
	v.mu.Lock()
	v.OnBlock = onBlock
	v.OnAck = onAck
	v.mu.Unlock()
}

// Close stops the listener.
func (v *ViewerClient) Close() { v.ln.Close() }

// ControlClient is a control-plane connection to the controller.
type ControlClient struct {
	conn *wire.Conn
}

// DialController connects and identifies as a client.
func DialController(addr string) (*ControlClient, error) {
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	conn := wire.NewConn(c)
	if err := conn.Send(&msg.Hello{From: ClientNode}); err != nil {
		conn.Close()
		return nil, err
	}
	return &ControlClient{conn: conn}, nil
}

// Start requests a play; the ack (with the instance ID) arrives at the
// viewer's listener.
func (c *ControlClient) Start(viewer msg.ViewerID, viewerAddr string, file msg.FileID, startBlock int32, bitrate int32) error {
	addr, err := EncodeAddr(viewerAddr)
	if err != nil {
		return err
	}
	return c.conn.Send(&msg.StartPlay{
		Viewer: viewer, Addr: addr, File: file, StartBlock: startBlock, Bitrate: bitrate,
	})
}

// Stop requests a deschedule for an instance.
func (c *ControlClient) Stop(inst msg.InstanceID) error {
	return c.conn.Send(&msg.Deschedule{Instance: inst})
}

// Close closes the control connection.
func (c *ControlClient) Close() { c.conn.Close() }
