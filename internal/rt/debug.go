package rt

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"tiger/internal/obs"
	"tiger/internal/trace"
)

// DebugConfig describes what a node's debug HTTP listener exposes. Any
// nil field simply disables the corresponding endpoint.
type DebugConfig struct {
	// Registry backs /metrics (Prometheus text format).
	Registry *obs.Registry
	// Trace backs /debug/trace (protocol events as JSONL).
	Trace *trace.Ring
	// Views backs /debug/vars: named schedule-view dumps, typically
	// CubHost.DumpView. Each is called with a timeout so a wedged
	// executor cannot hang the handler.
	Views map[string]func(timeout time.Duration) (string, error)
	// Info is echoed verbatim in /healthz (node identity, addresses).
	Info map[string]string
}

// DebugServer is a node's debug HTTP listener: /metrics, /healthz,
// /debug/vars, /debug/trace, and the net/http/pprof suite under
// /debug/pprof/. It runs on its own mux so nothing leaks onto
// http.DefaultServeMux.
type DebugServer struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// StartDebug listens on addr and serves the debug endpoints.
func StartDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.Error(w, "no registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{
			"ok":             true,
			"uptime_seconds": time.Since(d.started).Seconds(),
		}
		for k, v := range cfg.Info {
			resp[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		names := make([]string, 0, len(cfg.Views))
		for n := range cfg.Views {
			names = append(names, n)
		}
		sort.Strings(names)
		views := make(map[string]string, len(names))
		for _, n := range names {
			s, err := cfg.Views[n](2 * time.Second)
			if err != nil {
				s = fmt.Sprintf("error: %v", err)
			}
			views[n] = s
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"info": cfg.Info, "views": views})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Trace == nil {
			http.Error(w, "no trace ring attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Trace.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the listener's address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
