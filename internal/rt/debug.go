package rt

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tiger/internal/msg"
	"tiger/internal/obs"
	"tiger/internal/trace"
)

// DebugConfig describes what a node's debug HTTP listener exposes. Any
// nil field simply disables the corresponding endpoint.
type DebugConfig struct {
	// Registry backs /metrics (Prometheus text format).
	Registry *obs.Registry
	// Trace backs /debug/trace (protocol events as JSONL).
	Trace *trace.Ring
	// Chains backs /debug/trace/{instance} and
	// /debug/trace/{instance}/{block}: the causal hop chain of a traced
	// block, merged and time-ordered. Returns nil for untraced blocks.
	Chains func(inst msg.InstanceID, block int32) []trace.Hop
	// ChainKeys lists the retained (instance, block) chain keys; the
	// instance-level endpoint iterates it.
	ChainKeys func() []trace.ChainKey
	// Views backs /debug/vars: named schedule-view dumps, typically
	// CubHost.DumpView. Each is called with a timeout so a wedged
	// executor cannot hang the handler.
	Views map[string]func(timeout time.Duration) (string, error)
	// Events lists named executor event counters (Node.Processed) for
	// /debug/vars; with uptime it gives per-node events/sec, the same
	// per-event cost denominator the simulator's budgets use.
	Events map[string]func() uint64
	// Info is echoed verbatim in /healthz (node identity, addresses).
	Info map[string]string
}

// DebugServer is a node's debug HTTP listener: /metrics, /healthz,
// /debug/vars, /debug/trace, and the net/http/pprof suite under
// /debug/pprof/. It runs on its own mux so nothing leaks onto
// http.DefaultServeMux.
type DebugServer struct {
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// StartDebug listens on addr and serves the debug endpoints.
func StartDebug(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{ln: ln, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.Error(w, "no registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := map[string]any{
			"ok":             true,
			"uptime_seconds": time.Since(d.started).Seconds(),
		}
		for k, v := range cfg.Info {
			resp[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		names := make([]string, 0, len(cfg.Views))
		for n := range cfg.Views {
			names = append(names, n)
		}
		sort.Strings(names)
		views := make(map[string]string, len(names))
		for _, n := range names {
			s, err := cfg.Views[n](2 * time.Second)
			if err != nil {
				s = fmt.Sprintf("error: %v", err)
			}
			views[n] = s
		}
		events := make(map[string]uint64, len(cfg.Events))
		for n, f := range cfg.Events {
			events[n] = f()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		out := map[string]any{"info": cfg.Info, "views": views}
		if len(events) > 0 {
			out["events_processed"] = events
			out["uptime_seconds"] = time.Since(d.started).Seconds()
		}
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Trace == nil {
			http.Error(w, "no trace ring attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		cfg.Trace.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Chains == nil {
			http.Error(w, "no causal chain log attached", http.StatusNotFound)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/trace/"), "/")
		parts := strings.Split(rest, "/")
		inst, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			http.Error(w, "want /debug/trace/{instance} or /debug/trace/{instance}/{block}", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		writeChain := func(block int32) bool {
			hops := cfg.Chains(msg.InstanceID(inst), block)
			if len(hops) == 0 {
				return false
			}
			jh := make([]trace.JSONHop, len(hops))
			for i, h := range hops {
				jh[i] = h.JSON()
			}
			enc.Encode(map[string]any{"instance": inst, "block": block, "hops": jh})
			return true
		}
		if len(parts) > 1 {
			block, err := strconv.ParseInt(parts[1], 10, 32)
			if err != nil {
				http.Error(w, "bad block number", http.StatusBadRequest)
				return
			}
			if !writeChain(int32(block)) {
				http.Error(w, "block not traced (or chain evicted)", http.StatusNotFound)
			}
			return
		}
		if cfg.ChainKeys == nil {
			http.Error(w, "no chain key listing attached", http.StatusNotFound)
			return
		}
		found := false
		for _, k := range cfg.ChainKeys() {
			if uint64(k.Instance) == inst {
				found = writeChain(k.Block) || found
			}
		}
		if !found {
			http.Error(w, "instance not traced (or chains evicted)", http.StatusNotFound)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.srv = &http.Server{Handler: mux}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the listener's address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
