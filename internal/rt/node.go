// Package rt runs the Tiger protocol (internal/core) in real time over
// real TCP connections: goroutine-per-node executors, wall-clock timers,
// and the wire framing. The identical cub and controller code that runs
// under the simulator runs here — that is the point of the clock and
// transport abstractions.
package rt

import (
	"sync"
	"sync/atomic"
	"time"

	"tiger/internal/clock"
	"tiger/internal/sim"
)

// Node is one machine's executor: a serial event loop that all timers
// and message deliveries for the node are funnelled through, giving the
// protocol code the same single-threaded discipline it has under the
// simulator.
type Node struct {
	epoch     time.Time
	exec      chan func()
	quit      chan struct{}
	once      sync.Once
	wg        sync.WaitGroup
	processed atomic.Uint64
}

// NewNode creates and starts a node executor. All nodes of one system
// must share the same epoch (the controller is the clock master, §2.1).
func NewNode(epoch time.Time) *Node {
	n := &Node{
		epoch: epoch,
		exec:  make(chan func(), 4096),
		quit:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.loop()
	return n
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.exec:
			n.processed.Add(1)
			fn()
		case <-n.quit:
			// Drain whatever is already queued, then stop.
			for {
				select {
				case fn := <-n.exec:
					n.processed.Add(1)
					fn()
				default:
					return
				}
			}
		}
	}
}

// Processed reports the number of events the executor has run — the
// real-time counterpart of sim.Engine.Processed, and the denominator
// for per-event cost when profiling a live node.
func (n *Node) Processed() uint64 { return n.processed.Load() }

// Do schedules fn on the node's executor. It never blocks the caller
// indefinitely: if the node has stopped, the call is dropped.
func (n *Node) Do(fn func()) {
	select {
	case n.exec <- fn:
	case <-n.quit:
	}
}

// Close stops the executor after draining queued work.
func (n *Node) Close() {
	n.once.Do(func() { close(n.quit) })
	n.wg.Wait()
}

// Now implements clock.Clock: nanoseconds since the system epoch.
func (n *Node) Now() sim.Time { return sim.Time(time.Since(n.epoch)) }

type rtTimer struct {
	t *time.Timer
}

func (t rtTimer) Stop() bool { return t.t.Stop() }

// After implements clock.Clock; the callback runs on the executor.
func (n *Node) After(d time.Duration, fn func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	return rtTimer{time.AfterFunc(d, func() { n.Do(fn) })}
}

// At implements clock.Clock.
func (n *Node) At(t sim.Time, fn func()) clock.Timer {
	return n.After(time.Duration(t-n.Now()), fn)
}

var _ clock.Clock = (*Node)(nil)
