package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"tiger/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tiger_test_total", "help", Labels{"cub": "0"})
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Same name+labels returns the same instrument.
	if again := r.Counter("tiger_test_total", "help", Labels{"cub": "0"}); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("tiger_test_gauge", "", nil)
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tiger_test_seconds", "", nil, []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50, 500} {
		h.Observe(v)
	}
	counts, sum, n := h.snapshot()
	if n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
	if sum != 555.55 {
		t.Fatalf("sum = %v, want 555.55", sum)
	}
	// 0.05 -> le=0.1, 0.5 -> le=1, 5 -> le=10, 50 and 500 -> overflow.
	want := []uint64{1, 1, 1, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("tiger_cub_inserts_total", "Slot insertions.", Labels{"cub": "1"}).Add(7)
	r.Counter("tiger_cub_inserts_total", "Slot insertions.", Labels{"cub": "0"}).Add(3)
	r.Gauge("tiger_view_entries", "", Labels{"cub": "0"}).Set(12)
	r.GaugeFunc("tiger_up", "", nil, func() float64 { return 1 })
	h := r.Histogram("tiger_lat_seconds", "", nil, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP tiger_cub_inserts_total Slot insertions.",
		"# TYPE tiger_cub_inserts_total counter",
		`tiger_cub_inserts_total{cub="0"} 3`,
		`tiger_cub_inserts_total{cub="1"} 7`,
		"# TYPE tiger_lat_seconds histogram",
		`tiger_lat_seconds_bucket{le="1"} 1`,
		`tiger_lat_seconds_bucket{le="2"} 2`,
		`tiger_lat_seconds_bucket{le="+Inf"} 3`,
		"tiger_lat_seconds_sum 11",
		"tiger_lat_seconds_count 3",
		`tiger_view_entries{cub="0"} 12`,
		"tiger_up 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("encoding missing %q:\n%s", want, out)
		}
	}
	// Series within a family must be label-sorted.
	if strings.Index(out, `cub="0"`) > strings.Index(out, `cub="1"`) {
		t.Fatalf("series not sorted:\n%s", out)
	}
}

func TestSnapshotJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("tiger_a_total", "", Labels{"cub": "0"}).Add(4)
	r.Histogram("tiger_b_seconds", "", nil, []float64{1}).Observe(3)

	var b bytes.Buffer
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	var p Point
	if err := json.Unmarshal([]byte(lines[0]), &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiger_a_total" || p.Value != 4 || p.Labels["cub"] != "0" {
		t.Fatalf("bad first point: %+v", p)
	}
	if err := json.Unmarshal([]byte(lines[1]), &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiger_b_seconds" || p.Count != 1 || p.Sum != 3 || len(p.Counts) != 2 || p.Counts[1] != 1 {
		t.Fatalf("bad histogram point: %+v", p)
	}
}

func TestSpanRecorder(t *testing.T) {
	r := NewRegistry()
	s := NewSpanRecorder(r, Labels{"cub": "2"})
	due := sim.Time(2 * time.Second)
	s.Observe(StageRead, due, sim.Time(1*time.Second)) // +1 s slack
	s.Observe(StageSend, due, sim.Time(3*time.Second)) // -1 s: missed
	if got := s.Hist(StageRead).Count(); got != 1 {
		t.Fatalf("read count = %d, want 1", got)
	}
	if got := s.Hist(StageRead).Sum(); got != 1 {
		t.Fatalf("read slack sum = %v, want 1", got)
	}
	if got := s.Hist(StageSend).Sum(); got != -1 {
		t.Fatalf("send slack sum = %v, want -1", got)
	}
	var nilRec *SpanRecorder
	nilRec.Observe(StageInsert, 0, 0) // must not panic
}

// TestConcurrentObserveEncode exercises the registry the way the rt
// runtime does — cub executors updating instruments while the HTTP
// handler encodes — and relies on `go test -race` to catch races.
func TestConcurrentObserveEncode(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 4, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("tiger_race_total", "", Labels{"cub": "7"})
			g := r.Gauge("tiger_race_gauge", "", Labels{"cub": "7"})
			h := r.Histogram("tiger_race_seconds", "", nil, DefaultSlackBounds)
			s := NewSpanRecorder(r, Labels{"cub": "7"})
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j % 13))
				s.Observe(Stage(j%int(numStages)), sim.Time(j), 0)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := r.Counter("tiger_race_total", "", Labels{"cub": "7"}).Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("tiger_esc_total", "", Labels{"path": `a\b` + "\n" + `"q"`}).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\\b\n\"q\""`) {
		t.Fatalf("bad escaping: %s", b.String())
	}
	pts := r.Snapshot()
	if got := pts[0].Labels["path"]; got != `a\b`+"\n"+`"q"` {
		t.Fatalf("snapshot round-trip = %q", got)
	}
}
