package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): families in name order, series in label order,
// histograms as cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range r.sortedSeries(f) {
			if f.kind == kindHistogram {
				writePromHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, wrapLabels(s.labels), formatValue(s.value()))
		}
	}
	return bw.Flush()
}

func wrapLabels(canon string) string {
	if canon == "" {
		return ""
	}
	return "{" + canon + "}"
}

// joinLabels appends extra to a canonical label string.
func joinLabels(canon, extra string) string {
	if canon == "" {
		return extra
	}
	return canon + "," + extra
}

func writePromHistogram(w io.Writer, name string, s *series) {
	counts, sum, n := s.hist.snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(s.hist.bounds) {
			le = formatValue(s.hist.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name,
			joinLabels(s.labels, fmt.Sprintf("le=%q", le)), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(s.labels), formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(s.labels), n)
}

// Point is one series in a JSONL snapshot. Counters and gauges carry
// Value; histograms carry Sum, Count, and the per-bucket (non-cumulative)
// counts aligned with Bounds, the final count being the overflow bucket.
type Point struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Bounds []float64         `json:"bounds,omitempty"`
	Counts []uint64          `json:"counts,omitempty"`
}

// Snapshot returns every series as a Point, in encode order.
func (r *Registry) Snapshot() []Point {
	var out []Point
	for _, f := range r.sortedFamilies() {
		for _, s := range r.sortedSeries(f) {
			p := Point{Name: f.name, Type: string(f.kind), Labels: parseCanon(s.labels)}
			if f.kind == kindHistogram {
				counts, sum, n := s.hist.snapshot()
				p.Sum, p.Count = sum, n
				p.Bounds = append([]float64(nil), s.hist.bounds...)
				p.Counts = counts
			} else {
				p.Value = s.value()
			}
			out = append(out, p)
		}
	}
	return out
}

// parseCanon reverses canonLabels for snapshot export. The canonical
// form is k="v"[,k="v"]... with only backslash and newline escapes.
func parseCanon(canon string) map[string]string {
	if canon == "" {
		return nil
	}
	out := make(map[string]string)
	rest := canon
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			break
		}
		key := rest[:eq]
		rest = rest[eq+2:]
		var val []byte
		i := 0
		for i < len(rest) {
			ch := rest[i]
			if ch == '\\' && i+1 < len(rest) {
				nxt := rest[i+1]
				if nxt == 'n' {
					val = append(val, '\n')
				} else {
					val = append(val, nxt)
				}
				i += 2
				continue
			}
			if ch == '"' {
				break
			}
			val = append(val, ch)
			i++
		}
		out[key] = string(val)
		rest = rest[i:]
		if len(rest) > 0 && rest[0] == '"' {
			rest = rest[1:]
		}
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	return out
}

// WriteJSONL streams the registry snapshot as one JSON object per line —
// the machine-readable form tigerbench embeds in its BENCH_* artifacts.
func (r *Registry) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range r.Snapshot() {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return bw.Flush()
}
