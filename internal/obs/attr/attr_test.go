package attr

import (
	"strings"
	"testing"

	"tiger/internal/trace"
)

func TestBuildChargesSlackDeltas(t *testing.T) {
	// insert(slack 100ms) → state(90ms) → disk-queue(80ms) →
	// disk-read(30ms, disk 3) → send(10ms): gossip 10, queue 10, read
	// 50, send 20 (ms).
	ch := []trace.Hop{
		{At: 0, Kind: trace.HopInsert, Slack: 100e6},
		{At: 10e6, Kind: trace.HopState, Slack: 90e6},
		{At: 20e6, Kind: trace.HopDiskQueue, Slack: 80e6, Disk: 3},
		{At: 70e6, Kind: trace.HopDiskRead, Slack: 30e6, Disk: 3},
		{At: 90e6, Kind: trace.HopSend, Slack: 10e6, Disk: 3},
	}
	tab := Build([][]trace.Hop{ch})
	if tab.Chains != 1 || tab.Hops != 5 {
		t.Fatalf("chains=%d hops=%d", tab.Chains, tab.Hops)
	}
	want := map[string]int64{
		"gossip": 10e6, "disk-queue": 10e6, "disk-read": 50e6, "send-wait": 20e6,
	}
	got := map[string]int64{}
	for _, r := range tab.Rows {
		got[r.Component] = r.TotalNs
	}
	for comp, ns := range want {
		if got[comp] != ns {
			t.Errorf("component %s: got %d want %d", comp, got[comp], ns)
		}
	}
	if tab.TotalNs != 90e6 {
		t.Errorf("TotalNs = %d, want 90e6", tab.TotalNs)
	}
	// disk-read dominates: first row.
	if tab.Rows[0].Component != "disk-read" {
		t.Errorf("top row = %s, want disk-read", tab.Rows[0].Component)
	}
	// The disk-tied rows name disk 3.
	foundDisk := false
	for _, r := range tab.DiskRows {
		if r.Component == "disk-read" && r.Disk == 3 && r.TotalNs == 50e6 {
			foundDisk = true
		}
	}
	if !foundDisk {
		t.Errorf("no disk-read row for disk 3: %+v", tab.DiskRows)
	}
}

func TestBuildAdmitAndReceiptUseElapsed(t *testing.T) {
	// Admit has no deadline (slack 0) and receipt slack uses the viewer
	// basis, so both pairs must be charged by elapsed time.
	ch := []trace.Hop{
		{At: 0, Kind: trace.HopAdmit, Slack: 0},
		{At: 40e6, Kind: trace.HopInsert, Slack: 100e6},
		{At: 50e6, Kind: trace.HopSend, Slack: 90e6},
		{At: 58e6, Kind: trace.HopReceipt, Slack: 500e6},
	}
	tab := Build([][]trace.Hop{ch})
	got := map[string]int64{}
	for _, r := range tab.Rows {
		got[r.Component] = r.TotalNs
	}
	if got["insert-wait"] != 40e6 {
		t.Errorf("insert-wait = %d, want 40e6 (elapsed, not slack delta)", got["insert-wait"])
	}
	if got["network"] != 8e6 {
		t.Errorf("network = %d, want 8e6 (elapsed, not slack delta)", got["network"])
	}
	if tab.Receipts != 1 {
		t.Errorf("Receipts = %d, want 1", tab.Receipts)
	}
}

func TestBuildSkipsNegativeDeltas(t *testing.T) {
	ch := []trace.Hop{
		{At: 0, Kind: trace.HopInsert, Slack: 50e6},
		{At: 5e6, Kind: trace.HopState, Slack: 80e6}, // mirror branch, laxer basis
	}
	tab := Build([][]trace.Hop{ch})
	if tab.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", tab.Reordered)
	}
	if tab.TotalNs != 0 {
		t.Errorf("TotalNs = %d, want 0", tab.TotalNs)
	}
}

func TestBuildCountsMissesAndDescheds(t *testing.T) {
	miss := []trace.Hop{
		{At: 0, Kind: trace.HopInsert, Slack: 10e6},
		{At: 15e6, Kind: trace.HopMiss, Slack: -5e6},
	}
	desch := []trace.Hop{
		{At: 0, Kind: trace.HopInsert, Slack: 10e6},
		{At: 2e6, Kind: trace.HopDeschedule, Slack: 8e6},
	}
	tab := Build([][]trace.Hop{miss, desch})
	if tab.Misses != 1 || tab.Descheds != 1 {
		t.Errorf("misses=%d descheds=%d, want 1/1", tab.Misses, tab.Descheds)
	}
}

func TestBucketSaturation(t *testing.T) {
	var r Row
	r.add(500)  // < 1µs
	r.add(5e6)  // < 10ms
	r.add(30e9) // way past the last bound: overflow bucket
	if r.Buckets[0] != 1 || r.Buckets[NumBuckets-1] != 1 {
		t.Errorf("buckets = %v", r.Buckets)
	}
	if r.MaxNs != 30e9 {
		t.Errorf("MaxNs = %d", r.MaxNs)
	}
}

func TestRenderShape(t *testing.T) {
	ch := []trace.Hop{
		{At: 0, Kind: trace.HopInsert, Slack: 100e6},
		{At: 20e6, Kind: trace.HopDiskRead, Slack: 40e6, Disk: 1},
	}
	var sb strings.Builder
	Build([][]trace.Hop{ch}).Render(&sb)
	out := sb.String()
	for _, want := range []string{"slack attribution", "disk-read", "per-disk", "disk 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestComponentNamesTotal(t *testing.T) {
	kinds := []trace.HopKind{
		trace.HopAdmit, trace.HopInsert, trace.HopState, trace.HopDeschedule,
		trace.HopDiskQueue, trace.HopDiskRead, trace.HopHedge, trace.HopSend,
		trace.HopMiss, trace.HopReceipt,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		c := Component(k)
		if c == "other" || c == "" {
			t.Errorf("kind %v has no component name", k)
		}
		if seen[c] {
			t.Errorf("component %q reused", c)
		}
		seen[c] = true
	}
}
