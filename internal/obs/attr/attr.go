// Package attr folds causal block chains into per-component
// deadline-slack attribution: for every traced block, the slack
// remaining at each hop is differenced against the previous hop, and
// the consumed slack is charged to the component that spent it — the
// insertion queue, the gossip ring, a disk's queue, the disk read
// itself, the hedge machinery, the send scheduler, or the network. The
// result is the "where the slack went" table: a run whose disk 3 is
// degraded shows disk 3's queue and read rows absorbing the slack that
// healthy runs leave to the send stage.
//
// Two hop pairs are charged by elapsed time instead of slack delta,
// because their slack fields use different bases: admit→insert (the
// admit hop predates the deadline, its slack is recorded as zero) and
// send→receipt (receipt slack is measured against the viewer's play
// deadline, not the cub's service due time).
package attr

import (
	"fmt"
	"io"
	"sort"

	"tiger/internal/trace"
)

// Component names one slack-consuming stage, keyed by the hop that
// closes it.
func Component(k trace.HopKind) string {
	switch k {
	case trace.HopAdmit:
		return "admit"
	case trace.HopInsert:
		return "insert-wait"
	case trace.HopState:
		return "gossip"
	case trace.HopDeschedule:
		return "desched"
	case trace.HopDiskQueue:
		return "disk-queue"
	case trace.HopDiskRead:
		return "disk-read"
	case trace.HopHedge:
		return "hedge"
	case trace.HopSend:
		return "send-wait"
	case trace.HopMiss:
		return "miss"
	case trace.HopReceipt:
		return "network"
	}
	return "other"
}

// BucketBounds are the histogram bucket upper bounds in nanoseconds;
// the final bucket is unbounded.
var BucketBounds = [...]int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

// NumBuckets is len(BucketBounds)+1: one overflow bucket.
const NumBuckets = len(BucketBounds) + 1

func bucketOf(ns int64) int {
	for i, b := range BucketBounds {
		if ns < b {
			return i
		}
	}
	return NumBuckets - 1
}

// Row is one component's (optionally one disk's) slack consumption.
type Row struct {
	Component string            `json:"component"`
	Disk      int32             `json:"disk"` // -1 in the per-component rows
	Count     int64             `json:"count"`
	TotalNs   int64             `json:"total_ns"`
	MaxNs     int64             `json:"max_ns"`
	Share     float64           `json:"share"` // of all attributed slack
	Buckets   [NumBuckets]int64 `json:"buckets"`
}

func (r *Row) add(ns int64) {
	r.Count++
	r.TotalNs += ns
	if ns > r.MaxNs {
		r.MaxNs = ns
	}
	r.Buckets[bucketOf(ns)]++
}

// Table is the folded attribution across a set of chains.
type Table struct {
	// Rows aggregates per component, largest total first.
	Rows []Row `json:"rows"`
	// DiskRows breaks the disk-tied components (disk-queue, disk-read,
	// hedge) out per disk, largest total first — the rows that name a
	// degraded drive.
	DiskRows []Row `json:"disk_rows,omitempty"`

	Chains    int   `json:"chains"`
	Hops      int   `json:"hops"`
	TotalNs   int64 `json:"total_ns"`
	Misses    int64 `json:"misses"`
	Descheds  int64 `json:"descheds"`
	Receipts  int64 `json:"receipts"`
	Reordered int64 `json:"reordered,omitempty"` // pairs skipped: slack rose
}

type rowKey struct {
	comp string
	disk int32
}

// diskTied reports whether a component is broken out per disk.
func diskTied(k trace.HopKind) bool {
	return k == trace.HopDiskQueue || k == trace.HopDiskRead || k == trace.HopHedge
}

// Build folds chains (each already time-ordered, e.g. via
// trace.SortHops) into an attribution table.
func Build(chains [][]trace.Hop) *Table {
	t := &Table{}
	comps := make(map[string]*Row)
	disks := make(map[rowKey]*Row)
	charge := func(k trace.HopKind, disk int32, ns int64) {
		comp := Component(k)
		r := comps[comp]
		if r == nil {
			r = &Row{Component: comp, Disk: -1}
			comps[comp] = r
		}
		r.add(ns)
		t.TotalNs += ns
		if diskTied(k) && disk >= 0 {
			dk := rowKey{comp, disk}
			dr := disks[dk]
			if dr == nil {
				dr = &Row{Component: comp, Disk: disk}
				disks[dk] = dr
			}
			dr.add(ns)
		}
	}
	for _, ch := range chains {
		if len(ch) == 0 {
			continue
		}
		t.Chains++
		t.Hops += len(ch)
		for i := 1; i < len(ch); i++ {
			prev, cur := ch[i-1], ch[i]
			switch cur.Kind {
			case trace.HopMiss:
				t.Misses++
			case trace.HopDeschedule:
				t.Descheds++
			case trace.HopReceipt:
				t.Receipts++
			}
			var consumed int64
			switch {
			case prev.Kind == trace.HopAdmit, cur.Kind == trace.HopReceipt:
				consumed = int64(cur.At) - int64(prev.At)
			default:
				consumed = prev.Slack - cur.Slack
			}
			if consumed < 0 {
				// Slack rose between hops: the chain interleaves branches
				// with different deadline bases (a mirror piece against its
				// primary). Not a consumption; count and skip.
				t.Reordered++
				continue
			}
			charge(cur.Kind, cur.Disk, consumed)
		}
	}
	for _, r := range comps {
		t.Rows = append(t.Rows, *r)
	}
	for _, r := range disks {
		t.DiskRows = append(t.DiskRows, *r)
	}
	if t.TotalNs > 0 {
		for i := range t.Rows {
			t.Rows[i].Share = float64(t.Rows[i].TotalNs) / float64(t.TotalNs)
		}
		for i := range t.DiskRows {
			t.DiskRows[i].Share = float64(t.DiskRows[i].TotalNs) / float64(t.TotalNs)
		}
	}
	sortRows(t.Rows)
	sortRows(t.DiskRows)
	return t
}

// sortRows orders by total consumed descending, then by (component,
// disk) for deterministic output.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalNs != rows[j].TotalNs {
			return rows[i].TotalNs > rows[j].TotalNs
		}
		if rows[i].Component != rows[j].Component {
			return rows[i].Component < rows[j].Component
		}
		return rows[i].Disk < rows[j].Disk
	})
}

// renderDiskRows caps the per-disk section of the rendered table: rows
// are sorted largest-consumer first, so past the head they are the
// healthy drives saying nothing interesting. The JSON form keeps all.
const renderDiskRows = 8

// Render writes the fixed-width "where the slack went" table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "slack attribution: %d chains, %d hops, %.3f ms consumed",
		t.Chains, t.Hops, float64(t.TotalNs)/1e6)
	if t.Misses > 0 || t.Descheds > 0 {
		fmt.Fprintf(w, " (%d misses, %d descheds)", t.Misses, t.Descheds)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %8s %12s %12s %7s\n", "component", "count", "total ms", "max ms", "share")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s %8d %12.3f %12.3f %6.1f%%\n",
			r.Component, r.Count, float64(r.TotalNs)/1e6, float64(r.MaxNs)/1e6, 100*r.Share)
	}
	if len(t.DiskRows) > 0 {
		fmt.Fprintf(w, "%-12s %8s %12s %12s %7s\n", "per-disk", "count", "total ms", "max ms", "share")
		for i, r := range t.DiskRows {
			if i == renderDiskRows {
				fmt.Fprintf(w, "… %d more per-disk rows (full set in the JSON report)\n",
					len(t.DiskRows)-renderDiskRows)
				break
			}
			fmt.Fprintf(w, "%-12s %8d %12.3f %12.3f %6.1f%%  disk %d\n",
				r.Component, r.Count, float64(r.TotalNs)/1e6, float64(r.MaxNs)/1e6, 100*r.Share, r.Disk)
		}
	}
}
