package obs

import (
	"strings"
	"testing"
	"time"

	"tiger/internal/sim"
)

// TestSpanDoubleObserve covers re-served blocks: a deschedule and
// re-insertion makes the same stage fire twice for one block. Both
// observations must accumulate — histograms are additive, and no
// duplicate series may appear in the exposition.
func TestSpanDoubleObserve(t *testing.T) {
	r := NewRegistry()
	s := NewSpanRecorder(r, Labels{"cub": "1"})
	due := sim.Time(4 * time.Second)
	s.Observe(StageInsert, due, sim.Time(1*time.Second))
	s.Observe(StageInsert, due, sim.Time(2*time.Second)) // re-inserted later
	if got := s.Hist(StageInsert).Count(); got != 2 {
		t.Fatalf("double observe count = %d, want 2", got)
	}
	if got := s.Hist(StageInsert).Sum(); got != 5 {
		t.Fatalf("double observe sum = %v, want 3+2", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	series := `tiger_block_deadline_slack_seconds_count{cub="1",stage="insert"}`
	if n := strings.Count(b.String(), series); n != 1 {
		t.Fatalf("%d copies of %s in exposition, want 1", n, series)
	}
}

// TestSpanOutlivesStream covers late observations: the recorder has no
// per-stream lifecycle, so a receipt that straggles in after the stream
// stopped (and after earlier stages went quiet) must still be recorded
// against the same histograms, not dropped or reset.
func TestSpanOutlivesStream(t *testing.T) {
	r := NewRegistry()
	s := NewSpanRecorder(r, nil)
	due := sim.Time(2 * time.Second)
	s.Observe(StageSend, due, due) // the stream's last send, zero slack
	before := s.Hist(StageReceipt).Count()

	// The stream is gone; its final block's last byte arrives much
	// later, deeply past the play deadline.
	s.ObserveSlack(StageReceipt, -42.5)
	if got := s.Hist(StageReceipt).Count(); got != before+1 {
		t.Fatalf("straggler receipt not recorded: %d -> %d", before, got)
	}
	if got := s.Hist(StageReceipt).Sum(); got != -42.5 {
		t.Fatalf("straggler slack sum = %v, want -42.5", got)
	}
	// Earlier stages are untouched by the straggler.
	if got := s.Hist(StageSend).Count(); got != 1 {
		t.Fatalf("send count perturbed: %d", got)
	}
}

// TestSpanBucketSaturation covers slack beyond the histogram bounds in
// both directions: a miss worse than the most negative bound lands in
// the first bucket, margin beyond the largest bound lands in the +Inf
// overflow bucket, and neither is lost.
func TestSpanBucketSaturation(t *testing.T) {
	r := NewRegistry()
	s := NewSpanRecorder(r, nil)
	lo := DefaultSlackBounds[0]
	hi := DefaultSlackBounds[len(DefaultSlackBounds)-1]
	s.ObserveSlack(StageRead, lo*10) // far worse than any bound
	s.ObserveSlack(StageRead, hi*10) // far more margin than any bound
	s.ObserveSlack(StageRead, 0)     // exactly on a bound, for contrast

	counts, sum, n := s.Hist(StageRead).snapshot()
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	if want := lo*10 + hi*10; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	if len(counts) != len(DefaultSlackBounds)+1 {
		t.Fatalf("%d buckets for %d bounds", len(counts), len(DefaultSlackBounds))
	}
	if counts[0] != 1 {
		t.Fatalf("deep miss not in first bucket: %v", counts)
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("deep margin not in overflow bucket: %v", counts)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("bucket totals %d != count %d", total, n)
	}
}
