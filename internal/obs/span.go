package obs

import (
	"tiger/internal/sim"
)

// Stage identifies one point in the lifecycle of a scheduled block:
// from the viewer's start request, through slot insertion under
// ownership, the gossiped viewer state arriving at the serving cub, the
// disk read completing, the network send beginning, to the last byte
// reaching the client.
type Stage int

const (
	// StageInsert is the slot insertion under ownership (§4.1.3); its
	// deadline is the inserted service's due time.
	StageInsert Stage = iota
	// StageState is a viewer state installed into a cub's view; the
	// protocol guarantees MinVStateLead of slack here (§4.1.1).
	StageState
	// StageRead is the disk read completing; slack below zero here is a
	// guaranteed server-side miss.
	StageRead
	// StageSend is the block being handed to the network at its due time.
	StageSend
	// StageReceipt is the block's last byte arriving at the client,
	// measured against the viewer's play deadline.
	StageReceipt

	numStages
)

func (s Stage) String() string {
	switch s {
	case StageInsert:
		return "insert"
	case StageState:
		return "state"
	case StageRead:
		return "read"
	case StageSend:
		return "send"
	case StageReceipt:
		return "receipt"
	}
	return "unknown"
}

// DefaultSlackBounds bracket the deadline-slack distribution: negative
// buckets are missed deadlines, positive ones are margin. The range
// covers both demo-scale (250 ms blocks) and paper-scale (1 s blocks)
// timings.
var DefaultSlackBounds = []float64{
	-5, -1, -0.25, -0.05, 0,
	0.05, 0.25, 1, 2.5, 5, 10, 30,
}

// SpanRecorder folds block-lifecycle events into per-stage
// deadline-slack histograms: each observation is (due - now) in
// seconds, so the distribution directly answers "how much margin did
// the pipeline have at each stage, and how often did it run negative".
// Times are sim.Time from the owning node's clock, so the same recorder
// reports virtual-time slack under the simulator and wall-clock slack
// under the rt runtime.
type SpanRecorder struct {
	hist [numStages]*Histogram
}

// NewSpanRecorder registers the per-stage histograms under
// tiger_block_deadline_slack_seconds with the given extra labels.
func NewSpanRecorder(reg *Registry, ls Labels) *SpanRecorder {
	s := &SpanRecorder{}
	for st := Stage(0); st < numStages; st++ {
		l := Labels{"stage": st.String()}
		for k, v := range ls {
			l[k] = v
		}
		s.hist[st] = reg.Histogram("tiger_block_deadline_slack_seconds",
			"Deadline slack (due minus now, seconds) of block-lifecycle stages; negative is a missed deadline.",
			l, DefaultSlackBounds)
	}
	return s
}

// Observe records that stage st happened at time now for a block due at
// due. A nil recorder is a no-op, so call sites need no guards.
func (s *SpanRecorder) Observe(st Stage, due, now sim.Time) {
	if s == nil {
		return
	}
	s.hist[st].Observe(due.Sub(now).Seconds())
}

// ObserveSlack records a pre-computed slack in seconds, for callers
// that measure the margin directly rather than holding (due, now) pairs
// — the client-side receipt stage. A nil recorder is a no-op.
func (s *SpanRecorder) ObserveSlack(st Stage, seconds float64) {
	if s == nil {
		return
	}
	s.hist[st].Observe(seconds)
}

// Hist exposes one stage's histogram (tests and pretty-printers).
func (s *SpanRecorder) Hist(st Stage) *Histogram {
	if s == nil {
		return nil
	}
	return s.hist[st]
}
