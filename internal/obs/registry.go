// Package obs is the unified observability layer for Tiger: a
// dependency-free metrics registry with named, labelled instruments
// (counters, gauges, bounded histograms), a Prometheus-text-format
// encoder for tigerd's /metrics endpoint, a JSONL snapshot export for
// machine-readable run artifacts, and a block-lifecycle span recorder
// (span.go).
//
// All instruments are safe for concurrent use: the simulator drives
// them from one goroutine, but under the rt runtime every cub's
// executor fires in parallel with the HTTP scrape handler. Counters and
// gauges are lock-free atomics so the protocol hot path pays one CAS
// per event; histograms take a short mutex.
//
// Timestamps flowing into the registry are sim.Time values obtained
// from an internal/clock Clock, so the same series carry virtual time
// when recorded under the simulator and wall-clock time under rt —
// which substrate produced a snapshot is part of the run's metadata,
// not of the encoding.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attach dimensions to an instrument (for example
// {"cub": "3", "disk": "12"}). Instruments with the same name must be
// registered with the same label keys.
type Labels map[string]string

// kind is the Prometheus metric type of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotonically increasing float64, lock-free.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value, lock-free.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bound histogram in the Prometheus style:
// observations land in the first bucket whose upper bound is >= v, the
// encoder emits cumulative bucket counts with `le` labels plus _sum and
// _count series. A short mutex serializes Observe against Encode.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last is the +Inf overflow bucket
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns copies of the bucket counts, sum, and count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.sum, h.n
}

// series is one labelled time series inside a family.
type series struct {
	labels string // canonical rendered label set, "" for none
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64 // counterFunc/gaugeFunc
	hist   *Histogram
}

func (s *series) value() float64 {
	switch {
	case s.ctr != nil:
		return s.ctr.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series // canonical label string -> series
}

// Registry holds instrument families and encodes them. Creating an
// instrument that already exists (same name and labels) returns the
// existing one, so attach paths are idempotent.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// canonLabels renders a label set in sorted-key order.
func canonLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q's escapes (\\, \", \n) coincide with the Prometheus text
		// format's label escapes for the characters Tiger ever emits.
		fmt.Fprintf(&b, "%s=%q", k, ls[k])
	}
	return b.String()
}

func (r *Registry) fam(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	return f
}

func (r *Registry) get(name, help string, k kind, ls Labels, mk func() *series) *series {
	f := r.fam(name, help, k)
	key := canonLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.series[key] = s
	return s
}

// Counter returns the counter with the given name and labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	s := r.get(name, help, kindCounter, ls, func() *series { return &series{ctr: &Counter{}} })
	if s.ctr == nil {
		panic(fmt.Sprintf("obs: %q{%s} is not a value counter", name, canonLabels(ls)))
	}
	return s.ctr
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	s := r.get(name, help, kindGauge, ls, func() *series { return &series{gauge: &Gauge{}} })
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: %q{%s} is not a value gauge", name, canonLabels(ls)))
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is read from fn at encode
// time. fn must be safe to call from any goroutine (read an atomic).
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() float64) {
	r.get(name, help, kindCounter, ls, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at encode
// time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	r.get(name, help, kindGauge, ls, func() *series { return &series{fn: fn} })
}

// Histogram returns the histogram with the given name, labels, and
// ascending upper bounds, creating it on first use. Bounds are only
// consulted at creation; later calls reuse the existing buckets.
func (r *Registry) Histogram(name, help string, ls Labels, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds must ascend", name))
		}
	}
	s := r.get(name, help, kindHistogram, ls, func() *series {
		return &series{hist: &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}}
	})
	if s.hist == nil {
		panic(fmt.Sprintf("obs: %q{%s} is not a histogram", name, canonLabels(ls)))
	}
	return s.hist
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots one family's series in label order.
func (r *Registry) sortedSeries(f *family) []*series {
	r.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
