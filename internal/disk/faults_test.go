package disk

import (
	"testing"
	"time"

	"tiger/internal/sim"
)

func TestSlowFactorStretchesService(t *testing.T) {
	eng, d := testDisk(t, nil)
	d.SetFaults(Faults{SlowFactor: 3})
	var done sim.Time
	d.Read(262144, Outer, sim.Time(time.Second), func(at sim.Time, ok bool) {
		done = at
		if !ok {
			t.Error("slow read should still succeed")
		}
	})
	eng.Run()
	want := 3 * d.Params().MeanServiceTime(262144, Outer)
	if done != sim.Time(want) {
		t.Fatalf("slow read completed at %v, want %v", done, want)
	}
	// Factor 1 restores nominal speed.
	d.SetFaults(Faults{SlowFactor: 1})
	start := eng.Now()
	d.Read(262144, Outer, sim.Time(time.Hour), func(at sim.Time, _ bool) { done = at })
	eng.Run()
	if got := done.Sub(start); got != d.Params().MeanServiceTime(262144, Outer) {
		t.Fatalf("healed read took %v", got)
	}
}

func TestErrProbReportsFailure(t *testing.T) {
	eng, d := testDisk(t, nil)
	d.SetFaults(Faults{ErrProb: 1})
	fails := 0
	d.Read(262144, Outer, 0, func(_ sim.Time, ok bool) {
		if !ok {
			fails++
		}
	})
	eng.Run()
	if fails != 1 {
		t.Fatalf("expected the read to fail, fails=%d", fails)
	}
	st := d.Stats()
	// The failed operation still occupied the drive: it is charged to
	// duty cycle and counted as an error.
	if st.Reads != 1 || st.ReadErrors != 1 || st.BusyTotal == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStuckQueueAccumulates(t *testing.T) {
	eng, d := testDisk(t, nil)
	var order []int
	// One read reaches the platter before the controller wedges; it must
	// complete normally. Everything behind it waits for the heal.
	d.Read(262144, Outer, 0, func(sim.Time, bool) { order = append(order, 0) })
	d.SetFaults(Faults{Stuck: true})
	for i := 1; i <= 3; i++ {
		i := i
		d.Read(262144, Outer, sim.Time(time.Duration(i)*time.Second), func(sim.Time, bool) {
			order = append(order, i)
		})
	}
	eng.Run()
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("stuck drive completed %v, want only the in-flight read", order)
	}
	if d.QueueLen() != 3 {
		t.Fatalf("queue %d, want 3 wedged reads", d.QueueLen())
	}
	d.SetFaults(Faults{})
	eng.Run()
	if len(order) != 4 || d.QueueLen() != 0 {
		t.Fatalf("heal did not drain the queue: %v, queue %d", order, d.QueueLen())
	}
}

// TestCancelQueuedReadAccounting pins the satellite requirement: a read
// withdrawn while still queued must leave duty-cycle and throughput
// statistics untouched.
func TestCancelQueuedReadAccounting(t *testing.T) {
	eng, d := testDisk(t, nil)
	fired := false
	d.Read(262144, Outer, 0, func(sim.Time, bool) {}) // occupies the platter
	id := d.Read(262144, Outer, sim.Time(time.Second), func(sim.Time, bool) { fired = true })
	if !d.Cancel(id) {
		t.Fatal("cancel of a queued read should succeed")
	}
	if d.Cancel(id) {
		t.Fatal("double cancel should report false")
	}
	eng.Run()
	st := d.Stats()
	if fired {
		t.Fatal("cancelled read's callback fired")
	}
	if st.Reads != 1 || st.Bytes != 262144 {
		t.Fatalf("cancelled queued read was charged: %+v", st)
	}
	if want := d.Params().MeanServiceTime(262144, Outer); st.BusyTotal != want {
		t.Fatalf("busy %v, want %v (one read only)", st.BusyTotal, want)
	}
	if st.Cancelled != 1 || st.CancelledBusy != 0 {
		t.Fatalf("cancel counters %+v", st)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue %d after drain", d.QueueLen())
	}
}

func TestCancelInServiceSuppressesCallback(t *testing.T) {
	eng, d := testDisk(t, nil)
	fired := false
	id := d.Read(262144, Outer, 0, func(sim.Time, bool) { fired = true })
	// The read is on the platter: Cancel cannot stop it, but the service
	// time stays charged (really spent) and the callback is suppressed.
	if !d.Cancel(id) {
		t.Fatal("cancel of the in-service read should succeed")
	}
	eng.Run()
	st := d.Stats()
	if fired {
		t.Fatal("cancelled in-service read's callback fired")
	}
	if st.Reads != 1 || st.Cancelled != 1 || st.CancelledBusy != 1 {
		t.Fatalf("stats %+v", st)
	}
	if want := d.Params().MeanServiceTime(262144, Outer); st.BusyTotal != want {
		t.Fatalf("busy %v, want %v", st.BusyTotal, want)
	}
	if d.Cancel(999) {
		t.Fatal("cancel of an unknown id should report false")
	}
}

func TestStuckDriveStillCancellable(t *testing.T) {
	eng, d := testDisk(t, nil)
	d.SetFaults(Faults{Stuck: true})
	id := d.Read(262144, Outer, 0, func(sim.Time, bool) { t.Error("wedged read completed") })
	if !d.Cancel(id) {
		t.Fatal("cancel of a wedged read should succeed")
	}
	eng.Run()
	if st := d.Stats(); st.Reads != 0 || st.Cancelled != 1 {
		t.Fatalf("stats %+v", st)
	}
}
