package disk

import (
	"container/heap"

	"tiger/internal/sim"
)

// QueueDiscipline selects how a drive orders outstanding reads.
type QueueDiscipline int

const (
	// EDF serves the read with the earliest due time first. This models
	// the paper's disk schedule: reads happen in schedule order, so a
	// freshly inserted viewer's first block (smallest lead) is not stuck
	// behind prefetches for far-future sends (§3.1).
	EDF QueueDiscipline = iota
	// FIFO serves reads in arrival order; kept as an ablation of the
	// schedule-ordered service.
	FIFO
)

func (q QueueDiscipline) String() string {
	if q == FIFO {
		return "fifo"
	}
	return "edf"
}

type pending struct {
	size int64
	zone Zone
	due  sim.Time
	seq  uint64
	done func(completed sim.Time, ok bool)
	// cancelled marks a read withdrawn after service started: the
	// platter operation cannot be stopped, but the completion callback
	// is suppressed.
	cancelled bool
}

// pendingHeap orders by (due, seq); with FIFO the cub pushes monotonically
// increasing seq as the primary key by passing due=0.
type pendingHeap []*pending

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(*pending)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}

var _ heap.Interface = (*pendingHeap)(nil)
