// Package disk models the drives in a Tiger cub: zoned transfer rates
// (fast outer tracks for primary data, slow inner tracks for declustered
// secondaries, §2.3), a FIFO service queue, stochastic service-time
// jitter, and the rare slow outliers ("blips") that produce the paper's
// occasional late blocks (§5).
//
// The model exposes both the nominal behaviour used during simulation and
// the worst-case per-operation budgets used for capacity planning: Tiger
// sizes its block service time from the worst case so that disks run
// below saturation in normal operation and near (but under) saturation
// when covering for a failed peer.
package disk

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/obs"
	"tiger/internal/sim"
)

// Zone selects which part of a disk a read targets. Primaries are stored
// on the faster outer tracks, secondaries on the slower inner ones.
type Zone int

const (
	Outer Zone = iota
	Inner
)

func (z Zone) String() string {
	if z == Outer {
		return "outer"
	}
	return "inner"
}

// Params describe a drive model. The defaults are calibrated so that a
// 0.25 MB-block, decluster-4 system matches the paper's measured
// capacity of about 10.75 streams per disk (§5).
type Params struct {
	SeekAvg time.Duration // mean seek time
	RotHalf time.Duration // mean rotational latency (half a revolution)

	OuterRate float64 // bytes/s sustained on the outer half
	InnerRate float64 // bytes/s sustained on the inner half

	// WorstCaseMargin scales the mean per-operation time to the
	// worst-case budget used for capacity planning. Actual operations
	// are drawn around the mean, so planned schedules retain slack.
	WorstCaseMargin float64

	// JitterFrac is the +/- fractional uniform jitter applied to every
	// operation's service time.
	JitterFrac float64

	// BlipProb is the per-read probability of a slow outlier (thermal
	// recalibration, remapped sector, bus contention); BlipMin/BlipMax
	// bound the extra delay. Blips that exceed the cub's read-ahead
	// slack become the late blocks the paper reports.
	BlipProb float64
	BlipMin  time.Duration
	BlipMax  time.Duration

	// Discipline orders outstanding reads; the default EDF models the
	// paper's schedule-ordered disk service.
	Discipline QueueDiscipline
}

// DefaultParams returns a model of the paper's IBM Ultrastar-class drive.
func DefaultParams() Params {
	return Params{
		SeekAvg:   7 * time.Millisecond,
		RotHalf:   4200 * time.Microsecond,
		OuterRate: 5.08e6,
		InnerRate: 4.55e6,
		// Planning margin and jitter band: the paper's 10.75 streams/disk
		// is a worst-case rating, and its drives ran stably at >95% duty;
		// the jitter band must therefore fit inside the planning margin
		// or a fully loaded covering disk drifts into backlog.
		WorstCaseMargin: 1.052,
		JitterFrac:      0.02,
		BlipProb:        2e-6,
		BlipMin:         300 * time.Millisecond,
		BlipMax:         1200 * time.Millisecond,
	}
}

// Rate returns the sustained transfer rate of the given zone.
func (p Params) Rate(z Zone) float64 {
	if z == Outer {
		return p.OuterRate
	}
	return p.InnerRate
}

// MeanServiceTime returns the expected time to read size bytes from the
// given zone: seek + rotational latency + transfer.
func (p Params) MeanServiceTime(size int64, z Zone) time.Duration {
	xfer := time.Duration(float64(size) / p.Rate(z) * float64(time.Second))
	return p.SeekAvg + p.RotHalf + xfer
}

// WorstServiceTime returns the planning budget for one read.
func (p Params) WorstServiceTime(size int64, z Zone) time.Duration {
	return time.Duration(float64(p.MeanServiceTime(size, z)) * p.WorstCaseMargin)
}

// Faults is the injectable gray-failure state of one drive. The zero
// value is a healthy disk. Unlike the fail-stop faults of the crash and
// partition machinery, these model a drive that is still answering —
// just slowly, unreliably, or not at all — which is exactly the failure
// mode a deadman detector cannot see.
type Faults struct {
	// SlowFactor > 1 multiplies every service time (fail-slow drive:
	// dying bearings, internal retries, thermal throttling). 0 and 1
	// both mean nominal speed.
	SlowFactor float64
	// ErrProb is the per-read probability of a transient failure: the
	// operation occupies the drive for its full service time but
	// completes with ok=false.
	ErrProb float64
	// Stuck wedges the service queue: reads are accepted and queued but
	// none is dispatched until the fault clears. A read already on the
	// platter when the drive sticks completes normally.
	Stuck bool
}

// Disk is one simulated drive. It is not safe for concurrent use; all
// calls must come from the owning node's executor (trivially true in the
// single-threaded simulator).
type Disk struct {
	ID     int
	params Params
	clk    clock.Clock
	rng    *rand.Rand

	pending pendingHeap
	seq     uint64
	busy    bool
	cur     *pending // the read on the platter, nil when idle
	faults  Faults

	// statistics
	reads         int64
	busyTotal     time.Duration // cumulative service time
	bytes         int64
	maxQueue      int
	cancelled     int64
	cancelledBusy int64
	readErrs      int64

	obs Obs
}

// Obs names the registry instruments one drive updates as it serves
// reads; any nil field is simply not recorded. Direct counters (rather
// than functions polling Stats) keep the export path race-free: the
// drive mutates its plain counters only on its owning executor, while
// registry instruments may be read from a scrape goroutine at any time.
type Obs struct {
	Reads       *obs.Counter // read operations started
	Bytes       *obs.Counter // bytes read
	BusySeconds *obs.Counter // cumulative service time, seconds
	Queue       *obs.Gauge   // outstanding reads including the one in service
	Cancelled   *obs.Counter // reads withdrawn before or during service
	Errors      *obs.Counter // reads completed with an injected failure
}

// SetObs attaches registry instruments to the drive.
func (d *Disk) SetObs(o Obs) { d.obs = o }

// New creates a disk using the given clock and random source.
func New(id int, params Params, clk clock.Clock, rng *rand.Rand) *Disk {
	if params.OuterRate <= 0 || params.InnerRate <= 0 {
		panic(fmt.Sprintf("disk %d: non-positive transfer rate", id))
	}
	return &Disk{ID: id, params: params, clk: clk, rng: rng}
}

// Params returns the drive's model parameters.
func (d *Disk) Params() Params { return d.params }

// SetFaults replaces the drive's injected gray-failure state. Clearing
// Stuck restarts service of whatever accumulated in the queue.
func (d *Disk) SetFaults(f Faults) {
	wasStuck := d.faults.Stuck
	d.faults = f
	if wasStuck && !f.Stuck && !d.busy && len(d.pending) > 0 {
		d.startNext()
	}
}

// Faults returns the drive's current injected fault state.
func (d *Disk) Faults() Faults { return d.faults }

// Read enqueues a read of size bytes from zone z, needed by due. done is
// invoked at the virtual time the read completes, with ok=false when the
// drive reported a (injected) transient failure; it is never invoked for
// a read withdrawn by Cancel. Under EDF the queue is served in due
// order; under FIFO in arrival order. The returned id names the read for
// Cancel.
func (d *Disk) Read(size int64, z Zone, due sim.Time, done func(completed sim.Time, ok bool)) uint64 {
	d.seq++
	p := &pending{size: size, zone: z, due: due, seq: d.seq, done: done}
	if d.params.Discipline == FIFO {
		p.due = 0 // degenerate key: seq (arrival order) decides
	}
	heap.Push(&d.pending, p)
	q := d.QueueLen()
	if q > d.maxQueue {
		d.maxQueue = q
	}
	if d.obs.Queue != nil {
		d.obs.Queue.Set(float64(q))
	}
	if !d.busy && !d.faults.Stuck {
		d.startNext()
	}
	return p.seq
}

// Cancel withdraws an outstanding read. A read still queued is removed
// without ever starting — it is never charged to Reads/Bytes/BusyTotal,
// so duty-cycle accounting stays honest. A read already on the platter
// cannot be stopped: its service time remains charged (the drive really
// spent it) but its completion callback is suppressed. Returns false if
// the read already completed, was already cancelled, or was never
// issued.
func (d *Disk) Cancel(id uint64) bool {
	for i, p := range d.pending {
		if p.seq == id {
			heap.Remove(&d.pending, i)
			d.cancelled++
			if d.obs.Cancelled != nil {
				d.obs.Cancelled.Inc()
			}
			if d.obs.Queue != nil {
				d.obs.Queue.Set(float64(d.QueueLen()))
			}
			return true
		}
	}
	if d.cur != nil && d.cur.seq == id && !d.cur.cancelled {
		d.cur.cancelled = true
		d.cancelled++
		d.cancelledBusy++
		if d.obs.Cancelled != nil {
			d.obs.Cancelled.Inc()
		}
		return true
	}
	return false
}

func (d *Disk) startNext() {
	if d.faults.Stuck {
		// Controller hang: leave the queue intact and the drive idle;
		// SetFaults restarts service when the fault clears.
		d.busy = false
		if d.obs.Queue != nil {
			d.obs.Queue.Set(float64(d.QueueLen()))
		}
		return
	}
	if len(d.pending) == 0 {
		d.busy = false
		if d.obs.Queue != nil {
			d.obs.Queue.Set(0)
		}
		return
	}
	d.busy = true
	p := heap.Pop(&d.pending).(*pending)
	d.cur = p
	svc := d.serviceTime(p.size, p.zone)
	// A transient failure still occupies the drive for the full service
	// time (the firmware retried and gave up); it just returns ok=false.
	failed := d.faults.ErrProb > 0 && d.rng.Float64() < d.faults.ErrProb
	completed := d.clk.Now().Add(svc)
	d.reads++
	d.bytes += p.size
	d.busyTotal += svc
	if failed {
		d.readErrs++
	}
	if d.obs.Reads != nil {
		d.obs.Reads.Inc()
	}
	if d.obs.Bytes != nil {
		d.obs.Bytes.Add(float64(p.size))
	}
	if d.obs.BusySeconds != nil {
		d.obs.BusySeconds.Add(svc.Seconds())
	}
	if failed && d.obs.Errors != nil {
		d.obs.Errors.Inc()
	}
	if d.obs.Queue != nil {
		d.obs.Queue.Set(float64(d.QueueLen()))
	}
	d.clk.At(completed, func() {
		d.cur = nil
		if p.done != nil && !p.cancelled {
			p.done(completed, !failed)
		}
		d.startNext()
	})
}

func (d *Disk) serviceTime(size int64, z Zone) time.Duration {
	mean := d.params.MeanServiceTime(size, z)
	jit := 1 + d.params.JitterFrac*(2*d.rng.Float64()-1)
	svc := time.Duration(float64(mean) * jit)
	if d.params.BlipProb > 0 && d.rng.Float64() < d.params.BlipProb {
		span := d.params.BlipMax - d.params.BlipMin
		svc += d.params.BlipMin + time.Duration(d.rng.Int63n(int64(span)+1))
	}
	if f := d.faults.SlowFactor; f > 0 && f != 1 {
		svc = time.Duration(float64(svc) * f)
	}
	return svc
}

// QueueLen returns the number of outstanding reads (including the one
// in service).
func (d *Disk) QueueLen() int {
	n := len(d.pending)
	if d.busy {
		n++
	}
	return n
}

// Stats is a snapshot of cumulative disk activity. Reads/Bytes/BusyTotal
// count only operations that actually started on the platter: a read
// cancelled while still queued appears solely in Cancelled, so hedged
// reads withdrawn by the gray-failure machinery cannot inflate
// duty-cycle math.
type Stats struct {
	Reads     int64
	Bytes     int64
	BusyTotal time.Duration
	MaxQueue  int
	// Cancelled counts every withdrawn read; CancelledBusy is the subset
	// that was already in service (whose service time stays in
	// BusyTotal, because the drive really spent it).
	Cancelled     int64
	CancelledBusy int64
	// ReadErrors counts reads completed with an injected transient
	// failure.
	ReadErrors int64
}

// Stats returns cumulative counters; callers diff snapshots to compute
// duty cycles over a window, as the paper does over 50 s intervals.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads: d.reads, Bytes: d.bytes, BusyTotal: d.busyTotal, MaxQueue: d.maxQueue,
		Cancelled: d.cancelled, CancelledBusy: d.cancelledBusy, ReadErrors: d.readErrs,
	}
}

// Capacity computes per-disk and whole-system stream capacity the way
// Tiger plans it (§3.1): the block service time is the worst-case time to
// read one primary block plus, if the system is fault tolerant, one
// declustered secondary piece; the system as a whole must source an
// integral number of streams.
type Capacity struct {
	BlockService   time.Duration // worst-case per-stream service budget
	StreamsPerDisk float64
	Streams        int // whole-system capacity, rounded down
}

// PlanCapacity computes capacity for numDisks disks serving blockSize
// blocks with the given block play time and decluster factor. A
// decluster of 0 plans a non-fault-tolerant system (no secondary
// budget).
func PlanCapacity(p Params, numDisks int, blockSize int64, blockPlay time.Duration, decluster int) Capacity {
	svc := p.WorstServiceTime(blockSize, Outer)
	if decluster > 0 {
		part := (blockSize + int64(decluster) - 1) / int64(decluster)
		svc += p.WorstServiceTime(part, Inner)
	}
	perDisk := float64(blockPlay) / float64(svc)
	total := int(float64(numDisks) * perDisk)
	cap := Capacity{BlockService: svc, StreamsPerDisk: perDisk, Streams: total}
	// The schedule must be an integral multiple of both the block play
	// and block service times (§3.1): lengthen the service time so that
	// Streams slots exactly tile numDisks block play times.
	if total > 0 {
		cap.BlockService = time.Duration(int64(numDisks) * int64(blockPlay) / int64(total))
	}
	return cap
}
