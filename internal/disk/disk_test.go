package disk

import (
	"math/rand"
	"testing"
	"time"

	"tiger/internal/clock"
	"tiger/internal/sim"
)

func testDisk(t *testing.T, mutate func(*Params)) (*sim.Engine, *Disk) {
	t.Helper()
	eng := sim.New(1)
	p := DefaultParams()
	p.JitterFrac = 0
	p.BlipProb = 0
	if mutate != nil {
		mutate(&p)
	}
	return eng, New(0, p, clock.Sim{Eng: eng}, rand.New(rand.NewSource(1)))
}

func TestServiceTimeComposition(t *testing.T) {
	p := DefaultParams()
	want := p.SeekAvg + p.RotHalf + time.Duration(262144/p.OuterRate*1e9)
	got := p.MeanServiceTime(262144, Outer)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("mean service %v, want %v", got, want)
	}
	if p.MeanServiceTime(262144, Inner) <= got {
		t.Fatal("inner zone should be slower than outer")
	}
	if p.WorstServiceTime(262144, Outer) <= got {
		t.Fatal("worst case should exceed the mean")
	}
}

func TestSingleReadCompletes(t *testing.T) {
	eng, d := testDisk(t, nil)
	var done sim.Time
	d.Read(262144, Outer, sim.Time(time.Second), func(at sim.Time, _ bool) { done = at })
	eng.Run()
	want := d.Params().MeanServiceTime(262144, Outer)
	if done != sim.Time(want) {
		t.Fatalf("completed at %v, want %v", done, want)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Bytes != 262144 || st.BusyTotal != want {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueingSerializes(t *testing.T) {
	eng, d := testDisk(t, nil)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Read(262144, Outer, sim.Time(time.Duration(i)*time.Second), func(sim.Time, bool) {
			order = append(order, i)
		})
	}
	if d.QueueLen() != 5 {
		t.Fatalf("queue %d, want 5", d.QueueLen())
	}
	eng.Run()
	svc := d.Params().MeanServiceTime(262144, Outer)
	if eng.Now() != sim.Time(5*svc) {
		t.Fatalf("five serial reads finished at %v, want %v", eng.Now(), 5*svc)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestEDFPrefersEarliestDue(t *testing.T) {
	eng, d := testDisk(t, nil)
	var order []string
	// Occupy the head, then enqueue far-due before near-due.
	d.Read(262144, Outer, 0, func(sim.Time, bool) { order = append(order, "head") })
	d.Read(262144, Outer, sim.Time(time.Hour), func(sim.Time, bool) { order = append(order, "far") })
	d.Read(262144, Outer, sim.Time(time.Second), func(sim.Time, bool) { order = append(order, "near") })
	eng.Run()
	if len(order) != 3 || order[1] != "near" || order[2] != "far" {
		t.Fatalf("EDF order %v", order)
	}
}

func TestFIFOIgnoresDue(t *testing.T) {
	eng, d := testDisk(t, func(p *Params) { p.Discipline = FIFO })
	var order []string
	d.Read(262144, Outer, 0, func(sim.Time, bool) { order = append(order, "head") })
	d.Read(262144, Outer, sim.Time(time.Hour), func(sim.Time, bool) { order = append(order, "far") })
	d.Read(262144, Outer, sim.Time(time.Second), func(sim.Time, bool) { order = append(order, "near") })
	eng.Run()
	if len(order) != 3 || order[1] != "far" || order[2] != "near" {
		t.Fatalf("FIFO order %v", order)
	}
}

func TestJitterBounds(t *testing.T) {
	eng, d := testDisk(t, func(p *Params) { p.JitterFrac = 0.1 })
	mean := d.Params().MeanServiceTime(262144, Outer)
	lo, hi := time.Duration(float64(mean)*0.9), time.Duration(float64(mean)*1.1)
	for i := 0; i < 200; i++ {
		var start, end sim.Time
		start = eng.Now()
		d.Read(262144, Outer, start, func(at sim.Time, _ bool) { end = at })
		eng.Run()
		svc := end.Sub(start)
		if svc < lo || svc > hi {
			t.Fatalf("service %v outside [%v, %v]", svc, lo, hi)
		}
	}
}

func TestBlipAlwaysFires(t *testing.T) {
	eng, d := testDisk(t, func(p *Params) {
		p.BlipProb = 1
		p.BlipMin = time.Second
		p.BlipMax = 2 * time.Second
	})
	var end sim.Time
	d.Read(262144, Outer, 0, func(at sim.Time, _ bool) { end = at })
	eng.Run()
	mean := d.Params().MeanServiceTime(262144, Outer)
	if extra := end.Sub(0) - mean; extra < time.Second || extra > 2*time.Second {
		t.Fatalf("blip extra %v outside [1s,2s]", extra)
	}
}

func TestPlanCapacityPaperNumbers(t *testing.T) {
	// §5: 56 disks, 0.25 MB blocks, decluster 4 → ~10.75 streams/disk,
	// 602 total.
	c := PlanCapacity(DefaultParams(), 56, 262144, time.Second, 4)
	if c.Streams != 602 {
		t.Fatalf("capacity %d, want 602", c.Streams)
	}
	if c.StreamsPerDisk < 10.7 || c.StreamsPerDisk > 10.8 {
		t.Fatalf("per-disk %.3f, want ~10.75", c.StreamsPerDisk)
	}
	// Block service time stretches so slots tile the schedule (§3.1).
	if got := c.BlockService; got != time.Duration(int64(56*time.Second)/602) {
		t.Fatalf("rounded block service %v", got)
	}
}

func TestPlanCapacityNoFaultTolerance(t *testing.T) {
	ft := PlanCapacity(DefaultParams(), 56, 262144, time.Second, 4)
	nft := PlanCapacity(DefaultParams(), 56, 262144, time.Second, 0)
	if nft.Streams <= ft.Streams {
		t.Fatalf("dropping the secondary budget should raise capacity: %d vs %d",
			nft.Streams, ft.Streams)
	}
}

func TestPlanCapacityDeclusterTradeoff(t *testing.T) {
	// §2.3: higher decluster factors reserve less bandwidth for failure
	// mode, so capacity grows with the decluster factor.
	prev := 0
	for _, dc := range []int{1, 2, 4, 8} {
		c := PlanCapacity(DefaultParams(), 56, 262144, time.Second, dc)
		if c.Streams <= prev {
			t.Fatalf("decluster %d capacity %d not above previous %d", dc, c.Streams, prev)
		}
		prev = c.Streams
	}
}

func TestMaxQueueStat(t *testing.T) {
	eng, d := testDisk(t, nil)
	for i := 0; i < 7; i++ {
		d.Read(1000, Inner, 0, nil)
	}
	eng.Run()
	if d.Stats().MaxQueue != 7 {
		t.Fatalf("max queue %d, want 7", d.Stats().MaxQueue)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", d.QueueLen())
	}
}
