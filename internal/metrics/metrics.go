// Package metrics provides the measurement machinery for Tiger
// experiments: a calibrated CPU-cost model (the simulator has no real
// CPUs, but Figures 8-9 plot CPU load), cumulative counters designed to
// be diffed over sampling windows, and small histogram/summary types for
// startup-latency distributions (Figure 10).
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"tiger/internal/sim"
)

// CPUModel holds the per-operation CPU costs used to model node load.
// The defaults are calibrated to the paper's Pentium-133 cubs: most CPU
// time went to packetizing video data ("We believe that most of the CPU
// time was spent packetizing the video data"), so cost is dominated by a
// per-data-byte charge, sized so a cub sending 43 2 Mbit/s streams plus
// its mirroring share runs at just over 80% CPU (§5).
type CPUModel struct {
	PerDataByte time.Duration // packetization cost per payload byte sent
	PerCtlMsg   time.Duration // handling one control message
	PerDiskOp   time.Duration // issuing and completing one disk read
	PerStartReq time.Duration // controller-side handling of a start/stop
}

// DefaultCPUModel returns the Pentium-133 calibration.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		PerDataByte: 62 * time.Nanosecond,
		PerCtlMsg:   100 * time.Microsecond,
		PerDiskOp:   500 * time.Microsecond,
		PerStartReq: 2 * time.Millisecond,
	}
}

// CPU accumulates modelled busy time for one machine.
type CPU struct {
	Model CPUModel
	busy  time.Duration
}

// ChargeData charges the packetization cost for n payload bytes.
func (c *CPU) ChargeData(n int64) {
	c.busy += time.Duration(n) * c.Model.PerDataByte
}

// ChargeCtlMsg charges handling of one control message.
func (c *CPU) ChargeCtlMsg() { c.busy += c.Model.PerCtlMsg }

// ChargeDiskOp charges one disk operation.
func (c *CPU) ChargeDiskOp() { c.busy += c.Model.PerDiskOp }

// ChargeStartReq charges one start/stop request (controller).
func (c *CPU) ChargeStartReq() { c.busy += c.Model.PerStartReq }

// Busy returns cumulative modelled busy time.
func (c *CPU) Busy() time.Duration { return c.busy }

// Load returns busy/wall for a window given two busy snapshots.
func Load(busyStart, busyEnd time.Duration, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	l := float64(busyEnd-busyStart) / float64(wall)
	if l > 1 {
		l = 1 // a real machine saturates at 100%
	}
	return l
}

// Summary is an order-statistics accumulator for latency-style samples.
type Summary struct {
	vals []float64
	// sortedVals caches an ordered copy for Quantile; the raw samples
	// are never reordered, so Values() and interleaved Add calls can
	// never observe a half-sorted slice.
	sortedVals []float64
}

// Add appends a sample.
func (s *Summary) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sortedVals = nil
}

// AddDuration appends a duration sample in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.vals) }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 {
	var m float64
	for i, v := range s.vals {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 {
	var m float64
	for i, v := range s.vals {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Quantile returns the p-quantile (0 <= p <= 1) by nearest-rank.
func (s *Summary) Quantile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if s.sortedVals == nil {
		s.sortedVals = make([]float64, len(s.vals))
		copy(s.sortedVals, s.vals)
		sort.Float64s(s.sortedVals)
	}
	idx := int(math.Ceil(p*float64(len(s.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.sortedVals) {
		idx = len(s.sortedVals) - 1
	}
	return s.sortedVals[idx]
}

// CountAbove returns how many samples exceed v.
func (s *Summary) CountAbove(v float64) int {
	n := 0
	for _, x := range s.vals {
		if x > v {
			n++
		}
	}
	return n
}

// Values returns a copy of the raw samples.
func (s *Summary) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// HistogramBucket is one bucket of a Histogram snapshot. Upper is the
// bucket's inclusive upper bound; the final bucket has Upper == 0 and
// counts everything above the last bound.
type HistogramBucket struct {
	Upper time.Duration
	Count int64
}

// Histogram is a fixed-bound duration histogram for recovery-style
// timings, where the shape (how many restarts reintegrated within 1 s,
// within 5 s, ...) matters more than exact order statistics.
type Histogram struct {
	bounds []time.Duration
	counts []int64
	n      int64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// An implicit overflow bucket captures samples above the last bound.
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must ascend")
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[i]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the mean sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() time.Duration { return h.max }

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() []HistogramBucket {
	out := make([]HistogramBucket, len(h.counts))
	for i, c := range h.counts {
		b := HistogramBucket{Count: c}
		if i < len(h.bounds) {
			b.Upper = h.bounds[i]
		}
		out[i] = b
	}
	return out
}

// LossLog records undelivered or late blocks, split by who noticed:
// server-side (the disk read missed its send deadline) versus
// client-side (the block never arrived or arrived late), matching the
// paper's two loss-reporting paths (§5).
//
// One log is shared by every cub and viewer in a cluster, so under a
// sharded simulation it is the one piece of state written from several
// shards at once. The recording operations are commutative (counter
// increments and min/max stamps), so a mutex keeps them exact without
// ordering them; readers sample between simulation windows.
type LossLog struct {
	mu           sync.Mutex
	ServerMissed int64 // server failed to place the block on the network
	ClientMissed int64 // client did not see an expected block in time
	FirstLoss    sim.Time
	LastLoss     sim.Time
	haveLoss     bool
}

// RecordServerMiss notes a block the server could not send on time.
func (l *LossLog) RecordServerMiss(at sim.Time) {
	l.mu.Lock()
	l.ServerMissed++
	l.stamp(at)
	l.mu.Unlock()
}

// RecordClientMiss notes a block a client never received in time.
func (l *LossLog) RecordClientMiss(at sim.Time) {
	l.mu.Lock()
	l.ClientMissed++
	l.stamp(at)
	l.mu.Unlock()
}

func (l *LossLog) stamp(at sim.Time) {
	if !l.haveLoss || at < l.FirstLoss {
		l.FirstLoss = at
	}
	if !l.haveLoss || at > l.LastLoss {
		l.LastLoss = at
	}
	l.haveLoss = true
}

// Total returns all lost blocks.
func (l *LossLog) Total() int64 { return l.ServerMissed + l.ClientMissed }

// LossSpan returns the time between the earliest and latest recorded
// loss — the paper's measure of reconfiguration time after a power cut
// ("about 8 seconds between the earliest and latest lost block").
func (l *LossLog) LossSpan() time.Duration {
	if !l.haveLoss {
		return 0
	}
	return l.LastLoss.Sub(l.FirstLoss)
}

// Rate returns losses as "1 in N" given the number of blocks attempted;
// it returns 0 when there were no losses.
func (l *LossLog) Rate(attempted int64) float64 {
	if l.Total() == 0 || attempted == 0 {
		return 0
	}
	return float64(attempted) / float64(l.Total())
}
