package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"tiger/internal/sim"
)

func TestCPUCharges(t *testing.T) {
	c := CPU{Model: CPUModel{
		PerDataByte: 10 * time.Nanosecond,
		PerCtlMsg:   time.Microsecond,
		PerDiskOp:   time.Millisecond,
		PerStartReq: time.Second,
	}}
	c.ChargeData(100)
	c.ChargeCtlMsg()
	c.ChargeDiskOp()
	c.ChargeStartReq()
	want := 1000*time.Nanosecond + time.Microsecond + time.Millisecond + time.Second
	if c.Busy() != want {
		t.Fatalf("busy %v, want %v", c.Busy(), want)
	}
}

func TestCPUCalibration(t *testing.T) {
	// §5: a cub sending 43 primary streams plus its mirroring share
	// (13.4 MB/s total) ran at just over 80% CPU and never above 85%.
	m := DefaultCPUModel()
	var c CPU
	c.Model = m
	c.ChargeData(13_400_000) // one second of failed-mode sending
	load := Load(0, c.Busy(), time.Second)
	if load < 0.75 || load > 0.88 {
		t.Fatalf("failed-mode packetization load %.2f, want ~0.83", load)
	}
}

func TestLoadClamps(t *testing.T) {
	if l := Load(0, 2*time.Second, time.Second); l != 1 {
		t.Fatalf("load %v, want clamp to 1", l)
	}
	if l := Load(0, time.Second, 0); l != 0 {
		t.Fatalf("zero window load %v", l)
	}
	if l := Load(time.Second, 3*time.Second, 4*time.Second); l != 0.5 {
		t.Fatalf("load %v, want 0.5", l)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 || s.Mean() != 3 || s.Max() != 5 || s.Min() != 1 {
		t.Fatalf("stats: count=%d mean=%v max=%v min=%v", s.Count(), s.Mean(), s.Max(), s.Min())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median %v", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("p100 %v", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("p0 %v", q)
	}
	if n := s.CountAbove(3.5); n != 2 {
		t.Fatalf("above 3.5: %d", n)
	}
}

func TestSummaryAddAfterQuantile(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort lazily
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("p0 after re-add %v", q)
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("mean %v", s.Mean())
	}
}

func TestSummaryValuesCopy(t *testing.T) {
	var s Summary
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if s.Mean() != 1 {
		t.Fatal("Values leaked the internal slice")
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(vals []float64, pRaw uint8) bool {
		var s Summary
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) {
				ok = false
			}
			s.Add(v)
		}
		if !ok || len(vals) == 0 {
			return true
		}
		p := float64(pRaw) / 255
		q := s.Quantile(p)
		sorted := append([]float64{}, vals...)
		sort.Float64s(sorted)
		return q >= sorted[0] && q <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestLossLog(t *testing.T) {
	var l LossLog
	if l.Total() != 0 || l.LossSpan() != 0 || l.Rate(100) != 0 {
		t.Fatal("empty loss log not zero")
	}
	l.RecordServerMiss(sim.Time(5 * time.Second))
	l.RecordClientMiss(sim.Time(2 * time.Second))
	l.RecordServerMiss(sim.Time(9 * time.Second))
	if l.ServerMissed != 2 || l.ClientMissed != 1 || l.Total() != 3 {
		t.Fatalf("counts server=%d client=%d", l.ServerMissed, l.ClientMissed)
	}
	// §5's reconfiguration metric: earliest to latest lost block.
	if l.LossSpan() != 7*time.Second {
		t.Fatalf("span %v", l.LossSpan())
	}
	if r := l.Rate(300); r != 100 {
		t.Fatalf("rate %v, want 1 in 100", r)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 100*time.Millisecond, time.Second)
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(5 * time.Millisecond)   // bucket 0
	h.Observe(10 * time.Millisecond)  // bucket 0 (bounds are inclusive)
	h.Observe(50 * time.Millisecond)  // bucket 1
	h.Observe(500 * time.Millisecond) // bucket 2
	h.Observe(3 * time.Second)        // overflow bucket
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 3*time.Second {
		t.Fatalf("max %v", h.Max())
	}
	want := (5*time.Millisecond + 10*time.Millisecond + 50*time.Millisecond +
		500*time.Millisecond + 3*time.Second) / 5
	if h.Mean() != want {
		t.Fatalf("mean %v, want %v", h.Mean(), want)
	}
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("%d buckets, want 4 (3 bounds + overflow)", len(b))
	}
	counts := []int64{2, 1, 1, 1}
	for i, bk := range b {
		if bk.Count != counts[i] {
			t.Fatalf("bucket %d count %d, want %d", i, bk.Count, counts[i])
		}
	}
	if b[3].Upper != 0 {
		t.Fatalf("overflow bucket carries a bound: %v", b[3].Upper)
	}
	// Snapshots are copies.
	b[0].Count = 99
	if h.Buckets()[0].Count != 2 {
		t.Fatal("Buckets exposed internal state")
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds accepted")
		}
	}()
	NewHistogram(time.Second, time.Second)
}

func TestQuantileDoesNotReorderValues(t *testing.T) {
	// Regression: Quantile used to sort the sample slice in place, so
	// Values() (or anything diffing the raw samples) interleaved with
	// Quantile calls could observe a reordered — or mid-sort — slice.
	var s Summary
	in := []float64{5, 1, 4, 2, 3}
	for _, v := range in {
		s.Add(v)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median %v", q)
	}
	got := s.Values()
	for i, v := range in {
		if got[i] != v {
			t.Fatalf("Quantile reordered samples: got %v, want %v", got, in)
		}
	}
	// Interleaved Add invalidates the cached order.
	s.Add(0)
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 after interleaved Add = %v, want 0", q)
	}
	if got := s.Values(); got[len(got)-1] != 0 {
		t.Fatalf("insertion order lost: %v", got)
	}
}

func TestHistogramOverflowBoundary(t *testing.T) {
	h := NewHistogram(time.Second)
	h.Observe(time.Second)                   // inclusive upper bound: in-range
	h.Observe(time.Second + time.Nanosecond) // one past the bound: overflow
	h.Observe(time.Hour)                     // deep overflow
	b := h.Buckets()
	if b[0].Count != 1 {
		t.Fatalf("bound bucket %d, want 1 (upper bounds are inclusive)", b[0].Count)
	}
	if b[1].Count != 2 {
		t.Fatalf("overflow bucket %d, want 2", b[1].Count)
	}
	if h.Max() != time.Hour {
		t.Fatalf("max %v", h.Max())
	}
}

func TestLoadClampsExactlyAtOne(t *testing.T) {
	// busy == wall is 100% exactly; a hair over must clamp back to 1.0.
	if l := Load(0, time.Second, time.Second); l != 1 {
		t.Fatalf("load %v, want exactly 1", l)
	}
	if l := Load(0, time.Second+time.Nanosecond, time.Second); l != 1 {
		t.Fatalf("load %v, want clamp to 1", l)
	}
	if l := Load(0, time.Second-time.Nanosecond, time.Second); l >= 1 {
		t.Fatalf("load %v, want < 1", l)
	}
}
