package clock

import (
	"testing"
	"time"

	"tiger/internal/sim"
)

func TestSimAdapter(t *testing.T) {
	eng := sim.New(1)
	var c Clock = Sim{Eng: eng}

	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	fired := make([]string, 0, 2)
	c.After(2*time.Second, func() { fired = append(fired, "after") })
	c.At(sim.Time(time.Second), func() { fired = append(fired, "at") })
	tm := c.After(3*time.Second, func() { fired = append(fired, "stopped") })
	if !tm.Stop() {
		t.Fatal("Stop reported not-pending")
	}
	eng.Run()
	if len(fired) != 2 || fired[0] != "at" || fired[1] != "after" {
		t.Fatalf("fired %v", fired)
	}
	if c.Now() != sim.Time(2*time.Second) {
		t.Fatalf("clock at %v", c.Now())
	}
}
