// Package clock abstracts time and deferred execution so the Tiger
// protocol code (internal/core) runs unchanged under the deterministic
// discrete-event simulator (internal/sim) and under real wall-clock time
// (internal/rt).
package clock

import (
	"time"

	"tiger/internal/sim"
)

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Clock provides the current instant and deferred callbacks. Callbacks
// fire on the owning node's executor: implementations guarantee that all
// callbacks and message deliveries for one node are serialized, so node
// state needs no locking.
type Clock interface {
	Now() sim.Time
	At(t sim.Time, fn func()) Timer
	After(d time.Duration, fn func()) Timer
}

// Sim adapts a *sim.Engine to the Clock interface. The simulator is
// single-threaded, so serialization is trivial.
type Sim struct {
	Eng *sim.Engine
}

func (s Sim) Now() sim.Time                          { return s.Eng.Now() }
func (s Sim) At(t sim.Time, fn func()) Timer         { return s.Eng.At(t, fn) }
func (s Sim) After(d time.Duration, fn func()) Timer { return s.Eng.After(d, fn) }

var _ Clock = Sim{}
