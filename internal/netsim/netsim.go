// Package netsim models Tiger's switched network (§2.1): an ATM-class
// switch with enough aggregate bandwidth that only per-NIC capacity and
// per-link latency matter. Control messages between nodes are delivered
// reliably and in order per sender/receiver pair, mirroring the paper's
// use of TCP between cubs (§4.1.3 relies on this ordering for the
// insert-after-deschedule argument). Failed nodes neither send nor
// receive.
//
// The data path — paced block sends from cubs to viewers — is modelled as
// per-NIC bandwidth occupancy plus a delivery event for the block's last
// byte, which is what the paper's verification clients time.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"tiger/internal/clock"
	"tiger/internal/msg"
	"tiger/internal/obs"
	"tiger/internal/sim"
)

// Params describe the network model.
type Params struct {
	LatencyBase   time.Duration // one-way propagation + switching
	LatencyJitter time.Duration // additional uniform [0,J) per message
	NICRate       float64       // usable bytes/s of one cub's network interface
}

// DefaultParams model the paper's FORE OC-3 ATM adapters: 155 Mbit/s raw,
// roughly 16.5 MB/s usable after cell and AAL5 overhead, sub-millisecond
// switch latency.
func DefaultParams() Params {
	return Params{
		LatencyBase:   300 * time.Microsecond,
		LatencyJitter: 400 * time.Microsecond,
		NICRate:       16.5e6,
	}
}

// Handler receives control messages addressed to a node.
type Handler interface {
	Deliver(from msg.NodeID, m msg.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from msg.NodeID, m msg.Message)

func (f HandlerFunc) Deliver(from msg.NodeID, m msg.Message) { f(from, m) }

// BlockDelivery describes one block (or declustered mirror piece) sent to
// a viewer.
type BlockDelivery struct {
	Viewer   msg.ViewerID
	Instance msg.InstanceID
	Addr     [16]byte // viewer network address (used by the rt transport)
	File     msg.FileID
	Block    int32
	PlaySeq  int32
	From     msg.NodeID
	Bytes    int64
	Mirror   bool
	Part     int8 // mirror piece index; Parts==1 for primary sends
	Parts    int8 // total pieces making up this block
	Start    sim.Time
	LastByte sim.Time
}

// DataSink receives block deliveries for a viewer.
type DataSink interface {
	DeliverBlock(d BlockDelivery)
}

type pairKey struct{ from, to msg.NodeID }

// FlakyParams describe a degraded (but not cut) link direction: an
// independent per-message drop probability, a duplication probability
// (the message is delivered twice, modelling an at-least-once transport
// retrying across a blip), and an extra one-way delay drawn uniformly
// from [0, ExtraDelay). All draws come from the simulator's seeded rng,
// so runs are reproducible.
type FlakyParams struct {
	DropProb   float64
	DupProb    float64
	ExtraDelay time.Duration
}

func (p FlakyParams) zero() bool {
	return p.DropProb == 0 && p.DupProb == 0 && p.ExtraDelay == 0
}

// linkFault is the fault state of one directed node pair. The zero value
// means a healthy link; healthy links carry no record at all.
type linkFault struct {
	cut   bool
	flaky FlakyParams
}

// FaultStats count what the fault layer did to traffic.
type FaultStats struct {
	LinkDrops int64 // control messages dropped by a cut or flaky link
	LinkDups  int64 // duplicate control deliveries injected
	DataDrops int64 // block deliveries dropped by the DropData hook
}

// nodeStats tracks per-node traffic. Control and data are separated
// because the paper reports control traffic alone (Figures 8-9).
//
// Under a sharded simulation each record is owned by its node's shard:
// every field here is written only from the owning node's execution
// context, which is what lets the send path run without locks.
type nodeStats struct {
	ctlBytes  int64
	ctlMsgs   int64
	dataBytes int64

	// Registry mirrors of the counters above; nil without AttachObs.
	obsCtlBytes  *obs.Counter
	obsCtlMsgs   *obs.Counter
	obsDataBytes *obs.Counter

	// lastArr is the FIFO high-water mark per destination: the latest
	// arrival this node has scheduled toward each peer. Keeping it here
	// rather than in a network-wide pair map makes the send path touch
	// only sender-owned state (and drops a map hash per message).
	lastArr map[msg.NodeID]sim.Time

	// Fault-layer interventions charged to this sender. Like the rest of
	// nodeStats these are shard-owned, which is what keeps the link-fault
	// path lock-free under sim.Sharded; FaultStats aggregates them at the
	// serial points where callers read totals.
	linkDrops int64
	linkDups  int64
	dataDrops int64

	// jitter is the sender-local latency-jitter stream (splitmix64),
	// used instead of the network-wide rng when the simulation is
	// sharded so concurrent senders never share a random source.
	jitter uint64

	// NIC occupancy accounting: integrate active send rate over time.
	activeRate float64 // bytes/s currently being sent
	lastChange sim.Time
	byteSecs   float64 // integral of activeRate dt, in bytes
	peakRate   float64
	overloadNs int64 // time spent with activeRate > NICRate
}

// Network is the simulated switch.
type Network struct {
	clk    clock.Clock
	rng    *rand.Rand
	params Params

	nodes   map[msg.NodeID]Handler
	viewers map[msg.ViewerID]DataSink
	failed  map[msg.NodeID]bool
	incarn  map[msg.NodeID]int // bumped by Crash; dooms in-flight messages
	stats   map[msg.NodeID]*nodeStats
	links   map[pairKey]*linkFault // directed link faults; absent = healthy
	reg     *obs.Registry          // nil without AttachObs
	shard   *ShardMap              // nil for a single-engine simulation

	// DropControl, if non-nil, is consulted for each control message;
	// returning true drops it. Used by fault-injection tests only — the
	// real system runs control traffic over TCP.
	DropControl func(from, to msg.NodeID, m msg.Message) bool

	// DropData, if non-nil, is consulted for each block send before any
	// pacing or NIC accounting; returning true silently loses the block.
	// This is the data-plane half of fault injection: link cuts model the
	// control mesh, while DropData models loss on the switched data path
	// to viewers (internal/chaos drives it for its data-fault steps).
	DropData func(from msg.NodeID, d BlockDelivery) bool
}

// New creates an empty network.
func New(params Params, clk clock.Clock, rng *rand.Rand) *Network {
	return &Network{
		clk:     clk,
		rng:     rng,
		params:  params,
		nodes:   make(map[msg.NodeID]Handler),
		viewers: make(map[msg.ViewerID]DataSink),
		failed:  make(map[msg.NodeID]bool),
		incarn:  make(map[msg.NodeID]int),
		stats:   make(map[msg.NodeID]*nodeStats),
		links:   make(map[pairKey]*linkFault),
	}
}

// ShardMap wires the network into a sharded simulation (sim.Sharded).
// The network's minimum link latency (Params.LatencyBase) is the
// conservative lookahead: every cross-node interaction — control
// delivery or a block's last byte — happens at least LatencyBase after
// its send, so a message posted across shards can never land inside the
// window that produced it.
//
// Contract for sharded runs: all nodes are Registered before the run,
// fault injection (Fail/Crash/Cut/SetFlaky/DropControl/DropData) and
// NodeStats reads happen only between RunUntil calls from the driver,
// and every viewer lives on ViewerShard. Under those rules the shared
// maps (nodes, failed, incarn, links) are read-only during windows and
// all mutable state is shard-owned.
type ShardMap struct {
	// ShardOf maps a node to its shard; it must be a pure function and
	// must cover msg.Controller.
	ShardOf func(msg.NodeID) int
	// Clocks are the per-shard clocks; Clocks[ShardOf(id)] is the only
	// clock node id's sends and timers may use.
	Clocks []clock.Clock
	// Post schedules fn at instant at on shard dst, called from shard
	// src's execution context (sim.Sharded.Post).
	Post func(src, dst int, at sim.Time, fn func())
	// ViewerShard hosts every viewer endpoint (and the harness code
	// that registers them); block deliveries are posted to it.
	ViewerShard int
	// Seed perturbs the per-sender jitter streams so different run
	// seeds see different network noise.
	Seed int64
}

// SetSharded switches the network to sharded operation. Call it after
// New and before registering traffic sources begin to run; it seeds the
// per-sender jitter streams of already-registered nodes.
func (n *Network) SetSharded(sm *ShardMap) {
	n.shard = sm
	for id, st := range n.stats {
		st.jitter = jitterSeed(sm.Seed, id)
	}
}

// jitterSeed derives a node's splitmix64 state from the run seed.
func jitterSeed(seed int64, id msg.NodeID) uint64 {
	return (uint64(seed)+1)*0x9e3779b97f4a7c15 ^ uint64(uint32(id))
}

// splitmix advances a splitmix64 state and returns the next value.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// clockFor returns the clock a node's activity must run on.
func (n *Network) clockFor(id msg.NodeID) clock.Clock {
	if n.shard != nil {
		return n.shard.Clocks[n.shard.ShardOf(id)]
	}
	return n.clk
}

// scheduleAt schedules fn at instant at in node to's execution context,
// on behalf of node from. Cross-shard it goes through the coordinator's
// mailboxes; same-shard (or unsharded) it is a plain timer.
func (n *Network) scheduleAt(from, to msg.NodeID, at sim.Time, fn func()) {
	if n.shard != nil {
		src, dst := n.shard.ShardOf(from), n.shard.ShardOf(to)
		if src != dst {
			n.shard.Post(src, dst, at, fn)
			return
		}
		n.shard.Clocks[src].At(at, fn)
		return
	}
	n.clk.At(at, fn)
}

// Register attaches a node to the switch.
func (n *Network) Register(id msg.NodeID, h Handler) {
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: node %v registered twice", id))
	}
	n.nodes[id] = h
	n.statsFor(id)
}

// AttachObs registers per-node traffic counters (labelled by node) with
// the registry, for the switch's already-registered nodes and any that
// appear later. The simulator's control path pays one CAS per message.
func (n *Network) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n.reg = reg
	for id, st := range n.stats {
		n.attachNodeObs(id, st)
	}
}

func (n *Network) attachNodeObs(id msg.NodeID, st *nodeStats) {
	ls := obs.Labels{"node": id.String()}
	st.obsCtlBytes = n.reg.Counter("tiger_net_ctl_bytes_total", "Control bytes sent by the node.", ls)
	st.obsCtlMsgs = n.reg.Counter("tiger_net_ctl_msgs_total", "Control messages sent by the node.", ls)
	st.obsDataBytes = n.reg.Counter("tiger_net_data_bytes_total", "Block payload bytes sent by the node.", ls)
}

// statsFor returns (creating if needed) a node's traffic record.
func (n *Network) statsFor(id msg.NodeID) *nodeStats {
	st := n.stats[id]
	if st == nil {
		st = &nodeStats{lastChange: n.clockFor(id).Now()}
		if n.shard != nil {
			st.jitter = jitterSeed(n.shard.Seed, id)
		}
		n.stats[id] = st
		if n.reg != nil {
			n.attachNodeObs(id, st)
		}
	}
	return st
}

// RegisterViewer attaches a viewer endpoint.
func (n *Network) RegisterViewer(id msg.ViewerID, s DataSink) {
	n.viewers[id] = s
}

// UnregisterViewer detaches a viewer endpoint; subsequent block sends to
// it are discarded.
func (n *Network) UnregisterViewer(id msg.ViewerID) {
	delete(n.viewers, id)
}

// Fail marks a node down: it silently loses everything in flight to it
// and everything it would send, like the paper's power-cut test (§5).
// A Fail followed by Revive models a network blip: messages queued while
// the node was up but not yet delivered still arrive afterwards.
func (n *Network) Fail(id msg.NodeID) { n.failed[id] = true }

// Crash marks a node down like Fail and additionally dooms everything
// already in flight to or from it: a crashed machine's socket buffers
// die with it, so nothing sent to (or by) the old incarnation may be
// delivered after a restart. Pair with Revive plus core.Cub.Restart for
// full crash–restart semantics.
func (n *Network) Crash(id msg.NodeID) {
	n.failed[id] = true
	n.incarn[id]++
}

// Revive brings a failed node back.
func (n *Network) Revive(id msg.NodeID) { delete(n.failed, id) }

// Failed reports whether a node is currently marked down.
func (n *Network) Failed(id msg.NodeID) bool { return n.failed[id] }

// --- link-level faults ---
//
// Node failures (Fail/Crash) model a dead machine; link faults model a
// live machine that some peers cannot reach — the partition case the
// deadman protocol (§2.3) can misread as a death. Faults are directed:
// an asymmetric cut (A hears B, B cannot hear A) is a single CutOneWay.

func (n *Network) linkFor(from, to msg.NodeID) *linkFault {
	k := pairKey{from, to}
	lf := n.links[k]
	if lf == nil {
		lf = &linkFault{}
		n.links[k] = lf
	}
	return lf
}

// pruneLink discards the record for a link with no remaining fault, so
// FaultedLinks counts only genuinely degraded pairs.
func (n *Network) pruneLink(from, to msg.NodeID) {
	k := pairKey{from, to}
	if lf := n.links[k]; lf != nil && !lf.cut && lf.flaky.zero() {
		delete(n.links, k)
	}
}

// CutOneWay severs the directed link from→to: every control message sent
// that way is silently lost until HealOneWay (or Heal/HealAllLinks).
func (n *Network) CutOneWay(from, to msg.NodeID) { n.linkFor(from, to).cut = true }

// Cut severs the link between a and b in both directions.
func (n *Network) Cut(a, b msg.NodeID) {
	n.CutOneWay(a, b)
	n.CutOneWay(b, a)
}

// HealOneWay restores the directed link from→to, clearing a cut and any
// flaky parameters. Messages sent while the link was cut stay lost.
func (n *Network) HealOneWay(from, to msg.NodeID) {
	if lf := n.links[pairKey{from, to}]; lf != nil {
		lf.cut = false
		lf.flaky = FlakyParams{}
		n.pruneLink(from, to)
	}
}

// Heal restores the link between a and b in both directions.
func (n *Network) Heal(a, b msg.NodeID) {
	n.HealOneWay(a, b)
	n.HealOneWay(b, a)
}

// HealAllLinks clears every link fault on the switch.
func (n *Network) HealAllLinks() {
	n.links = make(map[pairKey]*linkFault)
}

// SetFlakyOneWay degrades the directed link from→to. A zero FlakyParams
// heals the flakiness (a cut on the same link, if any, remains).
func (n *Network) SetFlakyOneWay(from, to msg.NodeID, p FlakyParams) {
	n.linkFor(from, to).flaky = p
	n.pruneLink(from, to)
}

// SetFlaky degrades the link between a and b in both directions.
func (n *Network) SetFlaky(a, b msg.NodeID, p FlakyParams) {
	n.SetFlakyOneWay(a, b, p)
	n.SetFlakyOneWay(b, a, p)
}

// LinkCut reports whether the directed link from→to is currently cut.
func (n *Network) LinkCut(from, to msg.NodeID) bool {
	lf := n.links[pairKey{from, to}]
	return lf != nil && lf.cut
}

// FaultedLinks returns the number of directed links with an active fault
// (cut or flaky). Chaos harnesses use it to decide when the network is
// clean again.
func (n *Network) FaultedLinks() int { return len(n.links) }

// FaultStats returns cumulative counts of fault-layer interventions,
// aggregated over the sender-owned counters. Call it only from the
// serial driver context (between run windows in a sharded simulation).
func (n *Network) FaultStats() (fs FaultStats) {
	for _, st := range n.stats {
		fs.LinkDrops += st.linkDrops
		fs.LinkDups += st.linkDups
		fs.DataDrops += st.dataDrops
	}
	return fs
}

// latency draws one message's one-way latency. The jitter comes from
// the network-wide rng in a single-engine run and from the sender's
// private splitmix64 stream in a sharded run, where concurrent senders
// must not share a random source.
func (n *Network) latency(st *nodeStats) time.Duration {
	l := n.params.LatencyBase
	if n.params.LatencyJitter > 0 {
		if n.shard != nil {
			l += time.Duration(splitmix(&st.jitter) % uint64(n.params.LatencyJitter))
		} else {
			l += time.Duration(n.rng.Int63n(int64(n.params.LatencyJitter)))
		}
	}
	return l
}

// chance draws one uniform [0, 1) variate for a sender's link-fault
// decisions — from the network-wide rng in a single-engine run, from the
// sender's private splitmix64 stream in a sharded run (same split as
// latency, and for the same reason).
func (n *Network) chance(st *nodeStats) float64 {
	if n.shard != nil {
		return float64(splitmix(&st.jitter)>>11) / float64(1<<53)
	}
	return n.rng.Float64()
}

// Send delivers a control message from one node to another, reliably and
// in order with respect to other messages on the same (from, to) pair.
func (n *Network) Send(from, to msg.NodeID, m msg.Message) {
	n.send(from, to, m, true)
}

// SendSteady delivers a control message like Send but at the base
// latency, never drawing from the jitter stream. Periodic liveness
// traffic — the controller heartbeat — uses it so that turning a
// heartbeat on cannot re-roll the shared randomness alignment of every
// other message in a single-engine run: the unrelated experiments must
// stay byte-identical with and without the extra traffic. (Sharded runs
// already draw from per-sender streams, where the leak cannot happen.)
func (n *Network) SendSteady(from, to msg.NodeID, m msg.Message) {
	n.send(from, to, m, false)
}

func (n *Network) send(from, to msg.NodeID, m msg.Message, jitter bool) {
	st := n.statsFor(from)
	if n.failed[from] || n.failed[to] {
		return
	}
	if n.DropControl != nil && n.DropControl(from, to, m) {
		return
	}
	st.ctlBytes += int64(m.Size())
	st.ctlMsgs++
	if st.obsCtlMsgs != nil {
		st.obsCtlBytes.Add(float64(m.Size()))
		st.obsCtlMsgs.Inc()
	}

	// Link faults. The sender already paid for the bytes above: a cut or
	// lossy link loses traffic in the network, it does not stop the
	// sender transmitting.
	var extra time.Duration
	dup := false
	if lf := n.links[pairKey{from, to}]; lf != nil {
		if lf.cut {
			st.linkDrops++
			return
		}
		f := lf.flaky
		if f.DropProb > 0 && n.chance(st) < f.DropProb {
			st.linkDrops++
			return
		}
		if f.ExtraDelay > 0 {
			if n.shard != nil {
				extra = time.Duration(splitmix(&st.jitter) % uint64(f.ExtraDelay))
			} else {
				extra = time.Duration(n.rng.Int63n(int64(f.ExtraDelay)))
			}
		}
		if f.DupProb > 0 && n.chance(st) < f.DupProb {
			dup = true
		}
	}
	n.deliverCtl(from, to, st, m, extra, jitter)
	if dup {
		// The duplicate trails the original through the same FIFO link,
		// like a retransmission whose first copy also arrived.
		st.linkDups++
		n.deliverCtl(from, to, st, m, extra, jitter)
	}
}

// deliverCtl schedules one control-message arrival, preserving FIFO per
// (from, to) pair and dooming the delivery if either endpoint fails or
// crashes while it is in flight.
func (n *Network) deliverCtl(from, to msg.NodeID, st *nodeStats, m msg.Message, extra time.Duration, jitter bool) {
	lat := n.params.LatencyBase
	if jitter {
		lat = n.latency(st)
	}
	arrive := n.clockFor(from).Now().Add(lat + extra)
	if st.lastArr == nil {
		st.lastArr = make(map[msg.NodeID]sim.Time)
	}
	if last := st.lastArr[to]; arrive <= last {
		arrive = last + 1 // preserve FIFO per pair
	}
	st.lastArr[to] = arrive
	fromInc, toInc := n.incarn[from], n.incarn[to]
	n.scheduleAt(from, to, arrive, func() {
		if n.failed[to] || n.failed[from] {
			return // failed while in flight
		}
		if n.incarn[from] != fromInc || n.incarn[to] != toInc {
			return // an endpoint crashed while the message was in flight
		}
		h := n.nodes[to]
		if h == nil {
			return
		}
		h.Deliver(from, m)
	})
}

// SendBlock starts a paced data send of d.Bytes from a cub to a viewer
// over pace (one block play time for primaries, blockPlay/decluster for
// mirror pieces, §4.1.1). The viewer's DeliverBlock fires when the last
// byte arrives.
func (n *Network) SendBlock(from msg.NodeID, d BlockDelivery, pace time.Duration) {
	if n.failed[from] {
		return
	}
	st := n.statsFor(from)
	if n.DropData != nil && n.DropData(from, d) {
		st.dataDrops++
		return
	}
	st.dataBytes += d.Bytes
	if st.obsDataBytes != nil {
		st.obsDataBytes.Add(float64(d.Bytes))
	}

	clk := n.clockFor(from)
	now := clk.Now()
	rate := float64(d.Bytes) / pace.Seconds()
	n.nicAdjust(st, +rate, now)
	clk.After(pace, func() { n.nicAdjust(st, -rate, clk.Now()) })

	d.From = from
	d.Start = now
	// LastByte >= now + LatencyBase even for a zero pace, which is what
	// lets a sharded run post the delivery to the viewer shard.
	d.LastByte = now.Add(pace + n.latency(st))
	deliver := func() {
		if s := n.viewers[d.Viewer]; s != nil {
			s.DeliverBlock(d)
		}
	}
	if n.shard != nil {
		if src := n.shard.ShardOf(from); src != n.shard.ViewerShard {
			n.shard.Post(src, n.shard.ViewerShard, d.LastByte, deliver)
			return
		}
	}
	clk.At(d.LastByte, deliver)
}

func (n *Network) nicAdjust(st *nodeStats, delta float64, now sim.Time) {
	dt := now.Sub(st.lastChange).Seconds()
	if dt > 0 {
		st.byteSecs += st.activeRate * dt
		if st.activeRate > n.params.NICRate {
			st.overloadNs += int64(now.Sub(st.lastChange))
		}
	}
	st.lastChange = now
	st.activeRate += delta
	if st.activeRate < 0 {
		st.activeRate = 0 // float drift
	}
	if st.activeRate > st.peakRate {
		st.peakRate = st.activeRate
	}
}

// Stats is a snapshot of one node's cumulative traffic counters.
type Stats struct {
	CtlBytes   int64
	CtlMsgs    int64
	DataBytes  int64
	ByteSecs   float64 // integral of send rate over time
	PeakRate   float64 // bytes/s
	OverloadNs int64
}

// NodeStats returns cumulative counters for a node; diff snapshots to get
// rates over a window.
func (n *Network) NodeStats(id msg.NodeID) Stats {
	st := n.stats[id]
	if st == nil {
		return Stats{}
	}
	// Fold in occupancy up to now so ByteSecs is current.
	n.nicAdjust(st, 0, n.clockFor(id).Now())
	return Stats{
		CtlBytes:   st.ctlBytes,
		CtlMsgs:    st.ctlMsgs,
		DataBytes:  st.dataBytes,
		ByteSecs:   st.byteSecs,
		PeakRate:   st.peakRate,
		OverloadNs: st.overloadNs,
	}
}

// Params returns the network's parameters.
func (n *Network) Params() Params { return n.params }
